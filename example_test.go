package gpclust_test

import (
	"fmt"

	"gpclust"
)

// The smallest possible clustering run: two planted cliques joined by one
// edge come back as two families.
func ExampleCluster() {
	b := gpclust.NewGraphBuilder(10)
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
			b.AddEdge(i+5, j+5)
		}
	}
	b.AddEdge(4, 5) // a single spurious link between the cliques
	g := b.Build()

	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 30, 15 // fewer trials: tiny graph
	res, err := gpclust.Cluster(g, opts)
	if err != nil {
		panic(err)
	}
	for _, cl := range res.Clustering.ClustersOfSizeAtLeast(3) {
		fmt.Println(cl)
	}
	// Output:
	// [0 1 2 3 4]
	// [5 6 7 8 9]
}

// GPU and serial backends agree bit-for-bit for the same Options.
func ExampleClusterGPU() {
	g, _ := gpclust.Planted(gpclust.DefaultPlantedConfig(1000))
	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 40, 20

	serial, err := gpclust.Cluster(g, opts)
	if err != nil {
		panic(err)
	}
	gpu, err := gpclust.ClusterGPU(g, gpclust.NewK20(), opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters equal:",
		len(serial.Clustering.Clusters) == len(gpu.Clustering.Clusters))
	// Output:
	// clusters equal: true
}

// Scoring a perfect partition against itself gives perfect metrics.
func ExamplePairConfusion() {
	labels := []int32{0, 0, 1, 1, 1, -1}
	c := gpclust.PairConfusion(labels, labels, len(labels))
	fmt.Printf("PPV=%.0f%% SE=%.0f%%\n", 100*c.PPV(), 100*c.Sensitivity())
	// Output:
	// PPV=100% SE=100%
}

// Density of a triangle is 1; adding an unconnected vertex drops it to 1/2.
func ExampleDensity() {
	g := gpclust.FromEdges(4, []gpclust.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	fmt.Println(gpclust.Density(g, []uint32{0, 1, 2}))
	fmt.Println(gpclust.Density(g, []uint32{0, 1, 2, 3}))
	// Output:
	// 1
	// 0.5
}

// Smith–Waterman finds the conserved core of two sequences.
func ExampleAlignScore() {
	a := []byte("MKTAYIAKQRQISFVKSHFSRQ")
	b := []byte("PPPPMKTAYIAKQRQISFVKSHFSRQGGGG")
	self := gpclust.AlignScore(a, a)
	embedded := gpclust.AlignScore(a, b)
	fmt.Println("embedded core scores as well as self:", self == embedded)
	// Output:
	// embedded core scores as well as self: true
}
