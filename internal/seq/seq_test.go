package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gpclust/internal/align"
)

func TestFASTARoundTrip(t *testing.T) {
	in := []Sequence{
		{ID: "a", Residues: []byte("MKTAYIAKQRQISFVKSHFSRQ")},
		{ID: "b desc with spaces", Residues: bytes.Repeat([]byte("ACDEFGHIKLMNPQRSTVWY"), 10)},
		{ID: "c", Residues: []byte("W")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d sequences after round trip, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID {
			t.Errorf("seq %d id %q, want %q", i, out[i].ID, in[i].ID)
		}
		if !bytes.Equal(out[i].Residues, in[i].Residues) {
			t.Errorf("seq %d residues differ", i)
		}
	}
}

func TestFASTALineWrapping(t *testing.T) {
	long := Sequence{ID: "x", Residues: bytes.Repeat([]byte("A"), 200)}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []Sequence{long}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 70 {
			t.Fatalf("line of %d chars, want ≤ 70", len(line))
		}
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACDEF\n")); err == nil {
		t.Fatal("sequence before header accepted")
	}
	seqs, err := ReadFASTA(strings.NewReader(""))
	if err != nil || len(seqs) != 0 {
		t.Fatalf("empty input: %v, %d seqs", err, len(seqs))
	}
	// multi-line bodies concatenate
	seqs, err = ReadFASTA(strings.NewReader(">x\nAAA\nCCC\n\nGGG\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(seqs[0].Residues) != "AAACCCGGG" {
		t.Fatalf("concatenated body = %q", seqs[0].Residues)
	}
}

func TestGenerateMetagenomeShape(t *testing.T) {
	cfg := DefaultMetagenomeConfig(500)
	m, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Seqs) != 500 {
		t.Fatalf("%d sequences, want 500", len(m.Seqs))
	}
	inFam := 0
	for i, f := range m.Family {
		if f >= 0 {
			inFam++
			if m.SuperFamily[i] < 0 {
				t.Fatal("family member without super-family")
			}
			if int(f) >= m.NumFamilies {
				t.Fatalf("family id %d out of range", f)
			}
		}
	}
	if want := int(500 * cfg.FamilyFraction); inFam != want {
		t.Fatalf("family members = %d, want %d", inFam, want)
	}
	for _, s := range m.Seqs {
		if s.Len() == 0 {
			t.Fatal("empty sequence generated")
		}
		if err := align.ValidateSequence(s.Residues); err != nil {
			t.Fatalf("invalid residues in %s: %v", s.ID, err)
		}
	}
}

func TestGenerateMetagenomeValidation(t *testing.T) {
	bad := DefaultMetagenomeConfig(0)
	if _, err := GenerateMetagenome(bad); err == nil {
		t.Fatal("0 sequences accepted")
	}
	bad = DefaultMetagenomeConfig(10)
	bad.FragmentMin, bad.FragmentMax = 0.9, 0.5
	if _, err := GenerateMetagenome(bad); err == nil {
		t.Fatal("inverted fragment bounds accepted")
	}
	bad = DefaultMetagenomeConfig(10)
	bad.AncestorLenMin, bad.AncestorLenMax = 100, 50
	if _, err := GenerateMetagenome(bad); err == nil {
		t.Fatal("inverted ancestor bounds accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultMetagenomeConfig(200)
	m1, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Seqs {
		if !bytes.Equal(m1.Seqs[i].Residues, m2.Seqs[i].Residues) {
			t.Fatal("same seed produced different sequences")
		}
	}
}

// Family members must align well to each other and poorly to other
// super-families — the property the homology graph construction depends on.
func TestFamilyMembersAreHomologous(t *testing.T) {
	cfg := DefaultMetagenomeConfig(300)
	m, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := align.DefaultParams()
	// find two members of the same family and two of different supers
	byFam := map[int32][]int{}
	for i, f := range m.Family {
		if f >= 0 {
			byFam[f] = append(byFam[f], i)
		}
	}
	var same, cross []int
	for _, members := range byFam {
		if len(members) >= 2 && same == nil {
			same = members[:2]
		}
	}
	for i := range m.Family {
		for j := i + 1; j < len(m.Family); j++ {
			if m.SuperFamily[i] >= 0 && m.SuperFamily[j] >= 0 && m.SuperFamily[i] != m.SuperFamily[j] {
				cross = []int{i, j}
				break
			}
		}
		if cross != nil {
			break
		}
	}
	if same == nil || cross == nil {
		t.Fatal("test metagenome lacks needed structure")
	}
	sameScore := align.ScoreOnly(m.Seqs[same[0]].Residues, m.Seqs[same[1]].Residues, p)
	crossScore := align.ScoreOnly(m.Seqs[cross[0]].Residues, m.Seqs[cross[1]].Residues, p)
	minLen := m.Seqs[same[0]].Len()
	if m.Seqs[same[1]].Len() < minLen {
		minLen = m.Seqs[same[1]].Len()
	}
	if sameScore < minLen { // well above noise: ≥ ~1 per aligned residue
		t.Fatalf("intra-family alignment score %d too low for length %d", sameScore, minLen)
	}
	if crossScore >= sameScore {
		t.Fatalf("cross-super score %d not below intra-family score %d", crossScore, sameScore)
	}
}

func TestFragmenting(t *testing.T) {
	cfg := DefaultMetagenomeConfig(100)
	cfg.FragmentMin, cfg.FragmentMax = 0.5, 0.6
	m, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fragments must be visibly shorter than full ancestors on average.
	total := 0
	for _, s := range m.Seqs {
		total += s.Len()
	}
	avg := float64(total) / float64(len(m.Seqs))
	maxAncestor := float64(cfg.AncestorLenMax)
	if avg > 0.8*maxAncestor {
		t.Fatalf("average fragment length %.0f too close to ancestor max %v", avg, maxAncestor)
	}
}

func TestResidueSamplerComposition(t *testing.T) {
	s := newResidueSampler(nil)
	rng := rand.New(rand.NewSource(13))
	counts := map[byte]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.sample(rng)]++
	}
	// Leucine (~9.0%) must clearly outnumber tryptophan (~1.3%).
	if counts['L'] < 3*counts['W'] {
		t.Fatalf("L=%d W=%d; natural composition not reflected", counts['L'], counts['W'])
	}
	for i := 0; i < 20; i++ {
		r := align.Alphabet[i]
		got := float64(counts[r]) / n
		want := robinsonFrequencies[r]
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("residue %c frequency %.4f, want ≈ %.4f", r, got, want)
		}
	}
}

func TestUniformResiduesOption(t *testing.T) {
	cfg := DefaultMetagenomeConfig(150)
	cfg.UniformResidues = true
	m, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[byte]int{}
	total := 0
	for _, s := range m.Seqs {
		for _, c := range s.Residues {
			counts[c]++
			total++
		}
	}
	// Under a uniform draw every residue should be near 5%.
	for i := 0; i < 20; i++ {
		got := float64(counts[align.Alphabet[i]]) / float64(total)
		if got < 0.03 || got > 0.07 {
			t.Errorf("residue %c frequency %.3f under uniform option", align.Alphabet[i], got)
		}
	}
}
