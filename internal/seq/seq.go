// Package seq provides the sequence substrate: protein sequences, FASTA
// I/O, and a synthetic metagenome generator that plants ground-truth
// protein families. It substitutes for the proprietary-scale GOS / Pacific
// Ocean ORF data sets the paper uses (see DESIGN.md): ancestral protein
// sequences are mutated into family members and shotgun-fragmented into
// ORF-like pieces, so the downstream homology graph has the same planted
// dense-subgraph structure the paper's inputs have, with the planted loose
// super-families playing the role of the GOS profile-expanded benchmark
// families.
package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Sequence is one protein/ORF sequence.
type Sequence struct {
	ID       string
	Residues []byte
}

// Len returns the sequence length in residues.
func (s Sequence) Len() int { return len(s.Residues) }

// WriteFASTA writes sequences in FASTA format, wrapping lines at 70
// residues.
func WriteFASTA(w io.Writer, seqs []Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.ID); err != nil {
			return err
		}
		for off := 0; off < len(s.Residues); off += 70 {
			end := off + 70
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			if _, err := bw.Write(s.Residues[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA input. Sequence lines are concatenated; blank
// lines are ignored; a sequence line before any header is an error.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var seqs []Sequence
	var cur *Sequence
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			seqs = append(seqs, Sequence{ID: strings.TrimSpace(line[1:])})
			cur = &seqs[len(seqs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before first FASTA header", lineNo)
		}
		// Keep residue-legal characters only (letters plus the '*', '-' and
		// '.' markers some tools emit): whitespace, control bytes or a stray
		// '>' inside a body would break wrap-and-trim round trips or be
		// misparsed as a header.
		for _, c := range []byte(line) {
			if c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '*' || c == '-' || c == '.' {
				cur.Residues = append(cur.Residues, c)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return seqs, nil
}
