package seq

import (
	"bytes"
	"math/rand"
	"testing"

	"gpclust/internal/align"
)

func TestGeneticCodeComplete(t *testing.T) {
	bases := "TCAG"
	stops := 0
	for _, a := range bases {
		for _, b := range bases {
			for _, c := range bases {
				codon := string([]byte{byte(a), byte(b), byte(c)})
				aa := TranslateCodon(codon)
				if aa == 'X' {
					t.Fatalf("codon %s unmapped", codon)
				}
				if aa == '*' {
					stops++
				}
			}
		}
	}
	if stops != 3 {
		t.Fatalf("%d stop codons, want 3 (TAA, TAG, TGA)", stops)
	}
	if TranslateCodon("ATG") != 'M' {
		t.Fatal("ATG is not Met")
	}
	if TranslateCodon("NNN") != 'X' {
		t.Fatal("ambiguous codon should give X")
	}
	if TranslateCodon("atg") != 'M' {
		t.Fatal("lowercase codon rejected")
	}
}

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement([]byte("ACGT")); string(got) != "ACGT" {
		t.Fatalf("RC(ACGT) = %s", got)
	}
	if got := ReverseComplement([]byte("AAACCC")); string(got) != "GGGTTT" {
		t.Fatalf("RC(AAACCC) = %s", got)
	}
	// involution
	in := []byte("ATGCGTACGTTAGC")
	if !bytes.Equal(ReverseComplement(ReverseComplement(in)), in) {
		t.Fatal("RC not an involution")
	}
	if got := ReverseComplement([]byte("AXA")); string(got) != "TNT" {
		t.Fatalf("RC with unknown base = %s", got)
	}
}

func TestTranslateFrame(t *testing.T) {
	dna := []byte("ATGAAATTTTAG") // M K F *
	if got := TranslateFrame(dna, 0); string(got) != "MKF*" {
		t.Fatalf("frame 0 = %s", got)
	}
	if got := TranslateFrame(dna, 1); len(got) != 3 {
		t.Fatalf("frame 1 length = %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("frame 3 did not panic")
		}
	}()
	TranslateFrame(dna, 3)
}

func TestRoundTripTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		pep := make([]byte, 20+rng.Intn(80))
		for i := range pep {
			pep[i] = align.Alphabet[rng.Intn(20)]
		}
		dna, err := ReverseTranslate(pep, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(dna) != 3*len(pep) {
			t.Fatalf("DNA length %d, want %d", len(dna), 3*len(pep))
		}
		back := TranslateFrame(dna, 0)
		if !bytes.Equal(back, pep) {
			t.Fatalf("round trip failed:\n in  %s\n out %s", pep, back)
		}
	}
}

func TestSixFrameORFsFindsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pep := make([]byte, 60)
	for i := range pep {
		pep[i] = align.Alphabet[rng.Intn(20)]
	}
	coding, err := ReverseTranslate(pep, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Embed with stop-rich flanks so the ORF is delimited.
	dna := append([]byte("TAATAATAA"), coding...)
	dna = append(dna, []byte("TAGTAGTAG")...)

	find := func(d []byte) bool {
		for _, orf := range SixFrameORFs(d, 40) {
			if bytes.Contains(orf.Peptide, pep) {
				return true
			}
		}
		return false
	}
	if !find(dna) {
		t.Fatal("planted ORF not found in forward strand")
	}
	// The reverse complement must yield the same peptide via frames 3-5.
	if !find(ReverseComplement(dna)) {
		t.Fatal("planted ORF not found after strand flip")
	}
}

func TestSixFrameORFsMinLen(t *testing.T) {
	// all-stop DNA has no ORFs
	if orfs := SixFrameORFs([]byte("TAATAGTGATAATAGTGA"), 1); len(orfs) > 4 {
		// reverse frames of stop codons need not be stops; just ensure
		// nothing absurd and no empty peptides
		for _, o := range orfs {
			if len(o.Peptide) == 0 {
				t.Fatal("empty ORF")
			}
		}
	}
	rng := rand.New(rand.NewSource(5))
	dna := make([]byte, 3000)
	for i := range dna {
		dna[i] = dnaAlphabet[rng.Intn(4)]
	}
	for _, o := range SixFrameORFs(dna, 30) {
		if len(o.Peptide) < 30 {
			t.Fatalf("ORF of %d residues below minLen", len(o.Peptide))
		}
		if bytes.ContainsRune(o.Peptide, '*') {
			t.Fatal("ORF contains a stop")
		}
		if o.Frame < 0 || o.Frame > 5 {
			t.Fatalf("frame %d", o.Frame)
		}
	}
}

func TestSimulateShotgunPipeline(t *testing.T) {
	cfg := DefaultMetagenomeConfig(60)
	cfg.AncestorLenMin, cfg.AncestorLenMax = 80, 120
	m, err := GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := DefaultShotgunConfig()
	sc.ReadLen = 400
	reads, err := SimulateShotgun(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) < len(m.Seqs) {
		t.Fatalf("%d reads for %d members", len(reads), len(m.Seqs))
	}
	for _, r := range reads {
		if len(r.DNA) == 0 || len(r.DNA) > sc.ReadLen {
			t.Fatalf("read length %d", len(r.DNA))
		}
	}
	orfs := ORFsFromReads(reads, 40)
	if len(orfs) == 0 {
		t.Fatal("no ORFs extracted from reads")
	}
	// Extracted ORFs must be valid protein sequences and many should align
	// strongly to their source members (the planted signal survives the
	// DNA round trip + shredding).
	for _, o := range orfs {
		if err := align.ValidateSequence(o.Residues); err != nil {
			t.Fatalf("ORF %s invalid: %v", o.ID, err)
		}
	}
	matched := 0
	checked := 0
	p := align.DefaultParams()
	for _, o := range orfs {
		if checked >= 30 {
			break
		}
		checked++
		best := 0
		for _, s := range m.Seqs[:20] {
			if sc := align.ScoreOnly(o.Residues, s.Residues, p); sc > best {
				best = sc
			}
		}
		if best >= 2*40 { // ≥ 2 points per residue of a 40-residue ORF core
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no extracted ORF aligns to any source protein")
	}
}

func TestSimulateShotgunValidation(t *testing.T) {
	m, err := GenerateMetagenome(DefaultMetagenomeConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultShotgunConfig()
	bad.ReadLen = 10
	if _, err := SimulateShotgun(m, bad); err == nil {
		t.Fatal("tiny read length accepted")
	}
	bad = DefaultShotgunConfig()
	bad.Coverage = 0
	if _, err := SimulateShotgun(m, bad); err == nil {
		t.Fatal("zero coverage accepted")
	}
}
