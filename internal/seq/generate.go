package seq

import (
	"fmt"
	"math/rand"

	"gpclust/internal/align"
	"gpclust/internal/graph"
)

// MetagenomeConfig controls the synthetic metagenome generator.
type MetagenomeConfig struct {
	NumSequences int // total ORFs to emit

	// Family structure: family sizes follow a power law on
	// [MinFamily, MaxFamily] with exponent Alpha; FamilyFraction of the
	// sequences belong to families, the rest are unrelated background ORFs.
	MinFamily      int
	MaxFamily      int
	Alpha          float64
	FamilyFraction float64

	// FamiliesPerSuper consecutive families share a proto-ancestor,
	// forming one loose super-family (the benchmark partition).
	FamiliesPerSuper int

	// AncestorLen is the length of each family's ancestral protein.
	AncestorLenMin, AncestorLenMax int

	// IntraDivergence is the per-residue substitution rate between a family
	// member and its ancestor; InterDivergence the (higher) rate between a
	// family ancestor and its super-family proto-ancestor.
	IntraDivergence float64
	InterDivergence float64

	// IndelRate is the per-position probability of a 1–3 residue indel when
	// deriving a member.
	IndelRate float64

	// UniformResidues draws residues uniformly over the 20 amino acids
	// instead of the natural Robinson–Robinson composition.
	UniformResidues bool

	// FragmentMin/Max bound the ORF fragment extracted from each member —
	// the shotgun-sequencing shredding step ("the shotgun sequencing
	// approach shreds the DNA pool into millions of tiny fragments", §I).
	// Fractions of the member length; set both to 1 to disable shredding.
	FragmentMin, FragmentMax float64

	Seed int64
}

// DefaultMetagenomeConfig returns a configuration producing GOS-like family
// structure at n sequences.
func DefaultMetagenomeConfig(n int) MetagenomeConfig {
	return MetagenomeConfig{
		NumSequences:     n,
		MinFamily:        5,
		MaxFamily:        max(20, n/25),
		Alpha:            2.2,
		FamilyFraction:   0.8,
		FamiliesPerSuper: 3,
		AncestorLenMin:   120,
		AncestorLenMax:   300,
		IntraDivergence:  0.10,
		InterDivergence:  0.45,
		IndelRate:        0.01,
		FragmentMin:      0.7,
		FragmentMax:      1.0,
		Seed:             1,
	}
}

// Metagenome is a generated data set with its ground truth.
type Metagenome struct {
	Seqs []Sequence
	// Family and SuperFamily label each sequence (-1 = background).
	Family      []int32
	SuperFamily []int32
	NumFamilies int
	NumSupers   int
}

// Truth converts the labels into a graph.GroundTruth (for the shared
// quality-metric machinery).
func (m *Metagenome) Truth() *graph.GroundTruth {
	return &graph.GroundTruth{
		Family:      m.Family,
		SuperFamily: m.SuperFamily,
		NumFamilies: m.NumFamilies,
		NumSupers:   m.NumSupers,
	}
}

// GenerateMetagenome produces a synthetic ORF data set per cfg.
func GenerateMetagenome(cfg MetagenomeConfig) (*Metagenome, error) {
	if cfg.NumSequences <= 0 {
		return nil, fmt.Errorf("seq: NumSequences = %d", cfg.NumSequences)
	}
	if cfg.FragmentMin <= 0 || cfg.FragmentMax > 1 || cfg.FragmentMin > cfg.FragmentMax {
		return nil, fmt.Errorf("seq: fragment bounds [%v,%v] invalid", cfg.FragmentMin, cfg.FragmentMax)
	}
	if cfg.AncestorLenMin < 20 || cfg.AncestorLenMax < cfg.AncestorLenMin {
		return nil, fmt.Errorf("seq: ancestor length bounds [%d,%d] invalid", cfg.AncestorLenMin, cfg.AncestorLenMax)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := newResidueSampler(nil)
	if cfg.UniformResidues {
		uniform := map[byte]float64{}
		for i := 0; i < 20; i++ {
			uniform[align.Alphabet[i]] = 1
		}
		sampler = newResidueSampler(uniform)
	}
	n := cfg.NumSequences
	m := &Metagenome{
		Seqs:        make([]Sequence, 0, n),
		Family:      make([]int32, n),
		SuperFamily: make([]int32, n),
	}
	for i := range m.Family {
		m.Family[i] = -1
		m.SuperFamily[i] = -1
	}

	inFamilies := int(float64(n) * cfg.FamilyFraction)
	sizes := graph.PowerLawSizes(rng, inFamilies, cfg.MinFamily, cfg.MaxFamily, cfg.Alpha)
	m.NumFamilies = len(sizes)
	fps := cfg.FamiliesPerSuper
	if fps < 1 {
		fps = 1
	}
	m.NumSupers = (len(sizes) + fps - 1) / fps

	var proto []byte
	idx := 0
	for f, sz := range sizes {
		if f%fps == 0 {
			proto = randomProtein(rng, sampler, cfg.AncestorLenMin, cfg.AncestorLenMax)
		}
		ancestor := mutateProtein(rng, sampler, proto, cfg.InterDivergence, cfg.IndelRate)
		super := int32(f / fps)
		for k := 0; k < sz; k++ {
			member := mutateProtein(rng, sampler, ancestor, cfg.IntraDivergence, cfg.IndelRate)
			member = fragment(rng, member, cfg.FragmentMin, cfg.FragmentMax)
			m.Seqs = append(m.Seqs, Sequence{
				ID:       fmt.Sprintf("orf%06d_f%d_s%d", idx, f, super),
				Residues: member,
			})
			m.Family[idx] = int32(f)
			m.SuperFamily[idx] = super
			idx++
		}
	}
	// Background: unrelated random ORFs.
	for idx < n {
		m.Seqs = append(m.Seqs, Sequence{
			ID:       fmt.Sprintf("orf%06d_bg", idx),
			Residues: randomProtein(rng, sampler, cfg.AncestorLenMin, cfg.AncestorLenMax),
		})
		idx++
	}
	return m, nil
}

// randomProtein draws a random protein of length in [lo, hi] from the
// sampler's residue composition.
func randomProtein(rng *rand.Rand, sampler *residueSampler, lo, hi int) []byte {
	n := lo + rng.Intn(hi-lo+1)
	s := make([]byte, n)
	for i := range s {
		s[i] = sampler.sample(rng)
	}
	return s
}

// mutateProtein substitutes residues at the given rate and applies short
// indels at indelRate, drawing replacements from the sampler's composition.
func mutateProtein(rng *rand.Rand, sampler *residueSampler, s []byte, subRate, indelRate float64) []byte {
	out := make([]byte, 0, len(s)+8)
	for _, c := range s {
		if rng.Float64() < indelRate {
			if rng.Intn(2) == 0 {
				continue // deletion
			}
			for k := 1 + rng.Intn(3); k > 0; k-- { // insertion
				out = append(out, sampler.sample(rng))
			}
		}
		if rng.Float64() < subRate {
			out = append(out, sampler.sample(rng))
		} else {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, s[0])
	}
	return out
}

// fragment extracts a random window covering a fraction in [lo, hi] of the
// member, simulating partial ORFs from shotgun fragments.
func fragment(rng *rand.Rand, s []byte, lo, hi float64) []byte {
	frac := lo + rng.Float64()*(hi-lo)
	n := int(float64(len(s)) * frac)
	if n < 1 {
		n = 1
	}
	if n >= len(s) {
		return s
	}
	start := rng.Intn(len(s) - n + 1)
	return s[start : start+n]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
