package seq

import (
	"fmt"
	"math/rand"
	"strings"
)

// The paper's data-preparation story (Section I): shotgun sequencing shreds
// environmental DNA into fragments, which are "assembled, annotated for
// genetic regions and subsequently translated into six frames to result in
// Open Reading Frames (ORFs) or putative protein sequences". This file
// implements that substrate: the standard genetic code, reverse
// complementation, six-frame translation, ORF extraction, and the reverse
// translation used to synthesize DNA carrying the planted protein families.

// geneticCode maps codons (upper-case DNA) to amino acids; '*' is stop.
var geneticCode = map[string]byte{
	"TTT": 'F', "TTC": 'F', "TTA": 'L', "TTG": 'L',
	"CTT": 'L', "CTC": 'L', "CTA": 'L', "CTG": 'L',
	"ATT": 'I', "ATC": 'I', "ATA": 'I', "ATG": 'M',
	"GTT": 'V', "GTC": 'V', "GTA": 'V', "GTG": 'V',
	"TCT": 'S', "TCC": 'S', "TCA": 'S', "TCG": 'S',
	"CCT": 'P', "CCC": 'P', "CCA": 'P', "CCG": 'P',
	"ACT": 'T', "ACC": 'T', "ACA": 'T', "ACG": 'T',
	"GCT": 'A', "GCC": 'A', "GCA": 'A', "GCG": 'A',
	"TAT": 'Y', "TAC": 'Y', "TAA": '*', "TAG": '*',
	"CAT": 'H', "CAC": 'H', "CAA": 'Q', "CAG": 'Q',
	"AAT": 'N', "AAC": 'N', "AAA": 'K', "AAG": 'K',
	"GAT": 'D', "GAC": 'D', "GAA": 'E', "GAG": 'E',
	"TGT": 'C', "TGC": 'C', "TGA": '*', "TGG": 'W',
	"CGT": 'R', "CGC": 'R', "CGA": 'R', "CGG": 'R',
	"AGT": 'S', "AGC": 'S', "AGA": 'R', "AGG": 'R',
	"GGT": 'G', "GGC": 'G', "GGA": 'G', "GGG": 'G',
}

// codonsFor is the inverse code: amino acid → codons (built at init).
var codonsFor = func() map[byte][]string {
	m := map[byte][]string{}
	for codon, aa := range geneticCode {
		if aa != '*' {
			m[aa] = append(m[aa], codon)
		}
	}
	// deterministic order for reproducible reverse translation
	for aa := range m {
		s := m[aa]
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j-1] > s[j]; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
	}
	return m
}()

// TranslateCodon returns the amino acid for a codon, '*' for stop, or 'X'
// for codons containing non-ACGT characters.
func TranslateCodon(codon string) byte {
	if aa, ok := geneticCode[strings.ToUpper(codon)]; ok {
		return aa
	}
	return 'X'
}

// ReverseComplement returns the reverse complement of a DNA string;
// non-ACGT characters map to 'N'.
func ReverseComplement(dna []byte) []byte {
	out := make([]byte, len(dna))
	for i, c := range dna {
		var rc byte
		switch c {
		case 'A', 'a':
			rc = 'T'
		case 'C', 'c':
			rc = 'G'
		case 'G', 'g':
			rc = 'C'
		case 'T', 't':
			rc = 'A'
		default:
			rc = 'N'
		}
		out[len(dna)-1-i] = rc
	}
	return out
}

// TranslateFrame translates one reading frame (0, 1, 2) of the given strand
// into a peptide, stops included as '*'.
func TranslateFrame(dna []byte, frame int) []byte {
	if frame < 0 || frame > 2 {
		panic(fmt.Sprintf("seq: frame %d out of range", frame))
	}
	var out []byte
	for i := frame; i+3 <= len(dna); i += 3 {
		out = append(out, TranslateCodon(string(dna[i:i+3])))
	}
	return out
}

// ORF is one open reading frame found in a six-frame translation.
type ORF struct {
	Peptide []byte
	Frame   int // 0–2 forward, 3–5 reverse strand
	Start   int // peptide start within the frame translation (residues)
}

// SixFrameORFs translates all six frames of dna and extracts every stop-free
// stretch of at least minLen residues — the putative protein sequences the
// clustering pipeline consumes.
func SixFrameORFs(dna []byte, minLen int) []ORF {
	var orfs []ORF
	scan := func(pep []byte, frame int) {
		start := 0
		for i := 0; i <= len(pep); i++ {
			if i < len(pep) && pep[i] != '*' {
				continue
			}
			if i-start >= minLen {
				orf := make([]byte, i-start)
				copy(orf, pep[start:i])
				orfs = append(orfs, ORF{Peptide: orf, Frame: frame, Start: start})
			}
			start = i + 1
		}
	}
	for f := 0; f < 3; f++ {
		scan(TranslateFrame(dna, f), f)
	}
	rc := ReverseComplement(dna)
	for f := 0; f < 3; f++ {
		scan(TranslateFrame(rc, f), 3+f)
	}
	return orfs
}

// ReverseTranslate synthesizes a DNA coding sequence for the peptide,
// choosing synonymous codons uniformly at random — the generator uses it to
// plant protein families inside simulated genomic fragments.
func ReverseTranslate(peptide []byte, rng *rand.Rand) ([]byte, error) {
	out := make([]byte, 0, 3*len(peptide))
	for i, aa := range peptide {
		codons := codonsFor[aa]
		if len(codons) == 0 {
			if aa == 'X' { // unknown residue: any non-stop codon
				codons = codonsFor['A']
			} else {
				return nil, fmt.Errorf("seq: residue %q at %d has no codon", aa, i)
			}
		}
		out = append(out, codons[rng.Intn(len(codons))]...)
	}
	return out, nil
}

// ShotgunRead is one simulated shotgun fragment of environmental DNA.
type ShotgunRead struct {
	ID  string
	DNA []byte
}

// ShotgunConfig controls read simulation from a metagenome.
type ShotgunConfig struct {
	ReadLen    int     // fragment length in bases (paper: "a few hundred base pairs")
	Coverage   float64 // mean number of reads covering each base
	ErrorRate  float64 // per-base substitution error rate
	FlankBases int     // random intergenic DNA added around each coding region
	Seed       int64
}

// DefaultShotgunConfig returns a typical Sanger-era configuration.
func DefaultShotgunConfig() ShotgunConfig {
	return ShotgunConfig{ReadLen: 600, Coverage: 2.0, ErrorRate: 0.003, FlankBases: 120, Seed: 1}
}

var dnaAlphabet = []byte("ACGT")

// SimulateShotgun reverse-translates every metagenome member into a coding
// region embedded in random flanking DNA and shreds the pool into reads —
// the front half of the paper's pipeline. The returned reads can be pushed
// through SixFrameORFs to recover putative proteins.
func SimulateShotgun(m *Metagenome, cfg ShotgunConfig) ([]ShotgunRead, error) {
	if cfg.ReadLen < 60 {
		return nil, fmt.Errorf("seq: read length %d too short", cfg.ReadLen)
	}
	if cfg.Coverage <= 0 {
		return nil, fmt.Errorf("seq: coverage %v must be positive", cfg.Coverage)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var reads []ShotgunRead
	readID := 0
	for si, s := range m.Seqs {
		coding, err := ReverseTranslate(s.Residues, rng)
		if err != nil {
			return nil, fmt.Errorf("seq: sequence %d: %w", si, err)
		}
		region := make([]byte, 0, len(coding)+2*cfg.FlankBases)
		for i := 0; i < cfg.FlankBases; i++ {
			region = append(region, dnaAlphabet[rng.Intn(4)])
		}
		region = append(region, coding...)
		for i := 0; i < cfg.FlankBases; i++ {
			region = append(region, dnaAlphabet[rng.Intn(4)])
		}

		numReads := int(float64(len(region))*cfg.Coverage/float64(cfg.ReadLen) + 0.5)
		if numReads < 1 {
			numReads = 1
		}
		for r := 0; r < numReads; r++ {
			n := cfg.ReadLen
			if n > len(region) {
				n = len(region)
			}
			start := 0
			if len(region) > n {
				start = rng.Intn(len(region) - n + 1)
			}
			read := make([]byte, n)
			copy(read, region[start:start+n])
			for i := range read {
				if rng.Float64() < cfg.ErrorRate {
					read[i] = dnaAlphabet[rng.Intn(4)]
				}
			}
			if rng.Intn(2) == 1 { // random strand
				read = ReverseComplement(read)
			}
			reads = append(reads, ShotgunRead{
				ID:  fmt.Sprintf("read%07d_src%d", readID, si),
				DNA: read,
			})
			readID++
		}
	}
	return reads, nil
}

// ORFsFromReads runs six-frame ORF extraction over a read set, producing
// the putative protein sequences the clustering pipeline starts from.
func ORFsFromReads(reads []ShotgunRead, minLen int) []Sequence {
	var out []Sequence
	for _, r := range reads {
		for oi, orf := range SixFrameORFs(r.DNA, minLen) {
			out = append(out, Sequence{
				ID:       fmt.Sprintf("%s_orf%d_f%d", r.ID, oi, orf.Frame),
				Residues: orf.Peptide,
			})
		}
	}
	return out
}
