package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA: the parser must never panic and must round-trip what it
// accepts.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a\nMKT\n>b desc\nACDEF\nGHIKL\n")
	f.Add("no header\n")
	f.Add(">empty\n")
	f.Fuzz(func(t *testing.T, in string) {
		seqs, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		back, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip: %d -> %d sequences", len(seqs), len(back))
		}
		for i := range seqs {
			if !bytes.Equal(back[i].Residues, seqs[i].Residues) {
				t.Fatal("round trip changed residues")
			}
		}
	})
}

// FuzzSixFrameORFs: ORF extraction must never panic and every ORF must be
// stop-free and within bounds.
func FuzzSixFrameORFs(f *testing.F) {
	f.Add([]byte("ATGAAATTTTAG"), 2)
	f.Add([]byte(""), 1)
	f.Add([]byte("NNNNNN"), 1)
	f.Fuzz(func(t *testing.T, dna []byte, minLen int) {
		if minLen < 1 || minLen > 1000 || len(dna) > 10000 {
			return
		}
		for _, orf := range SixFrameORFs(dna, minLen) {
			if len(orf.Peptide) < minLen {
				t.Fatalf("ORF shorter than minLen: %d < %d", len(orf.Peptide), minLen)
			}
			if bytes.ContainsRune(orf.Peptide, '*') {
				t.Fatal("ORF contains stop")
			}
		}
	})
}
