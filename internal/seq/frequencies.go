package seq

import (
	"math/rand"

	"gpclust/internal/align"
)

// Natural amino-acid background frequencies (Robinson & Robinson 1991, the
// standard composition used by BLOSUM-era alignment statistics). Random
// proteins drawn from this composition share k-mers and align the way real
// background sequences do, which keeps the pGraph filter's false-candidate
// rate realistic.
var robinsonFrequencies = map[byte]float64{
	'A': 0.0780, 'R': 0.0512, 'N': 0.0448, 'D': 0.0536, 'C': 0.0192,
	'Q': 0.0426, 'E': 0.0629, 'G': 0.0738, 'H': 0.0219, 'I': 0.0514,
	'L': 0.0901, 'K': 0.0574, 'M': 0.0224, 'F': 0.0385, 'P': 0.0520,
	'S': 0.0712, 'T': 0.0584, 'W': 0.0132, 'Y': 0.0321, 'V': 0.0644,
}

// residueSampler draws residues from a cumulative-frequency table.
type residueSampler struct {
	cum      []float64
	residues []byte
}

// newResidueSampler builds a sampler over the 20 standard residues with the
// given weights (nil = natural Robinson–Robinson composition).
func newResidueSampler(weights map[byte]float64) *residueSampler {
	if weights == nil {
		weights = robinsonFrequencies
	}
	s := &residueSampler{}
	total := 0.0
	for i := 0; i < 20; i++ {
		r := align.Alphabet[i]
		total += weights[r]
		s.residues = append(s.residues, r)
		s.cum = append(s.cum, total)
	}
	// normalize
	for i := range s.cum {
		s.cum[i] /= total
	}
	return s
}

// sample draws one residue.
func (s *residueSampler) sample(rng *rand.Rand) byte {
	x := rng.Float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.residues[lo]
}
