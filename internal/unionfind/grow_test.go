package unionfind

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentGrow grows a forest in steps, unioning across the old/new
// boundary each time, and checks the final partition against a sequential
// UF fed the same pairs over the final universe.
func TestConcurrentGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConcurrent(8)
	ref := New(64)
	var pairs [][2]int
	union := func(a, b int) {
		c.Union(a, b)
		pairs = append(pairs, [2]int{a, b})
	}
	union(0, 3)
	union(4, 7)
	for n := 16; n <= 64; n *= 2 {
		prev := c.Len()
		c.Grow(n)
		if c.Len() != n {
			t.Fatalf("Len after Grow(%d) = %d", n, c.Len())
		}
		// New elements start as singletons.
		for i := prev; i < n; i++ {
			if got := c.Find(i); got != i {
				t.Fatalf("new element %d has root %d, want itself", i, got)
			}
		}
		// Union across the boundary and within the new range.
		for k := 0; k < 8; k++ {
			union(rng.Intn(prev), prev+rng.Intn(n-prev))
		}
	}
	for _, p := range pairs {
		ref.Union(p[0], p[1])
	}
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			if c.Same(i, j) != ref.Same(i, j) {
				t.Fatalf("Same(%d,%d) = %v disagrees with sequential reference", i, j, c.Same(i, j))
			}
		}
	}
}

// TestConcurrentGrowNoShrink: growing to a smaller or equal size is a no-op
// and preserves the partition.
func TestConcurrentGrowNoShrink(t *testing.T) {
	c := NewConcurrent(10)
	c.Union(2, 9)
	c.Grow(5)
	if c.Len() != 10 {
		t.Fatalf("Grow shrank the structure to %d", c.Len())
	}
	c.Grow(10)
	if c.Len() != 10 || !c.Same(2, 9) {
		t.Fatal("no-op Grow disturbed the partition")
	}
}

// TestConcurrentGrowDuringFinds exercises the documented contract: readers
// hammer Find/Same while a single writer goroutine alternates Grow and
// Union (never concurrently with each other). Run under -race by the CI
// sweep; the final partition must match a sequential replay.
func TestConcurrentGrowDuringFinds(t *testing.T) {
	const (
		readers = 8
		start   = 64
		final   = 1024
	)
	c := NewConcurrent(start)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := c.Len()
				x := rng.Intn(n)
				root := c.Find(x)
				if root > x {
					// The ordered-link invariant: roots never exceed members.
					panic("Find returned an upward root")
				}
				c.Same(rng.Intn(n), rng.Intn(n))
			}
		}(int64(r))
	}

	// Single writer: Grow then a burst of Unions, repeatedly.
	rng := rand.New(rand.NewSource(42))
	var pairs [][2]int
	for n := start; n < final; n *= 2 {
		c.Grow(2 * n)
		for k := 0; k < 4*n; k++ {
			a, b := rng.Intn(2*n), rng.Intn(2*n)
			c.Union(a, b)
			pairs = append(pairs, [2]int{a, b})
		}
	}
	close(stop)
	wg.Wait()

	ref := New(final)
	for _, p := range pairs {
		ref.Union(p[0], p[1])
	}
	refRoot := make(map[int]int)
	for i := 0; i < final; i++ {
		rr, cr := ref.Find(i), c.Find(i)
		if prev, ok := refRoot[rr]; ok {
			if prev != cr {
				t.Fatalf("element %d: concurrent root %d splits sequential class %d (root %d)", i, cr, rr, prev)
			}
		} else {
			refRoot[rr] = cr
		}
	}
	if len(refRoot) != len(uniqueRoots(c, final)) {
		t.Fatalf("class counts differ: sequential %d, concurrent %d", len(refRoot), len(uniqueRoots(c, final)))
	}
}

func uniqueRoots(c *Concurrent, n int) map[int]bool {
	roots := make(map[int]bool)
	for i := 0; i < n; i++ {
		roots[c.Find(i)] = true
	}
	return roots
}
