//go:build invariants

package unionfind

import (
	"sync"
	"testing"
)

// TestFreezeAssertsAcyclicAfterConcurrentUnions hammers the lock-free
// structure from several goroutines and then freezes: under the invariants
// build Freeze walks every parent link and panics on any upward pointer.
func TestFreezeAssertsAcyclicAfterConcurrentUnions(t *testing.T) {
	const n = 512
	c := NewConcurrent(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i < n; i++ {
				c.Union(i, (i*13+w*31)%n)
			}
		}(w)
	}
	wg.Wait()
	u := c.Freeze()
	if u.Len() != n {
		t.Fatalf("frozen length = %d, want %d", u.Len(), n)
	}
}

// TestAssertAcyclicCatchesUpwardLink corrupts the forest with an upward
// parent pointer and checks the invariant trips.
func TestAssertAcyclicCatchesUpwardLink(t *testing.T) {
	c := NewConcurrent(8)
	c.arr()[2].Store(5)
	defer func() {
		if recover() == nil {
			t.Fatal("assertAcyclic did not catch the upward link")
		}
	}()
	assertAcyclic(c)
}
