package unionfind

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentMatchesSequential unions the same random pair set into a
// sequential UF and, concurrently from several goroutines, into a Concurrent,
// then compares the partitions.
func TestConcurrentMatchesSequential(t *testing.T) {
	const n = 2000
	const pairs = 4000
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		type pair struct{ x, y int }
		ps := make([]pair, pairs)
		for i := range ps {
			ps[i] = pair{rng.Intn(n), rng.Intn(n)}
		}

		seq := New(n)
		for _, p := range ps {
			seq.Union(p.x, p.y)
		}

		con := NewConcurrent(n)
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ps); i += workers {
					con.Union(ps[i].x, ps[i].y)
				}
			}(w)
		}
		wg.Wait()

		// Same partition: i~j in one iff i~j in the other. Compare via
		// canonical labels (root of element 0 of each set order).
		seqRoot := make(map[int]int)
		for i := 0; i < n; i++ {
			r, cr := seq.Find(i), con.Find(i)
			if prev, ok := seqRoot[r]; ok {
				if prev != cr {
					t.Fatalf("seed %d: element %d splits sequential set %d across concurrent sets %d and %d",
						seed, i, r, prev, cr)
				}
			} else {
				seqRoot[r] = cr
			}
		}
		if got, want := len(seqRoot), seq.Count(); got != want {
			t.Fatalf("seed %d: %d concurrent sets mapped, sequential has %d", seed, got, want)
		}
	}
}

func TestConcurrentFreeze(t *testing.T) {
	con := NewConcurrent(10)
	con.Union(0, 1)
	con.Union(1, 2)
	con.Union(5, 9)
	u := con.Freeze()
	if !u.Same(0, 2) || !u.Same(5, 9) {
		t.Fatal("Freeze lost unions")
	}
	if u.Same(0, 5) {
		t.Fatal("Freeze invented a union")
	}
	if got := u.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestConcurrentSingleton(t *testing.T) {
	con := NewConcurrent(1)
	if con.Find(0) != 0 || con.Len() != 1 {
		t.Fatal("singleton broken")
	}
	if con.Union(0, 0) {
		t.Fatal("self-union reported a merge")
	}
}
