package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	u := New(10)
	if u.Count() != 10 {
		t.Fatalf("Count() = %d, want 10", u.Count())
	}
	if u.Len() != 10 {
		t.Fatalf("Len() = %d, want 10", u.Len())
	}
	for i := 0; i < 10; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, u.Find(i), i)
		}
	}
}

func TestUnionBasic(t *testing.T) {
	u := New(5)
	if !u.Union(0, 1) {
		t.Fatal("Union(0,1) = false on first merge")
	}
	if u.Union(0, 1) {
		t.Fatal("Union(0,1) = true on repeated merge")
	}
	if !u.Same(0, 1) {
		t.Fatal("Same(0,1) = false after Union")
	}
	if u.Same(0, 2) {
		t.Fatal("Same(0,2) = true without Union")
	}
	if u.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", u.Count())
	}
}

func TestTransitivity(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(1, 2)
	u.Union(3, 4)
	if !u.Same(0, 2) {
		t.Error("union is not transitive: 0 and 2 should be joined")
	}
	if u.Same(2, 3) {
		t.Error("2 and 3 should not be joined")
	}
	u.Union(2, 3)
	for i := 0; i < 5; i++ {
		if !u.Same(0, i) {
			t.Errorf("after chain unions, Same(0,%d) = false", i)
		}
	}
	if u.Same(0, 5) {
		t.Error("5 should remain a singleton")
	}
	if u.Count() != 2 {
		t.Fatalf("Count() = %d, want 2", u.Count())
	}
}

func TestSets(t *testing.T) {
	u := New(6)
	u.Union(0, 3)
	u.Union(3, 5)
	u.Union(1, 2)
	sets := u.Sets()
	if len(sets) != 3 {
		t.Fatalf("len(Sets()) = %d, want 3", len(sets))
	}
	sizes := map[int]int{}
	total := 0
	for _, members := range sets {
		sizes[len(members)]++
		total += len(members)
	}
	if total != 6 {
		t.Fatalf("Sets() covers %d elements, want 6", total)
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("set size multiset = %v, want one each of {3,2,1}", sizes)
	}
}

func TestLabels(t *testing.T) {
	u := New(5)
	u.Union(0, 4)
	u.Union(1, 3)
	l := u.Labels()
	if l[0] != l[4] {
		t.Error("labels of 0 and 4 differ after union")
	}
	if l[1] != l[3] {
		t.Error("labels of 1 and 3 differ after union")
	}
	if l[0] == l[1] || l[0] == l[2] || l[1] == l[2] {
		t.Error("labels of distinct sets collide")
	}
	// Labels must be dense in [0, Count()).
	max := int32(-1)
	for _, v := range l {
		if v > max {
			max = v
		}
	}
	if int(max)+1 != u.Count() {
		t.Errorf("max label + 1 = %d, want Count() = %d", max+1, u.Count())
	}
}

// TestAgainstNaive cross-checks random union sequences against a naive
// label-propagation implementation.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	for trial := 0; trial < 20; trial++ {
		u := New(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		for op := 0; op < 150; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			u.Union(a, b)
			la, lb := naive[a], naive[b]
			if la != lb {
				for i := range naive {
					if naive[i] == lb {
						naive[i] = la
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j += 7 { // sampled pairs
				if u.Same(i, j) != (naive[i] == naive[j]) {
					t.Fatalf("trial %d: Same(%d,%d) = %v disagrees with naive %v",
						trial, i, j, u.Same(i, j), naive[i] == naive[j])
				}
			}
		}
	}
}

// Property: Count always equals n minus the number of successful unions.
func TestCountInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 64
		u := New(n)
		merges := 0
		for i := 0; i+1 < len(ops); i += 2 {
			a, b := int(ops[i])%n, int(ops[i+1])%n
			if u.Union(a, b) {
				merges++
			}
		}
		return u.Count() == n-merges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Find is idempotent and stable under further Finds.
func TestFindIdempotent(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 32
		u := New(n)
		for i := 0; i+1 < len(ops); i += 2 {
			u.Union(int(ops[i])%n, int(ops[i+1])%n)
		}
		for i := 0; i < n; i++ {
			r := u.Find(i)
			if u.Find(r) != r || u.Find(i) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int, 1<<16)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n)
		for _, p := range pairs {
			u.Union(p[0], p[1])
		}
	}
}
