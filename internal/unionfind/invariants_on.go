//go:build invariants

package unionfind

import "fmt"

// assertAcyclic verifies the concurrent forest's structural invariant after
// the parallel phase has quiesced: every parent link points at an equal or
// lower index, so parent chains strictly decrease and cycles are impossible
// (the property Union's ordered CAS linking maintains). Compiled only under
// -tags invariants; Freeze calls it before copying the partition out.
func assertAcyclic(c *Concurrent) {
	parent := c.arr()
	for i := range parent {
		if p := int(parent[i].Load()); p > i {
			panic(fmt.Sprintf("unionfind: parent[%d] = %d points upward: the ordered-link invariant is violated", i, p))
		}
	}
}
