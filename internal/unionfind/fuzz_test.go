package unionfind

import (
	"sync"
	"testing"
)

// FuzzUnionFind feeds an arbitrary union sequence to the lock-free
// Concurrent structure — split across goroutines, so link races actually
// happen — and checks the resulting partition equals a sequential union-find
// given the same pairs. This is the structure's headline property: the
// connectivity closure is invariant to union order and interleaving, which
// is what makes the parallel Phase III bit-identical to the serial one.
func FuzzUnionFind(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 2, 2, 3, 60, 61})
	f.Add([]byte{5, 5, 7, 7, 0, 63, 63, 0, 1, 62, 2, 61})

	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 64
		type pair struct{ x, y int }
		pairs := make([]pair, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, pair{int(raw[i]) % n, int(raw[i+1]) % n})
		}

		c := NewConcurrent(n)
		const workers = 4
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(pairs); i += workers {
					c.Union(pairs[i].x, pairs[i].y)
				}
			}(w)
		}
		wg.Wait()

		oracle := New(n)
		for _, p := range pairs {
			oracle.Union(p.x, p.y)
		}
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if c.Same(x, y) != oracle.Same(x, y) {
					t.Fatalf("Same(%d,%d): concurrent=%v oracle=%v (pairs=%v)",
						x, y, c.Same(x, y), oracle.Same(x, y), pairs)
				}
			}
		}
	})
}
