// Package unionfind implements a disjoint-set (union-find) data structure
// with union by rank and path compression, as described by Tarjan (JACM 1975).
//
// The Shingling cluster-enumeration phase (Phase III, option 2 in Wu &
// Kalyanaraman 2013) uses a union-find of size n to merge every vertex that
// contributed to the first- and second-level shingles of a connected
// component of the second-level shingle graph, producing a strict partition
// of the input vertices.
package unionfind

// UF is a disjoint-set forest over the integers [0, n).
// The zero value is not usable; construct with New.
type UF struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// New returns a union-find structure over n singleton elements.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements in the structure.
func (u *UF) Len() int { return len(u.parent) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the canonical representative of x's set,
// compressing the path from x to the root.
func (u *UF) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	// Path compression: point every node on the walk directly at the root.
	for int(u.parent[x]) != x {
		x, u.parent[x] = int(u.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	// Union by rank: attach the shallower tree under the deeper one.
	switch {
	case u.rank[rx] < u.rank[ry]:
		rx, ry = ry, rx
	case u.rank[rx] == u.rank[ry]:
		u.rank[rx]++
	}
	u.parent[ry] = int32(rx)
	u.count--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Sets returns the partition as a map from canonical representative to the
// sorted-by-insertion list of members. The representative of each set is its
// Find root.
func (u *UF) Sets() map[int][]int {
	sets := make(map[int][]int, u.count)
	for i := range u.parent {
		r := u.Find(i)
		sets[r] = append(sets[r], i)
	}
	return sets
}

// Labels returns a dense labeling of the partition: a slice l where
// l[i] == l[j] iff i and j are in the same set, with labels in [0, Count())
// assigned in order of first appearance.
func (u *UF) Labels() []int32 {
	labels := make([]int32, len(u.parent))
	next := int32(0)
	seen := make(map[int]int32, u.count)
	for i := range u.parent {
		r := u.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}
