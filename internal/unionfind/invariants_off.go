//go:build !invariants

package unionfind

// assertAcyclic is a no-op in the default build; the invariants build
// (-tags invariants, see invariants_on.go) replaces it with a full
// parent-chain acyclicity check.
func assertAcyclic(*Concurrent) {}
