package unionfind

import "sync/atomic"

// Concurrent is a lock-free disjoint-set forest over [0, n) safe for Union
// and Find from many goroutines (in the style of Jayanti & Tarjan, "Concurrent
// Disjoint Set Union": roots are linked with a single CAS, Find halves paths).
// Links always point a higher-indexed root at a lower-indexed one, so the
// parent order is a strict decreasing chain — no cycles, no rank array to
// maintain concurrently.
//
// The final partition equals a sequential union-find fed the same pairs in
// any order (set union is associative and commutative), which is what lets
// the parallel Phase III reporting produce the exact clustering of the
// serial backend.
type Concurrent struct {
	parent []atomic.Int32
}

// NewConcurrent returns a concurrent union-find over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]atomic.Int32, n)}
	for i := range c.parent {
		c.parent[i].Store(int32(i))
	}
	return c
}

// Len returns the number of elements in the structure.
func (c *Concurrent) Len() int { return len(c.parent) }

// Find returns the canonical representative of x's set, halving the path as
// it walks. Safe for concurrent use with Union and other Finds.
func (c *Concurrent) Find(x int) int {
	for {
		p := int(c.parent[x].Load())
		if p == x {
			return x
		}
		gp := int(c.parent[p].Load())
		if gp == p {
			return p
		}
		// Path halving: point x at its grandparent. Losing the race only
		// means another goroutine already shortened this path.
		c.parent[x].CompareAndSwap(int32(p), int32(gp))
		x = gp
	}
}

// Union merges the sets containing x and y, returning false if they were
// already joined. Safe for concurrent use.
func (c *Concurrent) Union(x, y int) bool {
	for {
		rx, ry := c.Find(x), c.Find(y)
		if rx == ry {
			return false
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Link the higher root under the lower; the CAS fails — and the
		// whole operation retries — if ry stopped being a root meanwhile.
		if c.parent[ry].CompareAndSwap(int32(ry), int32(rx)) {
			return true
		}
	}
}

// Same reports whether x and y are in the same set. Only meaningful after
// all concurrent Unions have completed.
func (c *Concurrent) Same(x, y int) bool { return c.Find(x) == c.Find(y) }

// Freeze copies the current partition into a fresh sequential UF. Call it
// after the concurrent phase to hand the result to code that wants the
// classic structure.
func (c *Concurrent) Freeze() *UF {
	assertAcyclic(c)
	u := New(len(c.parent))
	for i := range c.parent {
		if p := int(c.parent[i].Load()); p != i {
			u.Union(i, p)
		}
	}
	return u
}
