package unionfind

import "sync/atomic"

// Concurrent is a lock-free disjoint-set forest over [0, n) safe for Union
// and Find from many goroutines (in the style of Jayanti & Tarjan, "Concurrent
// Disjoint Set Union": roots are linked with a single CAS, Find halves paths).
// Links always point a higher-indexed root at a lower-indexed one, so the
// parent order is a strict decreasing chain — no cycles, no rank array to
// maintain concurrently.
//
// The final partition equals a sequential union-find fed the same pairs in
// any order (set union is associative and commutative), which is what lets
// the parallel Phase III reporting produce the exact clustering of the
// serial backend.
//
// The parent array lives behind an atomic pointer so Grow can extend the
// element universe while readers are in flight — the resident-service use
// case, where lookups keep serving while an insert batch admits new
// sequences. See Grow for the exact concurrency contract.
type Concurrent struct {
	parent atomic.Pointer[[]atomic.Int32]
}

// NewConcurrent returns a concurrent union-find over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{}
	p := make([]atomic.Int32, n)
	for i := range p {
		p[i].Store(int32(i))
	}
	c.parent.Store(&p)
	return c
}

// arr returns the current parent array. Every operation loads it exactly
// once and works on that snapshot: a concurrent Grow leaves the old array
// untouched (it copies into a fresh one), so a snapshot is always an
// internally consistent forest.
func (c *Concurrent) arr() []atomic.Int32 { return *c.parent.Load() }

// Len returns the number of elements in the structure.
func (c *Concurrent) Len() int { return len(c.arr()) }

// Grow extends the structure to n elements; the new elements [old n, n) are
// singletons. Growing to a smaller or equal size is a no-op.
//
// Concurrency contract: Grow is safe against concurrent Find/Same (readers
// keep walking the old array, a correct snapshot of the forest — at worst a
// path-halving shortcut they CAS into it is lost, which never changes any
// root), but it must NOT run concurrently with Union or another Grow: a link
// CASed into the old array while Grow copies would be silently dropped. The
// serving layer upholds this by funneling every Union and Grow through its
// single scheduler goroutine while lookups Find freely.
func (c *Concurrent) Grow(n int) {
	old := c.arr()
	if n <= len(old) {
		return
	}
	p := make([]atomic.Int32, n)
	for i := range old {
		p[i].Store(old[i].Load())
	}
	for i := len(old); i < n; i++ {
		p[i].Store(int32(i))
	}
	c.parent.Store(&p)
}

// Find returns the canonical representative of x's set, halving the path as
// it walks. Safe for concurrent use with Union, Grow and other Finds.
func (c *Concurrent) Find(x int) int {
	return findIn(c.arr(), x)
}

func findIn(parent []atomic.Int32, x int) int {
	for {
		p := int(parent[x].Load())
		if p == x {
			return x
		}
		gp := int(parent[p].Load())
		if gp == p {
			return p
		}
		// Path halving: point x at its grandparent. Losing the race only
		// means another goroutine already shortened this path.
		parent[x].CompareAndSwap(int32(p), int32(gp))
		x = gp
	}
}

// Union merges the sets containing x and y, returning false if they were
// already joined. Safe for concurrent use with Find and other Unions, but
// not with Grow (see Grow).
func (c *Concurrent) Union(x, y int) bool {
	parent := c.arr()
	for {
		rx, ry := findIn(parent, x), findIn(parent, y)
		if rx == ry {
			return false
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Link the higher root under the lower; the CAS fails — and the
		// whole operation retries — if ry stopped being a root meanwhile.
		if parent[ry].CompareAndSwap(int32(ry), int32(rx)) {
			return true
		}
	}
}

// Same reports whether x and y are in the same set. Only meaningful after
// all concurrent Unions have completed.
func (c *Concurrent) Same(x, y int) bool { return c.Find(x) == c.Find(y) }

// Freeze copies the current partition into a fresh sequential UF. Call it
// after the concurrent phase to hand the result to code that wants the
// classic structure.
func (c *Concurrent) Freeze() *UF {
	assertAcyclic(c)
	parent := c.arr()
	u := New(len(parent))
	for i := range parent {
		if p := int(parent[i].Load()); p != i {
			u.Union(i, p)
		}
	}
	return u
}
