package assemble

import (
	"bytes"
	"math/rand"
	"testing"

	"gpclust/internal/seq"
)

func randomDNA(rng *rand.Rand, n int) []byte {
	alpha := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = alpha[rng.Intn(4)]
	}
	return out
}

// shred cuts a source sequence into overlapping error-free reads.
func shred(src []byte, readLen, step int) []seq.ShotgunRead {
	var reads []seq.ShotgunRead
	for start := 0; start < len(src); start += step {
		end := start + readLen
		if end > len(src) {
			end = len(src)
		}
		reads = append(reads, seq.ShotgunRead{
			ID:  string(rune('a' + len(reads))),
			DNA: append([]byte{}, src[start:end]...),
		})
		if end == len(src) {
			break
		}
	}
	return reads
}

func TestAssembleReconstructsSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randomDNA(rng, 1200)
	reads := shred(src, 300, 200) // 100-base overlaps
	cfg := DefaultConfig()
	contigs, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("%d contigs from perfectly overlapping reads, want 1", len(contigs))
	}
	got := contigs[0].DNA
	if !bytes.Equal(got, src) && !bytes.Equal(got, seq.ReverseComplement(src)) {
		t.Fatalf("contig of %d bases does not reconstruct the %d-base source", len(got), len(src))
	}
	if contigs[0].Reads != len(reads) {
		t.Fatalf("contig merged %d reads, want %d", contigs[0].Reads, len(reads))
	}
}

func TestAssembleHandlesStrandFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomDNA(rng, 900)
	reads := shred(src, 300, 200)
	// Flip every other read to the opposite strand.
	for i := range reads {
		if i%2 == 1 {
			reads[i].DNA = seq.ReverseComplement(reads[i].DNA)
		}
	}
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("%d contigs with strand flips, want 1", len(contigs))
	}
	got := contigs[0].DNA
	if !bytes.Equal(got, src) && !bytes.Equal(got, seq.ReverseComplement(src)) {
		t.Fatal("strand-flipped reads not reassembled to the source")
	}
}

func TestAssembleKeepsUnrelatedApart(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomDNA(rng, 600)
	b := randomDNA(rng, 600)
	reads := append(shred(a, 250, 150), shred(b, 250, 150)...)
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 2 {
		t.Fatalf("%d contigs from two unrelated sources, want 2", len(contigs))
	}
}

func TestAssembleShortReadsPassThrough(t *testing.T) {
	reads := []seq.ShotgunRead{{ID: "x", DNA: []byte("ACGTACGT")}}
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 || !bytes.Equal(contigs[0].DNA, reads[0].DNA) {
		t.Fatal("short read not passed through")
	}
}

func TestAssembleValidation(t *testing.T) {
	if _, err := Assemble(nil, Config{MinOverlap: 4}); err == nil {
		t.Fatal("tiny MinOverlap accepted")
	}
}

func TestAssembleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := randomDNA(rng, 2000)
	reads := shred(src, 300, 180)
	c1, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatal("nondeterministic contig count")
	}
	for i := range c1 {
		if !bytes.Equal(c1[i].DNA, c2[i].DNA) {
			t.Fatal("nondeterministic contigs")
		}
	}
}

func TestN50(t *testing.T) {
	contigs := []Contig{
		{DNA: make([]byte, 100)},
		{DNA: make([]byte, 300)},
		{DNA: make([]byte, 600)},
	}
	// total 1000; sorted desc 600, 300: 600 covers 600 ≥ 500 → N50 = 600
	if got := N50(contigs); got != 600 {
		t.Fatalf("N50 = %d, want 600", got)
	}
	if N50(nil) != 0 {
		t.Fatal("empty N50 not 0")
	}
}

// End to end: assembling simulated shotgun reads must improve contiguity
// (longer contigs than reads) and still yield ORFs aligning to the planted
// proteins.
func TestAssemblePipeline(t *testing.T) {
	cfg := seq.DefaultMetagenomeConfig(40)
	cfg.AncestorLenMin, cfg.AncestorLenMax = 100, 140
	m, err := seq.GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := seq.DefaultShotgunConfig()
	sc.ReadLen = 240
	sc.Coverage = 5
	sc.ErrorRate = 0 // exact-overlap assembler: error-free reads
	reads, err := seq.SimulateShotgun(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	if n50 := N50(contigs); n50 <= sc.ReadLen {
		t.Fatalf("N50 = %d not above read length %d; assembly gained nothing", n50, sc.ReadLen)
	}
	orfs := ORFs(contigs, 60)
	if len(orfs) == 0 {
		t.Fatal("no ORFs from contigs")
	}
}

func TestAssembleToleratesSequencingErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := randomDNA(rng, 1500)
	reads := shred(src, 300, 200)
	// Sprinkle realistic errors outside the anchor regions.
	for i := range reads {
		for j := range reads[i].DNA {
			if rng.Float64() < 0.004 {
				reads[i].DNA[j] = "ACGT"[rng.Intn(4)]
			}
		}
	}
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n50 := N50(contigs); n50 <= 300 {
		t.Fatalf("N50 = %d with error tolerance, want above read length", n50)
	}
	// Strict exact-overlap mode should do worse on the same reads.
	strict := DefaultConfig()
	strict.MismatchRate = 0
	strictContigs, err := Assemble(reads, strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(strictContigs) < len(contigs) {
		t.Fatalf("exact mode produced fewer contigs (%d) than tolerant mode (%d)",
			len(strictContigs), len(contigs))
	}
}

func TestWithinMismatchBudget(t *testing.T) {
	a := []byte("ACGTACGTACGTACGTACGT")
	b := append([]byte{}, a...)
	if !withinMismatchBudget(a, b, 0) {
		t.Fatal("identical strings rejected")
	}
	b[2] = 'T' // a[2] is 'G'
	if withinMismatchBudget(a, b, 0) {
		t.Fatal("mismatch accepted at zero budget")
	}
	if !withinMismatchBudget(a, b, 0.05) {
		t.Fatal("1/20 mismatch rejected at 5% budget")
	}
	if withinMismatchBudget(a, a[:10], 1) {
		t.Fatal("length mismatch accepted")
	}
}

// FuzzAssemble: arbitrary read sets must never panic, and output contigs
// must collectively contain every input base (reads are never lost).
func FuzzAssemble(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"), 3)
	f.Add([]byte("A"), 1)
	f.Add([]byte(""), 2)
	f.Fuzz(func(t *testing.T, pool []byte, nReads int) {
		if nReads < 1 || nReads > 20 || len(pool) > 4096 {
			return
		}
		// Normalize to ACGT and slice into reads.
		alpha := []byte("ACGT")
		dna := make([]byte, len(pool))
		for i, c := range pool {
			dna[i] = alpha[int(c)%4]
		}
		var reads []seq.ShotgunRead
		for i := 0; i < nReads; i++ {
			lo := i * len(dna) / nReads
			hi := (i + 2) * len(dna) / nReads // overlapping windows
			if hi > len(dna) {
				hi = len(dna)
			}
			if lo >= hi {
				continue
			}
			reads = append(reads, seq.ShotgunRead{
				ID: "r", DNA: append([]byte{}, dna[lo:hi]...),
			})
		}
		contigs, err := Assemble(reads, DefaultConfig())
		if err != nil {
			t.Fatalf("assemble failed: %v", err)
		}
		totalIn := 0
		for _, r := range reads {
			totalIn += len(r.DNA)
		}
		totalOut := 0
		for _, c := range contigs {
			totalOut += len(c.DNA)
			if c.Reads < 1 {
				t.Fatal("contig with no reads")
			}
		}
		if len(reads) > 0 && len(contigs) == 0 {
			t.Fatal("reads vanished")
		}
		if totalOut > totalIn {
			t.Fatalf("contigs have %d bases from %d input bases", totalOut, totalIn)
		}
	})
}
