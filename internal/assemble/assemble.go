// Package assemble implements a greedy overlap assembler for shotgun reads
// — the "assembled" step of the paper's data-preparation pipeline ("The
// resulting environmental sequence DNA data can be assembled, annotated for
// genetic regions and subsequently translated into six frames", Section I).
// It is a deliberately classical greedy suffix–prefix merger in the
// Celera/phrap tradition (the paper cites Myers et al.'s whole-genome
// shotgun assembly): reads are seeded into contigs and extended while an
// exact overlap of at least MinOverlap bases exists, considering both
// strands.
package assemble

import (
	"fmt"
	"sort"

	"gpclust/internal/seq"
)

// Config controls assembly.
type Config struct {
	// MinOverlap is the suffix–prefix overlap (bases) required to merge a
	// read into a contig. The k-base anchor seed must match exactly.
	MinOverlap int
	// MismatchRate is the tolerated fraction of mismatching bases in the
	// verified overlap beyond the anchor (sequencing errors); 0 demands
	// exact overlaps.
	MismatchRate float64
	// MaxContigReads caps reads per contig as a mis-assembly guard
	// (0 = unlimited).
	MaxContigReads int
}

// DefaultConfig returns Sanger-style settings: 40-base overlaps tolerating
// up to 2% mismatches (≈3× the typical per-read error rate, since both
// overlapping reads contribute errors).
func DefaultConfig() Config { return Config{MinOverlap: 40, MismatchRate: 0.02} }

// Contig is one assembled sequence.
type Contig struct {
	ID    string
	DNA   []byte
	Reads int // number of reads merged into the contig
}

// kmerKey hashes w bases with FNV-1a.
func kmerKey(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// oriented is one strand of one read.
type oriented struct {
	read int
	dna  []byte
}

// Assemble merges the reads into contigs. Deterministic: reads are seeded
// in input order and candidate extensions are tried in index order. Reads
// shorter than MinOverlap are passed through as single-read contigs.
func Assemble(reads []seq.ShotgunRead, cfg Config) ([]Contig, error) {
	if cfg.MinOverlap < 16 {
		return nil, fmt.Errorf("assemble: MinOverlap %d too small to be specific", cfg.MinOverlap)
	}
	k := cfg.MinOverlap

	// Index both orientations of every read by their prefix k-mer.
	var orients []oriented
	prefixIdx := make(map[uint64][]int32)
	for i, r := range reads {
		if len(r.DNA) >= k {
			for _, dna := range [][]byte{r.DNA, seq.ReverseComplement(r.DNA)} {
				orients = append(orients, oriented{read: i, dna: dna})
				key := kmerKey(dna[:k])
				prefixIdx[key] = append(prefixIdx[key], int32(len(orients)-1))
			}
		}
	}

	maxRead := 0
	for _, r := range reads {
		if len(r.DNA) > maxRead {
			maxRead = len(r.DNA)
		}
	}

	used := make([]bool, len(reads))
	var contigs []Contig
	for i, r := range reads {
		if used[i] {
			continue
		}
		used[i] = true
		if len(r.DNA) < k {
			contigs = append(contigs, Contig{
				ID: fmt.Sprintf("contig%05d", len(contigs)), DNA: r.DNA, Reads: 1,
			})
			continue
		}
		contig := append([]byte{}, r.DNA...)
		nReads := 1
		// Extend rightward greedily.
		for cfg.MaxContigReads == 0 || nReads < cfg.MaxContigReads {
			ext := extendRight(contig, k, maxRead, cfg.MismatchRate, orients, prefixIdx, used)
			contig = ext.merged
			nReads += ext.absorbed
			if ext.extended == 0 {
				break
			}
		}
		// Extend leftward by extending the reverse complement rightward.
		rc := seq.ReverseComplement(contig)
		for cfg.MaxContigReads == 0 || nReads < cfg.MaxContigReads {
			ext := extendRight(rc, k, maxRead, cfg.MismatchRate, orients, prefixIdx, used)
			rc = ext.merged
			nReads += ext.absorbed
			if ext.extended == 0 {
				break
			}
		}
		contig = seq.ReverseComplement(rc)
		contigs = append(contigs, Contig{
			ID: fmt.Sprintf("contig%05d", len(contigs)), DNA: contig, Reads: nReads,
		})
	}
	// Longest first for deterministic, useful ordering.
	sort.SliceStable(contigs, func(a, b int) bool { return len(contigs[a].DNA) > len(contigs[b].DNA) })
	for i := range contigs {
		contigs[i].ID = fmt.Sprintf("contig%05d", i)
	}
	return contigs, nil
}

// extension reports one rightward pass's outcome: the (possibly grown)
// contig, how many reads it absorbed (contained + merged), and how many new
// bases the best merge contributed.
type extension struct {
	merged   []byte
	absorbed int
	extended int
}

// extendRight scans the contig's suffix for unused reads whose prefix
// anchors there with an exact k-base seed and verifies the remaining
// overlap within the mismatch budget. Reads fully contained in the contig
// are absorbed in place; among reads extending past the end, the one
// contributing the most new bases wins. Overlaps up to the longest read
// length are considered.
func extendRight(contig []byte, k, maxRead int, mismatchRate float64, orients []oriented, prefixIdx map[uint64][]int32, used []bool) extension {
	res := extension{merged: contig}
	if len(contig) < k {
		return res
	}
	lowest := len(contig) - maxRead
	if lowest < 0 {
		lowest = 0
	}
	bestRead := -1
	var bestMerged []byte
	for p := len(contig) - k; p >= lowest; p-- {
		key := kmerKey(contig[p : p+k])
		for _, oi := range prefixIdx[key] {
			o := orients[oi]
			if used[o.read] {
				continue
			}
			tail := contig[p:]
			if len(o.dna) <= len(tail) {
				// Fully contained: absorb if it matches in place.
				if withinMismatchBudget(o.dna, tail[:len(o.dna)], mismatchRate) {
					used[o.read] = true
					res.absorbed++
				}
				continue
			}
			if !withinMismatchBudget(o.dna[:len(tail)], tail, mismatchRate) {
				continue
			}
			gain := len(o.dna) - len(tail)
			if bestRead < 0 || gain > res.extended {
				bestRead = o.read
				res.extended = gain
				bestMerged = append(append([]byte{}, contig...), o.dna[len(tail):]...)
			}
		}
	}
	if bestRead >= 0 {
		used[bestRead] = true
		res.absorbed++
		res.merged = bestMerged
	}
	return res
}

// withinMismatchBudget reports whether two equal-length base strings differ
// in at most rate × length positions (and never in more than they could
// under an early exit).
func withinMismatchBudget(a, b []byte, rate float64) bool {
	if len(a) != len(b) {
		return false
	}
	budget := int(rate * float64(len(a)))
	mism := 0
	for i := range a {
		if a[i] != b[i] {
			mism++
			if mism > budget {
				return false
			}
		}
	}
	return true
}

// N50 returns the standard assembly-contiguity statistic: the length L such
// that contigs of length ≥ L cover half the assembled bases.
func N50(contigs []Contig) int {
	total := 0
	lens := make([]int, len(contigs))
	for i, c := range contigs {
		lens[i] = len(c.DNA)
		total += len(c.DNA)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	run := 0
	for _, l := range lens {
		run += l
		if 2*run >= total {
			return l
		}
	}
	return 0
}

// ORFs extracts putative proteins from the contigs by six-frame
// translation, feeding the rest of the pipeline.
func ORFs(contigs []Contig, minLen int) []seq.Sequence {
	var out []seq.Sequence
	for _, c := range contigs {
		for oi, orf := range seq.SixFrameORFs(c.DNA, minLen) {
			out = append(out, seq.Sequence{
				ID:       fmt.Sprintf("%s_orf%d_f%d", c.ID, oi, orf.Frame),
				Residues: orf.Peptide,
			})
		}
	}
	return out
}
