package graph

import (
	"fmt"
	"math"
)

// Stats summarizes a similarity graph the way Table II of the paper does.
type Stats struct {
	Vertices      int     // total vertices including singletons
	NonSingletons int     // vertices with degree ≥ 1
	Edges         int64   // undirected edge count
	AvgDegree     float64 // mean degree over non-singleton vertices
	StdDegree     float64 // population standard deviation of the same
	LargestCC     int     // size of the largest connected component
	Components    int     // number of connected components over non-singletons
}

// ComputeStats measures the graph. Degree statistics follow the paper's
// convention of ignoring singletons ("the remaining 17,079 sequences formed a
// graph ... and the average vertex degree is 44 ± 69").
func ComputeStats(g *Graph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	var sum, sumSq float64
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(uint32(v))
		if d == 0 {
			continue
		}
		s.NonSingletons++
		sum += float64(d)
		sumSq += float64(d) * float64(d)
	}
	if s.NonSingletons > 0 {
		n := float64(s.NonSingletons)
		s.AvgDegree = sum / n
		variance := sumSq/n - s.AvgDegree*s.AvgDegree
		if variance > 0 {
			s.StdDegree = math.Sqrt(variance)
		}
	}
	labels, count := ConnectedComponents(g)
	max := 0
	nonSingletonComps := 0
	for _, sz := range ComponentSizes(labels, count) {
		if sz > max {
			max = sz
		}
		if sz > 1 {
			nonSingletonComps++
		}
	}
	s.LargestCC = max
	s.Components = nonSingletonComps
	return s
}

// String renders the stats as a Table II-style row.
func (s Stats) String() string {
	return fmt.Sprintf("#Vertices=%d #NonSingleton=%d #Edges=%d AvgDeg=%.0f±%.0f LargestCC=%d",
		s.Vertices, s.NonSingletons, s.Edges, s.AvgDegree, s.StdDegree, s.LargestCC)
}

// DegreeHistogram counts vertices per degree; the slice index is the degree,
// truncated at maxDegree (higher degrees accumulate in the last bucket).
func DegreeHistogram(g *Graph, maxDegree int) []int {
	h := make([]int, maxDegree+1)
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(uint32(v))
		if d > maxDegree {
			d = maxDegree
		}
		h[d]++
	}
	return h
}
