package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Degree(3) != 0 {
		t.Fatalf("Degree(3) = %d, want 0 (singleton)", g.Degree(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop: dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedupe", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self loop retained at vertex 2")
	}
}

func TestBuilderGrowsVertexSpace(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10 (grown by edge)", g.NumVertices())
	}
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 3}, {3, 4}})
	cases := []struct {
		u, v uint32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 3, true}, {3, 4, true},
		{0, 3, false}, {2, 2, false}, {4, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestValidatePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGraph(50, 120, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	// two triangles + an isolated vertex + a path
	g := FromEdges(9, []Edge{
		{0, 1}, {1, 2}, {2, 0}, // comp A
		{3, 4}, {4, 5}, {5, 3}, // comp B
		{7, 8}, // comp C (path)
		// 6 isolated
	})
	labels, count := ConnectedComponents(g)
	if count != 4 {
		t.Fatalf("component count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("triangle A not one component")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("triangle B not one component")
	}
	if labels[0] == labels[3] {
		t.Error("triangles merged")
	}
	if labels[6] == labels[0] || labels[6] == labels[3] || labels[6] == labels[7] {
		t.Error("isolated vertex shares a label")
	}
	sizes := ComponentSizes(labels, count)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 9 {
		t.Fatalf("component sizes sum to %d, want 9", total)
	}
	if LargestComponent(g) != 3 {
		t.Fatalf("LargestComponent = %d, want 3", LargestComponent(g))
	}
}

func TestComponentMembers(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {2, 3}})
	labels, count := ConnectedComponents(g)
	members := ComponentMembers(labels, count)
	if len(members) != 3 {
		t.Fatalf("len(members) = %d, want 3", len(members))
	}
	seen := 0
	for _, m := range members {
		seen += len(m)
		for _, v := range m {
			if labels[v] != labels[m[0]] {
				t.Error("member with inconsistent label")
			}
		}
	}
	if seen != 5 {
		t.Fatalf("members cover %d vertices, want 5", seen)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	sub, orig := InducedSubgraph(g, []uint32{0, 1, 2})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub vertices = %d, want 3", sub.NumVertices())
	}
	if sub.NumEdges() != 2 { // edges 0-1, 1-2 survive; 2-3 and 5-0 cut
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 0 || orig[1] != 1 || orig[2] != 2 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNonSingletonVertices(t *testing.T) {
	g := FromEdges(5, []Edge{{1, 3}})
	ns := g.NonSingletonVertices()
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 3 {
		t.Fatalf("NonSingletonVertices = %v, want [1 3]", ns)
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 0}}) // triangle + 2 singletons
	s := ComputeStats(g)
	if s.Vertices != 5 || s.NonSingletons != 3 || s.Edges != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 2 || s.StdDegree != 0 {
		t.Fatalf("degree stats = %v±%v, want 2±0", s.AvgDegree, s.StdDegree)
	}
	if s.LargestCC != 3 {
		t.Fatalf("LargestCC = %d, want 3", s.LargestCC)
	}
	if s.Components != 1 {
		t.Fatalf("Components = %d, want 1", s.Components)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	h := DegreeHistogram(g, 2)
	// star: center degree 3 (clipped to bucket 2), leaves degree 1
	if h[0] != 0 || h[1] != 3 || h[2] != 1 {
		t.Fatalf("histogram = %v, want [0 3 1]", h)
	}
}

func TestPowerLawSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sizes := PowerLawSizes(rng, 10000, 5, 500, 2.2)
	sum := 0
	for _, s := range sizes {
		if s < 1 || s > 500 {
			t.Fatalf("size %d out of range", s)
		}
		sum += s
	}
	if sum != 10000 {
		t.Fatalf("sizes sum to %d, want 10000", sum)
	}
	// power law: small families must dominate counts
	small, large := 0, 0
	for _, s := range sizes {
		if s <= 20 {
			small++
		} else if s >= 100 {
			large++
		}
	}
	if small <= large {
		t.Errorf("power law shape violated: %d small vs %d large families", small, large)
	}
}

func TestPlantedGroundTruthConsistent(t *testing.T) {
	cfg := DefaultPlantedConfig(2000)
	g, gt := Planted(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	inFam := 0
	for v, f := range gt.Family {
		if f >= 0 {
			inFam++
			if f >= int32(gt.NumFamilies) {
				t.Fatalf("family id %d out of range", f)
			}
			if gt.SuperFamily[v] < 0 {
				t.Fatalf("vertex %d in family but not in super-family", v)
			}
		} else if gt.SuperFamily[v] >= 0 {
			t.Fatalf("background vertex %d has super-family", v)
		}
	}
	want := int(float64(2000) * cfg.FamilyFraction)
	if inFam != want {
		t.Fatalf("family members = %d, want %d", inFam, want)
	}
}

func TestPlantedFamiliesAreDense(t *testing.T) {
	cfg := DefaultPlantedConfig(3000)
	cfg.NoiseEdges = 0
	cfg.BridgedPairs = 0
	g, gt := Planted(cfg)
	// measure density of a few large families
	fams := make(map[int32][]uint32)
	for v, f := range gt.Family {
		if f >= 0 {
			fams[f] = append(fams[f], uint32(v))
		}
	}
	checked := 0
	for _, members := range fams {
		if len(members) < 10 || len(members) > 200 {
			continue
		}
		edges := 0
		for i := range members {
			for j := i + 1; j < len(members); j++ {
				if g.HasEdge(members[i], members[j]) {
					edges++
				}
			}
		}
		possible := len(members) * (len(members) - 1) / 2
		density := float64(edges) / float64(possible)
		if density < cfg.IntraDensity-0.25 {
			t.Errorf("family of size %d has density %.2f, want ≈ %.2f",
				len(members), density, cfg.IntraDensity)
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no mid-sized family found to check")
	}
}

func TestPlantedDeterministic(t *testing.T) {
	cfg := DefaultPlantedConfig(1000)
	g1, _ := Planted(cfg)
	g2, _ := Planted(cfg)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d",
			g1.NumEdges(), g2.NumEdges())
	}
	for i := range g1.Adj {
		if g1.Adj[i] != g2.Adj[i] {
			t.Fatal("same seed produced different adjacency")
		}
	}
}

func TestRandomGraph(t *testing.T) {
	g := RandomGraph(100, 300, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 250 { // some dupes may reduce below 300 before builder retries
		t.Fatalf("NumEdges = %d, want ≥ 250", g.NumEdges())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(12, 30000, 0.57, 0.19, 0.19, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4096 {
		t.Fatalf("vertices = %d, want 4096", g.NumVertices())
	}
	if g.NumEdges() < 20000 {
		t.Fatalf("edges = %d after dedupe, want most of 30000", g.NumEdges())
	}
	st := ComputeStats(g)
	// Scale-free shape: degree standard deviation well above the mean.
	if st.StdDegree < st.AvgDegree {
		t.Errorf("RMAT degrees %0.1f±%0.1f not heavy-tailed", st.AvgDegree, st.StdDegree)
	}
	// Determinism.
	g2 := RMAT(12, 30000, 0.57, 0.19, 0.19, 5)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("RMAT not deterministic")
	}
}

func TestRMATValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid probabilities did not panic")
		}
	}()
	RMAT(4, 10, 0.6, 0.3, 0.3, 1)
}
