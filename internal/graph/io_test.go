package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			return false
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RandomGraph(200, 600, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

func TestEdgeListSingletonsPreserved(t *testing.T) {
	// vertex 4 is a singleton; the header must preserve the vertex count
	g := FromEdges(5, []Edge{{0, 1}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 5 {
		t.Fatalf("vertices after round trip = %d, want 5", g2.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"a b\n",     // non-numeric
		"1 x\n",     // second field bad
		"1 -2\n",    // negative
		"1 5e9 9\n", // overflow uint32
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := RandomGraph(500, 2000, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXXsomething")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := RandomGraph(50, 100, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 4, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncated stream (%d bytes) accepted", cut)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	cfg := DefaultPlantedConfig(10000)
	for i := 0; i < b.N; i++ {
		Planted(cfg)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g, _ := Planted(DefaultPlantedConfig(20000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

// failWriter errors after n bytes, exercising write error propagation.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = errors.New("synthetic write failure")

func TestWriteErrorsPropagate(t *testing.T) {
	g := RandomGraph(100, 300, 5)
	for _, cut := range []int{0, 3, 20, 900} {
		if err := WriteEdgeList(&failWriter{left: cut}, g); err == nil {
			t.Errorf("WriteEdgeList survived a writer failing after %d bytes", cut)
		}
		if err := WriteBinary(&failWriter{left: cut}, g); err == nil {
			t.Errorf("WriteBinary survived a writer failing after %d bytes", cut)
		}
	}
}
