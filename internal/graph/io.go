package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a text edge list: a header line
// "# vertices N" followed by one "u v" pair per line with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format written by WriteEdgeList.
// Lines starting with '#' other than the vertex header are comments.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n int64
			if _, err := fmt.Sscanf(line, "# vertices %d", &n); err == nil {
				if n < 0 || n > MaxVertexID+1 {
					return nil, fmt.Errorf("graph: line %d: vertex count %d out of range", lineNo, n)
				}
				if uint32(n) > b.n {
					b.n = uint32(n)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %w", lineNo, fields[1], err)
		}
		if u > MaxVertexID || v > MaxVertexID {
			return nil, fmt.Errorf("graph: line %d: vertex id exceeds %d", lineNo, MaxVertexID)
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

var binMagic = [4]byte{'G', 'P', 'C', '1'}

// WriteBinary writes the CSR graph in a compact little-endian binary format:
// magic "GPC1", uint64 n, uint64 len(adj), offsets, adjacency. This is the
// on-disk format the Disk I/O column of Table I times.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.Adj)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, off := range g.Offsets {
		binary.LittleEndian.PutUint64(buf, uint64(off))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, v := range g.Adj {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	adjLen := binary.LittleEndian.Uint64(hdr[8:])
	if n > MaxVertexID+1 || adjLen > 1<<40 {
		return nil, fmt.Errorf("graph: implausible header n=%d adjLen=%d", n, adjLen)
	}
	// Grow the arrays as bytes actually arrive rather than trusting the
	// header's length fields: a hostile or truncated stream then fails with
	// bounded memory instead of a giant up-front allocation.
	g := &Graph{}
	buf := make([]byte, 8)
	for i := uint64(0); i < n+1; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offset %d: %w", i, err)
		}
		g.Offsets = append(g.Offsets, int64(binary.LittleEndian.Uint64(buf)))
	}
	for i := uint64(0); i < adjLen; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency %d: %w", i, err)
		}
		g.Adj = append(g.Adj, binary.LittleEndian.Uint32(buf[:4]))
	}
	return g, nil
}
