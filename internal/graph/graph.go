// Package graph provides the graph substrate for gpClust: compressed
// sparse-row (CSR) undirected graphs, connected components, degree and
// component statistics (Table II of the paper), synthetic generators that
// plant dense subgraphs, and simple edge-list I/O.
//
// The similarity graph G = (V, E) is undirected: (v_i, v_j) ∈ E iff the
// corresponding sequences have significant similarity. Vertices are dense
// uint32 ids in [0, n).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph in CSR (adjacency-list) form. Neighbor lists
// are sorted and contain no duplicates or self loops. Both directions of
// every edge are stored, so NumEdges() = len(Adj)/2.
type Graph struct {
	// Offsets has length NumVertices()+1; the neighbors of v are
	// Adj[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	// Adj is the concatenation of all adjacency lists.
	Adj []uint32
}

// NumVertices returns n, the number of vertices (including singletons).
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns |Γ(v)|.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns Γ(v) as a shared (read-only) slice.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether (u,v) ∈ E using binary search on Γ(u).
func (g *Graph) HasEdge(u, v uint32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edge is one undirected edge; by convention U < V in normalized form.
type Edge struct {
	U, V uint32
}

// Builder accumulates edges and produces a normalized Graph. Duplicate edges
// and self loops are dropped. The zero value is ready to use.
type Builder struct {
	n     uint32
	edges []Edge
}

// NewBuilder returns a builder that will produce a graph with at least n
// vertices (ids seen in edges can grow it further).
func NewBuilder(n int) *Builder {
	return &Builder{n: uint32(n)}
}

// MaxVertexID is the largest permitted vertex id: ids must stay below the
// min-wise hashing prime (2^31 - 1) for h(v) = (Av+B) mod P to remain a
// permutation of the id space.
const MaxVertexID = 1<<31 - 2

// AddEdge records the undirected edge (u,v). Self loops are ignored.
// Vertex ids above MaxVertexID violate the package contract and panic.
func (b *Builder) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v > MaxVertexID {
		panic(fmt.Sprintf("graph: vertex id %d exceeds MaxVertexID %d", v, MaxVertexID))
	}
	if v+1 > b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// NumPendingEdges returns the number of edge records added so far
// (before deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the CSR graph. The builder may be reused afterwards but
// retains its edges.
func (b *Builder) Build() *Graph {
	// Sort and dedupe normalized edges.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	uniq := b.edges[:0:len(b.edges)]
	var prev Edge
	for i, e := range b.edges {
		if i > 0 && e == prev {
			continue
		}
		uniq = append(uniq, e)
		prev = e
	}
	b.edges = uniq

	n := int(b.n)
	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]uint32, deg[n])
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	for _, e := range b.edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{Offsets: deg, Adj: adj}
	// Neighbor lists are sorted because edges were sorted by (U,V) and each
	// vertex receives neighbors in increasing order of the other endpoint...
	// except the mixture of U-side and V-side insertions breaks that; sort
	// each list to guarantee the invariant.
	for v := 0; v < n; v++ {
		lst := adj[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	return g
}

// FromEdges is a convenience constructor from an edge slice.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Validate checks CSR invariants (sorted unique neighbor lists, symmetry,
// no self loops) and returns a descriptive error on the first violation.
// Intended for tests and for validating externally loaded graphs.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d != n+1", len(g.Offsets))
	}
	if g.Offsets[0] != 0 || g.Offsets[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: offset endpoints [%d,%d] do not span adj of length %d",
			g.Offsets[0], g.Offsets[n], len(g.Adj))
	}
	// Offsets must be checked before any Neighbors slicing: on graphs
	// loaded from untrusted bytes, hostile offsets would otherwise panic.
	for v := 0; v < n; v++ {
		if g.Offsets[v] < 0 || g.Offsets[v] > g.Offsets[v+1] || g.Offsets[v+1] > int64(len(g.Adj)) {
			return fmt.Errorf("graph: offsets not monotone in [0,%d] at vertex %d: %d, %d",
				len(g.Adj), v, g.Offsets[v], g.Offsets[v+1])
		}
	}
	for v := 0; v < n; v++ {
		lst := g.Neighbors(uint32(v))
		for i, u := range lst {
			if int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == uint32(v) {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && lst[i-1] >= u {
				return fmt.Errorf("graph: unsorted/duplicate neighbor list at %d", v)
			}
			if !g.HasEdge(u, uint32(v)) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// NonSingletonVertices returns the ids of vertices with degree ≥ 1. The paper
// drops singleton vertices before clustering ("2,921 vertices are singleton
// vertices, and they will be ignored").
func (g *Graph) NonSingletonVertices() []uint32 {
	var out []uint32
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) > 0 {
			out = append(out, uint32(v))
		}
	}
	return out
}
