package graph

import (
	"math"
	"math/rand"
	"sort"
)

// GroundTruth records the planted structure of a synthetic graph. It plays
// the role of the paper's "benchmark partition" (GOS predicted protein
// families): Family is the tight core-family assignment, SuperFamily the
// loose profile-expanded family that merges related cores (the paper's
// benchmark clusters are such loose expansions — "protein family is a
// relatively loosely defined term"). Background vertices carry -1.
type GroundTruth struct {
	Family      []int32 // per-vertex planted dense-subgraph id, -1 for background
	SuperFamily []int32 // per-vertex loose family id, -1 for background
	NumFamilies int
	NumSupers   int
}

// PlantedConfig configures the planted dense-subgraph generator used for the
// performance and quality experiments. Defaults (via DefaultPlantedConfig)
// target the shape of the paper's 2M-sequence graph: heavy-tailed family
// sizes, average degree in the tens with a large standard deviation, a small
// fraction of singleton vertices, and sparse inter-family noise.
type PlantedConfig struct {
	NumVertices int // total vertices including background/singletons

	// Family size distribution: discrete power law on [MinFamily, MaxFamily]
	// with exponent Alpha (larger ⇒ fewer big families).
	MinFamily int
	MaxFamily int
	Alpha     float64

	// FamilyFraction is the fraction of vertices assigned to planted
	// families; the rest are background (mostly singletons plus noise).
	FamilyFraction float64

	// IntraDensity is the edge probability within a family (Equation 6
	// density of a planted cluster in expectation).
	IntraDensity float64

	// LooseFraction of the families of at most LooseMaxSize members are
	// built at LooseDensity instead of IntraDensity, modeling the real
	// data's heterogeneous families whose members share fewer neighbors.
	// Sized below k/LooseDensity², such families sit under the fixed-k
	// linkage's reach — GOS fragments them below the evaluation's size
	// cutoff — while shingling's randomized linkage still recovers them:
	// the source of the paper's sensitivity gap (and of the ±σ spread on
	// its density figures). LooseMaxSize 0 means no size cap.
	LooseFraction float64
	LooseDensity  float64
	LooseMaxSize  int

	// FamiliesPerSuper groups consecutive families into one loose
	// super-family of roughly this many cores (≥1). Cross-links within a
	// super-family are added with CrossDensity — far sparser than
	// IntraDensity, mirroring the benchmark's low density (0.09±0.12).
	FamiliesPerSuper int
	CrossDensity     float64

	// NoiseEdges adds this many uniformly random edges across the whole
	// graph (may touch background vertices).
	NoiseEdges int

	// BridgedPairs plants pairs of large families joined by a single
	// anchor: one member of the second family gains edges to BridgeHubs
	// members of the first. The anchor and its new neighbors then share
	// well over k common neighbors, so the GOS fixed-k linkage merges the
	// two families into one loosely connected cluster; but a dozen extra
	// neighbors barely move the Jaccard index of neighborhoods hundreds
	// strong, so shingling keeps the families apart — the failure mode the
	// paper describes ("GOS approach grouped some highly-connected
	// clusters into a relatively loosely-connected cluster due to the
	// limitation of the fixed size k"). Only families of at least
	// BridgeMinFamily members are bridged (an anchor would dominate small
	// neighborhoods and legitimately merge them under any measure).
	BridgedPairs int
	BridgeHubs   int
	// BridgeMinFamily is the minimum size of a bridgeable family;
	// 0 defaults to 8× BridgeHubs.
	BridgeMinFamily int

	Seed int64
}

// DefaultPlantedConfig returns a configuration producing a graph with the
// qualitative shape of the paper's 2M-sequence input, scaled to n vertices.
func DefaultPlantedConfig(n int) PlantedConfig {
	return PlantedConfig{
		NumVertices:      n,
		MinFamily:        5,
		MaxFamily:        n / 25,
		Alpha:            2.2,
		FamilyFraction:   0.78, // paper: 1,562,984 of 2M non-singleton
		IntraDensity:     0.75, // paper: gpClust cluster density 0.75±0.28
		FamiliesPerSuper: 3,
		CrossDensity:     0.02,
		NoiseEdges:       n / 50,
		BridgedPairs:     maxInt(1, n/4000),
		BridgeHubs:       12,
		Seed:             1,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PowerLawSizes draws sizes from a discrete power law p(k) ∝ k^-alpha on
// [min, max] until their sum reaches total; the last size is clipped.
func PowerLawSizes(rng *rand.Rand, total, min, max int, alpha float64) []int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	var sizes []int
	sum := 0
	for sum < total {
		// Inverse-CDF sampling of a continuous power law, then floor.
		u := rng.Float64()
		a1 := 1 - alpha
		lo, hi := math.Pow(float64(min), a1), math.Pow(float64(max)+1, a1)
		k := int(math.Pow(lo+u*(hi-lo), 1/a1))
		if k < min {
			k = min
		}
		if k > max {
			k = max
		}
		if sum+k > total {
			k = total - sum
		}
		if k > 0 {
			sizes = append(sizes, k)
			sum += k
		}
	}
	return sizes
}

// Planted generates a graph with planted dense subgraphs per cfg and returns
// it with its ground truth.
func Planted(cfg PlantedConfig) (*Graph, *GroundTruth) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumVertices
	gt := &GroundTruth{
		Family:      make([]int32, n),
		SuperFamily: make([]int32, n),
	}
	for i := range gt.Family {
		gt.Family[i] = -1
		gt.SuperFamily[i] = -1
	}

	inFamilies := int(float64(n) * cfg.FamilyFraction)
	sizes := PowerLawSizes(rng, inFamilies, cfg.MinFamily, cfg.MaxFamily, cfg.Alpha)
	gt.NumFamilies = len(sizes)

	// Assign vertex ranges to families; shuffle vertex ids so family members
	// are not contiguous (adjacency lists must not be trivially ordered).
	perm := rng.Perm(n)
	b := NewBuilder(n)
	families := make([][]uint32, len(sizes))
	cursor := 0
	fps := cfg.FamiliesPerSuper
	if fps < 1 {
		fps = 1
	}
	for f, sz := range sizes {
		members := make([]uint32, sz)
		super := int32(f / fps)
		for i := 0; i < sz; i++ {
			v := uint32(perm[cursor])
			cursor++
			members[i] = v
			gt.Family[v] = int32(f)
			gt.SuperFamily[v] = super
		}
		families[f] = members
		density := cfg.IntraDensity
		if cfg.LooseFraction > 0 && rng.Float64() < cfg.LooseFraction &&
			(cfg.LooseMaxSize == 0 || sz <= cfg.LooseMaxSize) {
			density = cfg.LooseDensity
		}
		sampleDenseEdges(rng, b, members, density)
	}
	if len(sizes) > 0 {
		gt.NumSupers = int(gt.SuperFamily[families[len(sizes)-1][0]]) + 1
	}

	// Sparse cross links inside each super-family.
	if cfg.CrossDensity > 0 && fps > 1 {
		for s := 0; s < gt.NumSupers; s++ {
			lo, hi := s*fps, (s+1)*fps
			if hi > len(families) {
				hi = len(families)
			}
			for a := lo; a < hi; a++ {
				for c := a + 1; c < hi; c++ {
					sampleBipartiteEdges(rng, b, families[a], families[c], cfg.CrossDensity)
				}
			}
		}
	}

	// Boundary patches between randomly chosen large-family pairs
	// (the GOS fixed-k failure mode).
	if cfg.BridgedPairs > 0 && cfg.BridgeHubs > 0 {
		minFam := cfg.BridgeMinFamily
		if minFam <= 0 {
			minFam = 8 * cfg.BridgeHubs
		}
		// A bridge hangs a small sibling family's anchor off a large family
		// of the same super-family: GOS's fixed-k merge then stays inside a
		// benchmark group (matching Table III's GOS PPV of 100%) and shows
		// up as the low cluster density the paper reports, rather than as
		// false positives.
		type pair struct{ big, small int }
		var candidates []pair
		for f, members := range families {
			if len(members) < minFam {
				continue
			}
			super := f / fps
			for g := super * fps; g < (super+1)*fps && g < len(families); g++ {
				if g == f || len(families[g]) < 2*cfg.BridgeHubs || len(families[g]) >= minFam {
					continue
				}
				candidates = append(candidates, pair{big: f, small: g})
			}
		}
		// Prefer the smallest eligible big families: a merge's spurious
		// pair mass is |A|·|B|, and the experiment calibration needs it
		// bounded as the input scales.
		sort.Slice(candidates, func(i, j int) bool {
			li, lj := len(families[candidates[i].big]), len(families[candidates[j].big])
			if li != lj {
				return li < lj
			}
			if candidates[i].big != candidates[j].big {
				return candidates[i].big < candidates[j].big
			}
			return candidates[i].small < candidates[j].small
		})
		for p := 0; p < cfg.BridgedPairs && p < len(candidates); p++ {
			famBig, famSmall := families[candidates[p].big], families[candidates[p].small]
			anchor := famSmall[rng.Intn(len(famSmall))]
			for _, u := range pickDistinct(rng, famBig, cfg.BridgeHubs) {
				b.AddEdge(anchor, u)
			}
		}
	}

	// Global noise.
	for i := 0; i < cfg.NoiseEdges; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}

	return b.Build(), gt
}

// sampleDenseEdges adds each pair within members independently with
// probability p, using geometric skipping so the cost is proportional to the
// number of sampled edges rather than the number of pairs.
func sampleDenseEdges(rng *rand.Rand, b *Builder, members []uint32, p float64) {
	if p <= 0 || len(members) < 2 {
		return
	}
	if p >= 1 {
		for i := range members {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(members[i], members[j])
			}
		}
		return
	}
	k := len(members)
	total := int64(k) * int64(k-1) / 2
	logq := math.Log(1 - p)
	idx := int64(-1)
	for {
		idx += 1 + int64(math.Log(1-rng.Float64())/logq)
		if idx >= total {
			return
		}
		// Map linear pair index to (i, j), i < j.
		i := int((math.Sqrt(8*float64(idx)+1) - 1) / 2)
		// guard against float drift
		for int64(i+1)*int64(i+2)/2 <= idx {
			i++
		}
		for int64(i)*int64(i+1)/2 > idx {
			i--
		}
		j := int(idx - int64(i)*int64(i+1)/2)
		b.AddEdge(members[i+1], members[j])
	}
}

// sampleBipartiteEdges adds cross edges between two member sets with
// probability p each, via geometric skipping.
func sampleBipartiteEdges(rng *rand.Rand, b *Builder, as, bs []uint32, p float64) {
	if p <= 0 || len(as) == 0 || len(bs) == 0 {
		return
	}
	total := int64(len(as)) * int64(len(bs))
	logq := math.Log(1 - p)
	idx := int64(-1)
	for {
		idx += 1 + int64(math.Log(1-rng.Float64())/logq)
		if idx >= total {
			return
		}
		b.AddEdge(as[idx/int64(len(bs))], bs[idx%int64(len(bs))])
	}
}

// pickDistinct samples k distinct members (all of them if k ≥ len).
func pickDistinct(rng *rand.Rand, members []uint32, k int) []uint32 {
	if k >= len(members) {
		return members
	}
	perm := rng.Perm(len(members))
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = members[perm[i]]
	}
	return out
}

// RandomGraph generates an Erdős–Rényi G(n, m) graph with m edges, used by
// tests and as a no-structure control.
func RandomGraph(n int, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for len(b.edges) < m {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return b.Build()
}

// RMAT generates a scale-free graph with the recursive-matrix model
// (Chakrabarti, Zhan & Faloutsos 2004): each edge lands in a quadrant of
// the adjacency matrix with probabilities (a, b, c, d), recursively. With
// the canonical skewed parameters it produces the heavy-tailed,
// community-laced structure of web and social graphs — the domain the
// Shingling heuristic was originally designed for (Gibson et al. studied
// host-level web graphs). Self loops and duplicates are dropped by the
// builder, so the result has at most m edges.
func RMAT(scaleLog2 int, m int, a, b, c float64, seed int64) *Graph {
	n := 1 << scaleLog2
	d := 1 - a - b - c
	if d < 0 {
		panic("graph: RMAT probabilities exceed 1")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := scaleLog2 - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bld.AddEdge(uint32(u), uint32(v))
	}
	return bld.Build()
}
