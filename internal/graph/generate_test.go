package graph

import (
	"math/rand"
	"testing"
)

func TestPlantedLooseFamilies(t *testing.T) {
	cfg := DefaultPlantedConfig(4000)
	cfg.LooseFraction = 1.0 // every eligible family loose
	cfg.LooseDensity = 0.3
	cfg.LooseMaxSize = 40
	cfg.NoiseEdges = 0
	cfg.BridgedPairs = 0
	cfg.CrossDensity = 0
	g, gt := Planted(cfg)

	fams := map[int32][]uint32{}
	for v, f := range gt.Family {
		if f >= 0 {
			fams[f] = append(fams[f], uint32(v))
		}
	}
	looseChecked, denseChecked := 0, 0
	for _, members := range fams {
		if len(members) < 15 {
			continue
		}
		edges := 0
		for i := range members {
			for j := i + 1; j < len(members); j++ {
				if g.HasEdge(members[i], members[j]) {
					edges++
				}
			}
		}
		density := float64(edges) / float64(len(members)*(len(members)-1)/2)
		if len(members) <= cfg.LooseMaxSize {
			if density > 0.5 {
				t.Errorf("family of %d should be loose, density %.2f", len(members), density)
			}
			looseChecked++
		} else {
			if density < 0.5 {
				t.Errorf("family of %d above the loose cap should be dense, density %.2f",
					len(members), density)
			}
			denseChecked++
		}
	}
	if looseChecked == 0 || denseChecked == 0 {
		t.Fatalf("band coverage too thin: %d loose, %d dense checked", looseChecked, denseChecked)
	}
}

func TestPlantedBridges(t *testing.T) {
	cfg := DefaultPlantedConfig(6000)
	cfg.MaxFamily = 700
	cfg.FamiliesPerSuper = 6
	cfg.BridgedPairs = 3
	cfg.BridgeHubs = 10
	cfg.BridgeMinFamily = 150
	cfg.NoiseEdges = 0
	cfg.CrossDensity = 0
	g, gt := Planted(cfg)

	// Find anchors: vertices with ≥ BridgeHubs neighbors in a *different*
	// family of the same super-family.
	anchors := 0
	for v := 0; v < g.NumVertices(); v++ {
		if gt.Family[v] < 0 {
			continue
		}
		cross := map[int32]int{}
		for _, u := range g.Neighbors(uint32(v)) {
			if gt.Family[u] >= 0 && gt.Family[u] != gt.Family[v] &&
				gt.SuperFamily[u] == gt.SuperFamily[v] {
				cross[gt.Family[u]]++
			}
		}
		for _, c := range cross {
			if c >= cfg.BridgeHubs {
				anchors++
			}
		}
	}
	if anchors == 0 {
		t.Fatal("no bridge anchors planted (eligible families may be missing; enlarge config)")
	}
	if anchors > cfg.BridgedPairs {
		t.Fatalf("%d anchors for %d bridges", anchors, cfg.BridgedPairs)
	}
}

func TestSampleDenseEdgesFullDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(6)
	sampleDenseEdges(rng, b, []uint32{0, 1, 2, 3}, 1.0)
	g := b.Build()
	if g.NumEdges() != 6 {
		t.Fatalf("p=1 clique has %d edges, want 6", g.NumEdges())
	}
	// p=0 and tiny member sets are no-ops
	b2 := NewBuilder(4)
	sampleDenseEdges(rng, b2, []uint32{0, 1, 2}, 0)
	sampleDenseEdges(rng, b2, []uint32{0}, 0.5)
	sampleBipartiteEdges(rng, b2, nil, []uint32{1}, 0.5)
	if g2 := b2.Build(); g2.NumEdges() != 0 {
		t.Fatalf("no-op samplers added %d edges", g2.NumEdges())
	}
}

func TestSampleDenseEdgesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	members := make([]uint32, 80)
	for i := range members {
		members[i] = uint32(i)
	}
	b := NewBuilder(80)
	sampleDenseEdges(rng, b, members, 0.4)
	g := b.Build()
	possible := float64(80 * 79 / 2)
	got := float64(g.NumEdges()) / possible
	if got < 0.33 || got > 0.47 {
		t.Fatalf("sampled density %.3f, want ≈ 0.4", got)
	}
}
