package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the text parser against arbitrary input: it
// must never panic, and anything it accepts must round-trip to a valid
// graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# vertices 4\n0 1\n2 3\n")
	f.Add("0 0\n")
	f.Add("# comment\n\n1 2 extra\n")
	f.Add("4294967295 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
	})
}

// FuzzReadBinary exercises the binary parser: arbitrary bytes must never
// panic or allocate absurd amounts.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, FromEdges(3, []Edge{{U: 0, V: 1}}))
	f.Add(buf.Bytes())
	f.Add([]byte("GPC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted graphs may still violate CSR invariants (arbitrary adj
		// content); Validate must diagnose rather than panic.
		_ = g.Validate()
	})
}
