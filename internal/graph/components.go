package graph

// ConnectedComponents labels every vertex with its connected component using
// an iterative BFS (no recursion, safe for paper-scale graphs). It returns
// the label slice (labels dense in [0, count)) and the component count.
// Singleton vertices each form their own component.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []uint32
	next := int32(0)
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = next
		queue = append(queue[:0], uint32(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// ComponentSizes returns the size of each component given its labeling.
func ComponentSizes(labels []int32, count int) []int {
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// LargestComponent returns the size of the largest connected component
// (the "Largest CC size" column of Table II).
func LargestComponent(g *Graph) int {
	labels, count := ConnectedComponents(g)
	max := 0
	for _, s := range ComponentSizes(labels, count) {
		if s > max {
			max = s
		}
	}
	return max
}

// ComponentMembers groups vertex ids by component label.
func ComponentMembers(labels []int32, count int) [][]uint32 {
	sizes := ComponentSizes(labels, count)
	members := make([][]uint32, count)
	for c, s := range sizes {
		members[c] = make([]uint32, 0, s)
	}
	for v, l := range labels {
		members[l] = append(members[l], uint32(v))
	}
	return members
}

// InducedSubgraph extracts the subgraph induced by the given vertex set,
// returning the subgraph and the mapping from new ids to original ids.
// pClust uses connected-component decomposition to break the input into
// independent subproblems; this is the extraction primitive for that.
func InducedSubgraph(g *Graph, vertices []uint32) (*Graph, []uint32) {
	remap := make(map[uint32]uint32, len(vertices))
	orig := make([]uint32, len(vertices))
	for i, v := range vertices {
		remap[v] = uint32(i)
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, u := range g.Neighbors(v) {
			if j, ok := remap[u]; ok && uint32(i) < j {
				b.AddEdge(uint32(i), j)
			}
		}
	}
	return b.Build(), orig
}
