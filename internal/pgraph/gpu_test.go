package pgraph

import (
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/seq"
)

func testMetagenome(t testing.TB, n int) []seq.Sequence {
	t.Helper()
	cfg := seq.DefaultMetagenomeConfig(n)
	cfg.Seed = 7
	m, err := seq.GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Seqs
}

func graphsEqual(t *testing.T, label string, want, got *graph.Graph) {
	t.Helper()
	if len(want.Offsets) != len(got.Offsets) || len(want.Adj) != len(got.Adj) {
		t.Fatalf("%s: shape differs: %d/%d offsets, %d/%d adj",
			label, len(want.Offsets), len(got.Offsets), len(want.Adj), len(got.Adj))
	}
	for i := range want.Offsets {
		if want.Offsets[i] != got.Offsets[i] {
			t.Fatalf("%s: offsets differ at %d", label, i)
		}
	}
	for i := range want.Adj {
		if want.Adj[i] != got.Adj[i] {
			t.Fatalf("%s: adjacency differs at %d", label, i)
		}
	}
}

// TestGPUMatchesHostEdges is the backend-equivalence gate: the GPU-SW path
// must accept the bit-identical edge set for every batch budget, with and
// without pipelining and length binning.
func TestGPUMatchesHostEdges(t *testing.T) {
	seqs := testMetagenome(t, 120)
	host, hst, err := Build(seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hst.Backend != "host" || hst.Edges == 0 {
		t.Fatalf("host build: backend %q, %d edges", hst.Backend, hst.Edges)
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"default-budget", func(c *Config) {}},
		{"small-batches", func(c *Config) { c.GPUBatchWords = 6_000 }},
		{"tiny-batches", func(c *Config) { c.GPUBatchWords = 1_200 }},
		{"pipelined", func(c *Config) { c.GPUPipeline = true }},
		{"pipelined-small", func(c *Config) { c.GPUPipeline = true; c.GPUBatchWords = 12_000 }},
		{"no-binning", func(c *Config) { c.NoLengthBin = true; c.GPUBatchWords = 6_000 }},
		{"no-binning-pipelined", func(c *Config) {
			c.NoLengthBin = true
			c.GPUPipeline = true
			c.GPUBatchWords = 12_000
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.GPU = true
			tc.mut(&cfg)
			g, st, err := Build(seqs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, tc.name, host, g)
			if st.Backend != "gpu" || st.GPUBatches == 0 {
				t.Fatalf("gpu build: backend %q, %d batches", st.Backend, st.GPUBatches)
			}
			if st.AlignNs <= 0 || st.H2DNs <= 0 || st.D2HNs <= 0 || st.TotalNs <= st.FilterNs {
				t.Fatalf("breakdown not populated: %+v", st)
			}
		})
	}
}

// TestGPUSmallDeviceMemoryLimit drives the scheduler through a 1 MB device:
// the budget derives from FreeMemory, forcing many batches through the
// Algorithm-2-style packing, with the identical edge set.
func TestGPUSmallDeviceMemoryLimit(t *testing.T) {
	seqs := testMetagenome(t, 120)
	host, _, err := Build(seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, pipeline := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.GPU = true
		cfg.GPUPipeline = pipeline
		devCfg := gpusim.SmallConfig()
		devCfg.GlobalMemBytes = 16 << 10 // tighter still: force real batching
		cfg.Device = gpusim.MustNew(devCfg)
		g, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, "small device", host, g)
		if st.GPUBatches < 2 {
			t.Fatalf("pipeline=%v: 1 MB device should force multiple batches, got %d", pipeline, st.GPUBatches)
		}
		if err := cfg.Device.LeakCheck(); err != nil {
			t.Fatalf("pipeline=%v: %v", pipeline, err)
		}
	}
}

// TestGPUBudgetTooSmall: a budget that cannot hold even one pair must fail
// loudly, not truncate the pair list.
func TestGPUBudgetTooSmall(t *testing.T) {
	seqs := testMetagenome(t, 40)
	cfg := DefaultConfig()
	cfg.GPU = true
	cfg.GPUBatchWords = swTableLen + 8
	if _, _, err := Build(seqs, cfg); err == nil {
		t.Fatal("expected an error for a batch budget below one pair")
	}
}

// TestGPUPipelinedLowerVirtualTotal asserts the point of the pipeline: with
// the batch stream forced to many batches, overlapping staging with kernels
// and readback (and hoisting the per-batch table upload) must beat the
// sequential scheduler on the virtual clock.
func TestGPUPipelinedLowerVirtualTotal(t *testing.T) {
	seqs := testMetagenome(t, 250)
	base := DefaultConfig()
	base.GPU = true
	base.GPUBatchWords = 4_000

	seqCfg := base
	_, sst, err := Build(seqs, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	pipeCfg := base
	pipeCfg.GPUPipeline = true
	_, pst, err := Build(seqs, pipeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sst.GPUBatches < 3 {
		t.Fatalf("want several batches for the overlap to matter, got %d", sst.GPUBatches)
	}
	if pst.TotalNs >= sst.TotalNs {
		t.Fatalf("pipelined virtual total %.3fms not below sequential %.3fms",
			pst.TotalNs/1e6, sst.TotalNs/1e6)
	}
}

// TestGPUBinningReducesDivergence checks the warp-divergence rationale for
// length binning: scheduling mixed-cost pairs into the same warps must waste
// more warp issue slots than the binned order.
func TestGPUBinningReducesDivergence(t *testing.T) {
	seqs := testMetagenome(t, 250)
	run := func(noBin bool) Stats {
		cfg := DefaultConfig()
		cfg.GPU = true
		cfg.GPUBatchWords = 30_000
		cfg.NoLengthBin = noBin
		_, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	binned, unbinned := run(false), run(true)
	if binned.Divergence >= unbinned.Divergence {
		t.Fatalf("binned divergence %.4f not below unbinned %.4f",
			binned.Divergence, unbinned.Divergence)
	}
}

func BenchmarkPGraphGPU(b *testing.B) {
	seqs := testMetagenome(b, 250)
	cfg := DefaultConfig()
	cfg.GPU = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPGraphGPUPipelined(b *testing.B) {
	seqs := testMetagenome(b, 250)
	cfg := DefaultConfig()
	cfg.GPU = true
	cfg.GPUPipeline = true
	cfg.GPUBatchWords = 30_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
