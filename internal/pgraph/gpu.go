package pgraph

import (
	"fmt"
	"sort"

	"gpclust/internal/align"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/obs"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
	"gpclust/internal/thrust"
)

// This file is the candidate-pair batch scheduler behind Config.GPU: it
// length-bins the pairs (so one warp's alignments cost alike and the SIMT
// divergence penalty stays small), packs pair records + concatenated residue
// codes through the device-memory budget exactly like Algorithm 2's
// adjacency batching, and runs the batches either sequentially or on the
// N-lane stream pipeline of sched.RunLanes — overlapping batch k+1's
// host→device staging with batch k's kernels and score readback. The
// substitution-score table is loop-invariant, so it is uploaded once per
// build and stays device-resident across every batch. Both schedulers
// produce scores bit-identical to align.ScoreOnly, so the accepted edge set
// never depends on the backend, batch budget, lane count or binning.

// swTableLen is the word size of the substitution-score table (the BLOSUM62
// query profile shared by every alignment in a batch).
const swTableLen = align.AlphabetSize * align.AlphabetSize

// swTable is the packed score table, uploaded once per build into its own
// device-resident buffer.
var swTable = buildSWTable()

func buildSWTable() []uint32 {
	t := make([]uint32, swTableLen)
	for ia, row := range align.Blosum62 {
		for ib, s := range row {
			t[ia*align.AlphabetSize+ib] = uint32(int32(s))
		}
	}
	return t
}

// uploadSWTable allocates the resident table buffer and stages the score
// table into it; the caller owns the buffer.
func uploadSWTable(dev *gpusim.Device) (*gpusim.Buffer, error) {
	buf, err := dev.Malloc(swTableLen)
	if err != nil {
		return nil, err
	}
	if err := dev.CopyH2D(buf, 0, swTable); err != nil {
		buf.Free()
		return nil, err
	}
	return buf, nil
}

// encodeSeqs maps residues to table indices (sequences are validated before
// this point, so every residue has one).
func encodeSeqs(seqs []seq.Sequence) [][]byte {
	enc := make([][]byte, len(seqs))
	for i, s := range seqs {
		e := make([]byte, len(s.Residues))
		for j, r := range s.Residues {
			e[j] = byte(align.ResidueIndex(r))
		}
		enc[i] = e
	}
	return enc
}

// seqWords returns the packed word count of one encoded sequence (4 residue
// codes per word; every sequence starts word-aligned).
func seqWords(enc []byte) int { return (len(enc) + 3) / 4 }

// residueBits is the packed image's per-residue width: align's 21-code
// alphabet fits 5 bits (asserted in tests against align.AlphabetSize).
const residueBits = 5

// swLayout resolves Config.Packed/Fuse into the batch buffer's residue
// layout. Residue offsets in pair records stay the byte layout's
// word-aligned offsets in every mode, so the packed image is the byte
// stream (padding included) re-packed at bits per residue — the unpack
// kernel and the in-place decoder both map offset r to the same residue.
//
//	bits == 0           [records | byte residues | scores]
//	bits > 0, fused     [records | packed residues | scores]
//	bits > 0, unfused   [records | packed residues | byte workspace | scores]
//
// The H2D image is the region before the workspace/scores; only the byte
// layout uploads full-width residues.
type swLayout struct {
	bits  int  // 0: byte layout; residueBits: packed image
	fused bool // kernel decodes the image in place (no workspace, no unpack launch)
}

func layoutFor(cfg Config) swLayout {
	if !cfg.Packed {
		return swLayout{}
	}
	return swLayout{bits: residueBits, fused: cfg.Fuse}
}

// packedSeqWords is the packed image's word count for a residue region of
// seqWords byte-layout words (4·seqWords padded residues).
func (ly swLayout) packedSeqWords(seqWords int) int {
	return gpusim.PackedLen(4*seqWords, ly.bits)
}

// dataWords is the batch's H2D staging image size under this layout.
func (ly swLayout) dataWords(p swBatch) int {
	if ly.bits == 0 {
		return p.dataWords()
	}
	return 4*(p.hi-p.lo) + ly.packedSeqWords(p.seqWords)
}

// deviceWords is the batch buffer's device footprint: the staging image,
// the unfused mode's unpack workspace, and the score outputs.
func (ly swLayout) deviceWords(p swBatch) int {
	n := ly.dataWords(p) + (p.hi - p.lo)
	if ly.bits > 0 && !ly.fused {
		n += p.seqWords
	}
	return n
}

// packWords is the host staging cost in words: records plus byte-layout
// residues either way (the codes are produced regardless), plus the
// bit-packing surcharge of the packed image.
func (ly swLayout) packWords(p swBatch) int {
	n := p.dataWords()
	if ly.bits > 0 {
		n += ly.packedSeqWords(p.seqWords)
	}
	return n
}

// pairWords is the residue footprint one pair adds to an empty batch (for
// the planner's minimum-budget bound).
func (ly swLayout) pairWords(wa, wb int) int {
	w := wa + wb
	if ly.bits == 0 {
		return w
	}
	n := ly.packedSeqWords(w)
	if !ly.fused {
		n += w
	}
	return n
}

// binPairs returns the order in which pairs are scheduled. With binning the
// order is ascending DP-cell cost (ties broken by the pair key, so the
// order is a deterministic function of the input); without, the natural
// sorted-pair order.
func binPairs(enc [][]byte, pairs []pairKey, bin bool) []int {
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	if !bin {
		return order
	}
	cost := make([]int64, len(pairs))
	for i, p := range pairs {
		a, b := p.unpack()
		cost[i] = int64(len(enc[a])) * int64(len(enc[b]))
	}
	sort.Slice(order, func(i, j int) bool {
		if cost[order[i]] != cost[order[j]] {
			return cost[order[i]] < cost[order[j]]
		}
		return pairs[order[i]] < pairs[order[j]]
	})
	return order
}

// swBatch is one device batch: a contiguous range of the scheduled pair
// order plus the distinct sequences it references, in first-use order.
type swBatch struct {
	lo, hi   int     // half-open range into the scheduled order
	seqIDs   []int32 // distinct sequences, first-use order
	seqWords int     // packed residue words for seqIDs
}

// dataWords is the batch's staging image size: 4 pair-record words per pair
// plus the packed residues.
func (p swBatch) dataWords() int { return 4*(p.hi-p.lo) + p.seqWords }

// deviceWords is the batch buffer's device footprint: the staging image plus
// the score outputs. The resident score table lives in its own buffer and is
// charged once per build, not against every batch.
func (p swBatch) deviceWords() int { return p.dataWords() + (p.hi - p.lo) }

// swPairSizer supplies the planner's incremental pair costs: 5 words per
// pair (record + score) plus the residue footprint of any sequence not
// already staged in the open batch — under the packed layouts, the packed
// image's word delta (exact by telescoping: the image is one continuous bit
// stream, so the batch total is PackedLen of the running residue count)
// plus the unfused workspace.
type swPairSizer struct {
	enc     [][]byte
	pairs   []pairKey
	order   []int
	budget  int // full budget including the table share, for the error message
	ly      swLayout
	inBatch map[int32]bool
	seqW    int // byte-layout residue words staged in the open batch
}

func (z *swPairSizer) Reset() {
	clear(z.inBatch)
	z.seqW = 0
}

// residueCost is the device-word delta of growing the open batch's residue
// region from seqW to seqW+addW byte-layout words.
func (z *swPairSizer) residueCost(addW int) int {
	if z.ly.bits == 0 {
		return addW
	}
	need := z.ly.packedSeqWords(z.seqW+addW) - z.ly.packedSeqWords(z.seqW)
	if !z.ly.fused {
		need += addW
	}
	return need
}

func (z *swPairSizer) Cost(k int) int {
	a, b := z.pairs[z.order[k]].unpack()
	addW := 0
	if !z.inBatch[a] {
		addW += seqWords(z.enc[a])
	}
	if !z.inBatch[b] {
		addW += seqWords(z.enc[b])
	}
	return 5 + z.residueCost(addW)
}

func (z *swPairSizer) Commit(k int) {
	a, b := z.pairs[z.order[k]].unpack()
	if !z.inBatch[a] {
		z.inBatch[a] = true
		z.seqW += seqWords(z.enc[a])
	}
	if !z.inBatch[b] {
		z.inBatch[b] = true
		z.seqW += seqWords(z.enc[b])
	}
}

func (z *swPairSizer) Fail(k, need int) error {
	a, b := z.pairs[z.order[k]].unpack()
	return fmt.Errorf("pgraph: GPU batch budget %d words cannot hold pair (%d,%d): needs %d",
		z.budget, a, b, swTableLen+need)
}

// planSWBatches greedily packs the scheduled pairs into batches whose
// device footprint stays within budget words, deduplicating sequences
// within a batch (a sequence appearing in many candidate pairs uploads
// once per batch). The budget is quoted including the resident score
// table's share, which the planner subtracts once up front — so explicit
// budgets keep their historical meaning while batches no longer pay for
// the table each.
func planSWBatches(enc [][]byte, pairs []pairKey, order []int, budget int, ly swLayout) ([]swBatch, error) {
	z := &swPairSizer{enc: enc, pairs: pairs, order: order, budget: budget, ly: ly,
		inBatch: make(map[int32]bool)}
	spans, err := sched.PlanSpans(len(order), budget-swTableLen, z)
	if err != nil {
		return nil, err
	}
	plans := make([]swBatch, 0, len(spans))
	for _, sp := range spans {
		plans = append(plans, swBatchFor(sp.Lo, sp.Hi, enc, pairs, order))
	}
	return plans, nil
}

// packSWBatch builds the batch's host staging image — [pair records | byte
// or bit-packed residues] per the layout — reusing data's capacity.
// Pair-record offsets count residues from the start of the residue region
// in every mode (sequences stay word-aligned in residue terms, so the
// packed image is the byte stream re-packed at ly.bits per residue).
func packSWBatch(p swBatch, enc [][]byte, pairs []pairKey, order []int, ly swLayout, data []uint32) []uint32 {
	np := p.hi - p.lo
	n := ly.dataWords(p)
	if cap(data) < n {
		data = make([]uint32, n)
	} else {
		data = data[:n]
		clear(data)
	}
	seq := data[4*np:]
	put := func(r int, c uint32) { // byte layout: 4 codes per word
		seq[r>>2] |= c << (8 * (r & 3))
	}
	if ly.bits > 0 {
		put = func(r int, c uint32) { // bit-continuous little-endian image
			bit := r * ly.bits
			seq[bit>>5] |= c << (bit & 31)
			if rem := 32 - bit&31; rem < ly.bits {
				seq[bit>>5+1] |= c >> rem
			}
		}
	}
	off := make(map[int32]uint32, len(p.seqIDs))
	pos := uint32(0)
	for _, id := range p.seqIDs {
		off[id] = pos
		for k, c := range enc[id] {
			put(int(pos)+k, uint32(c))
		}
		pos += uint32(4 * seqWords(enc[id])) // next sequence starts word-aligned
	}
	for k := p.lo; k < p.hi; k++ {
		a, b := pairs[order[k]].unpack()
		rec := data[4*(k-p.lo):]
		rec[0], rec[1] = off[a], uint32(len(enc[a]))
		rec[2], rec[3] = off[b], uint32(len(enc[b]))
	}
	return data
}

// swLaunchConfig maps a staged batch onto the kernel's layout under the
// resolved residue format; the resident table buffer supplies the
// substitution scores. The fused packed mode hands the kernel the image
// directly (SeqBits); the unfused mode points SeqBase past the image at the
// workspace UnpackResidues fills.
func swLaunchConfig(p swBatch, cfg Config, table *gpusim.Buffer, ly swLayout) thrust.SWConfig {
	np := p.hi - p.lo
	lc := thrust.SWConfig{
		NumPairs:  np,
		Alphabet:  align.AlphabetSize,
		GapOpen:   int32(cfg.Align.GapOpen),
		GapExtend: int32(cfg.Align.GapExtend),
		Table:     table,
		TableBase: 0,
		PairBase:  0,
		SeqBase:   4 * np,
		SeqWords:  p.seqWords,
		ScoreBase: p.dataWords(),
		Obs:       cfg.Obs,
	}
	switch {
	case ly.bits > 0 && ly.fused:
		lc.SeqBits = ly.bits
		lc.SeqWords = ly.packedSeqWords(p.seqWords)
		lc.ScoreBase = 4*np + lc.SeqWords
	case ly.bits > 0:
		packed := ly.packedSeqWords(p.seqWords)
		lc.SeqBase = 4*np + packed
		lc.ScoreBase = 4*np + packed + p.seqWords
	}
	return lc
}

// unpackSWBatch enqueues the unfused packed mode's expansion of the batch
// buffer's image into its byte-layout workspace (no-op in other modes).
func unpackSWBatch(dev *gpusim.Device, st *gpusim.Stream, buf *gpusim.Buffer, p swBatch, ly swLayout) error {
	if ly.bits == 0 || ly.fused {
		return nil
	}
	np := p.hi - p.lo
	packed := ly.packedSeqWords(p.seqWords)
	return thrust.UnpackResidues(dev, st, buf, 4*np, 4*np+packed, 4*p.seqWords, ly.bits)
}

// runSWBatchesSequential is the Thrust-style synchronous scheduler with a
// build-resident score table: upload the table once, then per batch
// allocate, upload the staging image, launch, read the scores back, free.
// Every step stalls the host (the paper's mode). This entry point owns the
// table's lifetime (the fuzz oracle's sequential leg); verifyGPU manages
// the table through the resilience ladder instead and drives
// runSWBatchesSequentialOn directly.
func runSWBatchesSequential(dev *gpusim.Device, plans []swBatch, enc [][]byte,
	pairs []pairKey, order []int, cfg Config, scores []int32) error {

	table, err := uploadSWTable(dev)
	if err != nil {
		return err
	}
	defer table.Free()
	return runSWBatchesSequentialOn(dev, table, plans, enc, pairs, order, cfg, scores)
}

// runSWBatchesSequentialOn runs the batches synchronously against an
// already-resident score table.
func runSWBatchesSequentialOn(dev *gpusim.Device, table *gpusim.Buffer, plans []swBatch,
	enc [][]byte, pairs []pairKey, order []int, cfg Config, scores []int32) error {

	var data, out []uint32
	var err error
	for _, p := range plans {
		if data, out, err = runOneSWBatch(dev, table, p, enc, pairs, order, cfg, scores, data, out); err != nil {
			return err
		}
	}
	return nil
}

// runOneSWBatch stages, uploads, launches and reads back one batch
// synchronously against the resident table, reusing the data/out scratch
// slices across calls. The score writes are idempotent — scores[p.lo+i]
// depends only on the batch contents — so a failed attempt needs no
// rollback before a retry.
func runOneSWBatch(dev *gpusim.Device, table *gpusim.Buffer, p swBatch, enc [][]byte,
	pairs []pairKey, order []int, cfg Config, scores []int32, data, out []uint32) ([]uint32, []uint32, error) {

	np := p.hi - p.lo
	ly := layoutFor(cfg)
	var t0 float64
	if cfg.Obs.Enabled() {
		t0 = dev.HostTime()
	}
	data = packSWBatch(p, enc, pairs, order, ly, data)
	chargeHost(dev, cfg.Obs, "pack", float64(ly.packWords(p))*packNsPerWord)
	if cap(out) < np {
		out = make([]uint32, np)
	}
	if err := func() error {
		buf, err := dev.Malloc(ly.deviceWords(p))
		if err != nil {
			return err
		}
		defer buf.Free()
		if err := dev.CopyH2D(buf, 0, data); err != nil {
			return err
		}
		if err := unpackSWBatch(dev, nil, buf, p, ly); err != nil {
			return err
		}
		lc := swLaunchConfig(p, cfg, table, ly)
		if err := thrust.SWScoreBatch(dev, nil, buf, lc); err != nil {
			return err
		}
		return dev.CopyD2H(out[:np], buf, lc.ScoreBase)
	}(); err != nil {
		return data, out, err
	}
	for i := 0; i < np; i++ {
		scores[p.lo+i] = int32(out[i])
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Span(obs.TrackBatches, fmt.Sprintf("pairs%d-%d", p.lo, p.hi), t0, dev.HostTime())
	}
	return data, out, nil
}

// swPipeLane is one lane's device resources: a max-sized batch buffer, a
// stream, and the in-flight batch's score staging.
type swPipeLane struct {
	buf    *gpusim.Buffer
	stream *gpusim.Stream
	out    []uint32
}

// swLaneWork adapts the batch stream to sched.RunLanes. Host staging is
// reused across batches: async H2D captures the contents at enqueue, so one
// image suffices.
type swLaneWork struct {
	dev    *gpusim.Device
	table  *gpusim.Buffer
	plans  []swBatch
	enc    [][]byte
	pairs  []pairKey
	order  []int
	cfg    Config
	scores []int32
	lanes  []*swPipeLane
	data   []uint32 // shared host staging image
}

func (w *swLaneWork) Prepare(item int) {
	ly := layoutFor(w.cfg)
	w.data = packSWBatch(w.plans[item], w.enc, w.pairs, w.order, ly, w.data)
	chargeHost(w.dev, w.cfg.Obs, "pack", float64(ly.packWords(w.plans[item]))*packNsPerWord)
}

func (w *swLaneWork) Enqueue(item, lane int) error {
	p := w.plans[item]
	l := w.lanes[lane]
	ly := layoutFor(w.cfg)
	if err := w.dev.CopyH2DAsync(l.stream, l.buf, 0, w.data); err != nil {
		return err
	}
	if err := unpackSWBatch(w.dev, l.stream, l.buf, p, ly); err != nil {
		return err
	}
	lc := swLaunchConfig(p, w.cfg, w.table, ly)
	if err := thrust.SWScoreBatch(w.dev, l.stream, l.buf, lc); err != nil {
		return err
	}
	return w.dev.CopyD2HAsync(l.stream, l.out[:p.hi-p.lo], l.buf, lc.ScoreBase)
}

func (w *swLaneWork) Complete(item, lane int) {
	l := w.lanes[lane]
	l.stream.Synchronize()
	p := w.plans[item]
	for i := 0; i < p.hi-p.lo; i++ {
		w.scores[p.lo+i] = int32(l.out[i])
	}
}

func (w *swLaneWork) SpanName(item int) string {
	p := w.plans[item]
	return fmt.Sprintf("b%d.pairs%d-%d", item, p.lo, p.hi)
}

// runSWBatchesPipelined is the double-buffered scheduler with a
// build-resident score table: N lanes, each owning a max-sized device
// buffer and a stream, take batches round-robin through sched.RunLanes.
// Enqueuing batch k only waits for the lane's previous occupant (batch
// k-N), so batch k's staging overlaps earlier batches' kernels and score
// readback:
//
//	table:   [upload once]
//	lane 0:  [H2D b0 | sw b0 | D2H b0]   [H2D b2 | sw b2 | ...
//	lane 1:          [H2D b1 | sw b1 | D2H b1]   [H2D b3 | ...
//
// Scores land in the same slots as the sequential scheduler, so the edge
// set is identical. This entry point owns the table's lifetime and runs two
// lanes (the fuzz oracle's pipelined leg); verifyGPU manages the table and
// lane count itself and drives runSWBatchesPipelinedOn directly.
func runSWBatchesPipelined(dev *gpusim.Device, plans []swBatch, enc [][]byte,
	pairs []pairKey, order []int, cfg Config, scores []int32) error {

	table, err := uploadSWTable(dev)
	if err != nil {
		return err
	}
	defer table.Free()
	return runSWBatchesPipelinedOn(dev, table, plans, enc, pairs, order, cfg, scores, 2)
}

// runSWBatchesPipelinedOn runs the batch stream across the given lane count
// against an already-resident score table.
func runSWBatchesPipelinedOn(dev *gpusim.Device, table *gpusim.Buffer, plans []swBatch,
	enc [][]byte, pairs []pairKey, order []int, cfg Config, scores []int32, lanes int) error {

	if lanes < 2 {
		lanes = 2
	}
	ly := layoutFor(cfg)
	maxDev, maxPairs := 0, 0
	for _, p := range plans {
		maxDev = max(maxDev, ly.deviceWords(p))
		maxPairs = max(maxPairs, p.hi-p.lo)
	}
	w := &swLaneWork{dev: dev, table: table, plans: plans, enc: enc, pairs: pairs,
		order: order, cfg: cfg, scores: scores, lanes: make([]*swPipeLane, lanes)}
	freeAll := func() {
		for _, l := range w.lanes {
			if l != nil && l.buf != nil {
				l.buf.Free()
			}
		}
	}
	for i := range w.lanes {
		l := &swPipeLane{stream: dev.NewStream(), out: make([]uint32, maxPairs)}
		w.lanes[i] = l
		var err error
		if l.buf, err = dev.Malloc(maxDev); err != nil {
			freeAll()
			return err
		}
	}
	defer freeAll()
	return sched.RunLanes(dev, cfg.Obs, len(plans), lanes, w)
}

// verifyGPU is the device-backed verification stage: it schedules every
// candidate pair through the batched Smith–Waterman kernel and thresholds
// the scores with the exact comparison the host path uses. The Stats
// breakdown (filter, kernels, Data_c→g, Data_g→c) is this stage's share of
// the device's virtual clock.
func verifyGPU(seqs []seq.Sequence, pairs []pairKey, cfg Config, st *Stats, host0 float64) ([]graph.Edge, error) {
	dev := cfg.Device // Build resolved the device before the filter ran
	// Metrics from here cover verification only: the filter phase (host
	// charges, or the LSH pass's own device traffic) is already on the
	// clock, and host0 predates it so TotalNs spans the whole build.
	m0 := dev.Metrics()
	verifyPhase := startVerifyPhase(dev, cfg.Obs)

	var edges []graph.Edge
	if len(pairs) > 0 {
		enc := encodeSeqs(seqs)
		order := binPairs(enc, pairs, !cfg.NoLengthBin)

		var report sched.PlanReport
		var plans []swBatch
		var err error
		lanes := 1
		if cfg.GPUPipeline {
			lanes = 2
		}
		if cfg.GPUBatchWords == 0 && cfg.AutoTune {
			report, plans, lanes, err = autotuneSW(dev, enc, pairs, order, cfg)
			if err != nil {
				return nil, err
			}
			// The executors resolve the layout from cfg; pin the tuner's
			// fusion choice so they run the plans the sizer measured.
			cfg.Fuse = report.Fused
		} else {
			budget := cfg.GPUBatchWords
			if budget <= 0 {
				// Leave headroom on a shared device rather than sizing to the
				// last free word; the pipeline keeps two lanes resident, so its
				// default batches are half the size. An explicit budget is the
				// per-batch cap in both modes (the schedulers then run identical
				// batch plans and their timings compare like for like).
				budget = int(dev.FreeMemory() / gpusim.WordBytes / 4 * 3)
				if cfg.GPUPipeline {
					budget /= 2
				}
			}
			plans, err = planSWBatches(enc, pairs, order, budget, layoutFor(cfg))
			if err != nil {
				return nil, err
			}
			report = sched.PlanReport{BudgetWords: budget, Lanes: lanes, Batches: len(plans),
				Fused: cfg.Packed && cfg.Fuse}
			if cfg.PredictCost {
				m := calibrateSWModel(dev.Config(), enc, pairs, order, cfg)
				report.PredictedNs = predictSWPlans(m, enc, pairs, order, plans, lanes, layoutFor(cfg))
			}
		}
		st.GPUBatches = len(plans)

		scores := make([]int32, len(pairs))
		env := &swEnv{dev: dev, seqs: seqs, enc: enc, pairs: pairs, order: order,
			cfg: cfg, scores: scores, rec: &st.Faults}
		schedT0 := dev.HostTime()
		if err := cfg.runner(dev, &st.Faults).Run(&swTableUpload{env: env}); err != nil {
			return nil, err
		}
		if env.table != nil { // nil after the all-pairs host fallback
			if lanes >= 2 {
				err = runSWBatchesPipelinedResilient(env, plans, lanes)
			} else {
				err = runSWBatchesSequentialResilient(env, plans)
			}
			env.table.Free()
			if err != nil {
				return nil, err
			}
		}
		dev.Synchronize()
		report.ActualNs = dev.HostTime() - schedT0
		st.Plan = report
		sched.RecordPlan(cfg.Obs, "pgraph", report)

		for k, idx := range order {
			a, b := pairs[idx].unpack()
			minLen := min(len(seqs[a].Residues), len(seqs[b].Residues))
			if float64(scores[k]) >= cfg.MinScorePerResidue*float64(minLen) {
				edges = append(edges, graph.Edge{U: uint32(a), V: uint32(b)})
			}
		}
	}

	verifyPhase.End(dev.HostTime())
	m := dev.Metrics().Sub(m0)
	st.AlignNs = m.KernelTimeNs
	st.H2DNs = m.H2DTimeNs
	st.D2HNs = m.D2HTimeNs
	st.H2DSetupNs = m.H2DSetupNs
	st.H2DVolumeNs = m.H2DVolumeNs
	st.D2HSetupNs = m.D2HSetupNs
	st.D2HVolumeNs = m.D2HVolumeNs
	st.H2DBytes = m.H2DBytes
	st.D2HBytes = m.D2HBytes
	st.Divergence = m.DivergenceOverhead()
	st.TotalNs = dev.HostTime() - host0
	return edges, nil
}

// startVerifyPhase opens the verify phase span at the device's current
// virtual time (inert on a nil recorder).
func startVerifyPhase(dev *gpusim.Device, r *obs.Recorder) obs.Ending {
	if !r.Enabled() {
		return obs.Ending{}
	}
	return r.Start(obs.TrackPhases, "verify", dev.HostTime())
}
