package pgraph

import (
	"fmt"
	"sort"

	"gpclust/internal/align"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/obs"
	"gpclust/internal/seq"
	"gpclust/internal/thrust"
)

// This file is the candidate-pair batch scheduler behind Config.GPU: it
// length-bins the pairs (so one warp's alignments cost alike and the SIMT
// divergence penalty stays small), packs pair records + concatenated residue
// codes through the device-memory budget exactly like Algorithm 2's
// adjacency batching, and runs the batches either sequentially or on the
// double-buffered two-lane stream pipeline the shingling pass introduced —
// overlapping batch k+1's host→device staging with batch k's kernels and
// score readback. Both schedulers produce scores bit-identical to
// align.ScoreOnly, so the accepted edge set never depends on the backend,
// batch budget, or binning.

// swTableLen is the word size of the substitution-score table (the BLOSUM62
// query profile shared by every alignment in a batch).
const swTableLen = align.AlphabetSize * align.AlphabetSize

// swTable is the packed score table, uploaded once per batch (sequential)
// or once per lane (pipelined).
var swTable = buildSWTable()

func buildSWTable() []uint32 {
	t := make([]uint32, swTableLen)
	for ia, row := range align.Blosum62 {
		for ib, s := range row {
			t[ia*align.AlphabetSize+ib] = uint32(int32(s))
		}
	}
	return t
}

// encodeSeqs maps residues to table indices (sequences are validated before
// this point, so every residue has one).
func encodeSeqs(seqs []seq.Sequence) [][]byte {
	enc := make([][]byte, len(seqs))
	for i, s := range seqs {
		e := make([]byte, len(s.Residues))
		for j, r := range s.Residues {
			e[j] = byte(align.ResidueIndex(r))
		}
		enc[i] = e
	}
	return enc
}

// seqWords returns the packed word count of one encoded sequence (4 residue
// codes per word; every sequence starts word-aligned).
func seqWords(enc []byte) int { return (len(enc) + 3) / 4 }

// binPairs returns the order in which pairs are scheduled. With binning the
// order is ascending DP-cell cost (ties broken by the pair key, so the
// order is a deterministic function of the input); without, the natural
// sorted-pair order.
func binPairs(enc [][]byte, pairs []pairKey, bin bool) []int {
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	if !bin {
		return order
	}
	cost := make([]int64, len(pairs))
	for i, p := range pairs {
		a, b := p.unpack()
		cost[i] = int64(len(enc[a])) * int64(len(enc[b]))
	}
	sort.Slice(order, func(i, j int) bool {
		if cost[order[i]] != cost[order[j]] {
			return cost[order[i]] < cost[order[j]]
		}
		return pairs[order[i]] < pairs[order[j]]
	})
	return order
}

// swBatch is one device batch: a contiguous range of the scheduled pair
// order plus the distinct sequences it references, in first-use order.
type swBatch struct {
	lo, hi   int     // half-open range into the scheduled order
	seqIDs   []int32 // distinct sequences, first-use order
	seqWords int     // packed residue words for seqIDs
}

// dataWords is the batch's staging image size: 4 pair-record words per pair
// plus the packed residues.
func (p swBatch) dataWords() int { return 4*(p.hi-p.lo) + p.seqWords }

// deviceWords is the batch's full device footprint including the score
// table and the score outputs.
func (p swBatch) deviceWords() int { return swTableLen + p.dataWords() + (p.hi - p.lo) }

// planSWBatches greedily packs the scheduled pairs into batches whose
// device footprint stays within budget words, deduplicating sequences
// within a batch (a sequence appearing in many candidate pairs uploads
// once per batch).
func planSWBatches(enc [][]byte, pairs []pairKey, order []int, budget int) ([]swBatch, error) {
	var plans []swBatch
	cur := swBatch{lo: 0}
	np := 0 // pairs in cur
	inBatch := make(map[int32]bool)
	for k, idx := range order {
		a, b := pairs[idx].unpack()
		need := 5 // pair record + score word
		if !inBatch[a] {
			need += seqWords(enc[a])
		}
		if !inBatch[b] {
			need += seqWords(enc[b])
		}
		if np > 0 && swTableLen+5*np+cur.seqWords+need > budget {
			cur.hi = k
			plans = append(plans, cur)
			cur = swBatch{lo: k}
			np = 0
			clear(inBatch)
			need = 5 + seqWords(enc[a]) + seqWords(enc[b])
		}
		if np == 0 && swTableLen+need > budget {
			return nil, fmt.Errorf("pgraph: GPU batch budget %d words cannot hold pair (%d,%d): needs %d",
				budget, a, b, swTableLen+need)
		}
		np++
		if !inBatch[a] {
			inBatch[a] = true
			cur.seqIDs = append(cur.seqIDs, a)
			cur.seqWords += seqWords(enc[a])
		}
		if !inBatch[b] {
			inBatch[b] = true
			cur.seqIDs = append(cur.seqIDs, b)
			cur.seqWords += seqWords(enc[b])
		}
	}
	cur.hi = len(order)
	if cur.hi > cur.lo {
		plans = append(plans, cur)
	}
	return plans, nil
}

// packSWBatch builds the batch's host staging image, [pair records | packed
// residues], reusing data's capacity. Pair-record offsets count residues
// from the start of the packed region.
func packSWBatch(p swBatch, enc [][]byte, pairs []pairKey, order []int, data []uint32) []uint32 {
	np := p.hi - p.lo
	n := p.dataWords()
	if cap(data) < n {
		data = make([]uint32, n)
	} else {
		data = data[:n]
		clear(data)
	}
	off := make(map[int32]uint32, len(p.seqIDs))
	pos := uint32(0)
	for _, id := range p.seqIDs {
		off[id] = pos
		for k, c := range enc[id] {
			r := pos + uint32(k)
			data[4*np+int(r>>2)] |= uint32(c) << (8 * (r & 3))
		}
		pos += uint32(4 * seqWords(enc[id])) // next sequence starts word-aligned
	}
	for k := p.lo; k < p.hi; k++ {
		a, b := pairs[order[k]].unpack()
		rec := data[4*(k-p.lo):]
		rec[0], rec[1] = off[a], uint32(len(enc[a]))
		rec[2], rec[3] = off[b], uint32(len(enc[b]))
	}
	return data
}

// swLaunchConfig maps a packed batch onto the single-buffer layout the
// kernel expects.
func swLaunchConfig(p swBatch, cfg Config) thrust.SWConfig {
	np := p.hi - p.lo
	return thrust.SWConfig{
		NumPairs:  np,
		Alphabet:  align.AlphabetSize,
		GapOpen:   int32(cfg.Align.GapOpen),
		GapExtend: int32(cfg.Align.GapExtend),
		TableBase: 0,
		PairBase:  swTableLen,
		SeqBase:   swTableLen + 4*np,
		SeqWords:  p.seqWords,
		ScoreBase: swTableLen + p.dataWords(),
		Obs:       cfg.Obs,
	}
}

// runSWBatchesSequential is the Thrust-style synchronous scheduler: per
// batch, allocate, upload the table and the staging image, launch, read the
// scores back, free. Every step stalls the host (the paper's mode).
func runSWBatchesSequential(dev *gpusim.Device, plans []swBatch, enc [][]byte,
	pairs []pairKey, order []int, cfg Config, scores []int32) error {

	var data, out []uint32
	var err error
	for _, p := range plans {
		if data, out, err = runOneSWBatch(dev, p, enc, pairs, order, cfg, scores, data, out); err != nil {
			return err
		}
	}
	return nil
}

// runOneSWBatch stages, uploads, launches and reads back one batch
// synchronously, reusing the data/out scratch slices across calls. The
// score writes are idempotent — scores[p.lo+i] depends only on the batch
// contents — so a failed attempt needs no rollback before a retry.
func runOneSWBatch(dev *gpusim.Device, p swBatch, enc [][]byte, pairs []pairKey,
	order []int, cfg Config, scores []int32, data, out []uint32) ([]uint32, []uint32, error) {

	np := p.hi - p.lo
	var t0 float64
	if cfg.Obs.Enabled() {
		t0 = dev.HostTime()
	}
	data = packSWBatch(p, enc, pairs, order, data)
	chargeHost(dev, cfg.Obs, "pack", float64(len(data))*packNsPerWord)
	if cap(out) < np {
		out = make([]uint32, np)
	}
	if err := func() error {
		buf, err := dev.Malloc(p.deviceWords())
		if err != nil {
			return err
		}
		defer buf.Free()
		if err := dev.CopyH2D(buf, 0, swTable); err != nil {
			return err
		}
		if err := dev.CopyH2D(buf, swTableLen, data); err != nil {
			return err
		}
		lc := swLaunchConfig(p, cfg)
		if err := thrust.SWScoreBatch(dev, nil, buf, lc); err != nil {
			return err
		}
		return dev.CopyD2H(out[:np], buf, lc.ScoreBase)
	}(); err != nil {
		return data, out, err
	}
	for i := 0; i < np; i++ {
		scores[p.lo+i] = int32(out[i])
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Span(obs.TrackBatches, fmt.Sprintf("pairs%d-%d", p.lo, p.hi), t0, dev.HostTime())
	}
	return data, out, nil
}

// runSWBatchesPipelined is the double-buffered scheduler: two lanes, each
// owning a max-sized device buffer and a stream, take batches round-robin.
// The score table uploads once per lane for the whole build, and enqueuing
// batch k only waits for the lane's previous occupant (batch k-2), so batch
// k's staging overlaps batch k-1's kernels and score readback:
//
//	lane 0:  [table|H2D b0 | sw b0 | D2H b0]   [H2D b2 | sw b2 | ...
//	lane 1:          [table|H2D b1 | sw b1 | D2H b1]   [H2D b3 | ...
//
// Scores land in the same slots as the sequential scheduler, so the edge
// set is identical.
func runSWBatchesPipelined(dev *gpusim.Device, plans []swBatch, enc [][]byte,
	pairs []pairKey, order []int, cfg Config, scores []int32) error {

	maxData, maxPairs := 0, 0
	for _, p := range plans {
		maxData = max(maxData, p.dataWords())
		maxPairs = max(maxPairs, p.hi-p.lo)
	}

	type pipeLane struct {
		buf    *gpusim.Buffer
		stream *gpusim.Stream
		out    []uint32 // in-flight batch's scores
		plan   int      // in-flight batch index; -1 when idle
		primed bool     // score table staged

		track  string  // observability: this lane's span track
		spanT0 float64 // virtual time the in-flight batch was enqueued
	}
	var lanes [2]*pipeLane
	freeAll := func() {
		for _, l := range lanes {
			if l != nil && l.buf != nil {
				l.buf.Free()
			}
		}
	}
	for i := range lanes {
		l := &pipeLane{stream: dev.NewStream(), plan: -1, out: make([]uint32, maxPairs),
			track: fmt.Sprintf("lane%d", i)}
		lanes[i] = l
		var err error
		if l.buf, err = dev.Malloc(swTableLen + maxData + maxPairs); err != nil {
			freeAll()
			return err
		}
	}
	defer freeAll()

	drain := func(l *pipeLane) {
		if l.plan < 0 {
			return
		}
		l.stream.Synchronize()
		p := plans[l.plan]
		for i := 0; i < p.hi-p.lo; i++ {
			scores[p.lo+i] = int32(l.out[i])
		}
		if cfg.Obs.Enabled() {
			cfg.Obs.Span(l.track, fmt.Sprintf("b%d.pairs%d-%d", l.plan, p.lo, p.hi),
				l.spanT0, dev.HostTime())
		}
		l.plan = -1
	}

	// Host staging reused across batches: async H2D captures the contents
	// at enqueue, so one image suffices.
	var data []uint32
	for k, p := range plans {
		np := p.hi - p.lo
		data = packSWBatch(p, enc, pairs, order, data)
		chargeHost(dev, cfg.Obs, "pack", float64(len(data))*packNsPerWord)
		l := lanes[k%2]
		drain(l)
		if !l.primed {
			if err := dev.CopyH2DAsync(l.stream, l.buf, 0, swTable); err != nil {
				return err
			}
			l.primed = true
		}
		if err := dev.CopyH2DAsync(l.stream, l.buf, swTableLen, data); err != nil {
			return err
		}
		lc := swLaunchConfig(p, cfg)
		if err := thrust.SWScoreBatch(dev, l.stream, l.buf, lc); err != nil {
			return err
		}
		if err := dev.CopyD2HAsync(l.stream, l.out[:np], l.buf, lc.ScoreBase); err != nil {
			return err
		}
		if cfg.Obs.Enabled() {
			l.spanT0 = dev.HostTime()
		}
		l.plan = k
	}
	drain(lanes[len(plans)%2])
	drain(lanes[(len(plans)+1)%2])
	return nil
}

// verifyGPU is the device-backed verification stage: it schedules every
// candidate pair through the batched Smith–Waterman kernel and thresholds
// the scores with the exact comparison the host path uses. The Stats
// breakdown (filter, kernels, Data_c→g, Data_g→c) is this stage's share of
// the device's virtual clock.
func verifyGPU(seqs []seq.Sequence, pairs []pairKey, cfg Config, st *Stats) ([]graph.Edge, error) {
	dev := cfg.Device
	if dev == nil {
		dev = gpusim.MustNew(gpusim.K20Config())
	}
	host0 := dev.HostTime()
	m0 := dev.Metrics()
	// The CPU filter ran before this point; put it on the virtual clock.
	chargeHost(dev, cfg.Obs, "filter", st.FilterNs)
	if cfg.Obs.Enabled() {
		cfg.Obs.Span(obs.TrackPhases, "filter", host0, dev.HostTime())
	}
	verifyPhase := startVerifyPhase(dev, cfg.Obs)

	var edges []graph.Edge
	if len(pairs) > 0 {
		enc := encodeSeqs(seqs)
		order := binPairs(enc, pairs, !cfg.NoLengthBin)
		budget := cfg.GPUBatchWords
		if budget <= 0 {
			// Leave headroom on a shared device rather than sizing to the
			// last free word; the pipeline keeps two lanes resident, so its
			// default batches are half the size. An explicit budget is the
			// per-batch cap in both modes (the schedulers then run identical
			// batch plans and their timings compare like for like).
			budget = int(dev.FreeMemory() / gpusim.WordBytes / 4 * 3)
			if cfg.GPUPipeline {
				budget /= 2
			}
		}
		plans, err := planSWBatches(enc, pairs, order, budget)
		if err != nil {
			return nil, err
		}
		st.GPUBatches = len(plans)

		scores := make([]int32, len(pairs))
		if cfg.GPUPipeline {
			err = runSWBatchesPipelinedResilient(dev, plans, seqs, enc, pairs, order, cfg, scores, &st.Faults)
		} else {
			err = runSWBatchesSequentialResilient(dev, plans, seqs, enc, pairs, order, cfg, scores, &st.Faults)
		}
		if err != nil {
			return nil, err
		}
		dev.Synchronize()

		for k, idx := range order {
			a, b := pairs[idx].unpack()
			minLen := min(len(seqs[a].Residues), len(seqs[b].Residues))
			if float64(scores[k]) >= cfg.MinScorePerResidue*float64(minLen) {
				edges = append(edges, graph.Edge{U: uint32(a), V: uint32(b)})
			}
		}
	}

	verifyPhase.End(dev.HostTime())
	m := dev.Metrics().Sub(m0)
	st.AlignNs = m.KernelTimeNs
	st.H2DNs = m.H2DTimeNs
	st.D2HNs = m.D2HTimeNs
	st.Divergence = m.DivergenceOverhead()
	st.TotalNs = dev.HostTime() - host0
	return edges, nil
}

// startVerifyPhase opens the verify phase span at the device's current
// virtual time (inert on a nil recorder).
func startVerifyPhase(dev *gpusim.Device, r *obs.Recorder) obs.Ending {
	if !r.Enabled() {
		return obs.Ending{}
	}
	return r.Start(obs.TrackPhases, "verify", dev.HostTime())
}
