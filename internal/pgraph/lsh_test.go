package pgraph

import (
	"errors"
	"testing"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/seq"
)

// lshSettings are the banding shapes the equivalence tests sweep: the
// conservative preset, the tuned default, and a deliberately aggressive
// high-precision shape.
var lshSettings = []struct {
	label       string
	bands, rows int
}{
	{"conservative", ConservativeBands, 0},
	{"default", 0, 0},
	{"16x2", 16, 2},
}

func lshConfig(bands, rows int) Config {
	cfg := DefaultConfig()
	cfg.Filter = FilterLSH
	cfg.LSHBands = bands
	cfg.LSHRows = rows
	return cfg
}

// TestLSHConservativeSupersetOfExact: any pair the exact suffix filter emits
// shares an exact MinExactMatch-residue substring, hence a shingle, hence a
// conservative LSH bucket — the superset guarantee the cascade's
// bit-identity rests on.
func TestLSHConservativeSupersetOfExact(t *testing.T) {
	seqs := testMetagenome(t, 120)
	cfg := DefaultConfig()
	exact, _ := exactPairSet(seqs, cfg)
	lsh, _ := lshPairsHost(seqs, cfg, lshParams{conservative: true})
	for p := range exact {
		if !lsh[p] {
			a, b := p.unpack()
			t.Fatalf("exact pair (%d,%d) missing from conservative LSH candidates", a, b)
		}
	}
	if len(lsh) < len(exact) {
		t.Fatalf("conservative LSH found %d pairs, exact found %d", len(lsh), len(exact))
	}
}

// TestLSHDeviceMatchesHost: the device filter must produce the bit-identical
// candidate set to the host path at every setting — same shingles, same
// permutation family, same band keys, same buckets.
func TestLSHDeviceMatchesHost(t *testing.T) {
	seqs := testMetagenome(t, 80)
	for _, s := range lshSettings {
		cfg := lshConfig(s.bands, s.rows)
		_, prm, err := resolveFilter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := lshPairsHost(seqs, cfg, prm)
		dev := gpusim.MustNew(gpusim.K20Config())
		var st Stats
		cfg.GPU = true
		cfg.Device = dev
		got, err := lshDeviceFilter(dev, seqs, cfg, prm, &st)
		if err != nil {
			t.Fatalf("%s: %v", s.label, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: device found %d candidates, host %d", s.label, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				a, b := p.unpack()
				t.Fatalf("%s: host pair (%d,%d) missing on device", s.label, a, b)
			}
		}
		if st.Faults.Any() {
			t.Fatalf("%s: fault-free run recorded recovery %+v", s.label, st.Faults)
		}
	}
}

// TestCascadeConservativeMatchesExact: at the conservative preset the
// cascade's survivor set equals the exact filter's pair set, so the built
// graph is bit-identical — on the host backend and on the GPU.
func TestCascadeConservativeMatchesExact(t *testing.T) {
	seqs := testMetagenome(t, 100)
	base := DefaultConfig()
	want, wantSt, err := Build(seqs, base)
	if err != nil {
		t.Fatal(err)
	}

	cas := DefaultConfig()
	cas.Filter = FilterCascade
	cas.LSHBands = ConservativeBands
	got, st, err := Build(seqs, cas)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "host cascade", want, got)
	if st.Filter != FilterCascade {
		t.Fatalf("Stats.Filter = %q, want %q", st.Filter, FilterCascade)
	}
	if st.Candidates != wantSt.Candidates {
		t.Fatalf("cascade kept %d candidates, exact filter had %d", st.Candidates, wantSt.Candidates)
	}

	gpu := cas
	gpu.GPU = true
	gpu.Device = gpusim.MustNew(gpusim.K20Config())
	got, _, err = Build(seqs, gpu)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "gpu cascade", want, got)
}

// TestLSHFilterGraphsMatchHostGPU: at every banding shape, the LSH-filtered
// build must be backend-independent — host and device runs accept the
// identical edge set.
func TestLSHFilterGraphsMatchHostGPU(t *testing.T) {
	seqs := testMetagenome(t, 80)
	for _, s := range lshSettings {
		cfg := lshConfig(s.bands, s.rows)
		want, _, err := Build(seqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.GPU = true
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		got, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.label, err)
		}
		graphsEqual(t, s.label, want, got)
		if st.Filter != FilterLSH {
			t.Fatalf("%s: Stats.Filter = %q", s.label, st.Filter)
		}
	}
}

// TestLSHAllocFailureFallsBackToHost: persistent malloc faults starve the
// resident signature buffer; the ladder must degrade the whole filter to the
// bit-identical host LSH path and count the fallback.
func TestLSHAllocFailureFallsBackToHost(t *testing.T) {
	seqs := testMetagenome(t, 60)
	cfg := lshConfig(0, 0)
	want, _, err := Build(seqs, cfg) // host reference
	if err != nil {
		t.Fatal(err)
	}

	sch, err := faults.Parse("malloc op=1 count=500")
	if err != nil {
		t.Fatal(err)
	}
	gpu := lshConfig(0, 0)
	gpu.GPU = true
	gpu.Device = gpusim.MustNew(gpusim.K20Config())
	gpu.Device.SetFaultInjector(faults.NewInjector(sch))
	got, st, err := Build(seqs, gpu)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "alloc-starved lsh", want, got)
	if st.Faults.HostFallbacks < 1 {
		t.Fatalf("expected a host fallback, recovery %+v", st.Faults)
	}
}

// TestLSHNoHostFallbackFailsTyped: with the fallback disabled, the starved
// filter must fail wrapping ErrRetryBudget.
func TestLSHNoHostFallbackFailsTyped(t *testing.T) {
	seqs := testMetagenome(t, 60)
	sch, err := faults.Parse("malloc op=1 count=500")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lshConfig(0, 0)
	cfg.GPU = true
	cfg.NoHostFallback = true
	cfg.FaultRetries = 2
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	cfg.Device.SetFaultInjector(faults.NewInjector(sch))
	_, _, err = Build(seqs, cfg)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("error %v does not wrap ErrRetryBudget", err)
	}
}

// TestLSHBudgetTooSmall: a budget that cannot hold the conservative bucket
// pass (or one banded sequence) is a planning error, not a device fault —
// Build fails fast without retry noise.
func TestLSHBudgetTooSmall(t *testing.T) {
	seqs := testMetagenome(t, 60)
	cfg := lshConfig(ConservativeBands, 0)
	cfg.GPU = true
	cfg.GPUBatchWords = 64
	var st Stats
	dev := gpusim.MustNew(gpusim.K20Config())
	_, prm, err := resolveFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lshDeviceFilter(dev, seqs, cfg, prm, &st); err == nil {
		t.Fatal("64-word budget accepted for the conservative pass")
	}
	if st.Faults.Any() {
		t.Fatalf("planning failure charged recovery %+v", st.Faults)
	}
}

// TestFilterValidation: Config.Filter/LSHBands/LSHRows combinations that
// make no sense must be rejected before any work runs.
func TestFilterValidation(t *testing.T) {
	seqs := testMetagenome(t, 10)
	bad := []Config{
		func() Config { c := DefaultConfig(); c.Filter = "minhash"; return c }(),
		func() Config { c := DefaultConfig(); c.LSHBands = 8; return c }(),
		func() Config { c := DefaultConfig(); c.LSHRows = 2; return c }(),
		func() Config {
			c := DefaultConfig()
			c.Filter = FilterLSH
			c.LSHBands = ConservativeBands
			c.LSHRows = 2
			return c
		}(),
		func() Config { c := DefaultConfig(); c.Filter = FilterLSH; c.LSHBands = -7; return c }(),
		func() Config { c := DefaultConfig(); c.Filter = FilterCascade; c.LSHRows = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, _, err := Build(seqs, cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	// The exact spelling and the empty default are both fine.
	for _, f := range []string{"", FilterExact} {
		cfg := DefaultConfig()
		cfg.Filter = f
		if _, st, err := Build(seqs, cfg); err != nil {
			t.Fatal(err)
		} else if st.Filter != FilterExact {
			t.Fatalf("Stats.Filter = %q for Filter=%q", st.Filter, f)
		}
	}
}

// TestLSHPlanRecorded: a priced GPU LSH run must land a populated plan in
// Stats.LSHPlan with a sane predicted-vs-actual window.
func TestLSHPlanRecorded(t *testing.T) {
	seqs := testMetagenome(t, 80)
	cfg := lshConfig(0, 0)
	cfg.GPU = true
	cfg.PredictCost = true
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	_, st, err := Build(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := st.LSHPlan
	if p.Batches < 1 || p.BudgetWords <= 0 {
		t.Fatalf("LSH plan not populated: %+v", p)
	}
	if p.PredictedNs <= 0 || p.ActualNs <= 0 {
		t.Fatalf("LSH plan not priced: %+v", p)
	}
	if d := p.DriftFrac(); d > 0.25 {
		t.Fatalf("LSH cost-model drift %.0f%% above the gate: %+v", 100*d, p)
	}
	// The verification plan is independent and still reported.
	if st.Plan.Batches < 1 {
		t.Fatalf("verification plan missing: %+v", st.Plan)
	}
}

// FuzzLSHCandidates is the recall oracle: for any valid sequence set, every
// pair the exact suffix-array filter emits is found by LSH at the
// conservative preset.
func FuzzLSHCandidates(f *testing.F) {
	f.Add("MKVLITGAGSGIGLEAARQLA", "GKVLITGAGSGIGLEAARQFA", "MSTNPKPQRKTKRNTNRRPQD")
	f.Add("AAAAAAAAAAAAAAAA", "AAAAAAAAAAAAAAAA", "CCCCCCCCCCCCCCCC")
	f.Add("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ", "APKYIAKQRQISFVKSHFSRQ", "")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		var seqs []seq.Sequence
		for i, s := range []string{a, b, c} {
			if s == "" {
				continue
			}
			seqs = append(seqs, seq.Sequence{ID: string(rune('a' + i)), Residues: []byte(s)})
		}
		cfg := DefaultConfig()
		for _, s := range seqs {
			if align.ValidateSequence(s.Residues) != nil {
				return // invalid alphabet; Build rejects these inputs
			}
		}
		exact, _ := exactPairSet(seqs, cfg)
		lsh, _ := lshPairsHost(seqs, cfg, lshParams{conservative: true})
		for p := range exact {
			if !lsh[p] {
				x, y := p.unpack()
				t.Fatalf("exact pair (%d,%d) missing from conservative LSH candidates", x, y)
			}
		}
	})
}
