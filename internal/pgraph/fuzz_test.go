package pgraph

import (
	"bytes"
	"testing"

	"gpclust/internal/align"
	"gpclust/internal/gpusim"
	"gpclust/internal/seq"
)

// FuzzSWBatch is the oracle for the whole GPU verification stack: random
// sequence batches go through binning, Algorithm-2-style batch packing and
// the device kernel — both schedulers — and every score must equal a
// per-pair align.ScoreOnly on the host. This is the enforcement of the
// bit-identical-edge-set contract at its root.
func FuzzSWBatch(f *testing.F) {
	f.Add([]byte("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQV"), uint8(3), uint16(64))
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAWWWWWWWWWWVVVVVVVVVV"), uint8(5), uint16(0))
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3, 250, 251}, 40), uint8(2), uint16(900))
	f.Fuzz(func(t *testing.T, data []byte, nseq uint8, extra uint16) {
		n := 2 + int(nseq%6)
		const maxLen = 300
		seqs := make([]seq.Sequence, n)
		chunk := min(len(data)/n, maxLen)
		longest := 0
		for i := range seqs {
			body := data[i*chunk : (i+1)*chunk]
			res := make([]byte, len(body))
			for k, b := range body {
				res[k] = align.Alphabet[int(b)%align.AlphabetSize]
			}
			seqs[i] = seq.Sequence{ID: "f", Residues: res}
			longest = max(longest, len(res))
		}
		var pairs []pairKey
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				pairs = append(pairs, makePair(int32(a), int32(b)))
			}
		}
		enc := encodeSeqs(seqs)
		prm := align.DefaultParams()
		// Every residue layout must reproduce the host scores: byte image,
		// packed image expanded on device, packed image decoded in place.
		modes := []Config{
			{Align: prm},
			{Align: prm, Packed: true},
			{Align: prm, Packed: true, Fuse: true},
		}

		for _, bin := range []bool{true, false} {
			order := binPairs(enc, pairs, bin)
			for _, cfg := range modes {
				// Budget always admits the costliest pair under the bulkiest
				// layout; extra varies how many pairs share a batch.
				w := 2 * seqWords(make([]byte, longest))
				budget := swTableLen + 5 + swLayoutOf(cfg, false).pairWords(w, 0) + int(extra)
				plans, err := planSWBatches(enc, pairs, order, budget, layoutFor(cfg))
				if err != nil {
					t.Fatal(err)
				}
				devSeq := gpusim.MustNew(gpusim.SmallConfig())
				got := make([]int32, len(pairs))
				if err := runSWBatchesSequential(devSeq, plans, enc, pairs, order, cfg, got); err != nil {
					t.Fatal(err)
				}
				devPipe := gpusim.MustNew(gpusim.SmallConfig())
				gotPipe := make([]int32, len(pairs))
				if err := runSWBatchesPipelined(devPipe, plans, enc, pairs, order, cfg, gotPipe); err != nil {
					t.Fatal(err)
				}
				for k, idx := range order {
					a, b := pairs[idx].unpack()
					want := align.ScoreOnly(seqs[a].Residues, seqs[b].Residues, prm)
					if int(got[k]) != want {
						t.Fatalf("bin=%v packed=%v fuse=%v pair (%d,%d): sequential device score %d, ScoreOnly %d",
							bin, cfg.Packed, cfg.Fuse, a, b, got[k], want)
					}
					if gotPipe[k] != got[k] {
						t.Fatalf("bin=%v packed=%v fuse=%v pair (%d,%d): pipelined score %d != sequential %d",
							bin, cfg.Packed, cfg.Fuse, a, b, gotPipe[k], got[k])
					}
				}
				if err := devSeq.LeakCheck(); err != nil {
					t.Fatal(err)
				}
				if err := devPipe.LeakCheck(); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}
