package pgraph

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

func obsNear(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestObsRecorderGPUBuild checks the GPU build's recorded structure: the
// filter/verify phases, per-batch spans, a split that matches Stats, and
// counters equal to Stats — plus the bit-identical contract against a
// recorder-free build.
func TestObsRecorderGPUBuild(t *testing.T) {
	seqs := testMetagenome(t, 120)
	for _, pipeline := range []bool{false, true} {
		base := DefaultConfig()
		base.GPU = true
		base.GPUPipeline = pipeline
		// Small enough that even the packed layout (which fits more pairs
		// per batch) schedules several batches, so both lanes see work.
		base.GPUBatchWords = 3_000
		base.Device = gpusim.MustNew(gpusim.K20Config())
		gPlain, stPlain, err := Build(seqs, base)
		if err != nil {
			t.Fatal(err)
		}

		cfg := base
		rec := obs.New()
		cfg.Obs = rec
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		cfg.Device.EnableTracing()
		g, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, "recorder attached", gPlain, g)
		if st.TotalNs != stPlain.TotalNs || st.AlignNs != stPlain.AlignNs {
			t.Fatalf("pipeline=%v: recorder changed virtual times: %+v vs %+v", pipeline, st, stPlain)
		}

		var phases []string
		tracks := map[string]int{}
		for _, s := range rec.Spans() {
			tracks[s.Track]++
			if s.Track == obs.TrackPhases {
				phases = append(phases, s.Name)
			}
		}
		if !reflect.DeepEqual(phases, []string{"filter", "verify"}) {
			t.Fatalf("pipeline=%v: phases = %v, want [filter verify]", pipeline, phases)
		}
		if pipeline {
			if tracks["lane0"] == 0 || tracks["lane1"] == 0 {
				t.Fatalf("pipelined build recorded no lane spans: %v", tracks)
			}
		} else if tracks[obs.TrackBatches] == 0 {
			t.Fatalf("sequential build recorded no batch spans: %v", tracks)
		}

		tl := obs.DeviceTimeline{Name: "device0", Events: cfg.Device.Trace()}
		sp := obs.TableSplit(rec.Spans(), []obs.DeviceTimeline{tl})
		if !obsNear(sp.GPUNs, st.AlignNs) || !obsNear(sp.H2DNs, st.H2DNs) ||
			!obsNear(sp.D2HNs, st.D2HNs) || !obsNear(sp.TotalNs, st.TotalNs) {
			t.Errorf("pipeline=%v: span split %+v != stats %+v", pipeline, sp, st)
		}

		if got := rec.Counter("pgraph_candidates", "").Value(); got != int64(st.Candidates) {
			t.Errorf("pgraph_candidates = %d, want %d", got, st.Candidates)
		}
		if got := rec.Counter("pgraph_edges", "").Value(); got != st.Edges {
			t.Errorf("pgraph_edges = %d, want %d", got, st.Edges)
		}
		if got := rec.Counter("pgraph_gpu_batches", "").Value(); got != int64(st.GPUBatches) {
			t.Errorf("pgraph_gpu_batches = %d, want %d", got, st.GPUBatches)
		}
		// The thrust kernel counts its own launches; on a fault-free run the
		// scheduled batches and launch attempts coincide.
		if got := rec.Counter("gpclust_sw_kernel_launches", "").Value(); got != int64(st.GPUBatches) {
			t.Errorf("gpclust_sw_kernel_launches = %d, want %d", got, st.GPUBatches)
		}

		var metrics bytes.Buffer
		if err := rec.WriteOpenMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(metrics.Bytes(), []byte("pgraph_edges_total")) {
			t.Fatalf("metrics export missing pgraph_edges_total:\n%s", metrics.Bytes())
		}
	}
}

// TestObsRecorderHostBuild: the host backend records its synthetic timeline
// and the same counters.
func TestObsRecorderHostBuild(t *testing.T) {
	seqs := testMetagenome(t, 80)
	cfg := DefaultConfig()
	rec := obs.New()
	cfg.Obs = rec
	_, st, err := Build(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := obs.TableSplit(rec.Spans(), nil)
	if !obsNear(sp.TotalNs, st.TotalNs) {
		t.Fatalf("span total %.3f != stats total %.3f", sp.TotalNs, st.TotalNs)
	}
	if got := rec.Counter("pgraph_edges", "").Value(); got != st.Edges {
		t.Fatalf("pgraph_edges = %d, want %d", got, st.Edges)
	}
}

// TestConfigRetryBackoff pins the Config.RetryBackoffNs migration: zero means
// the former package default, negatives are rejected by Build, and the knob
// scales recovery stalls without changing the edge set.
func TestConfigRetryBackoff(t *testing.T) {
	if got := (Config{}).retryBackoff(); got != DefaultRetryBackoffNs {
		t.Fatalf("zero RetryBackoffNs resolved to %g, want default %g", got, DefaultRetryBackoffNs)
	}
	if got := (Config{RetryBackoffNs: 7}).retryBackoff(); got != 7 {
		t.Fatalf("explicit RetryBackoffNs resolved to %g, want 7", got)
	}
	seqs := testMetagenome(t, 60)
	bad := DefaultConfig()
	bad.RetryBackoffNs = -1
	if _, _, err := Build(seqs, bad); err == nil {
		t.Fatal("Build accepted negative RetryBackoffNs")
	}

	run := func(backoff float64) Stats {
		sched, err := faults.Parse("h2d op=2 count=2")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.GPU = true
		cfg.GPUBatchWords = 6_000
		cfg.RetryBackoffNs = backoff
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		cfg.Device.SetFaultInjector(faults.NewInjector(sched))
		_, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	small, large := run(1e3), run(1e6)
	if small.Faults.BackoffNs == 0 || large.Faults.BackoffNs == 0 {
		t.Fatal("fault schedule produced no retries")
	}
	if large.Faults.BackoffNs <= small.Faults.BackoffNs {
		t.Fatalf("RetryBackoffNs not honored: %g (1e3 base) vs %g (1e6 base)",
			small.Faults.BackoffNs, large.Faults.BackoffNs)
	}
	if small.Edges != large.Edges {
		t.Fatal("backoff setting changed the edge count")
	}
}
