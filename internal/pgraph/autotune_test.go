package pgraph

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/sched"
)

func checkSWPlan(t *testing.T, label string, p sched.PlanReport, wantAuto bool) {
	t.Helper()
	if p.AutoTuned != wantAuto {
		t.Fatalf("%s: AutoTuned=%v, want %v (%s)", label, p.AutoTuned, wantAuto, p.String())
	}
	if p.BudgetWords <= 0 || p.Lanes <= 0 || p.Batches <= 0 {
		t.Fatalf("%s: degenerate plan %s", label, p.String())
	}
	if p.PredictedNs <= 0 {
		t.Fatalf("%s: no cost prediction recorded: %s", label, p.String())
	}
	if p.ActualNs <= 0 {
		t.Fatalf("%s: no scheduler window measured: %s", label, p.String())
	}
	if d := p.DriftFrac(); d > 0.25 {
		t.Fatalf("%s: cost-model drift %.0f%% exceeds the 25%% gate (%s)",
			label, d*100, p.String())
	}
}

// TestAutoTuneMatchesHostEdges is the -batchwords auto contract: the tuner
// picks the plan, the edge set stays bit-identical to the host pool.
func TestAutoTuneMatchesHostEdges(t *testing.T) {
	seqs := testMetagenome(t, 150)
	host, _, err := Build(seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GPU = true
	cfg.AutoTune = true
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	g, st, err := Build(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "auto", host, g)
	checkSWPlan(t, "auto", st.Plan, true)
	if cfg.Device.AllocatedBuffers() != 0 {
		t.Fatalf("%d device buffers leaked", cfg.Device.AllocatedBuffers())
	}
}

// TestAutoTunePipelinedLaneSet: an explicit -pipeline pins the pipelined
// executor, so the tuner must choose at least two lanes.
func TestAutoTunePipelinedLaneSet(t *testing.T) {
	seqs := testMetagenome(t, 150)
	host, _, err := Build(seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GPU = true
	cfg.GPUPipeline = true
	cfg.AutoTune = true
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	g, st, err := Build(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "auto pipelined", host, g)
	checkSWPlan(t, "auto pipelined", st.Plan, true)
	if st.Plan.Lanes < 2 {
		t.Fatalf("pipelined tuner chose %d lanes (%s)", st.Plan.Lanes, st.Plan.String())
	}
}

// TestPredictCostFixedSWPlan prices a fixed budget without tuning and holds
// it to the same drift gate — the fixed rows of the autotune ablation.
func TestPredictCostFixedSWPlan(t *testing.T) {
	seqs := testMetagenome(t, 150)
	cfg := DefaultConfig()
	cfg.GPU = true
	cfg.GPUBatchWords = 40_000
	cfg.PredictCost = true
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	_, st, err := Build(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSWPlan(t, "fixed", st.Plan, false)
	if st.Plan.BudgetWords != 40_000 {
		t.Fatalf("fixed budget not honoured: %s", st.Plan.String())
	}

	pipeCfg := cfg
	pipeCfg.GPUPipeline = true
	pipeCfg.Device = gpusim.MustNew(gpusim.K20Config())
	_, pst, err := Build(seqs, pipeCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSWPlan(t, "fixed pipelined", pst.Plan, false)
	if pst.Plan.Lanes < 2 {
		t.Fatalf("pipelined fixed plan reports %d lanes (%s)", pst.Plan.Lanes, pst.Plan.String())
	}
}

// TestAutoTuneNotWorseThanLegacySW: the candidate sweep contains the legacy
// budget derivation, so the tuned build can never be slower than the legacy
// default.
func TestAutoTuneNotWorseThanLegacySW(t *testing.T) {
	seqs := testMetagenome(t, 250)
	legacyCfg := DefaultConfig()
	legacyCfg.GPU = true
	legacyCfg.Device = gpusim.MustNew(gpusim.K20Config())
	hostG, lst, err := Build(seqs, legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	autoCfg := DefaultConfig()
	autoCfg.GPU = true
	autoCfg.AutoTune = true
	autoCfg.Device = gpusim.MustNew(gpusim.K20Config())
	g, ast, err := Build(seqs, autoCfg)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "auto vs legacy", hostG, g)
	if ast.Plan.ActualNs > lst.Plan.ActualNs {
		t.Fatalf("auto-tuned scheduler window %.3fms exceeds legacy %.3fms",
			ast.Plan.ActualNs/1e6, lst.Plan.ActualNs/1e6)
	}
}

func TestSWLaneSet(t *testing.T) {
	if got := swLaneSet(Config{}); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("default lane set %v", got)
	}
	if got := swLaneSet(Config{GPUPipeline: true}); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("pipelined lane set %v", got)
	}
}

func TestLegacySWBudget(t *testing.T) {
	dev := gpusim.MustNew(gpusim.K20Config())
	defer dev.Synchronize()
	seq := legacySWBudget(dev, Config{})
	pipe := legacySWBudget(dev, Config{GPUPipeline: true})
	if seq != int(dev.FreeMemory()/gpusim.WordBytes/4*3) {
		t.Fatalf("sequential legacy budget %d", seq)
	}
	if pipe != seq/2 {
		t.Fatalf("pipelined legacy budget %d, want half of %d", pipe, seq)
	}
}
