package pgraph

import (
	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// Cost-model pricing of the device LSH filter, in the verification stage's
// style: every kernel the pipeline launches is calibrated by probing the
// real implementation on a scratch device with the same config, and the
// filter's exact operation sequence — staging, copies, launches, readback,
// emission — replays through sched.Sim. The predicted window lands in
// Stats.LSHPlan.PredictedNs next to the measured one, gated by benchcheck's
// drift check like the verification plans.

// Calibrated kernel names of the LSH pipeline.
const (
	kLSHHash  = "transform_hash"
	kLSHTopS  = "segmented_top_s"
	kLSHBand  = "band_hash"
	kLSHSort  = "sort_pairs64"
	kLSHHeads = "bucket_heads"
	kLSHFill  = "fill"
)

// lshProbeWords caps the calibration probe's shingle stream.
const lshProbeWords = 4096

// segThreads is the thread count of one segmented launch over nsegs
// segments (one thread per segment, 256-wide blocks).
func segThreads(nsegs int) int {
	grid := (nsegs + 255) / 256
	if grid < 1 {
		grid = 1
	}
	return grid * 256
}

// calibrateLSHModel probes every kernel of the LSH pipeline on a scratch
// device: a prefix of the real shingle stream with its real segment
// structure, so the probes' divergence and access patterns match the run
// they price. Probe failures leave kernels uncalibrated (priced at launch
// cost only) — they cannot occur on a fresh fault-free device.
func calibrateLSHModel(devCfg gpusim.Config, e *lshEnv) *sched.Model {
	m := sched.NewModel(devCfg)
	if e.total == 0 {
		return m
	}
	// Probe shape: whole sets until the word cap, at least one.
	n, nseg := 0, 0
	for _, set := range e.sets {
		if nseg > 0 && n+len(set) > lshProbeWords {
			break
		}
		n += len(set)
		nseg++
	}
	data := make([]uint32, 0, n)
	offs := make([]uint32, nseg+1)
	for i, set := range e.sets[:nseg] {
		offs[i] = uint32(len(data))
		data = append(data, set...)
	}
	offs[nseg] = uint32(len(data))
	rows := e.prm.rows
	if rows < 1 {
		rows = 1
	}

	scratch := gpusim.MustNew(devCfg)
	bufs, err := lshMalloc(scratch, n, nseg+1, n, rows*nseg, nseg, n, n)
	if err != nil {
		return m
	}
	dataBuf, offBuf, tmpBuf, sigBuf, keyBuf, valBuf, flagBuf := bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], bufs[5], bufs[6]
	defer lshFree(bufs)
	if scratch.CopyH2D(dataBuf, 0, data) != nil || scratch.CopyH2D(offBuf, 0, offs) != nil {
		return m
	}
	probe := func(name string, units float64, threads int, launch func() error) {
		k0 := scratch.Metrics().KernelTimeNs
		if launch() != nil {
			return
		}
		m.CalibrateKernel(name, scratch.Metrics().KernelTimeNs-k0-devCfg.KernelLaunchNs, units, threads)
	}
	fam := minwise.NewFamily(1, lshFamilySeed)
	probe(kLSHHash, float64(n), swUnpackThreads(n), func() error {
		return thrust.TransformHash(scratch, dataBuf, tmpBuf, n, fam.Pairs[0].A, fam.Pairs[0].B, minwise.Prime)
	})
	segs := thrust.Segments{Offsets: offBuf, NumSegs: nseg}
	probe(kLSHTopS, float64(n), segThreads(nseg), func() error {
		return thrust.SegmentedTopSAt(scratch, nil, tmpBuf, segs, 1, sigBuf, 0)
	})
	probe(kLSHFill, float64(rows*nseg), swUnpackThreads(rows*nseg), func() error {
		return thrust.Fill(scratch, sigBuf, rows*nseg, 1)
	})
	probe(kLSHBand, float64(rows*nseg), swUnpackThreads(nseg), func() error {
		return thrust.BandHash(scratch, nil, sigBuf, nseg, 0, rows, keyBuf, 0)
	})
	probe(kLSHSort, float64(n), swUnpackThreads(n), func() error {
		return thrust.SortPairs64(scratch, dataBuf, tmpBuf, valBuf, n)
	})
	probe(kLSHHeads, float64(n), swUnpackThreads(n), func() error {
		return thrust.MarkBucketHeads(scratch, nil, dataBuf, tmpBuf, n, flagBuf)
	})
	return m
}

// predictLSH replays the filter's operation sequence — everything between
// the scheduler window's start and the post-run synchronize — through the
// cost model. Every LSH op is synchronous (one lane, no overlap), so the
// replay is a straight accumulation.
func predictLSH(m *sched.Model, e *lshEnv, spansA, spansB []sched.Span) float64 {
	sim := sched.NewSim(m, 0)
	groupNs := func(n int) {
		sim.Kernel(-1, kLSHSort, float64(n), swUnpackThreads(n))
		sim.Kernel(-1, kLSHHeads, float64(n), swUnpackThreads(n))
		sim.Copy(-1, n, false) // head flags
		sim.Copy(-1, n, false) // bucket values
		sim.HostWork(float64(n) * FilterNsPerOp)
	}
	if e.prm.conservative {
		if n := e.total; n > 0 {
			sim.HostWork(float64(2*n) * packNsPerWord)
			sim.Copy(-1, n, true)
			sim.Copy(-1, n, true)
			sim.Kernel(-1, kLSHFill, float64(n), swUnpackThreads(n))
			groupNs(n)
		}
		sim.SyncAll()
		return sim.Host
	}
	ne := len(e.sets)
	c := e.prm.hashes()
	for _, sp := range spansA {
		ns := sp.Hi - sp.Lo
		words := 0
		for _, set := range e.sets[sp.Lo:sp.Hi] {
			words += len(set)
		}
		sim.HostWork(float64(words+ns+1) * packNsPerWord)
		sim.Copy(-1, words, true)
		sim.Copy(-1, ns+1, true)
		for j := 0; j < c; j++ {
			sim.Kernel(-1, kLSHHash, float64(words), swUnpackThreads(words))
			sim.Kernel(-1, kLSHTopS, float64(words), segThreads(ns))
		}
	}
	for _, sp := range spansB {
		g := sp.Hi - sp.Lo
		n := g * ne
		sim.HostWork(float64(2*n) * packNsPerWord)
		sim.Copy(-1, n, true)
		sim.Copy(-1, n, true)
		for b := 0; b < g; b++ {
			sim.Kernel(-1, kLSHBand, float64(e.prm.rows*ne), swUnpackThreads(ne))
		}
		groupNs(n)
	}
	sim.SyncAll()
	return sim.Host
}
