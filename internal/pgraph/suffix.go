// Package pgraph reconstructs the paper's homology-detection substrate
// (pGraph, Wu, Kalyanaraman & Cannon, TPDS 2012): candidate sequence pairs
// are generated from exact maximal matches found with a generalized suffix
// structure, then verified with the optimality-guaranteeing Smith–Waterman
// algorithm, and verified pairs become the edges of the similarity graph
// that gpClust clusters (Section I-A).
package pgraph

import (
	"gpclust/internal/seq"
)

// suffixIndex is a generalized suffix array over a sequence set: all
// suffixes of all sequences in full lexicographic order, with Kasai LCPs.
// Sequence boundaries carry unique separator symbols, so no common prefix
// (and therefore no match) ever crosses a sequence — the same query a
// generalized suffix tree answers for the original pGraph.
type suffixIndex struct {
	sym   []int32 // residues as positive symbols; unique negatives at boundaries
	seqOf []int32 // sequence index owning each position
	sa    []int32 // suffix order (positions into sym)
	lcps  []int32 // lcp[i] = common prefix of sa[i-1], sa[i]
}

// buildSuffixIndex concatenates the sequences (unique separators between
// them) and builds the suffix and LCP arrays.
func buildSuffixIndex(seqs []seq.Sequence) *suffixIndex {
	total := 0
	for _, s := range seqs {
		total += s.Len() + 1
	}
	idx := &suffixIndex{
		sym:   make([]int32, 0, total),
		seqOf: make([]int32, 0, total),
	}
	sep := int32(-1)
	for si, s := range seqs {
		for _, c := range s.Residues {
			idx.sym = append(idx.sym, int32(c))
			idx.seqOf = append(idx.seqOf, int32(si))
		}
		idx.sym = append(idx.sym, sep)
		idx.seqOf = append(idx.seqOf, int32(si))
		sep-- // unique per boundary: separators never match each other
	}
	if len(idx.sym) == 0 {
		return idx
	}
	idx.sa = buildSuffixArray(idx.sym)
	idx.lcps = computeLCP(idx.sym, idx.sa)
	return idx
}

// compareSuffixes orders two suffixes lexicographically over the symbol
// sequence (used by tests to validate the suffix array).
func (x *suffixIndex) compareSuffixes(a, b int32) int {
	for int(a) < len(x.sym) && int(b) < len(x.sym) {
		if x.sym[a] != x.sym[b] {
			if x.sym[a] < x.sym[b] {
				return -1
			}
			return 1
		}
		a++
		b++
	}
	switch {
	case int(a) == len(x.sym) && int(b) == len(x.sym):
		return 0
	case int(a) == len(x.sym):
		return -1
	default:
		return 1
	}
}

// lcp returns the genuine common-prefix length of two suffixes; separators
// are unique so it never crosses a sequence boundary.
func (x *suffixIndex) lcp(a, b int32) int {
	n := 0
	for int(a) < len(x.sym) && int(b) < len(x.sym) && x.sym[a] == x.sym[b] {
		a++
		b++
		n++
	}
	return n
}

// pairKey packs an unordered sequence pair (i < j).
type pairKey uint64

func makePair(a, b int32) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey(uint64(a)<<32 | uint64(uint32(b)))
}

func (p pairKey) unpack() (int32, int32) {
	return int32(p >> 32), int32(uint32(p))
}

// candidatePairs walks the LCP array and, for every run of suffixes sharing
// an exact match of at least minMatch residues, emits candidate sequence
// pairs. Within a run, each suffix is paired with at most windowCap
// following suffixes from other sequences — the pair-generation throttle
// any maximal-match filter needs to keep low-complexity motifs from
// exploding quadratically (pGraph throttles equivalently).
func (x *suffixIndex) candidatePairs(minMatch, windowCap int) map[pairKey]bool {
	pairs := make(map[pairKey]bool)
	n := len(x.sa)
	runStart := 0
	for i := 1; i <= n; i++ {
		if i < n && int(x.lcps[i]) >= minMatch {
			continue
		}
		// sa[runStart:i] share a ≥ minMatch prefix pairwise (adjacent LCPs
		// within the run are all ≥ minMatch, and LCP is min-transitive).
		if i-runStart >= 2 {
			for a := runStart; a < i; a++ {
				sa := x.seqOf[x.sa[a]]
				emitted := 0
				for b := a + 1; b < i && emitted < windowCap; b++ {
					sb := x.seqOf[x.sa[b]]
					if sa == sb {
						continue
					}
					pairs[makePair(sa, sb)] = true
					emitted++
				}
			}
		}
		runStart = i
	}
	return pairs
}
