package pgraph

import (
	"errors"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
)

// TestChaosSweepBothSchedulers is the pGraph half of the chaos acceptance
// harness: over ≥ 20 seeded random fault schedules, both GPU verification
// schedulers must recover to the bit-identical host edge set, and
// Stats.Faults must be nonzero exactly when injected faults failed ops.
func TestChaosSweepBothSchedulers(t *testing.T) {
	seqs := testMetagenome(t, 120)
	host, _, err := Build(seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, pipeline := range []bool{false, true} {
		name := "sequential"
		if pipeline {
			name = "pipelined"
		}
		for seed := int64(1); seed <= 20; seed++ {
			sch := faults.RandSchedule(seed, 5)
			inj := faults.NewInjector(sch)
			cfg := DefaultConfig()
			cfg.GPU = true
			cfg.GPUPipeline = pipeline
			cfg.GPUBatchWords = 6_000 // force several batches
			cfg.Device = gpusim.MustNew(gpusim.K20Config())
			cfg.Device.SetFaultInjector(inj)
			g, st, err := Build(seqs, cfg)
			if err != nil {
				t.Fatalf("%s seed %d (schedule %q): %v", name, seed, sch.String(), err)
			}
			graphsEqual(t, name, host, g)
			failed := inj.TotalFailures() > 0
			if st.Faults.Any() != failed {
				t.Fatalf("%s seed %d: Faults.Any()=%v but injector failed %d ops (schedule %q)",
					name, seed, st.Faults.Any(), inj.TotalFailures(), sch.String())
			}
			if err := cfg.Device.LeakCheck(); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestChaosSweepLSHFilter extends the sweep to the on-device LSH filter:
// random fault schedules now hit the signature, band-hash, sort and bucket
// kernels (and their copies) before verification ever runs, and the build
// must still recover to the bit-identical fault-free edge set — the filter's
// ladder retries the idempotent pipeline or degrades to the host LSH path.
func TestChaosSweepLSHFilter(t *testing.T) {
	seqs := testMetagenome(t, 60)
	base := DefaultConfig()
	base.Filter = FilterLSH
	host, _, err := Build(seqs, base)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 20; seed++ {
		sch := faults.RandSchedule(seed, 5)
		inj := faults.NewInjector(sch)
		cfg := base
		cfg.GPU = true
		// Must hold the resident signature matrix (256 hashes × ~60 eligible
		// sequences) while still forcing several band-stage spans.
		cfg.GPUBatchWords = 40_000
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		cfg.Device.SetFaultInjector(inj)
		g, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatalf("seed %d (schedule %q): %v", seed, sch.String(), err)
		}
		graphsEqual(t, "lsh", host, g)
		failed := inj.TotalFailures() > 0
		if st.Faults.Any() != failed {
			t.Fatalf("seed %d: Faults.Any()=%v but injector failed %d ops (schedule %q)",
				seed, st.Faults.Any(), inj.TotalFailures(), sch.String())
		}
		if err := cfg.Device.LeakCheck(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestChaosSWRecoveryLadder drives each rung of the pGraph ladder.
func TestChaosSWRecoveryLadder(t *testing.T) {
	seqs := testMetagenome(t, 80)
	host, _, err := Build(seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		schedule string
		pipeline bool
		check    func(t *testing.T, st Stats)
	}{
		{"transfer retry", "h2d op=2; d2h op=4", false, func(t *testing.T, st Stats) {
			if st.Faults.TransferRetries == 0 {
				t.Fatalf("no transfer retries recorded: %s", st.Faults)
			}
		}},
		{"kernel retry", "kernel op=1", false, func(t *testing.T, st Stats) {
			if st.Faults.KernelRetries == 0 {
				t.Fatalf("no kernel retries recorded: %s", st.Faults)
			}
		}},
		// malloc op=1 is the resident score table's allocation, which cannot
		// split; op=2 is the first batch buffer, whose persistent OOM must
		// retry then split.
		{"oom split", "malloc op=2 count=8", false, func(t *testing.T, st Stats) {
			if st.Faults.OOMRetries == 0 || st.Faults.OOMSplits == 0 {
				t.Fatalf("persistent OOM should retry then split: %s", st.Faults)
			}
		}},
		{"host fallback", "h2d op=1 count=60", false, func(t *testing.T, st Stats) {
			if st.Faults.HostFallbacks == 0 {
				t.Fatalf("exhausted budget did not fall back to the host: %s", st.Faults)
			}
		}},
		{"pipelined restart", "kernel op=1", true, func(t *testing.T, st Stats) {
			if st.Faults.Restarts == 0 {
				t.Fatalf("pipelined fault did not restart the pass: %s", st.Faults)
			}
		}},
		// A persistent h2d storm would now take out the resident-table upload
		// (whole-build host fallback before the pipelined pass ever starts),
		// so the degradation rung is driven through kernel faults instead.
		{"pipelined degrade", "kernel op=1 count=500", true, func(t *testing.T, st Stats) {
			if st.Faults.Restarts == 0 || st.Faults.HostFallbacks == 0 {
				t.Fatalf("persistent pipelined faults should restart then degrade: %s", st.Faults)
			}
		}},
		{"slow sm only", "slowsm op=1 count=4 x=5", false, func(t *testing.T, st Stats) {
			if st.Faults.Any() {
				t.Fatalf("latency spike needed no recovery but recorded: %s", st.Faults)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := faults.Parse(tc.schedule)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.GPU = true
			cfg.GPUPipeline = tc.pipeline
			cfg.GPUBatchWords = 6_000
			cfg.Device = gpusim.MustNew(gpusim.K20Config())
			cfg.Device.SetFaultInjector(faults.NewInjector(sched))
			g, st, err := Build(seqs, cfg)
			if err != nil {
				t.Fatalf("schedule %q: %v", tc.schedule, err)
			}
			graphsEqual(t, tc.name, host, g)
			tc.check(t, st)
			if err := cfg.Device.LeakCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosSWNoFallbackTypedError: with the fallback disabled, a fault
// storm must surface as a clean error wrapping ErrRetryBudget — and the
// device must not leak batch buffers on the failure path.
func TestChaosSWNoFallbackTypedError(t *testing.T) {
	seqs := testMetagenome(t, 60)
	for _, pipeline := range []bool{false, true} {
		for _, schedule := range []string{
			"h2d op=1 count=1000000",
			"kernel op=1 count=1000000",
			"malloc op=1 count=1000000",
		} {
			sched, err := faults.Parse(schedule)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.GPU = true
			cfg.GPUPipeline = pipeline
			cfg.GPUBatchWords = 6_000
			cfg.FaultRetries = 2
			cfg.NoHostFallback = true
			cfg.Device = gpusim.MustNew(gpusim.K20Config())
			cfg.Device.SetFaultInjector(faults.NewInjector(sched))
			_, _, err = Build(seqs, cfg)
			if err == nil {
				t.Fatalf("pipeline=%v schedule %q: build succeeded under a fault storm with fallback disabled",
					pipeline, schedule)
			}
			if !errors.Is(err, ErrRetryBudget) {
				t.Fatalf("pipeline=%v schedule %q: error %v does not wrap ErrRetryBudget",
					pipeline, schedule, err)
			}
			if err := cfg.Device.LeakCheck(); err != nil {
				t.Fatalf("pipeline=%v schedule %q: %v", pipeline, schedule, err)
			}
		}
	}
}
