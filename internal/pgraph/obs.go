package pgraph

import (
	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// Observability plumbing for the build pipeline, mirroring internal/core's:
// recording is pure observation of virtual times the cost model already
// produced, so a nil recorder yields a bit-identical build.

// chargeHost advances the device's host clock by ns of CPU work and, when a
// recorder is wired, mirrors the charge as a host-cpu span.
func chargeHost(dev *gpusim.Device, r *obs.Recorder, name string, ns float64) {
	if r.Enabled() && ns > 0 {
		t0 := dev.HostTime()
		dev.AdvanceHost(ns)
		r.Span(obs.TrackHostCPU, name, t0, t0+ns)
		return
	}
	dev.AdvanceHost(ns)
}

// recoveryInstant marks one fault-recovery action on the recovery track at
// the device's current virtual time.
func recoveryInstant(dev *gpusim.Device, r *obs.Recorder, name string) {
	if r.Enabled() {
		r.Instant(obs.TrackRecovery, name, dev.HostTime())
	}
}

// recordBuildMetrics registers the build's counters from the finished Stats,
// so exported metrics match it exactly.
func recordBuildMetrics(r *obs.Recorder, st *Stats) {
	if !r.Enabled() {
		return
	}
	r.Counter("pgraph_candidates",
		"Promising pairs from the maximal-match filter.").Add(int64(st.Candidates))
	r.Counter("pgraph_edges",
		"Edges accepted by Smith-Waterman verification.").Add(st.Edges)
	r.Counter("pgraph_gpu_batches",
		"Device verification batches scheduled.").Add(int64(st.GPUBatches))
	r.Gauge("pgraph_divergence",
		"SW-kernel warp-divergence overhead of the most recent build.").Set(st.Divergence)

	// Transfer-cost split: fixed setup vs bandwidth-proportional volume per
	// direction — the packed image shrinks only the volume terms.
	r.Gauge("pgraph_h2d_setup_ns",
		"Fixed per-copy setup time across all host→device transfers.").Set(st.H2DSetupNs)
	r.Gauge("pgraph_h2d_volume_ns",
		"Bandwidth-proportional time across all host→device transfers.").Set(st.H2DVolumeNs)
	r.Gauge("pgraph_d2h_setup_ns",
		"Fixed per-copy setup time across all device→host transfers.").Set(st.D2HSetupNs)
	r.Gauge("pgraph_d2h_volume_ns",
		"Bandwidth-proportional time across all device→host transfers.").Set(st.D2HVolumeNs)
	r.Gauge("pgraph_h2d_bytes",
		"Bytes moved host→device by the most recent build.").Set(float64(st.H2DBytes))
	r.Gauge("pgraph_d2h_bytes",
		"Bytes moved device→host by the most recent build.").Set(float64(st.D2HBytes))

	f := st.Faults
	r.Counter("pgraph_fault_transfer_retries",
		"Verification batches retried after a transfer fault.").Add(f.TransferRetries)
	r.Counter("pgraph_fault_kernel_retries",
		"Verification batches retried after a kernel-launch fault.").Add(f.KernelRetries)
	r.Counter("pgraph_fault_oom_retries",
		"Verification batches retried after an unsplittable device OOM.").Add(f.OOMRetries)
	r.Counter("pgraph_fault_oom_splits",
		"Verification batches split in half after persistent device OOM.").Add(f.OOMSplits)
	r.Counter("pgraph_fault_host_fallbacks",
		"Verification batches degraded to host scoring.").Add(f.HostFallbacks)
	r.Counter("pgraph_fault_pipeline_restarts",
		"Pipelined verification passes restarted.").Add(f.Restarts)
	r.Gauge("pgraph_fault_backoff_ns",
		"Virtual-clock backoff burned between fault retries.").Set(f.BackoffNs)
}
