package pgraph

import (
	"fmt"
	"math/bits"
	"sort"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/obs"
	"gpclust/internal/seq"
	"gpclust/internal/unionfind"
)

// Candidate-filter backends. Phase 1 of Build is a pluggable filter behind
// Config.Filter: the generalized-suffix-structure exact-match filter stays
// the default and the oracle, and the MinHash/LSH banding filter trades
// bounded recall for a near-linear candidate pass — with the MMseqs2-style
// cascade restricting the exact filter's pairs to LSH-connected components.
//
// LSH shingles are MinExactMatch-length residue k-mers hashed to 31 bits, so
// at the conservative preset (bucket on every raw shingle) any pair sharing
// an exact match of at least MinExactMatch residues shares a shingle and is
// found: conservative LSH candidates are a superset of the exact filter's
// pairs by construction, which makes the cascade bit-identical to the exact
// path there. Banded settings trade candidates for recall along the
// 1-(1-J^r)^b S-curve, quantified by the bench ablation.

// Filter backend names for Config.Filter ("" means FilterExact).
const (
	FilterExact   = "exact"
	FilterLSH     = "lsh"
	FilterCascade = "cascade"
)

// ConservativeBands is the Config.LSHBands sentinel selecting the
// conservative preset: bucket on every raw shingle instead of banded
// signatures (recall 1 relative to the exact filter, most candidates).
const ConservativeBands = -1

// DefaultLSHBands/DefaultLSHRows are the default banding shape, tuned on the
// 1200-ORF bench corpus to hold ≥ 0.95 edge recall while generating fewer
// candidates than the exact filter (the benchcheck-enforced operating point).
// Homologous ORFs share few of their k-mer shingles (a single conserved
// region among hundreds of windows puts the pair's Jaccard in the low
// percent range), so the S-curve needs rows=1 and many bands: measured on
// the bench corpus, 256×1 holds 0.966 edge recall at 0.97× the exact
// filter's candidate count, while 128×1 drops to 0.91 and 24×1 to 0.53.
const (
	DefaultLSHBands = 256
	DefaultLSHRows  = 1
)

// lshFamilySeed fixes the MinHash permutation family, so the filter output
// is a deterministic function of the input alone.
const lshFamilySeed = 0x5c1517

// lshParams is the resolved banding shape.
type lshParams struct {
	bands, rows  int
	conservative bool
}

// hashes is the permutation-family size the banded shape needs.
func (p lshParams) hashes() int { return p.bands * p.rows }

// resolveFilter validates Config.Filter/LSHBands/LSHRows and resolves the
// banding shape (zero-valued for the exact filter).
func resolveFilter(cfg Config) (string, lshParams, error) {
	f := cfg.Filter
	if f == "" {
		f = FilterExact
	}
	switch f {
	case FilterExact:
		if cfg.LSHBands != 0 || cfg.LSHRows != 0 {
			return "", lshParams{}, fmt.Errorf("pgraph: LSHBands/LSHRows set without Filter %q or %q",
				FilterLSH, FilterCascade)
		}
		return f, lshParams{}, nil
	case FilterLSH, FilterCascade:
	default:
		return "", lshParams{}, fmt.Errorf("pgraph: unknown Filter %q", cfg.Filter)
	}
	p := lshParams{bands: cfg.LSHBands, rows: cfg.LSHRows}
	if p.bands == ConservativeBands {
		if p.rows != 0 {
			return "", lshParams{}, fmt.Errorf("pgraph: conservative preset takes no LSHRows, got %d", p.rows)
		}
		return f, lshParams{conservative: true}, nil
	}
	if p.bands == 0 {
		p.bands = DefaultLSHBands
	}
	if p.rows == 0 {
		p.rows = DefaultLSHRows
	}
	if p.bands < 1 || p.rows < 1 {
		return "", lshParams{}, fmt.Errorf("pgraph: invalid LSH shape %d bands × %d rows", p.bands, p.rows)
	}
	return f, p, nil
}

// sortedPairs flattens a candidate set into the deterministic scheduling
// order.
func sortedPairs(set map[pairKey]bool) []pairKey {
	pairs := make([]pairKey, 0, len(set))
	for p := range set {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	return pairs
}

// exactPairSet runs the generalized-suffix-structure filter and prices it:
// suffix construction (prefix-doubling rounds over the symbol stream) plus
// pair generation.
func exactPairSet(seqs []seq.Sequence, cfg Config) (map[pairKey]bool, float64) {
	idx := buildSuffixIndex(seqs)
	set := idx.candidatePairs(cfg.MinExactMatch, cfg.WindowCap)
	rounds := bits.Len(uint(len(idx.sym))) // prefix-doubling rounds
	ns := float64(int64(len(idx.sym))*int64(rounds)+int64(len(set))) * FilterNsPerOp
	return set, ns
}

// shingleOne returns the sorted distinct k-length k-mer shingles of one
// residue string (31-bit FNV-1a over the raw residue bytes; nil when the
// string is shorter than k). seen is caller-provided scratch, cleared on
// entry. Both the batch filter and the incremental serving index go through
// this function, so their shingle sets are bit-identical by construction.
func shingleOne(r []byte, k int, seen map[uint32]bool) []uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	if len(r) < k {
		return nil
	}
	clear(seen)
	set := make([]uint32, 0, len(r)-k+1)
	for w := 0; w+k <= len(r); w++ {
		h := uint64(offset64)
		for _, b := range r[w : w+k] {
			h ^= uint64(b)
			h *= prime64
		}
		v := uint32(h^(h>>32)) & 0x7fffffff
		if !seen[v] {
			seen[v] = true
			set = append(set, v)
		}
	}
	sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
	return set
}

// shingleSets returns, per sequence, its sorted distinct MinExactMatch-length
// k-mer shingles (sequences shorter than k get an empty set), the total
// shingle count, and the window op count (each window hashes k bytes) for
// pricing.
func shingleSets(seqs []seq.Sequence, k int) (sets [][]uint32, total int, ops int64) {
	sets = make([][]uint32, len(seqs))
	seen := make(map[uint32]bool)
	for i, s := range seqs {
		r := s.Residues
		if len(r) < k {
			continue
		}
		sets[i] = shingleOne(r, k, seen)
		total += len(sets[i])
		ops += int64(len(r)-k+1) * int64(k)
	}
	return sets, total, ops
}

// eligibleSeqs lists the sequences with at least one shingle — the only ones
// the LSH filter can bucket (and the only ones the exact filter can seed, so
// skipping the rest loses nothing).
func eligibleSeqs(sets [][]uint32) []int32 {
	var ids []int32
	for i, s := range sets {
		if len(s) > 0 {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// emitBucketPairs adds every cross pair of one bucket's members to out.
// Members are original sequence indices; self-pairs (a sequence bucketed
// once per distinct shingle can't repeat within a bucket) never occur.
func emitBucketPairs(members []int32, out map[pairKey]bool) {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			out[makePair(members[i], members[j])] = true
		}
	}
}

// conservativeLSHPairs buckets sequences on every raw shingle value: two
// sequences are candidates iff they share a shingle, i.e. an exact
// MinExactMatch-residue substring (modulo 31-bit hash collisions, which only
// add candidates). Returns the bucketing op count.
func conservativeLSHPairs(sets [][]uint32, ids []int32, out map[pairKey]bool) int64 {
	buckets := make(map[uint32][]int32)
	var ops int64
	for _, id := range ids {
		for _, v := range sets[id] {
			buckets[v] = append(buckets[v], id)
			ops++
		}
	}
	keys := make([]uint32, 0, len(buckets))
	for v := range buckets {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, v := range keys {
		emitBucketPairs(buckets[v], out)
	}
	return ops
}

// bandedLSHPairs buckets the eligible sequences by each band's key over the
// given signature matrix (columns follow ids' order). Returns the banding op
// count.
func bandedLSHPairs(g minwise.Signatures, ids []int32, p lshParams, out map[pairKey]bool) int64 {
	buckets := make(map[uint32][]int32, len(ids))
	var ops int64
	for band := 0; band < p.bands; band++ {
		clear(buckets)
		for col, id := range ids {
			k := g.BandKey(col, band, p.rows)
			buckets[k] = append(buckets[k], id)
		}
		ops += int64(p.rows) * int64(len(ids))
		keys := make([]uint32, 0, len(buckets))
		for v := range buckets {
			keys = append(keys, v)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, v := range keys {
			emitBucketPairs(buckets[v], out)
		}
	}
	return ops
}

// lshPairsHost is the host LSH filter: shingle, sign (banded shapes),
// bucket, emit. It is bit-identical to the device filter — same shingles,
// same permutation family, same band keys, same bucket grouping — and
// doubles as its degrade path. Returns the candidate set and its virtual
// cost.
func lshPairsHost(seqs []seq.Sequence, cfg Config, p lshParams) (map[pairKey]bool, float64) {
	sets, total, ops := shingleSets(seqs, cfg.MinExactMatch)
	ids := eligibleSeqs(sets)
	out := make(map[pairKey]bool)
	if p.conservative {
		ops += conservativeLSHPairs(sets, ids, out)
	} else {
		fam := minwise.NewFamily(p.hashes(), lshFamilySeed)
		eligible := make([][]uint32, len(ids))
		for col, id := range ids {
			eligible[col] = sets[id]
		}
		g := fam.SequenceSignatures(eligible)
		ops += int64(p.hashes()) * int64(total)
		ops += bandedLSHPairs(g, ids, p, out)
	}
	ops += int64(len(out))
	return out, float64(ops) * FilterNsPerOp
}

// cascadeRestrict keeps the exact-filter pairs whose endpoints the LSH pass
// put in one connected component — the cascade's refine-survivors set. At
// the conservative preset lshSet ⊇ exactSet, so every exact pair survives
// and the cascade is bit-identical to the exact path; banded settings drop
// cross-component pairs, which the ablation measures as recall.
func cascadeRestrict(exactSet, lshSet map[pairKey]bool, n int) map[pairKey]bool {
	uf := unionfind.New(n)
	for p := range lshSet {
		a, b := p.unpack()
		uf.Union(int(a), int(b))
	}
	out := make(map[pairKey]bool, len(exactSet))
	for p := range exactSet {
		a, b := p.unpack()
		if uf.Same(int(a), int(b)) {
			out[p] = true
		}
	}
	return out
}

// runFilterHost is Phase 1 on the host backend: it resolves the filter,
// produces the scheduled candidate pairs, and prices the whole phase into
// st.FilterNs on the synthetic host timeline.
func runFilterHost(seqs []seq.Sequence, cfg Config, st *Stats) ([]pairKey, error) {
	f, prm, err := resolveFilter(cfg)
	if err != nil {
		return nil, err
	}
	st.Filter = f
	var set map[pairKey]bool
	switch f {
	case FilterExact:
		set, st.FilterNs = exactPairSet(seqs, cfg)
	case FilterLSH:
		set, st.FilterNs = lshPairsHost(seqs, cfg, prm)
	case FilterCascade:
		exact, exactNs := exactPairSet(seqs, cfg)
		lsh, lshNs := lshPairsHost(seqs, cfg, prm)
		set = cascadeRestrict(exact, lsh, len(seqs))
		st.FilterNs = exactNs + lshNs + float64(len(lsh))*FilterNsPerOp
	}
	st.Candidates = len(set)
	return sortedPairs(set), nil
}

// runFilterGPU is Phase 1 on the GPU backend. The exact filter runs on the
// host and is charged onto the device's host clock; the LSH pass runs
// on-device through the scheduler (lshDeviceFilter), its kernels and copies
// landing on the device clock directly. Either way st.FilterNs is the
// phase's share of the virtual clock and the phase span brackets it.
func runFilterGPU(dev *gpusim.Device, seqs []seq.Sequence, cfg Config, st *Stats) ([]pairKey, error) {
	f, prm, err := resolveFilter(cfg)
	if err != nil {
		return nil, err
	}
	st.Filter = f
	host0 := dev.HostTime()
	var set map[pairKey]bool
	switch f {
	case FilterExact:
		var ns float64
		set, ns = exactPairSet(seqs, cfg)
		chargeHost(dev, cfg.Obs, "filter", ns)
	case FilterLSH:
		set, err = lshDeviceFilter(dev, seqs, cfg, prm, st)
	case FilterCascade:
		exact, exactNs := exactPairSet(seqs, cfg)
		chargeHost(dev, cfg.Obs, "filter", exactNs)
		var lsh map[pairKey]bool
		lsh, err = lshDeviceFilter(dev, seqs, cfg, prm, st)
		if err == nil {
			set = cascadeRestrict(exact, lsh, len(seqs))
			chargeHost(dev, cfg.Obs, "cascade-restrict", float64(len(lsh))*FilterNsPerOp)
		}
	}
	if err != nil {
		return nil, err
	}
	st.FilterNs = dev.HostTime() - host0
	if cfg.Obs.Enabled() {
		cfg.Obs.Span(obs.TrackPhases, "filter", host0, dev.HostTime())
	}
	st.Candidates = len(set)
	return sortedPairs(set), nil
}
