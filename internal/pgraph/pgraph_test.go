package pgraph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"gpclust/internal/graph"
	"gpclust/internal/seq"
)

func mkSeqs(bodies ...string) []seq.Sequence {
	out := make([]seq.Sequence, len(bodies))
	for i, b := range bodies {
		out[i] = seq.Sequence{ID: string(rune('a' + i)), Residues: []byte(b)}
	}
	return out
}

func TestSuffixIndexSorted(t *testing.T) {
	seqs := mkSeqs("ACDACD", "CDAC", "WWW")
	idx := buildSuffixIndex(seqs)
	// Every position (residues + separators) is present exactly once.
	want := 0
	for _, s := range seqs {
		want += s.Len() + 1
	}
	if len(idx.sa) != want {
		t.Fatalf("suffix array has %d entries, want %d", len(idx.sa), want)
	}
	for i := 1; i < len(idx.sa); i++ {
		if idx.compareSuffixes(idx.sa[i-1], idx.sa[i]) > 0 {
			t.Fatalf("suffix array out of order at %d", i)
		}
	}
}

func TestSuffixArrayMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		sym := make([]int32, n)
		for i := range sym {
			sym[i] = int32(rng.Intn(4)) // small alphabet: many ties
		}
		sa := buildSuffixArray(sym)
		naive := make([]int32, n)
		for i := range naive {
			naive[i] = int32(i)
		}
		less := func(a, b int32) bool {
			for int(a) < n && int(b) < n {
				if sym[a] != sym[b] {
					return sym[a] < sym[b]
				}
				a++
				b++
			}
			return int(a) == n && int(b) < n
		}
		sort.Slice(naive, func(i, j int) bool { return less(naive[i], naive[j]) })
		for i := range sa {
			if sa[i] != naive[i] {
				t.Fatalf("trial %d: sa[%d] = %d, naive %d", trial, i, sa[i], naive[i])
			}
		}
	}
}

func TestLCPMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(150)
		sym := make([]int32, n)
		for i := range sym {
			sym[i] = int32(rng.Intn(3))
		}
		sa := buildSuffixArray(sym)
		lcp := computeLCP(sym, sa)
		for i := 1; i < n; i++ {
			a, b := sa[i-1], sa[i]
			want := 0
			for int(a) < n && int(b) < n && sym[a] == sym[b] {
				a++
				b++
				want++
			}
			if int(lcp[i]) != want {
				t.Fatalf("trial %d: lcp[%d] = %d, want %d", trial, i, lcp[i], want)
			}
		}
	}
}

func TestLCPStopsAtBoundary(t *testing.T) {
	// Identical sequences: their suffixes' LCPs must cap at the sequence
	// length, never running through the unique separators.
	seqs := mkSeqs("AAAA", "AAAA")
	idx := buildSuffixIndex(seqs)
	if got := idx.lcp(0, 5); got != 4 {
		t.Fatalf("lcp(full copies) = %d, want 4 (capped at boundary)", got)
	}
	for i := 1; i < len(idx.sa); i++ {
		if idx.lcps[i] > 4 {
			t.Fatalf("lcp[%d] = %d crosses a sequence boundary", i, idx.lcps[i])
		}
	}
}

func TestCandidatePairsSharedSubstring(t *testing.T) {
	// a and b share a 12-mer; c is unrelated.
	shared := "WCWHMKTAYIAK"
	seqs := mkSeqs(
		"PPPPP"+shared+"GGGGG",
		"KKKKK"+shared+"TTTTT",
		"RNDEQRNDEQRNDEQRNDEQ",
	)
	idx := buildSuffixIndex(seqs)
	pairs := idx.candidatePairs(12, 8)
	if !pairs[makePair(0, 1)] {
		t.Fatal("pair (a,b) sharing a 12-mer not found")
	}
	if pairs[makePair(0, 2)] || pairs[makePair(1, 2)] {
		t.Fatal("unrelated sequence produced candidate pairs")
	}
}

func TestCandidatePairsMinMatch(t *testing.T) {
	// shared substring of length 8 < minMatch 12: no candidates
	shared := "WCWHMKTA"
	seqs := mkSeqs("PPPPP"+shared+"GGGGG", "KKKKK"+shared+"TTTTT")
	idx := buildSuffixIndex(seqs)
	if pairs := idx.candidatePairs(12, 8); len(pairs) != 0 {
		t.Fatalf("%d candidate pairs from an 8-mer with minMatch=12", len(pairs))
	}
	if pairs := idx.candidatePairs(8, 8); !pairs[makePair(0, 1)] {
		t.Fatal("pair not found with minMatch=8")
	}
}

func TestCandidatePairsDeepMatch(t *testing.T) {
	// A 60-residue exact match — far beyond any small seed window — must be
	// found with minMatch up to its full length (the full suffix array has
	// no depth cap).
	core := strings.Repeat("MKTAYIAKQR", 6)
	seqs := mkSeqs("PP"+core+"GG", "KK"+core+"TT")
	idx := buildSuffixIndex(seqs)
	if pairs := idx.candidatePairs(60, 8); !pairs[makePair(0, 1)] {
		t.Fatal("60-residue exact match not found at minMatch=60")
	}
	if pairs := idx.candidatePairs(61, 8); len(pairs) != 0 {
		t.Fatal("61-residue match reported from a 60-residue core")
	}
}

func TestPairKey(t *testing.T) {
	p := makePair(7, 3)
	a, b := p.unpack()
	if a != 3 || b != 7 {
		t.Fatalf("unpack = (%d,%d), want (3,7)", a, b)
	}
	if makePair(3, 7) != p {
		t.Fatal("pair key not order-independent")
	}
}

func TestBuildValidation(t *testing.T) {
	seqs := mkSeqs("MKTAYIAKQRMKTAYIAKQR")
	cfg := DefaultConfig()
	cfg.MinExactMatch = 2
	if _, _, err := Build(seqs, cfg); err == nil {
		t.Fatal("tiny MinExactMatch accepted")
	}
	cfg = DefaultConfig()
	cfg.WindowCap = 0
	if _, _, err := Build(seqs, cfg); err == nil {
		t.Fatal("WindowCap 0 accepted")
	}
	cfg = DefaultConfig()
	bad := mkSeqs("MKTA*IAKQR")
	if _, _, err := Build(bad, cfg); err == nil {
		t.Fatal("invalid residues accepted")
	}
}

func TestBuildEmpty(t *testing.T) {
	g, st, err := Build(nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || st.Candidates != 0 {
		t.Fatalf("empty build: %d vertices, %d candidates", g.NumVertices(), st.Candidates)
	}
}

// End to end: a synthetic metagenome's homology graph must be dense inside
// planted families and sparse across super-families.
func TestBuildSeparatesFamilies(t *testing.T) {
	cfg := seq.DefaultMetagenomeConfig(250)
	cfg.Seed = 5
	m, err := seq.GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, st, err := Build(m.Seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates == 0 || st.Edges == 0 {
		t.Fatalf("no candidates/edges: %+v", st)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	intra, intraPoss := 0, 0
	crossSuper := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) > u {
				continue
			}
			fv, fu := m.Family[v], m.Family[u]
			sv, su := m.SuperFamily[v], m.SuperFamily[u]
			if fv >= 0 && fv == fu {
				intra++
			} else if sv < 0 || su < 0 || sv != su {
				crossSuper++
			}
		}
	}
	// Count possible intra-family pairs.
	famSize := map[int32]int{}
	for _, f := range m.Family {
		if f >= 0 {
			famSize[f]++
		}
	}
	for _, s := range famSize {
		intraPoss += s * (s - 1) / 2
	}
	recall := float64(intra) / float64(intraPoss)
	if recall < 0.5 {
		t.Errorf("intra-family edge recall = %.2f, want ≥ 0.5", recall)
	}
	if float64(crossSuper) > 0.05*float64(g.NumEdges()) {
		t.Errorf("%d cross-super edges of %d total; want < 5%%", crossSuper, g.NumEdges())
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	cfg := seq.DefaultMetagenomeConfig(120)
	m, err := seq.GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := DefaultConfig()
	c1.Workers = 1
	g1, _, err := Build(m.Seqs, c1)
	if err != nil {
		t.Fatal(err)
	}
	c4 := DefaultConfig()
	c4.Workers = 4
	g4, _, err := Build(m.Seqs, c4)
	if err != nil {
		t.Fatal(err)
	}
	// Default config leaves Workers at 0, which must mean GOMAXPROCS —
	// and still produce the identical graph.
	g0, _, err := Build(m.Seqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*graph.Graph{g4, g0} {
		if g1.NumEdges() != other.NumEdges() {
			t.Fatalf("edge count differs across worker counts: %d vs %d", g1.NumEdges(), other.NumEdges())
		}
		if len(g1.Adj) != len(other.Adj) {
			t.Fatal("adjacency length differs across worker counts")
		}
		for i := range g1.Adj {
			if g1.Adj[i] != other.Adj[i] {
				t.Fatal("adjacency differs across worker counts")
			}
		}
		for v := 0; v < g1.NumVertices(); v++ {
			if len(g1.Neighbors(uint32(v))) != len(other.Neighbors(uint32(v))) {
				t.Fatalf("vertex %d degree differs across worker counts", v)
			}
		}
	}
}

func BenchmarkBuild250(b *testing.B) {
	cfg := seq.DefaultMetagenomeConfig(250)
	m, err := seq.GenerateMetagenome(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(m.Seqs, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuffixArray(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sym := make([]int32, 50_000)
	for i := range sym {
		sym[i] = int32(rng.Intn(20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa := buildSuffixArray(sym)
		computeLCP(sym, sa)
	}
}
