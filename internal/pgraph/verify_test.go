package pgraph

import (
	"testing"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
)

// verifierTestPairs builds every cross pair of the first n sequences — a
// dense request set exercising length binning and batch planning.
func verifierTestPairs(n int) []Pair {
	var ps []Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ps = append(ps, Pair{A: int32(i), B: int32(j)})
		}
	}
	return ps
}

// TestVerifierScoresMatchScoreOnly: both backends return align.ScoreOnly's
// exact scores in input order, and Accept applies Build's threshold.
func TestVerifierScoresMatchScoreOnly(t *testing.T) {
	seqs := testMetagenome(t, 30)
	for _, gpu := range []bool{false, true} {
		name := "host"
		cfg := DefaultConfig()
		cfg.Filter = FilterLSH
		if gpu {
			name = "gpu"
			cfg.GPU = true
			cfg.GPUBatchWords = 2_000 // force several batches
		}
		v, err := NewVerifier(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, s := range seqs {
			idx, err := v.Add(s)
			if err != nil {
				t.Fatalf("%s: Add %d: %v", name, i, err)
			}
			if idx != i {
				t.Fatalf("%s: Add returned index %d, want %d", name, idx, i)
			}
		}
		reqs := verifierTestPairs(len(seqs))
		scores, batches, err := v.Score(reqs)
		if err != nil {
			t.Fatalf("%s: Score: %v", name, err)
		}
		if gpu && batches < 2 {
			t.Fatalf("%s: budget %d produced %d batches, want several", name, cfg.GPUBatchWords, batches)
		}
		for i, p := range reqs {
			sa, sb := seqs[p.A].Residues, seqs[p.B].Residues
			want := int32(align.ScoreOnly(sa, sb, cfg.Align))
			if scores[i] != want {
				t.Fatalf("%s: pair (%d,%d) scored %d, want %d", name, p.A, p.B, scores[i], want)
			}
			minLen := min(len(sa), len(sb))
			wantAccept := float64(want) >= cfg.MinScorePerResidue*float64(minLen)
			if v.Accept(scores[i], int(p.A), int(p.B)) != wantAccept {
				t.Fatalf("%s: Accept disagrees with Build's threshold on pair (%d,%d)", name, p.A, p.B)
			}
		}
		if gpu {
			if err := func() error { v.Close(); return v.dev.LeakCheck() }(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestVerifierFaultLadder: injected kernel faults are retried and the
// scores stay bit-identical; Recovery records what it cost.
func TestVerifierFaultLadder(t *testing.T) {
	seqs := testMetagenome(t, 20)
	cfg := DefaultConfig()
	cfg.Filter = FilterLSH
	cfg.GPU = true
	cfg.GPUBatchWords = 2_000
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	sch, err := faults.Parse("kernel op=1 count=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device.SetFaultInjector(faults.NewInjector(sch))
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for _, s := range seqs {
		if _, err := v.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	scores, _, err := v.Score(verifierTestPairs(len(seqs)))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range verifierTestPairs(len(seqs)) {
		want := int32(align.ScoreOnly(seqs[p.A].Residues, seqs[p.B].Residues, cfg.Align))
		if scores[i] != want {
			t.Fatalf("pair (%d,%d) scored %d after faults, want %d", p.A, p.B, scores[i], want)
		}
	}
	if v.Recovery().KernelRetries == 0 {
		t.Fatalf("injected kernel faults left no retries in Recovery: %s", v.Recovery())
	}
}

// TestVerifierDegradesWhenTableUploadFails: a device whose mallocs fail
// persistently cannot host the resident table; construction degrades to
// permanent host scoring instead of failing, and scores stay exact.
func TestVerifierDegradesWhenTableUploadFails(t *testing.T) {
	seqs := testMetagenome(t, 10)
	cfg := DefaultConfig()
	cfg.Filter = FilterLSH
	cfg.GPU = true
	cfg.FaultRetries = 2
	cfg.Device = gpusim.MustNew(gpusim.K20Config())
	sch, err := faults.Parse("malloc op=1 count=1000000")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device.SetFaultInjector(faults.NewInjector(sch))
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if !v.Degraded() {
		t.Fatal("persistent malloc failure did not degrade the Verifier")
	}
	for _, s := range seqs {
		if _, err := v.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	reqs := verifierTestPairs(len(seqs))
	scores, batches, err := v.Score(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 0 {
		t.Fatalf("degraded Score reported %d device batches", batches)
	}
	for i, p := range reqs {
		want := int32(align.ScoreOnly(seqs[p.A].Residues, seqs[p.B].Residues, cfg.Align))
		if scores[i] != want {
			t.Fatalf("pair (%d,%d) scored %d degraded, want %d", p.A, p.B, scores[i], want)
		}
	}
}

// TestVerifierTruncate: truncation drops the tail, re-adding reuses the
// indices, and out-of-range or degenerate pairs are rejected.
func TestVerifierTruncate(t *testing.T) {
	seqs := testMetagenome(t, 6)
	cfg := DefaultConfig()
	cfg.Filter = FilterLSH
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		if _, err := v.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	v.Truncate(4)
	if v.Len() != 4 {
		t.Fatalf("Len after Truncate(4) = %d", v.Len())
	}
	if _, _, err := v.Score([]Pair{{A: 0, B: 5}}); err == nil {
		t.Fatal("Score accepted a truncated index")
	}
	if _, _, err := v.Score([]Pair{{A: 2, B: 2}}); err == nil {
		t.Fatal("Score accepted a self pair")
	}
	idx, err := v.Add(seqs[5])
	if err != nil {
		t.Fatal(err)
	}
	if idx != 4 {
		t.Fatalf("Add after Truncate returned %d, want 4", idx)
	}
	scores, _, err := v.Score([]Pair{{A: 0, B: 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := int32(align.ScoreOnly(seqs[0].Residues, seqs[5].Residues, cfg.Align))
	if scores[0] != want {
		t.Fatalf("score after Truncate+Add = %d, want %d", scores[0], want)
	}
	// No-op truncations.
	v.Truncate(-1)
	v.Truncate(10)
	if v.Len() != 5 {
		t.Fatalf("no-op Truncate changed Len to %d", v.Len())
	}
}

// TestResolveLSHShape: only FilterLSH resolves; the exact and cascade
// filters (whose batch candidate sets are order-dependent) are rejected.
func TestResolveLSHShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Filter = FilterLSH
	s, err := ResolveLSHShape(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bands != DefaultLSHBands || s.Rows != DefaultLSHRows || s.Conservative {
		t.Fatalf("default shape = %+v", s)
	}
	cfg.LSHBands = ConservativeBands
	s, err = ResolveLSHShape(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Conservative {
		t.Fatalf("conservative preset not resolved: %+v", s)
	}
	for _, f := range []string{"", FilterExact, FilterCascade, "bogus"} {
		c := DefaultConfig()
		c.Filter = f
		if _, err := ResolveLSHShape(c); err == nil {
			t.Fatalf("filter %q resolved an LSH shape", f)
		}
	}
}

// TestIncrementalLSHMatchesBatchFilter is the equivalence the serving index
// rests on: inserting sequences one at a time into resident band-bucket
// maps (via ShingleSet/BandKeys) emits exactly the pair set the batch
// filter computes over the whole corpus, for both banded and conservative
// shapes.
func TestIncrementalLSHMatchesBatchFilter(t *testing.T) {
	seqs := testMetagenome(t, 40)
	for _, bands := range []int{DefaultLSHBands, ConservativeBands} {
		cfg := DefaultConfig()
		cfg.Filter = FilterLSH
		cfg.LSHBands = bands
		if bands != ConservativeBands {
			cfg.LSHRows = DefaultLSHRows
		}
		shape, err := ResolveLSHShape(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, prm, err := resolveFilter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := lshPairsHost(seqs, cfg, prm)

		// Incremental replay: one insert at a time against resident buckets.
		fam := shape.Family()
		got := make(map[pairKey]bool)
		if shape.Conservative {
			buckets := make(map[uint32][]int32)
			for i, s := range seqs {
				set := ShingleSet(s.Residues, cfg.MinExactMatch)
				for _, v := range set {
					for _, other := range buckets[v] {
						got[makePair(other, int32(i))] = true
					}
					buckets[v] = append(buckets[v], int32(i))
				}
			}
		} else {
			buckets := make([]map[uint32][]int32, shape.Bands)
			for b := range buckets {
				buckets[b] = make(map[uint32][]int32)
			}
			for i, s := range seqs {
				set := ShingleSet(s.Residues, cfg.MinExactMatch)
				if len(set) == 0 {
					continue // ineligible, exactly like the batch filter
				}
				for b, k := range shape.BandKeys(fam, set) {
					for _, other := range buckets[b][k] {
						got[makePair(other, int32(i))] = true
					}
					buckets[b][k] = append(buckets[b][k], int32(i))
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("bands=%d: incremental emitted %d pairs, batch %d", bands, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				a, b := p.unpack()
				t.Fatalf("bands=%d: batch pair (%d,%d) missing from incremental set", bands, a, b)
			}
		}
	}
}
