package pgraph

import (
	"fmt"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
)

// Exported incremental primitives for the resident serving layer
// (internal/serve): a Verifier that scores candidate pairs over a growing
// corpus through the same batched Smith–Waterman machinery Build uses, and
// the LSH pieces (shingles, permutation family, band keys) needed to
// maintain a resident candidate index bit-identical to the batch filter.
//
// The equivalence that makes incremental clustering sound: a sequence's
// MinHash signature and band keys are functions of its own shingle set
// alone (the permutation family is fixed by lshFamilySeed), so bucketing
// sequences one at a time into resident band maps discovers exactly the
// pair set the batch LSH filter emits over the union corpus; SW acceptance
// is a pairwise-independent threshold; and the union-find partition is
// order-independent. Insert order therefore never changes the final
// families — serve's acceptance tests pin this against a from-scratch
// Build of the same corpus.

// Pair is one candidate pair of Verifier sequence indices.
type Pair struct{ A, B int32 }

// LSHShape is a Config's resolved MinHash banding shape.
type LSHShape struct {
	Bands, Rows  int
	Conservative bool
}

// ResolveLSHShape validates and resolves the Config's LSH shape exactly as
// Build does, but requires Filter == FilterLSH: the exact and cascade
// filters depend on global corpus structure (suffix runs, WindowCap
// throttling, cross-component restriction), so no resident index can
// reproduce their batch candidate sets under insertion — only the
// per-sequence LSH bucketing is order-independent.
func ResolveLSHShape(cfg Config) (LSHShape, error) {
	f, p, err := resolveFilter(cfg)
	if err != nil {
		return LSHShape{}, err
	}
	if f != FilterLSH {
		return LSHShape{}, fmt.Errorf("pgraph: incremental indexing requires Filter %q, got %q", FilterLSH, f)
	}
	return LSHShape{Bands: p.bands, Rows: p.rows, Conservative: p.conservative}, nil
}

// Family returns the fixed MinHash permutation family of the shape — drawn
// from lshFamilySeed like the batch filter's, so band keys match bit for
// bit. Zero-valued for the conservative preset, which buckets on raw
// shingles and needs no signatures.
func (s LSHShape) Family() minwise.Family {
	if s.Conservative {
		return minwise.Family{}
	}
	return minwise.NewFamily(s.Bands*s.Rows, lshFamilySeed)
}

// ShingleSet returns the sorted distinct k-shingles of one residue string,
// bit-identical to the batch filter's per-sequence sets. A nil result means
// the sequence is shorter than k and ineligible: the batch filter never
// buckets it, so an index must not either.
func ShingleSet(r []byte, k int) []uint32 {
	return shingleOne(r, k, make(map[uint32]bool))
}

// BandKeys returns the banded bucket keys of one non-empty shingle set
// under fam — the same keys bandedLSHPairs groups on, so two sequences
// collide in a resident band map iff the batch filter pairs them.
func (s LSHShape) BandKeys(fam minwise.Family, set []uint32) []uint32 {
	g := fam.SequenceSignatures([][]uint32{set})
	keys := make([]uint32, s.Bands)
	for b := range keys {
		keys[b] = g.BandKey(0, b, s.Rows)
	}
	return keys
}

// Verifier scores candidate pairs over a growing resident corpus. It keeps
// the encoded sequences and (on the GPU backend) the substitution table
// device-resident across calls, so a serving process pays the upload once
// instead of once per request batch. Score runs the same length-binned
// batch planner and per-batch resilience ladder as Build's sequential
// scheduler; scores are bit-identical to align.ScoreOnly on every path.
//
// A Verifier is not safe for concurrent use: the serving layer funnels all
// Add/Score/Truncate calls through its single scheduler goroutine.
type Verifier struct {
	cfg      Config
	dev      *gpusim.Device // nil on the host backend
	table    *gpusim.Buffer // resident score table; nil when degraded
	degraded bool           // table upload exhausted its ladder: host scoring forever
	seqs     []seq.Sequence
	enc      [][]byte
	rec      faults.Recovery
}

// NewVerifier validates the Config and readies the backend. On the GPU
// backend the substitution table is uploaded through the retry ladder at
// construction; if the upload budget is exhausted (and host fallback is
// allowed) the Verifier degrades permanently to bit-identical host scoring
// rather than failing every future request.
func NewVerifier(cfg Config) (*Verifier, error) {
	if cfg.MinExactMatch < 4 {
		return nil, fmt.Errorf("pgraph: MinExactMatch %d too small", cfg.MinExactMatch)
	}
	if cfg.RetryBackoffNs < 0 {
		return nil, fmt.Errorf("pgraph: negative RetryBackoffNs %g", cfg.RetryBackoffNs)
	}
	v := &Verifier{cfg: cfg}
	if cfg.GPU {
		dev := cfg.Device
		if dev == nil {
			dev = gpusim.MustNew(gpusim.K20Config())
			v.cfg.Device = dev
		}
		v.dev = dev
		if err := v.cfg.runner(dev, &v.rec).Run(&residentTableUpload{v: v}); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// residentTableUpload stages the Verifier's resident score table through
// the sched ladder. The table cannot shrink, so Split never applies;
// Fallback marks the Verifier degraded, which routes every Score call to
// the bit-identical host path.
type residentTableUpload struct{ v *Verifier }

func (u *residentTableUpload) Attempt() error {
	t, err := uploadSWTable(u.v.dev)
	if err != nil {
		return err
	}
	u.v.table = t
	return nil
}

func (u *residentTableUpload) Split() (sched.Batch, sched.Batch, bool) { return nil, nil, false }

func (u *residentTableUpload) Fallback() { u.v.degraded = true }

func (u *residentTableUpload) WrapErr(retries int, last error) error {
	return fmt.Errorf("pgraph: resident score-table upload failed after %d attempts (%v): %w",
		retries+1, last, ErrRetryBudget)
}

// Add validates and appends one sequence to the resident corpus, returning
// its index.
func (v *Verifier) Add(s seq.Sequence) (int, error) {
	if err := align.ValidateSequence(s.Residues); err != nil {
		return 0, fmt.Errorf("pgraph: sequence %q: %w", s.ID, err)
	}
	e := make([]byte, len(s.Residues))
	for j, r := range s.Residues {
		e[j] = byte(align.ResidueIndex(r))
	}
	v.seqs = append(v.seqs, s)
	v.enc = append(v.enc, e)
	return len(v.seqs) - 1, nil
}

// Len returns the resident corpus size.
func (v *Verifier) Len() int { return len(v.seqs) }

// Sequence returns the i-th resident sequence.
func (v *Verifier) Sequence(i int) seq.Sequence { return v.seqs[i] }

// Truncate drops the sequences at index n and above — the serving layer's
// rollback after a failed insert pass, and its way of discarding transient
// query sequences after a successful one.
func (v *Verifier) Truncate(n int) {
	if n < 0 || n >= len(v.seqs) {
		return
	}
	for i := n; i < len(v.seqs); i++ {
		v.seqs[i], v.enc[i] = seq.Sequence{}, nil
	}
	v.seqs, v.enc = v.seqs[:n], v.enc[:n]
}

// Score returns each pair's Smith–Waterman score (in input order) and the
// number of device batches the plan took (0 on host paths). On the GPU
// backend the pairs are length-binned, packed through the batch planner
// under the configured budget, and run through the per-batch resilience
// ladder against the resident table; duplicated pairs are allowed and score
// identically.
func (v *Verifier) Score(reqs []Pair) ([]int32, int, error) {
	if len(reqs) == 0 {
		return nil, 0, nil
	}
	pairs := make([]pairKey, len(reqs))
	for i, p := range reqs {
		if p.A == p.B || p.A < 0 || int(p.A) >= len(v.seqs) || p.B < 0 || int(p.B) >= len(v.seqs) {
			return nil, 0, fmt.Errorf("pgraph: invalid pair (%d,%d) over %d resident sequences",
				p.A, p.B, len(v.seqs))
		}
		pairs[i] = makePair(p.A, p.B)
	}
	scores := make([]int32, len(pairs))
	order := binPairs(v.enc, pairs, !v.cfg.NoLengthBin)
	batches := 0
	switch {
	case v.dev == nil:
		for k, idx := range order {
			a, b := pairs[idx].unpack()
			scores[k] = int32(align.ScoreOnly(v.seqs[a].Residues, v.seqs[b].Residues, v.cfg.Align))
		}
	case v.degraded:
		runSWBatchHost(v.dev, swBatch{lo: 0, hi: len(order)}, v.seqs, pairs, order, v.cfg, scores)
	default:
		budget := v.cfg.GPUBatchWords
		if budget <= 0 {
			budget = int(v.dev.FreeMemory() / gpusim.WordBytes / 4 * 3)
		}
		plans, err := planSWBatches(v.enc, pairs, order, budget, layoutFor(v.cfg))
		if err != nil {
			return nil, 0, err
		}
		env := &swEnv{dev: v.dev, table: v.table, seqs: v.seqs, enc: v.enc, pairs: pairs,
			order: order, cfg: v.cfg, scores: scores, rec: &v.rec}
		if err := runSWBatchesSequentialResilient(env, plans); err != nil {
			return nil, 0, err
		}
		batches = len(plans)
	}
	res := make([]int32, len(reqs))
	for k, idx := range order {
		res[idx] = scores[k]
	}
	return res, batches, nil
}

// Accept reports whether a score joins resident sequences a and b — the
// exact threshold Build applies on both backends.
func (v *Verifier) Accept(score int32, a, b int) bool {
	minLen := min(len(v.seqs[a].Residues), len(v.seqs[b].Residues))
	return float64(score) >= v.cfg.MinScorePerResidue*float64(minLen)
}

// Recovery returns the fault-recovery actions taken across the Verifier's
// lifetime (table upload plus every Score call).
func (v *Verifier) Recovery() faults.Recovery { return v.rec }

// Degraded reports whether the Verifier fell back to permanent host scoring
// because the resident table could not be uploaded.
func (v *Verifier) Degraded() bool { return v.degraded }

// Device returns the resident device (nil on the host backend).
func (v *Verifier) Device() *gpusim.Device { return v.dev }

// Close frees the resident table. The Verifier must not be used after.
func (v *Verifier) Close() {
	if v.table != nil {
		v.table.Free()
		v.table = nil
	}
}
