package pgraph

import (
	"gpclust/internal/gpusim"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// Cost-model-driven batch auto-tuning for the verification stage. With
// Config.AutoTune (and no explicit GPUBatchWords) the scheduler enumerates
// candidate plans — a geometric sweep of word budgets crossed with the
// feasible lane counts — predicts each candidate's virtual time by
// replaying its exact operation sequence (pack, H2D, SW kernel, score
// readback) through sched.Sim, and runs the argmin. Kernel throughput is
// calibrated by probing the real SW kernel on a *scratch* device with the
// same gpusim.Config, so planning charges zero time on the run's own
// virtual clock.

// kSW is the calibrated kernel name of the batched Smith–Waterman launch.
const kSW = "sw"

// probePairs caps the calibration probe's pair count; probeCells caps its
// DP-cell total so the probe stays cheap on long-sequence inputs.
const (
	probePairs = 512
	probeCells = 1 << 21
)

// swThreads is the thread count of one SW launch over np pairs (one thread
// per pair, 128-wide blocks).
func swThreads(np int) int {
	grid := (np + 127) / 128
	if grid < 1 {
		grid = 1
	}
	return grid * 128
}

// swUnits is the divergence-aware work measure of one batch: the simulator
// serializes each warp at its slowest lane, so the batch costs
// Σ_warps 32·max(cells in warp) cell-units. Warps cover 32 consecutive
// batch-local pair indices (the 128-wide blocks never straddle a warp).
// Per-pair overheads (table staging, row decoding) are absorbed into the
// calibrated per-unit rate.
func swUnits(enc [][]byte, pairs []pairKey, order []int, p swBatch) float64 {
	total := 0.0
	for w := p.lo; w < p.hi; w += 32 {
		end := min(w+32, p.hi)
		maxCells := 0
		for k := w; k < end; k++ {
			a, b := pairs[order[k]].unpack()
			if c := len(enc[a]) * len(enc[b]); c > maxCells {
				maxCells = c
			}
		}
		total += 32 * float64(maxCells)
	}
	return total
}

// calibrateSWModel measures the simulator's charge for the SW kernel on a
// scratch device with the same config, normalized per warp-serialized
// cell-unit at full occupancy. The probe is a contiguous window of the real
// schedule centered on the median-cost pair, so its shape distribution
// matches the batches it predicts. Probe failures leave the kernel
// uncalibrated (predicted at launch cost only) — they cannot occur on a
// fresh fault-free device.
func calibrateSWModel(devCfg gpusim.Config, enc [][]byte, pairs []pairKey,
	order []int, cfg Config) *sched.Model {

	m := sched.NewModel(devCfg)
	if len(order) == 0 {
		return m
	}
	n := min(len(order), probePairs)
	lo := (len(order) - n) / 2
	end, cells := lo, 0
	for end < lo+n {
		a, b := pairs[order[end]].unpack()
		c := len(enc[a]) * len(enc[b])
		if end > lo && cells+c > probeCells {
			break
		}
		cells += c
		end++
	}
	p := swBatchFor(lo, end, enc, pairs, order)

	scratch := gpusim.MustNew(devCfg)
	table, err := uploadSWTable(scratch)
	if err != nil {
		return m
	}
	defer table.Free()
	buf, err := scratch.Malloc(p.deviceWords())
	if err != nil {
		return m
	}
	defer buf.Free()
	if scratch.CopyH2D(buf, 0, packSWBatch(p, enc, pairs, order, nil)) != nil {
		return m
	}
	lc := swLaunchConfig(p, cfg, table)
	lc.Obs = nil // scratch probe: never record
	k0 := scratch.Metrics().KernelTimeNs
	if thrust.SWScoreBatch(scratch, nil, buf, lc) != nil {
		return m
	}
	body := scratch.Metrics().KernelTimeNs - k0 - devCfg.KernelLaunchNs
	m.CalibrateKernel(kSW, body, swUnits(enc, pairs, order, p), swThreads(end-lo))
	return m
}

// predictSWPlans predicts the virtual time of the scheduler window — the
// resident-table upload through the final score readback — for the given
// plans and lane count.
func predictSWPlans(m *sched.Model, enc [][]byte, pairs []pairKey, order []int,
	plans []swBatch, lanes int) float64 {

	kernelNs := make([]float64, len(plans))
	for i, p := range plans {
		kernelNs[i] = m.KernelNs(kSW, swUnits(enc, pairs, order, p), swThreads(p.hi-p.lo))
	}
	if lanes < 2 {
		sim := sched.NewSim(m, 0)
		sim.Copy(-1, swTableLen, true) // resident table upload
		for i, p := range plans {
			sim.HostWork(float64(p.dataWords()) * packNsPerWord)
			sim.Copy(-1, p.dataWords(), true)
			sim.KernelRawNs(-1, kernelNs[i])
			sim.Copy(-1, p.hi-p.lo, false)
		}
		sim.SyncAll()
		return sim.Host
	}

	// Replay the sched.RunLanes round-robin: enqueuing item i only waits for
	// its lane's previous occupant to drain.
	sim := sched.NewSim(m, lanes)
	sim.Copy(-1, swTableLen, true)
	inFlight := make([]int, lanes)
	for i := range inFlight {
		inFlight[i] = -1
	}
	drain := func(lane int) {
		if inFlight[lane] < 0 {
			return
		}
		sim.SyncLane(lane)
		inFlight[lane] = -1
	}
	n := len(plans)
	for item := 0; item < n; item++ {
		p := plans[item]
		sim.HostWork(float64(p.dataWords()) * packNsPerWord)
		lane := item % lanes
		drain(lane)
		sim.Copy(lane, p.dataWords(), true)
		sim.KernelRawNs(lane, kernelNs[item])
		sim.Copy(lane, p.hi-p.lo, false)
		inFlight[lane] = item
	}
	for k := 0; k < lanes; k++ {
		drain((n + k) % lanes)
	}
	sim.SyncAll()
	return sim.Host
}

// swLaneSet is the lane counts the auto-tuner may consider: an explicit
// GPUPipeline pins the pipelined executor.
func swLaneSet(cfg Config) []int {
	if cfg.GPUPipeline {
		return []int{2, 3, 4}
	}
	return []int{1, 2, 3, 4}
}

// legacySWBudget is the pre-auto-tune budget derivation of verifyGPU.
func legacySWBudget(dev *gpusim.Device, cfg Config) int {
	budget := int(dev.FreeMemory() / gpusim.WordBytes / 4 * 3)
	if cfg.GPUPipeline {
		budget /= 2
	}
	return budget
}

// swFeasible reports whether the candidate's device footprint fits free
// memory. A sequential batch's footprint (records + residues + scores) is
// exactly the planner's charge, so the budget bounds it; the pipelined
// executor keeps `lanes` max-sized stagings resident beside the table.
func swFeasible(freeWords int, plans []swBatch, cand sched.Candidate) bool {
	if cand.Lanes <= 1 {
		return cand.BudgetWords <= freeWords
	}
	maxData, maxPairs := 0, 0
	for _, p := range plans {
		maxData = max(maxData, p.dataWords())
		maxPairs = max(maxPairs, p.hi-p.lo)
	}
	return swTableLen+cand.Lanes*(maxData+maxPairs) <= freeWords
}

// autotuneSW picks the batch budget and lane count for the verification
// stage by predicted virtual time, returning the chosen plan. When no
// candidate is feasible it falls back to the legacy derivation (reported
// with AutoTuned=false).
func autotuneSW(dev *gpusim.Device, enc [][]byte, pairs []pairKey, order []int,
	cfg Config) (sched.PlanReport, []swBatch, int, error) {

	freeWords := int(dev.FreeMemory() / gpusim.WordBytes)
	maxB := freeWords * 3 / 4
	minB := 0
	for _, idx := range order {
		a, b := pairs[idx].unpack()
		if need := 5 + seqWords(enc[a]) + seqWords(enc[b]); need > minB {
			minB = need
		}
	}
	minB += swTableLen
	m := calibrateSWModel(dev.Config(), enc, pairs, order, cfg)

	var cands []sched.Candidate
	for _, b := range sched.Budgets(maxB, minB) {
		for _, l := range swLaneSet(cfg) {
			cands = append(cands, sched.Candidate{BudgetWords: b, Lanes: l})
		}
	}
	planCache := map[int][]swBatch{}
	plansFor := func(b int) []swBatch {
		if p, ok := planCache[b]; ok {
			return p
		}
		p, err := planSWBatches(enc, pairs, order, b)
		if err != nil {
			p = nil
		}
		planCache[b] = p
		return p
	}
	best, predicted, ok := sched.Pick(cands, func(cand sched.Candidate) (float64, bool) {
		plans := plansFor(cand.BudgetWords)
		if plans == nil || !swFeasible(freeWords, plans, cand) {
			return 0, false
		}
		return predictSWPlans(m, enc, pairs, order, plans, cand.Lanes), true
	})
	if !ok {
		budget := legacySWBudget(dev, cfg)
		plans, err := planSWBatches(enc, pairs, order, budget)
		if err != nil {
			return sched.PlanReport{}, nil, 0, err
		}
		lanes := 1
		if cfg.GPUPipeline {
			lanes = 2
		}
		return sched.PlanReport{BudgetWords: budget, Lanes: lanes, Batches: len(plans)},
			plans, lanes, nil
	}
	plans := plansFor(best.BudgetWords)
	rep := sched.PlanReport{AutoTuned: true, BudgetWords: best.BudgetWords,
		Lanes: best.Lanes, Batches: len(plans), PredictedNs: predicted}
	return rep, plans, best.Lanes, nil
}
