package pgraph

import (
	"gpclust/internal/gpusim"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// Cost-model-driven batch auto-tuning for the verification stage. With
// Config.AutoTune (and no explicit GPUBatchWords) the scheduler enumerates
// candidate plans — a geometric sweep of word budgets crossed with the
// feasible lane counts — predicts each candidate's virtual time by
// replaying its exact operation sequence (pack, H2D, SW kernel, score
// readback) through sched.Sim, and runs the argmin. Kernel throughput is
// calibrated by probing the real SW kernel on a *scratch* device with the
// same gpusim.Config, so planning charges zero time on the run's own
// virtual clock.

// kSW is the calibrated kernel name of the batched Smith–Waterman launch
// reading byte-layout residues (the unpacked and packed+unfused modes run
// the identical kernel configuration); kSWFused is the same launch decoding
// the bit-packed image in place, and kSWUnpack is the unfused mode's
// image-expansion kernel.
const (
	kSW       = "sw"
	kSWFused  = "swfused"
	kSWUnpack = "swunpack"
)

// probePairs caps the calibration probe's pair count; probeCells caps its
// DP-cell total so the probe stays cheap on long-sequence inputs.
const (
	probePairs = 512
	probeCells = 1 << 21
)

// swThreads is the thread count of one SW launch over np pairs (one thread
// per pair, 128-wide blocks).
func swThreads(np int) int {
	grid := (np + 127) / 128
	if grid < 1 {
		grid = 1
	}
	return grid * 128
}

// swKernelName resolves the calibrated SW-kernel entry for a layout.
func swKernelName(ly swLayout) string {
	if ly.bits > 0 && ly.fused {
		return kSWFused
	}
	return kSW
}

// swUnpackThreads is the thread count of one UnpackResidues launch over the
// given output words (thrust's elementwise geometry: 8 elements per thread,
// 256-wide blocks).
func swUnpackThreads(words int) int {
	threads := (words + 7) / 8
	if threads == 0 {
		threads = 1
	}
	grid := (threads + 255) / 256
	return grid * 256
}

// swUnpackNs predicts one batch's image-expansion kernel (zero in modes
// that don't unpack).
func swUnpackNs(m *sched.Model, p swBatch, ly swLayout) float64 {
	if ly.bits == 0 || ly.fused {
		return 0
	}
	return m.KernelNs(kSWUnpack, float64(p.seqWords), swUnpackThreads(p.seqWords))
}

// swUnits is the divergence-aware work measure of one batch: the simulator
// serializes each warp at its slowest lane, so the batch costs
// Σ_warps 32·max(cells in warp) cell-units. Warps cover 32 consecutive
// batch-local pair indices (the 128-wide blocks never straddle a warp).
// Per-pair overheads (table staging, row decoding) are absorbed into the
// calibrated per-unit rate.
func swUnits(enc [][]byte, pairs []pairKey, order []int, p swBatch) float64 {
	total := 0.0
	for w := p.lo; w < p.hi; w += 32 {
		end := min(w+32, p.hi)
		maxCells := 0
		for k := w; k < end; k++ {
			a, b := pairs[order[k]].unpack()
			if c := len(enc[a]) * len(enc[b]); c > maxCells {
				maxCells = c
			}
		}
		total += 32 * float64(maxCells)
	}
	return total
}

// calibrateSWModel measures the simulator's charge for the SW kernel on a
// scratch device with the same config, normalized per warp-serialized
// cell-unit at full occupancy. The probe is a contiguous window of the real
// schedule centered on the median-cost pair, so its shape distribution
// matches the batches it predicts. Probe failures leave the kernel
// uncalibrated (predicted at launch cost only) — they cannot occur on a
// fresh fault-free device.
func calibrateSWModel(devCfg gpusim.Config, enc [][]byte, pairs []pairKey,
	order []int, cfg Config) *sched.Model {

	m := sched.NewModel(devCfg)
	if len(order) == 0 {
		return m
	}
	n := min(len(order), probePairs)
	lo := (len(order) - n) / 2
	end, cells := lo, 0
	for end < lo+n {
		a, b := pairs[order[end]].unpack()
		c := len(enc[a]) * len(enc[b])
		if end > lo && cells+c > probeCells {
			break
		}
		cells += c
		end++
	}
	p := swBatchFor(lo, end, enc, pairs, order)

	scratch := gpusim.MustNew(devCfg)
	table, err := uploadSWTable(scratch)
	if err != nil {
		return m
	}
	defer table.Free()

	// One probe per kernel the planner may price: the byte-layout SW launch
	// (shared by the unpacked and packed+unfused modes), the in-place
	// packed decoder, and the unfused mode's expansion kernel. Each probe
	// stages its own image so the measured traffic matches the mode.
	probeSW := func(ly swLayout, name string) {
		buf, err := scratch.Malloc(ly.deviceWords(p))
		if err != nil {
			return
		}
		defer buf.Free()
		if scratch.CopyH2D(buf, 0, packSWBatch(p, enc, pairs, order, ly, nil)) != nil {
			return
		}
		if ly.bits > 0 && !ly.fused {
			k0 := scratch.Metrics().KernelTimeNs
			if unpackSWBatch(scratch, nil, buf, p, ly) != nil {
				return
			}
			body := scratch.Metrics().KernelTimeNs - k0 - devCfg.KernelLaunchNs
			m.CalibrateKernel(kSWUnpack, body, float64(p.seqWords), swUnpackThreads(p.seqWords))
		}
		lc := swLaunchConfig(p, cfg, table, ly)
		lc.Obs = nil // scratch probe: never record
		k0 := scratch.Metrics().KernelTimeNs
		if thrust.SWScoreBatch(scratch, nil, buf, lc) != nil {
			return
		}
		body := scratch.Metrics().KernelTimeNs - k0 - devCfg.KernelLaunchNs
		m.CalibrateKernel(name, body, swUnits(enc, pairs, order, p), swThreads(end-lo))
	}
	if cfg.Packed {
		probeSW(swLayout{bits: residueBits, fused: false}, kSW)
		if cfg.Fuse {
			probeSW(swLayout{bits: residueBits, fused: true}, kSWFused)
		}
	} else {
		probeSW(swLayout{}, kSW)
	}
	return m
}

// predictSWPlans predicts the virtual time of the scheduler window — the
// resident-table upload through the final score readback — for the given
// plans and lane count.
func predictSWPlans(m *sched.Model, enc [][]byte, pairs []pairKey, order []int,
	plans []swBatch, lanes int, ly swLayout) float64 {

	// Per-batch device compute: the unfused packed mode's expansion kernel
	// (when present) runs back-to-back with the SW launch on the same
	// engine, so summing the two is timing-equivalent to replaying each.
	kernelNs := make([]float64, len(plans))
	for i, p := range plans {
		kernelNs[i] = swUnpackNs(m, p, ly) +
			m.KernelNs(swKernelName(ly), swUnits(enc, pairs, order, p), swThreads(p.hi-p.lo))
	}
	if lanes < 2 {
		sim := sched.NewSim(m, 0)
		sim.Copy(-1, swTableLen, true) // resident table upload
		for i, p := range plans {
			sim.HostWork(float64(ly.packWords(p)) * packNsPerWord)
			sim.Copy(-1, ly.dataWords(p), true)
			sim.KernelRawNs(-1, kernelNs[i])
			sim.Copy(-1, p.hi-p.lo, false)
		}
		sim.SyncAll()
		return sim.Host
	}

	// Replay the sched.RunLanes round-robin: enqueuing item i only waits for
	// its lane's previous occupant to drain.
	sim := sched.NewSim(m, lanes)
	sim.Copy(-1, swTableLen, true)
	inFlight := make([]int, lanes)
	for i := range inFlight {
		inFlight[i] = -1
	}
	drain := func(lane int) {
		if inFlight[lane] < 0 {
			return
		}
		sim.SyncLane(lane)
		inFlight[lane] = -1
	}
	n := len(plans)
	for item := 0; item < n; item++ {
		p := plans[item]
		sim.HostWork(float64(ly.packWords(p)) * packNsPerWord)
		lane := item % lanes
		drain(lane)
		sim.Copy(lane, ly.dataWords(p), true)
		sim.KernelRawNs(lane, kernelNs[item])
		sim.Copy(lane, p.hi-p.lo, false)
		inFlight[lane] = item
	}
	for k := 0; k < lanes; k++ {
		drain((n + k) % lanes)
	}
	sim.SyncAll()
	return sim.Host
}

// swLaneSet is the lane counts the auto-tuner may consider: an explicit
// GPUPipeline pins the pipelined executor.
func swLaneSet(cfg Config) []int {
	if cfg.GPUPipeline {
		return []int{2, 3, 4}
	}
	return []int{1, 2, 3, 4}
}

// legacySWBudget is the pre-auto-tune budget derivation of verifyGPU.
func legacySWBudget(dev *gpusim.Device, cfg Config) int {
	budget := int(dev.FreeMemory() / gpusim.WordBytes / 4 * 3)
	if cfg.GPUPipeline {
		budget /= 2
	}
	return budget
}

// swFeasible reports whether the candidate's device footprint fits free
// memory. A sequential batch's footprint (records + residues + workspace +
// scores) is exactly the planner's charge, so the budget bounds it; the
// pipelined executor keeps `lanes` max-sized stagings resident beside the
// table.
func swFeasible(freeWords int, plans []swBatch, cand sched.Candidate, ly swLayout) bool {
	if cand.Lanes <= 1 {
		return cand.BudgetWords <= freeWords
	}
	maxDev := 0
	for _, p := range plans {
		maxDev = max(maxDev, ly.deviceWords(p))
	}
	return swTableLen+cand.Lanes*maxDev <= freeWords
}

// swLayoutOf resolves a candidate's fusion choice into a layout under the
// run's packing mode.
func swLayoutOf(cfg Config, fused bool) swLayout {
	if !cfg.Packed {
		return swLayout{}
	}
	return swLayout{bits: residueBits, fused: fused}
}

// autotuneSW picks the batch budget, lane count and — when packing with
// fusion enabled — whether the SW kernel decodes the packed image in place,
// by predicted virtual time, returning the chosen plan (the fusion choice
// rides in PlanReport.Fused). When no candidate is feasible it falls back
// to the legacy derivation (reported with AutoTuned=false).
func autotuneSW(dev *gpusim.Device, enc [][]byte, pairs []pairKey, order []int,
	cfg Config) (sched.PlanReport, []swBatch, int, error) {

	freeWords := int(dev.FreeMemory() / gpusim.WordBytes)
	maxB := freeWords * 3 / 4
	// The minimum budget must hold any single pair under the bulkiest
	// layout in the sweep (the unfused packed mode stages image plus
	// workspace; the byte layout is never larger).
	lyMax := swLayoutOf(cfg, false)
	minB := 0
	for _, idx := range order {
		a, b := pairs[idx].unpack()
		if need := 5 + lyMax.pairWords(seqWords(enc[a]), seqWords(enc[b])); need > minB {
			minB = need
		}
	}
	minB += swTableLen
	m := calibrateSWModel(dev.Config(), enc, pairs, order, cfg)

	fusedSet := []bool{cfg.Packed && cfg.Fuse}
	if cfg.Packed && cfg.Fuse {
		// Fusion is priced, not assumed: the sweep may keep the unpack
		// kernel where its elementwise occupancy beats in-place decoding.
		fusedSet = []bool{false, true}
	}
	var cands []sched.Candidate
	for _, b := range sched.Budgets(maxB, minB) {
		for _, l := range swLaneSet(cfg) {
			for _, f := range fusedSet {
				cands = append(cands, sched.Candidate{BudgetWords: b, Lanes: l, Fused: f})
			}
		}
	}
	type planKey struct {
		budget int
		fused  bool
	}
	planCache := map[planKey][]swBatch{}
	plansFor := func(b int, fused bool) []swBatch {
		key := planKey{b, fused}
		if p, ok := planCache[key]; ok {
			return p
		}
		p, err := planSWBatches(enc, pairs, order, b, swLayoutOf(cfg, fused))
		if err != nil {
			p = nil
		}
		planCache[key] = p
		return p
	}
	best, predicted, ok := sched.Pick(cands, func(cand sched.Candidate) (float64, bool) {
		ly := swLayoutOf(cfg, cand.Fused)
		plans := plansFor(cand.BudgetWords, cand.Fused)
		if plans == nil || !swFeasible(freeWords, plans, cand, ly) {
			return 0, false
		}
		return predictSWPlans(m, enc, pairs, order, plans, cand.Lanes, ly), true
	})
	if !ok {
		budget := legacySWBudget(dev, cfg)
		fused := cfg.Packed && cfg.Fuse
		plans, err := planSWBatches(enc, pairs, order, budget, swLayoutOf(cfg, fused))
		if err != nil {
			return sched.PlanReport{}, nil, 0, err
		}
		lanes := 1
		if cfg.GPUPipeline {
			lanes = 2
		}
		return sched.PlanReport{BudgetWords: budget, Lanes: lanes, Batches: len(plans), Fused: fused},
			plans, lanes, nil
	}
	plans := plansFor(best.BudgetWords, best.Fused)
	rep := sched.PlanReport{AutoTuned: true, BudgetWords: best.BudgetWords,
		Lanes: best.Lanes, Batches: len(plans), PredictedNs: predicted, Fused: best.Fused}
	return rep, plans, best.Lanes, nil
}
