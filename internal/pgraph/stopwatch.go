package pgraph

import "time"

// stopwatch is the package's only sanctioned wall-clock reader (gpclint's
// wallclock rule, same contract as internal/core's): every duration in
// Stats comes from op pricing or the device's virtual clock, except the
// explicitly host-dependent Stats.WallNs, which this wrapper measures.
type stopwatch struct {
	start time.Time
}

// newStopwatch starts measuring at the moment of the call.
func newStopwatch() *stopwatch {
	return &stopwatch{start: time.Now()}
}

// total returns the nanoseconds elapsed since construction.
func (w *stopwatch) total() int64 {
	return time.Since(w.start).Nanoseconds()
}
