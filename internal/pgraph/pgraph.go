package pgraph

import (
	"fmt"
	"runtime"
	"sync"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/obs"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
)

// Config controls homology-graph construction.
type Config struct {
	// MinExactMatch is the exact-match seed length: only sequence pairs
	// sharing an exact substring of at least this many residues are
	// aligned (the maximal-matching heuristic's promising-pair criterion).
	MinExactMatch int

	// WindowCap throttles pair generation inside each suffix-array run.
	WindowCap int

	// MinScorePerResidue accepts a pair as homologous when its
	// Smith–Waterman score is at least this many points per residue of the
	// shorter sequence ("significant sequence similarity", Section III).
	MinScorePerResidue float64

	// Filter selects the Phase-1 candidate backend: FilterExact (the
	// generalized-suffix-structure filter; the default and the oracle),
	// FilterLSH (MinHash/LSH banding over MinExactMatch-length shingles),
	// or FilterCascade (the exact filter's pairs restricted to
	// LSH-connected components — MMseqs2-style prefilter → cluster →
	// refine survivors). On GPU builds the LSH pass runs on-device.
	Filter string

	// LSHBands/LSHRows shape the banding (Filter lsh/cascade only): bands
	// of rows signature rows each, pair-collision probability
	// 1-(1-J^rows)^bands. Zero means the tuned defaults; LSHBands ==
	// ConservativeBands selects the conservative preset (bucket on raw
	// shingles, LSHRows must be 0), whose candidates provably contain the
	// exact filter's pairs.
	LSHBands int
	LSHRows  int

	// Align configures the Smith–Waterman verification.
	Align align.Params

	// Workers sets the alignment worker-pool size (pGraph's parallel
	// verification stage); 0 means GOMAXPROCS. Host backend only.
	Workers int

	// GPU routes Smith–Waterman verification to the simulated device as a
	// batched score-only kernel, one alignment per thread. The accepted
	// edge set is bit-identical to the host path for any batch size.
	GPU bool

	// Device is the simulated GPU used when GPU is set; nil creates a
	// fresh Tesla K20 for the build.
	Device *gpusim.Device

	// GPUPipeline double-buffers the batch stream across two CUDA-style
	// streams, so batch k+1's host→device staging overlaps batch k's
	// kernels and score readback (the machinery the shingling pass uses
	// for PipelineBatches, applied to alignment).
	GPUPipeline bool

	// GPUBatchWords caps one batch's device footprint in words (score
	// table + pair records + packed residues + scores) in both schedulers.
	// 0 sizes batches to the device's free memory (halved under
	// GPUPipeline, which keeps two lanes resident — an explicit budget
	// must leave room for both).
	GPUBatchWords int

	// AutoTune, with GPUBatchWords == 0, lets the cost-model auto-tuner pick
	// the batch budget and lane count: it calibrates a sched.Model against
	// the device config with a kernel micro-probe on a scratch device,
	// predicts the virtual time of each candidate plan (geometric budget
	// sweep × lane counts), and runs the argmin. The edge set is
	// bit-identical for every plan, so tuning only moves virtual time.
	AutoTune bool

	// PredictCost, on a fixed-budget run, additionally calibrates the cost
	// model and records the predicted virtual time of the chosen plan in
	// Stats.Plan — the predicted-vs-actual comparison the benchmarks gate on.
	// Auto-tuned runs always carry a prediction.
	PredictCost bool

	// Packed stages each batch's residues as a 5-bit packed device image
	// (align's 21-code alphabet fits 5 bits) instead of the byte layout,
	// cutting the residue region's H2D bytes by ~37%. Scores and the edge
	// set are bit-identical either way; only bytes moved and kernel
	// instruction counts change. GPU backend only.
	Packed bool

	// Fuse, with Packed, lets the SW kernel decode the packed image in
	// place (one launch, SWConfig.SeqBits) instead of expanding it into a
	// byte-layout workspace with a separate unpack kernel. Fusion trades a
	// launch plus a device-side workspace for per-cell decode instructions;
	// the cost model prices both. No-op without Packed — the unpacked path
	// is already a single launch.
	Fuse bool

	// NoLengthBin disables ordering candidate pairs by alignment cost
	// before batching. Binning keeps warps converged — the device
	// serializes a warp at its slowest lane — so this knob exists for the
	// divergence ablation. The edge set is unaffected either way.
	NoLengthBin bool

	// FaultRetries bounds how often one verification batch is retried after
	// a device fault before the scheduler degrades further — splitting the
	// batch on persistent OOM, then scoring it on the bit-identical host
	// path. The zero value is a sentinel meaning DefaultFaultRetries, NOT
	// zero retries; a negative value is the explicit library-level way to
	// disable retries (the CLI rejects negative -retries so the sentinel
	// cannot be hit by accident).
	FaultRetries int

	// RetryBackoffNs is the base virtual-clock delay between fault retries
	// (attempt k waits RetryBackoffNs·2^k); 0 means DefaultRetryBackoffNs.
	RetryBackoffNs float64

	// Obs, when non-nil, records the build into the observability layer:
	// filter/verify phase spans, per-batch and per-lane scheduling spans,
	// fault-recovery instants and the build's counters. A nil recorder is
	// bit-identical in output and virtual cost.
	Obs *obs.Recorder

	// NoHostFallback disables the last-resort host scoring of a batch whose
	// retry budget is exhausted: Build then fails with an error wrapping
	// ErrRetryBudget instead of degrading gracefully.
	NoHostFallback bool
}

// DefaultConfig returns settings suitable for the synthetic metagenomes.
func DefaultConfig() Config {
	return Config{
		MinExactMatch:      12,
		WindowCap:          24,
		MinScorePerResidue: 1.2,
		Align:              align.DefaultParams(),
		Packed:             true,
		Fuse:               true,
	}
}

// Virtual-clock pricing of the host-side stages, in the style of
// internal/core's cost model: stage costs are explicit operation counts
// multiplied by per-op constants, so reported times are machine-independent.
var (
	// FilterNsPerOp prices one operation of the candidate filter (suffix
	// array construction, LCP walk, pair generation).
	FilterNsPerOp = 14.0

	// HostAlignNsPerCell prices one DP cell of the host Smith–Waterman —
	// a scalar, branchy inner loop on a paper-era core (~80 Mcells/s).
	HostAlignNsPerCell = 12.0

	// packNsPerWord prices staging one word of a device batch (pair
	// records + packed residues) on the host.
	packNsPerWord = 8.0
)

// Stats reports the construction pipeline's work. The duration fields are a
// Table-I-style component breakdown of Build on the virtual clock — except
// WallNs, which records real host time (the only wall-clock field).
type Stats struct {
	Sequences  int
	Candidates int // promising pairs from the maximal-match filter
	Edges      int64

	Backend    string  // verification backend: "host" or "gpu"
	Filter     string  // candidate backend: "exact", "lsh" or "cascade"
	Workers    int     // host alignment workers (host backend)
	GPUBatches int     // device batches scheduled (gpu backend)
	Divergence float64 // SW-kernel warp-divergence overhead (gpu backend)
	FilterNs   float64 // CPU filter: suffix structure + candidate pairs
	AlignNs    float64 // SW verification: pool critical path or device kernels
	H2DNs      float64 // Data_c→g: batch staging onto the device
	D2HNs      float64 // Data_g→c: score readback
	TotalNs    float64 // end-to-end virtual time of Build
	WallNs     int64   // real elapsed time of Build on this host

	// Transfer-cost split (gpu backend): each direction's time divides into
	// the fixed per-copy setup and the bandwidth-proportional volume
	// (H2DNs = H2DSetupNs + H2DVolumeNs, likewise D2H). Packing shrinks the
	// volume terms and the byte counts; coalescing shrinks the setup terms.
	H2DSetupNs  float64
	H2DVolumeNs float64
	D2HSetupNs  float64
	D2HVolumeNs float64
	H2DBytes    int64 // Data_c→g bytes actually moved
	D2HBytes    int64 // Data_g→c bytes actually moved

	// Faults counts the fault-recovery actions the GPU schedulers took
	// (retries, OOM splits, host fallbacks, pipeline restarts); zero on a
	// fault-free run. The edge set is bit-identical either way.
	Faults faults.Recovery

	// Plan describes the batch plan the GPU scheduler ran — budget, lane
	// count, batch count, whether the auto-tuner chose it, and the
	// predicted-vs-actual virtual time of the scheduling window.
	Plan sched.PlanReport

	// LSHPlan is the device LSH filter's plan (zero-valued unless a GPU
	// build ran Filter lsh or cascade): its stage batches, word budget and
	// predicted-vs-actual scheduling window.
	LSHPlan sched.PlanReport
}

// Build constructs the sequence-similarity graph of the input: vertices are
// sequence indices, and (i, j) is an edge iff the pair passed the exact
// match filter and Smith–Waterman verification.
func Build(seqs []seq.Sequence, cfg Config) (*graph.Graph, Stats, error) {
	st := Stats{Sequences: len(seqs), Backend: "host"}
	if cfg.GPU {
		st.Backend = "gpu"
	}
	if cfg.MinExactMatch < 4 {
		return nil, st, fmt.Errorf("pgraph: MinExactMatch %d too small", cfg.MinExactMatch)
	}
	if cfg.WindowCap < 1 {
		return nil, st, fmt.Errorf("pgraph: WindowCap %d < 1", cfg.WindowCap)
	}
	if cfg.RetryBackoffNs < 0 {
		return nil, st, fmt.Errorf("pgraph: negative RetryBackoffNs %g", cfg.RetryBackoffNs)
	}
	for i, s := range seqs {
		if err := align.ValidateSequence(s.Residues); err != nil {
			return nil, st, fmt.Errorf("pgraph: sequence %d (%s): %w", i, s.ID, err)
		}
	}
	if len(seqs) == 0 {
		return graph.FromEdges(0, nil), st, nil
	}
	sw := sched.NewStopwatch()

	// Phase 1 (candidate filter: exact, LSH banding or cascade) and Phase 2
	// (Smith–Waterman verification, on the worker pool or the device). Both
	// verification paths yield the identical accepted edge set for any
	// filter's candidates.
	var edges []graph.Edge
	if cfg.GPU {
		dev := cfg.Device
		if dev == nil {
			dev = gpusim.MustNew(gpusim.K20Config())
			cfg.Device = dev
		}
		host0 := dev.HostTime()
		pairs, err := runFilterGPU(dev, seqs, cfg, &st)
		if err != nil {
			return nil, st, err
		}
		edges, err = verifyGPU(seqs, pairs, cfg, &st, host0)
		if err != nil {
			return nil, st, err
		}
	} else {
		pairs, err := runFilterHost(seqs, cfg, &st)
		if err != nil {
			return nil, st, err
		}
		edges = verifyHost(seqs, pairs, cfg, &st)
		if cfg.Obs.Enabled() {
			// The host backend has no device clock: lay the stages out on a
			// synthetic timeline starting at 0.
			cfg.Obs.Span(obs.TrackPhases, "filter", 0, st.FilterNs)
			cfg.Obs.Span(obs.TrackHostCPU, "filter", 0, st.FilterNs)
			cfg.Obs.Span(obs.TrackPhases, "verify", st.FilterNs, st.TotalNs)
			cfg.Obs.Span(obs.TrackHostCPU, "host-align", st.FilterNs, st.TotalNs)
		}
	}

	b := graph.NewBuilder(len(seqs))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	g := b.Build()
	st.Edges = g.NumEdges()
	st.WallNs = sw.Total()
	recordBuildMetrics(cfg.Obs, &st)
	return g, st, nil
}

// verifyHost runs Smith–Waterman over the candidate pairs on a worker pool
// (pGraph's parallel verification stage) and returns the accepted edges.
func verifyHost(seqs []seq.Sequence, pairs []pairKey, cfg Config, st *Stats) []graph.Edge {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st.Workers = workers
	type job struct{ lo, hi int }
	edgesPer := make([][]graph.Edge, workers)
	cellsPer := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(pairs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, jb job) {
			defer wg.Done()
			var out []graph.Edge
			var cells int64
			for _, p := range pairs[jb.lo:jb.hi] {
				a, b := p.unpack()
				sa, sb := seqs[a].Residues, seqs[b].Residues
				minLen := min(len(sa), len(sb))
				cells += int64(len(sa)) * int64(len(sb))
				score := align.ScoreOnly(sa, sb, cfg.Align)
				if float64(score) >= cfg.MinScorePerResidue*float64(minLen) {
					out = append(out, graph.Edge{U: uint32(a), V: uint32(b)})
				}
			}
			edgesPer[w] = out
			cellsPer[w] = cells
		}(w, job{lo, hi})
	}
	wg.Wait()

	var totalCells int64
	for _, c := range cellsPer {
		totalCells += c
	}
	// Pool critical path: the chunks are contiguous slices of near-equal
	// pair counts, so the virtual cost divides the cell total evenly.
	st.AlignNs = float64(totalCells) * HostAlignNsPerCell / float64(workers)
	st.TotalNs = st.FilterNs + st.AlignNs

	var edges []graph.Edge
	for _, es := range edgesPer {
		edges = append(edges, es...)
	}
	return edges
}
