package pgraph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gpclust/internal/align"
	"gpclust/internal/graph"
	"gpclust/internal/seq"
)

// Config controls homology-graph construction.
type Config struct {
	// MinExactMatch is the exact-match seed length: only sequence pairs
	// sharing an exact substring of at least this many residues are
	// aligned (the maximal-matching heuristic's promising-pair criterion).
	MinExactMatch int

	// WindowCap throttles pair generation inside each suffix-array run.
	WindowCap int

	// MinScorePerResidue accepts a pair as homologous when its
	// Smith–Waterman score is at least this many points per residue of the
	// shorter sequence ("significant sequence similarity", Section III).
	MinScorePerResidue float64

	// Align configures the Smith–Waterman verification.
	Align align.Params

	// Workers sets the alignment worker-pool size (pGraph's parallel
	// verification stage); 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns settings suitable for the synthetic metagenomes.
func DefaultConfig() Config {
	return Config{
		MinExactMatch:      12,
		WindowCap:          24,
		MinScorePerResidue: 1.2,
		Align:              align.DefaultParams(),
	}
}

// Stats reports the construction pipeline's work.
type Stats struct {
	Sequences  int
	Candidates int // promising pairs from the maximal-match filter
	Edges      int64
}

// Build constructs the sequence-similarity graph of the input: vertices are
// sequence indices, and (i, j) is an edge iff the pair passed the exact
// match filter and Smith–Waterman verification.
func Build(seqs []seq.Sequence, cfg Config) (*graph.Graph, Stats, error) {
	st := Stats{Sequences: len(seqs)}
	if cfg.MinExactMatch < 4 {
		return nil, st, fmt.Errorf("pgraph: MinExactMatch %d too small", cfg.MinExactMatch)
	}
	if cfg.WindowCap < 1 {
		return nil, st, fmt.Errorf("pgraph: WindowCap %d < 1", cfg.WindowCap)
	}
	for i, s := range seqs {
		if err := align.ValidateSequence(s.Residues); err != nil {
			return nil, st, fmt.Errorf("pgraph: sequence %d (%s): %w", i, s.ID, err)
		}
	}
	if len(seqs) == 0 {
		return graph.FromEdges(0, nil), st, nil
	}

	// Phase 1: promising pairs via the generalized suffix structure.
	idx := buildSuffixIndex(seqs)
	pairSet := idx.candidatePairs(cfg.MinExactMatch, cfg.WindowCap)
	st.Candidates = len(pairSet)
	pairs := make([]pairKey, 0, len(pairSet))
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })

	// Phase 2: Smith–Waterman verification on a worker pool.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct{ lo, hi int }
	edgesPer := make([][]graph.Edge, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, jb job) {
			defer wg.Done()
			var out []graph.Edge
			for _, p := range pairs[jb.lo:jb.hi] {
				a, b := p.unpack()
				sa, sb := seqs[a].Residues, seqs[b].Residues
				minLen := len(sa)
				if len(sb) < minLen {
					minLen = len(sb)
				}
				score := align.ScoreOnly(sa, sb, cfg.Align)
				if float64(score) >= cfg.MinScorePerResidue*float64(minLen) {
					out = append(out, graph.Edge{U: uint32(a), V: uint32(b)})
				}
			}
			edgesPer[w] = out
		}(w, job{lo, hi})
	}
	wg.Wait()

	b := graph.NewBuilder(len(seqs))
	for _, es := range edgesPer {
		for _, e := range es {
			b.AddEdge(e.U, e.V)
		}
	}
	g := b.Build()
	st.Edges = g.NumEdges()
	return g, st, nil
}
