package pgraph

import "sort"

// Full suffix-array machinery: prefix-doubling construction (Manber–Myers
// style, O(n log² n) with library sorting) and Kasai's linear-time LCP.
// Sequence separators are given unique symbols below every residue, so no
// match ever crosses a sequence boundary — the property a generalized
// suffix tree gives the original pGraph.

// buildSuffixArray sorts all suffixes of the symbol sequence. Symbols are
// arbitrary int32s; suffix order is lexicographic on them.
func buildSuffixArray(sym []int32) []int32 {
	n := len(sym)
	sa := make([]int32, n)
	rank := make([]int64, n)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		rank[i] = int64(sym[i])
	}
	tmp := make([]int64, n)

	for k := 1; ; k *= 2 {
		key := func(i int32) (int64, int64) {
			hi := rank[i]
			lo := int64(-1 << 62)
			if int(i)+k < n {
				lo = rank[int(i)+k]
			}
			return hi, lo
		}
		sort.Slice(sa, func(a, b int) bool {
			ha, la := key(sa[a])
			hb, lb := key(sa[b])
			if ha != hb {
				return ha < hb
			}
			return la < lb
		})
		// Re-rank.
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			hp, lp := key(sa[i-1])
			hc, lc := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if hp != hc || lp != lc {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == int64(n-1) {
			break
		}
	}
	return sa
}

// computeLCP returns Kasai's LCP array: lcp[i] is the common-prefix length
// of suffixes sa[i-1] and sa[i] (lcp[0] = 0). Separator symbols are unique,
// so common prefixes never extend across sequence boundaries.
func computeLCP(sym []int32, sa []int32) []int32 {
	n := len(sym)
	lcp := make([]int32, n)
	pos := make([]int32, n) // inverse permutation
	for i, s := range sa {
		pos[s] = int32(i)
	}
	h := 0
	for i := 0; i < n; i++ {
		p := pos[i]
		if p == 0 {
			h = 0
			continue
		}
		j := int(sa[p-1])
		for i+h < n && j+h < n && sym[i+h] == sym[j+h] {
			h++
		}
		lcp[p] = int32(h)
		if h > 0 {
			h--
		}
	}
	return lcp
}
