package pgraph

import (
	"testing"

	"gpclust/internal/align"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// TestResidueBitsFitAlphabet pins the packed image width to the alphabet:
// every BLOSUM62 residue code (and the zero pad) must fit residueBits, or
// PackBits would panic mid-build on real input.
func TestResidueBitsFitAlphabet(t *testing.T) {
	if align.AlphabetSize > 1<<residueBits {
		t.Fatalf("%d residue codes do not fit %d bits", align.AlphabetSize, residueBits)
	}
	// The width is also minimal — one bit fewer could not hold the alphabet.
	if align.AlphabetSize <= 1<<(residueBits-1) {
		t.Fatalf("residueBits = %d wastes a bit: %d codes fit %d bits",
			residueBits, align.AlphabetSize, residueBits-1)
	}
}

// TestPackedShrinksH2D compares full builds across the three residue
// layouts: identical edge sets, and a strictly smaller host→device byte
// total for the packed image.
func TestPackedShrinksH2D(t *testing.T) {
	seqs := testMetagenome(t, 120)
	run := func(packed, fuse bool) (*graph.Graph, Stats) {
		cfg := DefaultConfig()
		cfg.GPU = true
		cfg.GPUBatchWords = 6_000
		cfg.Packed, cfg.Fuse = packed, fuse
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		g, st, err := Build(seqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g, st
	}
	byteG, byteSt := run(false, false)
	packedG, packedSt := run(true, false)
	fusedG, fusedSt := run(true, true)
	graphsEqual(t, "packed layout", byteG, packedG)
	graphsEqual(t, "packed+fused layout", byteG, fusedG)
	for name, st := range map[string]Stats{"packed": packedSt, "packed+fused": fusedSt} {
		if st.H2DBytes >= byteSt.H2DBytes {
			t.Errorf("%s build moved %d H2D bytes, byte layout %d — packing must shrink the upload",
				name, st.H2DBytes, byteSt.H2DBytes)
		}
	}
	for name, st := range map[string]Stats{"byte": byteSt, "packed": packedSt, "packed+fused": fusedSt} {
		if st.H2DNs < st.H2DSetupNs+st.H2DVolumeNs-1e-6 || st.H2DNs > st.H2DSetupNs+st.H2DVolumeNs+1e-6 {
			t.Errorf("%s: H2D time %.0f is not setup %.0f + volume %.0f",
				name, st.H2DNs, st.H2DSetupNs, st.H2DVolumeNs)
		}
	}
}
