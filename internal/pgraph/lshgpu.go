package pgraph

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
	"gpclust/internal/thrust"
)

// On-device LSH banding filter. The pipeline mirrors the shingling passes'
// device dataflow:
//
//	stage A (banded shapes): shingle sets stream to the device in budgeted
//	  spans; per permutation, transform_hash images every shingle and the
//	  segmented-min kernel (segmented_top_s at s=1) writes one signature
//	  word per sequence into the build-resident signature buffer — the
//	  column-major minwise.Signatures layout, resident across every band
//	  pass like PR 8's hash-pair table.
//	stage B: bands stream in budgeted groups; band_hash folds each band's
//	  rows into bucket keys, sort_pairs64 groups (band, key, seq) records,
//	  bucket_heads marks runs, and the host emits each bucket's cross pairs
//	  from the downloaded run structure.
//
// The conservative preset skips signatures entirely and sorts raw
// (shingle, seq) records in one pass — the bucket grouping whose candidate
// set provably contains the exact filter's pairs.
//
// The whole filter is one batch on the sched resilience ladder: any device
// fault retries the idempotent pipeline (a fresh candidate map per attempt),
// and when the budget is exhausted — including a signature buffer that never
// allocates — it degrades to the bit-identical host LSH path. Plans are
// priced by the calibrated cost model like every other pass; the plan and
// its predicted-vs-actual window land in Stats.LSHPlan.

// lshEnv bundles the device filter's state: resolved shape, host shingle
// sets, the eligible-sequence map, the word budget, and the output.
type lshEnv struct {
	dev   *gpusim.Device
	cfg   Config
	prm   lshParams
	sets  [][]uint32 // per eligible column (sorted distinct shingles)
	ids   []int32    // eligible column -> original sequence index
	seqs  []seq.Sequence
	total int // Σ len(sets)

	budget int
	pairs  map[pairKey]bool
	hostNs float64 // host-path cost, charged by the fallback
}

// lshSigWords is the resident signature buffer's footprint.
func (e *lshEnv) lshSigWords() int { return e.prm.hashes() * len(e.sets) }

// lshSeqSizer feeds the stage-A planner: streaming sequence k costs its
// shingle words twice (data + hash image) plus one offset word.
type lshSeqSizer struct {
	sets   [][]uint32
	budget int
}

func (z *lshSeqSizer) Reset()         {}
func (z *lshSeqSizer) Cost(k int) int { return 2*len(z.sets[k]) + 1 }
func (z *lshSeqSizer) Commit(k int)   {}
func (z *lshSeqSizer) Fail(k, need int) error {
	return fmt.Errorf("pgraph: LSH budget %d words cannot hold sequence of %d shingles: needs %d",
		z.budget, len(z.sets[k]), need)
}

// lshBandSizer feeds the stage-B planner: one band's records cost four
// buffers (keyHi, keyLo, value, head flags) of one word per sequence.
type lshBandSizer struct {
	ne, budget int
}

func (z *lshBandSizer) Reset()       {}
func (z *lshBandSizer) Cost(int) int { return 4 * z.ne }
func (z *lshBandSizer) Commit(int)   {}
func (z *lshBandSizer) Fail(_, need int) error {
	return fmt.Errorf("pgraph: LSH budget %d words cannot hold one band of %d sequences: needs %d",
		z.budget, z.ne, need)
}

// lshPlans resolves the stage plans under the budget. Banded shapes reserve
// the resident signature buffer off the top; the conservative preset is one
// record pass over every shingle.
func (e *lshEnv) lshPlans() (spansA, spansB []sched.Span, err error) {
	if e.prm.conservative {
		if need := 4 * e.total; need > e.budget {
			return nil, nil, fmt.Errorf("pgraph: LSH budget %d words cannot hold the conservative bucket pass: needs %d",
				e.budget, need)
		}
		return nil, nil, nil
	}
	left := e.budget - e.lshSigWords()
	spansA, err = sched.PlanSpans(len(e.sets), left-1, &lshSeqSizer{sets: e.sets, budget: e.budget})
	if err != nil {
		return nil, nil, err
	}
	spansB, err = sched.PlanSpans(e.prm.bands, left, &lshBandSizer{ne: len(e.sets), budget: e.budget})
	if err != nil {
		return nil, nil, err
	}
	return spansA, spansB, nil
}

// emitRuns walks the downloaded head flags, mapping each bucket run's values
// (eligible columns) back to sequence indices and emitting its cross pairs.
func (e *lshEnv) emitRuns(flags, vals []uint32) {
	var members []int32
	flush := func() {
		if len(members) > 1 {
			emitBucketPairs(members, e.pairs)
		}
		members = members[:0]
	}
	for i := range flags {
		if flags[i] == 1 {
			flush()
		}
		members = append(members, e.ids[vals[i]])
	}
	flush()
}

// lshFilterBatch runs the whole device filter as one ladder batch. Attempt
// is idempotent: each try starts from a fresh candidate map and allocates
// its buffers anew, so a failed attempt needs no rollback.
type lshFilterBatch struct{ env *lshEnv }

func (b *lshFilterBatch) Attempt() error {
	e := b.env
	e.pairs = make(map[pairKey]bool)
	if e.prm.conservative {
		return e.runConservative()
	}
	return e.runBanded()
}

// Split never applies: the resident signature buffer and the global sort are
// indivisible, and the stage spans are already budget-sized.
func (b *lshFilterBatch) Split() (sched.Batch, sched.Batch, bool) { return nil, nil, false }

// Fallback degrades the whole filter to the bit-identical host LSH path,
// priced like the host backend's.
func (b *lshFilterBatch) Fallback() {
	e := b.env
	e.pairs, e.hostNs = lshPairsHost(e.seqs, e.cfg, e.prm)
	chargeHost(e.dev, e.cfg.Obs, "lsh-host", e.hostNs)
}

func (b *lshFilterBatch) WrapErr(retries int, last error) error {
	return fmt.Errorf("pgraph: LSH filter failed after %d attempts (%v): %w",
		retries+1, last, ErrRetryBudget)
}

// runConservative sorts (shingle, seq) records in one device pass and emits
// each shingle bucket's cross pairs.
func (e *lshEnv) runConservative() error {
	n := e.total
	if n == 0 {
		return nil
	}
	lo := make([]uint32, n)
	val := make([]uint32, n)
	k := 0
	for col, set := range e.sets {
		for _, v := range set {
			lo[k] = v
			val[k] = uint32(col)
			k++
		}
	}
	chargeHost(e.dev, e.cfg.Obs, "lsh-stage", float64(2*n)*packNsPerWord)

	dev := e.dev
	bufs, err := lshMalloc(dev, n, n, n, n)
	if err != nil {
		return err
	}
	hiBuf, loBuf, valBuf, flagBuf := bufs[0], bufs[1], bufs[2], bufs[3]
	defer lshFree(bufs)
	if err := dev.CopyH2D(loBuf, 0, lo); err != nil {
		return err
	}
	if err := dev.CopyH2D(valBuf, 0, val); err != nil {
		return err
	}
	if err := thrust.Fill(dev, hiBuf, n, 0); err != nil {
		return err
	}
	return e.groupAndEmit(hiBuf, loBuf, valBuf, flagBuf, n)
}

// runBanded computes the resident signature buffer (stage A), then streams
// band groups through key hashing, sorting and bucket emission (stage B).
func (e *lshEnv) runBanded() error {
	ne := len(e.sets)
	if ne == 0 {
		return nil
	}
	spansA, spansB, err := e.lshPlans()
	if err != nil {
		return err
	}
	dev := e.dev
	sigBuf, err := dev.Malloc(e.lshSigWords())
	if err != nil {
		return err
	}
	defer sigBuf.Free()
	fam := minwise.NewFamily(e.prm.hashes(), lshFamilySeed)

	for _, sp := range spansA {
		if err := e.runSigSpan(sigBuf, fam, sp); err != nil {
			return err
		}
	}
	for _, sp := range spansB {
		if err := e.runBandSpan(sigBuf, sp); err != nil {
			return err
		}
	}
	return nil
}

// runSigSpan fills signature columns [sp.Lo, sp.Hi): upload the span's
// concatenated shingles and segment offsets, then per permutation hash the
// stream and segmented-min it into the resident buffer's row-major slot.
func (e *lshEnv) runSigSpan(sigBuf *gpusim.Buffer, fam minwise.Family, sp sched.Span) error {
	ne := len(e.sets)
	ns := sp.Hi - sp.Lo
	words := 0
	for _, set := range e.sets[sp.Lo:sp.Hi] {
		words += len(set)
	}
	data := make([]uint32, 0, words)
	offs := make([]uint32, ns+1)
	for i, set := range e.sets[sp.Lo:sp.Hi] {
		offs[i] = uint32(len(data))
		data = append(data, set...)
	}
	offs[ns] = uint32(len(data))
	chargeHost(e.dev, e.cfg.Obs, "lsh-stage", float64(len(data)+ns+1)*packNsPerWord)

	dev := e.dev
	bufs, err := lshMalloc(dev, len(data), ns+1, len(data))
	if err != nil {
		return err
	}
	dataBuf, offBuf, tmpBuf := bufs[0], bufs[1], bufs[2]
	defer lshFree(bufs)
	if err := dev.CopyH2D(dataBuf, 0, data); err != nil {
		return err
	}
	if err := dev.CopyH2D(offBuf, 0, offs); err != nil {
		return err
	}
	segs := thrust.Segments{Offsets: offBuf, NumSegs: ns}
	for j, h := range fam.Pairs {
		if err := thrust.TransformHash(dev, dataBuf, tmpBuf, len(data), h.A, h.B, minwise.Prime); err != nil {
			return err
		}
		if err := thrust.SegmentedTopSAt(dev, nil, tmpBuf, segs, 1, sigBuf, j*ne+sp.Lo); err != nil {
			return err
		}
	}
	return nil
}

// runBandSpan processes bands [sp.Lo, sp.Hi): host-stage the band indices
// and sequence columns, device-hash each band's bucket keys, then sort,
// mark and emit.
func (e *lshEnv) runBandSpan(sigBuf *gpusim.Buffer, sp sched.Span) error {
	ne := len(e.sets)
	g := sp.Hi - sp.Lo
	n := g * ne
	hi := make([]uint32, n)
	val := make([]uint32, n)
	for b := 0; b < g; b++ {
		for i := 0; i < ne; i++ {
			hi[b*ne+i] = uint32(sp.Lo + b)
			val[b*ne+i] = uint32(i)
		}
	}
	chargeHost(e.dev, e.cfg.Obs, "lsh-stage", float64(2*n)*packNsPerWord)

	dev := e.dev
	bufs, err := lshMalloc(dev, n, n, n, n)
	if err != nil {
		return err
	}
	hiBuf, loBuf, valBuf, flagBuf := bufs[0], bufs[1], bufs[2], bufs[3]
	defer lshFree(bufs)
	if err := dev.CopyH2D(hiBuf, 0, hi); err != nil {
		return err
	}
	if err := dev.CopyH2D(valBuf, 0, val); err != nil {
		return err
	}
	for b := sp.Lo; b < sp.Hi; b++ {
		if err := thrust.BandHash(dev, nil, sigBuf, ne, b, e.prm.rows, loBuf, (b-sp.Lo)*ne); err != nil {
			return err
		}
	}
	return e.groupAndEmit(hiBuf, loBuf, valBuf, flagBuf, n)
}

// groupAndEmit sorts the (hi, lo, value) records, marks bucket heads,
// downloads the run structure and emits each bucket's cross pairs on the
// host.
func (e *lshEnv) groupAndEmit(hiBuf, loBuf, valBuf, flagBuf *gpusim.Buffer, n int) error {
	dev := e.dev
	if err := thrust.SortPairs64(dev, hiBuf, loBuf, valBuf, n); err != nil {
		return err
	}
	if err := thrust.MarkBucketHeads(dev, nil, hiBuf, loBuf, n, flagBuf); err != nil {
		return err
	}
	flags := make([]uint32, n)
	vals := make([]uint32, n)
	if err := dev.CopyD2H(flags, flagBuf, 0); err != nil {
		return err
	}
	if err := dev.CopyD2H(vals, valBuf, 0); err != nil {
		return err
	}
	e.emitRuns(flags, vals)
	chargeHost(dev, e.cfg.Obs, "lsh-emit", float64(n)*FilterNsPerOp)
	return nil
}

// lshMalloc allocates one buffer per requested size, freeing the partial
// set on failure.
func lshMalloc(dev *gpusim.Device, sizes ...int) ([]*gpusim.Buffer, error) {
	bufs := make([]*gpusim.Buffer, len(sizes))
	for i, n := range sizes {
		b, err := dev.Malloc(n)
		if err != nil {
			lshFree(bufs[:i])
			return nil, err
		}
		bufs[i] = b
	}
	return bufs, nil
}

func lshFree(bufs []*gpusim.Buffer) {
	for _, b := range bufs {
		b.Free()
	}
}

// lshBudget resolves the filter's device word budget: the explicit batch
// cap, or the free-memory share the verification stage also defaults to
// (the filter's buffers are freed before verification plans, so the stages
// never contend).
func lshBudget(dev *gpusim.Device, cfg Config) int {
	if cfg.GPUBatchWords > 0 {
		return cfg.GPUBatchWords
	}
	return int(dev.FreeMemory() / gpusim.WordBytes / 4 * 3)
}

// lshDeviceFilter runs the LSH candidate pass on the device through the
// resilience ladder, records the plan (batches, budget, predicted vs actual
// window) into Stats.LSHPlan, and returns the candidate set.
func lshDeviceFilter(dev *gpusim.Device, seqs []seq.Sequence, cfg Config, prm lshParams, st *Stats) (map[pairKey]bool, error) {
	sets, total, shingleOps := shingleSets(seqs, cfg.MinExactMatch)
	ids := eligibleSeqs(sets)
	eligible := make([][]uint32, len(ids))
	for col, id := range ids {
		eligible[col] = sets[id]
	}
	chargeHost(dev, cfg.Obs, "lsh-shingle", float64(shingleOps)*FilterNsPerOp)

	env := &lshEnv{dev: dev, cfg: cfg, prm: prm, sets: eligible, ids: ids,
		seqs: seqs, total: total, budget: lshBudget(dev, cfg)}
	report := sched.PlanReport{BudgetWords: env.budget, Lanes: 1}
	spansA, spansB, err := env.lshPlans()
	if err != nil {
		return nil, err
	}
	if prm.conservative {
		report.Batches = 1
	} else {
		report.Batches = len(spansA) + len(spansB)
	}
	if cfg.PredictCost || cfg.AutoTune {
		m := calibrateLSHModel(dev.Config(), env)
		report.PredictedNs = predictLSH(m, env, spansA, spansB)
	}

	schedT0 := dev.HostTime()
	if err := cfg.runner(dev, &st.Faults).Run(&lshFilterBatch{env: env}); err != nil {
		return nil, err
	}
	dev.Synchronize()
	report.ActualNs = dev.HostTime() - schedT0
	st.LSHPlan = report
	sched.RecordPlan(cfg.Obs, "pgraph_lsh", report)
	return env.pairs, nil
}
