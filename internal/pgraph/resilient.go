package pgraph

import (
	"fmt"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
)

// Resilient batch execution for the GPU verification schedulers. The
// generic ladder — retry with exponential virtual-clock backoff, split
// persistent-OOM batches in half, degrade to a bit-identical host
// execution, or fail typed under Config.NoHostFallback — lives in
// internal/sched; this file adapts the Smith–Waterman batch stream to it.
// Score writes are idempotent (scores[p.lo+i] depends only on the batch
// contents), so a failed attempt needs no rollback; the pipelined scheduler
// restarts whole passes (its lanes share buffers, so mid-pass state is not
// worth salvaging) and degrades to the resilient sequential loop when
// restarts exhaust the budget. Either way the edge set is bit-identical to
// a fault-free run; Stats.Faults counts what recovery cost.

// DefaultFaultRetries is the per-batch retry budget when Config.FaultRetries
// is zero.
const DefaultFaultRetries = sched.DefaultFaultRetries

// DefaultRetryBackoffNs is the virtual-clock backoff before the first retry
// of a faulted batch when Config.RetryBackoffNs is zero; attempt k waits 2^k
// times as long.
const DefaultRetryBackoffNs = sched.DefaultRetryBackoffNs

// retryBackoff resolves Config.RetryBackoffNs (0 = default; negative values
// are rejected by Build before any scheduling runs).
func (c Config) retryBackoff() float64 { return sched.ResolveBackoff(c.RetryBackoffNs) }

// ErrRetryBudget is wrapped by verification errors reported after the
// retry budget is exhausted with the host fallback disabled. It aliases the
// sched framework's sentinel so errors.Is works across both.
var ErrRetryBudget = sched.ErrRetryBudget

// retryBudget resolves Config.FaultRetries (0 = default, negative = none).
func (c Config) retryBudget() int { return sched.ResolveRetries(c.FaultRetries) }

// runner assembles the sched resilience ladder for one verification run.
func (c Config) runner(dev *gpusim.Device, rec *faults.Recovery) *sched.Runner {
	return &sched.Runner{
		Dev: dev, Obs: c.Obs, Rec: rec,
		Policy:         sched.Policy{Retries: c.retryBudget(), BackoffNs: c.retryBackoff()},
		NoHostFallback: c.NoHostFallback,
	}
}

// swEnv bundles the state the resilient scheduling adapters share: the
// device, the resident score table, the verification inputs and the score
// output, plus the sequential path's reusable staging scratch.
type swEnv struct {
	dev    *gpusim.Device
	table  *gpusim.Buffer // resident score table; nil after the all-pairs fallback
	seqs   []seq.Sequence
	enc    [][]byte
	pairs  []pairKey
	order  []int
	cfg    Config
	scores []int32
	rec    *faults.Recovery

	data, out []uint32 // sequential-path scratch, reused across batches
}

// swTableUpload stages the build-resident substitution table through the
// ladder. The table cannot shrink, so Split never applies; when the upload
// fails persistently the whole verification degrades to host scoring —
// bit-identical by construction — and env.table stays nil so the batch
// loop is skipped.
type swTableUpload struct{ env *swEnv }

func (u *swTableUpload) Attempt() error {
	table, err := uploadSWTable(u.env.dev)
	if err != nil {
		return err
	}
	u.env.table = table
	return nil
}

func (u *swTableUpload) Split() (sched.Batch, sched.Batch, bool) { return nil, nil, false }

func (u *swTableUpload) Fallback() {
	runSWBatchHost(u.env.dev, swBatch{lo: 0, hi: len(u.env.order)}, u.env.seqs,
		u.env.pairs, u.env.order, u.env.cfg, u.env.scores)
}

func (u *swTableUpload) WrapErr(retries int, last error) error {
	return fmt.Errorf("pgraph: score-table upload failed after %d attempts (%v): %w",
		retries+1, last, ErrRetryBudget)
}

// swGPUBatch adapts one verification batch to the sched ladder.
type swGPUBatch struct {
	env *swEnv
	p   swBatch
}

func (b swGPUBatch) Attempt() error {
	var err error
	b.env.data, b.env.out, err = runOneSWBatch(b.env.dev, b.env.table, b.p, b.env.enc,
		b.env.pairs, b.env.order, b.env.cfg, b.env.scores, b.env.data, b.env.out)
	return err
}

// Split halves the pair range for OOM recovery. Each half re-derives its
// distinct-sequence set and gets a fresh budget from the ladder.
func (b swGPUBatch) Split() (sched.Batch, sched.Batch, bool) {
	if b.p.hi-b.p.lo < 2 {
		return nil, nil, false
	}
	mid := b.p.lo + (b.p.hi-b.p.lo)/2
	return swGPUBatch{b.env, swBatchFor(b.p.lo, mid, b.env.enc, b.env.pairs, b.env.order)},
		swGPUBatch{b.env, swBatchFor(mid, b.p.hi, b.env.enc, b.env.pairs, b.env.order)}, true
}

func (b swGPUBatch) Fallback() {
	runSWBatchHost(b.env.dev, b.p, b.env.seqs, b.env.pairs, b.env.order, b.env.cfg, b.env.scores)
}

func (b swGPUBatch) WrapErr(retries int, last error) error {
	return fmt.Errorf("pgraph: batch of %d pairs failed after %d attempts (%v): %w",
		b.p.hi-b.p.lo, retries+1, last, ErrRetryBudget)
}

// runSWBatchesSequentialResilient is runSWBatchesSequentialOn with the
// recovery ladder applied per batch.
func runSWBatchesSequentialResilient(env *swEnv, plans []swBatch) error {
	run := env.cfg.runner(env.dev, env.rec)
	for _, p := range plans {
		if err := run.Run(swGPUBatch{env: env, p: p}); err != nil {
			return err
		}
	}
	return nil
}

// swBatchFor rebuilds a batch descriptor for a sub-range of the schedule.
func swBatchFor(lo, hi int, enc [][]byte, pairs []pairKey, order []int) swBatch {
	b := swBatch{lo: lo, hi: hi}
	in := make(map[int32]bool)
	for k := lo; k < hi; k++ {
		ia, ib := pairs[order[k]].unpack()
		if !in[ia] {
			in[ia] = true
			b.seqIDs = append(b.seqIDs, ia)
			b.seqWords += seqWords(enc[ia])
		}
		if !in[ib] {
			in[ib] = true
			b.seqIDs = append(b.seqIDs, ib)
			b.seqWords += seqWords(enc[ib])
		}
	}
	return b
}

// runSWBatchHost scores one batch's pairs on the host. align.ScoreOnly is
// the reference the device kernel is tested bit-identical against, so the
// fallback cannot change the edge set; the work is priced on the virtual
// clock at HostAlignNsPerCell like the host backend.
func runSWBatchHost(dev *gpusim.Device, p swBatch, seqs []seq.Sequence,
	pairs []pairKey, order []int, cfg Config, scores []int32) {

	var cells int64
	for k := p.lo; k < p.hi; k++ {
		a, b := pairs[order[k]].unpack()
		sa, sb := seqs[a].Residues, seqs[b].Residues
		cells += int64(len(sa)) * int64(len(sb))
		scores[k] = int32(align.ScoreOnly(sa, sb, cfg.Align))
	}
	chargeHost(dev, cfg.Obs, "host-align", float64(cells)*HostAlignNsPerCell)
}

// swPipePass adapts the lane executor to restart-based recovery: every
// score slot is rewritten by a successful pass, so a failed attempt needs
// no reset, and when restarts exhaust the budget the pass degrades to the
// sequential resilient loop (which recovers per batch, splits on OOM and
// can fall back to the host).
type swPipePass struct {
	env   *swEnv
	plans []swBatch
	lanes int
}

func (p swPipePass) Attempt() error {
	return runSWBatchesPipelinedOn(p.env.dev, p.env.table, p.plans, p.env.enc,
		p.env.pairs, p.env.order, p.env.cfg, p.env.scores, p.lanes)
}

// Reset: score writes are idempotent; nothing to roll back.
func (p swPipePass) Reset() {}

// Settle quiesces the failed pass's in-flight stream work.
func (p swPipePass) Settle() { p.env.dev.Synchronize() }

func (p swPipePass) Degrade() error { return runSWBatchesSequentialResilient(p.env, p.plans) }

// runSWBatchesPipelinedResilient wraps the lane executor in the restart
// ladder.
func runSWBatchesPipelinedResilient(env *swEnv, plans []swBatch, lanes int) error {
	return env.cfg.runner(env.dev, env.rec).RunPass(swPipePass{env: env, plans: plans, lanes: lanes})
}
