package pgraph

import (
	"errors"
	"fmt"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
	"gpclust/internal/seq"
)

// This file makes the GPU verification schedulers resilient to device
// faults (injected by internal/faults through gpusim, or any transient
// gpusim error), mirroring the recovery ladder of internal/core:
//
//  1. retry the failed batch with exponential virtual-clock backoff, up to
//     the configured budget (score writes are idempotent, so a retry needs
//     no rollback);
//  2. on persistent allocation failure, split the batch's pair range in
//     half and recurse with fresh budgets;
//  3. as a last resort, score the batch's pairs on the host with
//     align.ScoreOnly — bit-identical to the kernel by construction —
//     priced at HostAlignNsPerCell, unless Config.NoHostFallback asks for
//     a typed failure instead.
//
// The pipelined scheduler restarts whole passes (its lanes share buffers,
// so mid-pass state is not worth salvaging) and degrades to the resilient
// sequential loop when restarts exhaust the budget. Either way the edge
// set is bit-identical to a fault-free run; Stats.Faults counts what
// recovery cost.

const (
	// DefaultFaultRetries is the per-batch retry budget when
	// Config.FaultRetries is zero.
	DefaultFaultRetries = 3
	// maxSplitDepth bounds OOM-split recursion; 2^40 exceeds any pair count.
	maxSplitDepth = 40
)

// DefaultRetryBackoffNs is the virtual-clock backoff before the first retry
// of a faulted batch when Config.RetryBackoffNs is zero; attempt k waits 2^k
// times as long. (Formerly a mutable package variable — moving it into
// Config removes the data race between concurrent builds and the
// wall-clock-free determinism hole it opened.)
const DefaultRetryBackoffNs = 2e6

// retryBackoff resolves Config.RetryBackoffNs (0 = default; negative values
// are rejected by Build before any scheduling runs).
func (c Config) retryBackoff() float64 {
	if c.RetryBackoffNs > 0 {
		return c.RetryBackoffNs
	}
	return DefaultRetryBackoffNs
}

// ErrRetryBudget is wrapped by verification errors reported after the
// retry budget is exhausted with the host fallback disabled.
var ErrRetryBudget = errors.New("pgraph: device fault retry budget exhausted")

// retryBudget resolves Config.FaultRetries (0 = default, negative = none).
func (c Config) retryBudget() int {
	if c.FaultRetries > 0 {
		return c.FaultRetries
	}
	if c.FaultRetries < 0 {
		return 0
	}
	return DefaultFaultRetries
}

// retryableFault reports whether err is worth retrying: an injected or
// transient device fault, or a device allocation failure.
func retryableFault(err error) bool {
	return errors.Is(err, gpusim.ErrDeviceFault) || errors.Is(err, gpusim.ErrOutOfDeviceMemory)
}

// runSWBatchesSequentialResilient is runSWBatchesSequential with the
// recovery ladder applied per batch.
func runSWBatchesSequentialResilient(dev *gpusim.Device, plans []swBatch, seqs []seq.Sequence,
	enc [][]byte, pairs []pairKey, order []int, cfg Config, scores []int32, rec *faults.Recovery) error {

	var data, out []uint32
	var err error
	for _, p := range plans {
		if data, out, err = runSWBatchResilient(dev, p, seqs, enc, pairs, order, cfg, scores, rec, data, out, 0); err != nil {
			return err
		}
	}
	return nil
}

// runSWBatchResilient runs one batch through the recovery ladder.
func runSWBatchResilient(dev *gpusim.Device, p swBatch, seqs []seq.Sequence,
	enc [][]byte, pairs []pairKey, order []int, cfg Config, scores []int32,
	rec *faults.Recovery, data, out []uint32, depth int) ([]uint32, []uint32, error) {

	budget := cfg.retryBudget()
	for attempt := 0; ; attempt++ {
		var err error
		if data, out, err = runOneSWBatch(dev, p, enc, pairs, order, cfg, scores, data, out); err == nil {
			return data, out, nil
		} else if !retryableFault(err) {
			return data, out, err
		} else if attempt < budget {
			switch {
			case errors.Is(err, gpusim.ErrTransferFault):
				rec.TransferRetries++
				recoveryInstant(dev, cfg.Obs, "retry:transfer")
			case errors.Is(err, gpusim.ErrLaunchFault):
				rec.KernelRetries++
				recoveryInstant(dev, cfg.Obs, "retry:kernel")
			default:
				rec.OOMRetries++
				recoveryInstant(dev, cfg.Obs, "retry:oom")
			}
			back := cfg.retryBackoff() * float64(int64(1)<<attempt)
			chargeHost(dev, cfg.Obs, obs.NameBackoff, back)
			rec.BackoffNs += back
		} else if errors.Is(err, gpusim.ErrOutOfDeviceMemory) && depth < maxSplitDepth && p.hi-p.lo >= 2 {
			// Persistent OOM: halve the pair range. Each half re-derives its
			// distinct-sequence set and gets a fresh budget.
			rec.OOMSplits++
			recoveryInstant(dev, cfg.Obs, "oom-split")
			mid := p.lo + (p.hi-p.lo)/2
			left := swBatchFor(p.lo, mid, enc, pairs, order)
			right := swBatchFor(mid, p.hi, enc, pairs, order)
			if data, out, err = runSWBatchResilient(dev, left, seqs, enc, pairs, order, cfg, scores, rec, data, out, depth+1); err != nil {
				return data, out, err
			}
			return runSWBatchResilient(dev, right, seqs, enc, pairs, order, cfg, scores, rec, data, out, depth+1)
		} else if cfg.NoHostFallback {
			return data, out, fmt.Errorf("pgraph: batch of %d pairs failed after %d attempts (%v): %w",
				p.hi-p.lo, attempt+1, err, ErrRetryBudget)
		} else {
			rec.HostFallbacks++
			recoveryInstant(dev, cfg.Obs, "host-fallback")
			runSWBatchHost(dev, p, seqs, pairs, order, cfg, scores)
			return data, out, nil
		}
	}
}

// swBatchFor rebuilds a batch descriptor for a sub-range of the schedule.
func swBatchFor(lo, hi int, enc [][]byte, pairs []pairKey, order []int) swBatch {
	b := swBatch{lo: lo, hi: hi}
	in := make(map[int32]bool)
	for k := lo; k < hi; k++ {
		ia, ib := pairs[order[k]].unpack()
		if !in[ia] {
			in[ia] = true
			b.seqIDs = append(b.seqIDs, ia)
			b.seqWords += seqWords(enc[ia])
		}
		if !in[ib] {
			in[ib] = true
			b.seqIDs = append(b.seqIDs, ib)
			b.seqWords += seqWords(enc[ib])
		}
	}
	return b
}

// runSWBatchHost scores one batch's pairs on the host. align.ScoreOnly is
// the reference the device kernel is tested bit-identical against, so the
// fallback cannot change the edge set; the work is priced on the virtual
// clock at HostAlignNsPerCell like the host backend.
func runSWBatchHost(dev *gpusim.Device, p swBatch, seqs []seq.Sequence,
	pairs []pairKey, order []int, cfg Config, scores []int32) {

	var cells int64
	for k := p.lo; k < p.hi; k++ {
		a, b := pairs[order[k]].unpack()
		sa, sb := seqs[a].Residues, seqs[b].Residues
		cells += int64(len(sa)) * int64(len(sb))
		scores[k] = int32(align.ScoreOnly(sa, sb, cfg.Align))
	}
	chargeHost(dev, cfg.Obs, "host-align", float64(cells)*HostAlignNsPerCell)
}

// runSWBatchesPipelinedResilient wraps the double-buffered scheduler:
// a faulted pass is restarted whole (every score slot is rewritten, so
// partial state from the failed pass is harmless), and when restarts
// exhaust the budget the build degrades to the sequential resilient loop.
func runSWBatchesPipelinedResilient(dev *gpusim.Device, plans []swBatch, seqs []seq.Sequence,
	enc [][]byte, pairs []pairKey, order []int, cfg Config, scores []int32, rec *faults.Recovery) error {

	budget := cfg.retryBudget()
	for attempt := 0; ; attempt++ {
		err := runSWBatchesPipelined(dev, plans, enc, pairs, order, cfg, scores)
		if err == nil {
			return nil
		}
		if !retryableFault(err) {
			return err
		}
		dev.Synchronize() // settle the failed pass's in-flight stream work
		rec.Restarts++
		if attempt >= budget {
			recoveryInstant(dev, cfg.Obs, "degrade-sequential")
			return runSWBatchesSequentialResilient(dev, plans, seqs, enc, pairs, order, cfg, scores, rec)
		}
		recoveryInstant(dev, cfg.Obs, "restart")
		back := cfg.retryBackoff() * float64(int64(1)<<attempt)
		chargeHost(dev, cfg.Obs, obs.NameBackoff, back)
		rec.BackoffNs += back
	}
}
