package faults

import (
	"fmt"
	"strings"
)

// Recovery counts the fault-recovery actions a resilient driver took
// during one run. It is embedded in core.Result and pgraph.Stats so the
// CLIs can surface what the run survived; the chaos harness asserts the
// counters are nonzero exactly when injected faults actually failed
// operations. All recovery costs are on the virtual clock (BackoffNs,
// plus whatever the retried work itself cost) — the recovered output is
// bit-identical to a fault-free run.
type Recovery struct {
	TransferRetries int64 // batches retried after an H2D/D2H fault
	KernelRetries   int64 // batches retried after a kernel-launch fault
	OOMRetries      int64 // batches retried after an unsplittable OOM
	OOMSplits       int64 // batches split in half after device OOM
	HostFallbacks   int64 // batches degraded to the bit-identical host path
	Restarts        int64 // pipelined passes restarted from a clean slate

	BackoffNs float64 // virtual-clock backoff burned between retries
}

// Any reports whether any recovery action was taken.
func (r Recovery) Any() bool {
	return r.TransferRetries+r.KernelRetries+r.OOMRetries+
		r.OOMSplits+r.HostFallbacks+r.Restarts > 0
}

// Add accumulates another Recovery into r (multi-device and multi-stage
// runs sum their parts).
func (r *Recovery) Add(o Recovery) {
	r.TransferRetries += o.TransferRetries
	r.KernelRetries += o.KernelRetries
	r.OOMRetries += o.OOMRetries
	r.OOMSplits += o.OOMSplits
	r.HostFallbacks += o.HostFallbacks
	r.Restarts += o.Restarts
	r.BackoffNs += o.BackoffNs
}

// String renders the nonzero counters, e.g.
// "2 transfer retries, 1 OOM split, backoff 8.0ms", or "none".
func (r Recovery) String() string {
	var parts []string
	add := func(n int64, one, many string) {
		if n == 1 {
			parts = append(parts, "1 "+one)
		} else if n > 1 {
			parts = append(parts, fmt.Sprintf("%d %s", n, many))
		}
	}
	add(r.TransferRetries, "transfer retry", "transfer retries")
	add(r.KernelRetries, "kernel retry", "kernel retries")
	add(r.OOMRetries, "OOM retry", "OOM retries")
	add(r.OOMSplits, "OOM split", "OOM splits")
	add(r.HostFallbacks, "host fallback", "host fallbacks")
	add(r.Restarts, "pipeline restart", "pipeline restarts")
	if r.BackoffNs > 0 {
		parts = append(parts, fmt.Sprintf("backoff %.1fms", r.BackoffNs/1e6))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
