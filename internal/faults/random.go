package faults

import (
	"math/rand"

	"gpclust/internal/gpusim"
)

// RandSchedule generates a seeded random fault schedule for the chaos
// sweeps: 1–maxEvents events of random kinds with small op-ordinal
// triggers and counts of 1–2, so a driver with the default retry budget
// (and the host fallback as last resort) always recovers. The same seed
// always yields the same schedule.
func RandSchedule(seed int64, maxEvents int) Schedule {
	if maxEvents < 1 {
		maxEvents = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []gpusim.FaultKind{
		gpusim.FaultH2D, gpusim.FaultD2H, gpusim.FaultMalloc,
		gpusim.FaultKernel, gpusim.FaultSlowSM,
	}
	n := 1 + rng.Intn(maxEvents)
	s := Schedule{Events: make([]Event, 0, n)}
	for i := 0; i < n; i++ {
		ev := Event{
			Kind:  kinds[rng.Intn(len(kinds))],
			Count: 1 + rng.Int63n(2),
			Slow:  DefaultSlow,
		}
		if rng.Intn(4) == 0 {
			// Virtual-clock trigger somewhere in the first 50ms of the run.
			ev.At = rng.Float64() * 50e6
		} else {
			ev.Op = 1 + rng.Int63n(12)
		}
		if ev.Kind == gpusim.FaultSlowSM {
			ev.Slow = 2 + 6*rng.Float64()
		}
		s.Events = append(s.Events, ev)
	}
	return s
}
