package faults

import (
	"fmt"
	"strings"
	"sync"

	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// Injector is the schedule-driven gpusim.FaultInjector. It keeps one
// operation counter per fault kind, incremented on every consultation, and
// fires each event for Count consecutive operations of its kind starting
// at its trigger. The mutex only guards the counters (gpusim consults the
// injector from the host goroutine, but multi-GPU runs share one injector
// across devices when the caller chooses to); decisions depend solely on
// counter values and the virtual clock, so they are deterministic.
type Injector struct {
	mu   sync.Mutex
	seen [gpusim.NumFaultKinds]int64 // consultations per kind
	hits [gpusim.NumFaultKinds]int64 // faults fired per kind
	evs  []eventState
	rec  *obs.Recorder // nil: no recording
}

// eventState is one event plus its arming state: for at= events, the
// ordinal of the first consultation at or after the trigger time.
type eventState struct {
	ev      Event
	armedAt int64 // first firing ordinal for at= events (0: not yet armed)
}

// NewInjector builds an injector for the schedule.
func NewInjector(s Schedule) *Injector {
	inj := &Injector{evs: make([]eventState, len(s.Events))}
	for i, ev := range s.Events {
		if ev.Count < 1 {
			ev.Count = 1
		}
		if ev.Count > MaxCount {
			ev.Count = MaxCount
		}
		if ev.Kind == gpusim.FaultSlowSM && ev.Slow <= 1 {
			ev.Slow = DefaultSlow
		}
		inj.evs[i] = eventState{ev: ev}
	}
	return inj
}

// SetRecorder wires an observability recorder: every fired fault is marked
// as an instant on the faults track at its virtual firing time, and counted
// in the gpclust_faults_injected counter. Call before the run starts.
func (inj *Injector) SetRecorder(r *obs.Recorder) {
	inj.mu.Lock()
	inj.rec = r
	inj.mu.Unlock()
}

// Decide implements gpusim.FaultInjector.
func (inj *Injector) Decide(kind gpusim.FaultKind, nowNs float64) gpusim.FaultDecision {
	if kind < 0 || kind >= gpusim.NumFaultKinds {
		return gpusim.FaultDecision{}
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.seen[kind]++
	n := inj.seen[kind]
	var dec gpusim.FaultDecision
	for i := range inj.evs {
		st := &inj.evs[i]
		if st.ev.Kind != kind {
			continue
		}
		first := st.ev.Op
		if first == 0 { // at= trigger: arm on the first op at/after At.
			if st.armedAt == 0 && nowNs >= st.ev.At {
				st.armedAt = n
			}
			first = st.armedAt
			if first == 0 {
				continue
			}
		}
		if n < first || n >= first+st.ev.Count {
			continue
		}
		if kind == gpusim.FaultSlowSM {
			if st.ev.Slow > dec.Slow {
				dec.Slow = st.ev.Slow
			}
		} else {
			dec.Fail = true
		}
	}
	if dec.Fail || dec.Slow > 1 {
		inj.hits[kind]++
		if inj.rec.Enabled() {
			// obs never calls back into faults, so recording under inj.mu
			// cannot deadlock.
			inj.rec.Instant(obs.TrackFaults, "fault:"+kind.String(), nowNs)
			inj.rec.Counter("gpclust_faults_injected",
				"Faults the injector fired (including slow-SM spikes).").Inc()
		}
	}
	return dec
}

// Fired returns how many faults of the kind have fired.
func (inj *Injector) Fired(kind gpusim.FaultKind) int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if kind < 0 || kind >= gpusim.NumFaultKinds {
		return 0
	}
	return inj.hits[kind]
}

// TotalFailures returns how many operations the injector failed — every
// fired fault except slow-SM spikes, which slow a kernel but do not fail
// it. Consumers' Recovery counters are nonzero exactly when this is.
func (inj *Injector) TotalFailures() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var total int64
	for k := gpusim.FaultKind(0); k < gpusim.NumFaultKinds; k++ {
		if k != gpusim.FaultSlowSM {
			total += inj.hits[k]
		}
	}
	return total
}

// TotalFired returns how many faults of any kind (including slow-SM
// spikes) have fired.
func (inj *Injector) TotalFired() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var total int64
	for k := gpusim.FaultKind(0); k < gpusim.NumFaultKinds; k++ {
		total += inj.hits[k]
	}
	return total
}

// String summarizes fired faults per kind, e.g. "h2d:2 malloc:1".
func (inj *Injector) String() string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var parts []string
	for k := gpusim.FaultKind(0); k < gpusim.NumFaultKinds; k++ {
		if inj.hits[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", k, inj.hits[k]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
