package faults

import (
	"strings"
	"testing"

	"gpclust/internal/gpusim"
)

func TestParseBasics(t *testing.T) {
	s, err := Parse("h2d op=3 count=2\nmalloc at=2ms\nslowsm op=1 x=8 # spike\n; d2h op=4; kernel op=2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: gpusim.FaultH2D, Op: 3, Count: 2, Slow: DefaultSlow},
		{Kind: gpusim.FaultMalloc, At: 2e6, Count: 1, Slow: DefaultSlow},
		{Kind: gpusim.FaultSlowSM, Op: 1, Count: 1, Slow: 8},
		{Kind: gpusim.FaultD2H, Op: 4, Count: 1, Slow: DefaultSlow},
		{Kind: gpusim.FaultKernel, Op: 2, Count: 1, Slow: DefaultSlow},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %+v", len(s.Events), len(want), s.Events)
	}
	for i, ev := range s.Events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]float64{"5": 5, "5ns": 5, "2us": 2e3, "2ms": 2e6, "1.5s": 1.5e9}
	for in, want := range cases {
		s, err := Parse("malloc at=" + in)
		if err != nil {
			t.Errorf("at=%s: %v", in, err)
			continue
		}
		if got := s.Events[0].At; got != want {
			t.Errorf("at=%s parsed to %gns, want %g", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"flux op=1",                   // unknown kind
		"h2d",                         // missing trigger
		"h2d op=0",                    // non-positive ordinal
		"h2d op=-3",                   // negative ordinal
		"h2d op=1 at=5",               // duplicate trigger
		"h2d op=1 count=0",            // non-positive count
		"h2d op=1 x=4",                // x on a non-slowsm event
		"slowsm op=1 x=1",             // multiplier must exceed 1
		"slowsm op=1 x=nan",           // NaN multiplier
		"malloc at=nan",               // NaN duration
		"malloc at=-1ms",              // negative duration
		"h2d op=1 zap=2",              // unknown field
		"h2d op=1 count",              // missing value
		"h2d op=99999999999999999999", // overflow
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s := RandSchedule(seed, 6)
		text := s.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: Parse(String()) failed: %v\n%s", seed, err, text)
		}
		if len(back.Events) != len(s.Events) {
			t.Fatalf("seed %d: round-trip changed event count %d → %d", seed, len(s.Events), len(back.Events))
		}
		for i := range s.Events {
			if back.Events[i] != s.Events[i] {
				t.Fatalf("seed %d event %d: %+v round-tripped to %+v", seed, i, s.Events[i], back.Events[i])
			}
		}
	}
}

func TestInjectorOpTrigger(t *testing.T) {
	s, err := Parse("h2d op=3 count=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s)
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, inj.Decide(gpusim.FaultH2D, 0).Fail)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("h2d consultation %d: fail=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if inj.Fired(gpusim.FaultH2D) != 2 || inj.TotalFailures() != 2 {
		t.Fatalf("fired=%d failures=%d, want 2/2", inj.Fired(gpusim.FaultH2D), inj.TotalFailures())
	}
	// Other kinds are untouched.
	if inj.Decide(gpusim.FaultD2H, 0).Fail {
		t.Fatal("d2h fired on an h2d-only schedule")
	}
}

func TestInjectorAtTrigger(t *testing.T) {
	s, err := Parse("malloc at=1ms count=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s)
	if inj.Decide(gpusim.FaultMalloc, 0).Fail {
		t.Fatal("fired before the virtual trigger time")
	}
	if inj.Decide(gpusim.FaultMalloc, 0.5e6).Fail {
		t.Fatal("fired before the virtual trigger time")
	}
	if !inj.Decide(gpusim.FaultMalloc, 1e6).Fail {
		t.Fatal("did not fire at the trigger time")
	}
	if !inj.Decide(gpusim.FaultMalloc, 1.1e6).Fail {
		t.Fatal("count=2 should fire twice")
	}
	if inj.Decide(gpusim.FaultMalloc, 2e6).Fail {
		t.Fatal("fired past its count")
	}
}

func TestInjectorSlowSM(t *testing.T) {
	s, err := Parse("slowsm op=1 x=8\nslowsm op=1 x=3")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(s)
	dec := inj.Decide(gpusim.FaultSlowSM, 0)
	if dec.Fail {
		t.Fatal("slowsm must not fail the launch")
	}
	if dec.Slow != 8 {
		t.Fatalf("overlapping slowdowns: got ×%g, want the max ×8", dec.Slow)
	}
	if inj.TotalFailures() != 0 {
		t.Fatalf("slow spikes counted as failures: %d", inj.TotalFailures())
	}
	if inj.TotalFired() != 1 {
		t.Fatalf("TotalFired=%d, want 1", inj.TotalFired())
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		inj := NewInjector(RandSchedule(42, 8))
		var out []bool
		now := 0.0
		for i := 0; i < 40; i++ {
			kind := gpusim.FaultKind(i % int(gpusim.NumFaultKinds))
			dec := inj.Decide(kind, now)
			out = append(out, dec.Fail || dec.Slow > 1)
			now += 1e6
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("consultation %d differed between identical runs", i)
		}
	}
}

func TestRecoveryCounters(t *testing.T) {
	var r Recovery
	if r.Any() || r.String() != "none" {
		t.Fatalf("zero Recovery: Any=%v String=%q", r.Any(), r.String())
	}
	r.Add(Recovery{TransferRetries: 2, OOMSplits: 1, BackoffNs: 8e6})
	r.Add(Recovery{HostFallbacks: 1})
	if !r.Any() {
		t.Fatal("nonzero Recovery reported Any()=false")
	}
	str := r.String()
	for _, want := range []string{"2 transfer retries", "1 OOM split", "1 host fallback", "backoff 8.0ms"} {
		if !strings.Contains(str, want) {
			t.Errorf("Recovery.String() = %q, missing %q", str, want)
		}
	}
}
