// Package faults is the deterministic fault-injection layer for the gpusim
// device. A Schedule declares when device operations fail — "the 3rd
// host→device copy", "every malloc after 2ms of virtual time" — and an
// Injector built from it implements gpusim.FaultInjector, firing those
// faults reproducibly: triggers are keyed only to per-kind operation
// counters and the virtual clock, never the wall clock, so a faulted run is
// exactly as deterministic as a clean one. The chaos harness in
// internal/core and internal/pgraph sweeps randomized schedules (see
// RandSchedule) and asserts that recovered runs stay bit-identical to
// fault-free runs.
//
// Schedule text format — one event per line (';' also separates events,
// for CLI flags); '#' starts a comment:
//
//	kind [op=N | at=DURATION] [count=M] [x=FACTOR]
//
// kind is one of h2d, d2h, malloc, kernel, slowsm. op=N fires on the Nth
// operation of that kind (1-based); at=DURATION arms the event once the
// virtual clock reaches DURATION (a float with an optional ns/us/ms/s
// suffix; default ns) and fires on the next operation of the kind. Either
// way the event stays live for count consecutive operations (default 1).
// x=FACTOR is the kernel-body slowdown multiplier, slowsm events only
// (default 4).
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"gpclust/internal/gpusim"
)

// DefaultSlow is the kernel-body slowdown multiplier for slowsm events
// that do not set x=.
const DefaultSlow = 4.0

// MaxCount caps an event's count field; schedules are adversarial inputs
// (CLI flags, fuzzers) and an unbounded count is indistinguishable from
// "every operation forever", which count=MaxCount already expresses.
const MaxCount = int64(1) << 30

// Event is one declarative fault: fire Kind for Count consecutive
// operations starting at the Op-th operation of that kind, or at the first
// operation once the virtual clock reaches At nanoseconds.
type Event struct {
	Kind gpusim.FaultKind
	Op   int64   // 1-based operation ordinal trigger (0: use At)
	At   float64 // virtual-clock trigger in ns (used when Op == 0)
	// Count is how many consecutive operations of Kind fail (or run slow)
	// once triggered; at least 1.
	Count int64
	// Slow is the kernel-body multiplier for FaultSlowSM events; > 1.
	Slow float64
}

// String renders the event in canonical schedule syntax; Parse(String())
// round-trips.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.Op > 0 {
		fmt.Fprintf(&b, " op=%d", e.Op)
	} else {
		fmt.Fprintf(&b, " at=%sns", strconv.FormatFloat(e.At, 'g', -1, 64))
	}
	if e.Count != 1 {
		fmt.Fprintf(&b, " count=%d", e.Count)
	}
	if e.Kind == gpusim.FaultSlowSM {
		fmt.Fprintf(&b, " x=%s", strconv.FormatFloat(e.Slow, 'g', -1, 64))
	}
	return b.String()
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule declares no events.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// String renders the schedule in canonical syntax, one event per line.
func (s Schedule) String() string {
	lines := make([]string, len(s.Events))
	for i, e := range s.Events {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// kindByName maps schedule syntax to fault kinds.
var kindByName = map[string]gpusim.FaultKind{
	"h2d":    gpusim.FaultH2D,
	"d2h":    gpusim.FaultD2H,
	"malloc": gpusim.FaultMalloc,
	"kernel": gpusim.FaultKernel,
	"slowsm": gpusim.FaultSlowSM,
}

// Parse reads a schedule in the text format described in the package
// comment. It returns a typed error — never panics — on any malformed
// input, making it safe for CLI flags and fuzzing.
func Parse(text string) (Schedule, error) {
	var s Schedule
	lineno := 0
	for _, rawLine := range strings.Split(text, "\n") {
		lineno++
		for _, raw := range strings.Split(rawLine, ";") {
			if i := strings.IndexByte(raw, '#'); i >= 0 {
				raw = raw[:i]
			}
			fields := strings.Fields(raw)
			if len(fields) == 0 {
				continue
			}
			ev, err := parseEvent(fields)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: line %d: %w", lineno, err)
			}
			s.Events = append(s.Events, ev)
		}
	}
	return s, nil
}

func parseEvent(fields []string) (Event, error) {
	kind, ok := kindByName[fields[0]]
	if !ok {
		return Event{}, fmt.Errorf("unknown fault kind %q (want h2d|d2h|malloc|kernel|slowsm)", fields[0])
	}
	ev := Event{Kind: kind, Count: 1, Slow: DefaultSlow}
	haveTrigger := false
	for _, f := range fields[1:] {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return Event{}, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		switch key {
		case "op":
			if haveTrigger {
				return Event{}, fmt.Errorf("duplicate trigger %q (one op= or at= per event)", f)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return Event{}, fmt.Errorf("op=%q: want a positive integer", val)
			}
			ev.Op = n
			haveTrigger = true
		case "at":
			if haveTrigger {
				return Event{}, fmt.Errorf("duplicate trigger %q (one op= or at= per event)", f)
			}
			ns, err := parseDuration(val)
			if err != nil {
				return Event{}, err
			}
			ev.At = ns
			haveTrigger = true
		case "count":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return Event{}, fmt.Errorf("count=%q: want a positive integer", val)
			}
			if n > MaxCount {
				n = MaxCount
			}
			ev.Count = n
		case "x":
			if kind != gpusim.FaultSlowSM {
				return Event{}, fmt.Errorf("x= only applies to slowsm events, not %s", kind)
			}
			x, err := strconv.ParseFloat(val, 64)
			if err != nil || !(x > 1 && x <= 1e6) { // !( ) also rejects NaN
				return Event{}, fmt.Errorf("x=%q: want a multiplier in (1, 1e6]", val)
			}
			ev.Slow = x
		default:
			return Event{}, fmt.Errorf("unknown field %q (want op=|at=|count=|x=)", key)
		}
	}
	if !haveTrigger {
		return Event{}, fmt.Errorf("%s event needs a trigger (op=N or at=DURATION)", kind)
	}
	return ev, nil
}

// parseDuration reads a non-negative virtual duration: a float with an
// optional ns/us/ms/s suffix (default ns).
func parseDuration(val string) (float64, error) {
	scale := 1.0
	num := val
	switch {
	case strings.HasSuffix(val, "ns"):
		num = val[:len(val)-2]
	case strings.HasSuffix(val, "us"):
		num, scale = val[:len(val)-2], 1e3
	case strings.HasSuffix(val, "ms"):
		num, scale = val[:len(val)-2], 1e6
	case strings.HasSuffix(val, "s"):
		num, scale = val[:len(val)-1], 1e9
	}
	f, err := strconv.ParseFloat(num, 64)
	ns := f * scale
	if err != nil || !(ns >= 0 && ns <= 1e300) { // !( ) also rejects NaN and Inf
		return 0, fmt.Errorf("at=%q: want a non-negative duration (ns/us/ms/s)", val)
	}
	return ns, nil
}
