package faults

import (
	"testing"

	"gpclust/internal/gpusim"
)

// FuzzFaultSchedule feeds arbitrary text to the schedule parser. The
// parser must never panic; when it accepts the input, the canonical form
// must round-trip exactly and an injector built from the schedule must be
// consultable without panicking.
func FuzzFaultSchedule(f *testing.F) {
	f.Add("h2d op=3 count=2")
	f.Add("malloc at=2ms\nslowsm op=1 x=8")
	f.Add("d2h op=4; kernel op=2 # comment")
	f.Add("slowsm at=1.5s count=3 x=2.25")
	f.Add("h2d op=1 count=9999999999999")
	f.Add("malloc at=1e100ns")
	f.Add(" \t\n;;#only noise\n")
	f.Add("h2d op=+1")
	f.Add("malloc at=5e-3s")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			if len(s.Events) != 0 {
				t.Fatalf("error %v returned alongside %d events", err, len(s.Events))
			}
			return
		}
		canon := s.String()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %q", err, text, canon)
		}
		if len(back.Events) != len(s.Events) {
			t.Fatalf("round trip changed event count %d → %d (input %q)", len(s.Events), len(back.Events), text)
		}
		for i := range s.Events {
			if back.Events[i] != s.Events[i] {
				t.Fatalf("event %d: %+v round-tripped to %+v (input %q)", i, s.Events[i], back.Events[i], text)
			}
		}
		if canon2 := back.String(); canon2 != canon {
			t.Fatalf("canonical form not a fixed point: %q → %q", canon, canon2)
		}
		// An injector over the parsed schedule must never panic.
		inj := NewInjector(s)
		for i := 0; i < 32; i++ {
			kind := gpusim.FaultKind(i % int(gpusim.NumFaultKinds))
			inj.Decide(kind, float64(i)*1e6)
		}
	})
}
