// Package gos implements the comparison baseline of Section IV-D: the
// k-neighbor linkage graph heuristic used by the Sorcerer II Global Ocean
// Sampling analysis (Yooseph et al. 2007) to cluster ORF sequences before
// profile expansion. Two related vertices sharing at least k neighbors in
// the similarity graph are placed in the same cluster, transitively.
//
// The paper's quality study (Tables III–IV, Figure 5) pits gpClust against
// this method and attributes GOS's weaker sensitivity and lower cluster
// density to the fixed k: "this clustering strategy makes sense if and only
// if all the clusters in the input graph are of the same fixed size k;
// otherwise [the] GOS approach will falsely group potentially unrelated
// vertices into the same cluster."
package gos

import (
	"fmt"
	"slices"
	"sort"

	"gpclust/internal/graph"
	"gpclust/internal/unionfind"
)

// Options configures the baseline.
type Options struct {
	// K is the shared-neighbor threshold (the GOS study used k = 10).
	K int
	// RequireEdge additionally demands that the two vertices be adjacent
	// themselves; the GOS pipeline links related (aligned) pairs.
	RequireEdge bool
	// MaxDegree skips vertices of larger degree during pair enumeration to
	// bound the quadratic blow-up around hubs; 0 means no cap.
	MaxDegree int
}

// DefaultOptions returns the GOS study's configuration (k-neighbor linkage
// with k = 10 over aligned pairs).
func DefaultOptions() Options {
	return Options{K: 10, RequireEdge: true}
}

// Cluster partitions the graph by k-neighbor linkage and returns the
// clusters as sorted member lists, largest first. Every vertex appears in
// exactly one cluster (unlinked vertices are singletons).
func Cluster(g *graph.Graph, o Options) ([][]uint32, error) {
	if o.K < 1 {
		return nil, fmt.Errorf("gos: K = %d, want ≥ 1", o.K)
	}
	n := g.NumVertices()
	uf := unionfind.New(n)

	if o.RequireEdge {
		// For each edge (u,v): count |Γ(u) ∩ Γ(v)| by merging the two
		// sorted neighbor lists.
		for u := 0; u < n; u++ {
			du := g.Degree(uint32(u))
			if du < o.K || (o.MaxDegree > 0 && du > o.MaxDegree) {
				continue
			}
			for _, v := range g.Neighbors(uint32(u)) {
				if uint32(u) >= v {
					continue
				}
				dv := g.Degree(v)
				if dv < o.K || (o.MaxDegree > 0 && dv > o.MaxDegree) {
					continue
				}
				if sharedAtLeast(g.Neighbors(uint32(u)), g.Neighbors(v), o.K) {
					uf.Union(u, int(v))
				}
			}
		}
	} else {
		// Pairs need not be adjacent: enumerate two-hop pairs through each
		// shared neighbor.
		counts := make(map[uint32]int)
		for u := 0; u < n; u++ {
			du := g.Degree(uint32(u))
			if du < o.K || (o.MaxDegree > 0 && du > o.MaxDegree) {
				continue
			}
			clear(counts)
			for _, w := range g.Neighbors(uint32(u)) {
				if o.MaxDegree > 0 && g.Degree(w) > o.MaxDegree {
					continue
				}
				for _, v := range g.Neighbors(w) {
					if int(v) > u {
						counts[v]++
					}
				}
			}
			for v, c := range counts {
				if c >= o.K {
					uf.Union(u, int(v))
				}
			}
		}
	}

	sets := uf.Sets()
	clusters := make([][]uint32, 0, len(sets))
	for _, members := range sets {
		cl := make([]uint32, len(members))
		for i, v := range members {
			cl[i] = uint32(v)
		}
		clusters = append(clusters, cl)
	}
	sortClusters(clusters)
	return clusters, nil
}

// sharedAtLeast reports whether two sorted lists share at least k elements.
func sharedAtLeast(a, b []uint32, k int) bool {
	shared := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Early exit: not enough remaining elements to reach k.
		if shared+min(len(a)-i, len(b)-j) < k {
			return false
		}
		switch {
		case a[i] == b[j]:
			shared++
			if shared >= k {
				return true
			}
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return shared >= k
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sortClusters sorts members ascending and clusters largest-first (ties by
// first member) for deterministic output.
func sortClusters(clusters [][]uint32) {
	for _, cl := range clusters {
		slices.Sort(cl)
	}
	sort.Slice(clusters, func(i, j int) bool {
		a, b := clusters[i], clusters[j]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		if len(a) == 0 {
			return false
		}
		return a[0] < b[0]
	})
}
