package gos

import (
	"slices"
	"testing"
	"testing/quick"

	"gpclust/internal/graph"
)

// clique builds edges of a complete graph over the given vertices.
func clique(b *graph.Builder, vs []uint32) {
	for i := range vs {
		for j := i + 1; j < len(vs); j++ {
			b.AddEdge(vs[i], vs[j])
		}
	}
}

func TestKNeighborMergesClique(t *testing.T) {
	// A 6-clique: any edge's endpoints share 4 neighbors; with k=4 the
	// clique becomes one cluster.
	b := graph.NewBuilder(8)
	clique(b, []uint32{0, 1, 2, 3, 4, 5})
	b.AddEdge(6, 7) // a lone edge: its endpoints share 0 neighbors
	g := b.Build()

	clusters, err := Cluster(g, Options{K: 4, RequireEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 { // clique, {6}, {7}
		t.Fatalf("%d clusters, want 3: %v", len(clusters), clusters)
	}
	if len(clusters[0]) != 6 {
		t.Fatalf("largest cluster size %d, want 6", len(clusters[0]))
	}
}

func TestKTooHighKeepsSingletons(t *testing.T) {
	b := graph.NewBuilder(6)
	clique(b, []uint32{0, 1, 2, 3, 4, 5})
	g := b.Build()
	clusters, err := Cluster(g, Options{K: 5, RequireEdge: true}) // share only 4
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 6 {
		t.Fatalf("%d clusters, want 6 singletons with k above sharing", len(clusters))
	}
}

func TestPartitionProperty(t *testing.T) {
	g, _ := graph.Planted(graph.DefaultPlantedConfig(800))
	clusters, err := Cluster(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NumVertices())
	for _, cl := range clusters {
		for j, v := range cl {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if j > 0 && cl[j-1] >= v {
				t.Fatal("members not sorted")
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d missing", v)
		}
	}
	// largest-first ordering
	for i := 1; i < len(clusters); i++ {
		if len(clusters[i]) > len(clusters[i-1]) {
			t.Fatal("clusters not sorted by size")
		}
	}
}

func TestFixedKFalseMerge(t *testing.T) {
	// The failure mode the paper describes: two unrelated cliques connected
	// through k shared hub vertices get falsely merged by the fixed-k rule.
	b := graph.NewBuilder(0)
	a := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	c := []uint32{8, 9, 10, 11, 12, 13, 14, 15}
	clique(b, a)
	clique(b, c)
	// 3 hubs adjacent to every member of both cliques, and one direct
	// bridge edge between the cliques.
	for hub := uint32(16); hub < 19; hub++ {
		for _, v := range a {
			b.AddEdge(hub, v)
		}
		for _, v := range c {
			b.AddEdge(hub, v)
		}
	}
	b.AddEdge(a[0], c[0])
	g := b.Build()

	// With k=3, the bridge edge's endpoints share the 3 hubs → merge.
	merged, err := Cluster(g, Options{K: 3, RequireEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged[0]) < 16 {
		t.Fatalf("largest cluster = %d members, want cliques merged (≥16)", len(merged[0]))
	}

	// A higher k avoids the false merge but then demands every true pair
	// share ≥ 12 neighbors — fine here, but the fixed threshold is exactly
	// the paper's criticism.
	strict, err := Cluster(g, Options{K: 12, RequireEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range strict {
		inA, inC := 0, 0
		for _, v := range cl {
			if v <= 7 {
				inA++
			} else if v <= 15 {
				inC++
			}
		}
		if inA > 0 && inC > 0 {
			t.Fatalf("k=12 still merged the cliques: %v", cl)
		}
	}
}

func TestRequireEdgeFalse(t *testing.T) {
	// Two vertices not adjacent but sharing k neighbors merge only in
	// RequireEdge=false mode.
	b := graph.NewBuilder(0)
	// u=0, v=1 share neighbors 2,3,4 but no edge (0,1)
	for _, w := range []uint32{2, 3, 4} {
		b.AddEdge(0, w)
		b.AddEdge(1, w)
	}
	g := b.Build()

	withEdge, err := Cluster(g, Options{K: 3, RequireEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	labels := labelsOf(withEdge, g.NumVertices())
	if labels[0] == labels[1] {
		t.Fatal("RequireEdge=true merged a non-adjacent pair")
	}

	without, err := Cluster(g, Options{K: 3, RequireEdge: false})
	if err != nil {
		t.Fatal(err)
	}
	labels = labelsOf(without, g.NumVertices())
	if labels[0] != labels[1] {
		t.Fatal("RequireEdge=false did not merge a pair sharing 3 neighbors")
	}
}

func TestMaxDegreeCap(t *testing.T) {
	// A hub above the cap cannot trigger merges.
	b := graph.NewBuilder(0)
	clique(b, []uint32{0, 1, 2, 3, 4})
	g := b.Build()
	clusters, err := Cluster(g, Options{K: 3, RequireEdge: true, MaxDegree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 5 {
		t.Fatalf("%d clusters with all degrees above the cap, want 5 singletons", len(clusters))
	}
}

func TestValidation(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if _, err := Cluster(g, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSharedAtLeast(t *testing.T) {
	cases := []struct {
		a, b []uint32
		k    int
		want bool
	}{
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 2, true},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 3, false},
		{[]uint32{}, []uint32{1}, 1, false},
		{[]uint32{5}, []uint32{5}, 1, true},
		{[]uint32{1, 3, 5, 7}, []uint32{2, 4, 6, 8}, 1, false},
	}
	for i, c := range cases {
		if got := sharedAtLeast(c.a, c.b, c.k); got != c.want {
			t.Errorf("case %d: sharedAtLeast = %v, want %v", i, got, c.want)
		}
	}
}

func labelsOf(clusters [][]uint32, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for ci, cl := range clusters {
		for _, v := range cl {
			labels[v] = ci
		}
	}
	return labels
}

func BenchmarkGOSCluster(b *testing.B) {
	g, _ := graph.Planted(graph.DefaultPlantedConfig(5000))
	o := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(g, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: sharedAtLeast agrees with a brute-force set intersection.
func TestSharedAtLeastProperty(t *testing.T) {
	f := func(rawA, rawB []uint16, rawK uint8) bool {
		k := 1 + int(rawK%8)
		mk := func(raw []uint16) []uint32 {
			m := map[uint32]bool{}
			for _, v := range raw {
				m[uint32(v%64)] = true
			}
			out := make([]uint32, 0, len(m))
			for v := range m {
				out = append(out, v)
			}
			slices.Sort(out)
			return out
		}
		a, b := mk(rawA), mk(rawB)
		inter := 0
		set := map[uint32]bool{}
		for _, v := range a {
			set[v] = true
		}
		for _, v := range b {
			if set[v] {
				inter++
			}
		}
		return sharedAtLeast(a, b, k) == (inter >= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
