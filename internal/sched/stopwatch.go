package sched

import "time"

// Stopwatch is the scheduler layer's only sanctioned wall-clock reader,
// enforced by gpclint's wallclock rule (internal/core and internal/pgraph
// used to carry identical private copies): every cost the backends *report*
// comes from the virtual clock, while the Wall* result fields record how
// long the phases really took on this host. Keeping the raw time.Now calls
// inside this wrapper makes any new wall-clock dependency a reviewable,
// lintable event.
type Stopwatch struct {
	start time.Time
	mark  time.Time
}

// NewStopwatch starts measuring at the moment of the call.
func NewStopwatch() *Stopwatch {
	now := time.Now()
	return &Stopwatch{start: now, mark: now}
}

// Lap returns the nanoseconds elapsed since the previous lap (or since
// construction) and starts the next phase.
func (w *Stopwatch) Lap() int64 {
	now := time.Now()
	d := now.Sub(w.mark)
	w.mark = now
	return d.Nanoseconds()
}

// Total returns the nanoseconds elapsed since construction.
func (w *Stopwatch) Total() int64 {
	return time.Since(w.start).Nanoseconds()
}
