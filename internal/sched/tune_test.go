package sched

import (
	"strings"
	"testing"

	"gpclust/internal/obs"
)

// TestBudgets: the sweep is geometric, starts at maxB, never goes below
// minB, and is capped at 8 candidates.
func TestBudgets(t *testing.T) {
	got := Budgets(1000, 100)
	want := []int{1000, 500, 250, 125}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if got := Budgets(1<<30, 1); len(got) != 8 {
		t.Fatalf("sweep not capped: %v", got)
	}
	// maxB below minB clamps to a single minB candidate.
	if got := Budgets(10, 100); len(got) != 1 || got[0] != 100 {
		t.Fatalf("clamp: %v", got)
	}
}

// TestPick: argmin over feasible candidates, deterministic on ties, and
// ok=false when nothing is feasible.
func TestPick(t *testing.T) {
	cands := []Candidate{
		{BudgetWords: 100, Lanes: 1}, {BudgetWords: 100, Lanes: 2},
		{BudgetWords: 50, Lanes: 1}, {BudgetWords: 50, Lanes: 2},
	}
	pred := func(c Candidate) (float64, bool) {
		if c.BudgetWords == 50 && c.Lanes == 2 {
			return 0, false // infeasible
		}
		return float64(c.BudgetWords) / float64(c.Lanes), true
	}
	best, ns, ok := Pick(cands, pred)
	if !ok || best != (Candidate{BudgetWords: 100, Lanes: 2}) || ns != 50 {
		t.Fatalf("got %+v, %g, %v", best, ns, ok)
	}
	// Tie between {100,2} (50) and a hypothetical equal candidate keeps the
	// earliest.
	tied := []Candidate{{BudgetWords: 100, Lanes: 2}, {BudgetWords: 50, Lanes: 1}}
	best, _, _ = Pick(tied, pred)
	if best != (Candidate{BudgetWords: 100, Lanes: 2}) {
		t.Fatalf("tie broke to %+v", best)
	}
	if _, _, ok := Pick(cands, func(Candidate) (float64, bool) { return 0, false }); ok {
		t.Fatal("no feasible candidate still picked")
	}
}

// TestPlanReportAccumulation: Add sums the time fields and keeps the first
// pass's plan shape; DriftFrac is the symmetric relative error.
func TestPlanReportAccumulation(t *testing.T) {
	var p PlanReport
	p.Add(PlanReport{AutoTuned: true, BudgetWords: 100, Lanes: 2, Batches: 3,
		PredictedNs: 1000, ActualNs: 800})
	p.Add(PlanReport{BudgetWords: 10, Lanes: 1, Batches: 1, PredictedNs: 100, ActualNs: 200})
	if !p.AutoTuned || p.BudgetWords != 100 || p.Lanes != 2 || p.Batches != 3 {
		t.Fatalf("plan shape overwritten: %+v", p)
	}
	if p.PredictedNs != 1100 || p.ActualNs != 1000 {
		t.Fatalf("times not summed: %+v", p)
	}
	if got := p.DriftFrac(); got != 0.1 {
		t.Fatalf("drift %g", got)
	}
	under := PlanReport{PredictedNs: 500, ActualNs: 1000}
	if got := under.DriftFrac(); got != 0.5 {
		t.Fatalf("under-prediction drift %g", got)
	}
	if got := (PlanReport{}).DriftFrac(); got != 0 {
		t.Fatalf("empty drift %g", got)
	}
}

// TestPlanReportString: both modes render, for CLI summaries.
func TestPlanReportString(t *testing.T) {
	s := PlanReport{AutoTuned: true, BudgetWords: 42, Lanes: 3, Batches: 2}.String()
	if !strings.Contains(s, "auto") || !strings.Contains(s, "42") {
		t.Fatalf("auto render: %q", s)
	}
	if s := (PlanReport{}).String(); !strings.Contains(s, "fixed") {
		t.Fatalf("fixed render: %q", s)
	}
}

// TestRecordPlan: the chosen plan lands as gauges under the prefix; a nil
// recorder is inert.
func TestRecordPlan(t *testing.T) {
	rec := obs.New()
	RecordPlan(rec, "test", PlanReport{AutoTuned: true, BudgetWords: 7, Lanes: 2,
		Batches: 3, PredictedNs: 11, ActualNs: 13})
	checks := map[string]float64{
		"test_plan_autotuned":    1,
		"test_plan_budget_words": 7,
		"test_plan_lanes":        2,
		"test_plan_batches":      3,
		"test_plan_predicted_ns": 11,
		"test_plan_actual_ns":    13,
	}
	for name, want := range checks {
		if got := rec.Gauge(name, "").Value(); got != want {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}
	RecordPlan(nil, "x", PlanReport{}) // must not panic
}
