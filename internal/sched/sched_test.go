package sched

import (
	"errors"
	"fmt"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
)

func testRunner(t *testing.T, retries int, noFallback bool) (*Runner, *faults.Recovery, *gpusim.Device) {
	t.Helper()
	dev := gpusim.MustNew(gpusim.K20Config())
	rec := &faults.Recovery{}
	return &Runner{
		Dev: dev, Rec: rec,
		Policy:         Policy{Retries: retries, BackoffNs: 10},
		NoHostFallback: noFallback,
	}, rec, dev
}

// fakeBatch scripts a Batch: it fails with the scripted errors in order,
// then succeeds. size controls splitting: a batch of size ≥ 2 halves.
type fakeBatch struct {
	errs     []error
	size     int
	fell     *int
	attempts *int
	// persistent, when set, overrides errs for every attempt (split halves
	// inherit it down to size 1, which succeeds).
	persistent error
	minFail    int // halves of at least this size keep failing
}

func (b *fakeBatch) Attempt() error {
	*b.attempts++
	if b.persistent != nil && b.size >= b.minFail {
		return b.persistent
	}
	if b.persistent != nil {
		return nil
	}
	if len(b.errs) == 0 {
		return nil
	}
	err := b.errs[0]
	b.errs = b.errs[1:]
	return err
}

func (b *fakeBatch) Split() (Batch, Batch, bool) {
	if b.size < 2 {
		return nil, nil, false
	}
	half := b.size / 2
	return &fakeBatch{size: half, fell: b.fell, attempts: b.attempts, persistent: b.persistent, minFail: b.minFail},
		&fakeBatch{size: b.size - half, fell: b.fell, attempts: b.attempts, persistent: b.persistent, minFail: b.minFail},
		true
}

func (b *fakeBatch) Fallback() { *b.fell++ }

func (b *fakeBatch) WrapErr(retries int, last error) error {
	return fmt.Errorf("failed after %d retries (%v): %w", retries, last, ErrRetryBudget)
}

// TestRunnerRetryClassification: transient faults burn retries, are
// classified by kind, and charge exponential backoff on the virtual clock.
func TestRunnerRetryClassification(t *testing.T) {
	run, rec, dev := testRunner(t, 3, false)
	var fell, attempts int
	b := &fakeBatch{errs: []error{gpusim.ErrTransferFault, gpusim.ErrLaunchFault},
		size: 4, fell: &fell, attempts: &attempts}
	if err := run.Run(b); err != nil {
		t.Fatal(err)
	}
	if rec.TransferRetries != 1 || rec.KernelRetries != 1 || rec.OOMRetries != 0 {
		t.Fatalf("retry classification wrong: %s", rec)
	}
	// Attempt 0 backoff 10, attempt 1 backoff 20.
	if rec.BackoffNs != 30 || dev.HostTime() != 30 {
		t.Fatalf("backoff: recorded %g, host clock %g, want 30", rec.BackoffNs, dev.HostTime())
	}
	if fell != 0 || attempts != 3 {
		t.Fatalf("fallbacks %d attempts %d, want 0, 3", fell, attempts)
	}
}

// TestRunnerNonRetryableFatal: programming errors pass straight through.
func TestRunnerNonRetryableFatal(t *testing.T) {
	run, rec, _ := testRunner(t, 3, false)
	boom := errors.New("boom")
	var fell, attempts int
	err := run.Run(&fakeBatch{errs: []error{boom}, size: 2, fell: &fell, attempts: &attempts})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if rec.Any() || fell != 0 {
		t.Fatalf("non-retryable error triggered recovery: %s", rec)
	}
}

// TestRunnerOOMSplits: persistent OOM splits recursively until the halves
// fit, each node burning a fresh retry budget first.
func TestRunnerOOMSplits(t *testing.T) {
	run, rec, _ := testRunner(t, 1, false)
	var fell, attempts int
	b := &fakeBatch{size: 4, fell: &fell, attempts: &attempts,
		persistent: gpusim.ErrOutOfDeviceMemory, minFail: 2}
	if err := run.Run(b); err != nil {
		t.Fatal(err)
	}
	// Nodes of size 4, 2, 2 each retry once then split; the four size-1
	// leaves succeed.
	if rec.OOMSplits != 3 || rec.OOMRetries != 3 {
		t.Fatalf("splits %d retries %d, want 3, 3 (%s)", rec.OOMSplits, rec.OOMRetries, rec)
	}
	if fell != 0 {
		t.Fatalf("split recovery fell back %d times", fell)
	}
}

// TestRunnerHostFallback: an unsplittable batch with a persistent fault
// degrades to the host exactly once.
func TestRunnerHostFallback(t *testing.T) {
	run, rec, _ := testRunner(t, 2, false)
	var fell, attempts int
	b := &fakeBatch{size: 1, fell: &fell, attempts: &attempts,
		persistent: gpusim.ErrTransferFault, minFail: 0}
	if err := run.Run(b); err != nil {
		t.Fatal(err)
	}
	if fell != 1 || rec.HostFallbacks != 1 || rec.TransferRetries != 2 {
		t.Fatalf("fell %d, %s; want one fallback after two retries", fell, rec)
	}
}

// TestRunnerNoHostFallbackTyped: with the fallback disabled the batch's
// wrapped error surfaces and wraps ErrRetryBudget.
func TestRunnerNoHostFallbackTyped(t *testing.T) {
	run, _, _ := testRunner(t, 2, true)
	var fell, attempts int
	b := &fakeBatch{size: 1, fell: &fell, attempts: &attempts,
		persistent: gpusim.ErrLaunchFault, minFail: 0}
	err := run.Run(b)
	if err == nil || !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("got %v, want ErrRetryBudget wrap", err)
	}
	if fell != 0 {
		t.Fatal("NoHostFallback still fell back")
	}
}

// fakePass scripts a Pass.
type fakePass struct {
	failures                            int
	fatal                               error
	attempts, resets, settles, degrades int
}

func (p *fakePass) Attempt() error {
	p.attempts++
	if p.fatal != nil {
		return p.fatal
	}
	if p.attempts <= p.failures {
		return gpusim.ErrLaunchFault
	}
	return nil
}
func (p *fakePass) Reset()  { p.resets++ }
func (p *fakePass) Settle() { p.settles++ }
func (p *fakePass) Degrade() error {
	p.degrades++
	return nil
}

// TestRunPassRestartsThenSucceeds: transient pass faults restart with
// backoff and eventually succeed in place.
func TestRunPassRestartsThenSucceeds(t *testing.T) {
	run, rec, _ := testRunner(t, 3, false)
	p := &fakePass{failures: 2}
	if err := run.RunPass(p); err != nil {
		t.Fatal(err)
	}
	if rec.Restarts != 2 || p.resets != 2 || p.settles != 2 || p.degrades != 0 {
		t.Fatalf("restarts=%d resets=%d settles=%d degrades=%d", rec.Restarts, p.resets, p.settles, p.degrades)
	}
}

// TestRunPassDegrades: persistent pass faults exhaust the restart budget
// and hand off to Degrade.
func TestRunPassDegrades(t *testing.T) {
	run, rec, _ := testRunner(t, 2, false)
	p := &fakePass{failures: 100}
	if err := run.RunPass(p); err != nil {
		t.Fatal(err)
	}
	if p.degrades != 1 || p.attempts != 3 {
		t.Fatalf("degrades=%d attempts=%d, want 1 degrade after 3 attempts", p.degrades, p.attempts)
	}
	if rec.Restarts != 3 {
		t.Fatalf("restarts=%d, want 3 (two restarts + the degrade)", rec.Restarts)
	}
}

// TestRunPassFatal: non-retryable pass errors reset, then surface.
func TestRunPassFatal(t *testing.T) {
	run, _, _ := testRunner(t, 2, false)
	boom := errors.New("boom")
	p := &fakePass{fatal: boom}
	if err := run.RunPass(p); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if p.resets != 1 || p.settles != 0 {
		t.Fatalf("resets=%d settles=%d, want reset without settle", p.resets, p.settles)
	}
}

// TestResolveKnobs pins the sentinel semantics of the retry knobs.
func TestResolveKnobs(t *testing.T) {
	if got := ResolveRetries(0); got != DefaultFaultRetries {
		t.Fatalf("ResolveRetries(0)=%d", got)
	}
	if got := ResolveRetries(-1); got != 0 {
		t.Fatalf("ResolveRetries(-1)=%d", got)
	}
	if got := ResolveRetries(7); got != 7 {
		t.Fatalf("ResolveRetries(7)=%d", got)
	}
	if got := ResolveBackoff(0); got != DefaultRetryBackoffNs {
		t.Fatalf("ResolveBackoff(0)=%g", got)
	}
	if got := ResolveBackoff(5); got != 5 {
		t.Fatalf("ResolveBackoff(5)=%g", got)
	}
}

// TestRetryableFault pins the fault taxonomy.
func TestRetryableFault(t *testing.T) {
	for _, err := range []error{gpusim.ErrDeviceFault, gpusim.ErrTransferFault,
		gpusim.ErrLaunchFault, gpusim.ErrOutOfDeviceMemory} {
		if !RetryableFault(err) {
			t.Fatalf("%v should be retryable", err)
		}
	}
	if RetryableFault(errors.New("boom")) || RetryableFault(nil) {
		t.Fatal("non-fault errors must not be retryable")
	}
}

// TestStopwatch: laps and totals are non-negative and ordered.
func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	a := sw.Lap()
	b := sw.Lap()
	total := sw.Total()
	if a < 0 || b < 0 || total < a+b {
		t.Fatalf("laps %d, %d, total %d", a, b, total)
	}
}
