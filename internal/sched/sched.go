// Package sched is the generic device batch-scheduler framework shared by
// the shingling pipeline (internal/core) and the Smith–Waterman
// verification stage (internal/pgraph). Both consumers used to carry their
// own copies of the same machinery; this package owns the single
// implementation of:
//
//   - the batch planner (PlanSpans): greedy packing of weighted items
//     against a device word budget, with workload-specific incremental
//     costs supplied through the Sizer interface;
//   - the pipelined executor (RunLanes): an N-lane double-buffered loop
//     that drains work items in submission order, so emission-order
//     dependent consumers stay bit-identical to a sequential loop;
//   - the resilience ladder (Runner.Run / Runner.RunPass): retry with
//     exponential virtual-clock backoff, split on persistent OOM, degrade
//     to a bit-identical host fallback — or fail typed when the fallback
//     is disabled;
//   - the cost model (Model, Sim): calibrated per-kernel throughput plus a
//     small discrete-event replica of gpusim's engine scheduling, used by
//     the auto-tuner (tune.go) to pick a batch budget and lane count by
//     predicted virtual time.
//
// Everything here prices work on the simulated device's virtual clock;
// recording through internal/obs is pure observation and never perturbs
// the schedule (a nil recorder is bit-identical).
package sched

import (
	"errors"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

const (
	// DefaultFaultRetries is the per-batch retry budget used when a
	// consumer's FaultRetries knob is zero.
	DefaultFaultRetries = 3

	// DefaultRetryBackoffNs is the base virtual-clock delay between fault
	// retries when the consumer's RetryBackoffNs knob is zero; attempt k
	// waits base·2^k simulated nanoseconds.
	DefaultRetryBackoffNs = 2e6

	// MaxSplitDepth bounds recursive OOM batch splitting; at depth d a
	// batch has at most ceil(n/2^d) of its original weight, so 40 levels
	// cover any 32-bit workload with slack.
	MaxSplitDepth = 40
)

// ErrRetryBudget is wrapped by batch errors returned once the fault-retry
// budget is exhausted and the host fallback is disabled. Consumers alias it
// so errors.Is keeps working across the refactor.
var ErrRetryBudget = errors.New("sched: device fault retry budget exhausted")

// RetryableFault reports whether a batch error may be retried: injected
// device faults and device OOM. Anything else (range errors, invalid
// launches) is a programming error and stays fatal.
func RetryableFault(err error) bool {
	return errors.Is(err, gpusim.ErrDeviceFault) || errors.Is(err, gpusim.ErrOutOfDeviceMemory)
}

// ResolveRetries maps a consumer's FaultRetries knob to a concrete budget:
// 0 is a sentinel for DefaultFaultRetries, negative disables retries.
func ResolveRetries(n int) int {
	if n > 0 {
		return n
	}
	if n < 0 {
		return 0
	}
	return DefaultFaultRetries
}

// ResolveBackoff maps a consumer's RetryBackoffNs knob to the base delay
// (0 = DefaultRetryBackoffNs; negative values are rejected by consumers
// before any scheduling runs).
func ResolveBackoff(ns float64) float64 {
	if ns > 0 {
		return ns
	}
	return DefaultRetryBackoffNs
}

// ChargeHost advances the device's host clock by ns of CPU work and, when a
// recorder is wired, mirrors the charge as a host-cpu span.
func ChargeHost(dev *gpusim.Device, r *obs.Recorder, name string, ns float64) {
	if r.Enabled() && ns > 0 {
		t0 := dev.HostTime()
		dev.AdvanceHost(ns)
		r.Span(obs.TrackHostCPU, name, t0, t0+ns)
		return
	}
	dev.AdvanceHost(ns)
}

// RecoveryInstant marks one fault-recovery action on the recovery track at
// the device's current virtual time.
func RecoveryInstant(dev *gpusim.Device, r *obs.Recorder, name string) {
	if r.Enabled() {
		r.Instant(obs.TrackRecovery, name, dev.HostTime())
	}
}

// Policy is the resolved retry policy of one scheduling run.
type Policy struct {
	Retries   int     // per-batch (or per-pass) retry budget
	BackoffNs float64 // base backoff; attempt k waits BackoffNs·2^k
}

// Batch is one unit of resilient work. Attempt must leave consumer state as
// if the attempt never happened when it fails (roll back, or be idempotent);
// Fallback must not fail — it is the ladder's last resort.
type Batch interface {
	// Attempt runs the batch once on the device.
	Attempt() error
	// Split halves the batch for OOM recovery; ok is false when it cannot
	// shrink further.
	Split() (left, right Batch, ok bool)
	// Fallback executes the batch on the host, bit-identically.
	Fallback()
	// WrapErr formats the typed budget-exhausted error (NoHostFallback);
	// it must wrap ErrRetryBudget. retries is the exhausted budget and
	// last the final device error.
	WrapErr(retries int, last error) error
}

// Pass is a whole pipelined pass under restart-based recovery: its lanes
// interleave every batch's device work, so there is no per-batch state to
// roll back — a faulted pass restarts whole and, when restarts exhaust the
// budget, degrades to the consumer's sequential per-batch ladder.
type Pass interface {
	// Attempt runs the whole pass once.
	Attempt() error
	// Reset restores the pass's output state after a failed attempt. It
	// runs on every failure, before the error is classified.
	Reset()
	// Settle quiesces the device after a retryable failure (e.g. a stream
	// synchronize), before any recovery accounting.
	Settle()
	// Degrade runs the pass through the sequential per-batch ladder.
	Degrade() error
}

// Runner executes batches and passes under the resilience ladder,
// accounting every recovery action in Rec and tracing it through Obs.
type Runner struct {
	Dev            *gpusim.Device
	Obs            *obs.Recorder
	Rec            *faults.Recovery
	Policy         Policy
	NoHostFallback bool
}

// noteRetry classifies a retryable fault, records the recovery action and
// burns the attempt's exponential backoff on the virtual clock.
func (r *Runner) noteRetry(err error, attempt int) {
	switch {
	case errors.Is(err, gpusim.ErrTransferFault):
		r.Rec.TransferRetries++
		RecoveryInstant(r.Dev, r.Obs, "retry:transfer")
	case errors.Is(err, gpusim.ErrLaunchFault):
		r.Rec.KernelRetries++
		RecoveryInstant(r.Dev, r.Obs, "retry:kernel")
	default:
		r.Rec.OOMRetries++
		RecoveryInstant(r.Dev, r.Obs, "retry:oom")
	}
	r.backoff(attempt)
}

func (r *Runner) backoff(attempt int) {
	back := r.Policy.BackoffNs * float64(int64(1)<<attempt)
	ChargeHost(r.Dev, r.Obs, obs.NameBackoff, back)
	r.Rec.BackoffNs += back
}

// Run executes one batch through the ladder: retry with backoff while the
// budget lasts, then split on persistent OOM (each half gets a fresh
// budget), then degrade to the host fallback — or fail typed under
// NoHostFallback.
func (r *Runner) Run(b Batch) error { return r.run(b, 0) }

func (r *Runner) run(b Batch, depth int) error {
	budget := r.Policy.Retries
	for attempt := 0; ; attempt++ {
		err := b.Attempt()
		if err == nil {
			return nil
		}
		if !RetryableFault(err) {
			return err
		}
		if attempt < budget {
			r.noteRetry(err, attempt)
			continue
		}
		// Budget exhausted. Persistent OOM: shrink the footprint and give
		// each half a fresh budget.
		if errors.Is(err, gpusim.ErrOutOfDeviceMemory) && depth < MaxSplitDepth {
			if left, right, ok := b.Split(); ok {
				r.Rec.OOMSplits++
				RecoveryInstant(r.Dev, r.Obs, "oom-split")
				if err := r.run(left, depth+1); err != nil {
					return err
				}
				return r.run(right, depth+1)
			}
		}
		if r.NoHostFallback {
			return b.WrapErr(budget, err)
		}
		r.Rec.HostFallbacks++
		RecoveryInstant(r.Dev, r.Obs, "host-fallback")
		b.Fallback()
		return nil
	}
}

// RunPass executes a pipelined pass through the restart ladder: a faulted
// pass is reset and retried with backoff, and when restarts exhaust the
// budget it degrades to the consumer's sequential per-batch ladder (which
// recovers per batch, splits on OOM and can fall back to the host, so it
// completes whenever recovery is possible at all).
func (r *Runner) RunPass(p Pass) error {
	budget := r.Policy.Retries
	for attempt := 0; ; attempt++ {
		err := p.Attempt()
		if err == nil {
			return nil
		}
		p.Reset()
		if !RetryableFault(err) {
			return err
		}
		p.Settle()
		if attempt >= budget {
			r.Rec.Restarts++
			RecoveryInstant(r.Dev, r.Obs, "degrade-sequential")
			return p.Degrade()
		}
		r.Rec.Restarts++
		RecoveryInstant(r.Dev, r.Obs, "restart")
		r.backoff(attempt)
	}
}
