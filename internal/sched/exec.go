package sched

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// The pipelined executor. Both pipelines flatten their pass into a stream
// of work items round-robined across N independent lanes (stream + device
// staging); enqueuing item i only waits for its lane's previous occupant
// (item i-N) to drain, so the next item's host→device staging and kernels
// overlap the previous items' device→host transfers and CPU-side merging.
// Items drain strictly in submission order for any lane count — which is
// exactly the sequential loop's nesting — so tuple emission and split-list
// merging happen in the identical order and outputs are bit-identical.

// LaneWorkload adapts one pass to RunLanes. The workload owns its lane
// resources (buffers, streams) and per-item host staging; RunLanes owns the
// ordering contract and the per-lane observability spans.
type LaneWorkload interface {
	// Prepare stages item's host-side inputs. It runs before the item's
	// lane is drained, preserving the staging-before-drain charge order of
	// the original loops; it must be idempotent across items that share
	// staged state (e.g. trial groups of one batch).
	Prepare(item int)
	// Enqueue submits item's device work on lane asynchronously.
	Enqueue(item, lane int) error
	// Complete waits for lane's stream and consumes item's results.
	Complete(item, lane int)
	// SpanName labels item's span on its lane track (recording only).
	SpanName(item int) string
}

// RunLanes drives items 0..n-1 through the workload across the given
// number of lanes. Each lane's span track is "lane<i>", matching the
// original two-lane schedulers.
func RunLanes(dev *gpusim.Device, r *obs.Recorder, n, lanes int, w LaneWorkload) error {
	if lanes < 1 {
		return fmt.Errorf("sched: RunLanes with %d lanes", lanes)
	}
	inFlight := make([]int, lanes)
	t0s := make([]float64, lanes)
	for i := range inFlight {
		inFlight[i] = -1
	}
	drain := func(lane int) {
		item := inFlight[lane]
		if item < 0 {
			return
		}
		w.Complete(item, lane)
		if r.Enabled() {
			r.Span(fmt.Sprintf("lane%d", lane), w.SpanName(item), t0s[lane], dev.HostTime())
		}
		inFlight[lane] = -1
	}
	for item := 0; item < n; item++ {
		lane := item % lanes
		w.Prepare(item)
		drain(lane)
		if err := w.Enqueue(item, lane); err != nil {
			return err
		}
		if r.Enabled() {
			t0s[lane] = dev.HostTime()
		}
		inFlight[lane] = item
	}
	// Tail: drain the remaining in-flight items in item order.
	for k := 0; k < lanes; k++ {
		drain((n + k) % lanes)
	}
	return nil
}
