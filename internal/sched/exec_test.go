package sched

import (
	"errors"
	"fmt"
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// traceWork records the executor's callback order.
type traceWork struct {
	calls  []string
	failAt int // Enqueue error at this item (-1 = never)
	inLane map[int]int
}

func (w *traceWork) Prepare(item int) { w.calls = append(w.calls, fmt.Sprintf("P%d", item)) }
func (w *traceWork) Enqueue(item, lane int) error {
	w.calls = append(w.calls, fmt.Sprintf("E%d", item))
	w.inLane[item] = lane
	if item == w.failAt {
		return gpusim.ErrTransferFault
	}
	return nil
}
func (w *traceWork) Complete(item, lane int)  { w.calls = append(w.calls, fmt.Sprintf("C%d", item)) }
func (w *traceWork) SpanName(item int) string { return fmt.Sprintf("item%d", item) }

// TestRunLanesOrdering: for any lane count, items complete strictly in
// submission order, each item's lane is item mod lanes, Prepare precedes
// Enqueue, and a lane is drained before its next occupant enqueues.
func TestRunLanesOrdering(t *testing.T) {
	for _, lanes := range []int{1, 2, 3, 4} {
		for _, n := range []int{0, 1, 2, 5, 9} {
			dev := gpusim.MustNew(gpusim.K20Config())
			w := &traceWork{failAt: -1, inLane: map[int]int{}}
			if err := RunLanes(dev, nil, n, lanes, w); err != nil {
				t.Fatalf("lanes=%d n=%d: %v", lanes, n, err)
			}
			pos := map[string]int{}
			for i, c := range w.calls {
				pos[c] = i
			}
			last := -1
			for item := 0; item < n; item++ {
				if w.inLane[item] != item%lanes {
					t.Fatalf("lanes=%d: item %d on lane %d", lanes, item, w.inLane[item])
				}
				c, ok := pos[fmt.Sprintf("C%d", item)]
				if !ok || c < last {
					t.Fatalf("lanes=%d n=%d: completes out of order: %v", lanes, n, w.calls)
				}
				last = c
				if pos[fmt.Sprintf("P%d", item)] > pos[fmt.Sprintf("E%d", item)] {
					t.Fatalf("lanes=%d: item %d enqueued before Prepare: %v", lanes, item, w.calls)
				}
				if prev := item - lanes; prev >= 0 {
					if pos[fmt.Sprintf("C%d", prev)] > pos[fmt.Sprintf("E%d", item)] {
						t.Fatalf("lanes=%d: item %d enqueued before lane drained item %d: %v",
							lanes, item, prev, w.calls)
					}
				}
			}
		}
	}
}

// TestRunLanesEnqueueError: an enqueue failure surfaces immediately.
func TestRunLanesEnqueueError(t *testing.T) {
	dev := gpusim.MustNew(gpusim.K20Config())
	w := &traceWork{failAt: 3, inLane: map[int]int{}}
	err := RunLanes(dev, nil, 6, 2, w)
	if !errors.Is(err, gpusim.ErrTransferFault) {
		t.Fatalf("got %v", err)
	}
}

// TestRunLanesBadLaneCount: zero lanes is a programming error.
func TestRunLanesBadLaneCount(t *testing.T) {
	dev := gpusim.MustNew(gpusim.K20Config())
	if err := RunLanes(dev, nil, 1, 0, &traceWork{failAt: -1, inLane: map[int]int{}}); err == nil {
		t.Fatal("0 lanes accepted")
	}
}

// TestRunLanesSpans: with a recorder wired, each item lands one span on its
// lane's track.
func TestRunLanesSpans(t *testing.T) {
	dev := gpusim.MustNew(gpusim.K20Config())
	rec := obs.New()
	w := &traceWork{failAt: -1, inLane: map[int]int{}}
	if err := RunLanes(dev, rec, 4, 2, w); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, sp := range rec.Spans() {
		counts[sp.Track]++
	}
	if counts["lane0"] != 2 || counts["lane1"] != 2 {
		t.Fatalf("lane spans: %v", counts)
	}
}
