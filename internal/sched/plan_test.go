package sched

import (
	"fmt"
	"math/rand"
	"testing"
)

// addSizer is the simplest Sizer: additive per-item weights, no per-batch
// state (internal/core's pieces behave like this).
type addSizer struct{ w []int }

func (z *addSizer) Reset()              {}
func (z *addSizer) Cost(k int) int      { return z.w[k] }
func (z *addSizer) Commit(int)          {}
func (z *addSizer) Fail(k, n int) error { return fmt.Errorf("item %d needs %d", k, n) }

// dedupSizer models internal/pgraph's sequence sharing: each item carries
// two resource IDs, and a resource already committed in the open batch is
// free the second time.
type dedupSizer struct {
	res  [][2]int
	cost []int
	in   map[int]bool
}

func (z *dedupSizer) Reset() { clear(z.in) }
func (z *dedupSizer) Cost(k int) int {
	need := 1
	if !z.in[z.res[k][0]] {
		need += z.cost[z.res[k][0]]
	}
	if r := z.res[k][1]; r != z.res[k][0] && !z.in[r] {
		need += z.cost[r]
	}
	return need
}
func (z *dedupSizer) Commit(k int) {
	z.in[z.res[k][0]] = true
	z.in[z.res[k][1]] = true
}
func (z *dedupSizer) Fail(k, n int) error { return fmt.Errorf("item %d needs %d", k, n) }

// checkSpans asserts the planner's core contract: spans cover 0..n in
// order, each item exactly once, and every span's recomputed incremental
// cost stays within budget.
func checkSpans(t *testing.T, spans []Span, n, budget int, sz Sizer) {
	t.Helper()
	at := 0
	for i, sp := range spans {
		if sp.Lo != at || sp.Hi <= sp.Lo {
			t.Fatalf("span %d is [%d,%d), want contiguous from %d", i, sp.Lo, sp.Hi, at)
		}
		at = sp.Hi
		sz.Reset()
		cost := 0
		for k := sp.Lo; k < sp.Hi; k++ {
			cost += sz.Cost(k)
			sz.Commit(k)
		}
		if cost > budget {
			t.Fatalf("span %d [%d,%d) costs %d > budget %d", i, sp.Lo, sp.Hi, cost, budget)
		}
	}
	if at != n {
		t.Fatalf("spans cover 0..%d, want 0..%d", at, n)
	}
}

// TestPlanSpansProperties drives the planner over random weights, budgets
// and both sizer shapes: every plan must stay within budget and cover the
// items exactly once, in order.
func TestPlanSpansProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60) + 1
		w := make([]int, n)
		maxW := 0
		for i := range w {
			w[i] = rng.Intn(50) + 1
			maxW = max(maxW, w[i])
		}
		budget := maxW + rng.Intn(120)
		sz := &addSizer{w: w}
		spans, err := PlanSpans(n, budget, sz)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSpans(t, spans, n, budget, sz)
	}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60) + 1
		nres := rng.Intn(20) + 2
		z := &dedupSizer{res: make([][2]int, n), cost: make([]int, nres), in: map[int]bool{}}
		maxPair := 0
		for i := range z.cost {
			z.cost[i] = rng.Intn(30) + 1
		}
		for i := range z.res {
			z.res[i] = [2]int{rng.Intn(nres), rng.Intn(nres)}
			maxPair = max(maxPair, 1+z.cost[z.res[i][0]]+z.cost[z.res[i][1]])
		}
		budget := maxPair + rng.Intn(100)
		spans, err := PlanSpans(n, budget, z)
		if err != nil {
			t.Fatalf("dedup trial %d: %v", trial, err)
		}
		checkSpans(t, spans, n, budget, z)
	}
}

// TestPlanSpansTightBudget: at budget == the largest single item, the plan
// must degrade gracefully (many small batches), never error.
func TestPlanSpansTightBudget(t *testing.T) {
	w := []int{3, 7, 2, 7, 1, 5}
	sz := &addSizer{w: w}
	spans, err := PlanSpans(len(w), 7, sz)
	if err != nil {
		t.Fatal(err)
	}
	checkSpans(t, spans, len(w), 7, sz)
	// One under the max item must fail with the sizer's typed error.
	if _, err := PlanSpans(len(w), 6, sz); err == nil {
		t.Fatal("budget below the largest item did not error")
	}
}

// TestPlanSpansEmpty: zero items plan to zero spans.
func TestPlanSpansEmpty(t *testing.T) {
	spans, err := PlanSpans(0, 10, &addSizer{})
	if err != nil || len(spans) != 0 {
		t.Fatalf("got %v, %v; want no spans, nil", spans, err)
	}
}

// FuzzPlanBatches cross-checks PlanSpans against an independent oracle on
// additive weights: walk the items accumulating weight, close a batch
// exactly when the next item would overflow.
func FuzzPlanBatches(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(10))
	f.Add([]byte{255, 255}, uint8(255))
	f.Add([]byte{1}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, b uint8) {
		if len(data) == 0 || len(data) > 256 {
			return
		}
		budget := int(b)
		w := make([]int, len(data))
		maxW := 0
		for i, c := range data {
			w[i] = int(c)%atLeastOne(budget) + 1
			maxW = max(maxW, w[i])
		}
		if maxW > budget {
			return
		}
		spans, err := PlanSpans(len(w), budget, &addSizer{w: w})
		if err != nil {
			t.Fatalf("feasible weights errored: %v", err)
		}
		var oracle []Span
		lo, cost := 0, 0
		for k, wk := range w {
			if k > lo && cost+wk > budget {
				oracle = append(oracle, Span{lo, k})
				lo, cost = k, 0
			}
			cost += wk
		}
		oracle = append(oracle, Span{lo, len(w)})
		if len(spans) != len(oracle) {
			t.Fatalf("got %d spans, oracle %d", len(spans), len(oracle))
		}
		for i := range spans {
			if spans[i] != oracle[i] {
				t.Fatalf("span %d: got %v, oracle %v", i, spans[i], oracle[i])
			}
		}
	})
}

func atLeastOne(b int) int {
	if b < 1 {
		return 1
	}
	return b
}
