package sched

import (
	"math"
	"testing"

	"gpclust/internal/gpusim"
)

// TestModelTransferNs: transfer cost is setup plus bytes over bandwidth,
// and zero-word DMAs still pay the setup (gpusim charges it).
func TestModelTransferNs(t *testing.T) {
	cfg := gpusim.K20Config()
	m := NewModel(cfg)
	words := 1 << 20
	want := cfg.TransferSetupNs + float64(int64(words)*gpusim.WordBytes)/cfg.H2DBandwidthBps*1e9
	if got := m.TransferNs(words, true); math.Abs(got-want) > 1e-6 {
		t.Fatalf("h2d: got %g want %g", got, want)
	}
	if d2h, h2d := m.TransferNs(words, false), m.TransferNs(words, true); d2h <= h2d {
		t.Fatalf("K20 readback should be slower: d2h %g <= h2d %g", d2h, h2d)
	}
	if got := m.TransferNs(0, true); got != cfg.TransferSetupNs {
		t.Fatalf("zero-word copy: got %g want setup %g", got, cfg.TransferSetupNs)
	}
}

// TestModelCalibration: CalibrateKernel normalizes out the probe's
// occupancy penalty so KernelNs re-applies it for any launch shape.
func TestModelCalibration(t *testing.T) {
	cfg := gpusim.K20Config()
	m := NewModel(cfg)
	sat := cfg.SaturationThreads
	// Probe at half saturation: the simulator would charge 2× the
	// full-occupancy body for the same work.
	m.CalibrateKernel("k", 2000, 100, sat/2)
	// At full saturation the same 100 units cost the normalized 1000.
	if got, want := m.KernelNs("k", 100, sat), cfg.KernelLaunchNs+1000; math.Abs(got-want) > 1e-9 {
		t.Fatalf("full occupancy: got %g want %g", got, want)
	}
	// Back at the probe's shape the prediction reproduces the probe.
	if got, want := m.KernelNs("k", 100, sat/2), cfg.KernelLaunchNs+2000; math.Abs(got-want) > 1e-9 {
		t.Fatalf("probe shape: got %g want %g", got, want)
	}
	// Uncalibrated kernels predict at launch cost only.
	if got := m.KernelNs("missing", 100, sat); got != cfg.KernelLaunchNs {
		t.Fatalf("uncalibrated: got %g", got)
	}
	// Degenerate probes are ignored.
	m.CalibrateKernel("bad", 0, 100, sat)
	m.CalibrateKernel("bad", 100, 0, sat)
	if _, ok := m.KernelNsPerUnit["bad"]; ok {
		t.Fatal("degenerate probe calibrated")
	}
}

// TestSatFactor pins the occupancy penalty's edges.
func TestSatFactor(t *testing.T) {
	m := NewModel(gpusim.K20Config())
	sat := m.Cfg.SaturationThreads
	if got := m.SatFactor(sat); got != 1 {
		t.Fatalf("at saturation: %g", got)
	}
	if got := m.SatFactor(2 * sat); got != 1 {
		t.Fatalf("above saturation: %g", got)
	}
	if got := m.SatFactor(sat / 4); got != 4 {
		t.Fatalf("quarter occupancy: %g", got)
	}
	if got := m.SatFactor(0); got != 1 {
		t.Fatalf("zero threads: %g", got)
	}
}

// TestSimMatchesDeviceCopies replays a mixed sync/async copy schedule on a
// real device and through Sim: the predicted host time must match the
// device's virtual clock exactly (the model's transfer arithmetic and
// engine scheduling are the same equations).
func TestSimMatchesDeviceCopies(t *testing.T) {
	cfg := gpusim.K20Config()
	dev := gpusim.MustNew(cfg)
	buf, err := dev.Malloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	s0, s1 := dev.NewStream(), dev.NewStream()
	data := make([]uint32, 1<<14)
	out := make([]uint32, 1<<12)

	sim := NewSim(NewModel(cfg), 2)

	// Sync upload.
	if err := dev.CopyH2D(buf, 0, data); err != nil {
		t.Fatal(err)
	}
	sim.Copy(-1, len(data), true)
	// Host-side staging work between ops.
	dev.AdvanceHost(12345)
	sim.HostWork(12345)
	// Two async uploads racing on the copy engine.
	if err := dev.CopyH2DAsync(s0, buf, 0, data); err != nil {
		t.Fatal(err)
	}
	sim.Copy(0, len(data), true)
	if err := dev.CopyH2DAsync(s1, buf, 1<<14, data); err != nil {
		t.Fatal(err)
	}
	sim.Copy(1, len(data), true)
	// Async readback queued behind lane 0's upload.
	if err := dev.CopyD2HAsync(s0, out, buf, 0); err != nil {
		t.Fatal(err)
	}
	sim.Copy(0, len(out), false)
	// Drain lane 0, then everything.
	s0.Synchronize()
	sim.SyncLane(0)
	dev.Synchronize()
	sim.SyncAll()

	if got, want := sim.Host, dev.HostTime(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sim predicts %g, device charged %g", got, want)
	}
}

// TestSimKernelScheduling: kernels serialize on the compute engine and a
// sync launch stalls the host; an async launch does not.
func TestSimKernelScheduling(t *testing.T) {
	m := NewModel(gpusim.K20Config())
	sim := NewSim(m, 1)
	sim.KernelRawNs(0, 1000) // async: host unmoved
	if sim.Host != 0 || sim.ComputeFree != 1000 || sim.Ready[0] != 1000 {
		t.Fatalf("async kernel: host %g compute %g ready %g", sim.Host, sim.ComputeFree, sim.Ready[0])
	}
	sim.KernelRawNs(-1, 500) // sync: waits for the engine, stalls the host
	if sim.Host != 1500 || sim.ComputeFree != 1500 {
		t.Fatalf("sync kernel: host %g compute %g", sim.Host, sim.ComputeFree)
	}
	// A sync copy waits for in-flight compute (default-stream ordering).
	sim2 := NewSim(m, 0)
	sim2.KernelRawNs(-1, 0) // no-op, host at 0
	sim2.ComputeFree = 2000 // pretend async compute in flight
	sim2.Copy(-1, 0, true)
	if want := 2000 + m.Cfg.TransferSetupNs; sim2.Host != want {
		t.Fatalf("sync copy ignored compute: host %g want %g", sim2.Host, want)
	}
}
