package sched

import (
	"fmt"

	"gpclust/internal/obs"
)

// The auto-tuner. A consumer enumerates candidate batch plans — a geometric
// sweep of word budgets crossed with feasible lane counts — predicts each
// candidate's virtual time by replaying its operation sequence through Sim,
// and commits to the argmin. Prediction runs in plain Go against a scratch
// calibration (never the real device), so planning itself charges zero
// virtual time: the auto-tuned run's clock only ever pays for the plan it
// chose.

// Candidate is one batch plan under consideration.
type Candidate struct {
	BudgetWords int  // per-batch device footprint cap
	Lanes       int  // 1 = sequential, ≥2 = pipelined across that many lanes
	Fused       bool // run the fused hash+select kernel instead of transform+top-s
}

// PlanReport describes the batch plan a scheduling pass ran, for
// Stats/Result reporting and the bench drift gate.
type PlanReport struct {
	AutoTuned   bool    `json:"auto_tuned"`
	BudgetWords int     `json:"budget_words"`
	Lanes       int     `json:"lanes"`
	Fused       bool    `json:"fused"` // the plan runs the fused hash+select kernel
	Batches     int     `json:"batches"`
	PredictedNs float64 `json:"predicted_ns"` // cost-model prediction for the chosen plan
	ActualNs    float64 `json:"actual_ns"`    // measured virtual time of the scheduler window
}

// Add accumulates another pass's report (multi-pass pipelines report the
// sum of their scheduler windows; plan shape fields keep the first pass's
// values, which dominates — pass 2 inputs are far smaller).
func (p *PlanReport) Add(q PlanReport) {
	if p.Batches == 0 {
		p.AutoTuned, p.BudgetWords, p.Lanes, p.Batches = q.AutoTuned, q.BudgetWords, q.Lanes, q.Batches
		p.Fused = q.Fused
	}
	p.PredictedNs += q.PredictedNs
	p.ActualNs += q.ActualNs
}

// DriftFrac is the relative error of the prediction against the measured
// window, or 0 when nothing was measured.
func (p PlanReport) DriftFrac() float64 {
	if p.ActualNs <= 0 || p.PredictedNs <= 0 {
		return 0
	}
	d := (p.PredictedNs - p.ActualNs) / p.ActualNs
	if d < 0 {
		return -d
	}
	return d
}

// Budgets returns the geometric budget sweep for the auto-tuner: maxB
// halved repeatedly while it stays ≥ minB, capped at 8 candidates. maxB is
// always included (the largest feasible batches are where the transfer
// setup cost amortizes best — the single-batch plan BENCH_pr3 showed
// beating the 3-batch plan ~2×).
func Budgets(maxB, minB int) []int {
	if maxB < minB {
		maxB = minB
	}
	var out []int
	for b := maxB; b >= minB && len(out) < 8; b /= 2 {
		out = append(out, b)
	}
	if len(out) == 0 {
		out = append(out, maxB)
	}
	return out
}

// Pick returns the candidate with the lowest predicted virtual time.
// predict returns ok=false for an infeasible candidate (e.g. its lanes'
// staging cannot fit device memory beside the budget). Ties keep the
// earliest candidate, so the choice is a deterministic function of the
// candidate order. ok is false when no candidate is feasible.
func Pick(cands []Candidate, predict func(Candidate) (float64, bool)) (Candidate, float64, bool) {
	var best Candidate
	bestNs := 0.0
	found := false
	for _, c := range cands {
		ns, ok := predict(c)
		if !ok {
			continue
		}
		if !found || ns < bestNs {
			best, bestNs, found = c, ns, true
		}
	}
	return best, bestNs, found
}

// RecordPlan registers the chosen plan in the observability layer under the
// given metric prefix (pure observation: gauges only).
func RecordPlan(r *obs.Recorder, prefix string, p PlanReport) {
	if !r.Enabled() {
		return
	}
	auto := 0.0
	if p.AutoTuned {
		auto = 1
	}
	r.Gauge(prefix+"_plan_autotuned", "1 when the batch plan was auto-tuned.").Set(auto)
	r.Gauge(prefix+"_plan_budget_words", "Per-batch device budget of the chosen plan.").Set(float64(p.BudgetWords))
	r.Gauge(prefix+"_plan_lanes", "Pipeline lanes of the chosen plan (1 = sequential).").Set(float64(p.Lanes))
	fused := 0.0
	if p.Fused {
		fused = 1
	}
	r.Gauge(prefix+"_plan_fused", "1 when the plan runs the fused hash+select kernel.").Set(fused)
	r.Gauge(prefix+"_plan_batches", "Batches the chosen plan scheduled.").Set(float64(p.Batches))
	r.Gauge(prefix+"_plan_predicted_ns", "Cost-model predicted virtual time of the plan.").Set(p.PredictedNs)
	r.Gauge(prefix+"_plan_actual_ns", "Measured virtual time of the scheduler window.").Set(p.ActualNs)
}

// String renders the report for CLI summaries.
func (p PlanReport) String() string {
	mode := "fixed"
	if p.AutoTuned {
		mode = "auto"
	}
	kernel := "split"
	if p.Fused {
		kernel = "fused"
	}
	return fmt.Sprintf("%s plan: budget=%d words, lanes=%d, kernel=%s, batches=%d, predicted=%.2fms, actual=%.2fms",
		mode, p.BudgetWords, p.Lanes, kernel, p.Batches, p.PredictedNs/1e6, p.ActualNs/1e6)
}
