package sched

import "gpclust/internal/gpusim"

// The cost model. Transfer costs come straight from the device config
// (gpusim charges TransferSetupNs + bytes/bandwidth for every DMA, which is
// why small batches lose: the fixed setup dominates). Kernel costs are
// calibrated empirically: a consumer runs a small probe of its real kernels
// on a scratch device with the same config, measures the simulator's charge
// and normalizes it to "body nanoseconds per work unit at full occupancy" —
// so the model tracks whatever the simulator actually charges, including
// its occupancy penalty (a launch with fewer threads than
// SaturationThreads runs at proportionally reduced throughput).
//
// Sim is a discrete-event replica of gpusim's three timelines (host clock,
// copy engine, compute engine, plus per-stream readiness) with the exact
// scheduling rules of scheduleCopy/scheduleKernel/Stream.Synchronize, so a
// predictor that replays a candidate plan's operation sequence gets engine
// overlap — the whole point of the pipelined executor — for free.

// Model predicts virtual-time costs for one device configuration.
type Model struct {
	Cfg gpusim.Config
	// KernelNsPerUnit maps a kernel name to its calibrated body cost per
	// work unit at full occupancy (see CalibrateKernel).
	KernelNsPerUnit map[string]float64
}

// NewModel returns an empty model for the device configuration.
func NewModel(cfg gpusim.Config) *Model {
	return &Model{Cfg: cfg, KernelNsPerUnit: map[string]float64{}}
}

// TransferNs is the cost of moving words in one DMA (gpusim.transferCost).
func (m *Model) TransferNs(words int, h2d bool) float64 {
	bw := m.Cfg.D2HBandwidthBps
	if h2d {
		bw = m.Cfg.H2DBandwidthBps
	}
	return m.Cfg.TransferSetupNs + float64(int64(words)*gpusim.WordBytes)/bw*1e9
}

// SatFactor is the occupancy penalty gpusim applies to a launch of the
// given thread count (grid·block threads).
func (m *Model) SatFactor(threads int) float64 {
	if m.Cfg.SaturationThreads > 0 && threads > 0 && threads < m.Cfg.SaturationThreads {
		return float64(m.Cfg.SaturationThreads) / float64(threads)
	}
	return 1
}

// CalibrateKernel records kernel name's throughput from a measured probe:
// bodyNs is the simulator's charge minus launch overhead for a probe of
// `units` work units launched with `threads` threads. The stored value is
// normalized to full occupancy, so KernelNs can re-apply the exact
// occupancy penalty of any other launch shape.
func (m *Model) CalibrateKernel(name string, bodyNs, units float64, threads int) {
	if units <= 0 || bodyNs <= 0 {
		return
	}
	m.KernelNsPerUnit[name] = bodyNs / m.SatFactor(threads) / units
}

// KernelNs predicts one launch of the named kernel over units work units
// with the given thread count (KernelLaunchNs + occupancy-scaled body).
func (m *Model) KernelNs(name string, units float64, threads int) float64 {
	return m.Cfg.KernelLaunchNs + m.KernelNsPerUnit[name]*units*m.SatFactor(threads)
}

// Sim replays an operation sequence against the model, tracking the same
// timelines gpusim does. Lane < 0 means the synchronous default stream.
type Sim struct {
	M           *Model
	Host        float64   // host thread's position in simulated time
	CopyFree    float64   // when the copy engine is next free
	ComputeFree float64   // when the SM array is next free
	Ready       []float64 // per-lane stream readiness
}

// NewSim returns a fresh simulation with the given lane count.
func NewSim(m *Model, lanes int) *Sim {
	return &Sim{M: m, Ready: make([]float64, max(lanes, 0))}
}

// HostWork advances the host clock (gpusim.AdvanceHost / ChargeHost).
func (s *Sim) HostWork(ns float64) { s.Host += ns }

// Copy replays one DMA of `words` words. Synchronous copies (lane < 0)
// wait for in-flight kernels (default-stream ordering) and stall the host;
// stream copies wait for the lane's prior work and return immediately.
// Both serialize on the single copy engine.
func (s *Sim) Copy(lane, words int, h2d bool) {
	cost := s.M.TransferNs(words, h2d)
	start := s.Host
	if lane >= 0 {
		if s.Ready[lane] > start {
			start = s.Ready[lane]
		}
	} else if s.ComputeFree > start {
		start = s.ComputeFree
	}
	if s.CopyFree > start {
		start = s.CopyFree
	}
	end := start + cost
	s.CopyFree = end
	if lane < 0 {
		s.Host = end
	} else {
		s.Ready[lane] = end
	}
}

// PackedWords returns the words a transfer of `values` values moves at the
// given packed bit width: gpusim.PackedLen when bits > 0, one word per value
// when bits == 0 (unpacked). Predictors price packed uploads through this so
// a candidate plan's transfer volume matches the bytes the device run will
// actually move.
func PackedWords(values, bits int) int {
	if bits > 0 {
		return gpusim.PackedLen(values, bits)
	}
	return values
}

// CopyPacked replays one DMA of `values` values at the given packed bit
// width (0 = unpacked). Identical scheduling to Copy; only the priced word
// count shrinks.
func (s *Sim) CopyPacked(lane, values, bits int, h2d bool) {
	s.Copy(lane, PackedWords(values, bits), h2d)
}

// Kernel replays one launch of the named calibrated kernel. Synchronous
// launches stall the host; stream launches wait for the lane's prior work.
// Both serialize on the compute engine.
func (s *Sim) Kernel(lane int, name string, units float64, threads int) {
	s.KernelRawNs(lane, s.M.KernelNs(name, units, threads))
}

// KernelRawNs replays a kernel launch whose total cost the caller computed
// directly — composite sequences (sort + gather) or lumped calibrations the
// per-unit model cannot price with a single occupancy shape.
func (s *Sim) KernelRawNs(lane int, ns float64) {
	start := s.Host
	if lane >= 0 && s.Ready[lane] > start {
		start = s.Ready[lane]
	}
	if s.ComputeFree > start {
		start = s.ComputeFree
	}
	end := start + ns
	s.ComputeFree = end
	if lane < 0 {
		s.Host = end
	} else {
		s.Ready[lane] = end
	}
}

// SyncLane blocks the host until the lane's enqueued work completes
// (Stream.Synchronize).
func (s *Sim) SyncLane(lane int) {
	if s.Ready[lane] > s.Host {
		s.Host = s.Ready[lane]
	}
}

// SyncAll blocks the host until both engines drain (Device.Synchronize).
func (s *Sim) SyncAll() {
	if s.ComputeFree > s.Host {
		s.Host = s.ComputeFree
	}
	if s.CopyFree > s.Host {
		s.Host = s.CopyFree
	}
}
