package sched

// The batch planner. Both pipelines pack a stream of items (adjacency-list
// pieces, candidate pairs) greedily into batches whose device footprint
// stays within a word budget; what differs is how an item's incremental
// cost is computed — internal/core's pieces are additive, internal/pgraph
// deduplicates sequences shared by pairs in the same batch — so the cost
// accounting is supplied through the Sizer interface and the packing loop
// lives here, once.

// Span is one planned batch: a half-open range of the item order.
type Span struct{ Lo, Hi int }

// Sizer supplies a workload's incremental item costs to PlanSpans. The
// planner drives it like a state machine: Reset opens an empty batch,
// Cost(k) quotes item k's incremental footprint against the current batch
// state, and Commit(k) adds the item (so later Cost calls may quote less —
// e.g. a sequence already uploaded for an earlier pair in the batch).
type Sizer interface {
	// Reset clears per-batch state for a new, empty batch.
	Reset()
	// Cost returns item k's incremental cost in the current batch.
	Cost(k int) int
	// Commit records item k as packed into the current batch.
	Commit(k int)
	// Fail formats the error for an item that exceeds the whole budget on
	// an empty batch (need is the quoted cost).
	Fail(k, need int) error
}

// PlanSpans greedily packs items 0..n-1, in order, into batches whose
// accumulated incremental cost stays within budget. A batch is closed when
// the next item would overflow it; an item that overflows an empty batch is
// an error (the budget cannot hold it at all). Every item lands in exactly
// one span and spans cover 0..n in order — the property tests pin this.
func PlanSpans(n, budget int, sz Sizer) ([]Span, error) {
	var spans []Span
	lo, cost := 0, 0
	sz.Reset()
	for k := 0; k < n; k++ {
		need := sz.Cost(k)
		if k > lo && cost+need > budget {
			spans = append(spans, Span{lo, k})
			lo, cost = k, 0
			sz.Reset()
			need = sz.Cost(k)
		}
		if k == lo && need > budget {
			return nil, sz.Fail(k, need)
		}
		cost += need
		sz.Commit(k)
	}
	if n > lo {
		spans = append(spans, Span{lo, n})
	}
	return spans, nil
}
