// Package serve is the resident clustering service: it builds (or loads) a
// clustered corpus once, keeps the union-find partition, the LSH candidate
// index and the device-resident verifier alive, and serves concurrent
// assign/cluster/dump requests against them — no world re-cluster per
// request.
//
// Architecture: requests are admitted through a bounded queue (full queue →
// typed ErrOverloaded, the backpressure signal) and drained by a single
// scheduler goroutine that coalesces everything queued into one pass: every
// pending insert and query contributes its candidate pairs to ONE merged
// device scoring call through the pgraph batch planner, amortizing the
// per-pass staging cost across requests. All mutation (index inserts,
// verifier growth, union-find Grow/Union) happens on the scheduler
// goroutine; concurrent readers resolve families through the lock-free
// union-find and the committed-state snapshot.
//
// Incremental equals from-scratch: the LSH index emits exactly the batch
// filter's pair set under insertion (per-sequence band keys), acceptance is
// a pairwise threshold, and set union is order-independent — so the served
// partition is identical to re-clustering the union corpus from scratch
// with the same Filter "lsh" configuration. The acceptance tests pin this.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gpclust/internal/align"
	"gpclust/internal/faults"
	"gpclust/internal/obs"
	"gpclust/internal/pgraph"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
	"gpclust/internal/unionfind"
)

// ErrOverloaded is the typed admission reject: the bounded queue is full.
// Clients should back off and retry; the HTTP layer maps it to 503.
var ErrOverloaded = errors.New("serve: overloaded: admission queue full")

// ErrClosed reports a request submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// Defaults for the zero-valued Config knobs.
const (
	DefaultQueueCap    = 256
	DefaultMaxCoalesce = 128
	DefaultCacheCap    = 4096
)

// Config configures a Server.
type Config struct {
	// Pgraph is the clustering configuration. Filter must be FilterLSH:
	// only the per-sequence LSH bucketing makes incremental insertion
	// equivalent to a from-scratch re-cluster (the exact and cascade
	// filters depend on global corpus structure and are rejected).
	Pgraph pgraph.Config

	// QueueCap bounds the admission queue; a full queue rejects with
	// ErrOverloaded. 0 means DefaultQueueCap.
	QueueCap int

	// MaxCoalesce caps how many queued requests one scheduler pass merges
	// into a single device scoring call. 0 means DefaultMaxCoalesce.
	MaxCoalesce int

	// CacheCap bounds the assign cache (entries); 0 means DefaultCacheCap,
	// negative disables caching.
	CacheCap int

	// Obs receives the server's metrics (and the verifier's spans if
	// Pgraph.Obs points at it too); nil allocates a private recorder.
	Obs *obs.Recorder
}

// AssignResult reports which resident family a query sequence belongs to.
type AssignResult struct {
	// Assigned is false when no resident sequence passed the similarity
	// threshold (Family and Member are then -1).
	Assigned bool
	// Family is the family's current root sequence index. Roots are stable
	// between commits; a later merge can relabel the family (the epoch
	// mechanism invalidates cached answers when that can have happened).
	Family int
	// Member is the best-scoring resident sequence, MemberID its FASTA id.
	Member   int
	MemberID string
	// Score is the Smith–Waterman score against Member.
	Score int32
}

// ClusterResult reports an incremental insert.
type ClusterResult struct {
	// Indices are the resident indices the inserted sequences received.
	Indices []int
	// Merges counts how many family merges this request's edges caused.
	Merges int
	// Families is the resident family count after the commit.
	Families int
}

// Stats is a point-in-time snapshot of the served state.
type Stats struct {
	Sequences int
	Families  int
	Epoch     int64
	Recovery  faults.Recovery // fault-recovery actions across all passes
}

type reqKind int

const (
	kindAssign reqKind = iota
	kindCluster
)

type request struct {
	kind reqKind
	seqs []seq.Sequence
	resp chan response
	sw   *sched.Stopwatch
}

type response struct {
	assign  AssignResult
	cluster ClusterResult
	err     error
}

type cacheEntry struct {
	res   AssignResult
	epoch int64
}

// Server is the resident clustering service. Create with New, stop with
// Close. All exported methods are safe for concurrent use.
type Server struct {
	cfg   Config
	shape pgraph.LSHShape
	obs   *obs.Recorder
	met   *metrics

	queue chan *request
	quit  chan struct{}
	done  chan struct{}
	gate  chan struct{} // test hook: when non-nil, each pass blocks on it before draining

	closeMu sync.RWMutex
	closed  bool

	// Scheduler-goroutine-owned state: the verifier (resident encoded corpus
	// + device table), the LSH index, and the running union tally.
	verifier *pgraph.Verifier
	index    *lshIndex
	unions   int64 // successful unions ever; families = sequences - unions

	// Shared state. uf supports concurrent Find against scheduler-side
	// Grow/Union (see unionfind.Concurrent.Grow's contract); epoch counts
	// commits that changed resident state.
	uf    *unionfind.Concurrent
	epoch atomic.Int64

	mu        sync.RWMutex // guards committed, families, recovery
	committed []seq.Sequence
	families  int
	recovery  faults.Recovery

	cacheMu sync.Mutex
	cache   map[string]cacheEntry
}

// New validates the configuration, readies the resident verifier (on the
// GPU backend this uploads the substitution table once, through the retry
// ladder) and starts the scheduler.
func New(cfg Config) (*Server, error) {
	return newServer(cfg, nil)
}

func newServer(cfg Config, gate chan struct{}) (*Server, error) {
	shape, err := pgraph.ResolveLSHShape(cfg.Pgraph)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	v, err := pgraph.NewVerifier(cfg.Pgraph)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxCoalesce <= 0 {
		cfg.MaxCoalesce = DefaultMaxCoalesce
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = DefaultCacheCap
	}
	rec := cfg.Obs
	if rec == nil {
		rec = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		shape:    shape,
		obs:      rec,
		met:      newMetrics(rec),
		queue:    make(chan *request, cfg.QueueCap),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		gate:     gate,
		verifier: v,
		index:    newLSHIndex(shape, cfg.Pgraph.MinExactMatch),
		uf:       unionfind.NewConcurrent(0),
		cache:    make(map[string]cacheEntry),
	}
	s.met.queueCap.Set(float64(cfg.QueueCap))
	go s.loop()
	return s, nil
}

// Close stops admission, lets the scheduler serve everything already
// queued, and releases the device state. Safe to call twice.
func (s *Server) Close() {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	if !already {
		close(s.quit)
	}
	s.closeMu.Unlock()
	<-s.done
	if !already {
		s.verifier.Close()
	}
}

// Assign reports which resident family the query belongs to. Identical
// queries since the last state-changing commit are answered from the
// assign cache without touching the scheduler.
func (s *Server) Assign(q seq.Sequence) (AssignResult, error) {
	sw := sched.NewStopwatch()
	if res, ok := s.cacheGet(string(q.Residues)); ok {
		s.met.cacheHits.Inc()
		s.met.assignLatency.Observe(float64(sw.Total()))
		return res, nil
	}
	s.met.cacheMisses.Inc()
	r := &request{kind: kindAssign, seqs: []seq.Sequence{q}, resp: make(chan response, 1), sw: sw}
	if err := s.submit(r); err != nil {
		return AssignResult{}, err
	}
	out := <-r.resp
	return out.assign, out.err
}

// Cluster inserts a batch of sequences incrementally: they are bucketed
// into the resident index, their candidate pairs verified in the next
// coalesced device pass, and the accepted edges union-merged into the
// standing partition — never a world re-cluster.
func (s *Server) Cluster(seqs []seq.Sequence) (ClusterResult, error) {
	if len(seqs) == 0 {
		return ClusterResult{Families: s.Stats().Families}, nil
	}
	r := &request{kind: kindCluster, seqs: seqs, resp: make(chan response, 1), sw: sched.NewStopwatch()}
	if err := s.submit(r); err != nil {
		return ClusterResult{}, err
	}
	out := <-r.resp
	return out.cluster, out.err
}

// Partition returns each committed sequence's current family root — the
// label set the equivalence tests compare against a from-scratch Build.
func (s *Server) Partition() []int32 {
	s.mu.RLock()
	n := len(s.committed)
	s.mu.RUnlock()
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(s.uf.Find(i))
	}
	return out
}

// Dump returns the members of the family containing the given resident
// sequence index, with their indices.
func (s *Server) Dump(member int) ([]seq.Sequence, []int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if member < 0 || member >= len(s.committed) {
		return nil, nil, fmt.Errorf("serve: no resident sequence %d (have %d)", member, len(s.committed))
	}
	root := s.uf.Find(member)
	var out []seq.Sequence
	var ids []int
	for i := range s.committed {
		if s.uf.Find(i) == root {
			out = append(out, s.committed[i])
			ids = append(ids, i)
		}
	}
	return out, ids, nil
}

// Stats snapshots the served state.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Sequences: len(s.committed),
		Families:  s.families,
		Epoch:     s.epoch.Load(),
		Recovery:  s.recovery,
	}
}

// Recorder returns the metrics recorder (for /metrics and tests).
func (s *Server) Recorder() *obs.Recorder { return s.obs }

func (s *Server) submit(r *request) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.queue <- r:
		s.met.requests.Inc()
		s.met.queueDepth.Set(float64(len(s.queue)))
		return nil
	default:
		s.met.rejected.Inc()
		return ErrOverloaded
	}
}

func (s *Server) cacheGet(key string) (AssignResult, bool) {
	if s.cfg.CacheCap < 0 {
		return AssignResult{}, false
	}
	now := s.epoch.Load()
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	e, ok := s.cache[key]
	if !ok {
		return AssignResult{}, false
	}
	if e.epoch != now {
		// A commit changed resident state since this answer was computed:
		// the family may have merged or a closer member arrived. Drop it.
		delete(s.cache, key)
		return AssignResult{}, false
	}
	return e.res, true
}

func (s *Server) cachePut(key string, res AssignResult, epoch int64) {
	if s.cfg.CacheCap < 0 {
		return
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if len(s.cache) >= s.cfg.CacheCap {
		return
	}
	s.cache[key] = cacheEntry{res: res, epoch: epoch}
}

// next blocks for the next request; false means quit was signalled.
func (s *Server) next() (*request, bool) {
	select {
	case r := <-s.queue:
		return r, true
	case <-s.quit:
		return nil, false
	}
}

// drain non-blockingly appends queued requests up to the coalescing cap.
func (s *Server) drain(reqs []*request) []*request {
	for len(reqs) < s.cfg.MaxCoalesce {
		select {
		case r := <-s.queue:
			reqs = append(reqs, r)
		default:
			return reqs
		}
	}
	return reqs
}

// loop is the scheduler: it owns every mutation of the resident state and
// turns each drain into one coalesced pass.
func (s *Server) loop() {
	defer close(s.done)
	for {
		r, ok := s.next()
		if !ok {
			// Closed: serve whatever was admitted before shutdown.
			for {
				reqs := s.drain(nil)
				if len(reqs) == 0 {
					return
				}
				s.runPass(reqs)
			}
		}
		if s.gate != nil {
			<-s.gate
		}
		s.runPass(s.drain([]*request{r}))
	}
}

// passJob is one surviving request's staging record within a pass.
type passJob struct {
	req   *request
	ids   []int32   // verifier indices of the request's sequences
	cands [][]int32 // per sequence, distinct candidate members
}

// runPass serves one coalesced batch of requests: stage every insert and
// query, score ALL their candidate pairs in one merged device pass, then
// commit (or roll back) atomically with respect to concurrent readers.
func (s *Server) runPass(reqs []*request) {
	s.met.passes.Inc()
	s.met.queueDepth.Set(float64(len(s.queue)))

	n0 := s.verifier.Len()
	mark := s.index.mark()

	// Validate up front so staging never partially applies a request.
	var live []*request
	for _, r := range reqs {
		var bad error
		for _, q := range r.seqs {
			if bad = align.ValidateSequence(q.Residues); bad != nil {
				break
			}
		}
		if bad != nil {
			s.respond(r, response{err: fmt.Errorf("serve: %w", bad)})
			continue
		}
		live = append(live, r)
	}

	// Assign candidates come from the pre-pass resident index (a valid
	// serialization: queries run "before" this pass's inserts), so compute
	// them before staging anything.
	var assigns, clusters []*passJob
	for _, r := range live {
		if r.kind != kindAssign {
			continue
		}
		set := s.index.shingles(r.seqs[0].Residues)
		assigns = append(assigns, &passJob{req: r, cands: [][]int32{s.index.candidates(set)}})
	}

	// Stage cluster inserts: indices n0, n0+1, …; candidates include
	// earlier-staged members of the same pass, so inter-request pairs are
	// discovered exactly as a batch filter over the union corpus would.
	for _, r := range live {
		if r.kind != kindCluster {
			continue
		}
		j := &passJob{req: r}
		for _, q := range r.seqs {
			id, err := s.verifier.Add(q) // cannot fail: validated above
			if err != nil {
				panic(fmt.Sprintf("serve: validated sequence rejected: %v", err))
			}
			j.ids = append(j.ids, int32(id))
			j.cands = append(j.cands, s.index.insert(int32(id), s.index.shingles(q.Residues)))
		}
		clusters = append(clusters, j)
	}
	nc := s.verifier.Len() - n0

	// Stage assign queries after the inserts (indices n0+nc, …) so the
	// commit's truncation to n0+nc drops exactly them.
	for _, j := range assigns {
		id, err := s.verifier.Add(j.req.seqs[0])
		if err != nil {
			panic(fmt.Sprintf("serve: validated sequence rejected: %v", err))
		}
		j.ids = []int32{int32(id)}
	}

	// One merged pair list → one priced device pass for the whole batch.
	var pairs []pgraph.Pair
	for _, j := range clusters {
		for i, id := range j.ids {
			for _, m := range j.cands[i] {
				pairs = append(pairs, pgraph.Pair{A: m, B: id})
			}
		}
	}
	for _, j := range assigns {
		for _, m := range j.cands[0] {
			pairs = append(pairs, pgraph.Pair{A: m, B: j.ids[0]})
		}
	}
	scores, batches, err := s.verifier.Score(pairs)
	if err != nil {
		// Fault ladder exhausted (or NoHostFallback): roll the staged state
		// back and fail every request in the pass; resident state is
		// untouched.
		s.index.rollback(mark)
		s.verifier.Truncate(n0)
		for _, j := range append(clusters, assigns...) {
			s.respond(j.req, response{err: fmt.Errorf("serve: verification pass failed: %w", err)})
		}
		return
	}
	s.met.pairs.Add(int64(len(pairs)))
	s.met.batches.Add(int64(batches))

	// Commit: grow the partition, union the accepted edges, publish.
	if nc > 0 {
		s.uf.Grow(n0 + nc)
	}
	edges, merges := 0, 0
	jobMerges := make(map[*passJob]int, len(clusters))
	pi := 0
	for _, j := range clusters {
		for i := range j.ids {
			for range j.cands[i] {
				p, sc := pairs[pi], scores[pi]
				pi++
				if s.verifier.Accept(sc, int(p.A), int(p.B)) {
					edges++
					if s.uf.Union(int(p.A), int(p.B)) {
						merges++
						jobMerges[j]++
					}
				}
			}
		}
	}
	type best struct {
		member int
		score  int32
	}
	bests := make(map[*passJob]best, len(assigns))
	for _, j := range assigns {
		b := best{member: -1}
		for _, m := range j.cands[0] {
			p, sc := pairs[pi], scores[pi]
			pi++
			if !s.verifier.Accept(sc, int(p.A), int(p.B)) {
				continue
			}
			if b.member < 0 || sc > b.score || (sc == b.score && int(m) < b.member) {
				b = best{member: int(m), score: sc}
			}
		}
		bests[j] = b
	}

	s.index.commit()
	s.verifier.Truncate(n0 + nc) // drop the transient assign queries
	s.unions += int64(merges)
	families := (n0 + nc) - int(s.unions)

	s.mu.Lock()
	for _, j := range clusters {
		s.committed = append(s.committed, j.req.seqs...)
	}
	s.families = families
	s.recovery = s.verifier.Recovery()
	s.mu.Unlock()
	if nc > 0 || merges > 0 {
		// Any resident-state change invalidates cached assignments (merges
		// can relabel family roots; inserts can add closer members).
		s.epoch.Add(1)
	}

	s.met.edges.Add(int64(edges))
	s.met.merges.Add(int64(merges))
	s.met.sequences.Set(float64(n0 + nc))
	s.met.families.Set(float64(families))

	// Respond after publication, caching assign answers at the new epoch.
	epochNow := s.epoch.Load()
	for _, j := range clusters {
		ids := make([]int, len(j.ids))
		for i, id := range j.ids {
			ids[i] = int(id)
		}
		s.respond(j.req, response{cluster: ClusterResult{Indices: ids, Merges: jobMerges[j], Families: families}})
	}
	for _, j := range assigns {
		b := bests[j]
		res := AssignResult{Assigned: b.member >= 0, Family: -1, Member: b.member, Score: b.score}
		if b.member >= 0 {
			res.Family = s.uf.Find(b.member)
			res.MemberID = s.committed[b.member].ID
		}
		s.cachePut(string(j.req.seqs[0].Residues), res, epochNow)
		s.respond(j.req, response{assign: res})
	}
}

func (s *Server) respond(r *request, out response) {
	if out.err != nil {
		s.met.failed.Inc()
	}
	if r.kind == kindAssign {
		s.met.assignLatency.Observe(float64(r.sw.Total()))
	} else {
		s.met.clusterLatency.Observe(float64(r.sw.Total()))
	}
	r.resp <- out
}
