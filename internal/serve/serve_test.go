package serve

import (
	"errors"
	"testing"
	"time"

	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
	"gpclust/internal/unionfind"
)

func testMetagenome(t testing.TB, n int) []seq.Sequence {
	t.Helper()
	cfg := seq.DefaultMetagenomeConfig(n)
	cfg.Seed = 7
	m, err := seq.GenerateMetagenome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Seqs
}

func serveConfig() Config {
	p := pgraph.DefaultConfig()
	p.Filter = pgraph.FilterLSH
	return Config{Pgraph: p}
}

// refPartition re-clusters the corpus from scratch with the same pgraph
// configuration and labels each sequence with its component root.
func refPartition(t *testing.T, seqs []seq.Sequence, pcfg pgraph.Config) []int32 {
	t.Helper()
	g, _, err := pgraph.Build(seqs, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	uf := unionfind.New(len(seqs))
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			uf.Union(v, int(u))
		}
	}
	out := make([]int32, len(seqs))
	for i := range out {
		out[i] = int32(uf.Find(i))
	}
	return out
}

// samePartition checks a and b are the same set partition (labels may
// differ; the classes must match bijectively).
func samePartition(t *testing.T, label string, a, b []int32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ: %d vs %d", label, len(a), len(b))
	}
	ab := make(map[int32]int32)
	ba := make(map[int32]int32)
	for i := range a {
		if m, ok := ab[a[i]]; ok && m != b[i] {
			t.Fatalf("%s: element %d splits class %d across %d and %d", label, i, a[i], m, b[i])
		}
		if m, ok := ba[b[i]]; ok && m != a[i] {
			t.Fatalf("%s: element %d joins classes %d and %d into %d", label, i, a[i], m, b[i])
		}
		ab[a[i]] = b[i]
		ba[b[i]] = a[i]
	}
}

// TestIncrementalEqualsFromScratch is the tentpole guarantee: inserting the
// corpus in chunks (with assign queries interleaved, which must not perturb
// state) yields the exact partition of a from-scratch re-cluster of the
// whole corpus.
func TestIncrementalEqualsFromScratch(t *testing.T) {
	corpus := testMetagenome(t, 120)
	cfg := serveConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for lo := 0; lo < len(corpus); lo += 40 {
		hi := min(lo+40, len(corpus))
		res, err := s.Cluster(corpus[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range res.Indices {
			if idx != lo+i {
				t.Fatalf("chunk %d: sequence %d landed at index %d", lo, lo+i, idx)
			}
		}
		// Interleave queries; they must leave resident state untouched.
		if _, err := s.Assign(corpus[lo]); err != nil {
			t.Fatal(err)
		}
	}

	got := s.Partition()
	want := refPartition(t, corpus, cfg.Pgraph)
	samePartition(t, "incremental vs from-scratch", want, got)

	st := s.Stats()
	if st.Sequences != len(corpus) {
		t.Fatalf("Stats.Sequences = %d, want %d", st.Sequences, len(corpus))
	}
	roots := make(map[int32]bool)
	for _, r := range want {
		roots[r] = true
	}
	if st.Families != len(roots) {
		t.Fatalf("Stats.Families = %d, want %d", st.Families, len(roots))
	}
}

// TestIncrementalEqualsFromScratchGPU runs the same guarantee through the
// device-backed verifier with a small batch budget, so a single coalesced
// pass spans several priced device batches.
func TestIncrementalEqualsFromScratchGPU(t *testing.T) {
	corpus := testMetagenome(t, 60)
	cfg := serveConfig()
	cfg.Pgraph.GPU = true
	cfg.Pgraph.GPUBatchWords = 2_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for lo := 0; lo < len(corpus); lo += 20 {
		if _, err := s.Cluster(corpus[lo:min(lo+20, len(corpus))]); err != nil {
			t.Fatal(err)
		}
	}
	host := serveConfig()
	samePartition(t, "gpu incremental vs from-scratch", refPartition(t, corpus, host.Pgraph), s.Partition())
}

// TestAssignMatchesResidentFamily: a query identical to a resident member
// must be assigned to that member's family; a garbage query must not.
func TestAssignMatchesResidentFamily(t *testing.T) {
	corpus := testMetagenome(t, 60)
	cfg := serveConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Cluster(corpus); err != nil {
		t.Fatal(err)
	}
	part := s.Partition()
	res, err := s.Assign(corpus[3])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assigned {
		t.Fatal("query identical to resident sequence 3 was not assigned")
	}
	if int32(res.Family) != part[3] {
		t.Fatalf("assigned to family %d, member 3 is in %d", res.Family, part[3])
	}
	short, err := s.Assign(seq.Sequence{ID: "short", Residues: []byte("AAA")})
	if err != nil {
		t.Fatal(err)
	}
	if short.Assigned {
		t.Fatalf("sub-shingle-length query assigned to family %d", short.Family)
	}
}

// TestAssignCache: identical queries between commits are served from the
// cache; any state-changing commit invalidates it and the fresh answer
// reflects the current partition.
func TestAssignCache(t *testing.T) {
	corpus := testMetagenome(t, 80)
	cfg := serveConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Cluster(corpus[:60]); err != nil {
		t.Fatal(err)
	}
	q := corpus[5]
	first, err := s.Assign(q)
	if err != nil {
		t.Fatal(err)
	}
	misses0 := s.met.cacheMisses.Value()
	hits0 := s.met.cacheHits.Value()
	second, err := s.Assign(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.met.cacheHits.Value() != hits0+1 || s.met.cacheMisses.Value() != misses0 {
		t.Fatalf("repeat query was not a cache hit (hits %d→%d, misses %d→%d)",
			hits0, s.met.cacheHits.Value(), misses0, s.met.cacheMisses.Value())
	}
	if second != first {
		t.Fatalf("cached answer %+v differs from original %+v", second, first)
	}

	// A cluster commit (inserts, possibly merges) must invalidate the cache.
	if _, err := s.Cluster(corpus[60:]); err != nil {
		t.Fatal(err)
	}
	third, err := s.Assign(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.met.cacheMisses.Value() != misses0+1 {
		t.Fatal("post-commit query hit a stale cache entry")
	}
	if !third.Assigned {
		t.Fatal("query lost its family after more inserts")
	}
	// The fresh answer must agree with the current partition.
	part := s.Partition()
	if int32(third.Family) != part[third.Member] {
		t.Fatalf("fresh assign family %d disagrees with partition root %d", third.Family, part[third.Member])
	}
}

// TestBackpressureTypedReject: with a full queue, admission fails fast with
// ErrOverloaded and the rejection counter moves; nothing blocks.
func TestBackpressureTypedReject(t *testing.T) {
	corpus := testMetagenome(t, 12)
	cfg := serveConfig()
	cfg.QueueCap = 1
	gate := make(chan struct{})
	s, err := newServer(cfg, gate)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gate)
		s.Close()
	}()

	done := make([]chan error, 2)
	for i := range done {
		done[i] = make(chan error, 1)
	}
	// First request: the scheduler picks it up and parks at the gate.
	go func() { _, err := s.Cluster(corpus[:4]); done[0] <- err }()
	waitFor(t, "scheduler to take the first request", func() bool {
		return len(s.queue) == 0 && s.met.requests.Value() == 1
	})
	// Second request fills the 1-slot queue.
	go func() { _, err := s.Cluster(corpus[4:8]); done[1] <- err }()
	waitFor(t, "queue to fill", func() bool { return len(s.queue) == 1 })

	// Third request must be rejected, typed, without blocking.
	if _, err := s.Cluster(corpus[8:]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	if s.met.rejected.Value() == 0 {
		t.Fatal("rejection counter did not move")
	}

	// One release suffices: the unblocked pass drains the queued request
	// too and serves both.
	gate <- struct{}{}
	for i, ch := range done {
		if err := <-ch; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
}

// TestPassCoalescing: requests queued while the scheduler is busy are all
// merged into ONE pass (one merged device scoring call), pinned via the
// gate hook and the pass counter.
func TestPassCoalescing(t *testing.T) {
	corpus := testMetagenome(t, 40)
	cfg := serveConfig()
	gate := make(chan struct{})
	s, err := newServer(cfg, gate)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gate)
		s.Close()
	}()

	const clients = 8
	type outcome struct {
		res ClusterResult
		err error
	}
	done := make([]chan outcome, clients)
	for i := 0; i < clients; i++ {
		done[i] = make(chan outcome, 1)
		go func(i int) {
			res, err := s.Cluster(corpus[i*5 : (i+1)*5])
			done[i] <- outcome{res, err}
		}(i)
	}
	// All clients admitted: one held by the scheduler at the gate, the rest
	// queued.
	waitFor(t, "all requests admitted", func() bool {
		return s.met.requests.Value() == clients && len(s.queue) == clients-1
	})
	passes0 := s.met.passes.Value()
	gate <- struct{}{}
	// Clients are served in admission order, not corpus order: arrange the
	// union corpus by the indices each insert actually received.
	arranged := make([]seq.Sequence, len(corpus))
	for i := 0; i < clients; i++ {
		out := <-done[i]
		if out.err != nil {
			t.Fatalf("client %d: %v", i, out.err)
		}
		for k, idx := range out.res.Indices {
			arranged[idx] = corpus[i*5+k]
		}
	}
	if got := s.met.passes.Value() - passes0; got != 1 {
		t.Fatalf("%d requests took %d passes, want 1 coalesced pass", clients, got)
	}
	// Coalescing must not change the outcome.
	samePartition(t, "coalesced vs from-scratch", refPartition(t, arranged, cfg.Pgraph), s.Partition())
}

// TestDumpFamily: Dump returns exactly the family's members.
func TestDumpFamily(t *testing.T) {
	corpus := testMetagenome(t, 40)
	s, err := New(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Cluster(corpus); err != nil {
		t.Fatal(err)
	}
	part := s.Partition()
	seqs, ids, err := s.Dump(0)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i, r := range part {
		if r == part[0] {
			want = append(want, i)
		}
	}
	if len(ids) != len(want) {
		t.Fatalf("Dump(0) returned %d members, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("Dump(0) member %d = %d, want %d", i, id, want[i])
		}
		if seqs[i].ID != corpus[id].ID {
			t.Fatalf("Dump(0) member %d has ID %q, want %q", i, seqs[i].ID, corpus[id].ID)
		}
	}
	if _, _, err := s.Dump(len(corpus)); err == nil {
		t.Fatal("Dump past the resident range did not error")
	}
}

// TestInvalidSequenceRejectedAtomically: a request with one bad residue
// fails whole, leaving resident state untouched.
func TestInvalidSequenceRejectedAtomically(t *testing.T) {
	corpus := testMetagenome(t, 20)
	s, err := New(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Cluster(corpus[:10]); err != nil {
		t.Fatal(err)
	}
	bad := []seq.Sequence{corpus[10], {ID: "bad", Residues: []byte("NOT*VALID")}}
	if _, err := s.Cluster(bad); err == nil {
		t.Fatal("invalid residue accepted")
	}
	if got := s.Stats().Sequences; got != 10 {
		t.Fatalf("failed request changed resident count to %d", got)
	}
	// The survivor must still be insertable and the state coherent.
	if _, err := s.Cluster(corpus[10:]); err != nil {
		t.Fatal(err)
	}
	samePartition(t, "after rejected request", refPartition(t, corpus, s.cfg.Pgraph), s.Partition())
}

// TestClosedServerRejects: requests after Close fail typed; Close is
// idempotent.
func TestClosedServerRejects(t *testing.T) {
	s, err := New(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Assign(seq.Sequence{ID: "q", Residues: []byte("ACDEFGHIKLMNPQRS")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server returned %v, want ErrClosed", err)
	}
	s.Close()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
