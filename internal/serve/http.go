package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"gpclust/internal/seq"
)

// HTTP surface. Request bodies are FASTA; responses are JSON. Admission
// rejects (ErrOverloaded) map to 503 with a Retry-After hint, input errors
// to 400, shutdown to 503.
//
//	POST /assign   one FASTA record  → assignReply
//	POST /cluster  FASTA records     → clusterReply
//	GET  /dump?member=N              → dumpReply (N's whole family)
//	GET  /metrics                    → OpenMetrics text
//	GET  /healthz                    → "ok"

type assignReply struct {
	Assigned bool   `json:"assigned"`
	Family   int    `json:"family"`
	Member   int    `json:"member"`
	MemberID string `json:"member_id,omitempty"`
	Score    int32  `json:"score"`
}

type clusterReply struct {
	Indices  []int `json:"indices"`
	Merges   int   `json:"merges"`
	Families int   `json:"families"`
}

type dumpReply struct {
	Family  int      `json:"family"`
	Members []member `json:"members"`
}

type member struct {
	Index    int    `json:"index"`
	ID       string `json:"id"`
	Residues string `json:"residues"`
}

// Handler returns the server's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/assign", s.handleAssign)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/dump", s.handleDump)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError maps service errors onto status codes.
func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func readFASTA(w http.ResponseWriter, r *http.Request) ([]seq.Sequence, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a FASTA body", http.StatusMethodNotAllowed)
		return nil, false
	}
	seqs, err := seq.ReadFASTA(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(seqs) == 0 {
		http.Error(w, "serve: empty FASTA body", http.StatusBadRequest)
		return nil, false
	}
	return seqs, true
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	seqs, ok := readFASTA(w, r)
	if !ok {
		return
	}
	if len(seqs) != 1 {
		http.Error(w, "serve: /assign takes exactly one FASTA record", http.StatusBadRequest)
		return
	}
	res, err := s.Assign(seqs[0])
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, assignReply{Assigned: res.Assigned, Family: res.Family,
		Member: res.Member, MemberID: res.MemberID, Score: res.Score})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	seqs, ok := readFASTA(w, r)
	if !ok {
		return
	}
	res, err := s.Cluster(seqs)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, clusterReply{Indices: res.Indices, Merges: res.Merges, Families: res.Families})
}

func (s *Server) handleDump(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("member"))
	if err != nil {
		http.Error(w, "serve: /dump?member=<resident index>", http.StatusBadRequest)
		return
	}
	seqs, ids, err := s.Dump(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	reply := dumpReply{Family: int(s.Partition()[id])}
	for i, sq := range seqs {
		reply.Members = append(reply.Members, member{Index: ids[i], ID: sq.ID, Residues: string(sq.Residues)})
	}
	writeJSON(w, reply)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := s.obs.WriteOpenMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
