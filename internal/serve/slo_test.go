package serve

import (
	"sync"
	"testing"
	"time"

	"gpclust/internal/seq"
)

// TestServeSLO is the serving smoke gate: ≥1000 concurrent clients mixing
// assign queries and incremental cluster inserts against a resident corpus,
// asserting (a) the p99 latency read from the histogram stays inside the
// bucket range, (b) zero observations were dropped and every successful
// request was recorded, and (c) the final partition equals a from-scratch
// re-cluster of the union corpus. Runs under -race in CI (scripts/ci.sh).
func TestServeSLO(t *testing.T) {
	const (
		baseSeqs       = 60
		insertClients  = 300
		assignClients  = 700
		totalClients   = insertClients + assignClients
		clusterResults = insertClients + 1 // the bootstrap Cluster counts too
	)
	corpus := testMetagenome(t, baseSeqs+insertClients)
	base, inserts := corpus[:baseSeqs], corpus[baseSeqs:]

	cfg := serveConfig()
	cfg.QueueCap = 128 // small enough that backpressure actually fires
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Cluster(base); err != nil {
		t.Fatal(err)
	}

	// Per-client outcome slots (index-only writes from the goroutines).
	insertIdx := make([][]int, insertClients)
	insertErr := make([]error, insertClients)
	assignErr := make([]error, assignClients)
	var wg sync.WaitGroup
	wg.Add(totalClients)
	for c := 0; c < insertClients; c++ {
		go func(c int) {
			defer wg.Done()
			for {
				res, err := s.Cluster(inserts[c : c+1])
				if err == ErrOverloaded {
					time.Sleep(time.Millisecond)
					continue
				}
				insertErr[c] = err
				if err == nil {
					insertIdx[c] = res.Indices
				}
				return
			}
		}(c)
	}
	for c := 0; c < assignClients; c++ {
		go func(c int) {
			defer wg.Done()
			q := corpus[c%len(corpus)]
			for {
				_, err := s.Assign(q)
				if err == ErrOverloaded {
					time.Sleep(time.Millisecond)
					continue
				}
				assignErr[c] = err
				return
			}
		}(c)
	}
	wg.Wait()
	for c, err := range insertErr {
		if err != nil {
			t.Fatalf("insert client %d: %v", c, err)
		}
	}
	for c, err := range assignErr {
		if err != nil {
			t.Fatalf("assign client %d: %v", c, err)
		}
	}

	// (a) Latency SLO: p99 must land in a finite bucket (≤ 10s wall).
	for _, h := range []struct {
		name string
		h    interface{ Quantile(float64) float64 }
	}{
		{"serve_assign_latency_ns", s.met.assignLatency},
		{"serve_cluster_latency_ns", s.met.clusterLatency},
	} {
		if p99 := h.h.Quantile(0.99); p99 > 1e10 {
			t.Errorf("%s p99 = %g ns, beyond the bucket range", h.name, p99)
		}
	}

	// (b) Zero dropped metrics: every successful request observed exactly
	// once, nothing non-finite.
	if got := s.met.assignLatency.Count(); got != int64(assignClients) {
		t.Errorf("assign latency observations = %d, want %d (dropped under concurrency)", got, assignClients)
	}
	if got := s.met.clusterLatency.Count(); got != int64(clusterResults) {
		t.Errorf("cluster latency observations = %d, want %d (dropped under concurrency)", got, clusterResults)
	}
	if d := s.met.assignLatency.Dropped() + s.met.clusterLatency.Dropped(); d != 0 {
		t.Errorf("%d non-finite latency observations dropped", d)
	}
	// Cache hits answer without admission, so admitted + hits covers all clients.
	if got := s.met.requests.Value() + s.met.cacheHits.Value(); got < int64(totalClients) {
		t.Errorf("admitted+cached %d requests, want ≥ %d", got, totalClients)
	}

	// (c) Incremental ≡ from-scratch over the union corpus, arranged by the
	// indices the concurrent inserts actually received.
	arranged := make([]seq.Sequence, s.Stats().Sequences)
	copy(arranged, base)
	for c, ids := range insertIdx {
		if len(ids) != 1 {
			t.Fatalf("insert client %d got indices %v", c, ids)
		}
		arranged[ids[0]] = inserts[c]
	}
	samePartition(t, "SLO corpus vs from-scratch", refPartition(t, arranged, cfg.Pgraph), s.Partition())
}
