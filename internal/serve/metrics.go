package serve

import "gpclust/internal/obs"

// metrics bundles the server's instruments, registered once at startup so
// the hot paths never touch the registry's name map.
type metrics struct {
	assignLatency  *obs.Histogram // wall ns per assign request, admission to response
	clusterLatency *obs.Histogram // wall ns per cluster request
	queueDepth     *obs.Gauge
	queueCap       *obs.Gauge
	sequences      *obs.Gauge
	families       *obs.Gauge
	requests       *obs.Counter
	rejected       *obs.Counter
	failed         *obs.Counter
	passes         *obs.Counter
	batches        *obs.Counter // device batches across all passes
	pairs          *obs.Counter // candidate pairs scored
	edges          *obs.Counter // pairs accepted by the SW threshold
	merges         *obs.Counter // unions that joined two families
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
}

func newMetrics(r *obs.Recorder) *metrics {
	return &metrics{
		assignLatency:  r.Histogram("serve_assign_latency_ns", "assign request latency (wall ns)", obs.DefBucketsNs),
		clusterLatency: r.Histogram("serve_cluster_latency_ns", "cluster request latency (wall ns)", obs.DefBucketsNs),
		queueDepth:     r.Gauge("serve_queue_depth", "requests waiting for the scheduler"),
		queueCap:       r.Gauge("serve_queue_capacity", "admission queue capacity"),
		sequences:      r.Gauge("serve_sequences", "committed resident sequences"),
		families:       r.Gauge("serve_families", "resident families (components)"),
		requests:       r.Counter("serve_requests_total", "requests admitted"),
		rejected:       r.Counter("serve_rejected_total", "requests rejected by backpressure"),
		failed:         r.Counter("serve_failed_total", "requests failed by a pass error"),
		passes:         r.Counter("serve_passes_total", "coalesced scheduler passes"),
		batches:        r.Counter("serve_batches_total", "device batches run by passes"),
		pairs:          r.Counter("serve_pairs_total", "candidate pairs scored"),
		edges:          r.Counter("serve_edges_total", "pairs accepted as homologous"),
		merges:         r.Counter("serve_merges_total", "family merges committed"),
		cacheHits:      r.Counter("serve_cache_hits_total", "assign cache hits"),
		cacheMisses:    r.Counter("serve_cache_misses_total", "assign cache misses"),
	}
}
