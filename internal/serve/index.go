package serve

import (
	"gpclust/internal/minwise"
	"gpclust/internal/pgraph"
)

// lshIndex is the resident candidate index: the batch LSH filter's band
// buckets (or, at the conservative preset, its raw-shingle buckets) kept
// alive between requests so each new sequence is bucketed once, against the
// members already resident. Because a sequence's band keys depend only on
// its own shingle set, inserting sequences one at a time emits exactly the
// pair set the batch filter computes over the union corpus — the
// equivalence pinned by pgraph's TestIncrementalLSHMatchesBatchFilter.
//
// The index is owned by the server's scheduler goroutine; it is not safe
// for concurrent use.
type lshIndex struct {
	shape pgraph.LSHShape
	fam   minwise.Family
	k     int // shingle length (Config.MinExactMatch)

	banded []map[uint32][]int32 // banded shapes: one bucket map per band
	cons   map[uint32][]int32   // conservative preset: bucket per raw shingle

	// undo logs every bucket append since the last mark, so a failed insert
	// pass can be rolled back without rebuilding the index.
	undo []undoRec
}

type undoRec struct {
	band int // -1: conservative bucket
	key  uint32
}

func newLSHIndex(shape pgraph.LSHShape, k int) *lshIndex {
	ix := &lshIndex{shape: shape, fam: shape.Family(), k: k}
	if shape.Conservative {
		ix.cons = make(map[uint32][]int32)
	} else {
		ix.banded = make([]map[uint32][]int32, shape.Bands)
		for b := range ix.banded {
			ix.banded[b] = make(map[uint32][]int32)
		}
	}
	return ix
}

// shingles returns the sequence's shingle set (nil: ineligible, never
// bucketed — exactly the batch filter's treatment of short sequences).
func (ix *lshIndex) shingles(residues []byte) []uint32 {
	return pgraph.ShingleSet(residues, ix.k)
}

// buckets yields the (band, key) bucket coordinates of one non-empty
// shingle set.
func (ix *lshIndex) buckets(set []uint32) []undoRec {
	if ix.shape.Conservative {
		recs := make([]undoRec, len(set))
		for i, v := range set {
			recs[i] = undoRec{band: -1, key: v}
		}
		return recs
	}
	keys := ix.shape.BandKeys(ix.fam, set)
	recs := make([]undoRec, len(keys))
	for b, k := range keys {
		recs[b] = undoRec{band: b, key: k}
	}
	return recs
}

func (ix *lshIndex) bucket(r undoRec) []int32 {
	if r.band < 0 {
		return ix.cons[r.key]
	}
	return ix.banded[r.band][r.key]
}

func (ix *lshIndex) put(r undoRec, id int32) {
	if r.band < 0 {
		ix.cons[r.key] = append(ix.cons[r.key], id)
	} else {
		ix.banded[r.band][r.key] = append(ix.banded[r.band][r.key], id)
	}
}

// candidates returns the distinct resident members sharing a bucket with
// the set, without inserting anything — the assign path.
func (ix *lshIndex) candidates(set []uint32) []int32 {
	if len(set) == 0 {
		return nil
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, r := range ix.buckets(set) {
		for _, m := range ix.bucket(r) {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// insert buckets a new member and returns its distinct candidates among the
// members already resident (exactly the pairs the batch filter would emit
// for it). Every append is undo-logged; empty sets insert nothing.
func (ix *lshIndex) insert(id int32, set []uint32) []int32 {
	if len(set) == 0 {
		return nil
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, r := range ix.buckets(set) {
		for _, m := range ix.bucket(r) {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
		ix.put(r, id)
		ix.undo = append(ix.undo, r)
	}
	return out
}

// mark snapshots the undo position; rollback(mark) unwinds every insert
// made since, in reverse, deleting buckets that become empty.
func (ix *lshIndex) mark() int { return len(ix.undo) }

func (ix *lshIndex) rollback(mark int) {
	for i := len(ix.undo) - 1; i >= mark; i-- {
		r := ix.undo[i]
		if r.band < 0 {
			b := ix.cons[r.key]
			if len(b) <= 1 {
				delete(ix.cons, r.key)
			} else {
				ix.cons[r.key] = b[:len(b)-1]
			}
		} else {
			b := ix.banded[r.band][r.key]
			if len(b) <= 1 {
				delete(ix.banded[r.band], r.key)
			} else {
				ix.banded[r.band][r.key] = b[:len(b)-1]
			}
		}
	}
	ix.undo = ix.undo[:mark]
}

// commit forgets the undo history up to the current position (the inserts
// are now permanent); the log never grows across successful passes.
func (ix *lshIndex) commit() { ix.undo = ix.undo[:0] }
