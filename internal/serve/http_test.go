package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpclust/internal/seq"
)

func fastaBody(t *testing.T, seqs []seq.Sequence) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := seq.WriteFASTA(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	corpus := testMetagenome(t, 30)
	s, err := New(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// POST /cluster inserts the corpus.
	resp, err := http.Post(srv.URL+"/cluster", "text/plain", fastaBody(t, corpus))
	if err != nil {
		t.Fatal(err)
	}
	var cr clusterReply
	decodeJSON(t, resp, &cr)
	if len(cr.Indices) != len(corpus) || cr.Indices[0] != 0 {
		t.Fatalf("cluster indices = %v", cr.Indices)
	}
	if cr.Families != s.Stats().Families {
		t.Errorf("cluster reply families = %d, want %d", cr.Families, s.Stats().Families)
	}

	// POST /assign with a resident member's residues finds its family.
	resp, err = http.Post(srv.URL+"/assign", "text/plain", fastaBody(t, corpus[3:4]))
	if err != nil {
		t.Fatal(err)
	}
	var ar assignReply
	decodeJSON(t, resp, &ar)
	if !ar.Assigned {
		t.Fatal("identical query not assigned")
	}
	if want := int(s.Partition()[3]); ar.Family != want {
		t.Errorf("assign family = %d, want %d", ar.Family, want)
	}

	// GET /dump returns the queried member's whole family.
	resp, err = http.Get(srv.URL + "/dump?member=3")
	if err != nil {
		t.Fatal(err)
	}
	var dr dumpReply
	decodeJSON(t, resp, &dr)
	if dr.Family != int(s.Partition()[3]) || len(dr.Members) == 0 {
		t.Fatalf("dump reply = %+v", dr)
	}
	found := false
	for _, m := range dr.Members {
		if m.Index == 3 {
			found = m.ID == corpus[3].ID && m.Residues == string(corpus[3].Residues)
		}
	}
	if !found {
		t.Errorf("dump of member 3's family omitted member 3: %+v", dr.Members)
	}

	// GET /metrics serves OpenMetrics text with the serve instruments.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "serve_requests_total") {
		t.Errorf("metrics status %d body %q", resp.StatusCode, body)
	}

	// GET /healthz.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	corpus := testMetagenome(t, 6)
	s, err := New(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Cluster(corpus); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	check := func(what string, resp *http.Response, err error, want int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", what, resp.StatusCode, want)
		}
	}

	resp, err := http.Get(srv.URL + "/assign")
	check("GET /assign", resp, err, http.StatusMethodNotAllowed)

	resp, err = http.Post(srv.URL+"/assign", "text/plain", strings.NewReader("not fasta at all"))
	check("garbage body", resp, err, http.StatusBadRequest)

	resp, err = http.Post(srv.URL+"/assign", "text/plain", fastaBody(t, corpus[:2]))
	check("two records to /assign", resp, err, http.StatusBadRequest)

	resp, err = http.Post(srv.URL+"/cluster", "text/plain", strings.NewReader(""))
	check("empty cluster body", resp, err, http.StatusBadRequest)

	resp, err = http.Get(srv.URL + "/dump?member=999")
	check("dump out of range", resp, err, http.StatusNotFound)

	resp, err = http.Get(srv.URL + "/dump?member=bogus")
	check("dump non-numeric", resp, err, http.StatusBadRequest)
}
