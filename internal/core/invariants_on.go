//go:build invariants

package core

import "gpclust/internal/gpusim"

// assertDeviceClean panics when a clustering run returns with device buffers
// still allocated. A buffer leaked on some early-exit path permanently
// shrinks the memory every later batch plan is sized against, so under
// -tags invariants a leak is a hard failure at the point it happened rather
// than a mysterious OOM three runs later. The default build compiles the
// no-op in invariants_off.go and pays nothing.
func assertDeviceClean(dev *gpusim.Device) {
	if err := dev.LeakCheck(); err != nil {
		panic(err)
	}
}
