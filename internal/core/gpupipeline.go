package core

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// runBatchesPipelined replaces runPassGPU's strictly sequential batch loop
// when Options.PipelineBatches is set (or the auto-tuner picks a multi-lane
// plan). Two things change relative to the sequential (and per-batch async)
// loops, both aimed at the copy engine — which the Table I breakdown shows
// is the bottleneck: every transfer pays a fixed setup cost ("the overhead
// to invoke the data transfer mechanism"), and one DMA engine serializes
// all of them.
//
//  1. Transfer coalescing. The c hash-pair uploads per batch collapse into
//     one per-lane table upload for the whole pass, and the per-trial
//     shingle downloads collapse into one download per *group* of trials:
//     each trial's top-s rows land at a distinct offset of a packed output
//     buffer (SegmentedTopSAt) and the group transfers back with a single
//     D2H. The group size is chosen so the packed output is no larger than
//     the batch data itself.
//
//  2. Double-buffered staging. The pass is flattened into a stream of
//     (batch, trial-group) work items round-robined across N fully
//     independent lanes — each lane owns a stream plus device staging
//     (data, offsets, hash, packed output, params) sized for the largest
//     batch of the plan, and re-stages a batch's data the first time one of
//     its items lands on the lane:
//
//     lane 0:  [H2D b0 | g0 kernels | D2H g0]  [g2 kernels | D2H g2] ...
//     lane 1:           [H2D b0 | g1 kernels | D2H g1]  [g3 kernels | ...
//     host:                         [merge g0]  [merge g1]  [merge g2] ...
//
//     The round-robin ordering contract lives in sched.RunLanes: enqueuing
//     item i only waits for its lane's previous occupant (item i-N) to
//     drain, so the next group's kernels and the next batch's host→device
//     staging overlap the previous groups' device→host shingle transfers
//     and the CPU-side (split-list) merging — across batch boundaries,
//     which the per-batch AsyncTransfer lanes cannot do.
//
// End-to-end time approaches max(copy engine, compute engine, host CPU)
// instead of their sum, with far fewer fixed-cost transfers on the critical
// copy engine: the asynchronous operation the paper names as the path to
// better performance (Sections III-C, V), generalized over the whole pass.
//
// Output equivalence: items drain in item order, which is exactly the
// sequential loop's (batch, trial) nesting, so tuple emission and pending
// split-list merging happen in the identical order and the clustering is
// bit-identical for any lane count.

// shingleLane is one pipeline lane's device staging. Under a packed+fused
// plan `data` holds the packed image the fused kernels read in place; under
// a packed+unfused plan `packed` receives the H2D image and the unpack
// kernel expands it into the full-width `data`. `hash` exists only when the
// plan's trial kernels stage full-width hashes (unfused, or full-sort);
// `params` only when the hash-pair table is not device-resident run-wide.
type shingleLane struct {
	data, packed, off, hash, out, params *gpusim.Buffer
	stream                               *gpusim.Stream
	hostOut                              []uint32 // in-flight item's packed shingle rows
	batch                                int      // batch resident in data/off (-1: none)
}

// shingleLanes adapts the shingling pass to sched.LaneWorkload: items are
// (batch, trial-group) pairs in batch-major order.
type shingleLanes struct {
	dev                 *gpusim.Device
	in                  *SegGraph
	fam                 minwise.Family
	s, c                int
	o                   Options
	label               string
	plans               []batchPlan
	groupTrials, groups int
	tuplesByTrial       [][]tuple
	pending             map[int]*pendingShingle
	acct                *cpuAccount
	stats               *PassStats

	lanes      []*shingleLane
	hostParams []uint32 // <A_j, B_j> table for all c trials
	// Host staging for the current batch, shared across lanes: the H2D
	// copies capture contents at enqueue, and every item of batch k
	// enqueues before batch k+1 is staged. hostPacked is the batch's packed
	// image, built once per batch alongside hostData when the pass packs.
	hostData   []uint32
	hostPacked []uint32
	hostOff    []uint32
	staged     int // batch resident in hostData (-1: none)
}

// itemGroup decodes a work item into its batch and trial group.
func (w *shingleLanes) itemGroup(item int) (k, t0, t1 int) {
	k = item / w.groups
	t0 = (item % w.groups) * w.groupTrials
	t1 = min(t0+w.groupTrials, w.c)
	return
}

func (w *shingleLanes) Prepare(item int) {
	k, t0, _ := w.itemGroup(item)
	if t0 != 0 || w.staged == k {
		return // batch already staged by its first item
	}
	plan := &w.plans[k]
	w.hostData = w.hostData[:0]
	for pi, pc := range plan.pieces {
		base := w.in.Offsets[pc.list]
		w.hostData = append(w.hostData, w.in.Data[base+pc.lo:base+pc.hi]...)
		w.hostOff[pi+1] = uint32(len(w.hostData))
	}
	w.hostOff[0] = 0
	w.acct.aggOps += int64(len(w.hostData) + len(plan.pieces))
	chargeHost(w.dev, w.o.Obs, "stage", float64(len(w.hostData)+len(plan.pieces))*AggregateNsPerOp)
	if w.o.dataBits > 0 {
		w.hostPacked = gpusim.PackBits(w.hostData, w.o.dataBits)
		w.acct.packOps += int64(len(w.hostData))
		chargeHost(w.dev, w.o.Obs, "pack", float64(len(w.hostData))*PackNsPerOp)
	}
	w.staged = k
}

func (w *shingleLanes) Enqueue(item, lane int) error {
	k, t0, t1 := w.itemGroup(item)
	l := w.lanes[lane]
	plan := &w.plans[k]
	numPieces := len(plan.pieces)
	if l.batch != k {
		if l.batch < 0 && l.params != nil {
			// First use of the lane: stage the trial table.
			if err := w.dev.CopyH2DAsync(l.stream, l.params, 0, w.hostParams); err != nil {
				return err
			}
		}
		// First item of batch k on this lane: stage the batch — the packed
		// image when the pass packs, expanded on-stream when the plan is
		// unfused so the trial kernels read full-width words.
		bits := w.o.dataBits
		switch {
		case bits > 0 && w.o.fusedPlan:
			if err := w.dev.CopyH2DAsync(l.stream, l.data, 0, w.hostPacked); err != nil {
				return err
			}
		case bits > 0:
			if err := w.dev.CopyH2DAsync(l.stream, l.packed, 0, w.hostPacked); err != nil {
				return err
			}
		default:
			if err := w.dev.CopyH2DAsync(l.stream, l.data, 0, w.hostData); err != nil {
				return err
			}
		}
		if err := w.dev.CopyH2DAsync(l.stream, l.off, 0, w.hostOff[:numPieces+1]); err != nil {
			return err
		}
		if bits > 0 && !w.o.fusedPlan {
			if err := thrust.UnpackBitsOnStream(w.dev, l.stream, l.packed, l.data,
				len(w.hostData), bits); err != nil {
				return err
			}
		}
		l.batch = k
	}
	segs := thrust.Segments{Offsets: l.off, NumSegs: numPieces}
	img := batchImage{buf: l.data}
	if w.o.dataBits > 0 && w.o.fusedPlan {
		img.bits = w.o.dataBits
	}
	for trial := t0; trial < t1; trial++ {
		h := w.fam.Pairs[trial]
		if err := trialKernels(w.dev, l.stream, img, l.hash, segs, w.s, w.o,
			len(w.hostData), h.A, h.B, l.out, (trial-t0)*numPieces*w.s); err != nil {
			return err
		}
	}
	return w.dev.CopyD2HAsync(l.stream, l.hostOut[:(t1-t0)*numPieces*w.s], l.out, 0)
}

func (w *shingleLanes) Complete(item, lane int) {
	k, t0, t1 := w.itemGroup(item)
	l := w.lanes[lane]
	l.stream.Synchronize()
	plan := &w.plans[k]
	before := w.acct.aggOps
	rowWords := len(plan.pieces) * w.s
	for trial := t0; trial < t1; trial++ {
		row := l.hostOut[(trial-t0)*rowWords : (trial-t0+1)*rowWords]
		emitTrialTuples(w.in, *plan, w.s, trial, w.c, row, w.tuplesByTrial, w.pending, w.acct, w.stats)
	}
	chargeHost(w.dev, w.o.Obs, "aggregate", float64(w.acct.aggOps-before)*AggregateNsPerOp)
}

func (w *shingleLanes) SpanName(item int) string {
	k, t0, t1 := w.itemGroup(item)
	return fmt.Sprintf("%s.b%d.t%d-%d", w.label, k, t0, t1)
}

func runBatchesPipelined(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int,
	o Options, label string, plans []batchPlan, lanes int, tuplesByTrial [][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats) error {

	if len(plans) == 0 {
		return nil
	}
	if lanes < 2 {
		lanes = 2
	}
	c := fam.Size()
	maxWords, maxPieces := 1, 1
	for _, p := range plans {
		maxWords = max(maxWords, p.words)
		maxPieces = max(maxPieces, len(p.pieces))
	}
	// Trials per item: pack as many trials' output rows as fit in a buffer
	// the size of the batch data, so coalescing never dominates the lane's
	// device footprint.
	groupTrials := min(max(maxWords/(maxPieces*s), 1), c)

	// The hash-pair table <A_j, B_j> for all c trials is loop-invariant:
	// upload it once per lane instead of once per trial per batch.
	hostParams := make([]uint32, 0, 2*c)
	for _, h := range fam.Pairs {
		hostParams = append(hostParams, uint32(h.A), uint32(h.B))
	}

	w := &shingleLanes{
		dev: dev, in: in, fam: fam, s: s, c: c, o: o, label: label,
		plans: plans, groupTrials: groupTrials, groups: (c + groupTrials - 1) / groupTrials,
		tuplesByTrial: tuplesByTrial, pending: pending, acct: acct, stats: stats,
		lanes:      make([]*shingleLane, lanes),
		hostParams: hostParams,
		hostData:   make([]uint32, 0, maxWords),
		hostOff:    make([]uint32, maxPieces+1),
		staged:     -1,
	}
	freeAll := func() {
		for _, l := range w.lanes {
			if l == nil {
				continue
			}
			for _, b := range []*gpusim.Buffer{l.data, l.packed, l.off, l.hash, l.out, l.params} {
				if b != nil {
					b.Free()
				}
			}
		}
	}
	packedWords := gpusim.PackedLen(maxWords, o.dataBits)
	for i := range w.lanes {
		l := &shingleLane{stream: dev.NewStream(), batch: -1}
		w.lanes[i] = l
		var err error
		alloc := func(dst **gpusim.Buffer, n int) {
			if err == nil {
				*dst, err = dev.Malloc(n)
			}
		}
		if o.dataBits > 0 && o.fusedPlan {
			alloc(&l.data, packedWords) // the packed image, read in place
		} else {
			alloc(&l.data, maxWords)
			if o.dataBits > 0 {
				alloc(&l.packed, packedWords) // H2D staging for the unpack
			}
		}
		alloc(&l.off, maxPieces+1)
		if needsHashBuf(o) {
			alloc(&l.hash, maxWords)
		}
		alloc(&l.out, groupTrials*maxPieces*s)
		if o.residentParams == nil {
			alloc(&l.params, 2*c)
		}
		if err != nil {
			freeAll()
			return err
		}
		l.hostOut = make([]uint32, groupTrials*maxPieces*s)
	}
	defer freeAll()

	return sched.RunLanes(dev, o.Obs, len(plans)*w.groups, lanes, w)
}
