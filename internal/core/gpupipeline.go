package core

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/thrust"
)

// runBatchesPipelined replaces runPassGPU's strictly sequential batch loop
// when Options.PipelineBatches is set. Two things change relative to the
// sequential (and per-batch async) loops, both aimed at the copy engine —
// which the Table I breakdown shows is the bottleneck: every transfer pays a
// fixed setup cost ("the overhead to invoke the data transfer mechanism"),
// and one DMA engine serializes all of them.
//
//  1. Transfer coalescing. The c hash-pair uploads per batch collapse into
//     one per-lane table upload for the whole pass, and the per-trial
//     shingle downloads collapse into one download per *group* of trials:
//     each trial's top-s rows land at a distinct offset of a packed output
//     buffer (SegmentedTopSAt) and the group transfers back with a single
//     D2H. The group size is chosen so the packed output is no larger than
//     the batch data itself.
//
//  2. Double-buffered staging. The pass is flattened into a stream of
//     (batch, trial-group) work items round-robined across two fully
//     independent lanes — each lane owns a stream plus device staging
//     (data, offsets, hash, packed output, params) sized for the largest
//     batch of the plan, and re-stages a batch's data the first time one of
//     its items lands on the lane:
//
//     lane 0:  [H2D b0 | g0 kernels | D2H g0]  [g2 kernels | D2H g2] ...
//     lane 1:           [H2D b0 | g1 kernels | D2H g1]  [g3 kernels | ...
//     host:                         [merge g0]  [merge g1]  [merge g2] ...
//
//     Enqueuing item i only waits for its lane's previous occupant (item
//     i-2) to drain, so the next group's kernels and the next batch's
//     host→device staging overlap the previous groups' device→host shingle
//     transfers and the CPU-side (split-list) merging — across batch
//     boundaries, which the per-batch AsyncTransfer lanes cannot do.
//
// End-to-end time approaches max(copy engine, compute engine, host CPU)
// instead of their sum, with far fewer fixed-cost transfers on the critical
// copy engine: the asynchronous operation the paper names as the path to
// better performance (Sections III-C, V), generalized over the whole pass.
//
// Output equivalence: items drain in item order, which is exactly the
// sequential loop's (batch, trial) nesting, so tuple emission and pending
// split-list merging happen in the identical order and the clustering is
// bit-identical.
func runBatchesPipelined(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int,
	o Options, label string, plans []batchPlan, tuplesByTrial [][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats) error {

	if len(plans) == 0 {
		return nil
	}
	c := fam.Size()
	maxWords, maxPieces := 1, 1
	for _, p := range plans {
		maxWords = max(maxWords, p.words)
		maxPieces = max(maxPieces, len(p.pieces))
	}
	// Trials per item: pack as many trials' output rows as fit in a buffer
	// the size of the batch data, so coalescing never dominates the lane's
	// device footprint.
	groupTrials := min(max(maxWords/(maxPieces*s), 1), c)

	// The hash-pair table <A_j, B_j> for all c trials is loop-invariant:
	// upload it once per lane instead of once per trial per batch.
	hostParams := make([]uint32, 0, 2*c)
	for _, h := range fam.Pairs {
		hostParams = append(hostParams, uint32(h.A), uint32(h.B))
	}

	type pipeLane struct {
		data, off, hash, out, params *gpusim.Buffer
		stream                       *gpusim.Stream
		hostOut                      []uint32 // in-flight item's packed shingle rows
		batch                        int      // batch resident in data/off (-1: none)
		plan                         *batchPlan
		t0, t1                       int // in-flight trial group; plan == nil when idle

		track    string  // observability: this lane's span track
		spanName string  // in-flight item's span name (recording enabled only)
		spanT0   float64 // virtual time the in-flight item was enqueued
	}

	var lanes [2]*pipeLane
	freeAll := func() {
		for _, l := range lanes {
			if l == nil {
				continue
			}
			for _, b := range []*gpusim.Buffer{l.data, l.off, l.hash, l.out, l.params} {
				if b != nil {
					b.Free()
				}
			}
		}
	}
	for i := range lanes {
		l := &pipeLane{stream: dev.NewStream(), batch: -1, track: fmt.Sprintf("lane%d", i)}
		lanes[i] = l
		var err error
		if l.data, err = dev.Malloc(maxWords); err == nil {
			if l.off, err = dev.Malloc(maxPieces + 1); err == nil {
				if l.hash, err = dev.Malloc(maxWords); err == nil {
					if l.out, err = dev.Malloc(groupTrials * maxPieces * s); err == nil {
						l.params, err = dev.Malloc(2 * c)
					}
				}
			}
		}
		if err != nil {
			freeAll()
			return err
		}
		l.hostOut = make([]uint32, groupTrials*maxPieces*s)
	}
	defer freeAll()

	// drain completes a lane's in-flight (batch, trial-group) item: wait for
	// the stream, then emit each trial's tuples and merge split-list minima.
	drain := func(l *pipeLane) {
		if l.plan == nil {
			return
		}
		l.stream.Synchronize()
		before := acct.aggOps
		rowWords := len(l.plan.pieces) * s
		for trial := l.t0; trial < l.t1; trial++ {
			row := l.hostOut[(trial-l.t0)*rowWords : (trial-l.t0+1)*rowWords]
			emitTrialTuples(in, *l.plan, s, trial, c, row, tuplesByTrial, pending, acct, stats)
		}
		chargeHost(dev, o.Obs, "aggregate", float64(acct.aggOps-before)*AggregateNsPerOp)
		if l.spanName != "" {
			o.Obs.Span(l.track, l.spanName, l.spanT0, dev.HostTime())
			l.spanName = ""
		}
		l.plan = nil
	}

	// Host staging for the current batch, reused across batches. The lanes'
	// H2D copies capture the contents at enqueue, so one buffer suffices
	// even with both lanes staging the same batch.
	hostData := make([]uint32, 0, maxWords)
	hostOff := make([]uint32, maxPieces+1)

	item := 0
	for k := range plans {
		plan := &plans[k]
		numPieces := len(plan.pieces)
		hostData = hostData[:0]
		for pi, pc := range plan.pieces {
			base := in.Offsets[pc.list]
			hostData = append(hostData, in.Data[base+pc.lo:base+pc.hi]...)
			hostOff[pi+1] = uint32(len(hostData))
		}
		hostOff[0] = 0
		acct.aggOps += int64(len(hostData) + numPieces)
		chargeHost(dev, o.Obs, "stage", float64(len(hostData)+numPieces)*AggregateNsPerOp)

		for t0 := 0; t0 < c; t0 += groupTrials {
			t1 := min(t0+groupTrials, c)
			l := lanes[item%2]
			item++
			drain(l)

			if l.batch != k {
				if l.batch < 0 {
					// First use of the lane: stage the trial table.
					if err := dev.CopyH2DAsync(l.stream, l.params, 0, hostParams); err != nil {
						return err
					}
				}
				// First item of batch k on this lane: stage the batch.
				if err := dev.CopyH2DAsync(l.stream, l.data, 0, hostData); err != nil {
					return err
				}
				if err := dev.CopyH2DAsync(l.stream, l.off, 0, hostOff[:numPieces+1]); err != nil {
					return err
				}
				l.batch = k
			}
			segs := thrust.Segments{Offsets: l.off, NumSegs: numPieces}
			for trial := t0; trial < t1; trial++ {
				h := fam.Pairs[trial]
				if err := thrust.TransformHashOnStream(dev, l.stream, l.data, l.hash,
					len(hostData), h.A, h.B, minwise.Prime); err != nil {
					return err
				}
				if err := topSKernel(dev, l.stream, l.hash, segs, s, l.out,
					(trial-t0)*numPieces*s, o.UseFullSort); err != nil {
					return err
				}
			}
			if err := dev.CopyD2HAsync(l.stream, l.hostOut[:(t1-t0)*numPieces*s], l.out, 0); err != nil {
				return err
			}
			if o.Obs.Enabled() {
				l.spanName = fmt.Sprintf("%s.b%d.t%d-%d", label, k, t0, t1)
				l.spanT0 = dev.HostTime()
			}
			l.plan, l.t0, l.t1 = plan, t0, t1
		}
	}

	// Tail: drain the remaining in-flight items in item order.
	drain(lanes[item%2])
	drain(lanes[(item+1)%2])
	return nil
}
