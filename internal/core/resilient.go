package core

import (
	"fmt"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/obs"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// Resilient batch execution. The GPU batch loops treat device faults —
// failed transfers, failed launches, allocation failures — as recoverable;
// the generic ladder (retry with exponential virtual-clock backoff, split
// persistent-OOM batches in half, degrade to a bit-identical host
// execution, or fail typed under Options.NoHostFallback) lives in
// internal/sched. This file adapts the shingling pipeline to it: what a
// batch attempt must roll back, how a plan splits, and what the host
// fallback emits, so the clustering a faulted run produces stays
// byte-for-byte the clustering of a fault-free run. Every recovery action
// is counted in faults.Recovery (Result.Faults).

// DefaultFaultRetries is the per-batch retry budget used when
// Options.FaultRetries is zero.
const DefaultFaultRetries = sched.DefaultFaultRetries

// DefaultRetryBackoffNs is the base virtual-clock delay between fault
// retries used when Options.RetryBackoffNs is zero; attempt k waits
// base·2^k simulated nanoseconds.
const DefaultRetryBackoffNs = sched.DefaultRetryBackoffNs

// retryBackoff resolves Options.RetryBackoffNs to the concrete base delay.
func (o Options) retryBackoff() float64 { return sched.ResolveBackoff(o.RetryBackoffNs) }

// ErrRetryBudget is wrapped by batch errors returned once the fault-retry
// budget is exhausted and host fallback is disabled. It aliases the sched
// framework's sentinel so errors.Is works across both.
var ErrRetryBudget = sched.ErrRetryBudget

// retryBudget resolves Options.FaultRetries to a concrete per-batch
// budget.
func (o Options) retryBudget() int { return sched.ResolveRetries(o.FaultRetries) }

// runner assembles the sched resilience ladder for one scheduling run.
func (o Options) runner(dev *gpusim.Device, rec *faults.Recovery) *sched.Runner {
	return &sched.Runner{
		Dev: dev, Obs: o.Obs, Rec: rec,
		Policy:         sched.Policy{Retries: o.retryBudget(), BackoffNs: o.retryBackoff()},
		NoHostFallback: o.NoHostFallback,
	}
}

// pendSnap records one split list's pre-attempt pending state; saved is
// nil when the list had no pending entry yet.
type pendSnap struct {
	list  int
	saved *pendingShingle
}

// batchSnapshot captures the aggregation state a batch attempt may mutate,
// so a failed attempt can roll back and the retry emits every tuple
// exactly once. Only lengths are recorded for the tuple streams (appends
// are the only mutation) and only the batch's own split lists are copied
// from pending (mergeTopS builds fresh slices, so row sharing is safe).
type batchSnapshot struct {
	tupleLens  []int
	sortedLens []int
	pend       []pendSnap
	tuples     int64
}

func snapshotBatch(in *SegGraph, plan batchPlan, tuplesByTrial [][]tuple,
	sortedByTrial [][][]tuple, pending map[int]*pendingShingle, stats *PassStats) *batchSnapshot {

	snap := &batchSnapshot{tuples: stats.Tuples, tupleLens: make([]int, len(tuplesByTrial))}
	for i := range tuplesByTrial {
		snap.tupleLens[i] = len(tuplesByTrial[i])
	}
	if sortedByTrial != nil {
		snap.sortedLens = make([]int, len(sortedByTrial))
		for i := range sortedByTrial {
			snap.sortedLens[i] = len(sortedByTrial[i])
		}
	}
	seen := make(map[int]bool)
	for _, pc := range plan.pieces {
		if pc.isWhole(in) || seen[pc.list] {
			continue
		}
		seen[pc.list] = true
		var saved *pendingShingle
		if p := pending[pc.list]; p != nil {
			saved = &pendingShingle{perTrial: make([][]uint32, len(p.perTrial))}
			copy(saved.perTrial, p.perTrial)
		}
		snap.pend = append(snap.pend, pendSnap{list: pc.list, saved: saved})
	}
	return snap
}

func (snap *batchSnapshot) restore(tuplesByTrial [][]tuple, sortedByTrial [][][]tuple,
	pending map[int]*pendingShingle, stats *PassStats) {

	for i := range tuplesByTrial {
		tuplesByTrial[i] = tuplesByTrial[i][:snap.tupleLens[i]]
	}
	for i := range snap.sortedLens {
		sortedByTrial[i] = sortedByTrial[i][:snap.sortedLens[i]]
	}
	for _, ps := range snap.pend {
		if ps.saved == nil {
			delete(pending, ps.list)
		} else {
			pending[ps.list] = ps.saved
		}
	}
	stats.Tuples = snap.tuples
}

// splitBatchPlan halves a plan: by piece count when it holds several
// pieces, otherwise by splitting its single piece's element range (the
// halves then merge through the pending split-list path, which is
// bit-identical by construction). ok is false when the plan is a single
// piece of fewer than two elements and cannot shrink further.
func splitBatchPlan(plan batchPlan) (left, right batchPlan, ok bool) {
	rebuild := func(pieces []batchPiece) batchPlan {
		p := batchPlan{pieces: pieces}
		for _, pc := range pieces {
			p.words += pc.words()
		}
		return p
	}
	if len(plan.pieces) >= 2 {
		mid := len(plan.pieces) / 2
		return rebuild(plan.pieces[:mid:mid]), rebuild(plan.pieces[mid:]), true
	}
	if len(plan.pieces) == 1 {
		pc := plan.pieces[0]
		if pc.hi-pc.lo >= 2 {
			mid := pc.lo + (pc.hi-pc.lo)/2
			return rebuild([]batchPiece{{list: pc.list, lo: pc.lo, hi: mid}}),
				rebuild([]batchPiece{{list: pc.list, lo: mid, hi: pc.hi}}), true
		}
	}
	return batchPlan{}, batchPlan{}, false
}

// batchEnv bundles the pass state threaded through every batch of one
// scheduling run, so the sched adapters stay one pointer wide.
type batchEnv struct {
	dev           *gpusim.Device
	in            *SegGraph
	fam           minwise.Family
	s             int
	o             Options
	tuplesByTrial [][]tuple
	sortedByTrial [][][]tuple
	pending       map[int]*pendingShingle
	acct          *cpuAccount
	stats         *PassStats
	rec           *faults.Recovery
}

// coreBatch adapts one shingling batch to sched.Batch: an attempt snapshots
// the aggregation state and rolls back on any failure, a split halves the
// plan, and the fallback replays the batch through the host shingler.
type coreBatch struct {
	env  *batchEnv
	plan batchPlan
}

func (b coreBatch) Attempt() error {
	e := b.env
	snap := snapshotBatch(e.in, b.plan, e.tuplesByTrial, e.sortedByTrial, e.pending, e.stats)
	err := runBatch(e.dev, e.in, e.fam, e.s, e.o, b.plan, e.tuplesByTrial,
		e.sortedByTrial, e.pending, e.acct, e.stats)
	if err != nil {
		snap.restore(e.tuplesByTrial, e.sortedByTrial, e.pending, e.stats)
	}
	return err
}

func (b coreBatch) Split() (sched.Batch, sched.Batch, bool) {
	left, right, ok := splitBatchPlan(b.plan)
	if !ok {
		return nil, nil, false
	}
	return coreBatch{b.env, left}, coreBatch{b.env, right}, true
}

func (b coreBatch) Fallback() {
	e := b.env
	runBatchHost(e.dev, e.in, e.fam, e.s, e.o, b.plan, e.tuplesByTrial,
		e.sortedByTrial, e.pending, e.acct, e.stats)
}

func (b coreBatch) WrapErr(retries int, last error) error {
	return fmt.Errorf("core: batch of %d pieces failed after %d retries: %w (last: %v)",
		len(b.plan.pieces), retries, ErrRetryBudget, last)
}

// runBatchResilient is runBatch wrapped in the recovery ladder: retry with
// backoff while the budget lasts, then split on persistent OOM, then
// degrade to the host path (or fail typed under NoHostFallback).
func runBatchResilient(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int, o Options,
	plan batchPlan, tuplesByTrial [][]tuple, sortedByTrial [][][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats,
	rec *faults.Recovery) error {

	env := &batchEnv{dev: dev, in: in, fam: fam, s: s, o: o,
		tuplesByTrial: tuplesByTrial, sortedByTrial: sortedByTrial,
		pending: pending, acct: acct, stats: stats}
	return o.runner(dev, rec).Run(coreBatch{env, plan})
}

// hostTopS mirrors the thrust.SegmentedTopS kernel on the host: dst (s
// words) receives src's min(n, s) smallest elements ascending, sentinel
// padded — the same algorithm, so the same output bit for bit.
func hostTopS(src []uint32, s int, dst []uint32) {
	n := len(src)
	if n < s {
		copy(dst, src)
		for i := 1; i < n; i++ {
			v := dst[i]
			j := i
			for j > 0 && dst[j-1] > v {
				dst[j] = dst[j-1]
				j--
			}
			dst[j] = v
		}
		for i := n; i < s; i++ {
			dst[i] = thrust.TopSSentinel
		}
		return
	}
	filled := 0
	for _, x := range src[:s] {
		i := filled
		for i > 0 && dst[i-1] > x {
			dst[i] = dst[i-1]
			i--
		}
		dst[i] = x
		filled++
	}
	for _, x := range src[s:] {
		if x >= dst[s-1] {
			continue
		}
		i := s - 1
		for i > 0 && dst[i-1] > x {
			dst[i] = dst[i-1]
			i--
		}
		dst[i] = x
	}
}

// runBatchHost executes one batch entirely on the CPU, emitting exactly
// the tuples the device path would have: per trial and piece it applies
// the trial's hash to the piece's elements and selects the top-s minima
// with the same algorithm as the device kernel, then feeds the rows
// through the same aggregation code. It cannot fail, which makes it the
// recovery ladder's last resort; its cost is charged at the serial
// backend's shingling price (this is 2008-era host shingling).
func runBatchHost(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int, o Options,
	plan batchPlan, tuplesByTrial [][]tuple, sortedByTrial [][][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats) {

	numPieces := len(plan.pieces)
	c := fam.Size()
	hostOut := make([]uint32, numPieces*s)
	hashed := make([]uint32, 0, plan.words)
	var shingleOps int64

	for trial, h := range fam.Pairs {
		for pi, pc := range plan.pieces {
			base := in.Offsets[pc.list]
			data := in.Data[base+pc.lo : base+pc.hi]
			hashed = hashed[:0]
			for _, v := range data {
				hashed = append(hashed, h.Apply(v))
			}
			hostTopS(hashed, s, hostOut[pi*s:(pi+1)*s])
			shingleOps += shingleListOps(len(data), s)
		}
		before := acct.aggOps
		if sortedByTrial != nil {
			emitTrialAggHost(in, plan, s, trial, c, hostOut, tuplesByTrial,
				sortedByTrial, pending, acct, stats)
		} else {
			emitTrialTuples(in, plan, s, trial, c, hostOut, tuplesByTrial, pending, acct, stats)
		}
		chargeHost(dev, o.Obs, "aggregate", float64(acct.aggOps-before)*AggregateNsPerOp)
	}
	acct.serialOps += shingleOps
	chargeHost(dev, o.Obs, obs.NameShingle, float64(shingleOps)*SerialShingleNsPerOp)
}

// emitTrialAggHost is the GPUAggregate-mode twin of emitTrialTuples for
// the host fallback: whole long pieces become one (key, owner)-sorted
// stream appended to sortedByTrial — the order thrust.SortPairs64 would
// have produced, so the pre-sorted stream merge sees identical input —
// and split pieces merge through pending exactly as on the device path.
func emitTrialAggHost(in *SegGraph, plan batchPlan, s, trial, c int, hostOut []uint32,
	tuplesByTrial [][]tuple, sortedByTrial [][][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats) {

	var stream []tuple
	for pi, pc := range plan.pieces {
		vals := hostOut[pi*s : (pi+1)*s]
		listLen := in.Offsets[pc.list+1] - in.Offsets[pc.list]
		if pc.isWhole(in) {
			if int(listLen) < s {
				continue
			}
			stream = append(stream, tuple{
				key:   shingleKey(uint32(trial), vals),
				owner: in.Owner(pc.list),
			})
			continue
		}
		p := pending[pc.list]
		if p == nil {
			p = &pendingShingle{perTrial: make([][]uint32, c)}
			pending[pc.list] = p
		}
		p.perTrial[trial] = mergeTopS(p.perTrial[trial], vals, s)
		acct.aggOps += int64(2 * s)
		if pc.hi == listLen && trial == c-1 {
			for tj, minima := range p.perTrial {
				if len(minima) < s {
					continue
				}
				tuplesByTrial[tj] = append(tuplesByTrial[tj], tuple{
					key:   shingleKey(uint32(tj), minima),
					owner: in.Owner(pc.list),
				})
				stats.Tuples++
			}
			delete(pending, pc.list)
		}
	}
	sortTuples(stream)
	sortedByTrial[trial] = append(sortedByTrial[trial], stream)
	stats.Tuples += int64(len(stream))
	acct.aggOps += int64(len(stream))
}

// corePass adapts the whole pipelined pass to sched.Pass. The pipelined
// pass interleaves every batch's device work, so there is no per-batch
// state to roll back to; instead a faulted pass restarts whole (Reset
// returns the output state to the pre-pass snapshot), and when the restart
// budget is exhausted it degrades to the sequential resilient loop — which
// recovers per batch, splits on OOM and can fall back to the host, so it
// completes whenever recovery is possible at all.
type corePass struct {
	env   *batchEnv
	label string
	plans []batchPlan
	lanes int

	tupleLens []int // pre-pass tuple stream lengths
	tuples    int64 // pre-pass stats.Tuples
}

func (p *corePass) Attempt() error {
	e := p.env
	return runBatchesPipelined(e.dev, e.in, e.fam, e.s, e.o, p.label, p.plans, p.lanes,
		e.tuplesByTrial, e.pending, e.acct, e.stats)
}

func (p *corePass) Reset() {
	e := p.env
	for i := range e.tuplesByTrial {
		e.tuplesByTrial[i] = e.tuplesByTrial[i][:p.tupleLens[i]]
	}
	clear(e.pending)
	e.stats.Tuples = p.tuples
}

// Settle is a no-op: runBatchesPipelined synchronizes its lanes before
// returning an error, so the device is already quiet.
func (p *corePass) Settle() {}

func (p *corePass) Degrade() error {
	e := p.env
	for _, plan := range p.plans {
		if err := runBatchResilient(e.dev, e.in, e.fam, e.s, e.o, plan, e.tuplesByTrial,
			nil, e.pending, e.acct, e.stats, e.rec); err != nil {
			return err
		}
	}
	return nil
}

// runBatchesPipelinedResilient wraps the double-buffered pass in the
// restart ladder (sched.Runner.RunPass). pending must be empty at entry
// (it is: the pass is the first writer).
func runBatchesPipelinedResilient(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int,
	o Options, label string, plans []batchPlan, lanes int, tuplesByTrial [][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats,
	rec *faults.Recovery) error {

	env := &batchEnv{dev: dev, in: in, fam: fam, s: s, o: o,
		tuplesByTrial: tuplesByTrial, pending: pending, acct: acct, stats: stats, rec: rec}
	pass := &corePass{env: env, label: label, plans: plans, lanes: lanes,
		tupleLens: make([]int, len(tuplesByTrial)), tuples: stats.Tuples}
	for i := range tuplesByTrial {
		pass.tupleLens[i] = len(tuplesByTrial[i])
	}
	return o.runner(dev, rec).RunPass(pass)
}
