package core

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
)

func TestMultiGPUMatchesSerial(t *testing.T) {
	g, _ := plantedTestGraph(600, 73)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, nDev := range []int{2, 3} {
		devs := make([]*gpusim.Device, nDev)
		for i := range devs {
			devs[i] = gpusim.MustNew(gpusim.K20Config())
		}
		multi, err := ClusterMultiGPU(g, devs, o)
		if err != nil {
			t.Fatalf("%d devices: %v", nDev, err)
		}
		if !reflect.DeepEqual(serial.Clustering, multi.Clustering) {
			t.Fatalf("%d-device clustering differs from serial", nDev)
		}
		for i, d := range devs {
			if d.AllocatedBuffers() != 0 {
				t.Fatalf("device %d leaked %d buffers", i, d.AllocatedBuffers())
			}
		}
	}
}

func TestMultiGPUDistributesWork(t *testing.T) {
	g, _ := plantedTestGraph(1500, 79)
	o := testOptions()
	devs := []*gpusim.Device{
		gpusim.MustNew(gpusim.K20Config()),
		gpusim.MustNew(gpusim.K20Config()),
	}
	res, err := ClusterMultiGPU(g, devs, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass1.Batches < 2 {
		t.Fatalf("multi-GPU run used %d batch(es); budget split failed", res.Pass1.Batches)
	}
	m0, m1 := devs[0].Metrics(), devs[1].Metrics()
	if m0.KernelLaunches == 0 || m1.KernelLaunches == 0 {
		t.Fatalf("device kernel launches = %d / %d; work not distributed",
			m0.KernelLaunches, m1.KernelLaunches)
	}
}

func TestMultiGPUFasterThanSingle(t *testing.T) {
	g, _ := plantedTestGraph(2500, 83)
	o := testOptions()
	devSingle := gpusim.MustNew(gpusim.K20Config())
	single, err := ClusterGPU(g, devSingle, o)
	if err != nil {
		t.Fatal(err)
	}
	devs := []*gpusim.Device{
		gpusim.MustNew(gpusim.K20Config()),
		gpusim.MustNew(gpusim.K20Config()),
	}
	multi, err := ClusterMultiGPU(g, devs, o)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Timings.TotalNs >= single.Timings.TotalNs {
		t.Fatalf("2-device total %.1fms not below 1-device %.1fms",
			multi.Timings.TotalNs/1e6, single.Timings.TotalNs/1e6)
	}
	if !reflect.DeepEqual(single.Clustering, multi.Clustering) {
		t.Fatal("multi-GPU clustering differs from single-GPU")
	}
}

func TestMultiGPUValidation(t *testing.T) {
	g, _ := plantedTestGraph(100, 89)
	o := testOptions()
	if _, err := ClusterMultiGPU(g, nil, o); err == nil {
		t.Fatal("no devices accepted")
	}
	devs := []*gpusim.Device{gpusim.MustNew(gpusim.K20Config()), gpusim.MustNew(gpusim.K20Config())}
	o.AsyncTransfer = true
	if _, err := ClusterMultiGPU(g, devs, o); err == nil {
		t.Fatal("async multi-GPU accepted (unsupported)")
	}
	o.AsyncTransfer = false
	// Single device delegates to ClusterGPU.
	res, err := ClusterMultiGPU(g, devs[:1], o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "gpu" {
		t.Fatalf("single-device delegate backend = %q", res.Backend)
	}
}
