package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// runObsGPU clusters a small planted graph on one traced device with the
// given recorder and options mutator, returning the result and timeline.
func runObsGPU(t *testing.T, rec *obs.Recorder, inj gpusim.FaultInjector, mut func(*Options)) (*Result, obs.DeviceTimeline) {
	t.Helper()
	g, _ := plantedTestGraph(400, 5)
	o := testOptions()
	o.BatchWords = 60_000 // force several batches
	o.Obs = rec
	if mut != nil {
		mut(&o)
	}
	dev := gpusim.MustNew(gpusim.K20Config())
	dev.EnableTracing()
	if inj != nil {
		dev.SetFaultInjector(inj)
	}
	res, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	return res, obs.DeviceTimeline{Name: "device0", Events: dev.Trace()}
}

// TestObsDisabledBitIdentical is the acceptance gate for the zero-overhead
// contract: a run with a recorder attached must produce the exact same
// clustering and virtual timings as a run without one.
func TestObsDisabledBitIdentical(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		mut := func(o *Options) { o.PipelineBatches = pipeline }
		plain, _ := runObsGPU(t, nil, nil, mut)
		traced, _ := runObsGPU(t, obs.New(), nil, mut)
		if !reflect.DeepEqual(plain.Clustering, traced.Clustering) {
			t.Fatalf("pipeline=%v: clustering differs with a recorder attached", pipeline)
		}
		if plain.Timings != traced.Timings {
			t.Fatalf("pipeline=%v: timings differ with a recorder attached:\nplain  %+v\ntraced %+v",
				pipeline, plain.Timings, traced.Timings)
		}
	}
}

// near asserts relative closeness of two virtual durations accumulated in
// different orders (span sums vs the backends' accumulators).
func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestObsTableSplitMatchesTimings regenerates the Table-I component split
// purely from spans + device trace and checks it against the accumulators.
func TestObsTableSplitMatchesTimings(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		rec := obs.New()
		res, tl := runObsGPU(t, rec, nil, func(o *Options) { o.PipelineBatches = pipeline })
		sp := obs.TableSplit(rec.Spans(), []obs.DeviceTimeline{tl})
		tm := res.Timings
		for _, c := range []struct {
			name       string
			span, accu float64
		}{
			{"CPU", sp.CPUNs, tm.CPUNs},
			{"GPU", sp.GPUNs, tm.GPUNs},
			{"H2D", sp.H2DNs, tm.H2DNs},
			{"D2H", sp.D2HNs, tm.D2HNs},
			{"DiskIO", sp.DiskIONs, tm.DiskIONs},
			{"Total", sp.TotalNs, tm.TotalNs},
		} {
			if !near(c.span, c.accu) {
				t.Errorf("pipeline=%v %s: span-derived %.3f != accumulator %.3f",
					pipeline, c.name, c.span, c.accu)
			}
		}
	}
}

// TestObsPhasesAndLanes checks the recorded structure of a pipelined run:
// the five host phases in order, per-batch spans, and both lane tracks.
func TestObsPhasesAndLanes(t *testing.T) {
	rec := obs.New()
	runObsGPU(t, rec, nil, func(o *Options) { o.PipelineBatches = true })
	var phases []string
	tracks := map[string]int{}
	for _, s := range rec.Spans() {
		tracks[s.Track]++
		if s.Track == obs.TrackPhases {
			phases = append(phases, s.Name)
		}
		if s.EndNs < s.StartNs {
			t.Fatalf("span %+v ends before it starts", s)
		}
	}
	want := []string{obs.NameRead, "shingle-pass1", "aggregate", "shingle-pass2", "report"}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	if tracks["lane0"] == 0 || tracks["lane1"] == 0 {
		t.Fatalf("pipelined run recorded no lane spans: %v", tracks)
	}
	if tracks[obs.TrackHostCPU] == 0 {
		t.Fatalf("no host-cpu spans recorded: %v", tracks)
	}
}

// TestObsCountersMatchResult is the acceptance gate for metric exactness:
// every exported counter must equal the corresponding Result field, on a
// faulted pipelined run.
func TestObsCountersMatchResult(t *testing.T) {
	sched, err := faults.Parse("h2d op=2 count=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(sched)
	rec := obs.New()
	inj.SetRecorder(rec)
	res, _ := runObsGPU(t, rec, inj, func(o *Options) { o.PipelineBatches = true })
	if !res.Faults.Any() {
		t.Fatal("fault schedule fired nothing; test needs a faulted run")
	}
	cv := func(name string) int64 { return rec.Counter(name, "").Value() }
	checks := []struct {
		name string
		want int64
	}{
		{"gpclust_tuples", res.Pass1.Tuples + res.Pass2.Tuples},
		{"gpclust_shingles", int64(res.Pass1.Shingles + res.Pass2.Shingles)},
		{"gpclust_batches", int64(res.Pass1.Batches + res.Pass2.Batches)},
		{"gpclust_fault_transfer_retries", res.Faults.TransferRetries},
		{"gpclust_fault_kernel_retries", res.Faults.KernelRetries},
		{"gpclust_fault_oom_retries", res.Faults.OOMRetries},
		{"gpclust_fault_oom_splits", res.Faults.OOMSplits},
		{"gpclust_fault_host_fallbacks", res.Faults.HostFallbacks},
		{"gpclust_fault_pipeline_restarts", res.Faults.Restarts},
	}
	for _, c := range checks {
		if got := cv(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := rec.Gauge("gpclust_clusters", "").Value(); got != float64(res.NumClusters()) {
		t.Errorf("gpclust_clusters = %g, want %d", got, res.NumClusters())
	}
	if got := rec.Gauge("gpclust_fault_backoff_ns", "").Value(); got != res.Faults.BackoffNs {
		t.Errorf("gpclust_fault_backoff_ns = %g, want %g", got, res.Faults.BackoffNs)
	}
	// The injector also marked its firings on the faults track.
	var faultInstants int
	for _, in := range rec.Instants() {
		if in.Track == obs.TrackFaults {
			faultInstants++
		}
	}
	if faultInstants == 0 {
		t.Error("no fault instants recorded by the injector")
	}
	if got := cv("gpclust_faults_injected"); got != int64(faultInstants) {
		t.Errorf("gpclust_faults_injected = %d, want %d instants", got, faultInstants)
	}
}

// stripWall removes the wall_ns args (the only nondeterministic bytes) from
// an exported trace so two seeded runs can be compared structurally.
func stripWall(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents missing or null in %s", raw)
	}
	for _, e := range evs {
		if m, ok := e.(map[string]any); ok {
			if args, ok := m["args"].(map[string]any); ok {
				delete(args, "wall_ns")
				if len(args) == 0 {
					delete(m, "args")
				}
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestObsExportsDeterministic: two identical seeded pipelined runs export
// byte-identical metrics and (wall-clock args aside) identical merged
// traces, despite the nondeterministic order concurrent lanes record in.
func TestObsExportsDeterministic(t *testing.T) {
	export := func() ([]byte, []byte) {
		rec := obs.New()
		_, tl := runObsGPU(t, rec, nil, func(o *Options) { o.PipelineBatches = true })
		var trace, metrics bytes.Buffer
		if err := obs.WriteMergedTrace(&trace, rec, []obs.DeviceTimeline{tl}); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteOpenMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), metrics.Bytes()
	}
	t1, m1 := export()
	t2, m2 := export()
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics exports differ between identical runs:\n%s\nvs\n%s", m1, m2)
	}
	if !bytes.Equal(stripWall(t, t1), stripWall(t, t2)) {
		t.Fatal("merged-trace exports differ structurally between identical runs")
	}
}

// TestObsHostBackends: the serial and parallel backends reconstruct their
// synthetic timeline such that TableSplit matches their Timings, and their
// counters match the Result.
func TestObsHostBackends(t *testing.T) {
	g, _ := plantedTestGraph(400, 5)
	for _, backend := range []string{"serial", "parallel"} {
		rec := obs.New()
		o := testOptions()
		o.Obs = rec
		var res *Result
		var err error
		if backend == "parallel" {
			o.Workers = 3
			res, err = ClusterParallel(g, o)
		} else {
			res, err = ClusterSerial(g, o)
		}
		if err != nil {
			t.Fatal(err)
		}
		sp := obs.TableSplit(rec.Spans(), nil)
		tm := res.Timings
		if !near(sp.ShingleNs, tm.ShingleNs) || !near(sp.CPUNs, tm.CPUNs) ||
			!near(sp.DiskIONs, tm.DiskIONs) || !near(sp.TotalNs, tm.TotalNs) {
			t.Errorf("%s: span split %+v != timings %+v", backend, sp, tm)
		}
		if got := rec.Counter("gpclust_tuples", "").Value(); got != res.Pass1.Tuples+res.Pass2.Tuples {
			t.Errorf("%s: gpclust_tuples = %d, want %d", backend, got, res.Pass1.Tuples+res.Pass2.Tuples)
		}
	}
}

// TestRetryBackoffOption pins satellite 3: Options.RetryBackoffNs scales the
// recovery stalls that used to be controlled by a mutable package variable.
func TestRetryBackoffOption(t *testing.T) {
	if (Options{RetryBackoffNs: -1}).retryBackoff() != DefaultRetryBackoffNs {
		// Validate() rejects negatives before any run; the resolver itself
		// only honors positive overrides.
		t.Fatal("negative RetryBackoffNs leaked through the resolver")
	}
	if got := (Options{}).retryBackoff(); got != DefaultRetryBackoffNs {
		t.Fatalf("zero RetryBackoffNs resolved to %g, want default %g", got, DefaultRetryBackoffNs)
	}
	if got := (Options{RetryBackoffNs: 5}).retryBackoff(); got != 5 {
		t.Fatalf("explicit RetryBackoffNs resolved to %g, want 5", got)
	}
	o := testOptions()
	o.RetryBackoffNs = -1
	if err := o.Validate(); err == nil {
		t.Fatal("Validate accepted negative RetryBackoffNs")
	}

	run := func(backoff float64) *Result {
		sched, err := faults.Parse("h2d op=2 count=2")
		if err != nil {
			t.Fatal(err)
		}
		g, _ := plantedTestGraph(300, 4)
		o := testOptions()
		o.RetryBackoffNs = backoff
		dev := gpusim.MustNew(gpusim.K20Config())
		dev.SetFaultInjector(faults.NewInjector(sched))
		res, err := ClusterGPU(g, dev, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small, large := run(1e3), run(1e6)
	if small.Faults.BackoffNs == 0 || large.Faults.BackoffNs == 0 {
		t.Fatal("fault schedule produced no retries")
	}
	if large.Faults.BackoffNs <= small.Faults.BackoffNs {
		t.Fatalf("RetryBackoffNs not honored: backoff %g (1e3 base) vs %g (1e6 base)",
			small.Faults.BackoffNs, large.Faults.BackoffNs)
	}
	if !reflect.DeepEqual(small.Clustering, large.Clustering) {
		t.Fatal("backoff setting changed the clustering")
	}
}
