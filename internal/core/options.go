// Package core implements the paper's contribution: the two-pass randomized
// Shingling graph-clustering heuristic (Gibson, Kumar & Tomkins 2005) for
// protein-family identification, in both its serial form (pClust, Wu &
// Kalyanaraman 2008) and its CPU–GPU form (gpClust, this paper). The GPU
// side runs on the gpusim simulated device through thrust primitives; the
// serial side is a direct port of Section III-B. Both produce bit-identical
// clusterings for the same seed, which the tests verify.
package core

import (
	"fmt"
	"runtime"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/obs"
)

// ReportMode selects the Phase III cluster-enumeration strategy
// (Section III-B, "Phase III - Reporting dense subgraphs").
type ReportMode int

const (
	// ReportUnionFind (the paper's choice) merges, per connected component
	// of the second-level shingle graph, every vertex constituting the
	// component's first-level shingles through a union-find structure,
	// producing a strict partition with no overlapping clusters.
	ReportUnionFind ReportMode = iota
	// ReportOverlapping emits one cluster per connected component directly;
	// a vertex contributing to shingles in different components appears in
	// several clusters.
	ReportOverlapping
)

func (m ReportMode) String() string {
	switch m {
	case ReportUnionFind:
		return "union-find"
	case ReportOverlapping:
		return "overlapping"
	}
	return fmt.Sprintf("ReportMode(%d)", int(m))
}

// Options configures a clustering run. DefaultOptions returns the paper's
// published defaults.
type Options struct {
	// First-level shingling: shingle size and count (paper: s1=2, c1=200).
	S1, C1 int
	// Second-level shingling (paper: s2=2, c2=100).
	S2, C2 int

	// Seed drives the random hash families; runs with equal seeds produce
	// identical clusterings on either backend.
	Seed int64

	// Mode selects the Phase III reporting strategy.
	Mode ReportMode

	// BatchWords caps the device words a single batch of adjacency lists may
	// occupy (0 = derive from the device's free memory, or auto-tune when
	// AutoTune is set). Lists are split across batches when they do not fit,
	// and the CPU merges the partial shingle results (Section III-C).
	BatchWords int

	// AutoTune lets the scheduler pick the batch word budget and pipeline
	// lane count by predicted virtual time: candidate plans (a geometric
	// budget sweep crossed with the feasible lane counts) are replayed
	// through the calibrated cost model (internal/sched) and the argmin
	// runs. Ignored when BatchWords is set explicitly. The clustering is
	// bit-identical for every plan; only the virtual schedule changes.
	// The chosen plan and its predicted-vs-actual cost are reported in
	// PassStats.Plan.
	AutoTune bool

	// PredictCost runs the cost model for the fixed plan too (BatchWords
	// set, or AutoTune off), filling PassStats.Plan.PredictedNs so fixed
	// sweeps can report predicted-vs-actual drift. AutoTune implies it.
	PredictCost bool

	// UseFullSort makes the GPU path run Algorithm 1 literally — segmented
	// sort of the whole permuted list, then select the top s — instead of
	// the fused top-s selection kernel. Identical output, more device work;
	// kept for the ablation study.
	UseFullSort bool

	// AsyncTransfer overlaps device→host shingle transfers and the next
	// trial's kernels with CPU-side aggregation using streams, the
	// improvement the paper leaves as future work ("Better performance
	// could be achieved through asynchronous operations", Section III-C).
	AsyncTransfer bool

	// GPUAggregate moves the shingle-key computation and the per-trial
	// tuple sorting onto the device (shingle-key kernel + sort_by_key),
	// leaving the CPU a linear merge of pre-sorted streams — an extension
	// beyond the paper targeting Table I's dominant CPU column. Output is
	// bit-identical to the other backends. Incompatible with AsyncTransfer
	// and UseFullSort.
	GPUAggregate bool

	// Workers sizes the host worker pool: the ClusterParallel backend's
	// shingling/aggregation/reporting pools, and the pre-sorted stream
	// merge of the GPUAggregate path. 0 means runtime.GOMAXPROCS(0).
	// Output is identical for every worker count.
	Workers int

	// FaultRetries bounds how often one GPU batch is retried after an
	// injected or transient device fault (failed transfer or launch,
	// allocation failure) before the driver degrades further — splitting
	// the batch on persistent OOM, then executing it on the bit-identical
	// host path. The zero value is a sentinel meaning DefaultFaultRetries
	// (3), NOT zero retries; a negative value is the explicit
	// library-level way to disable retries entirely. The CLIs reject
	// negative -retries so the sentinel cannot be hit by accident from the
	// command line.
	FaultRetries int

	// RetryBackoffNs is the base virtual-clock delay between fault
	// retries: attempt k waits RetryBackoffNs·2^k simulated nanoseconds.
	// 0 means DefaultRetryBackoffNs. (Formerly a mutable package variable,
	// which raced when backends ran concurrently and leaked configuration
	// across runs — a §6 determinism-contract hole.)
	RetryBackoffNs float64

	// Obs, when non-nil, records the run into the observability layer:
	// host phase spans, per-charge host-cpu spans, per-batch and per-lane
	// device scheduling spans, fault-recovery instants, and the run's
	// counters (tuples, batches, fault recovery). Recording only observes
	// virtual times the cost model already produced — a run with a nil
	// recorder is bit-identical in output and virtual cost.
	Obs *obs.Recorder

	// NoHostFallback disables the last-resort host execution of a batch
	// whose retry budget is exhausted: the run then fails with an error
	// wrapping ErrRetryBudget instead of degrading gracefully.
	NoHostFallback bool

	// PipelineBatches double-buffers the GPU path's device batches across
	// two streams: batch k+1's host→device staging and kernels are enqueued
	// while batch k-1's shingles are still in flight to the host and being
	// merged by the CPU, so on the virtual clock the copy engine, the
	// compute engine and host aggregation overlap across batch boundaries
	// (the strictly sequential loop is the paper's stated bottleneck,
	// Section III-C). Identical output. Subsumes AsyncTransfer (setting
	// both is an error) and is incompatible with GPUAggregate.
	PipelineBatches bool

	// Packed ships each batch's adjacency data as a packed device image —
	// every value at the pass's MinBits width instead of one per 32-bit
	// word — cutting the bandwidth-proportional part of every H2D copy by
	// the same ratio. The device either expands the image with an unpack
	// kernel (charged at realistic op cost) or, under a fused plan, reads
	// it in place. Bit-identical output; only bytes moved change.
	Packed bool

	// Fuse allows the transform_hash kernel to be fused with the first
	// selection pass into a single launch (one kernel reads the residues —
	// packed or not — hashes, and emits the per-segment minima), dropping a
	// launch and the full-width hash buffer round trip per trial. Under
	// AutoTune the cost model decides per plan whether fusion actually wins
	// (the fused kernel runs the hash work at one-thread-per-segment
	// occupancy); fixed plans fuse unconditionally. Bit-identical output.
	Fuse bool

	// fusedPlan is the resolved fusion decision for the running pass: Fuse
	// gated by the cost model under AutoTune. Set by runPassGPU.
	fusedPlan bool

	// dataBits is the packed image width of the running pass (0 = unpacked).
	// Set by runPassGPU from MinBits over the pass input when Packed is on.
	dataBits int

	// residentParams, when non-nil, holds the minwise hash parameters of
	// both trial families device-resident for the whole run ([2·c1 words of
	// pass 1 | 2·c2 words of pass 2]), so no per-trial parameter upload is
	// simulated. Nil means the degraded per-batch upload path. Set by
	// ClusterGPU; mirrors the BLOSUM62 residency ladder in pgraph.
	residentParams *gpusim.Buffer
}

// DefaultOptions returns the parameter settings of Section III-D:
// s1=2, c1=200 for the first level and s2=2, c2=100 for the second.
// Packed images and kernel fusion are on by default — both are pure
// performance levers with bit-identical output.
func DefaultOptions() Options {
	return Options{
		S1: 2, C1: 200,
		S2: 2, C2: 100,
		Seed:   1,
		Mode:   ReportUnionFind,
		Packed: true,
		Fuse:   true,
	}
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.S1 < 1 || o.S2 < 1 {
		return fmt.Errorf("core: shingle sizes must be ≥ 1, got s1=%d s2=%d", o.S1, o.S2)
	}
	if o.C1 < 1 || o.C2 < 1 {
		return fmt.Errorf("core: shingle counts must be ≥ 1, got c1=%d c2=%d", o.C1, o.C2)
	}
	if o.S1 > 64 || o.S2 > 64 {
		return fmt.Errorf("core: shingle sizes above 64 unsupported, got s1=%d s2=%d", o.S1, o.S2)
	}
	if o.BatchWords < 0 {
		return fmt.Errorf("core: negative BatchWords %d", o.BatchWords)
	}
	if o.GPUAggregate && (o.AsyncTransfer || o.UseFullSort) {
		return fmt.Errorf("core: GPUAggregate is incompatible with AsyncTransfer and UseFullSort")
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d", o.Workers)
	}
	if o.RetryBackoffNs < 0 {
		return fmt.Errorf("core: negative RetryBackoffNs %g", o.RetryBackoffNs)
	}
	if o.PipelineBatches && o.GPUAggregate {
		return fmt.Errorf("core: PipelineBatches is incompatible with GPUAggregate")
	}
	if o.PipelineBatches && o.AsyncTransfer {
		return fmt.Errorf("core: PipelineBatches already overlaps transfers; drop AsyncTransfer")
	}
	return nil
}

// workerCount resolves Workers to a concrete pool size.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// families derives the two trial hash families from the seed. Both backends
// call this, which is what makes them produce identical shingles.
func (o Options) families() (minwise.Family, minwise.Family) {
	return minwise.NewFamily(o.C1, o.Seed), minwise.NewFamily(o.C2, o.Seed+1)
}
