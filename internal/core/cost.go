package core

// CPU and I/O cost model. The GPU side's virtual clock lives in gpusim; the
// host side's lives here. Host work is counted in abstract operations at the
// sites that perform it and converted to simulated nanoseconds with the
// constants below. The constants were calibrated so that, at the paper's
// full 20K-graph scale, the serial shingling stage and the host aggregation
// stage land in the neighborhood of Table I's measurements (392s serial
// total, 52.7s host-side in the accelerated run); see EXPERIMENTS.md for the
// calibration notes. They are variables, not consts, so the experiment
// harness can expose them as flags.
var (
	// SerialShingleNsPerOp prices one elementary shingling operation of the
	// 2008-era serial pClust code (hash application, insertion-scan step).
	// The paper attributes ~80% of serial runtime to these (Section III-C).
	SerialShingleNsPerOp = 340.0

	// AggregateNsPerOp prices one CPU-side aggregation operation (tuple
	// sorting/grouping, shingle-graph construction, split-list merging).
	AggregateNsPerOp = 38.0

	// ReportNsPerOp prices one Phase III reporting operation (union-find
	// unions/finds, component walks).
	ReportNsPerOp = 20.0

	// PackNsPerOp prices packing one 32-bit adjacency value into the packed
	// device image (bit-offset arithmetic, shift, or) before an H2D copy.
	// The same rate the pgraph staging path charges for residue packing.
	PackNsPerOp = 8.0

	// DiskBytesPerSec models the experimental platform's disk for the
	// "Disk I/O" column of Table I.
	DiskBytesPerSec = 14e6
)

// cpuAccount accumulates host-side operation counts for one run.
type cpuAccount struct {
	serialOps int64 // serial shingle extraction (serial backend only)
	aggOps    int64 // tuple aggregation + shingle-graph building
	reportOps int64 // Phase III reporting
	packOps   int64 // packed-image assembly before H2D staging
	diskBytes int64
}

func (a *cpuAccount) serialNs() float64 { return float64(a.serialOps) * SerialShingleNsPerOp }
func (a *cpuAccount) aggNs() float64    { return float64(a.aggOps) * AggregateNsPerOp }
func (a *cpuAccount) reportNs() float64 { return float64(a.reportOps) * ReportNsPerOp }
func (a *cpuAccount) packNs() float64   { return float64(a.packOps) * PackNsPerOp }
func (a *cpuAccount) diskNs() float64 {
	return float64(a.diskBytes) / DiskBytesPerSec * 1e9
}
