package core

import "testing"

// buildSeg constructs a SegGraph from explicit lists.
func buildSeg(lists [][]uint32) *SegGraph {
	sg := &SegGraph{Offsets: []int64{0}}
	for _, l := range lists {
		sg.Data = append(sg.Data, l...)
		sg.Offsets = append(sg.Offsets, int64(len(sg.Data)))
	}
	return sg
}

func TestReportUnionFindMergesComponent(t *testing.T) {
	// Two first-level shingles: s1_0 = {0,1}, s1_1 = {1,2}; one second-level
	// shingle links them -> vertices 0,1,2 become one cluster; 3,4 stay
	// singletons.
	gi := buildSeg([][]uint32{{0, 1}, {1, 2}})
	gii := buildSeg([][]uint32{{0, 1}}) // one s2 containing both s1 indices
	acct := &cpuAccount{}
	c := reportClusters(5, gi, gii, ReportUnionFind, acct)
	if len(c.Clusters) != 3 {
		t.Fatalf("%d clusters, want 3", len(c.Clusters))
	}
	labels := c.Labels()
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("vertices of the linked shingles not merged")
	}
	if labels[3] == labels[0] || labels[4] == labels[0] || labels[3] == labels[4] {
		t.Fatal("singletons merged incorrectly")
	}
	if acct.reportOps == 0 {
		t.Fatal("reporting cost not charged")
	}
}

func TestReportShinglesOutsideGIIIgnored(t *testing.T) {
	// s1_1 never contributed to a second-level shingle: its vertices must
	// not be unioned.
	gi := buildSeg([][]uint32{{0, 1}, {2, 3}})
	gii := buildSeg([][]uint32{{0}}) // only s1_0 appears
	acct := &cpuAccount{}
	c := reportClusters(4, gi, gii, ReportUnionFind, acct)
	labels := c.Labels()
	if labels[0] != labels[1] {
		t.Fatal("s1_0's vertices not merged")
	}
	if labels[2] == labels[3] {
		t.Fatal("vertices of a shingle outside G_II were merged")
	}
}

func TestReportSeparateComponents(t *testing.T) {
	// Two disjoint components in G_II -> two clusters.
	gi := buildSeg([][]uint32{{0, 1}, {2, 3}, {4, 5}})
	gii := buildSeg([][]uint32{{0}, {1, 2}}) // comp A: s1_0; comp B: s1_1+s1_2
	acct := &cpuAccount{}
	c := reportClusters(6, gi, gii, ReportUnionFind, acct)
	labels := c.Labels()
	if labels[0] != labels[1] {
		t.Fatal("component A not merged")
	}
	if labels[2] != labels[3] || labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatal("component B not merged")
	}
	if labels[0] == labels[2] {
		t.Fatal("components A and B merged")
	}
}

func TestReportOverlappingSharedVertex(t *testing.T) {
	// Vertex 1 contributes to shingles in two different components: in
	// overlapping mode it appears in both clusters ("the same input vertex
	// can be part of two entire[ly] different shingles and different
	// connected components").
	gi := buildSeg([][]uint32{{0, 1}, {1, 2}})
	gii := buildSeg([][]uint32{{0}, {1}}) // two singleton components
	acct := &cpuAccount{}
	c := reportClusters(3, gi, gii, ReportOverlapping, acct)
	if len(c.Clusters) != 2 {
		t.Fatalf("%d overlapping clusters, want 2", len(c.Clusters))
	}
	seen := 0
	for _, cl := range c.Clusters {
		for _, v := range cl {
			if v == 1 {
				seen++
			}
		}
	}
	if seen != 2 {
		t.Fatalf("vertex 1 appears in %d clusters, want 2", seen)
	}
}

func TestReportOverlappingDedupsWithinComponent(t *testing.T) {
	// Two shingles of ONE component share vertex 1: it must appear once.
	gi := buildSeg([][]uint32{{0, 1}, {1, 2}})
	gii := buildSeg([][]uint32{{0, 1}})
	acct := &cpuAccount{}
	c := reportClusters(3, gi, gii, ReportOverlapping, acct)
	if len(c.Clusters) != 1 {
		t.Fatalf("%d clusters, want 1", len(c.Clusters))
	}
	cl := c.Clusters[0]
	if len(cl) != 3 || cl[0] != 0 || cl[1] != 1 || cl[2] != 2 {
		t.Fatalf("cluster = %v, want [0 1 2]", cl)
	}
}

func TestReportEmptyGII(t *testing.T) {
	gi := buildSeg([][]uint32{{0, 1}})
	gii := buildSeg(nil)
	acct := &cpuAccount{}
	c := reportClusters(3, gi, gii, ReportUnionFind, acct)
	if len(c.Clusters) != 3 {
		t.Fatalf("%d clusters with empty G_II, want 3 singletons", len(c.Clusters))
	}
	o := reportClusters(3, gi, gii, ReportOverlapping, acct)
	if len(o.Clusters) != 0 {
		t.Fatalf("%d overlapping clusters with empty G_II, want 0", len(o.Clusters))
	}
}

func TestSortClustersDeterministic(t *testing.T) {
	clusters := [][]uint32{{7}, {1, 2}, {3}, {4, 5, 6}, {0}}
	sortClusters(clusters)
	if len(clusters[0]) != 3 || len(clusters[1]) != 2 {
		t.Fatal("clusters not sorted by size")
	}
	// ties by first member ascending
	if clusters[2][0] != 0 || clusters[3][0] != 3 || clusters[4][0] != 7 {
		t.Fatalf("tie order wrong: %v", clusters)
	}
}
