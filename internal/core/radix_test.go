package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortTuplesMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 100000} {
		ts := make([]tuple, n)
		for i := range ts {
			ts[i] = tuple{key: rng.Uint64(), owner: rng.Uint32()}
		}
		want := append([]tuple{}, ts...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				return want[i].key < want[j].key
			}
			return want[i].owner < want[j].owner
		})
		sortTuples(ts)
		for i := range ts {
			if ts[i] != want[i] {
				t.Fatalf("n=%d: element %d = %+v, want %+v", n, i, ts[i], want[i])
			}
		}
	}
}

func TestSortTuplesDuplicates(t *testing.T) {
	ts := []tuple{
		{key: 5, owner: 2}, {key: 5, owner: 1}, {key: 5, owner: 2},
		{key: 1, owner: 9}, {key: 1, owner: 0},
	}
	sortTuples(ts)
	want := []tuple{{1, 0}, {1, 9}, {5, 1}, {5, 2}, {5, 2}}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("got %v", ts)
		}
	}
}

func BenchmarkSortTuples1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]tuple, 1<<20)
	for i := range base {
		base[i] = tuple{key: rng.Uint64(), owner: rng.Uint32()}
	}
	ts := make([]tuple, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(ts, base)
		sortTuples(ts)
	}
}
