package core

import (
	"testing"

	"gpclust/internal/graph"
)

func TestFromGraphDropsSingletons(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 1, V: 3}, {U: 3, V: 4}})
	sg := FromGraph(g)
	if sg.NumLists() != 3 {
		t.Fatalf("%d lists, want 3 (vertices 1, 3, 4)", sg.NumLists())
	}
	if sg.Owner(0) != 1 || sg.Owner(1) != 3 || sg.Owner(2) != 4 {
		t.Fatalf("owners = %v", sg.Owners)
	}
	// List contents mirror the adjacency lists.
	if got := sg.List(1); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("list of vertex 3 = %v, want [1 4]", got)
	}
	if len(sg.Data) != 4 {
		t.Fatalf("data length = %d, want 4 (two edges, both directions)", len(sg.Data))
	}
}

func TestFilterMinLen(t *testing.T) {
	sg := &SegGraph{
		Offsets: []int64{0, 1, 4, 4, 6},
		Data:    []uint32{9, 1, 2, 3, 7, 8},
	}
	out := sg.filterMinLen(2)
	if out.NumLists() != 2 {
		t.Fatalf("%d lists survive, want 2", out.NumLists())
	}
	// Owners point back at the source indices.
	if out.Owner(0) != 1 || out.Owner(1) != 3 {
		t.Fatalf("owners = %v, want [1 3]", out.Owners)
	}
	if got := out.List(0); len(got) != 3 || got[0] != 1 {
		t.Fatalf("filtered list 0 = %v", got)
	}
	// Filtering with minLen 1 drops only the empty list.
	if got := sg.filterMinLen(1); got.NumLists() != 3 {
		t.Fatalf("minLen=1 keeps %d lists, want 3", got.NumLists())
	}
}

func TestOwnerDefaultsToIndex(t *testing.T) {
	sg := &SegGraph{Offsets: []int64{0, 1, 2}, Data: []uint32{5, 6}}
	if sg.Owner(0) != 0 || sg.Owner(1) != 1 {
		t.Fatal("nil Owners should mean identity")
	}
}

func TestShingleKeyProperties(t *testing.T) {
	a := shingleKey(3, []uint32{10, 20})
	b := shingleKey(3, []uint32{10, 20})
	if a != b {
		t.Fatal("equal (trial, minima) produced different keys")
	}
	// Trial separation: "shingles from different trials do not get mixed".
	if shingleKey(4, []uint32{10, 20}) == a {
		t.Fatal("different trials collided")
	}
	if shingleKey(3, []uint32{20, 10}) == a {
		t.Fatal("permuted minima collided (inputs are canonical ascending)")
	}
	if shingleKey(3, []uint32{10, 21}) == a {
		t.Fatal("different minima collided")
	}
}

func TestBuildShingleGraphGroups(t *testing.T) {
	acct := &cpuAccount{}
	stats := &PassStats{}
	tuples := [][]tuple{
		{ // trial 0
			{key: 100, owner: 5},
			{key: 100, owner: 2},
			{key: 200, owner: 7},
		},
		nil, // trial 1 empty
		{ // trial 2: same numeric key as trial 0 would already differ via
			// shingleKey, but buildShingleGraph must keep trials separate
			// regardless
			{key: 100, owner: 9},
		},
	}
	sg := buildShingleGraph(tuples, acct, stats)
	if sg.NumLists() != 3 {
		t.Fatalf("%d shingle groups, want 3", sg.NumLists())
	}
	if stats.Shingles != 3 {
		t.Fatalf("stats.Shingles = %d", stats.Shingles)
	}
	// First group: owners of key 100 in trial 0, sorted.
	if got := sg.List(0); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("group 0 = %v, want [2 5]", got)
	}
	if got := sg.List(2); len(got) != 1 || got[0] != 9 {
		t.Fatalf("group 2 = %v, want [9]", got)
	}
	if acct.aggOps == 0 {
		t.Fatal("aggregation cost not charged")
	}
}
