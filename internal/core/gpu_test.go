package core

import (
	"testing"
	"testing/quick"

	"gpclust/internal/gpusim"
	"gpclust/internal/thrust"
)

// Property: mergeTopS of two sentinel-padded ascending slices equals the
// brute-force s smallest of their union.
func TestMergeTopSProperty(t *testing.T) {
	const S = thrust.TopSSentinel
	f := func(rawA, rawB []uint32, rawS uint8) bool {
		s := 1 + int(rawS%6)
		mk := func(raw []uint32) []uint32 {
			// ascending, capped at s, values below sentinel
			var vals []uint32
			for _, v := range raw {
				vals = append(vals, v%(S-1))
				if len(vals) == s {
					break
				}
			}
			insertionSortTuplesU32(vals)
			// sentinel-pad to s
			for len(vals) < s {
				vals = append(vals, S)
			}
			return vals
		}
		a, b := mk(rawA), mk(rawB)
		got := mergeTopS(append([]uint32{}, a...), b, s)

		var union []uint32
		for _, v := range append(append([]uint32{}, a...), b...) {
			if v != S {
				union = append(union, v)
			}
		}
		insertionSortTuplesU32(union)
		want := union
		if len(want) > s {
			want = want[:s]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func insertionSortTuplesU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && s[j-1] > v {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
}

func TestPlanBatchesSingleHugeList(t *testing.T) {
	// One list far beyond the budget must split into many pieces that
	// reassemble exactly.
	sg := &SegGraph{
		Offsets: []int64{0, 1000},
		Data:    make([]uint32, 1000),
	}
	plans, err := planBatches(sg, 2, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	covered := int64(0)
	pieces := 0
	for _, p := range plans {
		for _, pc := range p.pieces {
			if pc.list != 0 {
				t.Fatalf("unexpected list %d", pc.list)
			}
			if pc.lo != covered {
				t.Fatalf("gap: piece starts at %d, covered %d", pc.lo, covered)
			}
			covered = pc.hi
			pieces++
		}
	}
	if covered != 1000 {
		t.Fatalf("covered %d of 1000", covered)
	}
	if pieces < 10 {
		t.Fatalf("only %d pieces for a 10x-budget list", pieces)
	}
}

func TestTopSKernelFullSortShortSegments(t *testing.T) {
	// The full-sort gather path must emit sorted-values + sentinels for
	// segments shorter than s, exactly like the fused kernel.
	dev := newTestDevice(t)
	data := []uint32{5, 3, 9} // segment lens: 1, 2, 0
	off := []uint32{0, 1, 3, 3}
	dataBuf := dev.MustMalloc(len(data))
	defer dataBuf.Free()
	offBuf := dev.MustMalloc(len(off))
	if err := dev.CopyH2D(dataBuf, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := dev.CopyH2D(offBuf, 0, off); err != nil {
		t.Fatal(err)
	}
	segs := thrust.Segments{Offsets: offBuf, NumSegs: 3}
	out := dev.MustMalloc(3 * 2)
	defer out.Free()
	if err := topSKernel(dev, nil, dataBuf, segs, 2, out, 0, true); err != nil {
		t.Fatal(err)
	}
	host := make([]uint32, 6)
	if err := dev.CopyD2H(host, out, 0); err != nil {
		t.Fatal(err)
	}
	const S = thrust.TopSSentinel
	want := []uint32{5, S, 3, 9, S, S}
	for i := range want {
		if host[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d (full output %v)", i, host[i], want[i], host)
		}
	}
}
func newTestDevice(t *testing.T) *gpusim.Device {
	t.Helper()
	return gpusim.MustNew(gpusim.K20Config())
}
