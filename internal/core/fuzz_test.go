package core

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzRadixSort checks the six-pass LSD radix sort against the obvious
// comparison-sort oracle on arbitrary (key, owner) streams. Aggregation
// correctness — and through it the determinism contract — rests entirely on
// this sort producing the exact (key, owner) order.
func FuzzRadixSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	// A seed big enough to cross the insertion-sort cutoff (64 tuples) so
	// the radix path is exercised from the first run.
	big := make([]byte, 100*12)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range big {
		state = state*6364136223846793005 + 1442695040888963407
		big[i] = byte(state >> 56)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 12
		ts := make([]tuple, n)
		for i := range ts {
			ts[i] = tuple{
				key:   binary.LittleEndian.Uint64(raw[i*12:]),
				owner: binary.LittleEndian.Uint32(raw[i*12+8:]),
			}
		}
		want := append([]tuple(nil), ts...)
		sort.Slice(want, func(i, j int) bool { return tupleGreater(want[j], want[i]) })
		sortTuples(ts)
		for i := range ts {
			if ts[i] != want[i] {
				t.Fatalf("tuple %d = %+v, want %+v (n=%d)", i, ts[i], want[i], n)
			}
		}
	})
}
