package core

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
)

func TestPipelinedMatchesSerialAcrossBatchSizes(t *testing.T) {
	g, _ := plantedTestGraph(400, 73)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.PipelineBatches = true
	for _, batchWords := range []int{0, 50_000, 5_000, 700, 24} {
		o.BatchWords = batchWords
		dev := gpusim.MustNew(gpusim.K20Config())
		gpu, err := ClusterGPU(g, dev, o)
		if err != nil {
			t.Fatalf("BatchWords=%d: %v", batchWords, err)
		}
		if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
			t.Fatalf("BatchWords=%d: pipelined clustering differs from serial (batches=%d splits=%d)",
				batchWords, gpu.Pass1.Batches, gpu.Pass1.SplitLists)
		}
		if gpu.Pass1.Tuples != serial.Pass1.Tuples {
			t.Fatalf("BatchWords=%d: tuple count differs", batchWords)
		}
		if batchWords == 24 && gpu.Pass1.SplitLists == 0 {
			t.Fatal("tiny batches produced no split lists; pipelined split-merge untested")
		}
		if dev.AllocatedBuffers() != 0 {
			t.Fatalf("BatchWords=%d: %d device buffers leaked", batchWords, dev.AllocatedBuffers())
		}
	}
}

func TestPipelinedReducesVirtualTime(t *testing.T) {
	g, _ := plantedTestGraph(800, 79)
	o := testOptions()
	o.BatchWords = 6_000 // force a multi-batch plan so cross-batch overlap matters

	devSeq := gpusim.MustNew(gpusim.K20Config())
	seq, err := ClusterGPU(g, devSeq, o)
	if err != nil {
		t.Fatal(err)
	}
	o.PipelineBatches = true
	devPipe := gpusim.MustNew(gpusim.K20Config())
	pipe, err := ClusterGPU(g, devPipe, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Clustering, pipe.Clustering) {
		t.Fatal("pipelined clustering differs from sequential")
	}
	if seq.Pass1.Batches < 2 {
		t.Fatalf("only %d batch(es); pipeline test needs several", seq.Pass1.Batches)
	}
	if pipe.Timings.TotalNs >= seq.Timings.TotalNs {
		t.Fatalf("pipelined total %.2fms not below sequential %.2fms",
			pipe.Timings.TotalNs/1e6, seq.Timings.TotalNs/1e6)
	}
	// Transfer overlap must be visible in the breakdown: the engines'
	// summed busy time exceeds the end-to-end pipelined time.
	tp := pipe.Timings
	summed := tp.CPUNs + tp.GPUNs + tp.H2DNs + tp.D2HNs + tp.DiskIONs
	if summed <= tp.TotalNs {
		t.Fatalf("no overlap visible: components sum to %.2fms, total %.2fms",
			summed/1e6, tp.TotalNs/1e6)
	}
}

func TestPipelinedSingleBatchStillOverlapsTrials(t *testing.T) {
	// Even with one batch the pipelined path enqueues all trials on a
	// stream, so it must still match and not regress the sequential time.
	g, _ := plantedTestGraph(300, 83)
	o := testOptions()
	devSeq := gpusim.MustNew(gpusim.K20Config())
	seq, err := ClusterGPU(g, devSeq, o)
	if err != nil {
		t.Fatal(err)
	}
	o.PipelineBatches = true
	devPipe := gpusim.MustNew(gpusim.K20Config())
	pipe, err := ClusterGPU(g, devPipe, o)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pass1.Batches != 1 || pipe.Pass1.Batches != 1 {
		t.Fatalf("expected single-batch plans, got %d/%d", seq.Pass1.Batches, pipe.Pass1.Batches)
	}
	if !reflect.DeepEqual(seq.Clustering, pipe.Clustering) {
		t.Fatal("single-batch pipelined clustering differs")
	}
	if pipe.Timings.TotalNs >= seq.Timings.TotalNs {
		t.Fatalf("pipelined total %.2fms not below sequential %.2fms",
			pipe.Timings.TotalNs/1e6, seq.Timings.TotalNs/1e6)
	}
}

func TestPipelinedFullSort(t *testing.T) {
	g, _ := plantedTestGraph(300, 89)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.PipelineBatches = true
	o.UseFullSort = true
	o.BatchWords = 4_000
	dev := gpusim.MustNew(gpusim.K20Config())
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("pipelined full-sort clustering differs from serial")
	}
}

func TestPipelinedSmallDevice(t *testing.T) {
	// The derived budget must leave room for both lanes on a tiny device.
	g, _ := plantedTestGraph(800, 97)
	o := testOptions()
	o.PipelineBatches = true
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpusim.SmallConfig()
	cfg.GlobalMemBytes = 32 << 10
	dev := gpusim.MustNew(cfg)
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Pass1.Batches < 2 {
		t.Fatalf("tiny device used %d batch(es)", gpu.Pass1.Batches)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("pipelined tiny-device clustering differs from serial")
	}
}

func TestPipelineOptionValidation(t *testing.T) {
	g, _ := plantedTestGraph(100, 101)
	dev := gpusim.MustNew(gpusim.K20Config())
	o := testOptions()
	o.PipelineBatches = true
	o.GPUAggregate = true
	if _, err := ClusterGPU(g, dev, o); err == nil {
		t.Fatal("PipelineBatches+GPUAggregate accepted")
	}
	o.GPUAggregate = false
	o.AsyncTransfer = true
	if _, err := ClusterGPU(g, dev, o); err == nil {
		t.Fatal("PipelineBatches+AsyncTransfer accepted")
	}
}
