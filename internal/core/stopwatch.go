package core

import "time"

// stopwatch is the package's only sanctioned wall-clock reader, enforced by
// gpclint's wallclock rule: every cost the backends *report* comes from the
// virtual clock (the device timelines and the cpuAccount op pricing), while
// the separate Result.Wall fields record how long the phases really took on
// this host. Keeping the raw time.Now calls inside this wrapper makes any
// new wall-clock dependency a reviewable, lintable event.
type stopwatch struct {
	start time.Time
	mark  time.Time
}

// newStopwatch starts measuring at the moment of the call.
func newStopwatch() *stopwatch {
	now := time.Now()
	return &stopwatch{start: now, mark: now}
}

// lap returns the nanoseconds elapsed since the previous lap (or since
// construction) and starts the next phase.
func (w *stopwatch) lap() int64 {
	now := time.Now()
	d := now.Sub(w.mark)
	w.mark = now
	return d.Nanoseconds()
}

// total returns the nanoseconds elapsed since construction.
func (w *stopwatch) total() int64 {
	return time.Since(w.start).Nanoseconds()
}
