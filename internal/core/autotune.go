package core

import (
	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// Cost-model-driven batch auto-tuning for the shingling passes. With
// Options.AutoTune (and no explicit BatchWords) the scheduler enumerates
// candidate plans — a geometric sweep of word budgets crossed with the
// feasible pipeline lane counts — predicts each candidate's virtual time by
// replaying its exact operation sequence (stage, H2D, per-trial kernels,
// D2H, CPU merge) through sched.Sim, and runs the argmin. Kernel throughput
// is calibrated by probing the real thrust kernels on a *scratch* device
// with the same gpusim.Config, so planning charges zero time on the run's
// own virtual clock and the model tracks whatever the simulator charges,
// occupancy penalty included.

// probeWords caps the calibration probe's data size.
const probeWords = 1 << 15

// Calibrated kernel names.
const (
	kTransform = "transform"
	kTopS      = "tops"
	kAggTail   = "aggtail"
	kFused     = "fused"  // fused hash + top-s (or hash + sort) launch
	kUnpack    = "unpack" // packed-image expansion
)

// transformThreads is the thread count of one TransformHash launch over n
// words (thrust's launchGeometry: 8 elements per thread, 256-wide blocks).
func transformThreads(n int) int {
	threads := (n + 7) / 8
	if threads == 0 {
		threads = 1
	}
	return (threads + 255) / 256 * 256
}

// topsThreads is the thread count of a segmented top-s (or gather) launch:
// one thread per segment, 256-wide blocks.
func topsThreads(numSegs int) int {
	grid := (numSegs + 255) / 256
	if grid < 1 {
		grid = 1
	}
	return grid * 256
}

// calibrateShingleModel measures the simulator's charge for the pass's
// kernels on a scratch device with the same config, normalized per data
// word at full occupancy (sched.Model re-applies the occupancy penalty for
// other launch shapes). The probe's segments are shaped like the input's
// average list. Probe failures leave the affected kernel uncalibrated
// (predicted at launch cost only) — they cannot occur on a fresh
// fault-free device.
func calibrateShingleModel(cfg gpusim.Config, in *SegGraph, fam minwise.Family, s int, o Options) *sched.Model {
	m := sched.NewModel(cfg)
	n := min(len(in.Data), probeWords)
	if n == 0 {
		return m
	}
	avg := len(in.Data) / max(in.NumLists(), 1)
	avg = min(max(avg, 1), n)
	numSegs := (n + avg - 1) / avg

	scratch := gpusim.MustNew(cfg)
	dataBuf, err := scratch.Malloc(n)
	if err != nil {
		return m
	}
	defer dataBuf.Free()
	hashBuf, err := scratch.Malloc(n)
	if err != nil {
		return m
	}
	defer hashBuf.Free()
	offBuf, err := scratch.Malloc(numSegs + 1)
	if err != nil {
		return m
	}
	defer offBuf.Free()
	outBuf, err := scratch.Malloc(numSegs * s)
	if err != nil {
		return m
	}
	defer outBuf.Free()
	hostOff := make([]uint32, numSegs+1)
	for i := range hostOff {
		hostOff[i] = uint32(min(i*avg, n))
	}
	if scratch.CopyH2D(dataBuf, 0, in.Data[:n]) != nil || scratch.CopyH2D(offBuf, 0, hostOff) != nil {
		return m
	}

	h := fam.Pairs[0]
	k0 := scratch.Metrics().KernelTimeNs
	if thrust.TransformHash(scratch, dataBuf, hashBuf, n, h.A, h.B, minwise.Prime) != nil {
		return m
	}
	k1 := scratch.Metrics().KernelTimeNs
	m.CalibrateKernel(kTransform, k1-k0-cfg.KernelLaunchNs, float64(n), transformThreads(n))

	segs := thrust.Segments{Offsets: offBuf, NumSegs: numSegs}
	if topSKernel(scratch, nil, hashBuf, segs, s, outBuf, 0, o.UseFullSort) != nil {
		return m
	}
	k2 := scratch.Metrics().KernelTimeNs
	launches := 1.0
	if o.UseFullSort {
		launches = 2 // segmented sort + gather
	}
	m.CalibrateKernel(kTopS, k2-k1-launches*cfg.KernelLaunchNs, float64(n), topsThreads(numSegs))

	// Probe the packed/fused side at the pass's actual bit width so the
	// auto-tuner can price fused and unfused candidates against each other.
	var fusedData *gpusim.Buffer = dataBuf
	if o.dataBits > 0 {
		hostPacked := gpusim.PackBits(in.Data[:n], o.dataBits)
		packedBuf, err := scratch.Malloc(len(hostPacked))
		if err != nil {
			return m
		}
		defer packedBuf.Free()
		if scratch.CopyH2D(packedBuf, 0, hostPacked) != nil {
			return m
		}
		fusedData = packedBuf
	}
	if o.Fuse {
		kf0 := scratch.Metrics().KernelTimeNs
		fusedLaunches := 1.0
		if !o.UseFullSort {
			if thrust.FusedHashTopS(scratch, nil, fusedData, o.dataBits, segs, s, h.A, h.B, minwise.Prime, outBuf, 0) != nil {
				return m
			}
		} else {
			fusedLaunches = 2 // fused sort + gather
			if thrust.FusedHashSort(scratch, nil, fusedData, o.dataBits, segs, h.A, h.B, minwise.Prime, hashBuf) != nil ||
				gatherTopS(scratch, nil, hashBuf, segs, s, outBuf, 0) != nil {
				return m
			}
		}
		m.CalibrateKernel(kFused, scratch.Metrics().KernelTimeNs-kf0-fusedLaunches*cfg.KernelLaunchNs,
			float64(n), topsThreads(numSegs))
	}
	if o.dataBits > 0 {
		ku0 := scratch.Metrics().KernelTimeNs
		if thrust.UnpackBits(scratch, fusedData, hashBuf, n, o.dataBits) != nil {
			return m
		}
		m.CalibrateKernel(kUnpack, scratch.Metrics().KernelTimeNs-ku0-cfg.KernelLaunchNs,
			float64(n), transformThreads(n))
	}

	if o.GPUAggregate {
		// Lump the device aggregation tail (shingle_key + sort_by_key +
		// pack) into one per-piece rate, launch overheads included — the
		// radix sort's launch count is an implementation detail, and the
		// occupancy shape is approximated by the probe's (the agg tail is a
		// small fraction of the pass, so the residual error stays well
		// inside the drift gate).
		var flagBuf, ownerBuf, keyHi, keyLo, valBuf, packed *gpusim.Buffer
		for _, dst := range []**gpusim.Buffer{&flagBuf, &ownerBuf, &keyHi, &keyLo, &valBuf} {
			if *dst, err = scratch.Malloc(numSegs); err != nil {
				return m
			}
			defer (*dst).Free()
		}
		if packed, err = scratch.Malloc(3 * numSegs); err != nil {
			return m
		}
		defer packed.Free()
		ones := make([]uint32, numSegs)
		for i := range ones {
			ones[i] = 1
		}
		if scratch.CopyH2D(flagBuf, 0, ones) != nil || scratch.CopyH2D(ownerBuf, 0, ones) != nil {
			return m
		}
		k3 := scratch.Metrics().KernelTimeNs
		if shingleKeyKernel(scratch, outBuf, flagBuf, ownerBuf, numSegs, s, 0, keyHi, keyLo, valBuf) != nil ||
			thrust.SortPairs64(scratch, keyHi, keyLo, valBuf, numSegs) != nil ||
			packKernel(scratch, keyHi, keyLo, valBuf, numSegs, packed) != nil {
			return m
		}
		m.CalibrateKernel(kAggTail, scratch.Metrics().KernelTimeNs-k3, float64(numSegs), 0)
	}
	return m
}

// transformNs predicts one TransformHash launch over words data words.
func transformNs(m *sched.Model, words int) float64 {
	return m.KernelNs(kTransform, float64(words), transformThreads(words))
}

// topsNs predicts one top-s selection over words data words in numSegs
// segments (two launches under UseFullSort: sort + gather).
func topsNs(m *sched.Model, words, numSegs int, fullSort bool) float64 {
	launches := 1.0
	if fullSort {
		launches = 2
	}
	return launches*m.Cfg.KernelLaunchNs +
		m.KernelNsPerUnit[kTopS]*float64(words)*m.SatFactor(topsThreads(numSegs))
}

// fusedNs predicts one fused hash+select launch over words data words in
// numSegs segments (two launches under UseFullSort: fused sort + gather).
func fusedNs(m *sched.Model, words, numSegs int, fullSort bool) float64 {
	launches := 1.0
	if fullSort {
		launches = 2
	}
	return launches*m.Cfg.KernelLaunchNs +
		m.KernelNsPerUnit[kFused]*float64(words)*m.SatFactor(topsThreads(numSegs))
}

// unpackNs predicts one unpack launch expanding words packed values.
func unpackNs(m *sched.Model, words int) float64 {
	return m.KernelNs(kUnpack, float64(words), transformThreads(words))
}

// packNs is the host cost of packing one batch's data into the device
// image; zero when the pass is unpacked.
func packNs(o Options, words int) float64 {
	if o.dataBits <= 0 {
		return 0
	}
	return float64(words) * PackNsPerOp
}

// trialKernelsNs predicts one trial's device launches for the plan's
// resolved kernel choice, mirroring trialKernels.
func trialKernelsNs(m *sched.Model, o Options, words, numSegs int) float64 {
	if o.fusedPlan {
		return fusedNs(m, words, numSegs, o.UseFullSort)
	}
	ns := topsNs(m, words, numSegs, o.UseFullSort)
	if words > 0 {
		ns += transformNs(m, words)
	}
	return ns
}

// replayBatchUpload replays one batch's image upload on the sim lane:
// the (possibly packed) data copy, the offsets copy, and the unpack kernel
// of a packed-unfused plan, in runBatch's enqueue order.
func replayBatchUpload(sim *sched.Sim, m *sched.Model, o Options, lane, words, numPieces int) {
	sim.CopyPacked(lane, words, o.dataBits, true)
	if o.dataBits > 0 && o.fusedPlan {
		sim.Copy(lane, numPieces+1, true)
		return
	}
	if o.dataBits > 0 {
		if lane >= 0 {
			// Pipelined enqueue order: off copy precedes the on-stream unpack.
			sim.Copy(lane, numPieces+1, true)
			if words > 0 {
				sim.KernelRawNs(lane, unpackNs(m, words))
			}
			return
		}
		if words > 0 {
			sim.KernelRawNs(lane, unpackNs(m, words))
		}
	}
	sim.Copy(lane, numPieces+1, true)
}

// stageNs is the host cost of assembling one batch's data and offsets.
func stageNs(plan *batchPlan) float64 {
	return float64(plan.words+len(plan.pieces)) * AggregateNsPerOp
}

// emitNsPerTrial is the host cost of emitTrialTuples for one trial of the
// plan: s merge ops per piece plus 2s per split piece (trial-independent;
// the final split-list emission charges nothing).
func emitNsPerTrial(in *SegGraph, plan *batchPlan, s int) float64 {
	ops := 0
	for _, pc := range plan.pieces {
		ops += s
		if !pc.isWhole(in) {
			ops += 2 * s
		}
	}
	return float64(ops) * AggregateNsPerOp
}

// aggCounts returns the GPUAggregate path's per-plan shape: pieces whose
// shingle key is computed on the device, and split pieces that come back
// as per-row copies.
func aggCounts(in *SegGraph, plan *batchPlan, s int) (validCount, splitPieces int) {
	for _, pc := range plan.pieces {
		listLen := in.Offsets[pc.list+1] - in.Offsets[pc.list]
		if pc.isWhole(in) {
			if int(listLen) >= s {
				validCount++
			}
		} else {
			splitPieces++
		}
	}
	return
}

// predictShinglePlans predicts the virtual time of the scheduler window —
// everything between planning and the split-list merge — for the given
// plans under the mode Options select and the given lane count.
func predictShinglePlans(m *sched.Model, in *SegGraph, fam minwise.Family, s int,
	o Options, plans []batchPlan, lanes int) float64 {

	switch {
	case lanes >= 2:
		return predictPipelined(m, in, fam, s, o, plans, lanes)
	case o.GPUAggregate:
		return predictGPUAgg(m, in, fam, s, o, plans)
	case o.AsyncTransfer:
		return predictAsync(m, in, fam, s, o, plans)
	default:
		return predictSequential(m, in, fam, s, o, plans)
	}
}

// predictSequential replays runBatch + runTrialsSync.
func predictSequential(m *sched.Model, in *SegGraph, fam minwise.Family, s int,
	o Options, plans []batchPlan) float64 {

	sim := sched.NewSim(m, 0)
	c := fam.Size()
	for i := range plans {
		plan := &plans[i]
		np := len(plan.pieces)
		sim.HostWork(stageNs(plan) + packNs(o, plan.words))
		replayBatchUpload(sim, m, o, -1, plan.words, np)
		emit := emitNsPerTrial(in, plan, s)
		for trial := 0; trial < c; trial++ {
			if o.residentParams == nil {
				sim.Copy(-1, 2, true) // <A_j, B_j>
			}
			sim.KernelRawNs(-1, trialKernelsNs(m, o, plan.words, np))
			sim.Copy(-1, np*s, false)
			sim.HostWork(emit)
		}
	}
	return sim.Host
}

// predictAsync replays runBatch + runTrialsAsync (two per-trial lanes,
// fresh streams per batch).
func predictAsync(m *sched.Model, in *SegGraph, fam minwise.Family, s int,
	o Options, plans []batchPlan) float64 {

	sim := sched.NewSim(m, 2)
	c := fam.Size()
	for i := range plans {
		plan := &plans[i]
		np := len(plan.pieces)
		sim.HostWork(stageNs(plan) + packNs(o, plan.words))
		replayBatchUpload(sim, m, o, -1, plan.words, np)
		emit := emitNsPerTrial(in, plan, s)
		sim.Ready[0], sim.Ready[1] = 0, 0 // fresh streams each batch
		inFlight := [2]int{-1, -1}
		drain := func(l int) {
			if inFlight[l] < 0 {
				return
			}
			sim.SyncLane(l)
			sim.HostWork(emit)
			inFlight[l] = -1
		}
		for trial := 0; trial < c; trial++ {
			l := trial % 2
			drain(l)
			if o.residentParams == nil {
				sim.Copy(l, 2, true)
			}
			sim.KernelRawNs(l, trialKernelsNs(m, o, plan.words, np))
			sim.Copy(l, np*s, false)
			inFlight[l] = trial
		}
		drain(0)
		drain(1)
	}
	return sim.Host
}

// predictGPUAgg replays runBatch + runTrialsGPUAgg.
func predictGPUAgg(m *sched.Model, in *SegGraph, fam minwise.Family, s int,
	o Options, plans []batchPlan) float64 {

	sim := sched.NewSim(m, 0)
	c := fam.Size()
	for i := range plans {
		plan := &plans[i]
		np := len(plan.pieces)
		valid, splits := aggCounts(in, plan, s)
		sim.HostWork(stageNs(plan) + packNs(o, plan.words))
		replayBatchUpload(sim, m, o, -1, plan.words, np) // data + offsets
		sim.Copy(-1, np, true)                           // owners
		sim.Copy(-1, np, true)                           // flags
		hostNs := float64(valid+splits*2*s) * AggregateNsPerOp
		for trial := 0; trial < c; trial++ {
			if o.residentParams == nil {
				sim.Copy(-1, 2, true)
			}
			sim.KernelRawNs(-1, trialKernelsNs(m, o, plan.words, np))
			sim.KernelRawNs(-1, m.KernelNsPerUnit[kAggTail]*float64(np))
			sim.Copy(-1, 3*valid, false)
			for r := 0; r < splits; r++ {
				sim.Copy(-1, s, false)
			}
			sim.HostWork(hostNs)
		}
	}
	return sim.Host
}

// predictPipelined replays runBatchesPipelined across the given lane count
// (the sched.RunLanes round-robin, including the per-lane params table
// upload and re-staging).
func predictPipelined(m *sched.Model, in *SegGraph, fam minwise.Family, s int,
	o Options, plans []batchPlan, lanes int) float64 {

	c := fam.Size()
	maxWords, maxPieces := 1, 1
	for _, p := range plans {
		maxWords = max(maxWords, p.words)
		maxPieces = max(maxPieces, len(p.pieces))
	}
	groupTrials := min(max(maxWords/(maxPieces*s), 1), c)
	groups := (c + groupTrials - 1) / groupTrials
	n := len(plans) * groups

	sim := sched.NewSim(m, lanes)
	laneBatch := make([]int, lanes)
	inFlight := make([]int, lanes)
	for i := range laneBatch {
		laneBatch[i], inFlight[i] = -1, -1
	}
	emitNs := make([]float64, len(plans))
	for i := range plans {
		emitNs[i] = emitNsPerTrial(in, &plans[i], s)
	}
	staged := -1
	drain := func(lane int) {
		item := inFlight[lane]
		if item < 0 {
			return
		}
		k := item / groups
		t0 := (item % groups) * groupTrials
		t1 := min(t0+groupTrials, c)
		sim.SyncLane(lane)
		sim.HostWork(float64(t1-t0) * emitNs[k])
		inFlight[lane] = -1
	}
	for item := 0; item < n; item++ {
		k := item / groups
		t0 := (item % groups) * groupTrials
		t1 := min(t0+groupTrials, c)
		plan := &plans[k]
		np := len(plan.pieces)
		if t0 == 0 && staged != k {
			sim.HostWork(stageNs(plan) + packNs(o, plan.words))
			staged = k
		}
		lane := item % lanes
		drain(lane)
		if laneBatch[lane] != k {
			if laneBatch[lane] < 0 && o.residentParams == nil {
				sim.Copy(lane, 2*c, true) // params table
			}
			replayBatchUpload(sim, m, o, lane, plan.words, np)
			laneBatch[lane] = k
		}
		for trial := t0; trial < t1; trial++ {
			sim.KernelRawNs(lane, trialKernelsNs(m, o, plan.words, np))
		}
		sim.Copy(lane, (t1-t0)*np*s, false)
		inFlight[lane] = item
	}
	for k := 0; k < lanes; k++ {
		drain((n + k) % lanes)
	}
	return sim.Host
}

// shingleLaneSet is the lane counts the auto-tuner may consider for the
// configured mode: the per-trial pipelines (AsyncTransfer) and the device
// aggregation path keep their own internal structure and run sequentially
// over batches; an explicit PipelineBatches pins the pipelined executor.
func shingleLaneSet(o Options) []int {
	switch {
	case o.GPUAggregate || o.AsyncTransfer:
		return []int{1}
	case o.PipelineBatches:
		return []int{2, 3, 4}
	default:
		return []int{1, 2, 3, 4}
	}
}

// legacyShingleBudget is the pre-auto-tune budget derivation.
func legacyShingleBudget(dev *gpusim.Device, o Options) int {
	// data + hash copies, offsets and output must all fit with slack.
	budget := int(dev.FreeMemory() / gpusim.WordBytes * 3 / 4)
	if o.PipelineBatches {
		// Two batches are resident at once (double-buffered staging),
		// and each lane packs up to a batch's worth of output rows for
		// coalesced transfers: halve the derived budget so both fit.
		budget = budget / 2
	}
	return budget
}

// minShingleBudget is the smallest budget planBatches accepts.
func minShingleBudget(s int, gpuAggregate bool) int {
	overhead := 2 * (s + 2)
	if gpuAggregate {
		overhead += 9
	}
	return 3 + overhead + 2
}

// shingleFeasible reports whether the candidate's device footprint fits
// free memory: the planner's budget is itself a conservative footprint
// bound for the sequential paths, and the pipelined executor keeps
// `lanes` fully independent stagings resident. o carries the resolved pass
// shape (packed width, residency) whose buffers the lanes actually allocate;
// o.fusedPlan must hold the candidate's fusion choice.
func shingleFeasible(freeWords int, plans []batchPlan, cand sched.Candidate, s, c int, o Options) bool {
	if cand.Lanes <= 1 {
		return cand.BudgetWords <= freeWords
	}
	maxWords, maxPieces := 1, 1
	for _, p := range plans {
		maxWords = max(maxWords, p.words)
		maxPieces = max(maxPieces, len(p.pieces))
	}
	groupTrials := min(max(maxWords/(maxPieces*s), 1), c)
	packedWords := gpusim.PackedLen(maxWords, o.dataBits)
	var laneWords int
	switch {
	case o.dataBits > 0 && o.fusedPlan:
		laneWords = packedWords // the in-place image
	case o.dataBits > 0:
		laneWords = maxWords + packedWords // expanded data + packed staging
	default:
		laneWords = maxWords
	}
	if needsHashBuf(o) {
		laneWords += maxWords
	}
	laneWords += (maxPieces + 1) + groupTrials*maxPieces*s
	if o.residentParams == nil {
		laneWords += 2 * c
	}
	return cand.Lanes*laneWords <= freeWords
}

// autotunePass picks the batch budget and lane count for one shingling
// pass by predicted virtual time, returning the chosen plan. When no
// candidate is feasible it falls back to the legacy derivation (reported
// with AutoTuned=false).
func autotunePass(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int,
	o Options) (sched.PlanReport, []batchPlan, int, error) {

	freeWords := int(dev.FreeMemory() / gpusim.WordBytes)
	maxB := freeWords * 3 / 4
	minB := minShingleBudget(s, o.GPUAggregate)
	m := calibrateShingleModel(dev.Config(), in, fam, s, o)
	c := fam.Size()

	// Fusion is a per-candidate choice: with o.Fuse the sweep crosses every
	// budget × lane pair with both kernel shapes and the argmin decides —
	// the fused kernel trades a launch and the hash-buffer round trip for
	// hash work at the selection kernel's occupancy, so neither side wins
	// universally.
	fusedSet := []bool{false}
	if o.Fuse {
		fusedSet = []bool{false, true}
	}
	var cands []sched.Candidate
	for _, b := range sched.Budgets(maxB, minB) {
		for _, l := range shingleLaneSet(o) {
			for _, f := range fusedSet {
				cands = append(cands, sched.Candidate{BudgetWords: b, Lanes: l, Fused: f})
			}
		}
	}
	planCache := map[int][]batchPlan{}
	plansFor := func(b int) []batchPlan {
		if p, ok := planCache[b]; ok {
			return p
		}
		p, err := planBatches(in, s, b, o.GPUAggregate)
		if err != nil {
			p = nil
		}
		planCache[b] = p
		return p
	}
	best, predicted, ok := sched.Pick(cands, func(cand sched.Candidate) (float64, bool) {
		plans := plansFor(cand.BudgetWords)
		po := o
		po.fusedPlan = cand.Fused
		if plans == nil || !shingleFeasible(freeWords, plans, cand, s, c, po) {
			return 0, false
		}
		return predictShinglePlans(m, in, fam, s, po, plans, cand.Lanes), true
	})
	if !ok {
		budget := legacyShingleBudget(dev, o)
		plans, err := planBatches(in, s, budget, o.GPUAggregate)
		if err != nil {
			return sched.PlanReport{}, nil, 0, err
		}
		lanes := 1
		if o.PipelineBatches {
			lanes = 2
		}
		return sched.PlanReport{BudgetWords: budget, Lanes: lanes, Fused: o.Fuse, Batches: len(plans)},
			plans, lanes, nil
	}
	plans := plansFor(best.BudgetWords)
	rep := sched.PlanReport{AutoTuned: true, BudgetWords: best.BudgetWords,
		Lanes: best.Lanes, Fused: best.Fused, Batches: len(plans), PredictedNs: predicted}
	return rep, plans, best.Lanes, nil
}
