package core

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// Observability plumbing for the backends. The contract with internal/obs:
// recording is pure observation — chargeHost advances the virtual clock by
// exactly what dev.AdvanceHost would have, and every other hook only reads
// clocks — so a nil recorder yields a bit-identical run.

// chargeHost advances the device's host clock by ns of CPU work and, when a
// recorder is wired, mirrors the charge as a host-cpu span so the Table-I
// component split can be regenerated from spans (obs.TableSplit).
func chargeHost(dev *gpusim.Device, r *obs.Recorder, name string, ns float64) {
	if r.Enabled() && ns > 0 {
		t0 := dev.HostTime()
		dev.AdvanceHost(ns)
		r.Span(obs.TrackHostCPU, name, t0, t0+ns)
		return
	}
	dev.AdvanceHost(ns)
}

// startPhase opens a coarse phase span at the device's current virtual
// time; close it with endPhase. Both are inert on a nil recorder.
func startPhase(dev *gpusim.Device, r *obs.Recorder, name string) obs.Ending {
	if !r.Enabled() {
		return obs.Ending{}
	}
	return r.Start(obs.TrackPhases, name, dev.HostTime())
}

func endPhase(dev *gpusim.Device, e obs.Ending) {
	e.End(dev.HostTime())
}

// recoveryInstant marks one fault-recovery action (retry, split, fallback,
// restart) on the recovery track at the device's current virtual time.
func recoveryInstant(dev *gpusim.Device, r *obs.Recorder, name string) {
	if r.Enabled() {
		r.Instant(obs.TrackRecovery, name, dev.HostTime())
	}
}

// recordRunMetrics registers the run's counters from the finished Result —
// sourcing them from Result itself guarantees the exported metrics match it
// exactly.
func recordRunMetrics(r *obs.Recorder, res *Result) {
	if !r.Enabled() {
		return
	}
	r.Counter("gpclust_tuples",
		"Shingle tuples emitted across both shingling passes.").
		Add(res.Pass1.Tuples + res.Pass2.Tuples)
	r.Counter("gpclust_shingles",
		"Distinct shingles grouped across both shingling passes.").
		Add(int64(res.Pass1.Shingles + res.Pass2.Shingles))
	r.Counter("gpclust_batches",
		"Device batches scheduled across both shingling passes.").
		Add(int64(res.Pass1.Batches + res.Pass2.Batches))
	r.Gauge("gpclust_clusters",
		"Clusters reported by the most recent run.").
		Set(float64(res.NumClusters()))

	// Transfer-cost split: the fixed per-copy setup ns versus the
	// bandwidth-proportional volume ns, per direction. Packing shrinks only
	// the volume term; coalescing shrinks only the setup term — the pair of
	// gauges shows which lever a configuration actually pulled.
	t := res.Timings
	r.Gauge("gpclust_h2d_setup_ns",
		"Fixed per-copy setup time across all host→device transfers.").Set(t.H2DSetupNs)
	r.Gauge("gpclust_h2d_volume_ns",
		"Bandwidth-proportional time across all host→device transfers.").Set(t.H2DVolumeNs)
	r.Gauge("gpclust_d2h_setup_ns",
		"Fixed per-copy setup time across all device→host transfers.").Set(t.D2HSetupNs)
	r.Gauge("gpclust_d2h_volume_ns",
		"Bandwidth-proportional time across all device→host transfers.").Set(t.D2HVolumeNs)
	r.Gauge("gpclust_h2d_bytes",
		"Bytes moved host→device by the most recent run.").Set(float64(t.H2DBytes))
	r.Gauge("gpclust_d2h_bytes",
		"Bytes moved device→host by the most recent run.").Set(float64(t.D2HBytes))

	f := res.Faults
	r.Counter("gpclust_fault_transfer_retries",
		"Batches retried after an H2D/D2H transfer fault.").Add(f.TransferRetries)
	r.Counter("gpclust_fault_kernel_retries",
		"Batches retried after a kernel-launch fault.").Add(f.KernelRetries)
	r.Counter("gpclust_fault_oom_retries",
		"Batches retried after an unsplittable device OOM.").Add(f.OOMRetries)
	r.Counter("gpclust_fault_oom_splits",
		"Batches split in half after persistent device OOM.").Add(f.OOMSplits)
	r.Counter("gpclust_fault_host_fallbacks",
		"Batches degraded to the bit-identical host path.").Add(f.HostFallbacks)
	r.Counter("gpclust_fault_pipeline_restarts",
		"Pipelined passes restarted from a clean slate.").Add(f.Restarts)
	r.Gauge("gpclust_fault_backoff_ns",
		"Virtual-clock backoff burned between fault retries.").Set(f.BackoffNs)
}

// recordHostTimeline reconstructs a host-only backend's spans on a
// sequential virtual timeline: read, then per pass shingle+aggregate, then
// report. Host-only backends have no device clock, so the components are
// laid out end to end — which preserves every component sum and the total,
// exactly the Timings the backend reports. passes holds per-pass
// (shingleNs, aggregateNs) deltas.
func recordHostTimeline(r *obs.Recorder, diskNs float64, passes [2][2]float64, reportNs float64) {
	if !r.Enabled() {
		return
	}
	cur := 0.0
	span := func(track, name string, ns float64) {
		if ns > 0 {
			r.Span(track, name, cur, cur+ns)
		}
		cur += ns
	}
	phase := func(name string, from float64) {
		if cur > from {
			r.Span(obs.TrackPhases, name, from, cur)
		}
	}
	p0 := cur
	span(obs.TrackHostCPU, obs.NameRead, diskNs)
	phase(obs.NameRead, p0)
	for i, p := range passes {
		p0 = cur
		span(obs.TrackHostCPU, obs.NameShingle, p[0])
		span(obs.TrackHostCPU, "aggregate", p[1])
		phase(fmt.Sprintf("shingle-pass%d", i+1), p0)
	}
	p0 = cur
	span(obs.TrackHostCPU, "report", reportNs)
	phase("report", p0)
}

// batchHistogram returns the per-batch virtual-duration histogram (nil when
// recording is disabled).
func batchHistogram(r *obs.Recorder) *obs.Histogram {
	return r.Histogram("gpclust_batch_virtual_ns",
		"Virtual-clock duration of one device batch through the resilient ladder.",
		obs.DefBucketsNs)
}
