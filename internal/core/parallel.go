package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"gpclust/internal/graph"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
	"gpclust/internal/unionfind"
)

// ClusterParallel is the multi-core host backend: both shingling passes run
// across a worker pool (Options.Workers goroutines, default GOMAXPROCS),
// aggregation is sharded by shingle key and merged without a global lock,
// and Phase III reporting unions through a lock-free union-find. The
// clustering is bit-identical to ClusterSerial for the same Options — the
// determinism argument of DESIGN §5: grouped output depends only on the
// per-trial (key, owner)-sorted tuple stream, which is invariant to the
// order tuples were generated in, and the reported partition depends only
// on the union-find's connectivity closure, which is invariant to union
// order.
//
// Timings prices the critical path: each component is the maximum virtual
// time any one worker spent in it, and Result.WorkerCPUNs exposes the
// per-worker spread. Result.Wall carries real wall-clock phase times, since
// the virtual cost model prices operations, not cores.
func ClusterParallel(g *graph.Graph, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	workers := o.workerCount()
	fam1, fam2 := o.families()
	accts := make([]cpuAccount, workers)
	res := &Result{Backend: "parallel", Workers: workers}

	accts[0].diskBytes = graphDiskBytes(g)

	sw := sched.NewStopwatch()
	in := FromGraph(g)
	gi := runPassParallel(in, fam1, o.S1, workers, accts, &res.Pass1)
	res.Pass1.Batches = 1
	res.Wall.Pass1Ns = sw.Lap()
	var s1, a1 float64
	for w := range accts {
		s1 = max(s1, accts[w].serialNs())
		a1 = max(a1, accts[w].aggNs())
	}

	pass2In := gi.filterMinLen(o.S2)
	res.Pass1.SharedLists = pass2In.NumLists()
	gii := runPassParallel(pass2In, fam2, o.S2, workers, accts, &res.Pass2)
	res.Pass2.Batches = 1
	res.Wall.Pass2Ns = sw.Lap()

	res.Clustering = reportClustersParallel(g.NumVertices(), gi, gii, o.Mode, workers, accts)
	res.Wall.ReportNs = sw.Lap()
	res.Wall.TotalNs = sw.Total()

	// Critical-path virtual clock: a parallel phase takes as long as its
	// busiest worker.
	var shingleNs, aggNs, reportNs float64
	res.WorkerCPUNs = make([]float64, workers)
	for w := range accts {
		a := &accts[w]
		shingleNs = max(shingleNs, a.serialNs())
		aggNs = max(aggNs, a.aggNs())
		reportNs = max(reportNs, a.reportNs())
		res.WorkerCPUNs[w] = a.serialNs() + a.aggNs() + a.reportNs()
	}
	diskNs := accts[0].diskNs()
	res.Timings = Timings{
		ShingleNs: shingleNs,
		CPUNs:     aggNs + reportNs,
		DiskIONs:  diskNs,
		TotalNs:   shingleNs + aggNs + reportNs + diskNs,
	}
	recordHostTimeline(o.Obs, diskNs,
		[2][2]float64{{s1, a1}, {shingleNs - s1, aggNs - a1}}, reportNs)
	recordRunMetrics(o.Obs, res)
	return res, nil
}

// Aggregation shards: tuples are routed by the top bits of their shingle
// key, so shard order is key order and sorting each shard independently
// then concatenating in shard order reproduces the globally sorted stream
// the serial backend groups.
const (
	parShardBits  = 3
	parNumShards  = 1 << parShardBits
	parChunkLists = 64 // lists claimed per worker grab in pass A
)

func parShard(key uint64) int { return int(key >> (64 - parShardBits)) }

// shardFrag is one (trial, shard)'s grouped output: owner data plus the end
// offset of each key-group, relative to the fragment.
type shardFrag struct {
	data []uint32
	ends []int64
}

// runPassParallel is runPassSerial across a worker pool, in three phases:
//
//	A. shingle extraction — workers claim chunks of lists from an atomic
//	   cursor and append <key, owner> tuples into per-worker per-(trial,
//	   shard) buffers: no shared mutable state, no lock.
//	B. sharded aggregation — workers claim (trial, shard) slots, concatenate
//	   that slot's buffers from every worker, radix-sort, and group into a
//	   fragment. Slots are independent, so again no lock.
//	C. stitch — fragments are concatenated in (trial, shard) order, which
//	   is exactly the serial backend's (trial, key) order.
func runPassParallel(in *SegGraph, fam minwise.Family, s, workers int,
	accts []cpuAccount, stats *PassStats) *SegGraph {

	numLists := in.NumLists()
	c := fam.Size()
	slots := c * parNumShards
	stats.Lists = numLists
	stats.Elements = int64(len(in.Data))

	// Phase A: parallel shingle extraction.
	perWorker := make([][][]tuple, workers)
	for w := range perWorker {
		perWorker[w] = make([][]tuple, slots)
	}
	type passCounters struct {
		skipped int
		tuples  int64
		_       [48]byte // pad to a cache line: counters are written hot
	}
	counters := make([]passCounters, workers)

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acct := &accts[w]
			local := perWorker[w]
			cnt := &counters[w]
			minima := getMinima(s)
			defer putMinima(minima)
			for {
				lo := int(cursor.Add(parChunkLists)) - parChunkLists
				if lo >= numLists {
					return
				}
				hi := min(lo+parChunkLists, numLists)
				for i := lo; i < hi; i++ {
					lst := in.List(i)
					if len(lst) < s {
						cnt.skipped++
						continue
					}
					owner := in.Owner(i)
					for j, h := range fam.Pairs {
						minwise.MinS(h, lst, minima)
						acct.serialOps += shingleListOps(len(lst), s)
						key := shingleKey(uint32(j), minima)
						slot := j*parNumShards + parShard(key)
						if local[slot] == nil {
							local[slot] = getTupleSlice(parChunkLists)
						}
						local[slot] = append(local[slot], tuple{key: key, owner: owner})
						cnt.tuples++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range counters {
		stats.SkippedShort += counters[w].skipped
		stats.Tuples += counters[w].tuples
	}

	// Phase B: sharded aggregation. Each slot's tuples are gathered from
	// every worker in worker order (the radix sort erases the arrival
	// order), sorted, and grouped.
	frags := make([]shardFrag, slots)
	var slotCursor atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acct := &accts[w]
			for {
				slot := int(slotCursor.Add(1)) - 1
				if slot >= slots {
					return
				}
				total := 0
				for _, pw := range perWorker {
					total += len(pw[slot])
				}
				if total == 0 {
					continue
				}
				ts := getTupleSlice(total)
				for _, pw := range perWorker {
					ts = append(ts, pw[slot]...)
				}
				sortTuples(ts)
				n := int64(total)
				acct.aggOps += n*int64(bits.Len64(uint64(n))) + n
				f := &frags[slot]
				start := 0
				for i := 1; i <= total; i++ {
					if i < total && ts[i].key == ts[start].key {
						continue
					}
					for _, tu := range ts[start:i] {
						f.data = append(f.data, tu.owner)
					}
					f.ends = append(f.ends, int64(len(f.data)))
					start = i
				}
				putTupleSlice(ts)
			}
		}(w)
	}
	wg.Wait()
	for _, pw := range perWorker {
		for i, ts := range pw {
			if ts != nil {
				putTupleSlice(ts)
				pw[i] = nil
			}
		}
	}

	// Phase C: stitch fragments in (trial, shard) order — identical to the
	// serial stream's (trial, key) order since a shard is a key range.
	totalData, totalGroups := 0, 0
	for i := range frags {
		totalData += len(frags[i].data)
		totalGroups += len(frags[i].ends)
	}
	out := &SegGraph{
		Offsets: make([]int64, 1, totalGroups+1),
		Data:    make([]uint32, 0, totalData),
	}
	for i := range frags {
		f := &frags[i]
		base := int64(len(out.Data))
		out.Data = append(out.Data, f.data...)
		for _, e := range f.ends {
			out.Offsets = append(out.Offsets, base+e)
		}
	}
	stats.Shingles = out.NumLists()
	accts[0].aggOps += int64(len(out.Data))
	return out
}

// reportClustersParallel is Phase III across the worker pool. The
// second-level component discovery and the vertex unions go through
// lock-free union-finds; union order does not affect the connectivity
// closure, so the partition — and after sortClusters, the exact output —
// matches reportClusters.
func reportClustersParallel(n int, gi, gii *SegGraph, mode ReportMode,
	workers int, accts []cpuAccount) Clustering {

	numS1 := gi.NumLists()
	ufS1 := unionfind.NewConcurrent(numS1)
	inGII := make([]uint32, numS1)

	// Components of G_II restricted to the S1' side, discovered in parallel
	// over the second-level lists. inGII stores are atomic: several lists
	// may flag the same first-level shingle.
	parallelFor(workers, gii.NumLists(), func(w, k int) {
		members := gii.List(k)
		for j, s1 := range members {
			atomic.StoreUint32(&inGII[s1], 1)
			if j > 0 {
				ufS1.Union(int(members[0]), int(s1))
			}
			accts[w].reportOps++
		}
	})

	if mode == ReportOverlapping {
		// Overlapping mode is rare and cheap next to shingling: reuse the
		// serial enumeration on the frozen component structure.
		flags := make([]bool, numS1)
		for i, v := range inGII {
			flags[i] = v != 0
		}
		return reportOverlapping(n, gi, ufS1.Freeze(), flags, &accts[0])
	}

	// Union every vertex of every first-level shingle in a component, in
	// parallel over the first-level lists. anchor[root] is CAS-claimed by
	// whichever worker gets there first; any representative yields the same
	// closure.
	uf := unionfind.NewConcurrent(n)
	anchor := make([]atomic.Int64, numS1)
	for i := range anchor {
		anchor[i].Store(-1)
	}
	parallelFor(workers, numS1, func(w, i int) {
		if atomic.LoadUint32(&inGII[i]) == 0 {
			return
		}
		root := ufS1.Find(i)
		for _, v := range gi.List(i) {
			a := anchor[root].Load()
			if a < 0 {
				if anchor[root].CompareAndSwap(-1, int64(v)) {
					a = int64(v)
				} else {
					a = anchor[root].Load()
				}
			}
			uf.Union(int(a), int(v))
			accts[w].reportOps++
		}
	})

	// Materialize: parallel root resolution, then a sequential grouping
	// scan in vertex order (members come out ascending by construction).
	roots := make([]int32, n)
	parallelFor(workers, n, func(w, v int) {
		roots[v] = int32(uf.Find(v))
	})
	clusterIdx := make([]int32, n)
	for i := range clusterIdx {
		clusterIdx[i] = -1
	}
	clusters := make([][]uint32, 0, 64)
	for v := 0; v < n; v++ {
		r := roots[v]
		ci := clusterIdx[r]
		if ci < 0 {
			ci = int32(len(clusters))
			clusterIdx[r] = ci
			clusters = append(clusters, nil)
		}
		clusters[ci] = append(clusters[ci], uint32(v))
	}
	accts[0].reportOps += int64(n)
	sortClusters(clusters)
	return Clustering{N: n, Clusters: clusters}
}

// parallelFor runs body(worker, i) for every i in [0, n) across the pool,
// claiming contiguous chunks from an atomic cursor. It degrades to an
// inline loop for a single worker.
func parallelFor(workers, n int, body func(worker, i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					body(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
}
