package core

import (
	"fmt"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/minwise"
	"gpclust/internal/obs"
	"gpclust/internal/sched"
	"gpclust/internal/thrust"
)

// ClusterGPU runs the gpClust CPU–GPU pipeline of Section III-C and
// Algorithm 2: the CPU loads the graph and partitions it into batches of
// adjacency lists sized to the device memory; each batch is moved to the
// device once and shingled for all c trials (per trial: a transform() hash
// kernel, a segmented top-s selection, and a device→host transfer of the
// shingles); the CPU aggregates the shingles — merging partial results of
// lists split across batches — into the next-level shingle graph, repeats
// for the second level, and reports dense subgraphs.
//
// The device's virtual clock provides the Table I component breakdown; the
// clustering itself is bit-identical to ClusterSerial for the same Options
// (verified by tests).
func ClusterGPU(g *graph.Graph, dev *gpusim.Device, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	fam1, fam2 := o.families()
	acct := &cpuAccount{}
	res := &Result{Backend: "gpu"}

	dev.Reset()

	// Both passes' hash-pair tables <A_j, B_j> are loop-invariant for the
	// whole run: stage them device-resident once, for every batch and lane
	// of both passes. On allocation or transfer failure the run degrades to
	// the per-batch upload path (residentParams == nil), mirroring the
	// BLOSUM62 residency ladder in pgraph.
	o.residentParams = uploadResidentParams(dev, fam1, fam2)
	freeResident := func() {
		if o.residentParams != nil {
			o.residentParams.Free()
			o.residentParams = nil
		}
	}
	defer freeResident()

	// "CPU initiate[s] the task by loading graph into HM" (Algorithm 2).
	acct.diskBytes = graphDiskBytes(g)
	ph := startPhase(dev, o.Obs, obs.NameRead)
	chargeHost(dev, o.Obs, obs.NameRead, acct.diskNs())
	endPhase(dev, ph)

	sw := sched.NewStopwatch()
	in := FromGraph(g)
	ph = startPhase(dev, o.Obs, "shingle-pass1")
	gi, err := runPassGPU(dev, in, fam1, o.S1, o, "pass1", acct, &res.Pass1, &res.Faults)
	endPhase(dev, ph)
	if err != nil {
		return nil, fmt.Errorf("core: first-level shingling: %w", err)
	}
	res.Wall.Pass1Ns = sw.Lap()

	// "CPU aggregates sglsH into a graph" — the filter is part of shingle
	// graph preparation.
	beforeAgg := acct.aggOps
	ph = startPhase(dev, o.Obs, "aggregate")
	pass2In := gi.filterMinLen(o.S2)
	acct.aggOps += int64(len(gi.Data))
	res.Pass1.SharedLists = pass2In.NumLists()
	chargeHost(dev, o.Obs, "aggregate", float64(acct.aggOps-beforeAgg)*AggregateNsPerOp)
	endPhase(dev, ph)

	ph = startPhase(dev, o.Obs, "shingle-pass2")
	gii, err := runPassGPU(dev, pass2In, fam2, o.S2, o, "pass2", acct, &res.Pass2, &res.Faults)
	endPhase(dev, ph)
	if err != nil {
		return nil, fmt.Errorf("core: second-level shingling: %w", err)
	}
	res.Wall.Pass2Ns = sw.Lap()

	// "final data aggregation on CPU ... CPU reports dense subgraphs".
	beforeReport := acct.reportOps
	ph = startPhase(dev, o.Obs, "report")
	res.Clustering = reportClusters(g.NumVertices(), gi, gii, o.Mode, acct)
	chargeHost(dev, o.Obs, "report", float64(acct.reportOps-beforeReport)*ReportNsPerOp)
	endPhase(dev, ph)
	res.Wall.ReportNs = sw.Lap()
	res.Wall.TotalNs = sw.Total()

	freeResident()
	dev.Synchronize()
	m := dev.Metrics()
	res.Timings = Timings{
		// ShingleNs is nonzero only when fault recovery degraded batches
		// to host-side shingling.
		ShingleNs:   acct.serialNs(),
		CPUNs:       acct.aggNs() + acct.reportNs() + acct.packNs(),
		GPUNs:       m.KernelTimeNs,
		H2DNs:       m.H2DTimeNs,
		D2HNs:       m.D2HTimeNs,
		DiskIONs:    acct.diskNs(),
		TotalNs:     dev.HostTime(),
		H2DSetupNs:  m.H2DSetupNs,
		H2DVolumeNs: m.H2DVolumeNs,
		D2HSetupNs:  m.D2HSetupNs,
		D2HVolumeNs: m.D2HVolumeNs,
		H2DBytes:    m.H2DBytes,
		D2HBytes:    m.D2HBytes,
	}
	assertDeviceClean(dev)
	recordRunMetrics(o.Obs, res)
	return res, nil
}

// batchPiece is one device segment: a whole list or a contiguous piece of a
// list that had to be split across batches.
type batchPiece struct {
	list   int   // index into the pass input SegGraph
	lo, hi int64 // element range within that list
}

func (p batchPiece) words() int { return int(p.hi - p.lo) }

// isWhole reports whether the piece covers its entire list.
func (p batchPiece) isWhole(sg *SegGraph) bool {
	return p.lo == 0 && p.hi == sg.Offsets[p.list+1]-sg.Offsets[p.list]
}

// batchPlan is one device batch of adjacency-list pieces.
type batchPlan struct {
	pieces []batchPiece
	words  int
}

// planBatches partitions the pass input into batches whose device footprint
// fits the word budget, splitting individual lists only when a single list
// alone exceeds it. The footprint is sized conservatively for the async
// pipeline's double buffering — per data word, the data buffer plus two
// hashed copies; per piece, an offset word plus two s-word output slots —
// and, when gpuAggregate is set, for the aggregation pipeline's extra
// per-piece buffers (owner, flag, key halves, value, packed records).
func planBatches(in *SegGraph, s int, budgetWords int, gpuAggregate bool) ([]batchPlan, error) {
	perPieceOverhead := 2 * (s + 2)
	if gpuAggregate {
		perPieceOverhead += 9
	}
	minBudget := 3*1 + perPieceOverhead + 2
	if budgetWords < minBudget {
		return nil, fmt.Errorf("core: batch budget of %d words cannot hold any list", budgetWords)
	}
	// Largest data footprint a single piece may have.
	maxPieceWords := (budgetWords - perPieceOverhead - 2) / 3
	if maxPieceWords < 1 {
		maxPieceWords = 1
	}

	// Pre-split lists into pieces no larger than maxPieceWords, then pack
	// the pieces with the shared greedy planner.
	var pieces []batchPiece
	for i := 0; i < in.NumLists(); i++ {
		listLen := int(in.Offsets[i+1] - in.Offsets[i])
		lo := 0
		for lo < listLen || listLen == 0 {
			n := min(listLen-lo, maxPieceWords)
			pieces = append(pieces, batchPiece{list: i, lo: int64(lo), hi: int64(lo + n)})
			lo += n
			if listLen == 0 {
				break
			}
		}
	}
	spans, err := sched.PlanSpans(len(pieces), budgetWords, pieceSizer{pieces, perPieceOverhead})
	if err != nil {
		return nil, err
	}
	var plans []batchPlan
	for _, sp := range spans {
		cur := batchPlan{pieces: pieces[sp.Lo:sp.Hi:sp.Hi]}
		for _, pc := range cur.pieces {
			cur.words += pc.words()
		}
		plans = append(plans, cur)
	}
	return plans, nil
}

// pieceSizer feeds planBatches' additive piece costs to sched.PlanSpans.
type pieceSizer struct {
	pieces   []batchPiece
	overhead int
}

func (z pieceSizer) Reset()         {}
func (z pieceSizer) Commit(int)     {}
func (z pieceSizer) Cost(k int) int { return 3*z.pieces[k].words() + z.overhead }
func (z pieceSizer) Fail(k, need int) error {
	// Unreachable: maxPieceWords caps every piece's cost at the budget.
	return fmt.Errorf("core: piece of %d words needs %d budget words", z.pieces[k].words(), need)
}

// pendingShingle accumulates the per-trial partial minima of a list split
// across batches; the CPU merges each new piece's partial result into it
// ("a subsequent data aggregation on the CPU side will ... merge the
// different copies of shingles into one correct copy for the split
// adjacency list").
type pendingShingle struct {
	perTrial [][]uint32 // c slices of ≤ s ascending minima
}

// mergeTopS merges a piece's sentinel-padded ascending minima into the
// accumulated ascending minima, keeping at most s values.
func mergeTopS(acc []uint32, piece []uint32, s int) []uint32 {
	merged := make([]uint32, 0, s)
	i, j := 0, 0
	for len(merged) < s {
		var take uint32
		switch {
		case i < len(acc) && (j >= len(piece) || acc[i] <= piece[j]):
			take = acc[i]
			i++
		case j < len(piece):
			take = piece[j]
			j++
		default:
			return merged
		}
		if take == thrust.TopSSentinel {
			continue
		}
		merged = append(merged, take)
	}
	return merged
}

// runPassGPU executes one shingling pass (Algorithm 1 inside Algorithm 2's
// batch loop) on the device and aggregates the result into the next-level
// shingle graph on the CPU.
func runPassGPU(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int,
	o Options, label string, acct *cpuAccount, stats *PassStats, rec *faults.Recovery) (*SegGraph, error) {

	stats.Lists = in.NumLists()
	stats.Elements = int64(len(in.Data))
	c := fam.Size()
	tuplesByTrial := make([][]tuple, c)
	var sortedByTrial [][][]tuple
	if o.GPUAggregate {
		sortedByTrial = make([][][]tuple, c)
	}

	if in.NumLists() == 0 {
		return buildShingleGraph(tuplesByTrial, acct, stats), nil
	}
	for i := 0; i < in.NumLists(); i++ {
		if int(in.Offsets[i+1]-in.Offsets[i]) < s {
			stats.SkippedShort++
		}
	}

	// Resolve the pass's packed image width: every adjacency value at the
	// smallest width that holds the pass's maximum. Planning-time host work,
	// uncharged like the batch planner itself.
	o.dataBits = packWidth(o, in)

	lanes := 1
	if o.PipelineBatches {
		lanes = 2
	}
	var plans []batchPlan
	var report sched.PlanReport
	if o.BatchWords == 0 && o.AutoTune {
		var err error
		report, plans, lanes, err = autotunePass(dev, in, fam, s, o)
		if err != nil {
			return nil, err
		}
		// Fusion only where the model says it wins: the candidate sweep
		// crossed fused with unfused plans and the argmin decided.
		o.fusedPlan = report.Fused
	} else {
		// Fixed and legacy plans fuse unconditionally when allowed.
		o.fusedPlan = o.Fuse
		budget := o.BatchWords
		if budget == 0 {
			budget = legacyShingleBudget(dev, o)
		}
		var err error
		plans, err = planBatches(in, s, budget, o.GPUAggregate)
		if err != nil {
			return nil, err
		}
		report = sched.PlanReport{BudgetWords: budget, Lanes: lanes, Fused: o.fusedPlan, Batches: len(plans)}
		if o.PredictCost {
			m := calibrateShingleModel(dev.Config(), in, fam, s, o)
			report.PredictedNs = predictShinglePlans(m, in, fam, s, o, plans, lanes)
		}
	}
	stats.Batches = len(plans)

	pending := make(map[int]*pendingShingle)
	splitLists := make(map[int]bool)
	for _, p := range plans {
		for _, pc := range p.pieces {
			if !pc.isWhole(in) {
				splitLists[pc.list] = true
			}
		}
	}
	stats.SplitLists = len(splitLists)

	schedT0 := dev.HostTime()
	if lanes >= 2 {
		if err := runBatchesPipelinedResilient(dev, in, fam, s, o, label, plans, lanes, tuplesByTrial, pending, acct, stats, rec); err != nil {
			return nil, err
		}
	} else {
		for i, plan := range plans {
			var end obs.Ending
			var t0 float64
			if o.Obs.Enabled() {
				t0 = dev.HostTime()
				end = o.Obs.Start(obs.TrackBatches, fmt.Sprintf("%s.b%d", label, i), t0)
			}
			if err := runBatchResilient(dev, in, fam, s, o, plan, tuplesByTrial, sortedByTrial, pending, acct, stats, rec); err != nil {
				return nil, err
			}
			if o.Obs.Enabled() {
				t1 := dev.HostTime()
				end.End(t1)
				batchHistogram(o.Obs).Observe(t1 - t0)
			}
		}
	}
	report.ActualNs = dev.HostTime() - schedT0
	stats.Plan = report
	sched.RecordPlan(o.Obs, "gpclust_"+label, report)
	if len(pending) != 0 {
		return nil, fmt.Errorf("core: %d split lists never completed", len(pending))
	}

	beforeAgg := acct.aggOps
	var out *SegGraph
	if o.GPUAggregate {
		out = buildShingleGraphPresorted(sortedByTrial, tuplesByTrial, o.workerCount(), acct, stats)
	} else {
		out = buildShingleGraph(tuplesByTrial, acct, stats)
	}
	chargeHost(dev, o.Obs, "split-merge", float64(acct.aggOps-beforeAgg)*AggregateNsPerOp)
	return out, nil
}

// packWidth resolves a pass's packed image width: the smallest bit width
// that holds every adjacency value, or 0 (unpacked) when Packed is off or
// the values need full words anyway.
func packWidth(o Options, in *SegGraph) int {
	if !o.Packed || len(in.Data) == 0 {
		return 0
	}
	if bits := gpusim.MinBits(in.Data); bits < 32 {
		return bits
	}
	return 0
}

// uploadResidentParams stages both trial families' <A_j, B_j> tables in one
// device buffer for the whole run ([2·c1 words | 2·c2 words]). Returns nil
// on any allocation or transfer failure: the caller then degrades to the
// per-batch upload path, exactly like a failed BLOSUM62 residency upload.
func uploadResidentParams(dev *gpusim.Device, fam1, fam2 minwise.Family) *gpusim.Buffer {
	host := make([]uint32, 0, 2*(fam1.Size()+fam2.Size()))
	for _, fam := range []minwise.Family{fam1, fam2} {
		for _, h := range fam.Pairs {
			host = append(host, uint32(h.A), uint32(h.B))
		}
	}
	buf, err := dev.Malloc(len(host))
	if err != nil {
		return nil
	}
	if err := dev.CopyH2D(buf, 0, host); err != nil {
		buf.Free()
		return nil
	}
	return buf
}

// batchImage is the device-resident form of one batch's adjacency data:
// the plain full-width word buffer (bits == 0), or a packed image at bits
// per value that the fused kernels read in place.
type batchImage struct {
	buf  *gpusim.Buffer
	bits int
}

// uploadBatchImage moves one batch's adjacency data to the device in the
// form the pass's plan calls for. Packed passes ship the packed image —
// cutting the copy's bandwidth-proportional cost by bits/32 — and either
// leave it packed for the fused kernels or expand it with the unpack kernel
// when the plan is unfused; the packed staging is freed right after the
// expansion so the batch footprint stays inside the planner's bound.
func uploadBatchImage(dev *gpusim.Device, o Options, hostData []uint32, acct *cpuAccount) (batchImage, func(), error) {
	none := func() {}
	if o.dataBits <= 0 {
		buf, err := dev.Malloc(len(hostData))
		if err != nil {
			return batchImage{}, none, err
		}
		if err := dev.CopyH2D(buf, 0, hostData); err != nil {
			buf.Free()
			return batchImage{}, none, err
		}
		return batchImage{buf: buf}, func() { buf.Free() }, nil
	}

	hostPacked := gpusim.PackBits(hostData, o.dataBits)
	acct.packOps += int64(len(hostData))
	chargeHost(dev, o.Obs, "pack", float64(len(hostData))*PackNsPerOp)
	packedBuf, err := dev.Malloc(len(hostPacked))
	if err != nil {
		return batchImage{}, none, err
	}
	if err := dev.CopyH2D(packedBuf, 0, hostPacked); err != nil {
		packedBuf.Free()
		return batchImage{}, none, err
	}
	if o.fusedPlan {
		return batchImage{buf: packedBuf, bits: o.dataBits}, func() { packedBuf.Free() }, nil
	}
	dataBuf, err := dev.Malloc(len(hostData))
	if err != nil {
		packedBuf.Free()
		return batchImage{}, none, err
	}
	if err := thrust.UnpackBits(dev, packedBuf, dataBuf, len(hostData), o.dataBits); err != nil {
		packedBuf.Free()
		dataBuf.Free()
		return batchImage{}, none, err
	}
	packedBuf.Free()
	return batchImage{buf: dataBuf}, func() { dataBuf.Free() }, nil
}

// runBatch moves one batch of adjacency-list pieces to the device, runs all
// c shingling trials on it, and streams the shingle results back for CPU
// aggregation. With o.AsyncTransfer the trials are double-buffered across
// two streams so transfers and the next trial's kernels overlap CPU
// aggregation; otherwise every step is synchronous, like the Thrust
// implementation the paper describes.
func runBatch(dev *gpusim.Device, in *SegGraph, fam minwise.Family, s int, o Options,
	plan batchPlan, tuplesByTrial [][]tuple, sortedByTrial [][][]tuple,
	pending map[int]*pendingShingle, acct *cpuAccount, stats *PassStats) error {

	numPieces := len(plan.pieces)
	// Assemble the batch's contiguous data and offsets on the host.
	hostData := make([]uint32, 0, plan.words)
	hostOff := make([]uint32, numPieces+1)
	for pi, pc := range plan.pieces {
		base := in.Offsets[pc.list]
		hostData = append(hostData, in.Data[base+pc.lo:base+pc.hi]...)
		hostOff[pi+1] = uint32(len(hostData))
	}
	acct.aggOps += int64(len(hostData) + numPieces)
	chargeHost(dev, o.Obs, "stage", float64(len(hostData)+numPieces)*AggregateNsPerOp)

	img, freeImg, err := uploadBatchImage(dev, o, hostData, acct)
	if err != nil {
		return err
	}
	defer freeImg()
	offBuf, err := dev.Malloc(numPieces + 1)
	if err != nil {
		return err
	}
	defer offBuf.Free()
	if err := dev.CopyH2D(offBuf, 0, hostOff); err != nil {
		return err
	}
	segs := thrust.Segments{Offsets: offBuf, NumSegs: numPieces}

	c := fam.Size()
	processTrial := func(trial int, hostOut []uint32) {
		before := acct.aggOps
		emitTrialTuples(in, plan, s, trial, c, hostOut, tuplesByTrial, pending, acct, stats)
		chargeHost(dev, o.Obs, "aggregate", float64(acct.aggOps-before)*AggregateNsPerOp)
	}

	switch {
	case o.GPUAggregate:
		return runTrialsGPUAgg(dev, in, plan, segs, fam, s, o, img, len(hostData),
			tuplesByTrial, sortedByTrial, pending, acct, stats)
	case o.AsyncTransfer:
		return runTrialsAsync(dev, img, segs, fam, s, o, len(hostData), numPieces, processTrial)
	default:
		return runTrialsSync(dev, img, segs, fam, s, o, len(hostData), numPieces, processTrial)
	}
}

// needsHashBuf reports whether the plan's trial kernels stage hashed values
// in a full-width scratch buffer: always when unfused, and under UseFullSort
// even fused (the fused sort writes the sorted hashes for the gather).
func needsHashBuf(o Options) bool {
	return !o.fusedPlan || o.UseFullSort
}

// trialKernels enqueues one trial's device work over the batch image: the
// fused single launch (hash + top-s selection reading the image in place),
// the fused sort + gather pair under UseFullSort, or the classic
// transform_hash + top-s sequence. All forms write the trial's
// sentinel-padded minima rows at out[outBase:...] and are bit-identical.
func trialKernels(dev *gpusim.Device, st *gpusim.Stream, img batchImage, hashBuf *gpusim.Buffer,
	segs thrust.Segments, s int, o Options, dataWords int, a, b uint64,
	outBuf *gpusim.Buffer, outBase int) error {

	if o.fusedPlan {
		if !o.UseFullSort {
			return thrust.FusedHashTopS(dev, st, img.buf, img.bits, segs, s, a, b, minwise.Prime, outBuf, outBase)
		}
		if err := thrust.FusedHashSort(dev, st, img.buf, img.bits, segs, a, b, minwise.Prime, hashBuf); err != nil {
			return err
		}
		return gatherTopS(dev, st, hashBuf, segs, s, outBuf, outBase)
	}
	if err := thrust.TransformHashOnStream(dev, st, img.buf, hashBuf, dataWords, a, b, minwise.Prime); err != nil {
		return err
	}
	return topSKernel(dev, st, hashBuf, segs, s, outBuf, outBase, o.UseFullSort)
}

// runTrialsSync is the paper's synchronous pipeline: per trial, hash
// transform, segmented top-s (or full sort), synchronous D2H, then CPU
// aggregation — "the data movement operations are implemented using
// synchronous mechanism, and the overhead ... is unavoidable".
func runTrialsSync(dev *gpusim.Device, img batchImage, segs thrust.Segments,
	fam minwise.Family, s int, o Options, dataWords, numPieces int,
	processTrial func(int, []uint32)) error {

	var hashBuf *gpusim.Buffer
	if needsHashBuf(o) {
		var err error
		hashBuf, err = dev.Malloc(dataWords)
		if err != nil {
			return err
		}
		defer hashBuf.Free()
	}
	outBuf, err := dev.Malloc(numPieces * s)
	if err != nil {
		return err
	}
	defer outBuf.Free()
	// The trial's hash-pair constants <A_j, B_j> travel to the device each
	// iteration (the functor state of the thrust::transform call) — unless
	// the whole table is already device-resident for the run.
	var paramsBuf *gpusim.Buffer
	if o.residentParams == nil {
		paramsBuf, err = dev.Malloc(2)
		if err != nil {
			return err
		}
		defer paramsBuf.Free()
	}
	hostOut := make([]uint32, numPieces*s)

	for trial, h := range fam.Pairs {
		if paramsBuf != nil {
			if err := dev.CopyH2D(paramsBuf, 0, []uint32{uint32(h.A), uint32(h.B)}); err != nil {
				return err
			}
		}
		if err := trialKernels(dev, nil, img, hashBuf, segs, s, o, dataWords, h.A, h.B, outBuf, 0); err != nil {
			return err
		}
		if err := dev.CopyD2H(hostOut, outBuf, 0); err != nil {
			return err
		}
		processTrial(trial, hostOut)
	}
	return nil
}

// runTrialsAsync double-buffers the per-trial device resources across two
// streams: while trial t's shingles transfer back and are aggregated on the
// CPU, trial t+1's kernels already run — the asynchronous operation the
// paper names as the path to better performance (Sections III-C, V).
func runTrialsAsync(dev *gpusim.Device, img batchImage, segs thrust.Segments,
	fam minwise.Family, s int, o Options, dataWords, numPieces int,
	processTrial func(int, []uint32)) error {

	type lane struct {
		hash, out, params *gpusim.Buffer
		stream            *gpusim.Stream
		host              []uint32
		inFlight          int // trial index, -1 when idle
	}
	lanes := make([]*lane, 2)
	// Registered before the allocation loop: a Malloc failure assembling
	// lane 1 must still release lane 0's buffers.
	defer func() {
		for _, l := range lanes {
			if l == nil {
				continue
			}
			for _, b := range []*gpusim.Buffer{l.hash, l.out, l.params} {
				if b != nil {
					b.Free()
				}
			}
		}
	}()
	for i := range lanes {
		l := &lane{
			stream:   dev.NewStream(),
			host:     make([]uint32, numPieces*s),
			inFlight: -1,
		}
		lanes[i] = l
		var err error
		if needsHashBuf(o) {
			if l.hash, err = dev.Malloc(dataWords); err != nil {
				return err
			}
		}
		if l.out, err = dev.Malloc(numPieces * s); err != nil {
			return err
		}
		if o.residentParams == nil {
			if l.params, err = dev.Malloc(2); err != nil {
				return err
			}
		}
	}

	drain := func(l *lane) {
		if l.inFlight >= 0 {
			l.stream.Synchronize()
			processTrial(l.inFlight, l.host)
			l.inFlight = -1
		}
	}

	for trial, h := range fam.Pairs {
		l := lanes[trial%2]
		drain(l)
		if l.params != nil {
			if err := dev.CopyH2DAsync(l.stream, l.params, 0, []uint32{uint32(h.A), uint32(h.B)}); err != nil {
				return err
			}
		}
		if err := trialKernels(dev, l.stream, img, l.hash, segs, s, o, dataWords, h.A, h.B, l.out, 0); err != nil {
			return err
		}
		if err := dev.CopyD2HAsync(l.stream, l.host, l.out, 0); err != nil {
			return err
		}
		l.inFlight = trial
	}
	for _, l := range lanes {
		drain(l)
	}
	return nil
}

// topSKernel produces each segment's ascending top-s minima, either with the
// fused selection kernel or — UseFullSort, Algorithm 1 taken literally —
// a full segmented sort followed by a gather of each segment's head. Both
// forms enqueue on a stream (nil = synchronous): the sort mutates hashBuf in
// place, which is safe because every lane of the async and batch-pipelined
// paths owns a private hash buffer that the next trial's transform rewrites
// in full. outBase offsets the destination rows so the pipelined path can
// pack several trials' results into one buffer for a single D2H transfer.
func topSKernel(dev *gpusim.Device, st *gpusim.Stream, hashBuf *gpusim.Buffer,
	segs thrust.Segments, s int, outBuf *gpusim.Buffer, outBase int, useFullSort bool) error {
	if !useFullSort {
		return thrust.SegmentedTopSAt(dev, st, hashBuf, segs, s, outBuf, outBase)
	}
	if err := thrust.SegmentedSortOnStream(dev, st, hashBuf, segs); err != nil {
		return err
	}
	return gatherTopS(dev, st, hashBuf, segs, s, outBuf, outBase)
}

// gatherTopS gathers the first s elements of each (already sorted) segment
// of hashBuf into sentinel-padded rows at outBuf[outBase:...). Shared by the
// full-sort path's tail and the fused sort's tail.
func gatherTopS(dev *gpusim.Device, st *gpusim.Stream, hashBuf *gpusim.Buffer,
	segs thrust.Segments, s int, outBuf *gpusim.Buffer, outBase int) error {
	const bd = 256
	grid := (segs.NumSegs + bd - 1) / bd
	dev.NextKernelName("gather_top_s")
	kern := func(ctx *gpusim.ThreadCtx) {
		seg := ctx.GlobalID()
		if seg >= segs.NumSegs {
			return
		}
		off := segs.Offsets.Words()
		lo, hi := int(off[seg]), int(off[seg+1])
		n := hi - lo
		dst := outBuf.Words()[outBase+seg*s : outBase+(seg+1)*s]
		take := n
		if take > s {
			take = s
		}
		copy(dst[:take], hashBuf.Words()[lo:lo+take])
		for i := take; i < s; i++ {
			dst[i] = thrust.TopSSentinel
		}
		ctx.GlobalRead(segs.Offsets, seg, 2, 1)
		ctx.GlobalRead(hashBuf, lo, take, 1)
		ctx.GlobalWrite(outBuf, outBase+seg*s, s, 1)
		ctx.Ops(s + 2)
	}
	if st != nil {
		return dev.LaunchOnStream(st, grid, bd, kern)
	}
	return dev.Launch(grid, bd, kern)
}

// emitTrialTuples converts one trial's device output into <shingle, owner>
// tuples, stashing and merging the partial minima of split lists.
func emitTrialTuples(in *SegGraph, plan batchPlan, s, trial, c int, hostOut []uint32,
	tuplesByTrial [][]tuple, pending map[int]*pendingShingle,
	acct *cpuAccount, stats *PassStats) {

	for pi, pc := range plan.pieces {
		vals := hostOut[pi*s : (pi+1)*s]
		acct.aggOps += int64(s)
		listLen := in.Offsets[pc.list+1] - in.Offsets[pc.list]

		if pc.isWhole(in) {
			if int(listLen) < s {
				continue // no shingle for short lists
			}
			tuplesByTrial[trial] = append(tuplesByTrial[trial], tuple{
				key:   shingleKey(uint32(trial), vals),
				owner: in.Owner(pc.list),
			})
			stats.Tuples++
			continue
		}

		// Split list: merge this piece's partial minima.
		p := pending[pc.list]
		if p == nil {
			p = &pendingShingle{perTrial: make([][]uint32, c)}
			pending[pc.list] = p
		}
		p.perTrial[trial] = mergeTopS(p.perTrial[trial], vals, s)
		acct.aggOps += int64(2 * s)

		if pc.hi == listLen && trial == c-1 {
			// Last piece, last trial: emit every trial's merged shingle.
			for tj, minima := range p.perTrial {
				if len(minima) < s {
					continue // whole list shorter than s
				}
				tuplesByTrial[tj] = append(tuplesByTrial[tj], tuple{
					key:   shingleKey(uint32(tj), minima),
					owner: in.Owner(pc.list),
				})
				stats.Tuples++
			}
			delete(pending, pc.list)
		}
	}
}
