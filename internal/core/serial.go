package core

import (
	"gpclust/internal/graph"
	"gpclust/internal/minwise"
	"gpclust/internal/sched"
)

// ClusterSerial runs the serial pClust shingling pipeline of Section III-B:
// two shingling passes (min-wise permutations, on-the-fly insertion-sort
// top-s selection) followed by Phase III reporting. Its virtual runtime is
// the "Serial runtime" column of Table I.
func ClusterSerial(g *graph.Graph, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	fam1, fam2 := o.families()
	acct := &cpuAccount{}
	res := &Result{Backend: "serial"}

	// Disk I/O: loading the graph from its binary on-disk form.
	acct.diskBytes = graphDiskBytes(g)

	sw := sched.NewStopwatch()
	in := FromGraph(g)
	gi := runPassSerial(in, fam1, o.S1, acct, &res.Pass1)
	res.Pass1.Batches = 1
	res.Wall.Pass1Ns = sw.Lap()
	s1, a1 := acct.serialNs(), acct.aggNs()

	pass2In := gi.filterMinLen(o.S2)
	res.Pass1.SharedLists = pass2In.NumLists()
	gii := runPassSerial(pass2In, fam2, o.S2, acct, &res.Pass2)
	res.Pass2.Batches = 1
	res.Wall.Pass2Ns = sw.Lap()

	res.Clustering = reportClusters(g.NumVertices(), gi, gii, o.Mode, acct)
	res.Wall.ReportNs = sw.Lap()
	res.Wall.TotalNs = sw.Total()

	shingleNs := acct.serialNs()
	cpuNs := acct.aggNs() + acct.reportNs()
	res.Timings = Timings{
		ShingleNs: shingleNs,
		CPUNs:     cpuNs,
		DiskIONs:  acct.diskNs(),
		TotalNs:   shingleNs + cpuNs + acct.diskNs(),
	}
	recordHostTimeline(o.Obs, acct.diskNs(),
		[2][2]float64{{s1, a1}, {shingleNs - s1, acct.aggNs() - a1}}, acct.reportNs())
	recordRunMetrics(o.Obs, res)
	return res, nil
}

// runPassSerial generates c shingles for every list of at least s elements
// and groups them into the next-level shingle graph. The top-s selection is
// the paper's "on-the-fly enumeration of Γ_j(u) ... keeping track of an
// s-sized array that records the minimum s elements ... through a simple
// insertion sort".
func runPassSerial(in *SegGraph, fam minwise.Family, s int, acct *cpuAccount, stats *PassStats) *SegGraph {
	stats.Lists = in.NumLists()
	stats.Elements = int64(len(in.Data))

	tuplesByTrial := make([][]tuple, fam.Size())
	minima := getMinima(s)
	defer putMinima(minima)
	for i := 0; i < in.NumLists(); i++ {
		lst := in.List(i)
		if len(lst) < s {
			stats.SkippedShort++
			continue
		}
		owner := in.Owner(i)
		for j, h := range fam.Pairs {
			minwise.MinS(h, lst, minima)
			acct.serialOps += shingleListOps(len(lst), s)
			tuplesByTrial[j] = append(tuplesByTrial[j], tuple{
				key:   shingleKey(uint32(j), minima),
				owner: owner,
			})
			stats.Tuples++
		}
	}
	return buildShingleGraph(tuplesByTrial, acct, stats)
}

// shingleListOps is the cost-model charge for shingling one list once: hash
// + compare per element, plus the occasional shift, charged as 2 ops per
// element plus s² for the seed sort. The serial and parallel backends share
// it so their virtual accounts price identical work identically.
func shingleListOps(listLen, s int) int64 {
	return int64(listLen)*2 + int64(s*s)
}

// graphDiskBytes is the size of the graph's binary on-disk representation
// (see graph.WriteBinary), used to model the Disk I/O column.
func graphDiskBytes(g *graph.Graph) int64 {
	return 20 + int64(len(g.Offsets))*8 + int64(len(g.Adj))*4
}
