package core

import (
	"reflect"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
)

// TestPackedEquivalenceAllBackends enforces the packed-image contract at the
// clustering level: every packing/fusion mode, on every GPU execution
// strategy, must reproduce the serial backend's clustering bit for bit —
// packing changes the bytes a transfer moves, never a computed value.
func TestPackedEquivalenceAllBackends(t *testing.T) {
	g, _ := plantedTestGraph(240, 13)
	base := testOptions()
	const batchWords = 2_000 // force several batches and split lists

	serial, err := ClusterSerial(g, base)
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name         string
		packed, fuse bool
	}{
		{"unpacked", false, false},
		{"packed", true, false},
		{"packed+fused", true, true},
	}
	for _, b := range chaosBackends(batchWords) {
		for _, m := range modes {
			o := base
			o.Packed, o.Fuse = m.packed, m.fuse
			res, err := b.run(nil, g, o)
			if err != nil {
				t.Fatalf("%s %s: %v", b.name, m.name, err)
			}
			if !reflect.DeepEqual(serial.Clustering, res.Clustering) {
				t.Fatalf("%s %s: clustering differs from serial", b.name, m.name)
			}
		}
	}
}

// TestPackedShrinksH2DVolume pins the point of the whole exercise: on the
// same graph and batch plan, the packed image moves strictly fewer
// host→device bytes — and only the bandwidth-proportional volume term
// shrinks, never the result.
func TestPackedShrinksH2DVolume(t *testing.T) {
	g, _ := plantedTestGraph(300, 5)
	o := testOptions()
	o.BatchWords = 4_000

	run := func(packed bool) *Result {
		oo := o
		oo.Packed, oo.Fuse = packed, packed
		dev := gpusim.MustNew(gpusim.K20Config())
		res, err := ClusterGPU(g, dev, oo)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unpacked, packed := run(false), run(true)
	if !reflect.DeepEqual(unpacked.Clustering, packed.Clustering) {
		t.Fatal("packed clustering differs from unpacked")
	}
	if packed.Timings.H2DBytes >= unpacked.Timings.H2DBytes {
		t.Fatalf("packed run moved %d H2D bytes, unpacked %d — packing must shrink the upload",
			packed.Timings.H2DBytes, unpacked.Timings.H2DBytes)
	}
	if packed.Timings.H2DVolumeNs >= unpacked.Timings.H2DVolumeNs {
		t.Fatalf("packed H2D volume %.0f ns >= unpacked %.0f ns",
			packed.Timings.H2DVolumeNs, unpacked.Timings.H2DVolumeNs)
	}
	for _, r := range []*Result{unpacked, packed} {
		if r.Timings.H2DNs != r.Timings.H2DSetupNs+r.Timings.H2DVolumeNs {
			t.Fatalf("H2D time %.0f is not setup %.0f + volume %.0f",
				r.Timings.H2DNs, r.Timings.H2DSetupNs, r.Timings.H2DVolumeNs)
		}
	}
}

// TestPackedChaosEquivalence runs the packed+fused path through random fault
// schedules: recovery — retries, batch splits, host fallback — must still
// land on the clean clustering, exactly as the unpacked chaos sweep does.
func TestPackedChaosEquivalence(t *testing.T) {
	g, _ := plantedTestGraph(200, 17)
	o := testOptions()
	o.BatchWords = 2_000
	o.Packed, o.Fuse = true, true

	for _, b := range chaosBackends(o.BatchWords) {
		clean, err := b.run(nil, g, o)
		if err != nil {
			t.Fatalf("%s clean run: %v", b.name, err)
		}
		for seed := int64(40); seed < 48; seed++ {
			inj := faults.NewInjector(faults.RandSchedule(seed, 5))
			res, err := b.run(inj, g, o)
			if err != nil {
				t.Fatalf("%s seed %d (schedule %q): %v",
					b.name, seed, faults.RandSchedule(seed, 5).String(), err)
			}
			if !reflect.DeepEqual(clean.Clustering, res.Clustering) {
				t.Fatalf("%s seed %d: packed clustering under faults differs from clean run (faults: %s)",
					b.name, seed, res.Faults)
			}
		}
	}
}
