package core

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
)

func TestGPUAggregateMatchesSerial(t *testing.T) {
	g, _ := plantedTestGraph(500, 61)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.GPUAggregate = true
	dev := gpusim.MustNew(gpusim.K20Config())
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("GPU-aggregated clustering differs from serial")
	}
	if serial.Pass1.Tuples != gpu.Pass1.Tuples || serial.Pass2.Tuples != gpu.Pass2.Tuples {
		t.Fatalf("tuple counts differ: %d/%d vs %d/%d",
			gpu.Pass1.Tuples, gpu.Pass2.Tuples, serial.Pass1.Tuples, serial.Pass2.Tuples)
	}
	if dev.AllocatedBuffers() != 0 {
		t.Fatalf("%d device buffers leaked", dev.AllocatedBuffers())
	}
}

func TestGPUAggregateAcrossBatchesWithSplits(t *testing.T) {
	g, _ := plantedTestGraph(400, 67)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.GPUAggregate = true
	for _, batchWords := range []int{5_000, 700, 24} {
		o.BatchWords = batchWords
		dev := gpusim.MustNew(gpusim.K20Config())
		gpu, err := ClusterGPU(g, dev, o)
		if err != nil {
			t.Fatalf("BatchWords=%d: %v", batchWords, err)
		}
		if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
			t.Fatalf("BatchWords=%d: GPU-aggregated clustering differs (batches=%d splits=%d)",
				batchWords, gpu.Pass1.Batches, gpu.Pass1.SplitLists)
		}
	}
}

func TestGPUAggregateReducesCPUTime(t *testing.T) {
	g, _ := plantedTestGraph(2000, 71)
	o := testOptions()
	devBase := gpusim.MustNew(gpusim.K20Config())
	base, err := ClusterGPU(g, devBase, o)
	if err != nil {
		t.Fatal(err)
	}
	o.GPUAggregate = true
	devAgg := gpusim.MustNew(gpusim.K20Config())
	agg, err := ClusterGPU(g, devAgg, o)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Timings.CPUNs >= base.Timings.CPUNs {
		t.Fatalf("GPU aggregation did not reduce CPU time: %.2fms vs %.2fms",
			agg.Timings.CPUNs/1e6, base.Timings.CPUNs/1e6)
	}
	// The device does more work instead.
	if agg.Timings.GPUNs <= base.Timings.GPUNs {
		t.Fatalf("GPU aggregation did not increase device time: %.2fms vs %.2fms",
			agg.Timings.GPUNs/1e6, base.Timings.GPUNs/1e6)
	}
}

func TestGPUAggregateInvalidCombos(t *testing.T) {
	o := testOptions()
	o.GPUAggregate = true
	o.AsyncTransfer = true
	if err := o.Validate(); err == nil {
		t.Fatal("GPUAggregate+AsyncTransfer accepted")
	}
	o.AsyncTransfer = false
	o.UseFullSort = true
	if err := o.Validate(); err == nil {
		t.Fatal("GPUAggregate+UseFullSort accepted")
	}
}

func TestMergeSortedStreams(t *testing.T) {
	acct := &cpuAccount{}
	a := []tuple{{1, 1}, {3, 2}, {5, 0}}
	b := []tuple{{2, 9}, {3, 1}, {9, 9}}
	res := []tuple{{4, 4}, {0, 0}} // unsorted residue
	out := mergeSortedStreams([][]tuple{a, b}, res, acct)
	want := []tuple{{0, 0}, {1, 1}, {2, 9}, {3, 1}, {3, 2}, {4, 4}, {5, 0}, {9, 9}}
	if len(out) != len(want) {
		t.Fatalf("merged %d tuples, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, out[i], want[i])
		}
	}
	if got := mergeSortedStreams(nil, nil, acct); len(got) != 0 {
		t.Fatal("empty merge not empty")
	}
	if got := mergeSortedStreams([][]tuple{a}, nil, acct); len(got) != 3 {
		t.Fatal("single-stream merge wrong")
	}
}
