package core

import (
	"container/heap"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
	"gpclust/internal/thrust"
)

// GPU-side aggregation: an extension beyond the paper. Table I shows the
// CPU-side aggregation dominating gpClust's runtime once the shingling
// itself is accelerated (52.7s of 66.75s at 20K sequences); its heaviest
// piece is the per-trial sorting that groups <shingle, owner> tuples. With
// Options.GPUAggregate the shingle keys are computed and sorted on the
// device (a shingle-key kernel + thrust sort_by_key), so the CPU only
// merges pre-sorted streams — a linear scan. The clustering is bit-identical
// to the serial backend; the virtual-clock CPU column shrinks accordingly
// (quantified in the ablations).

// invalidWord marks records of pieces that produce no device-side key
// (split pieces and short lists). Real records always have owner < 2^31, so
// an all-ones record strictly sorts after every real one.
const invalidWord = 0xFFFFFFFF

// runTrialsGPUAgg runs one batch's trials with device-side key generation
// and sorting. For split pieces the per-trial minima still come back via
// small per-row copies and are merged on the CPU as usual.
func runTrialsGPUAgg(dev *gpusim.Device, in *SegGraph, plan batchPlan, segs thrust.Segments,
	fam minwise.Family, s int, o Options, img batchImage, dataWords int,
	tuplesByTrial [][]tuple, sortedByTrial [][][]tuple, pending map[int]*pendingShingle,
	acct *cpuAccount, stats *PassStats) error {

	numPieces := len(plan.pieces)
	c := fam.Size()

	var hashBuf *gpusim.Buffer
	var err error
	if needsHashBuf(o) {
		hashBuf, err = dev.Malloc(dataWords)
		if err != nil {
			return err
		}
		defer hashBuf.Free()
	}
	outBuf, err := dev.Malloc(numPieces * s)
	if err != nil {
		return err
	}
	defer outBuf.Free()
	var paramsBuf *gpusim.Buffer
	if o.residentParams == nil {
		paramsBuf, err = dev.Malloc(2)
		if err != nil {
			return err
		}
		defer paramsBuf.Free()
	}

	// Owner ids and validity flags are static per batch: upload once.
	hostOwner := make([]uint32, numPieces)
	hostFlag := make([]uint32, numPieces)
	validCount := 0
	var splitRows []int
	for pi, pc := range plan.pieces {
		hostOwner[pi] = in.Owner(pc.list)
		listLen := in.Offsets[pc.list+1] - in.Offsets[pc.list]
		if pc.isWhole(in) && int(listLen) >= s {
			hostFlag[pi] = 1
			validCount++
		} else if !pc.isWhole(in) {
			splitRows = append(splitRows, pi)
		}
	}
	ownerBuf, err := dev.Malloc(numPieces)
	if err != nil {
		return err
	}
	defer ownerBuf.Free()
	flagBuf, err := dev.Malloc(numPieces)
	if err != nil {
		return err
	}
	defer flagBuf.Free()
	if err := dev.CopyH2D(ownerBuf, 0, hostOwner); err != nil {
		return err
	}
	if err := dev.CopyH2D(flagBuf, 0, hostFlag); err != nil {
		return err
	}

	keyHi, err := dev.Malloc(numPieces)
	if err != nil {
		return err
	}
	defer keyHi.Free()
	keyLo, err := dev.Malloc(numPieces)
	if err != nil {
		return err
	}
	defer keyLo.Free()
	valBuf, err := dev.Malloc(numPieces)
	if err != nil {
		return err
	}
	defer valBuf.Free()
	// Packing the sorted (hi, lo, owner) records into one buffer halves the
	// number of per-trial transfers; the synchronous copy's setup cost is
	// the dominant term for small batches (Table I's Data_g→c analysis).
	packed, err := dev.Malloc(3 * numPieces)
	if err != nil {
		return err
	}
	defer packed.Free()

	hostPacked := make([]uint32, 3*numPieces)
	hostRow := make([]uint32, s)

	for trial, h := range fam.Pairs {
		if paramsBuf != nil {
			if err := dev.CopyH2D(paramsBuf, 0, []uint32{uint32(h.A), uint32(h.B)}); err != nil {
				return err
			}
		}
		if err := trialKernels(dev, nil, img, hashBuf, segs, s, o, dataWords, h.A, h.B, outBuf, 0); err != nil {
			return err
		}
		if err := shingleKeyKernel(dev, outBuf, flagBuf, ownerBuf, numPieces, s, uint32(trial), keyHi, keyLo, valBuf); err != nil {
			return err
		}
		if err := thrust.SortPairs64(dev, keyHi, keyLo, valBuf, numPieces); err != nil {
			return err
		}
		if err := packKernel(dev, keyHi, keyLo, valBuf, validCount, packed); err != nil {
			return err
		}
		if err := dev.CopyD2H(hostPacked[:3*validCount], packed, 0); err != nil {
			return err
		}

		// Linear conversion of the already-sorted stream.
		before := acct.aggOps
		stream := make([]tuple, validCount)
		for i := 0; i < validCount; i++ {
			stream[i] = tuple{
				key:   uint64(hostPacked[3*i])<<32 | uint64(hostPacked[3*i+1]),
				owner: hostPacked[3*i+2],
			}
		}
		sortedByTrial[trial] = append(sortedByTrial[trial], stream)
		stats.Tuples += int64(validCount)
		acct.aggOps += int64(validCount)

		// Split pieces: fetch each piece's minima row and merge on the CPU.
		for _, pi := range splitRows {
			if err := dev.CopyD2H(hostRow, outBuf, pi*s); err != nil {
				return err
			}
			pc := plan.pieces[pi]
			p := pending[pc.list]
			if p == nil {
				p = &pendingShingle{perTrial: make([][]uint32, c)}
				pending[pc.list] = p
			}
			p.perTrial[trial] = mergeTopS(p.perTrial[trial], hostRow, s)
			acct.aggOps += int64(2 * s)
			listLen := in.Offsets[pc.list+1] - in.Offsets[pc.list]
			if pc.hi == listLen && trial == c-1 {
				for tj, minima := range p.perTrial {
					if len(minima) < s {
						continue
					}
					tuplesByTrial[tj] = append(tuplesByTrial[tj], tuple{
						key:   shingleKey(uint32(tj), minima),
						owner: in.Owner(pc.list),
					})
					stats.Tuples++
				}
				delete(pending, pc.list)
			}
		}
		chargeHost(dev, o.Obs, "aggregate", float64(acct.aggOps-before)*AggregateNsPerOp)
	}
	return nil
}

// shingleKeyKernel computes, for each valid segment, the 64-bit FNV-1a
// shingle identity over (trial, minima) — the same function the CPU path
// uses, so the two backends group identically — and emits (keyHi, keyLo,
// owner) records. Invalid segments (split pieces, short lists) emit the
// all-ones record, which sorts after every real one.
func shingleKeyKernel(dev *gpusim.Device, out, flags, owners *gpusim.Buffer,
	numPieces, s int, trial uint32, keyHi, keyLo, val *gpusim.Buffer) error {
	const bd = 256
	grid := (numPieces + bd - 1) / bd
	dev.NextKernelName("shingle_key")
	return dev.Launch(grid, bd, func(ctx *gpusim.ThreadCtx) {
		seg := ctx.GlobalID()
		if seg >= numPieces {
			return
		}
		ctx.GlobalRead(flags, seg, 1, 1)
		if flags.Words()[seg] == 0 {
			keyHi.Words()[seg] = invalidWord
			keyLo.Words()[seg] = invalidWord
			val.Words()[seg] = invalidWord
			ctx.GlobalWrite(keyHi, seg, 1, 1)
			ctx.GlobalWrite(keyLo, seg, 1, 1)
			ctx.GlobalWrite(val, seg, 1, 1)
			ctx.Ops(3)
			return
		}
		minima := out.Words()[seg*s : (seg+1)*s]
		key := shingleKey(trial, minima)
		keyHi.Words()[seg] = uint32(key >> 32)
		keyLo.Words()[seg] = uint32(key)
		val.Words()[seg] = owners.Words()[seg]
		ctx.GlobalRead(out, seg*s, s, 1)
		ctx.GlobalRead(owners, seg, 1, 1)
		ctx.GlobalWrite(keyHi, seg, 1, 1)
		ctx.GlobalWrite(keyLo, seg, 1, 1)
		ctx.GlobalWrite(val, seg, 1, 1)
		ctx.Ops(s*8 + 6)
	})
}

// packKernel interleaves the first n sorted records' (hi, lo, owner) words
// into one contiguous buffer for a single device→host transfer.
func packKernel(dev *gpusim.Device, keyHi, keyLo, val *gpusim.Buffer, n int, packed *gpusim.Buffer) error {
	if n == 0 {
		return nil
	}
	const bd = 256
	grid := (n + bd - 1) / bd
	dev.NextKernelName("pack_records")
	return dev.Launch(grid, bd, func(ctx *gpusim.ThreadCtx) {
		i := ctx.GlobalID()
		if i >= n {
			return
		}
		p := packed.Words()
		p[3*i] = keyHi.Words()[i]
		p[3*i+1] = keyLo.Words()[i]
		p[3*i+2] = val.Words()[i]
		ctx.GlobalRead(keyHi, i, 1, 1)
		ctx.GlobalRead(keyLo, i, 1, 1)
		ctx.GlobalRead(val, i, 1, 1)
		ctx.GlobalWrite(packed, 3*i, 3, 1)
		ctx.Ops(3)
	})
}

// mergeSortedStreams k-way-merges per-batch pre-sorted tuple streams (plus
// an unsorted residue of split-list tuples) into one sorted slice, charging
// only linear CPU cost — the aggregation saving of the GPU-aggregate mode.
func mergeSortedStreams(streams [][]tuple, residue []tuple, acct *cpuAccount) []tuple {
	sortTuples(residue) // few elements: split lists only
	if len(residue) > 0 {
		streams = append(streams, residue)
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	acct.aggOps += int64(total)
	switch len(streams) {
	case 0:
		return nil
	case 1:
		return streams[0]
	}
	h := &tupleHeap{}
	for i, s := range streams {
		if len(s) > 0 {
			*h = append(*h, tupleCursor{stream: i, pos: 0, t: s[0]})
		}
	}
	heap.Init(h)
	out := make([]tuple, 0, total)
	for h.Len() > 0 {
		cur := (*h)[0]
		out = append(out, cur.t)
		cur.pos++
		if cur.pos < len(streams[cur.stream]) {
			cur.t = streams[cur.stream][cur.pos]
			(*h)[0] = cur
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

type tupleCursor struct {
	stream, pos int
	t           tuple
}

type tupleHeap []tupleCursor

func (h tupleHeap) Len() int { return len(h) }
func (h tupleHeap) Less(i, j int) bool {
	if h[i].t.key != h[j].t.key {
		return h[i].t.key < h[j].t.key
	}
	return h[i].t.owner < h[j].t.owner
}
func (h tupleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tupleHeap) Push(x any)   { *h = append(*h, x.(tupleCursor)) }
func (h *tupleHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}
