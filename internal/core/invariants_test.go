//go:build invariants

package core

import (
	"testing"

	"gpclust/internal/gpusim"
)

// TestAssertDeviceCleanPanics pins the invariants-build behavior: a leaked
// buffer at teardown is a panic, not a silent accounting drift.
func TestAssertDeviceCleanPanics(t *testing.T) {
	d := gpusim.MustNew(gpusim.K20Config())
	d.MustMalloc(4)
	defer func() {
		if recover() == nil {
			t.Fatal("assertDeviceClean did not panic on a leaked buffer")
		}
	}()
	assertDeviceClean(d)
}

// TestInvariantsGPUSweep drives every GPU pipeline variant under the
// invariants build: each run ends in assertDeviceClean, so any allocation
// without a Free reachable on the taken path fails here.
func TestInvariantsGPUSweep(t *testing.T) {
	g, _ := plantedTestGraph(400, 7)
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"sync", func(o *Options) {}},
		{"async", func(o *Options) { o.AsyncTransfer = true }},
		{"pipeline", func(o *Options) { o.PipelineBatches = true }},
		{"gpuagg", func(o *Options) { o.GPUAggregate = true }},
		{"smallbatch", func(o *Options) { o.BatchWords = 4096 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			o := testOptions()
			v.mod(&o)
			dev := gpusim.MustNew(gpusim.K20Config())
			if _, err := ClusterGPU(g, dev, o); err != nil {
				t.Fatalf("ClusterGPU(%s): %v", v.name, err)
			}
		})
	}
	t.Run("multigpu", func(t *testing.T) {
		devs := []*gpusim.Device{
			gpusim.MustNew(gpusim.K20Config()),
			gpusim.MustNew(gpusim.K20Config()),
		}
		if _, err := ClusterMultiGPU(g, devs, testOptions()); err != nil {
			t.Fatalf("ClusterMultiGPU: %v", err)
		}
	})
}
