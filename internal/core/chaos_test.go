package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// chaosBackend is one GPU execution strategy under chaos test. run builds
// fresh devices, attaches the injector (nil for a clean run) to every one
// of them, and clusters g.
type chaosBackend struct {
	name string
	run  func(inj gpusim.FaultInjector, g *graph.Graph, o Options) (*Result, error)
}

func chaosBackends(batchWords int) []chaosBackend {
	mk := func(mut func(*Options)) func(inj gpusim.FaultInjector, g *graph.Graph, o Options) (*Result, error) {
		return func(inj gpusim.FaultInjector, g *graph.Graph, o Options) (*Result, error) {
			mut(&o)
			dev := gpusim.MustNew(gpusim.K20Config())
			dev.SetFaultInjector(inj)
			res, err := ClusterGPU(g, dev, o)
			if err != nil {
				return nil, err
			}
			if err := dev.LeakCheck(); err != nil {
				return nil, err
			}
			return res, nil
		}
	}
	return []chaosBackend{
		{"gpu", mk(func(o *Options) { o.BatchWords = batchWords })},
		{"gpu async", mk(func(o *Options) { o.BatchWords = batchWords; o.AsyncTransfer = true })},
		{"gpu agg", mk(func(o *Options) { o.BatchWords = batchWords; o.GPUAggregate = true })},
		{"gpu pipelined", mk(func(o *Options) { o.BatchWords = batchWords; o.PipelineBatches = true })},
		{"multigpu×3", func(inj gpusim.FaultInjector, g *graph.Graph, o Options) (*Result, error) {
			o.BatchWords = batchWords
			devs := make([]*gpusim.Device, 3)
			for i := range devs {
				devs[i] = gpusim.MustNew(gpusim.K20Config())
				devs[i].SetFaultInjector(inj)
			}
			res, err := ClusterMultiGPU(g, devs, o)
			if err != nil {
				return nil, err
			}
			for i, d := range devs {
				if err := d.LeakCheck(); err != nil {
					return nil, fmt.Errorf("device %d: %w", i, err)
				}
			}
			return res, nil
		}},
	}
}

// TestChaosSweepAllBackends is the acceptance harness: over ≥ 20 seeded
// random fault schedules, every GPU backend must recover to the
// byte-identical fault-free clustering, and Result.Faults must be nonzero
// exactly when injected faults actually failed operations.
func TestChaosSweepAllBackends(t *testing.T) {
	g, _ := plantedTestGraph(240, 11)
	o := testOptions()
	const batchWords = 2_000 // force several batches and split lists

	for _, b := range chaosBackends(batchWords) {
		clean, err := b.run(nil, g, o)
		if err != nil {
			t.Fatalf("%s clean run: %v", b.name, err)
		}
		if clean.Faults.Any() {
			t.Fatalf("%s clean run reported recovery actions: %s", b.name, clean.Faults)
		}
		for seed := int64(1); seed <= 20; seed++ {
			inj := faults.NewInjector(faults.RandSchedule(seed, 5))
			res, err := b.run(inj, g, o)
			if err != nil {
				t.Fatalf("%s seed %d (schedule %q): %v",
					b.name, seed, faults.RandSchedule(seed, 5).String(), err)
			}
			if !reflect.DeepEqual(clean.Clustering, res.Clustering) {
				t.Fatalf("%s seed %d: recovered clustering differs from fault-free run (faults: %s, fired: %s)",
					b.name, seed, res.Faults, inj)
			}
			failed := inj.TotalFailures() > 0
			if res.Faults.Any() != failed {
				t.Fatalf("%s seed %d: Faults.Any()=%v but injector failed %d ops (schedule %q)",
					b.name, seed, res.Faults.Any(), inj.TotalFailures(),
					faults.RandSchedule(seed, 5).String())
			}
		}
	}
}

// TestChaosRecoveryLadder drives each rung of the ladder deliberately.
func TestChaosRecoveryLadder(t *testing.T) {
	g, _ := plantedTestGraph(200, 3)
	o := testOptions()
	o.BatchWords = 2_000
	clean, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		schedule string
		check    func(t *testing.T, r *Result)
	}{
		{"transfer retry", "h2d op=2 count=2; d2h op=5", func(t *testing.T, r *Result) {
			if r.Faults.TransferRetries == 0 {
				t.Fatalf("no transfer retries recorded: %s", r.Faults)
			}
		}},
		{"kernel retry", "kernel op=3", func(t *testing.T, r *Result) {
			if r.Faults.KernelRetries == 0 {
				t.Fatalf("no kernel retries recorded: %s", r.Faults)
			}
		}},
		{"transient oom", "malloc op=2 count=2", func(t *testing.T, r *Result) {
			if r.Faults.OOMRetries == 0 {
				t.Fatalf("no OOM retries recorded: %s", r.Faults)
			}
		}},
		{"oom split", "malloc op=1 count=9", func(t *testing.T, r *Result) {
			if r.Faults.OOMSplits == 0 {
				t.Fatalf("persistent OOM did not split the batch: %s", r.Faults)
			}
		}},
		{"host fallback", "h2d op=1 count=40", func(t *testing.T, r *Result) {
			if r.Faults.HostFallbacks == 0 {
				t.Fatalf("exhausted budget did not fall back to host: %s", r.Faults)
			}
			if r.Timings.ShingleNs == 0 {
				t.Fatal("host fallback charged no host shingling time")
			}
		}},
		{"slow sm only", "slowsm op=1 count=5 x=6", func(t *testing.T, r *Result) {
			if r.Faults.Any() {
				t.Fatalf("latency spike needed no recovery but recorded: %s", r.Faults)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := faults.Parse(tc.schedule)
			if err != nil {
				t.Fatal(err)
			}
			dev := gpusim.MustNew(gpusim.K20Config())
			dev.SetFaultInjector(faults.NewInjector(sched))
			res, err := ClusterGPU(g, dev, o)
			if err != nil {
				t.Fatalf("schedule %q: %v", tc.schedule, err)
			}
			if !reflect.DeepEqual(clean.Clustering, res.Clustering) {
				t.Fatalf("schedule %q: clustering differs from serial (faults: %s)", tc.schedule, res.Faults)
			}
			tc.check(t, res)
			if err := dev.LeakCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosPipelinedRestartAndDegrade forces the pipelined pass through
// its restart rung and all the way to the sequential degradation.
func TestChaosPipelinedRestartAndDegrade(t *testing.T) {
	g, _ := plantedTestGraph(200, 7)
	o := testOptions()
	o.BatchWords = 2_000
	o.PipelineBatches = true
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}

	// One transient fault: a single restart recovers.
	sched, err := faults.Parse("h2d op=3")
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.MustNew(gpusim.K20Config())
	dev.SetFaultInjector(faults.NewInjector(sched))
	res, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Restarts == 0 {
		t.Fatalf("pipelined fault did not restart the pass: %s", res.Faults)
	}
	if !reflect.DeepEqual(serial.Clustering, res.Clustering) {
		t.Fatal("restarted pipelined clustering differs from serial")
	}

	// Persistent faults: restarts exhaust, the pass degrades to the
	// sequential resilient loop, which falls back to the host.
	sched, err = faults.Parse("h2d op=1 count=500")
	if err != nil {
		t.Fatal(err)
	}
	dev = gpusim.MustNew(gpusim.K20Config())
	dev.SetFaultInjector(faults.NewInjector(sched))
	res, err = ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Restarts == 0 || res.Faults.HostFallbacks == 0 {
		t.Fatalf("persistent pipelined faults should restart then degrade: %s", res.Faults)
	}
	if !reflect.DeepEqual(serial.Clustering, res.Clustering) {
		t.Fatal("degraded pipelined clustering differs from serial")
	}
}

// TestChaosNoFallbackTypedError: with the host fallback disabled, a fault
// storm beyond the retry budget must surface as a clean typed error —
// never a panic or a partial result.
func TestChaosNoFallbackTypedError(t *testing.T) {
	g, _ := plantedTestGraph(150, 19)
	o := testOptions()
	o.BatchWords = 2_000
	o.NoHostFallback = true
	o.FaultRetries = 2

	for _, schedule := range []string{
		"h2d op=1 count=1000000",
		"d2h op=1 count=1000000",
		"kernel op=1 count=1000000",
		"malloc op=1 count=1000000",
	} {
		sched, err := faults.Parse(schedule)
		if err != nil {
			t.Fatal(err)
		}
		dev := gpusim.MustNew(gpusim.K20Config())
		dev.SetFaultInjector(faults.NewInjector(sched))
		_, err = ClusterGPU(g, dev, o)
		if err == nil {
			t.Fatalf("schedule %q: run succeeded with fallback disabled under a fault storm", schedule)
		}
		if !errors.Is(err, ErrRetryBudget) {
			t.Fatalf("schedule %q: error %v does not wrap ErrRetryBudget", schedule, err)
		}
		if err := dev.LeakCheck(); err != nil {
			t.Fatalf("schedule %q: device left dirty after typed failure: %v", schedule, err)
		}
	}
}

// TestChaosPropertyAnySchedule is the satellite property test: ANY
// schedule yields either the bit-identical clean clustering or a clean
// typed error — never a panic, never a silently different result.
func TestChaosPropertyAnySchedule(t *testing.T) {
	g, _ := plantedTestGraph(150, 23)
	o := testOptions()
	o.BatchWords = 1_500
	clean, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(100); seed < 130; seed++ {
		sched := faults.RandSchedule(seed, 8)
		// Make a third of the sweeps adversarial fault storms.
		if seed%3 == 0 {
			sched.Events = append(sched.Events, faults.Event{
				Kind: gpusim.FaultKind(int(seed) % int(gpusim.NumFaultKinds)), Op: 1, Count: 100_000, Slow: 2,
			})
		}
		for _, nofb := range []bool{false, true} {
			oo := o
			oo.NoHostFallback = nofb
			dev := gpusim.MustNew(gpusim.K20Config())
			dev.SetFaultInjector(faults.NewInjector(sched))
			res, err := ClusterGPU(g, dev, oo)
			name := fmt.Sprintf("seed %d nofallback=%v (%q)", seed, nofb, sched.String())
			if err != nil {
				if !nofb {
					t.Fatalf("%s: run with host fallback enabled must always recover, got %v", name, err)
				}
				if !errors.Is(err, ErrRetryBudget) {
					t.Fatalf("%s: error %v does not wrap ErrRetryBudget", name, err)
				}
				continue
			}
			if !reflect.DeepEqual(clean.Clustering, res.Clustering) {
				t.Fatalf("%s: clustering differs from clean run (faults: %s)", name, res.Faults)
			}
		}
	}
}
