//go:build !invariants

package core

import "gpclust/internal/gpusim"

// assertDeviceClean is a no-op in the default build; the invariants build
// (-tags invariants, see invariants_on.go) replaces it with a teardown leak
// check.
func assertDeviceClean(*gpusim.Device) {}
