package core

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/sched"
)

func checkPlan(t *testing.T, label string, p sched.PlanReport, wantAuto bool) {
	t.Helper()
	if p.AutoTuned != wantAuto {
		t.Fatalf("%s: AutoTuned=%v, want %v (%s)", label, p.AutoTuned, wantAuto, p.String())
	}
	if p.BudgetWords <= 0 || p.Lanes <= 0 || p.Batches <= 0 {
		t.Fatalf("%s: degenerate plan %s", label, p.String())
	}
	if p.PredictedNs <= 0 {
		t.Fatalf("%s: no cost prediction recorded: %s", label, p.String())
	}
	if p.ActualNs <= 0 {
		t.Fatalf("%s: no scheduler window measured: %s", label, p.String())
	}
	if d := p.DriftFrac(); d > 0.25 {
		t.Fatalf("%s: cost-model drift %.0f%% exceeds the 25%% gate (%s)",
			label, d*100, p.String())
	}
}

// TestAutoTuneMatchesSerial is the headline contract of -batch auto: the
// tuner only moves virtual time, never the clustering.
func TestAutoTuneMatchesSerial(t *testing.T) {
	g, _ := plantedTestGraph(400, 73)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.AutoTune = true
	dev := gpusim.MustNew(gpusim.K20Config())
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("auto-tuned clustering differs from serial")
	}
	checkPlan(t, "pass1", gpu.Pass1.Plan, true)
	checkPlan(t, "pass2", gpu.Pass2.Plan, true)
	if dev.AllocatedBuffers() != 0 {
		t.Fatalf("%d device buffers leaked", dev.AllocatedBuffers())
	}
}

// TestAutoTuneModeLanes pins the lane sets each mode exposes to the tuner:
// pipelined runs must pick >=2 lanes, the aggregate and async-transfer
// paths keep their own internal structure and stay sequential.
func TestAutoTuneModeLanes(t *testing.T) {
	g, _ := plantedTestGraph(400, 73)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(*Options)
		minLane int
		maxLane int
	}{
		{"pipelined", func(o *Options) { o.PipelineBatches = true }, 2, 4},
		{"gpuagg", func(o *Options) { o.GPUAggregate = true }, 1, 1},
		{"async", func(o *Options) { o.AsyncTransfer = true }, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oc := o
			oc.AutoTune = true
			tc.mutate(&oc)
			dev := gpusim.MustNew(gpusim.K20Config())
			gpu, err := ClusterGPU(g, dev, oc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
				t.Fatal("auto-tuned clustering differs from serial")
			}
			for _, p := range []sched.PlanReport{gpu.Pass1.Plan, gpu.Pass2.Plan} {
				if p.Lanes < tc.minLane || p.Lanes > tc.maxLane {
					t.Fatalf("chose %d lanes, want in [%d,%d] (%s)",
						p.Lanes, tc.minLane, tc.maxLane, p.String())
				}
			}
			if dev.AllocatedBuffers() != 0 {
				t.Fatalf("%d device buffers leaked", dev.AllocatedBuffers())
			}
		})
	}
}

// TestPredictCostFixedPlan prices a fixed budget without tuning — the path
// the fixed rows of the autotune ablation run — and holds it to the same
// drift gate as the tuner.
func TestPredictCostFixedPlan(t *testing.T) {
	g, _ := plantedTestGraph(400, 73)
	o := testOptions()
	o.BatchWords = 40_000
	o.PredictCost = true
	dev := gpusim.MustNew(gpusim.K20Config())
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, "pass1", gpu.Pass1.Plan, false)
	checkPlan(t, "pass2", gpu.Pass2.Plan, false)
	if gpu.Pass1.Plan.BudgetWords != 40_000 {
		t.Fatalf("fixed budget not honoured: %s", gpu.Pass1.Plan.String())
	}

	// The pipelined fixed path is priced by the lane-overlap predictor.
	o.PipelineBatches = true
	devPipe := gpusim.MustNew(gpusim.K20Config())
	pipe, err := ClusterGPU(g, devPipe, o)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, "pipelined pass1", pipe.Pass1.Plan, false)
	if pipe.Pass1.Plan.Lanes < 2 {
		t.Fatalf("pipelined fixed plan reports %d lanes", pipe.Pass1.Plan.Lanes)
	}
}

// TestAutoTuneNotWorseThanLegacy: the candidate sweep is a superset of the
// legacy budget derivation, so the tuned run can never be slower than the
// legacy default on the same workload and mode.
func TestAutoTuneNotWorseThanLegacy(t *testing.T) {
	g, _ := plantedTestGraph(600, 7)
	o := testOptions()

	devLegacy := gpusim.MustNew(gpusim.K20Config())
	legacy, err := ClusterGPU(g, devLegacy, o)
	if err != nil {
		t.Fatal(err)
	}
	o.AutoTune = true
	devAuto := gpusim.MustNew(gpusim.K20Config())
	auto, err := ClusterGPU(g, devAuto, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Clustering, auto.Clustering) {
		t.Fatal("auto-tuned clustering differs from legacy")
	}
	legacyNs := legacy.Pass1.Plan.ActualNs + legacy.Pass2.Plan.ActualNs
	autoNs := auto.Pass1.Plan.ActualNs + auto.Pass2.Plan.ActualNs
	if autoNs > legacyNs {
		t.Fatalf("auto-tuned scheduler windows %.3fms exceed legacy %.3fms",
			autoNs/1e6, legacyNs/1e6)
	}
}

func TestShingleLaneSet(t *testing.T) {
	if got := shingleLaneSet(Options{}); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("default lane set %v", got)
	}
	if got := shingleLaneSet(Options{PipelineBatches: true}); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("pipelined lane set %v", got)
	}
	if got := shingleLaneSet(Options{GPUAggregate: true}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("gpu-aggregate lane set %v", got)
	}
	if got := shingleLaneSet(Options{AsyncTransfer: true}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("async-transfer lane set %v", got)
	}
}

func TestMinShingleBudget(t *testing.T) {
	// 3 words fixed + 2*(s+2) staging + 2 output slack, +9 for the
	// aggregate path's extra device state.
	if got := minShingleBudget(4, false); got != 3+2*6+2 {
		t.Fatalf("minShingleBudget(4,false)=%d", got)
	}
	if got := minShingleBudget(4, true); got != 3+2*6+9+2 {
		t.Fatalf("minShingleBudget(4,true)=%d", got)
	}
}

func TestKernelThreadShapes(t *testing.T) {
	// 8 elements per thread, 256-wide blocks: 1000 words → 125 threads →
	// one block of 256.
	if got := transformThreads(1000); got != 256 {
		t.Fatalf("transformThreads(1000)=%d, want 256", got)
	}
	if got := transformThreads(0); got != 256 {
		t.Fatalf("transformThreads(0)=%d, want one clamped block", got)
	}
	// One thread per segment, 256-wide blocks.
	if got := topsThreads(300); got != 512 {
		t.Fatalf("topsThreads(300)=%d, want 512", got)
	}
	if got := topsThreads(0); got != 256 {
		t.Fatalf("topsThreads(0)=%d, want one clamped block", got)
	}
}
