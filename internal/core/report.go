package core

import (
	"sort"

	"gpclust/internal/unionfind"
)

// reportClusters is Phase III ("Reporting dense subgraphs"): from the
// first-level shingle graph gi (list i = L(s1_i), the vertices that
// generated first-level shingle i) and the grouped second-level output gii
// (list k = L(s2_k), the first-level shingle indices that generated
// second-level shingle k), enumerate the connected components of G_II and
// turn each into a cluster.
func reportClusters(n int, gi, gii *SegGraph, mode ReportMode, acct *cpuAccount) Clustering {
	// Union first-level shingles that share a second-level shingle: the
	// connected components of G_II restricted to the S1' side.
	ufS1 := unionfind.New(gi.NumLists())
	inGII := make([]bool, gi.NumLists())
	for k := 0; k < gii.NumLists(); k++ {
		members := gii.List(k)
		for j, s1 := range members {
			inGII[s1] = true
			if j > 0 {
				ufS1.Union(int(members[0]), int(s1))
			}
			acct.reportOps++
		}
	}

	switch mode {
	case ReportUnionFind:
		return reportUnionFind(n, gi, ufS1, inGII, acct)
	case ReportOverlapping:
		return reportOverlapping(n, gi, ufS1, inGII, acct)
	}
	panic("core: unknown report mode")
}

// reportUnionFind implements the paper's chosen strategy: a union-find of
// size n starts with every vertex in its own cluster; for each connected
// component of G_II, all vertices constituting its first-level shingles are
// unioned. "The clusters reported in this way represent a partition of the
// input vertices, and no vertex belong[s to] two different clusters."
func reportUnionFind(n int, gi *SegGraph, ufS1 *unionfind.UF, inGII []bool, acct *cpuAccount) Clustering {
	uf := unionfind.New(n)
	// anchor[r] is a representative vertex for the component rooted at r.
	anchor := make([]int64, gi.NumLists())
	for i := range anchor {
		anchor[i] = -1
	}
	for i := 0; i < gi.NumLists(); i++ {
		if !inGII[i] {
			continue
		}
		root := ufS1.Find(i)
		for _, v := range gi.List(i) {
			if anchor[root] == -1 {
				anchor[root] = int64(v)
			}
			uf.Union(int(anchor[root]), int(v))
			acct.reportOps++
		}
	}

	sets := uf.Sets()
	acct.reportOps += int64(n)
	clusters := make([][]uint32, 0, len(sets))
	for _, members := range sets {
		cl := make([]uint32, len(members))
		for j, v := range members {
			cl[j] = uint32(v)
		}
		sort.Slice(cl, func(a, b int) bool { return cl[a] < cl[b] })
		clusters = append(clusters, cl)
	}
	sortClusters(clusters)
	return Clustering{N: n, Clusters: clusters}
}

// reportOverlapping implements the alternative strategy: one cluster per
// connected component of G_II, each the union of its first-level shingles'
// vertex sets. "This formulation could produce potential overlaps between
// the output clusters, as the same input vertex can be part of two entirely
// different shingles and different connected components."
func reportOverlapping(n int, gi *SegGraph, ufS1 *unionfind.UF, inGII []bool, acct *cpuAccount) Clustering {
	byRoot := make(map[int][]uint32)
	for i := 0; i < gi.NumLists(); i++ {
		if !inGII[i] {
			continue
		}
		root := ufS1.Find(i)
		byRoot[root] = append(byRoot[root], gi.List(i)...)
		acct.reportOps += int64(len(gi.List(i)))
	}
	clusters := make([][]uint32, 0, len(byRoot))
	for _, vs := range byRoot {
		sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
		// dedup: a vertex may appear through several shingles of the
		// same component
		out := vs[:0]
		for j, v := range vs {
			if j == 0 || v != vs[j-1] {
				out = append(out, v)
			}
		}
		clusters = append(clusters, out)
	}
	sortClusters(clusters)
	return Clustering{N: n, Clusters: clusters}
}

// sortClusters orders clusters by descending size, ties lexicographically
// by members, for deterministic output. The lexicographic tie-break only
// matters in overlapping mode — in a partition, two clusters of equal size
// already differ at their first member — but it makes the enumeration
// order a total one there too, independent of map iteration and of which
// backend produced the clusters.
func sortClusters(clusters [][]uint32) {
	sort.Slice(clusters, func(i, j int) bool {
		ci, cj := clusters[i], clusters[j]
		if len(ci) != len(cj) {
			return len(ci) > len(cj)
		}
		for k := range ci {
			if ci[k] != cj[k] {
				return ci[k] < cj[k]
			}
		}
		return false
	})
}
