package core

import "testing"

func TestPeakHostBytesShape(t *testing.T) {
	small := &Result{
		Pass1: PassStats{Elements: 1000, Lists: 100, Tuples: 2000, Shingles: 500},
		Pass2: PassStats{Tuples: 300, Shingles: 100},
	}
	big := &Result{
		Pass1: PassStats{Elements: 100000, Lists: 10000, Tuples: 200000, Shingles: 50000},
		Pass2: PassStats{Tuples: 30000, Shingles: 10000},
	}
	if small.PeakHostBytes() <= 0 {
		t.Fatal("non-positive peak")
	}
	if big.PeakHostBytes() <= small.PeakHostBytes() {
		t.Fatal("peak not growing with the pass statistics")
	}
	// Pass-2-heavy runs must be charged for the pass-2 live set.
	p2heavy := &Result{
		Pass1: PassStats{Elements: 1000, Lists: 100, Tuples: 2000, Shingles: 500},
		Pass2: PassStats{Tuples: 5_000_000, Shingles: 100000},
	}
	if p2heavy.PeakHostBytes() <= small.PeakHostBytes() {
		t.Fatal("pass-2 tuple volume ignored by the peak estimate")
	}
}

func TestTimingsString(t *testing.T) {
	s := Timings{CPUNs: 1e9, GPUNs: 2e9, H2DNs: 5e8, D2HNs: 5e8, DiskIONs: 1e8, TotalNs: 4.1e9}.String()
	for _, want := range []string{"CPU=1.00s", "GPU=2.00s", "Total=4.10s"} {
		if !contains(s, want) {
			t.Fatalf("Timings.String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestReportModeString(t *testing.T) {
	if ReportUnionFind.String() != "union-find" || ReportOverlapping.String() != "overlapping" {
		t.Fatal("mode strings wrong")
	}
	if ReportMode(9).String() == "" {
		t.Fatal("unknown mode has empty string")
	}
}

func TestLabelsPanicsOnOverlap(t *testing.T) {
	c := Clustering{N: 3, Clusters: [][]uint32{{0, 1}, {1, 2}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Labels on overlapping clustering did not panic")
		}
	}()
	c.Labels()
}

func TestLabelsPanicsOnMissingVertex(t *testing.T) {
	c := Clustering{N: 3, Clusters: [][]uint32{{0, 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Labels with uncovered vertex did not panic")
		}
	}()
	c.Labels()
}
