package core

import (
	"fmt"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/minwise"
	"gpclust/internal/obs"
)

// ClusterMultiGPU runs gpClust with the batch stream of Algorithm 2
// distributed round-robin over several devices — the natural next scaling
// step after the paper (its conclusions call for "new directions for
// further research"; the pGraph side of the pipeline already scaled to
// thousands of processors). Each device shingles its share of the
// adjacency-list batches on its own virtual timeline; the host merges the
// resulting tuples exactly as in the single-device pipeline (one host
// aggregation thread per device, as on the paper's 8-core host), so the
// clustering is bit-identical to ClusterSerial and single-device
// ClusterGPU for the same Options.
//
// Reported timings: GPU/H2D/D2H are summed across devices (total work);
// TotalNs is the bottleneck device's timeline (virtual wall time).
func ClusterMultiGPU(g *graph.Graph, devs []*gpusim.Device, o Options) (*Result, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: ClusterMultiGPU needs at least one device")
	}
	if len(devs) == 1 {
		return ClusterGPU(g, devs[0], o)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.AsyncTransfer || o.GPUAggregate {
		return nil, fmt.Errorf("core: ClusterMultiGPU supports the synchronous CPU-aggregation pipeline only")
	}
	fam1, fam2 := o.families()
	acct := &cpuAccount{}
	res := &Result{Backend: fmt.Sprintf("gpu×%d", len(devs))}

	acct.diskBytes = graphDiskBytes(g)
	for _, d := range devs {
		d.Reset()
	}
	// Per-device hash-table residency: each device stages both passes'
	// <A_j, B_j> tables once; a device whose upload fails degrades to the
	// per-batch path independently of its peers.
	resident := make([]*gpusim.Buffer, len(devs))
	for i, d := range devs {
		resident[i] = uploadResidentParams(d, fam1, fam2)
	}
	freeResident := func() {
		for i, b := range resident {
			if b != nil {
				b.Free()
				resident[i] = nil
			}
		}
	}
	defer freeResident()
	// The read span is recorded once (the charge repeats per device only to
	// align their independent virtual timelines).
	ph := startPhase(devs[0], o.Obs, obs.NameRead)
	for i, d := range devs {
		if i == 0 {
			chargeHost(d, o.Obs, obs.NameRead, acct.diskNs())
		} else {
			d.AdvanceHost(acct.diskNs())
		}
	}
	endPhase(devs[0], ph)

	in := FromGraph(g)
	ph = startPhase(devs[0], o.Obs, "shingle-pass1")
	gi, err := runPassMultiGPU(devs, resident, in, fam1, o.S1, o, "pass1", acct, &res.Pass1, &res.Faults)
	endPhase(devs[0], ph)
	if err != nil {
		return nil, fmt.Errorf("core: first-level shingling: %w", err)
	}

	beforeAgg := acct.aggOps
	ph = startPhase(devs[0], o.Obs, "aggregate")
	pass2In := gi.filterMinLen(o.S2)
	acct.aggOps += int64(len(gi.Data))
	res.Pass1.SharedLists = pass2In.NumLists()
	chargeHost(devs[0], o.Obs, "aggregate", float64(acct.aggOps-beforeAgg)*AggregateNsPerOp)
	endPhase(devs[0], ph)

	ph = startPhase(devs[0], o.Obs, "shingle-pass2")
	gii, err := runPassMultiGPU(devs, resident, pass2In, fam2, o.S2, o, "pass2", acct, &res.Pass2, &res.Faults)
	endPhase(devs[0], ph)
	if err != nil {
		return nil, fmt.Errorf("core: second-level shingling: %w", err)
	}

	beforeReport := acct.reportOps
	ph = startPhase(devs[0], o.Obs, "report")
	res.Clustering = reportClusters(g.NumVertices(), gi, gii, o.Mode, acct)
	chargeHost(devs[0], o.Obs, "report", float64(acct.reportOps-beforeReport)*ReportNsPerOp)
	endPhase(devs[0], ph)

	freeResident()
	var total float64
	var t Timings
	for _, d := range devs {
		d.Synchronize()
		m := d.Metrics()
		t.GPUNs += m.KernelTimeNs
		t.H2DNs += m.H2DTimeNs
		t.D2HNs += m.D2HTimeNs
		t.H2DSetupNs += m.H2DSetupNs
		t.H2DVolumeNs += m.H2DVolumeNs
		t.D2HSetupNs += m.D2HSetupNs
		t.D2HVolumeNs += m.D2HVolumeNs
		t.H2DBytes += m.H2DBytes
		t.D2HBytes += m.D2HBytes
		if d.HostTime() > total {
			total = d.HostTime()
		}
	}
	t.ShingleNs = acct.serialNs() // nonzero only after host-fallback recovery
	t.CPUNs = acct.aggNs() + acct.reportNs() + acct.packNs()
	t.DiskIONs = acct.diskNs()
	t.TotalNs = total
	res.Timings = t
	for _, d := range devs {
		assertDeviceClean(d)
	}
	recordRunMetrics(o.Obs, res)
	return res, nil
}

// runPassMultiGPU is runPassGPU with batches dealt round-robin to devices.
func runPassMultiGPU(devs []*gpusim.Device, resident []*gpusim.Buffer, in *SegGraph, fam minwise.Family, s int,
	o Options, label string, acct *cpuAccount, stats *PassStats, rec *faults.Recovery) (*SegGraph, error) {

	// Fixed-plan pass: the packed width and fusion choice resolve exactly
	// as in runPassGPU's non-auto-tuned branch.
	o.dataBits = packWidth(o, in)
	o.fusedPlan = o.Fuse

	stats.Lists = in.NumLists()
	stats.Elements = int64(len(in.Data))
	c := fam.Size()
	tuplesByTrial := make([][]tuple, c)

	if in.NumLists() == 0 {
		return buildShingleGraph(tuplesByTrial, acct, stats), nil
	}
	for i := 0; i < in.NumLists(); i++ {
		if int(in.Offsets[i+1]-in.Offsets[i]) < s {
			stats.SkippedShort++
		}
	}

	budget := o.BatchWords
	if budget == 0 {
		// Bound by the smallest device so any batch fits anywhere.
		min := devs[0].FreeMemory()
		for _, d := range devs[1:] {
			if d.FreeMemory() < min {
				min = d.FreeMemory()
			}
		}
		budget = int(min / gpusim.WordBytes * 3 / 4)
		// Aim for at least one batch per device so all of them contribute.
		if even := (3*len(in.Data) + 2*(s+2)*in.NumLists()) / len(devs); even+64 < budget {
			budget = even + 64
		}
	}
	plans, err := planBatches(in, s, budget, false)
	if err != nil {
		return nil, err
	}
	stats.Batches = len(plans)

	pending := make(map[int]*pendingShingle)
	splitLists := map[int]bool{}
	for _, p := range plans {
		for _, pc := range p.pieces {
			if !pc.isWhole(in) {
				splitLists[pc.list] = true
			}
		}
	}
	stats.SplitLists = len(splitLists)

	for i, plan := range plans {
		dev := devs[i%len(devs)]
		od := o
		od.residentParams = resident[i%len(devs)]
		var end obs.Ending
		var t0 float64
		if o.Obs.Enabled() {
			t0 = dev.HostTime()
			end = o.Obs.Start(obs.TrackBatches, fmt.Sprintf("%s.b%d.dev%d", label, i, i%len(devs)), t0)
		}
		if err := runBatchResilient(dev, in, fam, s, od, plan, tuplesByTrial, nil, pending, acct, stats, rec); err != nil {
			return nil, err
		}
		if o.Obs.Enabled() {
			t1 := dev.HostTime()
			end.End(t1)
			batchHistogram(o.Obs).Observe(t1 - t0)
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("core: %d split lists never completed", len(pending))
	}

	beforeAgg := acct.aggOps
	out := buildShingleGraph(tuplesByTrial, acct, stats)
	chargeHost(devs[0], o.Obs, "split-merge", float64(acct.aggOps-beforeAgg)*AggregateNsPerOp)
	return out, nil
}
