package core

// sortTuples orders tuples by (key, owner) with an LSD radix sort: two
// 16-bit passes over the owner and four over the key. Aggregation sorts
// tens of millions of tuples per pass at full experiment scale, where a
// comparison sort's constant factors dominate the whole CPU side; radix
// keeps the real (not just simulated) aggregation linear.
func sortTuples(ts []tuple) {
	if len(ts) < 64 {
		insertionSortTuples(ts)
		return
	}
	// The ping-pong buffer comes from the tuple pool: aggregation sorts one
	// stream per trial, and reusing the scratch across trials (and across
	// concurrent workers, each drawing its own) removes the largest
	// steady-state allocation of the CPU side.
	bufp := tupleSlicePool.Get().(*[]tuple)
	if cap(*bufp) < len(ts) {
		*bufp = make([]tuple, len(ts))
	}
	buf := (*bufp)[:len(ts)]
	defer tupleSlicePool.Put(bufp)
	src, dst := ts, buf
	const radix = 1 << 16
	var counts [radix]int32

	pass := func(digit func(tuple) uint32) {
		for i := range counts {
			counts[i] = 0
		}
		for _, t := range src {
			counts[digit(t)]++
		}
		sum := int32(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, t := range src {
			d := digit(t)
			dst[counts[d]] = t
			counts[d]++
		}
		src, dst = dst, src
	}

	pass(func(t tuple) uint32 { return uint32(t.owner) & 0xFFFF })
	pass(func(t tuple) uint32 { return uint32(t.owner) >> 16 })
	pass(func(t tuple) uint32 { return uint32(t.key) & 0xFFFF })
	pass(func(t tuple) uint32 { return uint32(t.key>>16) & 0xFFFF })
	pass(func(t tuple) uint32 { return uint32(t.key>>32) & 0xFFFF })
	pass(func(t tuple) uint32 { return uint32(t.key >> 48) })
	// Six passes: src is back to the original slice.
	if &src[0] != &ts[0] {
		copy(ts, src)
	}
}

func insertionSortTuples(ts []tuple) {
	for i := 1; i < len(ts); i++ {
		v := ts[i]
		j := i
		for j > 0 && tupleGreater(ts[j-1], v) {
			ts[j] = ts[j-1]
			j--
		}
		ts[j] = v
	}
}

func tupleGreater(a, b tuple) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.owner > b.owner
}
