package core

import (
	"math/bits"

	"gpclust/internal/graph"
)

// SegGraph is a set of adjacency lists in concatenated (segmented) form —
// the unit both shingling passes consume and produce. In pass 1 the lists
// are the input graph's vertex neighborhoods; the pass's output lists are
// the first-level shingle graph G_I (list i holds L(s1_i), the vertices that
// generated shingle i), which — filtered — feeds pass 2.
type SegGraph struct {
	Offsets []int64  // len NumLists()+1; list i spans Data[Offsets[i]:Offsets[i+1]]
	Data    []uint32 // concatenated lists
	Owners  []uint32 // owner id of list i; nil means owner(i) = i
}

// NumLists returns the number of lists.
func (sg *SegGraph) NumLists() int { return len(sg.Offsets) - 1 }

// List returns list i.
func (sg *SegGraph) List(i int) []uint32 { return sg.Data[sg.Offsets[i]:sg.Offsets[i+1]] }

// Owner returns the owner id whose shingles list i generates.
func (sg *SegGraph) Owner(i int) uint32 {
	if sg.Owners == nil {
		return uint32(i)
	}
	return sg.Owners[i]
}

// FromGraph extracts the non-singleton adjacency lists of g as a SegGraph
// with vertex-id owners — the bipartite view G(V_l, V_r, E) with V_l = V_r =
// V that pass 1 shingles. Singleton vertices are dropped, as the paper does
// ("they will be ignored in the subsequent analysis").
func FromGraph(g *graph.Graph) *SegGraph {
	sg := &SegGraph{Offsets: []int64{0}}
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(uint32(v))
		if len(adj) == 0 {
			continue
		}
		sg.Data = append(sg.Data, adj...)
		sg.Offsets = append(sg.Offsets, int64(len(sg.Data)))
		sg.Owners = append(sg.Owners, uint32(v))
	}
	return sg
}

// filterMinLen keeps only the lists with at least minLen elements, setting
// each kept list's owner to its index in the source (so pass-2 tuples refer
// back to first-level shingle indices). Lists shorter than the shingle size
// cannot generate shingles and are exact dead weight (Section III-B: shingles
// are generated "for any vertex u ∈ V that has at least s links").
func (sg *SegGraph) filterMinLen(minLen int) *SegGraph {
	out := &SegGraph{Offsets: []int64{0}}
	for i := 0; i < sg.NumLists(); i++ {
		lst := sg.List(i)
		if len(lst) < minLen {
			continue
		}
		out.Data = append(out.Data, lst...)
		out.Offsets = append(out.Offsets, int64(len(out.Data)))
		out.Owners = append(out.Owners, uint32(i))
	}
	return out
}

// tuple is one <shingle, owner> pair of the "<s_j, L(s_j)>" tuples of
// Section III-B, before grouping. The key folds the trial index with the
// shingle's s minima so that "shingles from different trials do not get
// mixed".
type tuple struct {
	key   uint64
	owner uint32
}

// shingleKey hashes (trial, minima...) to the shingle's integer identity
// (64-bit FNV-1a; the paper assumes "an integer representation obtained
// using a hash function").
func shingleKey(trial uint32, minima []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for sh := 0; sh < 32; sh += 8 {
		h ^= uint64((trial >> sh) & 0xff)
		h *= prime64
	}
	for _, v := range minima {
		for sh := 0; sh < 32; sh += 8 {
			h ^= uint64((v >> sh) & 0xff)
			h *= prime64
		}
	}
	return h
}

// buildShingleGraph groups each trial's tuples by shingle key ("a sorting is
// done to gather all vertices that generated each shingle ... once for each
// random trial") and emits the resulting bipartite shingle graph in
// adjacency-list form. Owner lists come out sorted. CPU cost is charged to
// the aggregation account.
func buildShingleGraph(tuplesByTrial [][]tuple, acct *cpuAccount, stats *PassStats) *SegGraph {
	out := &SegGraph{Offsets: []int64{0}}
	for _, trialTuples := range tuplesByTrial {
		if len(trialTuples) == 0 {
			continue
		}
		sortTuples(trialTuples)
		// Sort cost: n log n comparisons, plus a grouping scan.
		n := int64(len(trialTuples))
		acct.aggOps += n*int64(bits.Len64(uint64(n))) + n
		appendGroups(out, trialTuples)
	}
	stats.Shingles = out.NumLists()
	acct.aggOps += int64(len(out.Data))
	return out
}

// appendGroups appends one sorted tuple stream's key-groups to the shingle
// graph.
func appendGroups(out *SegGraph, sorted []tuple) {
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i].key == sorted[start].key {
			continue
		}
		for _, tu := range sorted[start:i] {
			out.Data = append(out.Data, tu.owner)
		}
		out.Offsets = append(out.Offsets, int64(len(out.Data)))
		start = i
	}
}

// buildShingleGraphPresorted is buildShingleGraph for the GPU-aggregation
// path: each trial's tuples arrive as pre-sorted per-batch streams (plus a
// small unsorted residue of split-list tuples) and only need a linear merge.
// With workers > 1 the per-trial merges — independent of each other — run
// across a worker pool; grouping still happens in trial order, so the output
// is identical for every worker count.
func buildShingleGraphPresorted(sortedByTrial [][][]tuple, residueByTrial [][]tuple,
	workers int, acct *cpuAccount, stats *PassStats) *SegGraph {
	out := &SegGraph{Offsets: []int64{0}}
	c := len(sortedByTrial)
	if workers > 1 && c > 1 {
		merged := make([][]tuple, c)
		ops := make([]int64, c)
		parallelFor(workers, c, func(_, trial int) {
			var local cpuAccount
			merged[trial] = mergeSortedStreams(sortedByTrial[trial], residueByTrial[trial], &local)
			ops[trial] = local.aggOps
		})
		for trial := 0; trial < c; trial++ {
			acct.aggOps += ops[trial]
			appendGroups(out, merged[trial])
		}
	} else {
		for trial := range sortedByTrial {
			merged := mergeSortedStreams(sortedByTrial[trial], residueByTrial[trial], acct)
			appendGroups(out, merged)
		}
	}
	stats.Shingles = out.NumLists()
	acct.aggOps += int64(len(out.Data))
	return out
}
