package core

import (
	"fmt"
	"runtime"
	"sync"

	"gpclust/internal/graph"
)

// ClusterByComponent runs the full pClust strategy of Section I-B: first
// decompose the input graph into connected components ("to break down the
// large problem instance into subproblems of much smaller size"), then
// shingle each component independently and merge the results. Components
// are processed by a worker pool (the shared-memory parallelization of
// Rytsareva et al., which the paper cites as the OpenMP pClust).
//
// Clusters can only form within a connected component, so decomposition is
// exact with respect to cluster support; the reported partition is
// statistically equivalent to (not bit-identical with) the whole-graph
// ClusterSerial run, because the per-component vertex relabeling draws a
// different — equally valid — realization of the random permutations.
// Timings are the aggregate serial work; the per-component parallelism is a
// real-wall-clock optimization, not a virtual-clock one.
func ClusterByComponent(g *graph.Graph, o Options, workers int) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	labels, count := graph.ConnectedComponents(g)
	members := graph.ComponentMembers(labels, count)

	type subResult struct {
		res  *Result
		orig []uint32
		err  error
	}
	jobs := make(chan int, count)
	results := make([]subResult, count)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if len(members[c]) == 1 {
					continue // singleton component: trivially its own cluster
				}
				sub, orig := graph.InducedSubgraph(g, members[c])
				// Sub-runs record nothing: concurrent per-component spans
				// would interleave on one timeline and per-component gauges
				// would clobber each other; the merged result is recorded
				// once below.
				subO := o
				subO.Obs = nil
				res, err := ClusterSerial(sub, subO)
				results[c] = subResult{res: res, orig: orig, err: err}
			}
		}()
	}
	for c := 0; c < count; c++ {
		jobs <- c
	}
	close(jobs)
	wg.Wait()

	merged := &Result{Backend: "serial-decomposed"}
	var clusters [][]uint32
	for c := 0; c < count; c++ {
		r := results[c]
		if len(members[c]) == 1 {
			clusters = append(clusters, []uint32{members[c][0]})
			continue
		}
		if r.err != nil {
			return nil, fmt.Errorf("core: component %d: %w", c, r.err)
		}
		for _, cl := range r.res.Clustering.Clusters {
			mapped := make([]uint32, len(cl))
			for i, v := range cl {
				mapped[i] = r.orig[v]
			}
			clusters = append(clusters, mapped)
		}
		// Aggregate the virtual-clock components and pass statistics.
		merged.Timings.ShingleNs += r.res.Timings.ShingleNs
		merged.Timings.CPUNs += r.res.Timings.CPUNs
		merged.Pass1.Lists += r.res.Pass1.Lists
		merged.Pass1.Elements += r.res.Pass1.Elements
		merged.Pass1.Tuples += r.res.Pass1.Tuples
		merged.Pass1.Shingles += r.res.Pass1.Shingles
		merged.Pass1.SkippedShort += r.res.Pass1.SkippedShort
		merged.Pass1.SharedLists += r.res.Pass1.SharedLists
		merged.Pass2.Lists += r.res.Pass2.Lists
		merged.Pass2.Elements += r.res.Pass2.Elements
		merged.Pass2.Tuples += r.res.Pass2.Tuples
		merged.Pass2.Shingles += r.res.Pass2.Shingles
	}
	merged.Pass1.Batches = 1
	merged.Pass2.Batches = 1
	acct := &cpuAccount{diskBytes: graphDiskBytes(g)}
	merged.Timings.DiskIONs = acct.diskNs()
	merged.Timings.TotalNs = merged.Timings.ShingleNs + merged.Timings.CPUNs + merged.Timings.DiskIONs

	// Each mapped cluster is sorted because InducedSubgraph preserves id
	// order; order the cluster list deterministically.
	sortClusters(clusters)
	merged.Clustering = Clustering{N: n, Clusters: clusters}
	recordHostTimeline(o.Obs, merged.Timings.DiskIONs,
		[2][2]float64{{merged.Timings.ShingleNs, merged.Timings.CPUNs}, {0, 0}}, 0)
	recordRunMetrics(o.Obs, merged)
	return merged, nil
}
