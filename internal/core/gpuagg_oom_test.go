package core

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
)

func TestGPUAggregateOnTinyDevice(t *testing.T) {
	g, _ := plantedTestGraph(800, 97)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.GPUAggregate = true
	cfg := gpusim.SmallConfig()
	cfg.GlobalMemBytes = 48 << 10 // 12K words: forces many batches
	dev := gpusim.MustNew(cfg)
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Pass1.Batches < 2 {
		t.Fatalf("tiny device used %d batches", gpu.Pass1.Batches)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("tiny-device GPU-agg clustering differs from serial")
	}
	if dev.AllocatedBuffers() != 0 {
		t.Fatalf("%d buffers leaked", dev.AllocatedBuffers())
	}
}
