package core

import "sync"

// Scratch pools for the shingling hot loops. Every trial of every list wants
// an s-sized minima slice, and every per-trial radix sort wants an n-sized
// tuple buffer; recycling both through sync.Pool keeps the steady-state
// allocation rate of a pass near zero (measured by the allocs/op column of
// BenchmarkClusterParallel).

var minimaPool = sync.Pool{New: func() any { return new([]uint32) }}

// getMinima returns an s-length scratch slice for min-wise minima.
func getMinima(s int) []uint32 {
	p := minimaPool.Get().(*[]uint32)
	if cap(*p) < s {
		*p = make([]uint32, s)
	}
	return (*p)[:s]
}

func putMinima(m []uint32) {
	minimaPool.Put(&m)
}

var tupleSlicePool = sync.Pool{New: func() any { return new([]tuple) }}

// getTupleSlice returns an empty tuple slice with at least the given capacity.
func getTupleSlice(capacity int) []tuple {
	p := tupleSlicePool.Get().(*[]tuple)
	if cap(*p) < capacity {
		*p = make([]tuple, 0, capacity)
	}
	return (*p)[:0]
}

func putTupleSlice(ts []tuple) {
	ts = ts[:0]
	tupleSlicePool.Put(&ts)
}
