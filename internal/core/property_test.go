package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// Property: for any random graph and any valid parameter setting, the
// serial, parallel (across worker counts), and GPU backends (all variants,
// including the batch-pipelined path) produce the identical clustering, and
// that clustering is a partition of the vertex set.
func TestPropertyBackendsAgree(t *testing.T) {
	f := func(seed int64, rawS1, rawC1, rawBatch uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(150)
		m := n * (1 + rng.Intn(8))
		g := graph.RandomGraph(n, m, seed)

		o := DefaultOptions()
		o.S1 = 1 + int(rawS1%4)
		o.S2 = 1 + int(rawS1%3)
		o.C1 = 5 + int(rawC1%20)
		o.C2 = 3 + int(rawC1%10)
		o.Seed = seed

		serial, err := ClusterSerial(g, o)
		if err != nil {
			t.Logf("serial: %v", err)
			return false
		}

		// partition property
		seen := make([]bool, n)
		for _, cl := range serial.Clustering.Clusters {
			for _, v := range cl {
				if seen[v] {
					t.Logf("vertex %d twice", v)
					return false
				}
				seen[v] = true
			}
		}
		for _, ok := range seen {
			if !ok {
				t.Log("vertex missing")
				return false
			}
		}

		// Multi-core host backend across worker-pool sizes.
		for _, workers := range []int{1, 2, 8} {
			o.Workers = workers
			par, err := ClusterParallel(g, o)
			if err != nil {
				t.Logf("parallel(workers=%d): %v", workers, err)
				return false
			}
			if !reflect.DeepEqual(serial.Clustering, par.Clustering) {
				t.Logf("parallel clustering differs (workers=%d)", workers)
				return false
			}
		}
		o.Workers = 0

		// GPU with a randomized batch budget (possibly forcing splits).
		o.BatchWords = 0
		if rawBatch%2 == 0 {
			o.BatchWords = 64 + int(rawBatch)*8
		}
		dev := gpusim.MustNew(gpusim.K20Config())
		gpu, err := ClusterGPU(g, dev, o)
		if err != nil {
			t.Logf("gpu: %v", err)
			return false
		}
		if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
			t.Logf("gpu clustering differs (batch=%d)", o.BatchWords)
			return false
		}

		// Batch-pipelined GPU variant on the same batch budget.
		o.PipelineBatches = true
		devP := gpusim.MustNew(gpusim.K20Config())
		pipe, err := ClusterGPU(g, devP, o)
		if err != nil {
			t.Logf("pipelined: %v", err)
			return false
		}
		if !reflect.DeepEqual(serial.Clustering, pipe.Clustering) {
			t.Logf("pipelined clustering differs (batch=%d)", o.BatchWords)
			return false
		}
		o.PipelineBatches = false

		// GPU aggregation variant.
		o.GPUAggregate = true
		devA := gpusim.MustNew(gpusim.K20Config())
		agg, err := ClusterGPU(g, devA, o)
		if err != nil {
			t.Logf("gpuagg: %v", err)
			return false
		}
		if !reflect.DeepEqual(serial.Clustering, agg.Clustering) {
			t.Log("gpu-aggregate clustering differs")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: cluster supports never cross connected components.
func TestPropertyClustersWithinComponents(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.RandomGraph(120, 200, seed) // sparse: many components
		labels, _ := graph.ConnectedComponents(g)
		o := testOptions()
		o.Seed = seed
		res, err := ClusterSerial(g, o)
		if err != nil {
			return false
		}
		for _, cl := range res.Clustering.Clusters {
			for _, v := range cl[1:] {
				if labels[v] != labels[cl[0]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: adding edges inside a planted clique never splits it, and the
// clique ends up in one cluster for adequate parameters.
func TestPropertyCliqueStaysTogether(t *testing.T) {
	f := func(seed int64, rawSize uint8) bool {
		size := 8 + int(rawSize%12)
		b := graph.NewBuilder(size + 20)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(uint32(i), uint32(j))
			}
		}
		// background noise among the other 20 vertices
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 15; k++ {
			u := uint32(size + rng.Intn(20))
			v := uint32(size + rng.Intn(20))
			b.AddEdge(u, v)
		}
		g := b.Build()
		o := testOptions()
		o.Seed = seed
		res, err := ClusterSerial(g, o)
		if err != nil {
			return false
		}
		labels := res.Clustering.Labels()
		for i := 1; i < size; i++ {
			if labels[i] != labels[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
