package core

import (
	"reflect"
	"sync"
	"testing"

	"gpclust/internal/graph"
)

func TestParallelMatchesSerial(t *testing.T) {
	g, _ := plantedTestGraph(600, 43)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 33} {
		o.Workers = workers
		par, err := ClusterParallel(g, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Clustering, par.Clustering) {
			t.Fatalf("workers=%d: clustering differs from serial", workers)
		}
		if par.Pass1.Tuples != serial.Pass1.Tuples || par.Pass2.Tuples != serial.Pass2.Tuples {
			t.Fatalf("workers=%d: tuple counts differ (%d/%d vs %d/%d)", workers,
				par.Pass1.Tuples, par.Pass2.Tuples, serial.Pass1.Tuples, serial.Pass2.Tuples)
		}
		if par.Pass1.Shingles != serial.Pass1.Shingles || par.Pass2.Shingles != serial.Pass2.Shingles {
			t.Fatalf("workers=%d: shingle counts differ", workers)
		}
		if par.Pass1.SkippedShort != serial.Pass1.SkippedShort {
			t.Fatalf("workers=%d: SkippedShort differs", workers)
		}
		if par.Backend != "parallel" {
			t.Fatalf("backend = %q", par.Backend)
		}
	}
}

func TestParallelWorkersResolved(t *testing.T) {
	g, _ := plantedTestGraph(200, 47)
	o := testOptions()
	o.Workers = 3
	res, err := ClusterParallel(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 {
		t.Fatalf("Result.Workers = %d, want 3", res.Workers)
	}
	if len(res.WorkerCPUNs) != 3 {
		t.Fatalf("len(WorkerCPUNs) = %d, want 3", len(res.WorkerCPUNs))
	}
	// The per-worker accounts must add up to the serial backend's totals:
	// the pool divides the same virtual work, it does not invent or lose any.
	o.Workers = 0
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, ns := range res.WorkerCPUNs {
		sum += ns
	}
	if sum <= 0 {
		t.Fatal("no worker CPU time accounted")
	}
	if serial.Timings.ShingleNs <= 0 {
		t.Fatal("serial shingle time missing")
	}
	// Shingling ops are charged identically per list, so summed worker
	// shingle time equals the serial figure; Timings reports the max.
	if res.Timings.ShingleNs > serial.Timings.ShingleNs+1 {
		t.Fatalf("parallel critical-path shingle %.0fns above serial total %.0fns",
			res.Timings.ShingleNs, serial.Timings.ShingleNs)
	}
	if res.Timings.TotalNs <= 0 || res.Timings.DiskIONs != serial.Timings.DiskIONs {
		t.Fatal("parallel timings malformed")
	}
}

func TestParallelWallClockRecorded(t *testing.T) {
	g, _ := plantedTestGraph(300, 53)
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return ClusterSerial(g, testOptions()) },
		func() (*Result, error) { return ClusterParallel(g, testOptions()) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		w := res.Wall
		if w.TotalNs <= 0 || w.Pass1Ns <= 0 || w.Pass2Ns <= 0 {
			t.Fatalf("%s: wall times not recorded: %+v", res.Backend, w)
		}
		if w.TotalNs < w.Pass1Ns+w.Pass2Ns {
			t.Fatalf("%s: wall total %d below phase sum", res.Backend, w.TotalNs)
		}
	}
}

func TestParallelOverlappingMatchesSerial(t *testing.T) {
	g, _ := plantedTestGraph(400, 59)
	o := testOptions()
	o.Mode = ReportOverlapping
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		o.Workers = workers
		par, err := ClusterParallel(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Clustering, par.Clustering) {
			t.Fatalf("workers=%d: overlapping clustering differs from serial", workers)
		}
	}
}

func TestParallelEmptyAndTinyGraphs(t *testing.T) {
	o := testOptions()
	o.Workers = 4
	// All singletons.
	g := graph.FromEdges(10, nil)
	res, err := ClusterParallel(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clustering.Clusters) != 10 {
		t.Fatalf("%d clusters for 10 singletons", len(res.Clustering.Clusters))
	}
	// Degrees below s: everything skipped, still a full partition.
	g = graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	o.S1 = 3
	res, err = ClusterParallel(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass1.SkippedShort != 4 || len(res.Clustering.Clusters) != 6 {
		t.Fatalf("skipped=%d clusters=%d, want 4/6", res.Pass1.SkippedShort, len(res.Clustering.Clusters))
	}
}

func TestParallelInvalidWorkers(t *testing.T) {
	o := testOptions()
	o.Workers = -2
	g, _ := plantedTestGraph(100, 61)
	if _, err := ClusterParallel(g, o); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestParallelConcurrentAggregationRace drives several full parallel runs
// simultaneously with oversubscribed pools so `go test -race` sweeps the
// sharded aggregation, the lock-free union-find reporting, and the sync.Pool
// reuse under maximum interleaving.
func TestParallelConcurrentAggregationRace(t *testing.T) {
	g, _ := plantedTestGraph(400, 67)
	o := testOptions()
	o.Workers = 8
	want, err := ClusterParallel(g, o)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ClusterParallel(g, o)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(want.Clustering, res.Clustering) {
				t.Error("concurrent run produced a different clustering")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParallelDeterministic(t *testing.T) {
	g, _ := plantedTestGraph(300, 71)
	o := testOptions()
	o.Workers = 5
	r1, err := ClusterParallel(g, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ClusterParallel(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Clustering, r2.Clustering) {
		t.Fatal("same options produced different clusterings across runs")
	}
}
