package core

import (
	"testing"

	"gpclust/internal/graph"
)

func TestClusterByComponentPartition(t *testing.T) {
	g, _ := plantedTestGraph(800, 43)
	res, err := ClusterByComponent(g, testOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Exact partition of the vertex set.
	seen := make([]bool, g.NumVertices())
	for _, cl := range res.Clustering.Clusters {
		if len(cl) == 0 {
			t.Fatal("empty cluster")
		}
		for j, v := range cl {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if j > 0 && cl[j-1] >= v {
				t.Fatal("cluster members not sorted")
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d missing", v)
		}
	}
}

func TestClusterByComponentRespectsComponents(t *testing.T) {
	g, _ := plantedTestGraph(600, 47)
	labels, _ := graph.ConnectedComponents(g)
	res, err := ClusterByComponent(g, testOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range res.Clustering.Clusters {
		for _, v := range cl[1:] {
			if labels[v] != labels[cl[0]] {
				t.Fatalf("cluster spans connected components %d and %d", labels[cl[0]], labels[v])
			}
		}
	}
}

func TestClusterByComponentQualityMatchesGlobal(t *testing.T) {
	// The decomposed run is a different random realization but must find
	// the same dense structure: compare cluster-size profiles.
	g, gt := plantedTestGraph(700, 53)
	o := testOptions()
	global, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	decomposed, err := ClusterByComponent(g, o, 3)
	if err != nil {
		t.Fatal(err)
	}
	bigG := global.Clustering.ClustersOfSizeAtLeast(8)
	bigD := decomposed.Clustering.ClustersOfSizeAtLeast(8)
	if len(bigD) == 0 {
		t.Fatal("decomposed run found no clusters of size ≥ 8")
	}
	ratio := float64(len(bigD)) / float64(len(bigG))
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("decomposed found %d big clusters vs global %d; profiles diverge", len(bigD), len(bigG))
	}
	// Both must be pure at the super-family level.
	for _, cl := range bigD {
		counts := map[int32]int{}
		for _, v := range cl {
			counts[gt.SuperFamily[v]]++
		}
		best := 0
		for f, c := range counts {
			if f >= 0 && c > best {
				best = c
			}
		}
		if float64(best) < 0.7*float64(len(cl)) {
			t.Errorf("decomposed cluster of %d impure: best super covers %d", len(cl), best)
		}
	}
}

func TestClusterByComponentSingletons(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}}) // 3 singletons
	res, err := ClusterByComponent(g, testOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.N != 5 {
		t.Fatalf("N = %d", res.Clustering.N)
	}
	if len(res.Clustering.Clusters) < 4 {
		t.Fatalf("%d clusters, want ≥ 4 (singletons preserved)", len(res.Clustering.Clusters))
	}
}

func TestClusterByComponentWorkerInvariance(t *testing.T) {
	g, _ := plantedTestGraph(400, 59)
	o := testOptions()
	r1, err := ClusterByComponent(g, o, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := ClusterByComponent(g, o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Clustering.Clusters) != len(r4.Clustering.Clusters) {
		t.Fatalf("cluster count differs across worker counts: %d vs %d",
			len(r1.Clustering.Clusters), len(r4.Clustering.Clusters))
	}
	for i := range r1.Clustering.Clusters {
		a, b := r1.Clustering.Clusters[i], r4.Clustering.Clusters[i]
		if len(a) != len(b) {
			t.Fatal("cluster sizes differ across worker counts")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("cluster membership differs across worker counts")
			}
		}
	}
}
