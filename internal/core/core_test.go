package core

import (
	"reflect"
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// testOptions returns fast settings for unit tests (the paper's c1=200,
// c2=100 are production quality settings, far more trials than small test
// graphs need).
func testOptions() Options {
	o := DefaultOptions()
	o.C1, o.C2 = 40, 20
	return o
}

// plantedTestGraph builds a small graph with known dense families.
func plantedTestGraph(n int, seed int64) (*graph.Graph, *graph.GroundTruth) {
	cfg := graph.DefaultPlantedConfig(n)
	cfg.Seed = seed
	cfg.BridgedPairs = 0
	cfg.NoiseEdges = n / 100
	return graph.Planted(cfg)
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{S1: 0, C1: 1, S2: 1, C2: 1},
		{S1: 1, C1: 0, S2: 1, C2: 1},
		{S1: 1, C1: 1, S2: 0, C2: 1},
		{S1: 1, C1: 1, S2: 1, C2: 0},
		{S1: 65, C1: 1, S2: 1, C2: 1},
		{S1: 1, C1: 1, S2: 1, C2: 1, BatchWords: -5},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.S1 != 2 || o.C1 != 200 || o.S2 != 2 || o.C2 != 100 {
		t.Fatalf("defaults s1=%d c1=%d s2=%d c2=%d; paper Section III-D says 2/200/2/100",
			o.S1, o.C1, o.S2, o.C2)
	}
	if o.Mode != ReportUnionFind {
		t.Fatal("default mode is not the paper's union-find reporting")
	}
}

func TestSerialPartitionInvariants(t *testing.T) {
	g, _ := plantedTestGraph(500, 3)
	res, err := ClusterSerial(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Union-find mode must produce an exact partition of [0, n).
	seen := make([]bool, g.NumVertices())
	for _, cl := range res.Clustering.Clusters {
		if len(cl) == 0 {
			t.Fatal("empty cluster reported")
		}
		for j, v := range cl {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if j > 0 && cl[j-1] >= v {
				t.Fatal("cluster members not sorted")
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d missing from partition", v)
		}
	}
	// Labels must therefore work.
	labels := res.Clustering.Labels()
	if len(labels) != g.NumVertices() {
		t.Fatal("labels length mismatch")
	}
}

func TestSerialRecoversPlantedFamilies(t *testing.T) {
	g, gt := plantedTestGraph(600, 7)
	res, err := ClusterSerial(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Clustering.Labels()

	// For every planted family of reasonable size, the bulk of its members
	// must land in a single cluster (the family's dense subgraph is exactly
	// what shingling detects).
	fams := map[int32][]uint32{}
	for v, f := range gt.Family {
		if f >= 0 {
			fams[f] = append(fams[f], uint32(v))
		}
	}
	checked := 0
	for f, members := range fams {
		if len(members) < 8 {
			continue
		}
		counts := map[int32]int{}
		for _, v := range members {
			counts[labels[v]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if float64(best) < 0.7*float64(len(members)) {
			t.Errorf("family %d (size %d): largest cluster holds only %d members", f, len(members), best)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d families of size ≥ 8 in test graph; generator misconfigured", checked)
	}

	// Conversely, big clusters must be pure at the super-family level:
	// shingling may merge sister core families connected by the planted
	// cross edges (that is what the paper's loose "benchmark" families
	// model), but it must not merge unrelated super-families.
	for _, cl := range res.Clustering.ClustersOfSizeAtLeast(8) {
		counts := map[int32]int{}
		for _, v := range cl {
			counts[gt.SuperFamily[v]]++
		}
		best := 0
		for f, c := range counts {
			if f >= 0 && c > best {
				best = c
			}
		}
		if float64(best) < 0.7*float64(len(cl)) {
			t.Errorf("cluster of size %d is impure: best super-family covers %d", len(cl), best)
		}
	}
}

func TestSerialDeterministic(t *testing.T) {
	g, _ := plantedTestGraph(300, 11)
	o := testOptions()
	r1, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Clustering, r2.Clustering) {
		t.Fatal("same seed produced different clusterings")
	}
	o.Seed = 999
	r3, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds may legitimately coincide on tiny graphs, but the
	// pass statistics (distinct shingles) almost surely differ.
	if r1.Pass1.Shingles == r3.Pass1.Shingles && reflect.DeepEqual(r1.Clustering, r3.Clustering) {
		t.Log("warning: different seeds produced identical output (possible but unlikely)")
	}
}

func TestGPUMatchesSerial(t *testing.T) {
	g, _ := plantedTestGraph(500, 5)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.MustNew(gpusim.K20Config())
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatalf("GPU clustering differs from serial: %d vs %d clusters",
			len(gpu.Clustering.Clusters), len(serial.Clustering.Clusters))
	}
	if serial.Pass1.Tuples != gpu.Pass1.Tuples {
		t.Fatalf("pass-1 tuples: serial %d vs gpu %d", serial.Pass1.Tuples, gpu.Pass1.Tuples)
	}
	if serial.Pass2.Tuples != gpu.Pass2.Tuples {
		t.Fatalf("pass-2 tuples: serial %d vs gpu %d", serial.Pass2.Tuples, gpu.Pass2.Tuples)
	}
	if dev.AllocatedBuffers() != 0 {
		t.Fatalf("%d device buffers leaked", dev.AllocatedBuffers())
	}
}

func TestGPUMatchesSerialAcrossBatchSizes(t *testing.T) {
	g, _ := plantedTestGraph(400, 13)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, batchWords := range []int{0, 50_000, 5_000, 700, 24} {
		o.BatchWords = batchWords
		dev := gpusim.MustNew(gpusim.K20Config())
		gpu, err := ClusterGPU(g, dev, o)
		if err != nil {
			t.Fatalf("BatchWords=%d: %v", batchWords, err)
		}
		if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
			t.Fatalf("BatchWords=%d: clustering differs from serial (batches=%d splits=%d)",
				batchWords, gpu.Pass1.Batches, gpu.Pass1.SplitLists)
		}
		if batchWords == 24 && gpu.Pass1.SplitLists == 0 {
			t.Fatal("tiny batches produced no split lists; split-merge path untested")
		}
		if batchWords == 5_000 && gpu.Pass1.Batches < 2 {
			t.Fatal("BatchWords=5000 did not force multiple batches")
		}
	}
}

func TestGPUSmallDeviceForcesBatching(t *testing.T) {
	// On the 1 MB test device the default (memory-derived) batch budget
	// must yield multiple batches and still match serial.
	g, _ := plantedTestGraph(800, 17)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpusim.SmallConfig()
	cfg.GlobalMemBytes = 32 << 10 // 8K words: far below the graph's footprint
	dev := gpusim.MustNew(cfg)
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Pass1.Batches < 2 {
		t.Fatalf("tiny device used %d batch(es) for a %d-word graph",
			gpu.Pass1.Batches, len(g.Adj))
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("batched clustering differs from serial")
	}
}

func TestAsyncMatchesSyncAndIsFaster(t *testing.T) {
	g, _ := plantedTestGraph(500, 19)
	o := testOptions()

	devSync := gpusim.MustNew(gpusim.K20Config())
	syncRes, err := ClusterGPU(g, devSync, o)
	if err != nil {
		t.Fatal(err)
	}

	o.AsyncTransfer = true
	devAsync := gpusim.MustNew(gpusim.K20Config())
	asyncRes, err := ClusterGPU(g, devAsync, o)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(syncRes.Clustering, asyncRes.Clustering) {
		t.Fatal("async clustering differs from sync")
	}
	if asyncRes.Timings.TotalNs >= syncRes.Timings.TotalNs {
		t.Fatalf("async total %.2fms not faster than sync %.2fms",
			asyncRes.Timings.TotalNs/1e6, syncRes.Timings.TotalNs/1e6)
	}
}

func TestFullSortMatchesFused(t *testing.T) {
	g, _ := plantedTestGraph(300, 23)
	o := testOptions()
	devA := gpusim.MustNew(gpusim.K20Config())
	fused, err := ClusterGPU(g, devA, o)
	if err != nil {
		t.Fatal(err)
	}
	o.UseFullSort = true
	devB := gpusim.MustNew(gpusim.K20Config())
	full, err := ClusterGPU(g, devB, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused.Clustering, full.Clustering) {
		t.Fatal("full-sort path produced a different clustering")
	}
	// The literal Algorithm 1 does strictly more device work.
	if full.Timings.GPUNs <= fused.Timings.GPUNs {
		t.Fatalf("full sort GPU time %.2fms not above fused %.2fms",
			full.Timings.GPUNs/1e6, fused.Timings.GPUNs/1e6)
	}
}

func TestFullSortAsyncMatchesSync(t *testing.T) {
	// The segmented sort runs on the lane's stream against the lane's
	// private hash buffer, so full sort composes with async transfers.
	g, _ := plantedTestGraph(100, 29)
	o := testOptions()
	o.UseFullSort = true
	devSync := gpusim.MustNew(gpusim.K20Config())
	syncRes, err := ClusterGPU(g, devSync, o)
	if err != nil {
		t.Fatal(err)
	}
	o.AsyncTransfer = true
	devAsync := gpusim.MustNew(gpusim.K20Config())
	asyncRes, err := ClusterGPU(g, devAsync, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(syncRes.Clustering, asyncRes.Clustering) {
		t.Fatal("full-sort async clustering differs from sync")
	}
}

func TestOverlappingMode(t *testing.T) {
	g, _ := plantedTestGraph(400, 31)
	o := testOptions()
	o.Mode = ReportOverlapping
	res, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range res.Clustering.Clusters {
		if len(cl) == 0 {
			t.Fatal("empty overlapping cluster")
		}
		for j := 1; j < len(cl); j++ {
			if cl[j-1] >= cl[j] {
				t.Fatal("overlapping cluster members not sorted/deduped")
			}
		}
	}
	// The union-find partition is the overlap-free coarsening: every
	// overlapping cluster must live inside one union-find cluster.
	o.Mode = ReportUnionFind
	part, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	labels := part.Clustering.Labels()
	for _, cl := range res.Clustering.Clusters {
		l := labels[cl[0]]
		for _, v := range cl[1:] {
			if labels[v] != l {
				t.Fatalf("overlapping cluster spans union-find clusters %d and %d", l, labels[v])
			}
		}
	}
}

func TestTimingsShape(t *testing.T) {
	g, _ := plantedTestGraph(4000, 37)
	o := testOptions()
	serial, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.MustNew(gpusim.K20Config())
	gpu, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	st, gt := serial.Timings, gpu.Timings
	if st.TotalNs <= 0 || gt.TotalNs <= 0 {
		t.Fatal("non-positive totals")
	}
	if st.GPUNs != 0 || st.H2DNs != 0 || st.D2HNs != 0 {
		t.Fatal("serial run reports GPU components")
	}
	if gt.GPUNs <= 0 || gt.H2DNs <= 0 || gt.D2HNs <= 0 {
		t.Fatal("GPU run missing components")
	}
	// Table I shape: the accelerated part is dramatically faster than its
	// serial counterpart, and D2H dwarfs H2D (shingles move back per trial,
	// the input moves once per batch).
	if st.ShingleNs <= 0 || st.TotalNs < st.ShingleNs {
		t.Fatalf("serial shingle time %v inconsistent with total %v", st.ShingleNs, st.TotalNs)
	}
	if gt.ShingleNs != 0 {
		t.Fatal("GPU run reports a serial shingle component")
	}
	if st.ShingleNs < 5*gt.GPUNs {
		t.Fatalf("GPU-part speedup = %.1fX, want ≥ 5X even at test scale",
			st.ShingleNs/gt.GPUNs)
	}
	// At full scale D2H dwarfs H2D (per-trial shingle downloads vs one
	// upload per batch — Table I); at this test's tiny scale both are
	// dominated by the per-call setup cost, so only near-parity is
	// asserted here. The bench harness tests the full-scale shape.
	if gt.D2HNs < 0.9*gt.H2DNs {
		t.Fatalf("D2H (%.2fms) well below H2D (%.2fms); Table I shows the opposite",
			gt.D2HNs/1e6, gt.H2DNs/1e6)
	}
	if gt.TotalNs >= st.TotalNs {
		t.Fatalf("gpClust total %.1fms not below serial %.1fms", gt.TotalNs/1e6, st.TotalNs/1e6)
	}
}

func TestPassStats(t *testing.T) {
	g, _ := plantedTestGraph(400, 41)
	o := testOptions()
	res, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	nonSingleton := len(g.NonSingletonVertices())
	if res.Pass1.Lists != nonSingleton {
		t.Fatalf("Pass1.Lists = %d, want %d non-singleton vertices", res.Pass1.Lists, nonSingleton)
	}
	if res.Pass1.Elements != int64(len(g.Adj)) {
		t.Fatalf("Pass1.Elements = %d, want %d", res.Pass1.Elements, len(g.Adj))
	}
	wantTuples := int64(res.Pass1.Lists-res.Pass1.SkippedShort) * int64(o.C1)
	if res.Pass1.Tuples != wantTuples {
		t.Fatalf("Pass1.Tuples = %d, want %d", res.Pass1.Tuples, wantTuples)
	}
	if res.Pass1.Shingles == 0 || res.Pass2.Shingles == 0 {
		t.Fatal("no shingles generated")
	}
	if res.Pass1.SharedLists == 0 {
		t.Fatal("no first-level shingles shared by ≥ s2 vertices; dense structure not detected")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(10, nil) // 10 singletons
	o := testOptions()
	res, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clustering.Clusters) != 10 {
		t.Fatalf("%d clusters for 10 singletons, want 10", len(res.Clustering.Clusters))
	}
	dev := gpusim.MustNew(gpusim.K20Config())
	gres, err := ClusterGPU(g, dev, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Clustering, gres.Clustering) {
		t.Fatal("GPU empty-graph clustering differs")
	}
}

func TestTinyDegreeGraph(t *testing.T) {
	// All degrees below s1: nothing can be shingled; everything stays a
	// singleton cluster.
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	o := testOptions()
	o.S1 = 3
	res, err := ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass1.SkippedShort != 4 {
		t.Fatalf("SkippedShort = %d, want 4", res.Pass1.SkippedShort)
	}
	if len(res.Clustering.Clusters) != 6 {
		t.Fatalf("%d clusters, want 6 singletons", len(res.Clustering.Clusters))
	}
}

func TestMergeTopS(t *testing.T) {
	S := uint32(0xFFFFFFFF) // sentinel
	cases := []struct {
		acc, piece, want []uint32
		s                int
	}{
		{nil, []uint32{1, 2, S}, []uint32{1, 2}, 3},
		{[]uint32{1, 2}, []uint32{0, 3, S}, []uint32{0, 1, 2}, 3},
		{[]uint32{5, 6, 7}, []uint32{1, 2, 3}, []uint32{1, 2, 3}, 3},
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}, []uint32{1, 2, 3}, 3},
		{nil, []uint32{S, S, S}, []uint32{}, 3},
		{[]uint32{9}, []uint32{4, S}, []uint32{4, 9}, 2},
	}
	for i, c := range cases {
		got := mergeTopS(c.acc, c.piece, c.s)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestPlanBatches(t *testing.T) {
	sg := &SegGraph{
		Offsets: []int64{0, 10, 12, 112, 115},
		Data:    make([]uint32, 115),
	}
	plans, err := planBatches(sg, 2, 200, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reassembled pieces must cover every list exactly.
	covered := map[int]int64{}
	for _, p := range plans {
		cost := 0
		for _, pc := range p.pieces {
			if pc.lo != covered[pc.list] {
				t.Fatalf("list %d pieces out of order: lo=%d, covered=%d", pc.list, pc.lo, covered[pc.list])
			}
			covered[pc.list] = pc.hi
			cost += 3*pc.words() + 2*(2+2)
		}
		if cost > 200 {
			t.Fatalf("batch footprint %d exceeds budget 200", cost)
		}
	}
	for i := 0; i < sg.NumLists(); i++ {
		want := sg.Offsets[i+1] - sg.Offsets[i]
		if covered[i] != want {
			t.Fatalf("list %d covered to %d, want %d", i, covered[i], want)
		}
	}
	// Budget too small for anything.
	if _, err := planBatches(sg, 2, 4, false); err == nil {
		t.Fatal("absurd budget accepted")
	}
}

func TestClustersOfSizeAtLeast(t *testing.T) {
	c := Clustering{N: 10, Clusters: [][]uint32{
		{0, 1, 2}, {3, 4}, {5}, {6, 7, 8, 9},
	}}
	big := c.ClustersOfSizeAtLeast(3)
	if len(big) != 2 {
		t.Fatalf("got %d clusters, want 2", len(big))
	}
	if len(big[0]) != 4 || len(big[1]) != 3 {
		t.Fatal("clusters not sorted descending")
	}
}

func BenchmarkClusterSerial2K(b *testing.B) {
	g, _ := plantedTestGraph(2000, 1)
	o := testOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClusterSerial(g, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterGPU2K(b *testing.B) {
	g, _ := plantedTestGraph(2000, 1)
	o := testOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := gpusim.MustNew(gpusim.K20Config())
		if _, err := ClusterGPU(g, dev, o); err != nil {
			b.Fatal(err)
		}
	}
}
