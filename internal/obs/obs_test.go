package obs

import (
	"testing"

	"gpclust/internal/gpusim"
)

// TestNilRecorderNoOp pins the nil-safety contract: every method of a nil
// recorder (and the instruments it hands out) must be a silent no-op, so the
// pipelines can thread a recorder unconditionally.
func TestNilRecorderNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.Span(TrackPhases, "x", 0, 1)
	r.Instant(TrackFaults, "x", 0)
	e := r.Start(TrackPhases, "x", 0)
	e.End(1)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	if got := r.Instants(); got != nil {
		t.Fatalf("nil recorder returned instants: %v", got)
	}
	r.Counter("c", "h").Inc()
	r.Counter("c", "h").Add(5)
	if v := r.Counter("c", "h").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	r.Gauge("g", "h").Set(3)
	if v := r.Gauge("g", "h").Value(); v != 0 {
		t.Fatalf("nil gauge value %g", v)
	}
	h := r.Histogram("h", "h", DefBucketsNs)
	h.Observe(1)
	if v := h.Count(); v != 0 {
		t.Fatalf("nil histogram count %d", v)
	}
}

// TestNilRecorderZeroAlloc asserts the disabled path costs nothing: a nil
// recorder's hot-path methods allocate zero bytes, so leaving Obs unset in
// Options is genuinely free.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		r.Span(TrackHostCPU, "stage", 0, 1)
		r.Instant(TrackRecovery, "retry", 0)
		r.Start(TrackPhases, "p", 0).End(1)
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder hot path allocates %.1f times per run", allocs)
	}
}

// TestRecorderSpansAndInstants covers the live recording path, including the
// record-order copy semantics of the accessors.
func TestRecorderSpansAndInstants(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("live recorder not Enabled")
	}
	r.Span(TrackHostCPU, NameRead, 0, 100)
	r.Instant(TrackFaults, "fault:h2d", 50)
	e := r.Start(TrackPhases, "shingle-pass1", 100)
	e.End(300)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0] != (Span{Track: TrackHostCPU, Name: NameRead, StartNs: 0, EndNs: 100}) {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "shingle-pass1" || spans[1].StartNs != 100 || spans[1].EndNs != 300 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if spans[1].WallNs < 0 {
		t.Fatalf("Start/End span has negative wall time %d", spans[1].WallNs)
	}
	insts := r.Instants()
	if len(insts) != 1 || insts[0] != (Instant{Track: TrackFaults, Name: "fault:h2d", AtNs: 50}) {
		t.Fatalf("instants = %+v", insts)
	}

	// Accessors return copies: mutating them must not corrupt the recorder.
	spans[0].Name = "clobbered"
	if r.Spans()[0].Name != NameRead {
		t.Fatal("Spans returned a live reference")
	}
}

// TestMetricsRegistry covers counter/gauge/histogram registration semantics:
// same-name reuse, kind clashes and bucket assignment.
func TestMetricsRegistry(t *testing.T) {
	r := New()
	c := r.Counter("reqs", "requests")
	c.Inc()
	r.Counter("reqs", "requests").Add(4)
	if v := c.Value(); v != 5 {
		t.Fatalf("counter = %d, want 5", v)
	}
	if r.Gauge("reqs", "clash") != nil {
		t.Fatal("kind clash did not return nil")
	}
	g := r.Gauge("temp", "temperature")
	g.Set(1.5)
	g.Set(-2.5)
	if v := g.Value(); v != -2.5 {
		t.Fatalf("gauge = %g, want -2.5", v)
	}
	h := r.Histogram("lat", "latency", []float64{10, 100})
	for _, v := range []float64{5, 10, 50, 1000} {
		h.Observe(v)
	}
	if n := h.Count(); n != 4 {
		t.Fatalf("histogram count = %d, want 4", n)
	}
	// Second registration keeps the first bounds.
	if h2 := r.Histogram("lat", "latency", []float64{1}); h2 != h {
		t.Fatal("re-registration returned a different histogram")
	}
}

// TestTableSplit reconstructs the Table-I component breakdown from synthetic
// spans and a synthetic device timeline.
func TestTableSplit(t *testing.T) {
	spans := []Span{
		{Track: TrackHostCPU, Name: NameRead, StartNs: 0, EndNs: 40},
		{Track: TrackHostCPU, Name: NameShingle, StartNs: 40, EndNs: 100},
		{Track: TrackHostCPU, Name: "aggregate", StartNs: 100, EndNs: 130},
		{Track: TrackHostCPU, Name: NameBackoff, StartNs: 130, EndNs: 150},
		{Track: TrackPhases, Name: "report", StartNs: 150, EndNs: 400}, // not host-cpu: total only
	}
	devs := []DeviceTimeline{{Name: "device0", Events: []gpusim.TraceEvent{
		{Name: "k", Track: "compute", StartNs: 100, EndNs: 160},
		{Name: "H2D", Track: "copy", StartNs: 90, EndNs: 100},
		{Name: "D2H", Track: "copy", StartNs: 160, EndNs: 175},
		{Name: "host-work", Track: "host", StartNs: 0, EndNs: 10},
	}}}
	sp := TableSplit(spans, devs)
	want := Split{ShingleNs: 60, CPUNs: 30, GPUNs: 60, H2DNs: 10, D2HNs: 15, DiskIONs: 40, TotalNs: 400}
	if sp != want {
		t.Fatalf("TableSplit = %+v, want %+v", sp, want)
	}
}
