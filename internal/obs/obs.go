// Package obs is the repository's zero-dependency observability layer: a
// span tracer recording named intervals on the virtual clock (and, where it
// matters, the wall clock beside it), a metrics registry of counters, gauges
// and fixed-bucket histograms with OpenMetrics text export, and a merged
// Chrome-trace exporter that combines host spans, trace instants and any
// number of gpusim device timelines into one Perfetto-loadable file.
//
// Everything hangs off a *Recorder that is safe to leave nil: every method
// no-ops (and allocates nothing) on a nil receiver, so the pipelines thread
// a recorder through unconditionally and a run without one is bit-identical
// — in output and in virtual cost — to a run before the recorder existed.
// Recording never advances any virtual clock: spans are observations of
// times the cost model already produced, never charges.
package obs

import (
	"sync"
	"time"
)

// Track names shared by the pipelines. The host-cpu track carries the
// fine-grained virtual-clock charges (its span names feed TableSplit); the
// phases track carries the coarse host phases; batches/lane0/lane1 carry the
// device scheduling; recovery and faults carry instants.
const (
	TrackPhases   = "phases"   // coarse host phases: read, shingle-pass1, ...
	TrackHostCPU  = "host-cpu" // per-charge CPU spans: stage, aggregate, ...
	TrackBatches  = "batches"  // one span per device batch
	TrackRecovery = "recovery" // retry / split / fallback / restart instants
	TrackFaults   = "faults"   // injected-fault instants (internal/faults)
)

// Span names on TrackHostCPU with a reserved meaning in TableSplit; every
// other host-cpu name (stage, aggregate, split-merge, report, ...) counts as
// CPU work.
const (
	NameRead    = "read"    // disk I/O charge
	NameShingle = "shingle" // host-side shingling (serial backend, fallback)
	NameBackoff = "backoff" // fault-retry stalls: total time, no component
)

// Span is one named interval. StartNs/EndNs are on the virtual clock of
// whatever component recorded it; WallNs is the real elapsed time between
// Start and End when the span was recorded through Start/End, 0 when it was
// reconstructed purely from virtual times via Span.
type Span struct {
	Track   string
	Name    string
	StartNs float64
	EndNs   float64
	WallNs  int64
}

// Instant is one point event (a fault firing, a recovery action).
type Instant struct {
	Track string
	Name  string
	AtNs  float64
}

// Recorder collects spans, instants and metrics for one run (or several
// runs, when the caller wants aggregate counters). All methods are safe for
// concurrent use and all are no-ops on a nil receiver.
type Recorder struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant

	mmu      sync.Mutex
	families []*family
	byName   map[string]*family
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder actually records; callers use it to
// skip building span names (the only per-call allocation) when disabled.
func (r *Recorder) Enabled() bool { return r != nil }

// Span records a completed interval from virtual times alone.
func (r *Recorder) Span(track, name string, startNs, endNs float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Track: track, Name: name, StartNs: startNs, EndNs: endNs})
	r.mu.Unlock()
}

// Instant records a point event.
func (r *Recorder) Instant(track, name string, atNs float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants = append(r.instants, Instant{Track: track, Name: name, AtNs: atNs})
	r.mu.Unlock()
}

// Ending is an open span returned by Start; End closes and records it.
// The zero value (from a nil recorder) is inert.
type Ending struct {
	r       *Recorder
	track   string
	name    string
	startNs float64
	wall    time.Time
}

// Start opens a span at the given virtual time, capturing the wall clock
// beside it; the matching End records both durations.
func (r *Recorder) Start(track, name string, startNs float64) Ending {
	if r == nil {
		return Ending{}
	}
	return Ending{r: r, track: track, name: name, startNs: startNs, wall: nowWall()}
}

// End closes the span at the given virtual time.
func (e Ending) End(endNs float64) {
	if e.r == nil {
		return
	}
	wall := sinceWall(e.wall)
	e.r.mu.Lock()
	e.r.spans = append(e.r.spans, Span{
		Track: e.track, Name: e.name,
		StartNs: e.startNs, EndNs: endNs, WallNs: wall,
	})
	e.r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Instants returns a copy of the recorded instants in record order.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Instant, len(r.instants))
	copy(out, r.instants)
	return out
}

// nowWall and sinceWall are this package's only wall-clock readers,
// allowlisted by gpclint's wallclock rule: wall time is recorded next to —
// never instead of — the virtual clock (the §6 determinism contract).
func nowWall() time.Time { return time.Now() }

func sinceWall(t time.Time) int64 { return time.Since(t).Nanoseconds() }
