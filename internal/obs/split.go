package obs

// Split is a Table-I-style component breakdown regenerated from recorded
// spans and device timelines instead of the backends' ad-hoc accumulators:
// every virtual-clock charge the pipelines make is also recorded as a span
// on TrackHostCPU, so summing spans by name reconstructs the CPU columns,
// and the device timelines carry the GPU/transfer columns directly.
type Split struct {
	ShingleNs float64 // host-cpu "shingle" spans
	CPUNs     float64 // every other host-cpu span except read/backoff
	GPUNs     float64 // device compute-track events
	H2DNs     float64 // device copy-track H2D events
	D2HNs     float64 // device copy-track D2H events
	DiskIONs  float64 // host-cpu "read" spans
	TotalNs   float64 // latest end across all spans and device events
}

// TableSplit derives the component breakdown from the given spans and
// device timelines. Backoff spans (fault-retry stalls) extend TotalNs but
// belong to no component, matching the accumulator-based Timings.
func TableSplit(spans []Span, devs []DeviceTimeline) Split {
	var sp Split
	for _, s := range spans {
		if s.EndNs > sp.TotalNs {
			sp.TotalNs = s.EndNs
		}
		if s.Track != TrackHostCPU {
			continue
		}
		d := s.EndNs - s.StartNs
		switch s.Name {
		case NameRead:
			sp.DiskIONs += d
		case NameShingle:
			sp.ShingleNs += d
		case NameBackoff:
			// stalls: total time only
		default:
			sp.CPUNs += d
		}
	}
	for _, dev := range devs {
		for _, e := range dev.Events {
			if e.EndNs > sp.TotalNs {
				sp.TotalNs = e.EndNs
			}
			switch e.Track {
			case "compute":
				sp.GPUNs += e.EndNs - e.StartNs
			case "copy":
				if e.Name == "D2H" {
					sp.D2HNs += e.EndNs - e.StartNs
				} else {
					sp.H2DNs += e.EndNs - e.StartNs
				}
			}
		}
	}
	return sp
}
