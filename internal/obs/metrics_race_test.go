package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// Regression tests for the registry's concurrent first-use paths. The old
// lookup released the registry lock before the kind-specific instrument was
// installed, so (a) two goroutines racing on first registration could each
// allocate the instrument — one was overwritten and its observations lost —
// and (b) an export running in the window saw a family with a nil instrument
// and panicked. These tests hammer exactly those windows; run them under
// -race (the CI sweep does).

// TestConcurrentFirstRegistration races many goroutines on the first use of
// one counter, one gauge and one histogram name each; every observation must
// land on the single shared instrument.
func TestConcurrentFirstRegistration(t *testing.T) {
	const goroutines = 64
	for round := 0; round < 50; round++ {
		r := New()
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				r.Counter("c", "counter").Inc()
				r.Gauge("g", "gauge").Set(1)
				r.Histogram("h", "histogram", DefBucketsNs).Observe(2e5)
			}()
		}
		start.Done()
		done.Wait()
		if got := r.Counter("c", "").Value(); got != goroutines {
			t.Fatalf("round %d: counter observed %d increments, want %d (first-use registration raced)",
				round, got, goroutines)
		}
		if got := r.Histogram("h", "", DefBucketsNs).Count(); got != goroutines {
			t.Fatalf("round %d: histogram observed %d values, want %d (first-use registration raced)",
				round, got, goroutines)
		}
		if got := r.Gauge("g", "").Value(); got != 1 {
			t.Fatalf("round %d: gauge = %v, want 1", round, got)
		}
	}
}

// TestExportDuringConcurrentRegistration runs WriteOpenMetrics continuously
// while goroutines register fresh families, mixing in kind clashes; every
// export must stay panic-free and well-terminated.
func TestExportDuringConcurrentRegistration(t *testing.T) {
	r := New()
	const names = 200
	stop := make(chan struct{})
	exported := make(chan error, 1)
	go func() {
		var firstErr error
		for {
			select {
			case <-stop:
				exported <- firstErr
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteOpenMetrics(&buf); err != nil && firstErr == nil {
				firstErr = err
			}
			if !strings.HasSuffix(buf.String(), "# EOF\n") && firstErr == nil {
				firstErr = fmt.Errorf("export not EOF-terminated: %q", buf.String())
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < names; i++ {
				r.Counter(fmt.Sprintf("c%d", i), "counter").Inc()
				r.Gauge(fmt.Sprintf("g%d", i), "gauge").Set(float64(i))
				r.Histogram(fmt.Sprintf("h%d", i), "histogram", DefBucketsNs).Observe(1e6)
				// Kind clash: must return a safe nil, never corrupt "c<i>".
				r.Gauge(fmt.Sprintf("c%d", i), "clash").Set(1)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-exported; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < names; i++ {
		if got := r.Counter(fmt.Sprintf("c%d", i), "").Value(); got != 8 {
			t.Fatalf("counter c%d = %d, want 8", i, got)
		}
	}
}

// TestWriteSkipsNilInstrumentFamily pins the defensive export path: a family
// registered without its instrument (unreachable through the public API
// since the locked-allocation fix, simulated directly here) exports nothing
// instead of panicking WriteOpenMetrics.
func TestWriteSkipsNilInstrumentFamily(t *testing.T) {
	r := New()
	r.Counter("ok", "fine").Inc()
	r.mmu.Lock()
	for _, kind := range []string{"counter", "gauge", "histogram"} {
		f := &family{name: "hollow_" + kind, kind: kind}
		r.byName[f.name] = f
		r.families = append(r.families, f)
	}
	r.mmu.Unlock()
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "hollow_") {
		t.Fatalf("nil-instrument families leaked into the export:\n%s", out)
	}
	if !strings.Contains(out, "ok_total 1\n") {
		t.Fatalf("healthy family missing from export:\n%s", out)
	}
}

// TestHistogramDropsNonFinite: NaN and ±Inf observations must not reach sum
// (one NaN would poison the exported _sum forever); they are tallied in
// Dropped and the export stays finite.
func TestHistogramDropsNonFinite(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", []float64{10, 100})
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(50)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2 (non-finite values must not count)", got)
	}
	if got := h.Sum(); got != 55 {
		t.Fatalf("Sum = %v, want 55", got)
	}
	if got := h.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	// le="+Inf" is the legitimate catch-all bucket label; anything else
	// non-finite (a NaN sum, an Inf sample) is the poisoning regression.
	cleaned := strings.ReplaceAll(buf.String(), `le="+Inf"`, "")
	if strings.Contains(cleaned, "NaN") || strings.Contains(cleaned, "Inf") {
		t.Fatalf("non-finite value leaked into the export:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "lat_sum 55\n") {
		t.Fatalf("export sum wrong:\n%s", buf.String())
	}
}

// TestHistogramQuantile pins the conservative bucket-bound quantile read the
// SLO gates assert against.
func TestHistogramQuantile(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("nil histogram Quantile = %v, want 0", got)
	}
	r := New()
	h = r.Histogram("q", "", []float64{10, 100, 1000})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	for i := 0; i < 98; i++ {
		h.Observe(5) // le=10 bucket
	}
	h.Observe(50)   // le=100
	h.Observe(5000) // +Inf
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 = %v, want 100", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %v, want +Inf", got)
	}
}
