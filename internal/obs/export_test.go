package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpclust/internal/gpusim"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenRecorder builds a fixed recorder + device timeline; every export
// golden derives from it, so the files pin the exact wire formats.
func goldenRecorder() (*Recorder, []DeviceTimeline) {
	r := New()
	r.Span(TrackPhases, "read", 0, 40)
	r.Span(TrackHostCPU, NameRead, 0, 40)
	r.Span(TrackPhases, "shingle-pass1", 40, 200)
	r.Span(TrackBatches, "pass1.b0", 40, 120)
	r.Span(TrackBatches, "pass1.b1", 120, 200)
	r.Span(TrackHostCPU, "aggregate", 200, 230)
	r.Instant(TrackFaults, "fault:h2d", 60)
	r.Instant(TrackRecovery, "retry:transfer", 61)

	r.Counter("gpclust_tuples", "Shingle tuples emitted.").Add(1234)
	r.Counter("gpclust_batches", "Device batches run.").Add(2)
	r.Gauge("gpclust_clusters", "Clusters in the final partition.").Set(17)
	h := r.Histogram("gpclust_batch_virtual_ns", "Per-batch virtual duration.", []float64{50, 100})
	h.Observe(80)
	h.Observe(80)
	h.Observe(400)

	devs := []DeviceTimeline{{Name: "device0", Events: []gpusim.TraceEvent{
		{Name: "H2D", Track: "copy", StartNs: 45, EndNs: 55},
		{Name: "minhash", Track: "compute", StartNs: 55, EndNs: 110},
		{Name: "D2H", Track: "copy", StartNs: 110, EndNs: 118},
		{Name: "host-work", Track: "host", StartNs: 0, EndNs: 40},
	}}}
	return r, devs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestWriteOpenMetricsGolden pins the OpenMetrics text format byte-for-byte.
func TestWriteOpenMetricsGolden(t *testing.T) {
	r, _ := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden", buf.Bytes())
}

// TestWriteMergedTraceGolden pins the merged Chrome-trace JSON byte-for-byte,
// and double-checks it parses with a non-null traceEvents array.
func TestWriteMergedTraceGolden(t *testing.T) {
	r, devs := goldenRecorder()
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, r, devs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden", buf.Bytes())
	assertTraceParses(t, buf.Bytes(), 8+4) // 8 host spans/instants + 4 device events
}

// TestWriteMergedTraceEmpty guards the traceEvents-never-null contract on the
// fully empty merge (nil recorder, no devices).
func TestWriteMergedTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"traceEvents":null`)) {
		t.Fatalf("empty merge serialized null traceEvents: %s", buf.Bytes())
	}
	assertTraceParses(t, buf.Bytes(), 0)
}

// TestWriteOpenMetricsNil: a nil recorder still emits a valid document.
func TestWriteOpenMetricsNil(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("nil recorder export = %q", buf.String())
	}
}

// assertTraceParses decodes trace JSON and checks traceEvents is a present,
// non-null array holding at least n non-metadata events.
func assertTraceParses(t *testing.T, data []byte, n int) {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents is null or absent")
	}
	events := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "M" {
			events++
		}
	}
	if events < n {
		t.Fatalf("trace has %d non-metadata events, want >= %d", events, n)
	}
}

// TestMergedTraceDistinctTracks asserts the acceptance criterion that host
// phases, batch lanes and fault instants land on distinct thread rows.
func TestMergedTraceDistinctTracks(t *testing.T) {
	r, devs := goldenRecorder()
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, r, devs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tids := map[string]map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" || ev.Pid != hostPid {
			continue
		}
		if tids[ev.Cat] == nil {
			tids[ev.Cat] = map[int]bool{}
		}
		tids[ev.Cat][ev.Tid] = true
	}
	for _, track := range []string{TrackPhases, TrackBatches, TrackFaults, TrackRecovery, TrackHostCPU} {
		if len(tids[track]) != 1 {
			t.Fatalf("track %q mapped to %d host tids, want exactly 1 (%v)", track, len(tids[track]), tids)
		}
	}
	seen := map[int]string{}
	for track, m := range tids {
		for tid := range m {
			if other, dup := seen[tid]; dup {
				t.Fatalf("tracks %q and %q share host tid %d", track, other, tid)
			}
			seen[tid] = track
		}
	}
}
