package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gpclust/internal/gpusim"
)

// The merged Chrome-trace exporter: host spans and instants from a Recorder
// plus any number of gpusim device timelines land in one Perfetto-loadable
// JSON file. Track/pid assignment is stable: the host is always pid 1 with
// one thread row per span track (sorted by track name), and device i is
// pid 2+i with the fixed gpusim engine rows (host=0, compute=1, copy=2).
// Events are sorted by (timestamp, pid, tid, name), so the export is a
// deterministic function of the recorded data regardless of the order
// concurrent lanes appended it.

// DeviceTimeline is one device's recorded trace, named for the process row
// it becomes in the merged file.
type DeviceTimeline struct {
	Name   string
	Events []gpusim.TraceEvent
}

// traceEvent is the Chrome trace format's event record: "X" complete events
// for spans, "i" instants, "M" metadata naming processes and threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// hostPid is the merged file's host process id; device i gets hostPid+1+i.
const hostPid = 1

// deviceTrackTid maps a gpusim track to its fixed thread row.
func deviceTrackTid(track string) (int, error) {
	switch track {
	case "host":
		return 0, nil
	case "compute":
		return 1, nil
	case "copy":
		return 2, nil
	}
	return 0, fmt.Errorf("obs: unknown device trace track %q", track)
}

// WriteMergedTrace writes the combined timeline of the recorder's spans and
// instants plus the device timelines as Chrome trace JSON (load it in
// ui.perfetto.dev or chrome://tracing). A nil recorder contributes nothing;
// an entirely empty merge still produces a valid file with an empty — never
// null — traceEvents array.
func WriteMergedTrace(w io.Writer, r *Recorder, devs []DeviceTimeline) error {
	spans := r.Spans()
	insts := r.Instants()

	// Stable host thread rows: distinct track names, sorted.
	seen := make(map[string]bool)
	var tracks []string
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			tracks = append(tracks, s.Track)
		}
	}
	for _, in := range insts {
		if !seen[in.Track] {
			seen[in.Track] = true
			tracks = append(tracks, in.Track)
		}
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, t := range tracks {
		tid[t] = i + 1
	}

	meta := make([]traceEvent, 0, 2+len(tracks)+4*len(devs))
	nameMeta := func(ph string, pid, t int, name string) {
		meta = append(meta, traceEvent{
			Name: ph, Ph: "M", Pid: pid, Tid: t,
			Args: map[string]any{"name": name},
		})
	}
	if len(tracks) > 0 {
		nameMeta("process_name", hostPid, 0, "host")
		for _, t := range tracks {
			nameMeta("thread_name", hostPid, tid[t], t)
		}
	}
	for i, d := range devs {
		pid := hostPid + 1 + i
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("device%d", i)
		}
		nameMeta("process_name", pid, 0, name)
		for _, tr := range []string{"host", "compute", "copy"} {
			t, err := deviceTrackTid(tr)
			if err != nil {
				return err
			}
			nameMeta("thread_name", pid, t, tr)
		}
	}

	events := make([]traceEvent, 0, len(spans)+len(insts))
	for _, s := range spans {
		ev := traceEvent{
			Name: s.Name, Cat: s.Track, Ph: "X",
			Ts: s.StartNs / 1000, Dur: (s.EndNs - s.StartNs) / 1000,
			Pid: hostPid, Tid: tid[s.Track],
		}
		if s.WallNs > 0 {
			ev.Args = map[string]any{"wall_ns": s.WallNs}
		}
		events = append(events, ev)
	}
	for _, in := range insts {
		events = append(events, traceEvent{
			Name: in.Name, Cat: in.Track, Ph: "i", S: "t",
			Ts: in.AtNs / 1000, Pid: hostPid, Tid: tid[in.Track],
		})
	}
	for i, d := range devs {
		pid := hostPid + 1 + i
		for _, e := range d.Events {
			t, err := deviceTrackTid(e.Track)
			if err != nil {
				return err
			}
			events = append(events, traceEvent{
				Name: e.Name, Cat: e.Track, Ph: "X",
				Ts: e.StartNs / 1000, Dur: (e.EndNs - e.StartNs) / 1000,
				Pid: pid, Tid: t,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	all := make([]traceEvent, 0, len(meta)+len(events))
	all = append(all, meta...)
	all = append(all, events...)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(map[string]any{
		"traceEvents":     all,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"note": "virtual-clock timelines merged by internal/obs",
		},
	}); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
