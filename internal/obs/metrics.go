package obs

import (
	"bytes"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The metrics registry: named counter/gauge/histogram families registered on
// a Recorder and exported in the OpenMetrics text format. Families are
// created on first use and returned on every later request with the same
// name; a name requested with a different kind returns nil, which — like
// every instrument here — is safe to use and does nothing.

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; nil counters ignore it.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; nil gauges ignore it.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// bucket bounds, ascending; an implicit +Inf bucket catches the rest.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is the +Inf bucket
	sum     float64
	total   int64
	dropped atomic.Int64 // non-finite observations discarded by Observe
}

// Observe records one value. Non-finite values (NaN, ±Inf) are dropped —
// one NaN folded into sum would poison the exported _sum sample forever and
// break any scraper doing rate() over it — and tallied in Dropped instead.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Add(1)
		return
	}
	h.mu.Lock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of every observed value.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Dropped returns how many non-finite observations were discarded.
func (h *Histogram) Dropped() int64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Quantile returns an upper bound on the q-quantile of the observed values:
// the bucket bound the cumulative count crosses q·total at (+Inf for values
// beyond the last bound, 0 on an empty histogram). Fixed buckets cannot
// interpolate, so this is the usual conservative histogram-quantile read —
// the SLO gates assert against it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		if float64(cum) >= rank {
			return b
		}
	}
	return math.Inf(1)
}

// DefBucketsNs is the default bucket layout for virtual-clock durations:
// 0.1ms to 10s in roughly 1-3-10 steps.
var DefBucketsNs = []float64{1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10}

// family is one registered metric of a single kind.
type family struct {
	name string
	help string
	kind string // "counter", "gauge" or "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// lookup returns the named family, creating it on first use. A new family
// gets its instrument from init while r.mmu is still held: allocating after
// the lock is released (the old shape) let two goroutines racing on first
// use each install an instrument, with one overwritten and its observations
// silently lost — and let an export between registration and installation
// see a half-built family. lookup returns nil on a nil recorder or a kind
// clash.
func (r *Recorder) lookup(name, help, kind string, init func(*family)) *family {
	if r == nil {
		return nil
	}
	r.mmu.Lock()
	defer r.mmu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			return nil
		}
		return f
	}
	if r.byName == nil {
		r.byName = make(map[string]*family)
	}
	f := &family{name: name, help: help, kind: kind}
	init(f)
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter returns (registering on first use) the named counter.
func (r *Recorder) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", func(f *family) { f.c = &Counter{} })
	if f == nil {
		return nil
	}
	return f.c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Recorder) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", func(f *family) { f.g = &Gauge{} })
	if f == nil {
		return nil
	}
	return f.g
}

// Histogram returns (registering on first use) the named histogram; bounds
// apply only on first registration and must be ascending.
func (r *Recorder) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, "histogram", func(f *family) {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		f.h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
	})
	if f == nil {
		return nil
	}
	return f.h
}

// WriteOpenMetrics exports every registered family in the OpenMetrics text
// exposition format, sorted by family name, terminated by "# EOF". Counter
// families named X expose their sample as X_total. A nil recorder exports
// an empty (but valid) document.
func (r *Recorder) WriteOpenMetrics(w io.Writer) error {
	var buf bytes.Buffer
	if r != nil {
		r.mmu.Lock()
		fams := make([]*family, len(r.families))
		copy(fams, r.families)
		r.mmu.Unlock()
		sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
		for _, f := range fams {
			f.write(&buf)
		}
	}
	buf.WriteString("# EOF\n")
	_, err := w.Write(buf.Bytes())
	return err
}

func (f *family) write(buf *bytes.Buffer) {
	// A family whose instrument is missing must export nothing rather than
	// panic: lookup installs instruments under the registry lock now, but
	// write stays defensive — the export loop runs outside that lock, and a
	// nil dereference here would take the whole /metrics endpoint down.
	switch f.kind {
	case "counter":
		if f.c == nil {
			return
		}
	case "gauge":
		if f.g == nil {
			return
		}
	case "histogram":
		if f.h == nil {
			return
		}
	}
	if f.help != "" {
		buf.WriteString("# HELP " + f.name + " " + f.help + "\n")
	}
	buf.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
	switch f.kind {
	case "counter":
		buf.WriteString(f.name + "_total " + strconv.FormatInt(f.c.Value(), 10) + "\n")
	case "gauge":
		buf.WriteString(f.name + " " + formatFloat(f.g.Value()) + "\n")
	case "histogram":
		h := f.h
		h.mu.Lock()
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i]
			buf.WriteString(f.name + `_bucket{le="` + formatFloat(b) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		}
		cum += h.counts[len(h.bounds)]
		buf.WriteString(f.name + `_bucket{le="+Inf"} ` + strconv.FormatInt(cum, 10) + "\n")
		buf.WriteString(f.name + "_sum " + formatFloat(h.sum) + "\n")
		buf.WriteString(f.name + "_count " + strconv.FormatInt(h.total, 10) + "\n")
		h.mu.Unlock()
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
