package obs

import (
	"bytes"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The metrics registry: named counter/gauge/histogram families registered on
// a Recorder and exported in the OpenMetrics text format. Families are
// created on first use and returned on every later request with the same
// name; a name requested with a different kind returns nil, which — like
// every instrument here — is safe to use and does nothing.

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; nil counters ignore it.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; nil gauges ignore it.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// bucket bounds, ascending; an implicit +Inf bucket catches the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	total  int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// DefBucketsNs is the default bucket layout for virtual-clock durations:
// 0.1ms to 10s in roughly 1-3-10 steps.
var DefBucketsNs = []float64{1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10}

// family is one registered metric of a single kind.
type family struct {
	name string
	help string
	kind string // "counter", "gauge" or "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// lookup returns the named family, creating it on first use. It returns nil
// on a nil recorder or a kind clash.
func (r *Recorder) lookup(name, help, kind string) *family {
	if r == nil {
		return nil
	}
	r.mmu.Lock()
	defer r.mmu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			return nil
		}
		return f
	}
	if r.byName == nil {
		r.byName = make(map[string]*family)
	}
	f := &family{name: name, help: help, kind: kind}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter returns (registering on first use) the named counter.
func (r *Recorder) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter")
	if f == nil {
		return nil
	}
	if f.c == nil {
		f.c = &Counter{}
	}
	return f.c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Recorder) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge")
	if f == nil {
		return nil
	}
	if f.g == nil {
		f.g = &Gauge{}
	}
	return f.g
}

// Histogram returns (registering on first use) the named histogram; bounds
// apply only on first registration and must be ascending.
func (r *Recorder) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, "histogram")
	if f == nil {
		return nil
	}
	if f.h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		f.h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
	}
	return f.h
}

// WriteOpenMetrics exports every registered family in the OpenMetrics text
// exposition format, sorted by family name, terminated by "# EOF". Counter
// families named X expose their sample as X_total. A nil recorder exports
// an empty (but valid) document.
func (r *Recorder) WriteOpenMetrics(w io.Writer) error {
	var buf bytes.Buffer
	if r != nil {
		r.mmu.Lock()
		fams := make([]*family, len(r.families))
		copy(fams, r.families)
		r.mmu.Unlock()
		sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
		for _, f := range fams {
			f.write(&buf)
		}
	}
	buf.WriteString("# EOF\n")
	_, err := w.Write(buf.Bytes())
	return err
}

func (f *family) write(buf *bytes.Buffer) {
	if f.help != "" {
		buf.WriteString("# HELP " + f.name + " " + f.help + "\n")
	}
	buf.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
	switch f.kind {
	case "counter":
		buf.WriteString(f.name + "_total " + strconv.FormatInt(f.c.Value(), 10) + "\n")
	case "gauge":
		buf.WriteString(f.name + " " + formatFloat(f.g.Value()) + "\n")
	case "histogram":
		h := f.h
		h.mu.Lock()
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i]
			buf.WriteString(f.name + `_bucket{le="` + formatFloat(b) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		}
		cum += h.counts[len(h.bounds)]
		buf.WriteString(f.name + `_bucket{le="+Inf"} ` + strconv.FormatInt(cum, 10) + "\n")
		buf.WriteString(f.name + "_sum " + formatFloat(h.sum) + "\n")
		buf.WriteString(f.name + "_count " + strconv.FormatInt(h.total, 10) + "\n")
		h.mu.Unlock()
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
