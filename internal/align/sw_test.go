package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlosum62Symmetric(t *testing.T) {
	for i := 0; i < AlphabetSize; i++ {
		for j := 0; j < AlphabetSize; j++ {
			if Blosum62[i][j] != Blosum62[j][i] {
				t.Fatalf("BLOSUM62[%c][%c] = %d != BLOSUM62[%c][%c] = %d",
					Alphabet[i], Alphabet[j], Blosum62[i][j],
					Alphabet[j], Alphabet[i], Blosum62[j][i])
			}
		}
	}
}

func TestBlosum62DiagonalPositive(t *testing.T) {
	for i := 0; i < AlphabetSize-1; i++ { // X excluded
		if Blosum62[i][i] <= 0 {
			t.Errorf("self score of %c = %d, want > 0", Alphabet[i], Blosum62[i][i])
		}
	}
}

func TestBlosum62KnownValues(t *testing.T) {
	cases := []struct {
		a, b byte
		want int
	}{
		{'W', 'W', 11}, {'A', 'A', 4}, {'W', 'P', -4},
		{'I', 'V', 3}, {'R', 'K', 2}, {'C', 'C', 9},
		{'a', 'a', 4},                  // lowercase accepted
		{'Z', 'A', -1}, {'*', '*', -1}, // unknowns score as X
	}
	for _, c := range cases {
		if got := Score(c.a, c.b); got != c.want {
			t.Errorf("Score(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValidateSequence(t *testing.T) {
	if err := ValidateSequence([]byte("ACDEFGHIKLMNPQRSTVWYX")); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	if err := ValidateSequence([]byte("ACDB")); err == nil {
		t.Fatal("B accepted (not in our alphabet)")
	}
	if err := ValidateSequence([]byte("AC*D")); err == nil {
		t.Fatal("* accepted")
	}
}

func TestScoreOnlyIdentical(t *testing.T) {
	s := []byte("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ")
	want := 0
	for _, c := range s {
		want += Score(c, c)
	}
	if got := ScoreOnly(s, s, DefaultParams()); got != want {
		t.Fatalf("self alignment score = %d, want %d", got, want)
	}
}

func TestScoreOnlyDisjoint(t *testing.T) {
	// Alignments never go negative: unrelated sequences floor at the best
	// single-residue match.
	a := []byte("PPPPPPPP")
	b := []byte("GGGGGGGG")
	if got := ScoreOnly(a, b, DefaultParams()); got != 0 {
		t.Fatalf("score of unalignable pair = %d, want 0", got)
	}
}

func TestScoreOnlyLocalness(t *testing.T) {
	// A conserved core inside unrelated flanks must score the core.
	core := []byte("WWWCCCWWW")
	coreScore := ScoreOnly(core, core, DefaultParams())
	a := append(append([]byte("PPPPPP"), core...), []byte("GGGGGG")...)
	b := append(append([]byte("KKKKKK"), core...), []byte("TTTTTT")...)
	got := ScoreOnly(a, b, DefaultParams())
	if got < coreScore {
		t.Fatalf("embedded core scores %d, want ≥ %d", got, coreScore)
	}
}

func TestScoreOnlyEmpty(t *testing.T) {
	if ScoreOnly(nil, []byte("AAA"), DefaultParams()) != 0 {
		t.Fatal("empty query should score 0")
	}
	if ScoreOnly([]byte("AAA"), nil, DefaultParams()) != 0 {
		t.Fatal("empty subject should score 0")
	}
}

func TestScoreSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seedA, seedB int64) bool {
		a := randomSeq(rng, 5+int(seedA%40+40)%40)
		b := randomSeq(rng, 5+int(seedB%40+40)%40)
		p := DefaultParams()
		return ScoreOnly(a, b, p) == ScoreOnly(b, a, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAlignMatchesScoreOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := DefaultParams()
	for trial := 0; trial < 60; trial++ {
		a := randomSeq(rng, 10+rng.Intn(60))
		b := mutate(rng, a, 0.2)
		full := Align(a, b, p)
		fast := ScoreOnly(a, b, p)
		if full.Score != fast {
			t.Fatalf("trial %d: Align score %d != ScoreOnly %d", trial, full.Score, fast)
		}
		if full.AStart > full.AEnd || full.BStart > full.BEnd {
			t.Fatalf("trial %d: inverted alignment bounds %+v", trial, full)
		}
		if full.AEnd > len(a) || full.BEnd > len(b) {
			t.Fatalf("trial %d: bounds outside sequences %+v", trial, full)
		}
	}
}

func TestAlignIdentity(t *testing.T) {
	s := []byte("MKTAYIAKQRQISFVKSHFSRQ")
	r := Align(s, s, DefaultParams())
	if r.Identity() != 1.0 {
		t.Fatalf("self identity = %v, want 1.0", r.Identity())
	}
	if r.Length != len(s) || r.Matches != len(s) {
		t.Fatalf("self alignment length/matches = %d/%d, want %d", r.Length, r.Matches, len(s))
	}
	if r.AStart != 0 || r.AEnd != len(s) {
		t.Fatalf("self alignment span [%d,%d), want [0,%d)", r.AStart, r.AEnd, len(s))
	}
}

func TestAlignGapHandling(t *testing.T) {
	a := []byte("WWWWCCCCWWWW")
	b := []byte("WWWWCCCCKKKWWWW") // 3-residue insertion
	r := Align(a, b, DefaultParams())
	wantNoGap := ScoreOnly([]byte("WWWWCCCC"), []byte("WWWWCCCC"), DefaultParams())
	if r.Score < wantNoGap {
		t.Fatalf("gapped alignment score %d below contiguous-core score %d", r.Score, wantNoGap)
	}
	// Gap-spanning alignment: the full 12+3 path scores
	// 12 matches - open - 3 extends; verify it is chosen over the core when
	// beneficial.
	full := 0
	for _, c := range a {
		full += Score(c, c)
	}
	p := DefaultParams()
	wantGapped := full - p.GapOpen - 3*p.GapExtend
	if wantGapped > wantNoGap && r.Score != wantGapped {
		t.Fatalf("score = %d, want gapped path %d", r.Score, wantGapped)
	}
}

func TestAlignEmpty(t *testing.T) {
	r := Align(nil, []byte("AAA"), DefaultParams())
	if r.Score != 0 || r.Length != 0 {
		t.Fatalf("empty alignment = %+v", r)
	}
}

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = Alphabet[rng.Intn(20)]
	}
	return s
}

func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	out := append([]byte{}, s...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = Alphabet[rng.Intn(20)]
		}
	}
	return out
}

func BenchmarkScoreOnly100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomSeq(rng, 100)
	y := mutate(rng, x, 0.3)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreOnly(x, y, p)
	}
}
