package align

// Params configures Smith–Waterman alignment. Affine gaps: opening a gap
// costs GapOpen, each further position GapExtend (both positive penalties).
type Params struct {
	GapOpen   int
	GapExtend int
}

// DefaultParams returns the conventional BLOSUM62 pairing (11, 1).
func DefaultParams() Params { return Params{GapOpen: 11, GapExtend: 1} }

// Result describes a local alignment.
type Result struct {
	Score int
	// AStart/AEnd and BStart/BEnd delimit the aligned regions (half-open).
	AStart, AEnd int
	BStart, BEnd int
	// Matches and Length give the identity statistics of the alignment path.
	Matches int
	Length  int
}

// Identity returns the fraction of identical residues along the alignment.
func (r Result) Identity() float64 {
	if r.Length == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Length)
}

// ScoreOnly computes the optimal local alignment score of a and b with
// linear memory (two rows of the Gotoh recurrence). It is the hot path of
// homology-graph construction, where only the score decides edge inclusion.
func ScoreOnly(a, b []byte, p Params) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	const negInf = -1 << 30
	n := len(b)
	h := make([]int, n+1) // H[i-1][j] rolling
	e := make([]int, n+1) // E[i][j]: gap in a
	for j := range e {
		e[j] = negInf
	}
	best := 0
	for i := 1; i <= len(a); i++ {
		diag := 0 // H[i-1][j-1]
		f := negInf
		for j := 1; j <= n; j++ {
			e[j] = max(e[j]-p.GapExtend, h[j]-p.GapOpen-p.GapExtend)
			f = max(f-p.GapExtend, h[j-1]-p.GapOpen-p.GapExtend)
			score := diag + Score(a[i-1], b[j-1])
			if score < 0 {
				score = 0
			}
			score = max(score, e[j], f)
			if score < 0 {
				score = 0
			}
			diag = h[j]
			h[j] = score
			if score > best {
				best = score
			}
		}
	}
	return best
}

// Align computes the optimal local alignment with full traceback. Memory is
// O(len(a)·len(b)); use ScoreOnly for bulk screening.
func Align(a, b []byte, p Params) Result {
	if len(a) == 0 || len(b) == 0 {
		return Result{}
	}
	const negInf = -1 << 30
	m, n := len(a), len(b)
	idx := func(i, j int) int { return i*(n+1) + j }
	h := make([]int32, (m+1)*(n+1))
	eArr := make([]int32, (m+1)*(n+1))
	fArr := make([]int32, (m+1)*(n+1))
	for j := 0; j <= n; j++ {
		eArr[idx(0, j)] = negInf
	}
	for i := 0; i <= m; i++ {
		fArr[idx(i, 0)] = negInf
	}
	best, bi, bj := int32(0), 0, 0
	for i := 1; i <= m; i++ {
		eArr[idx(i, 0)] = negInf
		for j := 1; j <= n; j++ {
			e := max(eArr[idx(i, j-1)]-int32(p.GapExtend), h[idx(i, j-1)]-int32(p.GapOpen+p.GapExtend))
			f := max(fArr[idx(i-1, j)]-int32(p.GapExtend), h[idx(i-1, j)]-int32(p.GapOpen+p.GapExtend))
			s := h[idx(i-1, j-1)] + int32(Score(a[i-1], b[j-1]))
			v := max(0, s, e, f)
			h[idx(i, j)] = v
			eArr[idx(i, j)] = e
			fArr[idx(i, j)] = f
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	res := Result{Score: int(best), AEnd: bi, BEnd: bj}
	// Traceback from the maximum to the first zero cell.
	i, j := bi, bj
	for i > 0 && j > 0 && h[idx(i, j)] > 0 {
		v := h[idx(i, j)]
		switch {
		case v == h[idx(i-1, j-1)]+int32(Score(a[i-1], b[j-1])):
			if a[i-1] == b[j-1] {
				res.Matches++
			}
			res.Length++
			i--
			j--
		case v == eArr[idx(i, j)]:
			// gap in a: walk left while extending
			for j > 0 && h[idx(i, j)] == eArr[idx(i, j)] &&
				eArr[idx(i, j)] == eArr[idx(i, j-1)]-int32(p.GapExtend) {
				res.Length++
				j--
			}
			res.Length++
			j--
		default:
			for i > 0 && h[idx(i, j)] == fArr[idx(i, j)] &&
				fArr[idx(i, j)] == fArr[idx(i-1, j)]-int32(p.GapExtend) {
				res.Length++
				i--
			}
			res.Length++
			i--
		}
	}
	res.AStart, res.BStart = i, j
	return res
}
