// Package align implements the Smith–Waterman local alignment algorithm
// (Smith & Waterman 1981) with affine gap penalties over the BLOSUM62
// substitution matrix — the "optimality-guaranteeing Smith-Waterman
// alignment algorithm" the pGraph homology-detection phase applies to
// candidate sequence pairs (Section I-A).
package align

import "fmt"

// Alphabet is the 20 standard amino acids plus X (unknown), in the order
// used by the substitution matrix.
const Alphabet = "ARNDCQEGHILKMFPSTWYVX"

// AlphabetSize is the number of residue codes.
const AlphabetSize = len(Alphabet)

// residueIndex maps ASCII residue letters to matrix indices, -1 if invalid.
var residueIndex [256]int8

func init() {
	for i := range residueIndex {
		residueIndex[i] = -1
	}
	for i, r := range Alphabet {
		residueIndex[r] = int8(i)
		residueIndex[r+'a'-'A'] = int8(i)
	}
}

// ResidueIndex returns the matrix index of residue r, or -1 if r is not a
// recognized amino-acid code.
func ResidueIndex(r byte) int { return int(residueIndex[r]) }

// Blosum62 is the standard BLOSUM62 substitution matrix over Alphabet
// (half-bit scores as published by Henikoff & Henikoff 1992). The final row
// and column score X (unknown residue) against everything.
var Blosum62 = [AlphabetSize][AlphabetSize]int{
	//        A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   X
	/* A */ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -1},
	/* R */ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1},
	/* N */ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, -1},
	/* D */ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, -1},
	/* C */ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -1},
	/* Q */ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, -1},
	/* E */ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, -1},
	/* G */ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1},
	/* H */ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, -1},
	/* I */ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -1},
	/* L */ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -1},
	/* K */ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, -1},
	/* M */ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -1},
	/* F */ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -1},
	/* P */ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -1},
	/* S */ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, -1},
	/* T */ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1},
	/* W */ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -1},
	/* Y */ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -1},
	/* V */ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -1},
	/* X */ {-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
}

// Score returns the BLOSUM62 score of aligning residues a and b (ASCII).
// Unknown letters score as X.
func Score(a, b byte) int {
	ia, ib := residueIndex[a], residueIndex[b]
	if ia < 0 {
		ia = int8(AlphabetSize - 1)
	}
	if ib < 0 {
		ib = int8(AlphabetSize - 1)
	}
	return Blosum62[ia][ib]
}

// ValidateSequence reports the first non-residue character in s, if any.
func ValidateSequence(s []byte) error {
	for i, c := range s {
		if residueIndex[c] < 0 {
			return fmt.Errorf("align: invalid residue %q at position %d", c, i)
		}
	}
	return nil
}
