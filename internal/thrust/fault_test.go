package thrust

import (
	"errors"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
)

// TestThrustPrimitivesPropagateFaults: thrust primitives are thin wrappers
// over gpusim launches, so an injected kernel fault must surface as an
// error wrapping gpusim.ErrLaunchFault — and a retry on the same device
// must succeed with the correct result (launch faults leave no residue).
func TestThrustPrimitivesPropagateFaults(t *testing.T) {
	sched, err := faults.Parse("kernel op=1")
	if err != nil {
		t.Fatal(err)
	}
	d := newDev(t)
	d.SetFaultInjector(faults.NewInjector(sched))

	const n = 4096
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(n - i)
	}
	in := upload(t, d, src)
	out := d.MustMalloc(n)
	defer in.Free()
	defer out.Free()

	err = Transform(d, in, out, n, func(v uint32) uint32 { return v + 1 }, 1)
	if !errors.Is(err, gpusim.ErrLaunchFault) {
		t.Fatalf("Transform error %v does not wrap ErrLaunchFault", err)
	}
	if !errors.Is(err, gpusim.ErrDeviceFault) {
		t.Fatalf("Transform error %v does not wrap the ErrDeviceFault root", err)
	}
	if err := Transform(d, in, out, n, func(v uint32) uint32 { return v + 1 }, 1); err != nil {
		t.Fatalf("retry after a one-shot launch fault: %v", err)
	}
	got := download(t, d, out, n)
	for i, v := range got {
		if v != src[i]+1 {
			t.Fatalf("element %d = %d after retry, want %d", i, v, src[i]+1)
		}
	}
}

// TestThrustSortUnderSlowSM: a slow-SM latency spike must stretch the
// device clock without perturbing sort results.
func TestThrustSortUnderSlowSM(t *testing.T) {
	run := func(inject bool) (float64, []uint32) {
		d := newDev(t)
		if inject {
			sched, err := faults.Parse("slowsm op=1 count=64 x=7")
			if err != nil {
				t.Fatal(err)
			}
			d.SetFaultInjector(faults.NewInjector(sched))
		}
		src := make([]uint32, 2048)
		s := uint32(12345)
		for i := range src {
			s = s*1664525 + 1013904223
			src[i] = s
		}
		buf := upload(t, d, src)
		defer buf.Free()
		if err := Sort(d, buf, len(src)); err != nil {
			t.Fatal(err)
		}
		d.Synchronize()
		return d.Metrics().KernelTimeNs, download(t, d, buf, len(src))
	}
	cleanNs, cleanOut := run(false)
	slowNs, slowOut := run(true)
	if slowNs <= cleanNs {
		t.Fatalf("slow-SM run kernel time %.0fns not above clean %.0fns", slowNs, cleanNs)
	}
	for i := range cleanOut {
		if cleanOut[i] != slowOut[i] {
			t.Fatalf("sorted output diverged at %d under a latency spike", i)
		}
	}
}
