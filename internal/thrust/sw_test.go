package thrust

import (
	"math/rand"
	"testing"

	"gpclust/internal/align"
	"gpclust/internal/gpusim"
)

// swHarness packs sequences and pairs into the kernel's single-buffer
// layout, mirroring what pgraph's batch scheduler does.
type swHarness struct {
	cfg   SWConfig
	image []uint32 // [table | pair records | packed residues]
	seqs  [][]byte // residue codes
}

func packSW(seqs [][]byte, pairs [][2]int, prm align.Params) *swHarness {
	alpha := align.AlphabetSize
	table := make([]uint32, alpha*alpha)
	for ia, row := range align.Blosum62 {
		for ib, s := range row {
			table[ia*alpha+ib] = uint32(int32(s))
		}
	}
	offs := make([]uint32, len(seqs))
	pos := uint32(0)
	for i, s := range seqs {
		offs[i] = pos
		pos += uint32((len(s) + 3) &^ 3) // word-aligned starts
	}
	seqWords := int(pos) / 4
	packed := make([]uint32, seqWords)
	for i, s := range seqs {
		for k, c := range s {
			r := offs[i] + uint32(k)
			packed[r>>2] |= uint32(c) << (8 * (r & 3))
		}
	}
	image := table
	for _, p := range pairs {
		image = append(image, offs[p[0]], uint32(len(seqs[p[0]])), offs[p[1]], uint32(len(seqs[p[1]])))
	}
	image = append(image, packed...)
	return &swHarness{
		cfg: SWConfig{
			NumPairs:  len(pairs),
			Alphabet:  alpha,
			GapOpen:   int32(prm.GapOpen),
			GapExtend: int32(prm.GapExtend),
			TableBase: 0,
			PairBase:  alpha * alpha,
			SeqBase:   alpha*alpha + 4*len(pairs),
			SeqWords:  seqWords,
			ScoreBase: alpha*alpha + 4*len(pairs) + seqWords,
		},
		image: image,
		seqs:  seqs,
	}
}

// runSW uploads the harness image, launches the kernel and returns the
// scores.
func runSW(t testing.TB, d *gpusim.Device, s *gpusim.Stream, h *swHarness) []int32 {
	t.Helper()
	buf, err := d.Malloc(len(h.image) + h.cfg.NumPairs)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if err := d.CopyH2D(buf, 0, h.image); err != nil {
		t.Fatal(err)
	}
	if err := SWScoreBatch(d, s, buf, h.cfg); err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, h.cfg.NumPairs)
	if err := d.CopyD2H(out, buf, h.cfg.ScoreBase); err != nil {
		t.Fatal(err)
	}
	if s != nil {
		s.Synchronize()
	}
	scores := make([]int32, len(out))
	for i, v := range out {
		scores[i] = int32(v)
	}
	return scores
}

func randCodes(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(align.AlphabetSize))
	}
	return s
}

func decode(codes []byte) []byte {
	r := make([]byte, len(codes))
	for i, c := range codes {
		r[i] = align.Alphabet[c]
	}
	return r
}

// TestSWScoreBatchMatchesScoreOnly is the kernel's oracle: for random
// batches of random-length sequences, every device score must equal
// align.ScoreOnly on the decoded residues.
func TestSWScoreBatchMatchesScoreOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prm := align.DefaultParams()
	d := newDev(t)
	for trial := 0; trial < 5; trial++ {
		nseq := 3 + rng.Intn(6)
		seqs := make([][]byte, nseq)
		for i := range seqs {
			seqs[i] = randCodes(rng, 1+rng.Intn(90))
		}
		var pairs [][2]int
		for a := 0; a < nseq; a++ {
			for b := a + 1; b < nseq; b++ {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		got := runSW(t, d, nil, packSW(seqs, pairs, prm))
		for i, p := range pairs {
			want := align.ScoreOnly(decode(seqs[p[0]]), decode(seqs[p[1]]), prm)
			if int(got[i]) != want {
				t.Fatalf("trial %d pair %v: device score %d, ScoreOnly %d", trial, p, got[i], want)
			}
		}
	}
}

// TestSWScoreBatchOnStream: the stream path must score identically to the
// synchronous path.
func TestSWScoreBatchOnStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prm := align.DefaultParams()
	d := newDev(t)
	seqs := [][]byte{randCodes(rng, 40), randCodes(rng, 64), randCodes(rng, 17)}
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	h := packSW(seqs, pairs, prm)
	syncScores := runSW(t, d, nil, h)
	streamScores := runSW(t, d, d.NewStream(), h)
	for i := range syncScores {
		if syncScores[i] != streamScores[i] {
			t.Fatalf("pair %d: stream score %d != sync %d", i, streamScores[i], syncScores[i])
		}
	}
}

// TestSWScoreBatchEmptySequence: zero-length operands score 0, like
// align.ScoreOnly.
func TestSWScoreBatchEmptySequence(t *testing.T) {
	d := newDev(t)
	seqs := [][]byte{{}, {1, 2, 3, 4, 5}}
	got := runSW(t, d, nil, packSW(seqs, [][2]int{{0, 1}}, align.DefaultParams()))
	if got[0] != 0 {
		t.Fatalf("empty operand scored %d, want 0", got[0])
	}
}

// TestSWScoreBatchValidation: layouts that spill out of the buffer are
// rejected before any thread runs.
func TestSWScoreBatchValidation(t *testing.T) {
	d := newDev(t)
	buf, err := d.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	bad := []SWConfig{
		{NumPairs: 1, Alphabet: 0},
		{NumPairs: -1, Alphabet: 21},
		{NumPairs: 1, Alphabet: 21, ScoreBase: 600},             // table alone exceeds 100 words
		{NumPairs: 4, Alphabet: 5, PairBase: 90},                // pair records spill
		{NumPairs: 1, Alphabet: 5, SeqBase: 95, SeqWords: 10},   // residues spill
		{NumPairs: 8, Alphabet: 5, PairBase: 25, ScoreBase: 95}, // scores spill
		{NumPairs: 1, Alphabet: 5, TableBase: -1},               // negative base
	}
	for i, cfg := range bad {
		if err := SWScoreBatch(d, nil, buf, cfg); err == nil {
			t.Fatalf("case %d: invalid layout accepted", i)
		}
	}
	// A zero-pair launch is a no-op, not an error.
	if err := SWScoreBatch(d, nil, buf, SWConfig{Alphabet: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestSWScoreBatchKernelProfile: the launch must show up under its kernel
// name with compute-bound accounting — the designed contrast with the
// memory-bound shingling path.
func TestSWScoreBatchKernelProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := newDev(t)
	d.EnableProfiling()
	seqs := [][]byte{randCodes(rng, 80), randCodes(rng, 80)}
	runSW(t, d, nil, packSW(seqs, [][2]int{{0, 1}}, align.DefaultParams()))
	recs := d.Profile()
	found := false
	for _, r := range recs {
		if r.Name == "sw_score" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sw_score kernel in profile: %+v", recs)
	}
	m := d.Metrics()
	if m.ComputeTimeNs <= m.MemoryTimeNs {
		t.Fatalf("SW kernel should be compute-bound: compute %.0fns <= memory %.0fns",
			m.ComputeTimeNs, m.MemoryTimeNs)
	}
}
