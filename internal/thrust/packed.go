package thrust

import (
	"fmt"
	"math/bits"
	"slices"

	"gpclust/internal/gpusim"
)

// Packed-image kernels. The host packs residues and adjacency values
// bit-continuously (gpusim.PackBits) before the H2D copy; on the device the
// image is either expanded back to one value per word by UnpackBits — the
// device twin of gpusim.UnpackBits — or read in place by the fused
// shingling kernels below, which extract values on the fly. Packing changes
// the bytes a transfer moves and the instructions a kernel issues, never a
// computed value: every kernel here extracts exactly the words the host
// packed, so outputs stay bit-identical to the unpacked path.

// unpackOps is the charged arithmetic cost of extracting one value from a
// packed image: bit-offset arithmetic, up to two shifts, an or and a mask.
const unpackOps = 4

// packedAt extracts value i from a bit-continuous little-endian image.
func packedAt(w []uint32, i, nbits int, mask uint32) uint32 {
	bit := i * nbits
	word, off := bit/32, uint(bit%32)
	v := w[word] >> off
	if off+uint(nbits) > 32 {
		v |= w[word+1] << (32 - off)
	}
	return v & mask
}

func packedMask(nbits int) uint32 {
	if nbits >= 32 {
		return 0xFFFFFFFF
	}
	return 1<<uint(nbits) - 1
}

// UnpackBits expands a packed image of n values at the given bit width into
// one value per word of dst: dst[i] = value i of src. Grid-stride
// elementwise like Transform; consecutive lanes read overlapping packed
// words, so the reads are better than fully coalesced and the model sees
// the shrunken footprint through the run stride.
func UnpackBits(d *gpusim.Device, src, dst *gpusim.Buffer, n, nbits int) error {
	return UnpackBitsOnStream(d, nil, src, dst, n, nbits)
}

// UnpackBitsOnStream is UnpackBits enqueued on a stream (nil stream =
// synchronous).
func UnpackBitsOnStream(d *gpusim.Device, st *gpusim.Stream, src, dst *gpusim.Buffer, n, nbits int) error {
	if nbits < 1 || nbits > 32 {
		return fmt.Errorf("thrust: UnpackBits width %d outside [1,32]", nbits)
	}
	if n < 0 || gpusim.PackedLen(n, nbits) > src.Len() || n > dst.Len() {
		return fmt.Errorf("thrust: UnpackBits of %d values at %d bits with buffers of %d/%d",
			n, nbits, src.Len(), dst.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	// Word stride between a thread's successive packed reads; successive
	// lanes start fractions of a word apart, which the run model rounds to
	// shared segments — the coalescing win of the compact image.
	packedStride := total * nbits / 32
	if packedStride < 1 {
		packedStride = 1
	}
	mask := packedMask(nbits)
	d.NextKernelName("unpack_bits")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		s, t := src.Words(), dst.Words()
		count := 0
		for i := gid; i < n; i += total {
			t[i] = packedAt(s, i, nbits, mask)
			count++
		}
		if count > 0 {
			ctx.GlobalRead(src, gid*nbits/32, count, packedStride)
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count * unpackOps)
		}
	})
}

// UnpackResidues expands a bit-packed residue image into the byte layout
// the SW kernel's default decoder reads (4 codes per little-endian word):
// value r of the packed image at word offset srcBase becomes byte r of the
// region at word offset dstBase, within the same buffer — pgraph's
// packed+unfused staging, where one H2D moves [records | packed residues]
// and this kernel materializes the workspace the unchanged kernel expects.
// Each thread owns whole output words (4 residues), so no two threads touch
// the same destination word.
func UnpackResidues(d *gpusim.Device, st *gpusim.Stream, buf *gpusim.Buffer,
	srcBase, dstBase, n, nbits int) error {

	if nbits < 1 || nbits > 8 {
		return fmt.Errorf("thrust: UnpackResidues width %d outside [1,8]", nbits)
	}
	if n < 0 || srcBase < 0 || dstBase < 0 {
		return fmt.Errorf("thrust: UnpackResidues with n=%d, srcBase=%d, dstBase=%d", n, srcBase, dstBase)
	}
	srcWords := gpusim.PackedLen(n, nbits)
	outWords := (n + 3) / 4
	if srcBase+srcWords > buf.Len() || dstBase+outWords > buf.Len() {
		return fmt.Errorf("thrust: UnpackResidues regions [%d,%d)+[%d,%d) exceed buffer of %d words",
			srcBase, srcBase+srcWords, dstBase, dstBase+outWords, buf.Len())
	}
	if srcBase < dstBase+outWords && dstBase < srcBase+srcWords {
		return fmt.Errorf("thrust: UnpackResidues source and destination regions overlap")
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(outWords)
	// A thread's successive packed reads advance 4·nbits bits per output
	// word; the run model rounds the fractional-word starts of neighboring
	// lanes into shared segments — the compact image's coalescing win.
	packedStride := total * 4 * nbits / 32
	if packedStride < 1 {
		packedStride = 1
	}
	mask := packedMask(nbits)
	d.NextKernelName("unpack_residues")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		w := buf.Words()
		src := w[srcBase : srcBase+srcWords]
		count := 0
		for wi := gid; wi < outWords; wi += total {
			var acc uint32
			for lane := 0; lane < 4; lane++ {
				if r := 4*wi + lane; r < n {
					acc |= packedAt(src, r, nbits, mask) << (8 * lane)
				}
			}
			w[dstBase+wi] = acc
			count++
		}
		if count > 0 {
			ctx.GlobalRead(buf, srcBase+gid*4*nbits/32, count, packedStride)
			ctx.GlobalWrite(buf, dstBase+gid, count, total)
			ctx.Ops(count * 4 * unpackOps)
		}
	})
}

// FusedHashTopS fuses TransformHash with SegmentedTopS into one launch:
// for each segment the owning thread reads the segment's values — from the
// packed image directly when dataBits > 0, from full-width words when
// dataBits == 0 — applies the min-wise hash (a·v + b) mod prime to each,
// and maintains the running s minima with the same insertion scan as
// SegmentedTopS, writing them sentinel-padded at out[outBase+seg*s:...).
// The fusion eliminates one kernel launch and the full-width hash buffer's
// global write + re-read per trial; the price is that the hash work runs at
// the top-s kernel's one-thread-per-segment occupancy instead of the
// elementwise transform's, which is why the cost model — not a flag alone —
// decides where fusion wins. Segment offsets index values (not packed
// words) in both modes, so the two modes are interchangeable bit for bit.
func FusedHashTopS(d *gpusim.Device, st *gpusim.Stream, data *gpusim.Buffer, dataBits int,
	segs Segments, s int, a, b, prime uint64, out *gpusim.Buffer, outBase int) error {

	if s <= 0 {
		return fmt.Errorf("thrust: FusedHashTopS with s=%d", s)
	}
	if outBase < 0 {
		return fmt.Errorf("thrust: FusedHashTopS with outBase=%d", outBase)
	}
	if dataBits < 0 || dataBits > 32 {
		return fmt.Errorf("thrust: FusedHashTopS width %d outside [0,32]", dataBits)
	}
	if err := validatePackedSegments(segs, data, dataBits); err != nil {
		return err
	}
	if out.Len() < outBase+segs.NumSegs*s {
		return fmt.Errorf("thrust: FusedHashTopS output of %d words, need %d", out.Len(), outBase+segs.NumSegs*s)
	}
	if segs.NumSegs == 0 {
		return nil
	}
	grid := (segs.NumSegs + blockDim - 1) / blockDim
	mask := packedMask(max(dataBits, 1))
	d.NextKernelName("fused_hash_top_s")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		seg := ctx.GlobalID()
		if seg >= segs.NumSegs {
			return
		}
		off := segs.Offsets.Words()
		lo, hi := int(off[seg]), int(off[seg+1])
		n := hi - lo
		ctx.GlobalRead(segs.Offsets, seg, 2, 1)
		w := data.Words()
		hash := func(i int) uint32 {
			var v uint32
			if dataBits > 0 {
				v = packedAt(w, lo+i, dataBits, mask)
			} else {
				v = w[lo+i]
			}
			return uint32((a*uint64(v) + b) % prime)
		}
		dst := out.Words()[outBase+seg*s : outBase+(seg+1)*s]
		elemOps := hashOps
		if dataBits > 0 {
			elemOps += unpackOps
		}
		if n < s {
			for i := 0; i < n; i++ {
				dst[i] = hash(i)
			}
			insertionSort(dst[:n])
			for i := n; i < s; i++ {
				dst[i] = TopSSentinel
			}
			chargeSegmentRead(ctx, data, lo, n, dataBits)
			ctx.GlobalWrite(out, outBase+seg*s, s, 1)
			ctx.Ops(n*n/2 + s + n*elemOps)
			return
		}
		ops := n * elemOps
		// Seed with the first s hashes, insertion-sorted.
		filled := 0
		for i := 0; i < s; i++ {
			x := hash(i)
			j := filled
			for j > 0 && dst[j-1] > x {
				dst[j] = dst[j-1]
				j--
				ops++
			}
			dst[j] = x
			filled++
			ops += 2
		}
		// Stream the remainder keeping the s minima.
		for i := s; i < n; i++ {
			x := hash(i)
			ops++
			if x >= dst[s-1] {
				continue
			}
			j := s - 1
			for j > 0 && dst[j-1] > x {
				dst[j] = dst[j-1]
				j--
				ops++
			}
			dst[j] = x
			ops += 2
		}
		chargeSegmentRead(ctx, data, lo, n, dataBits)
		ctx.GlobalWrite(out, outBase+seg*s, s, 1)
		ctx.Ops(ops)
	})
}

// FusedHashSort fuses TransformHash with SegmentedSort for the full-sort
// ablation path: for each segment the owning thread hashes the segment's
// values — packed image when dataBits > 0 — and writes them sorted
// ascending into dst[lo:hi). dst then holds exactly what TransformHash
// followed by SegmentedSort would have produced, so the downstream top-s
// gather is unchanged.
func FusedHashSort(d *gpusim.Device, st *gpusim.Stream, data *gpusim.Buffer, dataBits int,
	segs Segments, a, b, prime uint64, dst *gpusim.Buffer) error {

	if dataBits < 0 || dataBits > 32 {
		return fmt.Errorf("thrust: FusedHashSort width %d outside [0,32]", dataBits)
	}
	if err := validatePackedSegments(segs, data, dataBits); err != nil {
		return err
	}
	if segs.NumSegs == 0 {
		return nil
	}
	off := segs.Offsets.Words()
	if int(off[segs.NumSegs]) > dst.Len() {
		return fmt.Errorf("thrust: FusedHashSort dst of %d words, segments end at %d",
			dst.Len(), off[segs.NumSegs])
	}
	grid := (segs.NumSegs + blockDim - 1) / blockDim
	mask := packedMask(max(dataBits, 1))
	d.NextKernelName("fused_hash_sort")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		seg := ctx.GlobalID()
		if seg >= segs.NumSegs {
			return
		}
		off := segs.Offsets.Words()
		lo, hi := int(off[seg]), int(off[seg+1])
		n := hi - lo
		if n == 0 {
			return
		}
		w := data.Words()
		t := dst.Words()[lo:hi]
		for i := 0; i < n; i++ {
			var v uint32
			if dataBits > 0 {
				v = packedAt(w, lo+i, dataBits, mask)
			} else {
				v = w[lo+i]
			}
			t[i] = uint32((a*uint64(v) + b) % prime)
		}
		if n <= segSortThreshold {
			insertionSort(t)
		} else {
			slices.Sort(t)
		}
		elemOps := hashOps
		if dataBits > 0 {
			elemOps += unpackOps
		}
		passes := bits.Len(uint(n))
		ctx.GlobalRead(segs.Offsets, seg, 2, 1)
		chargeSegmentRead(ctx, data, lo, n, dataBits)
		// The sort's remaining passes run over dst in place.
		ctx.GlobalRead(dst, lo, n*(passes-1), 1)
		ctx.GlobalWrite(dst, lo, n*passes, 1)
		ctx.Ops(n*elemOps + n*passes*3)
	})
}

// chargeSegmentRead records one segment's input traffic: n full-width words
// when the data is unpacked, or the packed words actually touched when it
// is a packed image — the footprint reduction the fused kernels exist for.
func chargeSegmentRead(ctx *gpusim.ThreadCtx, data *gpusim.Buffer, lo, n, dataBits int) {
	if dataBits <= 0 {
		ctx.GlobalRead(data, lo, n, 1)
		return
	}
	first := lo * dataBits / 32
	last := ((lo+n)*dataBits + 31) / 32
	ctx.GlobalRead(data, first, last-first, 1)
}

// validatePackedSegments is Segments.Validate generalized over packed
// images: offsets count values, the buffer holds PackedLen(end, bits)
// words when bits > 0.
func validatePackedSegments(segs Segments, data *gpusim.Buffer, dataBits int) error {
	off := segs.Offsets.Words()
	if len(off) < segs.NumSegs+1 {
		return fmt.Errorf("thrust: %d segments need %d offsets, buffer has %d",
			segs.NumSegs, segs.NumSegs+1, len(off))
	}
	for i := 0; i < segs.NumSegs; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("thrust: segment offsets not monotone at %d: %d > %d", i, off[i], off[i+1])
		}
	}
	end := int(off[segs.NumSegs])
	need := end
	if dataBits > 0 {
		need = gpusim.PackedLen(end, dataBits)
	}
	if need > data.Len() {
		return fmt.Errorf("thrust: segments need %d data words, buffer has %d", need, data.Len())
	}
	return nil
}
