package thrust

import (
	"fmt"
	"sort"

	"gpclust/internal/gpusim"
)

// SortPairs64 sorts n records of a 64-bit key (split across keyHi/keyLo
// word buffers, since device words are 32-bit) with a 32-bit value payload,
// ascending by (hi, lo, value) — the thrust::sort_by_key used by the
// GPU-aggregation extension to group shingle tuples on the device instead
// of the CPU. Like Sort, the records are reordered for real while the cost
// model charges an LSD radix sort: six 16-bit passes, each streaming every
// record through global memory.
func SortPairs64(d *gpusim.Device, keyHi, keyLo, val *gpusim.Buffer, n int) error {
	return SortPairs64OnStream(d, nil, keyHi, keyLo, val, n)
}

// SortPairs64OnStream is SortPairs64 enqueued on a stream (nil stream =
// synchronous).
func SortPairs64OnStream(d *gpusim.Device, st *gpusim.Stream, keyHi, keyLo, val *gpusim.Buffer, n int) error {
	if n < 0 || n > keyHi.Len() || n > keyLo.Len() || n > val.Len() {
		return fmt.Errorf("thrust: SortPairs64 over %d records with buffers %d/%d/%d",
			n, keyHi.Len(), keyLo.Len(), val.Len())
	}
	if n <= 1 {
		return nil
	}
	// Real reorder: sort an index permutation, then apply it to all three
	// streams.
	hi, lo, v := keyHi.Words(), keyLo.Words(), val.Words()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if hi[ia] != hi[ib] {
			return hi[ia] < hi[ib]
		}
		if lo[ia] != lo[ib] {
			return lo[ia] < lo[ib]
		}
		return v[ia] < v[ib]
	})
	apply := func(s []uint32) {
		tmp := make([]uint32, n)
		for i, j := range idx {
			tmp[i] = s[j]
		}
		copy(s[:n], tmp)
	}
	apply(hi)
	apply(lo)
	apply(v)

	// Charge radix cost: 6 passes × (read keys+value, write keys+value).
	grid, total := launchGeometry(n)
	d.NextKernelName("sort_pairs64")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		count := 0
		for i := gid; i < n; i += total {
			count++
		}
		if count > 0 {
			const passes = 6
			ctx.GlobalRead(keyHi, gid, count*passes, total)
			ctx.GlobalRead(keyLo, gid, count*passes, total)
			ctx.GlobalRead(val, gid, count*passes, total)
			ctx.GlobalWrite(keyHi, gid, count*passes, total)
			ctx.GlobalWrite(keyLo, gid, count*passes, total)
			ctx.GlobalWrite(val, gid, count*passes, total)
			ctx.Ops(count * passes * 6)
		}
	})
}
