package thrust

import (
	"fmt"
	"math/bits"
	"slices"

	"gpclust/internal/gpusim"
)

// Segments describes a segmented view over a data buffer: segment i spans
// data words [Offsets[i], Offsets[i+1]). Offsets live on the device like the
// "auxiliary data structure on the device ... used to mark the boundaries of
// each adjacency list" (Section III-C).
type Segments struct {
	Offsets *gpusim.Buffer // numSegs+1 words
	NumSegs int
}

// Validate checks the offsets are monotone and within the data buffer.
func (s Segments) Validate(data *gpusim.Buffer) error {
	off := s.Offsets.Words()
	if len(off) < s.NumSegs+1 {
		return fmt.Errorf("thrust: %d segments need %d offsets, buffer has %d",
			s.NumSegs, s.NumSegs+1, len(off))
	}
	for i := 0; i < s.NumSegs; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("thrust: segment offsets not monotone at %d: %d > %d", i, off[i], off[i+1])
		}
	}
	if int(off[s.NumSegs]) > data.Len() {
		return fmt.Errorf("thrust: segments end at %d beyond data buffer of %d",
			off[s.NumSegs], data.Len())
	}
	return nil
}

// segSortThreshold: segments at or below this length are insertion sorted
// (cheap, low constant); longer segments use pattern-defeating quicksort.
const segSortThreshold = 24

// SegmentedSort sorts each segment of data in place, ascending — the
// segmented sorting step of Figure 4 ("a segmented sorting operation is
// applied to reorganize the permutations in each segment"). One device
// thread sorts one segment; the wildly varying adjacency-list lengths make
// this kernel divergent and its access pattern uncoalesced, which the cost
// model charges accordingly (the reason graph algorithms underuse GPU
// bandwidth, Section III-C).
func SegmentedSort(d *gpusim.Device, data *gpusim.Buffer, segs Segments) error {
	return SegmentedSortOnStream(d, nil, data, segs)
}

// SegmentedSortOnStream is SegmentedSort enqueued on a stream (nil stream =
// synchronous). The sort mutates data in place, so the buffer must be owned
// by the stream's pipeline lane — the batch-pipelined GPU path gives each
// lane its own hash buffer for exactly this reason.
func SegmentedSortOnStream(d *gpusim.Device, st *gpusim.Stream, data *gpusim.Buffer, segs Segments) error {
	if err := segs.Validate(data); err != nil {
		return err
	}
	if segs.NumSegs == 0 {
		return nil
	}
	grid := (segs.NumSegs + blockDim - 1) / blockDim
	d.NextKernelName("segmented_sort")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		seg := ctx.GlobalID()
		if seg >= segs.NumSegs {
			return
		}
		off := segs.Offsets.Words()
		lo, hi := int(off[seg]), int(off[seg+1])
		n := hi - lo
		if n <= 1 {
			if n == 1 {
				ctx.GlobalRead(data, lo, 1, 1)
			}
			return
		}
		s := data.Words()[lo:hi]
		if n <= segSortThreshold {
			insertionSort(s)
		} else {
			slices.Sort(s)
		}
		// Sorting reads and writes each element ~log2(n) times.
		passes := bits.Len(uint(n))
		ctx.GlobalRead(segs.Offsets, seg, 2, 1)
		ctx.GlobalRead(data, lo, n*passes, 1)
		ctx.GlobalWrite(data, lo, n*passes, 1)
		ctx.Ops(n * passes * 3)
	})
}

func insertionSort(s []uint32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && s[j-1] > v {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
}

// TopSSentinel pads output slots of segments shorter than s. Hash images
// are < minwise.Prime < 2^31, so the sentinel can never collide with a
// real value.
const TopSSentinel = 0xFFFFFFFF

// SegmentedTopS writes, for each segment, its min(n, s) smallest elements in
// ascending order into out[seg*s : (seg+1)*s), sentinel-padded, without
// mutating data. Short segments still report their sorted elements so that
// the CPU can merge the partial results of an adjacency list split across
// batches (Section III-C: "the CPU has to combine the shingle results for
// the split adjacency lists"); whole lists shorter than s are discarded by
// the aggregation step, matching the paper's ≥ s-links rule.
//
// This is the fused shingle-selection kernel: Algorithm 1's "segmented
// sorting ... [then] the top s elements in each segment are selected" has
// the same output; gpClust uses the fused form by default and the
// sort-then-select form under Options.UseFullSort (ablated in the
// experiments). One thread owns one segment and maintains the running s
// minima with the same insertion scan as the serial code, so the SIMT cost
// model sees the divergence profile of real per-list work.
func SegmentedTopS(d *gpusim.Device, data *gpusim.Buffer, segs Segments, s int, out *gpusim.Buffer) error {
	return SegmentedTopSOnStream(d, nil, data, segs, s, out)
}

// SegmentedTopSOnStream is SegmentedTopS enqueued on a stream (nil stream =
// synchronous).
func SegmentedTopSOnStream(d *gpusim.Device, st *gpusim.Stream, data *gpusim.Buffer, segs Segments, s int, out *gpusim.Buffer) error {
	return SegmentedTopSAt(d, st, data, segs, s, out, 0)
}

// SegmentedTopSAt is SegmentedTopSOnStream writing segment seg's minima at
// out[outBase+seg*s : outBase+(seg+1)*s). The batch-pipelined GPU path packs
// several trials' results into one output buffer this way and downloads them
// with a single device→host transfer, amortizing the per-copy setup cost
// that dominates Data_g→c for small rows (Table I analysis).
func SegmentedTopSAt(d *gpusim.Device, st *gpusim.Stream, data *gpusim.Buffer, segs Segments, s int, out *gpusim.Buffer, outBase int) error {
	if s <= 0 {
		return fmt.Errorf("thrust: SegmentedTopS with s=%d", s)
	}
	if outBase < 0 {
		return fmt.Errorf("thrust: SegmentedTopS with outBase=%d", outBase)
	}
	if err := segs.Validate(data); err != nil {
		return err
	}
	if out.Len() < outBase+segs.NumSegs*s {
		return fmt.Errorf("thrust: SegmentedTopS output of %d words, need %d", out.Len(), outBase+segs.NumSegs*s)
	}
	if segs.NumSegs == 0 {
		return nil
	}
	grid := (segs.NumSegs + blockDim - 1) / blockDim
	d.NextKernelName("segmented_top_s")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		seg := ctx.GlobalID()
		if seg >= segs.NumSegs {
			return
		}
		off := segs.Offsets.Words()
		lo, hi := int(off[seg]), int(off[seg+1])
		n := hi - lo
		dst := out.Words()[outBase+seg*s : outBase+(seg+1)*s]
		ctx.GlobalRead(segs.Offsets, seg, 2, 1)
		if n < s {
			copy(dst, data.Words()[lo:hi])
			insertionSort(dst[:n])
			for i := n; i < s; i++ {
				dst[i] = TopSSentinel
			}
			ctx.GlobalRead(data, lo, n, 1)
			ctx.GlobalWrite(out, outBase+seg*s, s, 1)
			ctx.Ops(n*n/2 + s)
			return
		}
		src := data.Words()[lo:hi]
		ops := 0
		// Seed with the first s elements, insertion-sorted.
		filled := 0
		for _, x := range src[:s] {
			i := filled
			for i > 0 && dst[i-1] > x {
				dst[i] = dst[i-1]
				i--
				ops++
			}
			dst[i] = x
			filled++
			ops += 2
		}
		// Stream the remainder keeping the s minima.
		for _, x := range src[s:] {
			ops++
			if x >= dst[s-1] {
				continue
			}
			i := s - 1
			for i > 0 && dst[i-1] > x {
				dst[i] = dst[i-1]
				i--
				ops++
			}
			dst[i] = x
			ops += 2
		}
		ctx.GlobalRead(data, lo, n, 1)
		ctx.GlobalWrite(out, seg*s, s, 1)
		ctx.Ops(ops)
	})
}

// Sort sorts the first n words of data ascending (thrust::sort). It is
// modeled as a radix sort: 4 passes over the data for 32-bit keys, each
// pass reading and writing every element with mostly-coalesced traffic.
func Sort(d *gpusim.Device, data *gpusim.Buffer, n int) error {
	if n < 0 || n > data.Len() {
		return fmt.Errorf("thrust: Sort %d elements in buffer of %d", n, data.Len())
	}
	if n <= 1 {
		return nil
	}
	// Execute the sort for real (host-grade sort on the device array),
	// then charge radix-sort cost: 4 passes × (read + write + few ops).
	slices.Sort(data.Words()[:n])
	grid, total := launchGeometry(n)
	d.NextKernelName("radix_sort")
	return d.Launch(grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		count := 0
		for i := gid; i < n; i += total {
			count++
		}
		if count > 0 {
			const passes = 4
			ctx.GlobalRead(data, gid, count*passes, total)
			ctx.GlobalWrite(data, gid, count*passes, total)
			ctx.Ops(count * passes * 5)
		}
	})
}
