// Package thrust reimplements, on top of the gpusim device, the Thrust
// parallel-primitive layer the paper builds gpClust from ("Our current
// implementation is implemented using the Thrust library", Section III-C).
// It provides the two primitives the paper identifies as carrying ~80% of
// the serial runtime — transform() (hashing) and segmented sorting — plus
// the standard supporting primitives (fill, iota, gather, reduce, scan).
//
// Every primitive executes for real on the device (results are exact) and
// records its arithmetic and memory traffic so the simulator's virtual
// clock reflects it.
package thrust

import (
	"fmt"

	"gpclust/internal/gpusim"
)

// elemsPerThread is the grid-stride work granularity of elementwise
// kernels: each thread processes this many elements at stride gridSize,
// which keeps warp accesses coalesced.
const elemsPerThread = 8

// blockDim is the default thread-block size for elementwise kernels.
const blockDim = 256

// launchGeometry returns (gridDim, totalThreads) covering n elements at
// elemsPerThread each.
func launchGeometry(n int) (int, int) {
	threads := (n + elemsPerThread - 1) / elemsPerThread
	if threads == 0 {
		threads = 1
	}
	grid := (threads + blockDim - 1) / blockDim
	return grid, grid * blockDim
}

// launch dispatches synchronously or on a stream.
func launch(d *gpusim.Device, s *gpusim.Stream, grid, block int, k gpusim.Kernel) error {
	if s == nil {
		return d.Launch(grid, block, k)
	}
	return d.LaunchOnStream(s, grid, block, k)
}

// Transform computes dst[i] = f(src[i]) for i in [0, n), the analogue of
// thrust::transform. opsPerElem is the arithmetic cost of one application
// of f charged to the cost model.
func Transform(d *gpusim.Device, src, dst *gpusim.Buffer, n int, f func(uint32) uint32, opsPerElem int) error {
	if n < 0 || n > src.Len() || n > dst.Len() {
		return fmt.Errorf("thrust: Transform over %d elements with buffers of %d/%d", n, src.Len(), dst.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	d.NextKernelName("transform")
	return d.Launch(grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		s, t := src.Words(), dst.Words()
		count := 0
		for i := gid; i < n; i += total {
			t[i] = f(s[i])
			count++
		}
		if count > 0 {
			ctx.GlobalRead(src, gid, count, total)
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count * opsPerElem)
		}
	})
}

// hashOps is the charged arithmetic cost of one (A·v+B) mod P evaluation:
// a 64-bit multiply, add and modulo expand to roughly this many simple
// device instructions.
const hashOps = 6

// TransformHash computes dst[i] = (a·src[i] + b) mod P over n elements —
// the min-wise permutation hash h_i of Section III-B, fused to avoid
// per-element closure dispatch. P is minwise.Prime.
func TransformHash(d *gpusim.Device, src, dst *gpusim.Buffer, n int, a, b, prime uint64) error {
	return TransformHashOnStream(d, nil, src, dst, n, a, b, prime)
}

// TransformHashOnStream is TransformHash enqueued on a stream (nil stream =
// synchronous), used by the asynchronous-transfer pipeline.
func TransformHashOnStream(d *gpusim.Device, s *gpusim.Stream, src, dst *gpusim.Buffer, n int, a, b, prime uint64) error {
	if n < 0 || n > src.Len() || n > dst.Len() {
		return fmt.Errorf("thrust: TransformHash over %d elements with buffers of %d/%d", n, src.Len(), dst.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	d.NextKernelName("transform_hash")
	return launch(d, s, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		s, t := src.Words(), dst.Words()
		count := 0
		for i := gid; i < n; i += total {
			t[i] = uint32((a*uint64(s[i]) + b) % prime)
			count++
		}
		if count > 0 {
			ctx.GlobalRead(src, gid, count, total)
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count * hashOps)
		}
	})
}

// Fill sets the first n words of dst to v (thrust::fill).
func Fill(d *gpusim.Device, dst *gpusim.Buffer, n int, v uint32) error {
	if n < 0 || n > dst.Len() {
		return fmt.Errorf("thrust: Fill %d elements into buffer of %d", n, dst.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	d.NextKernelName("fill")
	return d.Launch(grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		t := dst.Words()
		count := 0
		for i := gid; i < n; i += total {
			t[i] = v
			count++
		}
		if count > 0 {
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count)
		}
	})
}

// Iota writes dst[i] = start + i for i in [0, n) (thrust::sequence).
func Iota(d *gpusim.Device, dst *gpusim.Buffer, n int, start uint32) error {
	if n < 0 || n > dst.Len() {
		return fmt.Errorf("thrust: Iota %d elements into buffer of %d", n, dst.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	d.NextKernelName("iota")
	return d.Launch(grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		t := dst.Words()
		count := 0
		for i := gid; i < n; i += total {
			t[i] = start + uint32(i)
			count++
		}
		if count > 0 {
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count)
		}
	})
}

// Gather computes dst[i] = src[idx[i]] (thrust::gather). The gathered reads
// are data-dependent and charged as scattered accesses.
func Gather(d *gpusim.Device, src, idx, dst *gpusim.Buffer, n int) error {
	if n < 0 || n > idx.Len() || n > dst.Len() {
		return fmt.Errorf("thrust: Gather %d elements with idx/dst of %d/%d", n, idx.Len(), dst.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	d.NextKernelName("gather")
	var launchErr error
	err := d.Launch(grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		s, ix, t := src.Words(), idx.Words(), dst.Words()
		count := 0
		for i := gid; i < n; i += total {
			j := int(ix[i])
			if j >= len(s) {
				// Out-of-range index: surface as an error after the launch
				// rather than panicking mid-kernel.
				launchErr = fmt.Errorf("thrust: Gather index %d out of range %d", j, len(s))
				return
			}
			t[i] = s[j]
			// data-dependent read: its own run, effectively uncoalesced
			ctx.GlobalRead(src, j, 1, 1)
			count++
		}
		if count > 0 {
			ctx.GlobalRead(idx, gid, count, total)
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count * 2)
		}
	})
	if err != nil {
		return err
	}
	return launchErr
}
