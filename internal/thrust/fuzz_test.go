package thrust

import (
	"encoding/binary"
	"sort"
	"testing"

	"gpclust/internal/gpusim"
)

// FuzzSegmentedSort drives the one-thread-per-segment device sort with
// arbitrary data and segment boundaries and checks every segment against a
// per-segment sort.Slice oracle. Segment boundaries are derived from the
// input bytes too, so the fuzzer explores empty segments, length-1 segments,
// and segments straddling the insertion-sort/pdqsort threshold.
func FuzzSegmentedSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 0, 0, 0, 3, 0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0})
	big := make([]byte, 4*200)
	state := uint64(0x243F6A8885A308D3)
	for i := range big {
		state = state*6364136223846793005 + 1442695040888963407
		big[i] = byte(state >> 56)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		data := make([]uint32, n)
		for i := range data {
			data[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		// Boundaries at positions whose source byte has its low 3 bits
		// clear: ~1/8 of positions, deterministic in the input.
		offs := []uint32{0}
		for i := 1; i < n; i++ {
			if raw[4*i]&7 == 0 {
				offs = append(offs, uint32(i))
			}
		}
		offs = append(offs, uint32(n))

		dev := gpusim.MustNew(gpusim.K20Config())
		dataBuf := dev.MustMalloc(n)
		offBuf := dev.MustMalloc(len(offs))
		defer dataBuf.Free()
		defer offBuf.Free()
		if err := dev.CopyH2D(dataBuf, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := dev.CopyH2D(offBuf, 0, offs); err != nil {
			t.Fatal(err)
		}
		segs := Segments{Offsets: offBuf, NumSegs: len(offs) - 1}
		if err := SegmentedSort(dev, dataBuf, segs); err != nil {
			t.Fatal(err)
		}
		got := make([]uint32, n)
		if err := dev.CopyD2H(got, dataBuf, 0); err != nil {
			t.Fatal(err)
		}

		want := append([]uint32(nil), data...)
		for s := 0; s+1 < len(offs); s++ {
			seg := want[offs[s]:offs[s+1]]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("word %d = %d, want %d (n=%d, segs=%d)", i, got[i], want[i], n, segs.NumSegs)
			}
		}
	})
}
