package thrust

import (
	"math/rand"
	"slices"
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
)

func newDev(t testing.TB) *gpusim.Device {
	t.Helper()
	return gpusim.MustNew(gpusim.K20Config())
}

func upload(t testing.TB, d *gpusim.Device, data []uint32) *gpusim.Buffer {
	t.Helper()
	b := d.MustMalloc(len(data))
	if err := d.CopyH2D(b, 0, data); err != nil {
		t.Fatal(err)
	}
	return b
}

func download(t testing.TB, d *gpusim.Device, b *gpusim.Buffer, n int) []uint32 {
	t.Helper()
	out := make([]uint32, n)
	if err := d.CopyD2H(out, b, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTransform(t *testing.T) {
	d := newDev(t)
	const n = 10_000
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(i)
	}
	in := upload(t, d, src)
	out := d.MustMalloc(n)
	defer in.Free()
	defer out.Free()
	if err := Transform(d, in, out, n, func(v uint32) uint32 { return v*2 + 1 }, 2); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, out, n)
	for i, v := range got {
		if v != uint32(i)*2+1 {
			t.Fatalf("element %d = %d, want %d", i, v, i*2+1)
		}
	}
	// Grid-stride elementwise kernels must be well coalesced.
	if eff := d.Metrics().CoalescingEfficiency(); eff < 0.9 {
		t.Fatalf("Transform coalescing efficiency = %v, want ≥ 0.9", eff)
	}
}

func TestTransformBounds(t *testing.T) {
	d := newDev(t)
	in := d.MustMalloc(5)
	out := d.MustMalloc(3)
	defer in.Free()
	defer out.Free()
	if err := Transform(d, in, out, 5, func(v uint32) uint32 { return v }, 1); err == nil {
		t.Fatal("Transform overflowing dst accepted")
	}
	if err := Transform(d, in, out, 0, func(v uint32) uint32 { return v }, 1); err != nil {
		t.Fatalf("zero-length Transform failed: %v", err)
	}
}

func TestTransformHashMatchesMinwise(t *testing.T) {
	d := newDev(t)
	const n = 5000
	rng := rand.New(rand.NewSource(4))
	src := make([]uint32, n)
	for i := range src {
		src[i] = rng.Uint32() % uint32(minwise.Prime)
	}
	h := minwise.HashPair{A: 48271, B: 12345}
	in := upload(t, d, src)
	out := d.MustMalloc(n)
	defer in.Free()
	defer out.Free()
	if err := TransformHash(d, in, out, n, h.A, h.B, minwise.Prime); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, out, n)
	for i := range src {
		if got[i] != h.Apply(src[i]) {
			t.Fatalf("element %d: device hash %d != host hash %d", i, got[i], h.Apply(src[i]))
		}
	}
}

func TestFillAndIota(t *testing.T) {
	d := newDev(t)
	b := d.MustMalloc(1000)
	defer b.Free()
	if err := Fill(d, b, 1000, 7); err != nil {
		t.Fatal(err)
	}
	for i, v := range download(t, d, b, 1000) {
		if v != 7 {
			t.Fatalf("Fill element %d = %d", i, v)
		}
	}
	if err := Iota(d, b, 1000, 5); err != nil {
		t.Fatal(err)
	}
	for i, v := range download(t, d, b, 1000) {
		if v != uint32(i+5) {
			t.Fatalf("Iota element %d = %d, want %d", i, v, i+5)
		}
	}
}

func TestGather(t *testing.T) {
	d := newDev(t)
	src := upload(t, d, []uint32{10, 20, 30, 40, 50})
	idx := upload(t, d, []uint32{4, 0, 2, 2})
	out := d.MustMalloc(4)
	defer src.Free()
	defer idx.Free()
	defer out.Free()
	if err := Gather(d, src, idx, out, 4); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, out, 4)
	want := []uint32{50, 10, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Gather[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestGatherOutOfRange(t *testing.T) {
	d := newDev(t)
	src := upload(t, d, []uint32{1, 2})
	idx := upload(t, d, []uint32{5})
	out := d.MustMalloc(1)
	defer src.Free()
	defer idx.Free()
	defer out.Free()
	if err := Gather(d, src, idx, out, 1); err == nil {
		t.Fatal("out-of-range gather index accepted")
	}
}

func makeSegments(t testing.TB, d *gpusim.Device, lens []int) (Segments, int) {
	t.Helper()
	off := make([]uint32, len(lens)+1)
	for i, l := range lens {
		off[i+1] = off[i] + uint32(l)
	}
	return Segments{Offsets: upload(t, d, off), NumSegs: len(lens)}, int(off[len(lens)])
}

func TestSegmentedSort(t *testing.T) {
	d := newDev(t)
	rng := rand.New(rand.NewSource(8))
	lens := []int{0, 1, 2, 5, 24, 25, 100, 3, 57}
	segs, total := makeSegments(t, d, lens)
	defer segs.Offsets.Free()
	data := make([]uint32, total)
	for i := range data {
		data[i] = rng.Uint32()
	}
	buf := upload(t, d, data)
	defer buf.Free()
	if err := SegmentedSort(d, buf, segs); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, buf, total)
	off := 0
	for si, l := range lens {
		seg := got[off : off+l]
		want := append([]uint32{}, data[off:off+l]...)
		slices.Sort(want)
		for i := range seg {
			if seg[i] != want[i] {
				t.Fatalf("segment %d element %d = %d, want %d", si, i, seg[i], want[i])
			}
		}
		off += l
	}
}

func TestSegmentsValidate(t *testing.T) {
	d := newDev(t)
	data := d.MustMalloc(10)
	defer data.Free()
	// non-monotone
	bad := Segments{Offsets: upload(t, d, []uint32{0, 5, 3}), NumSegs: 2}
	defer bad.Offsets.Free()
	if err := bad.Validate(data); err == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	// beyond data
	far := Segments{Offsets: upload(t, d, []uint32{0, 20}), NumSegs: 1}
	defer far.Offsets.Free()
	if err := far.Validate(data); err == nil {
		t.Fatal("out-of-range offsets accepted")
	}
	// too few offsets
	short := Segments{Offsets: upload(t, d, []uint32{0}), NumSegs: 1}
	defer short.Offsets.Free()
	if err := short.Validate(data); err == nil {
		t.Fatal("short offsets buffer accepted")
	}
}

func TestSegmentedTopS(t *testing.T) {
	d := newDev(t)
	rng := rand.New(rand.NewSource(17))
	lens := []int{5, 1, 0, 40, 2, 73, 3}
	const s = 3
	segs, total := makeSegments(t, d, lens)
	defer segs.Offsets.Free()
	data := make([]uint32, total)
	for i := range data {
		data[i] = rng.Uint32() % 1_000_000
	}
	buf := upload(t, d, data)
	out := d.MustMalloc(len(lens) * s)
	defer buf.Free()
	defer out.Free()
	if err := SegmentedTopS(d, buf, segs, s, out); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, out, len(lens)*s)
	off := 0
	for si, l := range lens {
		res := got[si*s : (si+1)*s]
		want := append([]uint32{}, data[off:off+l]...)
		slices.Sort(want)
		for i := 0; i < s; i++ {
			exp := uint32(TopSSentinel)
			if i < l {
				exp = want[i]
			}
			if res[i] != exp {
				t.Fatalf("segment %d (len %d) slot %d = %d, want %d", si, l, i, res[i], exp)
			}
		}
		off += l
	}
	// Input must be unchanged (TopS is non-destructive).
	after := download(t, d, buf, total)
	for i := range data {
		if after[i] != data[i] {
			t.Fatal("SegmentedTopS mutated its input")
		}
	}
}

func TestSegmentedTopSEqualsSortThenSelect(t *testing.T) {
	// The fused kernel must produce exactly what Algorithm 1's
	// sort-then-select produces.
	d := newDev(t)
	rng := rand.New(rand.NewSource(23))
	lens := make([]int, 200)
	for i := range lens {
		lens[i] = rng.Intn(60)
	}
	const s = 2
	segs, total := makeSegments(t, d, lens)
	defer segs.Offsets.Free()
	data := make([]uint32, total)
	for i := range data {
		data[i] = rng.Uint32()
	}

	bufA := upload(t, d, data)
	outA := d.MustMalloc(len(lens) * s)
	defer bufA.Free()
	defer outA.Free()
	if err := SegmentedTopS(d, bufA, segs, s, outA); err != nil {
		t.Fatal(err)
	}
	fused := download(t, d, outA, len(lens)*s)

	bufB := upload(t, d, data)
	defer bufB.Free()
	if err := SegmentedSort(d, bufB, segs); err != nil {
		t.Fatal(err)
	}
	sorted := download(t, d, bufB, total)
	off := 0
	for si, l := range lens {
		for i := 0; i < s; i++ {
			want := uint32(TopSSentinel)
			if i < l {
				want = sorted[off+i]
			}
			if fused[si*s+i] != want {
				t.Fatalf("segment %d slot %d: fused %d != sort-select %d", si, i, fused[si*s+i], want)
			}
		}
		off += l
	}
}

func TestSort(t *testing.T) {
	d := newDev(t)
	rng := rand.New(rand.NewSource(31))
	data := make([]uint32, 10_000)
	for i := range data {
		data[i] = rng.Uint32()
	}
	buf := upload(t, d, data)
	defer buf.Free()
	if err := Sort(d, buf, len(data)); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, buf, len(data))
	if !slices.IsSorted(got) {
		t.Fatal("Sort output not sorted")
	}
	want := append([]uint32{}, data...)
	slices.Sort(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Sort output is not a permutation of the input")
		}
	}
}

func TestReduce(t *testing.T) {
	d := newDev(t)
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 7, 256, 300, 70_000} {
		data := make([]uint32, n)
		var wantSum uint32
		wantMin, wantMax := uint32(0xFFFFFFFF), uint32(0)
		for i := range data {
			data[i] = rng.Uint32() % 1000
			wantSum += data[i]
			if data[i] < wantMin {
				wantMin = data[i]
			}
			if data[i] > wantMax {
				wantMax = data[i]
			}
		}
		buf := upload(t, d, data)
		if got, err := Reduce(d, buf, n, Sum); err != nil || got != wantSum {
			t.Fatalf("n=%d: Reduce Sum = %d (%v), want %d", n, got, err, wantSum)
		}
		if got, err := Reduce(d, buf, n, Min); err != nil || got != wantMin {
			t.Fatalf("n=%d: Reduce Min = %d (%v), want %d", n, got, err, wantMin)
		}
		if got, err := Reduce(d, buf, n, Max); err != nil || got != wantMax {
			t.Fatalf("n=%d: Reduce Max = %d (%v), want %d", n, got, err, wantMax)
		}
		buf.Free()
	}
}

func TestReduceEmpty(t *testing.T) {
	d := newDev(t)
	buf := d.MustMalloc(1)
	defer buf.Free()
	if got, err := Reduce(d, buf, 0, Sum); err != nil || got != 0 {
		t.Fatalf("empty Sum = %d (%v)", got, err)
	}
	if got, err := Reduce(d, buf, 0, Min); err != nil || got != 0xFFFFFFFF {
		t.Fatalf("empty Min = %d (%v)", got, err)
	}
}

func TestInclusiveScan(t *testing.T) {
	d := newDev(t)
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{1, 5, 256, 257, 1000, 66_000} {
		data := make([]uint32, n)
		for i := range data {
			data[i] = rng.Uint32() % 100
		}
		in := upload(t, d, data)
		out := d.MustMalloc(n)
		if err := InclusiveScan(d, in, out, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := download(t, d, out, n)
		var run uint32
		for i := range data {
			run += data[i]
			if got[i] != run {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, got[i], run)
			}
		}
		in.Free()
		out.Free()
	}
}

func TestNoBufferLeaks(t *testing.T) {
	d := newDev(t)
	data := upload(t, d, make([]uint32, 70_000))
	out := d.MustMalloc(70_000)
	if _, err := Reduce(d, data, 70_000, Sum); err != nil {
		t.Fatal(err)
	}
	if err := InclusiveScan(d, data, out, 70_000); err != nil {
		t.Fatal(err)
	}
	data.Free()
	out.Free()
	if n := d.AllocatedBuffers(); n != 0 {
		t.Fatalf("%d device buffers leaked by primitives", n)
	}
}

func BenchmarkTransformHash(b *testing.B) {
	d := gpusim.MustNew(gpusim.K20Config())
	const n = 1 << 20
	in := d.MustMalloc(n)
	out := d.MustMalloc(n)
	defer in.Free()
	defer out.Free()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TransformHash(d, in, out, n, 48271, 11, minwise.Prime)
	}
}

func BenchmarkSegmentedTopS(b *testing.B) {
	d := gpusim.MustNew(gpusim.K20Config())
	rng := rand.New(rand.NewSource(1))
	lens := make([]int, 10_000)
	total := 0
	for i := range lens {
		lens[i] = 5 + rng.Intn(100)
		total += lens[i]
	}
	off := make([]uint32, len(lens)+1)
	for i, l := range lens {
		off[i+1] = off[i] + uint32(l)
	}
	offBuf := d.MustMalloc(len(off))
	_ = d.CopyH2D(offBuf, 0, off)
	data := d.MustMalloc(total)
	defer data.Free()
	out := d.MustMalloc(len(lens) * 2)
	defer out.Free()
	segs := Segments{Offsets: offBuf, NumSegs: len(lens)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SegmentedTopS(d, data, segs, 2, out)
	}
}

func TestSortPairs64(t *testing.T) {
	d := newDev(t)
	rng := rand.New(rand.NewSource(41))
	const n = 5000
	hi := make([]uint32, n)
	lo := make([]uint32, n)
	val := make([]uint32, n)
	for i := range hi {
		hi[i] = rng.Uint32() % 16 // force hi collisions so lo/value ordering matters
		lo[i] = rng.Uint32() % 64
		val[i] = rng.Uint32()
	}
	bh, bl, bv := upload(t, d, hi), upload(t, d, lo), upload(t, d, val)
	defer bh.Free()
	defer bl.Free()
	defer bv.Free()
	if err := SortPairs64(d, bh, bl, bv, n); err != nil {
		t.Fatal(err)
	}
	gh, gl, gv := download(t, d, bh, n), download(t, d, bl, n), download(t, d, bv, n)
	type rec struct{ h, l, v uint32 }
	var prev rec
	counts := map[rec]int{}
	for i := range hi {
		counts[rec{hi[i], lo[i], val[i]}]++
	}
	for i := 0; i < n; i++ {
		cur := rec{gh[i], gl[i], gv[i]}
		if i > 0 {
			if cur.h < prev.h || (cur.h == prev.h && (cur.l < prev.l || (cur.l == prev.l && cur.v < prev.v))) {
				t.Fatalf("record %d out of order: %+v after %+v", i, cur, prev)
			}
		}
		counts[cur]--
		prev = cur
	}
	for r, c := range counts {
		if c != 0 {
			t.Fatalf("record %+v count off by %d: not a permutation", r, c)
		}
	}
}

func TestSortPairs64Bounds(t *testing.T) {
	d := newDev(t)
	b1, b2, b3 := d.MustMalloc(5), d.MustMalloc(5), d.MustMalloc(3)
	defer b1.Free()
	defer b2.Free()
	defer b3.Free()
	if err := SortPairs64(d, b1, b2, b3, 5); err == nil {
		t.Fatal("short value buffer accepted")
	}
	if err := SortPairs64(d, b1, b2, b3, 1); err != nil {
		t.Fatalf("n=1 failed: %v", err)
	}
}

func TestStreamVariantsDeferHostClock(t *testing.T) {
	d := newDev(t)
	const n = 4096
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(i)
	}
	in := upload(t, d, src)
	out := d.MustMalloc(n)
	topOut := d.MustMalloc(8 * 2)
	off := upload(t, d, []uint32{0, 512, 1024, 1536, 2048, 2560, 3072, 3584, 4096})
	defer in.Free()
	defer out.Free()
	defer topOut.Free()
	defer off.Free()

	st := d.NewStream()
	before := d.HostTime()
	if err := TransformHashOnStream(d, st, in, out, n, 48271, 11, minwise.Prime); err != nil {
		t.Fatal(err)
	}
	segs := Segments{Offsets: off, NumSegs: 8}
	if err := SegmentedTopSOnStream(d, st, out, segs, 2, topOut); err != nil {
		t.Fatal(err)
	}
	if d.HostTime() != before {
		t.Fatal("stream-enqueued primitives advanced the host clock")
	}
	st.Synchronize()
	if d.HostTime() <= before {
		t.Fatal("synchronize did not advance the host clock")
	}

	// Results correct: each 512-segment's two minima of the hashed values.
	got := download(t, d, topOut, 16)
	h := minwise.HashPair{A: 48271, B: 11}
	for seg := 0; seg < 8; seg++ {
		min1, min2 := uint32(0xFFFFFFFF), uint32(0xFFFFFFFF)
		for i := seg * 512; i < (seg+1)*512; i++ {
			v := h.Apply(src[i])
			if v < min1 {
				min2, min1 = min1, v
			} else if v < min2 {
				min2 = v
			}
		}
		if got[seg*2] != min1 || got[seg*2+1] != min2 {
			t.Fatalf("segment %d minima = %v, want [%d %d]", seg, got[seg*2:seg*2+2], min1, min2)
		}
	}
}

func TestSortPairs64OnStream(t *testing.T) {
	d := newDev(t)
	hi := upload(t, d, []uint32{2, 1, 1})
	lo := upload(t, d, []uint32{0, 9, 3})
	val := upload(t, d, []uint32{7, 8, 9})
	defer hi.Free()
	defer lo.Free()
	defer val.Free()
	st := d.NewStream()
	before := d.HostTime()
	if err := SortPairs64OnStream(d, st, hi, lo, val, 3); err != nil {
		t.Fatal(err)
	}
	if d.HostTime() != before {
		t.Fatal("stream sort advanced host clock")
	}
	st.Synchronize()
	gh := download(t, d, hi, 3)
	gv := download(t, d, val, 3)
	if gh[0] != 1 || gh[1] != 1 || gh[2] != 2 || gv[0] != 9 || gv[1] != 8 || gv[2] != 7 {
		t.Fatalf("sorted hi=%v val=%v", gh, gv)
	}
}
