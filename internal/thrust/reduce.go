package thrust

import (
	"fmt"

	"gpclust/internal/gpusim"
)

// ReduceOp selects the associative operator for Reduce.
type ReduceOp int

const (
	// Sum adds elements (mod 2^32).
	Sum ReduceOp = iota
	// Min takes the minimum element.
	Min
	// Max takes the maximum element.
	Max
)

func (op ReduceOp) apply(a, b uint32) uint32 {
	switch op {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	}
	panic("thrust: unknown reduce op")
}

func (op ReduceOp) identity() uint32 {
	switch op {
	case Sum:
		return 0
	case Min:
		return 0xFFFFFFFF
	case Max:
		return 0
	}
	panic("thrust: unknown reduce op")
}

// Reduce folds the first n words of data with op (thrust::reduce), using
// the canonical two-stage scheme: a cooperative shared-memory tree
// reduction per block, then a final pass over the per-block partials.
func Reduce(d *gpusim.Device, data *gpusim.Buffer, n int, op ReduceOp) (uint32, error) {
	if n < 0 || n > data.Len() {
		return 0, fmt.Errorf("thrust: Reduce %d elements in buffer of %d", n, data.Len())
	}
	if n == 0 {
		return op.identity(), nil
	}
	const bd = 256
	grid := (n + bd - 1) / bd
	partials, err := d.Malloc(grid)
	if err != nil {
		return 0, err
	}
	defer partials.Free()

	d.NextKernelName("block_reduce")
	err = d.LaunchCooperative(grid, bd, bd, func(c *gpusim.CoopCtx) {
		sh := c.Shared()
		i := c.Block*c.BlockDim + c.Thread
		if i < n {
			sh[c.Thread] = data.Words()[i]
			c.GlobalRead(data, i, 1, 1)
		} else {
			sh[c.Thread] = op.identity()
		}
		c.SharedAccess(1)
		c.SyncThreads()
		for s := bd / 2; s > 0; s /= 2 {
			if c.Thread < s {
				sh[c.Thread] = op.apply(sh[c.Thread], sh[c.Thread+s])
				c.SharedAccess(2)
				c.Ops(1)
			}
			c.SyncThreads()
		}
		if c.Thread == 0 {
			partials.Words()[c.Block] = sh[0]
			c.GlobalWrite(partials, c.Block, 1, 1)
		}
	})
	if err != nil {
		return 0, err
	}

	if grid == 1 {
		host := make([]uint32, 1)
		if err := d.CopyD2H(host, partials, 0); err != nil {
			return 0, err
		}
		return host[0], nil
	}
	return Reduce(d, partials, grid, op)
}

// InclusiveScan computes dst[i] = src[0] + … + src[i] (thrust::inclusive_scan
// with plus), using per-block cooperative Hillis–Steele scans, a recursive
// scan of block sums, and an offset-add pass.
func InclusiveScan(d *gpusim.Device, src, dst *gpusim.Buffer, n int) error {
	if n < 0 || n > src.Len() || n > dst.Len() {
		return fmt.Errorf("thrust: InclusiveScan over %d elements with buffers of %d/%d", n, src.Len(), dst.Len())
	}
	if n == 0 {
		return nil
	}
	const bd = 256
	grid := (n + bd - 1) / bd
	blockSums, err := d.Malloc(grid)
	if err != nil {
		return err
	}
	defer blockSums.Free()

	// Stage 1: per-block inclusive scan into dst, block totals into blockSums.
	d.NextKernelName("block_scan")
	err = d.LaunchCooperative(grid, bd, 2*bd, func(c *gpusim.CoopCtx) {
		sh := c.Shared()
		i := c.Block*c.BlockDim + c.Thread
		var v uint32
		if i < n {
			v = src.Words()[i]
			c.GlobalRead(src, i, 1, 1)
		}
		sh[c.Thread] = v
		c.SharedAccess(1)
		c.SyncThreads()
		// Hillis–Steele double-buffered scan.
		in, out := 0, bd
		for step := 1; step < bd; step *= 2 {
			if c.Thread >= step {
				sh[out+c.Thread] = sh[in+c.Thread] + sh[in+c.Thread-step]
				c.Ops(1)
			} else {
				sh[out+c.Thread] = sh[in+c.Thread]
			}
			c.SharedAccess(2)
			c.SyncThreads()
			in, out = out, in
		}
		if i < n {
			dst.Words()[i] = sh[in+c.Thread]
			c.GlobalWrite(dst, i, 1, 1)
		}
		if c.Thread == bd-1 {
			blockSums.Words()[c.Block] = sh[in+c.Thread]
			c.GlobalWrite(blockSums, c.Block, 1, 1)
		}
	})
	if err != nil {
		return err
	}
	if grid == 1 {
		return nil
	}

	// Stage 2: scan the block sums (recursively).
	scanned, err := d.Malloc(grid)
	if err != nil {
		return err
	}
	defer scanned.Free()
	if err := InclusiveScan(d, blockSums, scanned, grid); err != nil {
		return err
	}

	// Stage 3: add the previous blocks' total to every element.
	gridAdd, total := launchGeometry(n)
	d.NextKernelName("scan_add_offsets")
	return d.Launch(gridAdd, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		dw, sums := dst.Words(), scanned.Words()
		count := 0
		for i := gid; i < n; i += total {
			b := i / bd
			if b > 0 {
				dw[i] += sums[b-1]
			}
			count++
		}
		if count > 0 {
			ctx.GlobalRead(dst, gid, count, total)
			ctx.GlobalRead(scanned, gid/bd, (count+bd-1)/bd, 1)
			ctx.GlobalWrite(dst, gid, count, total)
			ctx.Ops(count * 2)
		}
	})
}
