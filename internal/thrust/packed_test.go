package thrust

import (
	"math/rand"
	"testing"

	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
)

// FuzzPackResidues is the round-trip oracle for the packed image format:
// for arbitrary values and any width the device can decode, host PackBits
// followed by the device unpack kernels must reproduce the input exactly —
// word-per-value through UnpackBits and byte-layout through UnpackResidues.
// Seeds cover the two real alphabets: 5-bit protein codes and 2-bit DNA.
func FuzzPackResidues(f *testing.F) {
	// Protein: 21 codes need 5 bits; DNA: 4 codes need 2.
	f.Add([]byte{0, 1, 2, 3, 4, 20, 19, 18, 7, 11, 13, 17, 5, 6, 8, 9, 10, 12}, uint8(5))
	f.Add([]byte{0, 1, 2, 3, 3, 2, 1, 0, 2, 2, 1, 3}, uint8(2))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(8))
	f.Add([]byte{1, 0, 1, 1, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, width uint8) {
		nbits := 1 + int(width)%8
		mask := packedMask(nbits)
		vals := make([]uint32, len(raw))
		for i, b := range raw {
			vals[i] = uint32(b) & mask
		}
		n := len(vals)
		packed := gpusim.PackBits(vals, nbits)

		// Host oracle first: the device kernels are checked against the
		// original values, so this is a second, independent witness.
		for i, v := range gpusim.UnpackBits(packed, n, nbits) {
			if v != vals[i] {
				t.Fatalf("host round-trip broke at %d: %d != %d (nbits=%d)", i, v, vals[i], nbits)
			}
		}

		dev := gpusim.MustNew(gpusim.SmallConfig())

		// UnpackBits: packed image -> one value per word.
		src := dev.MustMalloc(max(len(packed), 1))
		dst := dev.MustMalloc(max(n, 1))
		if err := dev.CopyH2D(src, 0, packed); err != nil {
			t.Fatal(err)
		}
		if err := UnpackBits(dev, src, dst, n, nbits); err != nil {
			t.Fatal(err)
		}
		got := make([]uint32, n)
		if err := dev.CopyD2H(got, dst, 0); err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("UnpackBits value %d = %d, want %d (nbits=%d, n=%d)", i, got[i], vals[i], nbits, n)
			}
		}
		src.Free()
		dst.Free()

		// UnpackResidues: packed image -> 4 codes per word, in one buffer,
		// against the byte layout built on the host.
		outWords := (n + 3) / 4
		buf := dev.MustMalloc(max(len(packed)+outWords, 1))
		if err := dev.CopyH2D(buf, 0, packed); err != nil {
			t.Fatal(err)
		}
		if err := UnpackResidues(dev, nil, buf, 0, len(packed), n, nbits); err != nil {
			t.Fatal(err)
		}
		want := make([]uint32, outWords)
		for i, v := range vals {
			want[i/4] |= v << (8 * (i % 4))
		}
		gotBytes := make([]uint32, outWords)
		if err := dev.CopyD2H(gotBytes, buf, len(packed)); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if gotBytes[i] != want[i] {
				t.Fatalf("UnpackResidues word %d = %#x, want %#x (nbits=%d, n=%d)", i, gotBytes[i], want[i], nbits, n)
			}
		}
		buf.Free()
		if err := dev.LeakCheck(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestUnpackResiduesValidation(t *testing.T) {
	d := newDev(t)
	buf := d.MustMalloc(32)
	defer buf.Free()
	if err := UnpackResidues(d, nil, buf, 0, 16, 8, 0); err == nil {
		t.Fatal("UnpackResidues accepted width 0")
	}
	if err := UnpackResidues(d, nil, buf, 0, 16, 8, 9); err == nil {
		t.Fatal("UnpackResidues accepted width 9")
	}
	if err := UnpackResidues(d, nil, buf, 0, 31, 8, 5); err == nil {
		t.Fatal("UnpackResidues accepted a destination past the buffer end")
	}
	if err := UnpackResidues(d, nil, buf, 0, 1, 64, 5); err == nil {
		t.Fatal("UnpackResidues accepted overlapping source and destination")
	}
	if err := UnpackResidues(d, nil, buf, 0, 16, 0, 5); err != nil {
		t.Fatalf("zero-length UnpackResidues failed: %v", err)
	}
}

// packedSegInput builds a random segmented value stream that fits the given
// width, plus its segment offsets.
func packedSegInput(rng *rand.Rand, nbits, numSegs, maxSegLen int) ([]uint32, []uint32) {
	mask := packedMask(nbits)
	offs := []uint32{0}
	var vals []uint32
	for s := 0; s < numSegs; s++ {
		for i := rng.Intn(maxSegLen + 1); i > 0; i-- {
			vals = append(vals, rng.Uint32()&mask)
		}
		offs = append(offs, uint32(len(vals)))
	}
	return vals, offs
}

// TestFusedHashTopSMatchesSplit checks the fused kernel against the split
// TransformHash + SegmentedTopS pipeline on the same values — full-width
// data (dataBits = 0) and a 5-bit packed image must all agree bit for bit.
func TestFusedHashTopSMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := minwise.HashPair{A: 48271, B: 7919}
	for _, tc := range []struct{ segs, maxLen, s int }{
		{40, 50, 5}, {17, 3, 8}, {1, 0, 4}, {64, 9, 1},
	} {
		vals, offs := packedSegInput(rng, 5, tc.segs, tc.maxLen)
		n := len(vals)

		// Split pipeline on full-width data: the pre-existing oracle.
		d := newDev(t)
		data := upload(t, d, append([]uint32(nil), vals...))
		offBuf := upload(t, d, offs)
		segs := Segments{Offsets: offBuf, NumSegs: tc.segs}
		hashes := d.MustMalloc(max(n, 1))
		want := d.MustMalloc(tc.segs * tc.s)
		if err := TransformHash(d, data, hashes, n, h.A, h.B, minwise.Prime); err != nil {
			t.Fatal(err)
		}
		if err := SegmentedTopS(d, hashes, segs, tc.s, want); err != nil {
			t.Fatal(err)
		}
		wantOut := download(t, d, want, tc.segs*tc.s)

		// Fused, full-width.
		got := d.MustMalloc(tc.segs * tc.s)
		if err := FusedHashTopS(d, nil, data, 0, segs, tc.s, h.A, h.B, minwise.Prime, got, 0); err != nil {
			t.Fatal(err)
		}
		for i, v := range download(t, d, got, tc.segs*tc.s) {
			if v != wantOut[i] {
				t.Fatalf("%+v: fused full-width word %d = %d, split %d", tc, i, v, wantOut[i])
			}
		}

		// Fused, packed image.
		packed := gpusim.PackBits(vals, 5)
		pBuf := upload(t, d, append(packed, 0))
		if err := FusedHashTopS(d, nil, pBuf, 5, segs, tc.s, h.A, h.B, minwise.Prime, got, 0); err != nil {
			t.Fatal(err)
		}
		for i, v := range download(t, d, got, tc.segs*tc.s) {
			if v != wantOut[i] {
				t.Fatalf("%+v: fused packed word %d = %d, split %d", tc, i, v, wantOut[i])
			}
		}
		data.Free()
		offBuf.Free()
		hashes.Free()
		want.Free()
		got.Free()
		pBuf.Free()
		if err := d.LeakCheck(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFusedHashSortMatchesSplit: same contract for the full-sort ablation
// kernel against TransformHash + SegmentedSort.
func TestFusedHashSortMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	h := minwise.HashPair{A: 16807, B: 104729}
	vals, offs := packedSegInput(rng, 5, 30, 40)
	n := len(vals)

	d := newDev(t)
	data := upload(t, d, append([]uint32(nil), vals...))
	offBuf := upload(t, d, offs)
	segs := Segments{Offsets: offBuf, NumSegs: len(offs) - 1}
	want := d.MustMalloc(max(n, 1))
	if err := TransformHash(d, data, want, n, h.A, h.B, minwise.Prime); err != nil {
		t.Fatal(err)
	}
	if err := SegmentedSort(d, want, segs); err != nil {
		t.Fatal(err)
	}
	wantOut := download(t, d, want, n)

	got := d.MustMalloc(max(n, 1))
	if err := FusedHashSort(d, nil, data, 0, segs, h.A, h.B, minwise.Prime, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range download(t, d, got, n) {
		if v != wantOut[i] {
			t.Fatalf("fused full-width word %d = %d, split %d", i, v, wantOut[i])
		}
	}

	packed := gpusim.PackBits(vals, 5)
	pBuf := upload(t, d, append(packed, 0))
	if err := FusedHashSort(d, nil, pBuf, 5, segs, h.A, h.B, minwise.Prime, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range download(t, d, got, n) {
		if v != wantOut[i] {
			t.Fatalf("fused packed word %d = %d, split %d", i, v, wantOut[i])
		}
	}
	data.Free()
	offBuf.Free()
	want.Free()
	got.Free()
	pBuf.Free()
	if err := d.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
