package thrust

import (
	"errors"
	"math/rand"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/minwise"
)

// TestBandHashMatchesBandKey: the device band-hash kernel must be
// bit-identical to minwise.Signatures.BandKey over the same column-major
// signature matrix, for several (bands, rows) shapes and with a non-zero
// output base.
func TestBandHashMatchesBandKey(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ bands, rows, ne int }{
		{1, 1, 1}, {4, 2, 300}, {16, 2, 97}, {8, 4, 1024},
	} {
		g := minwise.Signatures{C: shape.bands * shape.rows, N: shape.ne,
			Vals: make([]uint32, shape.bands*shape.rows*shape.ne)}
		for i := range g.Vals {
			g.Vals[i] = uint32(rng.Intn(1 << 31))
		}
		d := newDev(t)
		sigs := upload(t, d, g.Vals)
		out := d.MustMalloc(shape.bands * shape.ne)
		for band := 0; band < shape.bands; band++ {
			if err := BandHash(d, nil, sigs, shape.ne, band, shape.rows, out, band*shape.ne); err != nil {
				t.Fatal(err)
			}
		}
		got := download(t, d, out, shape.bands*shape.ne)
		for band := 0; band < shape.bands; band++ {
			for e := 0; e < shape.ne; e++ {
				if want := g.BandKey(e, band, shape.rows); got[band*shape.ne+e] != want {
					t.Fatalf("shape %dx%d ne=%d: key[band %d][seq %d] = %#x, want %#x",
						shape.bands, shape.rows, shape.ne, band, e, got[band*shape.ne+e], want)
				}
			}
		}
		// Tiny matrices can't fill cache lines; judge coalescing only where
		// the grid is saturated.
		if eff := d.Metrics().CoalescingEfficiency(); shape.ne >= 1000 && eff < 0.9 {
			t.Fatalf("BandHash coalescing efficiency = %v, want ≥ 0.9", eff)
		}
		sigs.Free()
		out.Free()
	}
}

// TestBandHashBounds: shape and range validation must reject bad calls
// before touching the device.
func TestBandHashBounds(t *testing.T) {
	d := newDev(t)
	sigs := d.MustMalloc(8) // 4 rows × ne=2
	out := d.MustMalloc(4)
	defer sigs.Free()
	defer out.Free()
	if err := BandHash(d, nil, sigs, 2, 2, 2, out, 0); err == nil {
		t.Fatal("band past the signature matrix accepted")
	}
	if err := BandHash(d, nil, sigs, 2, 0, 0, out, 0); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if err := BandHash(d, nil, sigs, 2, 0, 2, out, 3); err == nil {
		t.Fatal("out overflow accepted")
	}
	if err := BandHash(d, nil, sigs, 0, 0, 2, out, 0); err != nil {
		t.Fatalf("zero-sequence BandHash failed: %v", err)
	}
}

// TestMarkBucketHeadsMatchesHostScan: head flags must match the host
// adjacent-difference over the sorted 64-bit keys.
func TestMarkBucketHeadsMatchesHostScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 9001
	hi := make([]uint32, n)
	lo := make([]uint32, n)
	// Few distinct keys so runs are long, sorted by construction.
	cur := uint64(0)
	for i := 0; i < n; i++ {
		if rng.Intn(7) == 0 {
			cur += uint64(1 + rng.Intn(1<<20))
		}
		hi[i] = uint32(cur >> 32)
		lo[i] = uint32(cur)
	}
	d := newDev(t)
	bh, bl := upload(t, d, hi), upload(t, d, lo)
	flags := d.MustMalloc(n)
	defer bh.Free()
	defer bl.Free()
	defer flags.Free()
	if err := MarkBucketHeads(d, nil, bh, bl, n, flags); err != nil {
		t.Fatal(err)
	}
	got := download(t, d, flags, n)
	for i := 0; i < n; i++ {
		want := uint32(0)
		if i == 0 || hi[i] != hi[i-1] || lo[i] != lo[i-1] {
			want = 1
		}
		if got[i] != want {
			t.Fatalf("flag[%d] = %d, want %d", i, got[i], want)
		}
	}
	if err := MarkBucketHeads(d, nil, bh, bl, n+1, flags); err == nil {
		t.Fatal("overflowing MarkBucketHeads accepted")
	}
	if err := MarkBucketHeads(d, nil, bh, bl, 0, flags); err != nil {
		t.Fatalf("zero-length MarkBucketHeads failed: %v", err)
	}
}

// TestLSHKernelsPropagateFaults: the LSH kernels are thin launches, so an
// injected launch fault must wrap the typed fault errors, and a retry on
// the same device must produce the correct keys (no residue).
func TestLSHKernelsPropagateFaults(t *testing.T) {
	sched, err := faults.Parse("kernel op=1")
	if err != nil {
		t.Fatal(err)
	}
	d := newDev(t)
	d.SetFaultInjector(faults.NewInjector(sched))

	const ne, rows = 512, 2
	g := minwise.Signatures{C: rows, N: ne, Vals: make([]uint32, rows*ne)}
	for i := range g.Vals {
		g.Vals[i] = uint32(i * 2654435761)
	}
	sigs := upload(t, d, g.Vals)
	out := d.MustMalloc(ne)
	defer sigs.Free()
	defer out.Free()

	err = BandHash(d, nil, sigs, ne, 0, rows, out, 0)
	if !errors.Is(err, gpusim.ErrLaunchFault) || !errors.Is(err, gpusim.ErrDeviceFault) {
		t.Fatalf("BandHash error %v does not wrap the typed fault errors", err)
	}
	if err := BandHash(d, nil, sigs, ne, 0, rows, out, 0); err != nil {
		t.Fatalf("retry after one-shot launch fault: %v", err)
	}
	got := download(t, d, out, ne)
	for e := 0; e < ne; e++ {
		if want := g.BandKey(e, 0, rows); got[e] != want {
			t.Fatalf("key[%d] = %#x after retry, want %#x", e, got[e], want)
		}
	}
}
