package thrust

import (
	"fmt"

	"gpclust/internal/gpusim"
)

// LSH banding primitives. The candidate filter keeps the MinHash signature
// matrix device-resident (column-major: all sequences' minima under
// permutation j are contiguous, exactly minwise.Signatures.Vals), hashes each
// band's rows into one 32-bit bucket key per sequence, sorts (band, key,
// seq) records with SortPairs64, and marks bucket boundaries so the host can
// emit candidate pairs per run. BandHash is bit-identical to
// minwise.Signatures.BandKey so host- and device-generated buckets agree.

// bandHashOps is the charged arithmetic cost of folding one signature word
// into the FNV-1a accumulator: four xor+multiply byte rounds plus the shifts.
const bandHashOps = 8

// BandHash computes, for every sequence e in [0, ne), the 32-bit FNV-1a
// bucket key of band `band` (rows consecutive signature rows starting at
// band·rows) and writes it to out[outBase+e]. sigs holds the column-major
// signature matrix (row j at words [j·ne, (j+1)·ne)); the function is
// bit-identical to minwise.Signatures.BandKey over the same layout.
func BandHash(d *gpusim.Device, st *gpusim.Stream, sigs *gpusim.Buffer, ne, band, rows int, out *gpusim.Buffer, outBase int) error {
	if ne < 0 || band < 0 || rows <= 0 {
		return fmt.Errorf("thrust: BandHash ne=%d band=%d rows=%d", ne, band, rows)
	}
	if need := (band*rows + rows) * ne; need > sigs.Len() {
		return fmt.Errorf("thrust: BandHash band %d×%d rows needs %d signature words, buffer holds %d",
			band, rows, need, sigs.Len())
	}
	if outBase < 0 || outBase+ne > out.Len() {
		return fmt.Errorf("thrust: BandHash writing [%d,%d) into out of %d", outBase, outBase+ne, out.Len())
	}
	if ne == 0 {
		return nil
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	grid, total := launchGeometry(ne)
	d.NextKernelName("band_hash")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		s, t := sigs.Words(), out.Words()
		count := 0
		for e := gid; e < ne; e += total {
			h := uint32(offset32)
			for r := 0; r < rows; r++ {
				v := s[(band*rows+r)*ne+e]
				for sh := 0; sh < 32; sh += 8 {
					h ^= (v >> sh) & 0xff
					h *= prime32
				}
			}
			t[outBase+e] = h
			count++
		}
		if count > 0 {
			// One coalesced row-read per band row, plus the key write.
			for r := 0; r < rows; r++ {
				ctx.GlobalRead(sigs, (band*rows+r)*ne+gid, count, total)
			}
			ctx.GlobalWrite(out, outBase+gid, count, total)
			ctx.Ops(count * rows * bandHashOps)
		}
	})
}

// MarkBucketHeads writes flags[i] = 1 where record i opens a new bucket in
// the sorted (keyHi, keyLo) stream — i == 0 or either key word differs from
// record i-1 — and 0 elsewhere (the adjacent_difference step of bucket
// grouping). Records must already be sorted by (keyHi, keyLo).
func MarkBucketHeads(d *gpusim.Device, st *gpusim.Stream, keyHi, keyLo *gpusim.Buffer, n int, flags *gpusim.Buffer) error {
	if n < 0 || n > keyHi.Len() || n > keyLo.Len() || n > flags.Len() {
		return fmt.Errorf("thrust: MarkBucketHeads over %d records with buffers %d/%d/%d",
			n, keyHi.Len(), keyLo.Len(), flags.Len())
	}
	if n == 0 {
		return nil
	}
	grid, total := launchGeometry(n)
	d.NextKernelName("bucket_heads")
	return launch(d, st, grid, blockDim, func(ctx *gpusim.ThreadCtx) {
		gid := ctx.GlobalID()
		hi, lo, f := keyHi.Words(), keyLo.Words(), flags.Words()
		count := 0
		for i := gid; i < n; i += total {
			if i == 0 || hi[i] != hi[i-1] || lo[i] != lo[i-1] {
				f[i] = 1
			} else {
				f[i] = 0
			}
			count++
		}
		if count > 0 {
			// Each record reads its own and its predecessor's key words.
			ctx.GlobalRead(keyHi, gid, count*2, total)
			ctx.GlobalRead(keyLo, gid, count*2, total)
			ctx.GlobalWrite(flags, gid, count, total)
			ctx.Ops(count * 3)
		}
	})
}
