package thrust

import (
	"fmt"
	"sync"

	"gpclust/internal/gpusim"
	"gpclust/internal/obs"
)

// This file implements the batched score-only Smith–Waterman kernel that
// moves pGraph's verification stage onto the device (the fine-grained
// protein-similarity-search GPU formulation of Nguyen & Lavenier, adapted to
// the simulator). The parallelization is inter-task: one logical thread per
// candidate pair computes the whole affine-gap (Gotoh) DP for that pair with
// two int32 rows in thread-local memory, while the substitution-score table
// — a query profile shared by every alignment in the batch — is staged once
// per block into shared memory and hit once per DP cell. In contrast to the
// shingling pipeline, which Table I shows is copy-engine-bound, this kernel
// is compute-bound: O(len(a)·len(b)) cells per pair against O(len) words of
// traffic.

// swBlockDim is the thread-block size of the SW kernel. Blocks are small so
// length-binned batches map pairs of similar cost onto the same warp (the
// divergence model serializes a warp at its slowest lane).
const swBlockDim = 128

// swCellOps is the charged arithmetic cost of one DP cell: the E/F gap
// updates (two max each), the diagonal add, two clamps, the three-way max
// and the rolling-row bookkeeping.
const swCellOps = 12

// swDecodeOps is the per-cell surcharge of decoding the b-operand's residue
// from a bit-packed image (SeqBits > 0): the shift/or/mask extraction
// replaces a byte load. The a-operand decodes once per row and is absorbed
// into the aLen term.
const swDecodeOps = 2

// SWConfig describes one batched Smith–Waterman launch. The batch regions
// live in a single device buffer at the word offsets given here:
//
//	[TableBase : TableBase+Alphabet²)  substitution scores, int32 per word
//	[PairBase  : PairBase+4·NumPairs)  pair records: aOff, aLen, bOff, bLen
//	[SeqBase   : ...)                  residue codes, 4 per word, little-endian
//	[ScoreBase : ScoreBase+NumPairs)   int32 alignment scores (output)
//
// Pair-record offsets and lengths count residues relative to SeqBase.
type SWConfig struct {
	NumPairs  int
	Alphabet  int // residue-code count; scores index as [a·Alphabet+b]
	GapOpen   int32
	GapExtend int32

	// Table, when non-nil, is a separate device buffer holding the
	// substitution table at TableBase — the table is loop-invariant across a
	// build's batches, so schedulers keep it device-resident instead of
	// re-uploading it per batch. Nil keeps the legacy single-buffer layout
	// with the table inside buf.
	Table *gpusim.Buffer

	TableBase int
	PairBase  int
	SeqBase   int
	SeqWords  int // words of packed residues after SeqBase
	ScoreBase int

	// SeqBits, when nonzero, marks the residue region as a bit-continuous
	// packed image: residue off occupies bits [off·SeqBits, (off+1)·SeqBits)
	// after SeqBase (gpusim.PackBits layout) and the kernel decodes codes on
	// the fly at swDecodeOps per cell — pgraph's packed+fused mode. Zero
	// keeps the byte layout of 4 codes per little-endian word. Scores are
	// bit-identical either way; only the region's word footprint and the
	// kernel's instruction count change.
	SeqBits int

	// Obs, when non-nil, counts launches and pairs (launch *attempts*: a
	// launch that faults after enqueue still counts, matching what the
	// schedulers asked of the device rather than what survived).
	Obs *obs.Recorder
}

// swRows is the reusable thread-local DP state (H and E rows of the Gotoh
// recurrence). A sync.Pool bounds allocation across the simulator's
// concurrently executing threads; rows are fully reinitialized per pair, so
// reuse cannot affect results.
type swRows struct {
	h, e []int32
}

var swPool = sync.Pool{New: func() any { return new(swRows) }}

// SWScoreBatch launches the batched score-only Smith–Waterman kernel over
// cfg.NumPairs candidate pairs (nil stream = synchronous). Scores are
// bit-identical to align.ScoreOnly on the same pairs: the kernel replicates
// its recurrence, clamping and tie-breaking exactly, in int32 (every
// intermediate fits: after the first max, gap scores are bounded below by
// -(GapOpen+2·GapExtend)).
func SWScoreBatch(d *gpusim.Device, s *gpusim.Stream, buf *gpusim.Buffer, cfg SWConfig) error {
	if cfg.NumPairs < 0 || cfg.Alphabet <= 0 {
		return fmt.Errorf("thrust: SWScoreBatch with %d pairs, alphabet %d", cfg.NumPairs, cfg.Alphabet)
	}
	if cfg.SeqBits < 0 || cfg.SeqBits > 32 {
		return fmt.Errorf("thrust: SWScoreBatch residue width %d outside [0,32]", cfg.SeqBits)
	}
	tbl := cfg.Alphabet * cfg.Alphabet
	tblBuf := buf
	if cfg.Table != nil {
		tblBuf = cfg.Table
	}
	if cfg.TableBase < 0 || cfg.PairBase < 0 || cfg.SeqBase < 0 || cfg.ScoreBase < 0 ||
		cfg.TableBase+tbl > tblBuf.Len() ||
		cfg.PairBase+4*cfg.NumPairs > buf.Len() ||
		cfg.SeqBase+cfg.SeqWords > buf.Len() ||
		cfg.ScoreBase+cfg.NumPairs > buf.Len() {
		return fmt.Errorf("thrust: SWScoreBatch layout exceeds buffer of %d words", buf.Len())
	}
	if cfg.NumPairs == 0 {
		return nil
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Counter("gpclust_sw_kernel_launches",
			"Batched Smith-Waterman kernel launch attempts.").Inc()
		cfg.Obs.Counter("gpclust_sw_pairs",
			"Candidate pairs submitted to the SW kernel (attempts).").Add(int64(cfg.NumPairs))
	}
	grid := (cfg.NumPairs + swBlockDim - 1) / swBlockDim
	// Cooperative table staging: each block loads the query profile into
	// shared memory with a strided, coalesced sweep before its pairs start.
	tableChunk := (tbl + swBlockDim - 1) / swBlockDim
	d.NextKernelName("sw_score")
	return launch(d, s, grid, swBlockDim, func(ctx *gpusim.ThreadCtx) {
		if ctx.Thread < tbl {
			n := min(tableChunk, (tbl-ctx.Thread+swBlockDim-1)/swBlockDim)
			ctx.GlobalRead(tblBuf, cfg.TableBase+ctx.Thread, n, swBlockDim)
			ctx.Ops(n)
		}
		pair := ctx.GlobalID()
		if pair >= cfg.NumPairs {
			return
		}
		w := buf.Words()
		rec := w[cfg.PairBase+4*pair : cfg.PairBase+4*pair+4]
		aOff, aLen := int(rec[0]), int(rec[1])
		bOff, bLen := int(rec[2]), int(rec[3])
		ctx.GlobalRead(buf, cfg.PairBase+4*pair, 4, 1)
		ctx.GlobalWrite(buf, cfg.ScoreBase+pair, 1, 1)
		if aLen == 0 || bLen == 0 {
			w[cfg.ScoreBase+pair] = 0
			return
		}
		// Each sequence streams through registers once: one contiguous run of
		// packed words per operand (the bit-packed image's run is SeqBits/32
		// the width of the byte layout's — the fused transfer saving).
		aw0, aw1 := aOff>>2, (aOff+aLen+3)>>2
		bw0, bw1 := bOff>>2, (bOff+bLen+3)>>2
		if cfg.SeqBits > 0 {
			aw0, aw1 = aOff*cfg.SeqBits/32, ((aOff+aLen)*cfg.SeqBits+31)/32
			bw0, bw1 = bOff*cfg.SeqBits/32, ((bOff+bLen)*cfg.SeqBits+31)/32
		}
		ctx.GlobalRead(buf, cfg.SeqBase+aw0, aw1-aw0, 1)
		ctx.GlobalRead(buf, cfg.SeqBase+bw0, bw1-bw0, 1)

		tw := tblBuf.Words()
		code := func(off int) int32 {
			return int32(w[cfg.SeqBase+off>>2] >> (8 * (off & 3)) & 0xff)
		}
		if cfg.SeqBits > 0 {
			seq := w[cfg.SeqBase:]
			mask := packedMask(cfg.SeqBits)
			code = func(off int) int32 {
				return int32(packedAt(seq, off, cfg.SeqBits, mask))
			}
		}
		score := func(ca, cb int32) int32 {
			return int32(tw[cfg.TableBase+int(ca)*cfg.Alphabet+int(cb)])
		}

		const negInf = -1 << 30
		rows := swPool.Get().(*swRows)
		if cap(rows.h) < bLen+1 {
			rows.h = make([]int32, bLen+1)
			rows.e = make([]int32, bLen+1)
		}
		h, e := rows.h[:bLen+1], rows.e[:bLen+1]
		for j := range h {
			h[j] = 0
			e[j] = negInf
		}
		var best int32
		for i := 1; i <= aLen; i++ {
			ca := code(aOff + i - 1)
			var diag int32
			var f int32 = negInf
			for j := 1; j <= bLen; j++ {
				e[j] = max(e[j]-cfg.GapExtend, h[j]-cfg.GapOpen-cfg.GapExtend)
				f = max(f-cfg.GapExtend, h[j-1]-cfg.GapOpen-cfg.GapExtend)
				v := diag + score(ca, code(bOff+j-1))
				if v < 0 {
					v = 0
				}
				v = max(v, e[j], f)
				if v < 0 {
					v = 0
				}
				diag = h[j]
				h[j] = v
				if v > best {
					best = v
				}
			}
		}
		swPool.Put(rows)
		w[cfg.ScoreBase+pair] = uint32(best)
		cells := aLen * bLen
		// One shared-memory profile lookup per cell, plus the row-streaming
		// decode work (pricier per cell when decoding the packed image).
		cellOps := swCellOps
		if cfg.SeqBits > 0 {
			cellOps += swDecodeOps
		}
		ctx.SharedAccess(cells)
		ctx.Ops(cells*cellOps + aLen + bLen)
	})
}
