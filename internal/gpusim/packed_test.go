package gpusim

import (
	"math/rand"
	"testing"
)

func TestPackedLen(t *testing.T) {
	cases := []struct{ n, bits, want int }{
		{0, 5, 0}, {-3, 5, 0}, {1, 1, 1}, {32, 1, 1}, {33, 1, 2},
		{1, 5, 1}, {6, 5, 1}, {7, 5, 2}, {16, 2, 1}, {17, 2, 2},
		{1, 32, 1}, {4, 32, 4},
	}
	for _, c := range cases {
		if got := PackedLen(c.n, c.bits); got != c.want {
			t.Errorf("PackedLen(%d, %d) = %d, want %d", c.n, c.bits, got, c.want)
		}
	}
}

func TestMinBits(t *testing.T) {
	cases := []struct {
		vals []uint32
		want int
	}{
		{nil, 1}, {[]uint32{0, 0}, 1}, {[]uint32{1}, 1}, {[]uint32{2}, 2},
		{[]uint32{3}, 2}, {[]uint32{4}, 3}, {[]uint32{20}, 5},
		{[]uint32{255}, 8}, {[]uint32{256}, 9}, {[]uint32{1 << 31}, 32},
	}
	for _, c := range cases {
		if got := MinBits(c.vals); got != c.want {
			t.Errorf("MinBits(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

// TestPackBitsRoundTrip: UnpackBits(PackBits(v)) is the identity at every
// width, including widths whose values straddle word boundaries.
func TestPackBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for bits := 1; bits <= 32; bits++ {
		for _, n := range []int{0, 1, 2, 31, 32, 33, 257} {
			vals := make([]uint32, n)
			mask := uint32(0xFFFFFFFF)
			if bits < 32 {
				mask = 1<<uint(bits) - 1
			}
			for i := range vals {
				vals[i] = rng.Uint32() & mask
			}
			packed := PackBits(vals, bits)
			if len(packed) != PackedLen(n, bits) {
				t.Fatalf("bits=%d n=%d: packed length %d, want %d", bits, n, len(packed), PackedLen(n, bits))
			}
			got := UnpackBits(packed, n, bits)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("bits=%d n=%d: value %d round-tripped to %d, want %d", bits, n, i, got[i], vals[i])
				}
			}
		}
	}
}

func TestPackBitsRejectsOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackBits accepted a value wider than the image width")
		}
	}()
	PackBits([]uint32{1 << 5}, 5)
}

// TestZeroLengthCopyChargesSetupOnly pins the transfer cost split: a
// zero-length copy programs the DMA engine (fixed setup time) but moves no
// bytes, so it contributes to the setup term and nothing to the volume term.
func TestZeroLengthCopyChargesSetupOnly(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(16)
	defer buf.Free()

	if err := d.CopyH2D(buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyD2H(nil, buf, 0); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	setup := K20Config().TransferSetupNs
	if m.H2DSetupNs != setup || m.D2HSetupNs != setup {
		t.Fatalf("zero-length copies charged setup %.0f/%.0f ns, want %.0f each",
			m.H2DSetupNs, m.D2HSetupNs, setup)
	}
	if m.H2DVolumeNs != 0 || m.D2HVolumeNs != 0 {
		t.Fatalf("zero-length copies charged volume %.0f/%.0f ns, want 0", m.H2DVolumeNs, m.D2HVolumeNs)
	}
	if m.H2DBytes != 0 || m.D2HBytes != 0 {
		t.Fatalf("zero-length copies moved %d/%d bytes, want 0", m.H2DBytes, m.D2HBytes)
	}
	if m.H2DTimeNs != m.H2DSetupNs+m.H2DVolumeNs || m.D2HTimeNs != m.D2HSetupNs+m.D2HVolumeNs {
		t.Fatalf("transfer time is not setup+volume: %+v", m)
	}
}

// TestMetricsTransferSplit: a real copy's time decomposes exactly into the
// fixed setup and the byte-proportional volume, and Sub carries the split.
func TestMetricsTransferSplit(t *testing.T) {
	cfg := K20Config()
	d := MustNew(cfg)
	buf := d.MustMalloc(4096)
	defer buf.Free()
	before := d.Metrics()

	data := make([]uint32, 4096)
	if err := d.CopyH2D(buf, 0, data); err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, 1024)
	if err := d.CopyD2H(out, buf, 0); err != nil {
		t.Fatal(err)
	}

	m := d.Metrics().Sub(before)
	wantH2DBytes := int64(4096) * WordBytes
	wantD2HBytes := int64(1024) * WordBytes
	if m.H2DBytes != wantH2DBytes || m.D2HBytes != wantD2HBytes {
		t.Fatalf("moved %d/%d bytes, want %d/%d", m.H2DBytes, m.D2HBytes, wantH2DBytes, wantD2HBytes)
	}
	if m.H2DSetupNs != cfg.TransferSetupNs || m.D2HSetupNs != cfg.TransferSetupNs {
		t.Fatalf("setup %.0f/%.0f ns, want %.0f per copy", m.H2DSetupNs, m.D2HSetupNs, cfg.TransferSetupNs)
	}
	wantH2DVol := float64(wantH2DBytes) / cfg.H2DBandwidthBps * 1e9
	wantD2HVol := float64(wantD2HBytes) / cfg.D2HBandwidthBps * 1e9
	if m.H2DVolumeNs != wantH2DVol || m.D2HVolumeNs != wantD2HVol {
		t.Fatalf("volume %.0f/%.0f ns, want %.0f/%.0f", m.H2DVolumeNs, m.D2HVolumeNs, wantH2DVol, wantD2HVol)
	}
	if m.H2DTimeNs != m.H2DSetupNs+m.H2DVolumeNs || m.D2HTimeNs != m.D2HSetupNs+m.D2HVolumeNs {
		t.Fatalf("transfer time is not setup+volume: %+v", m)
	}
}
