package gpusim

import "fmt"

// Stream is an ordered queue of device work, the analogue of a CUDA stream.
// Work enqueued on a stream runs in order; work on different streams may
// overlap, and async copies overlap kernel execution (the K20 has dedicated
// copy engines). The paper's implementation is synchronous ("data movement
// operations implemented in current Thrust [are] synchronous") and names
// asynchronous transfer as the improvement that would hide the Data_g→c
// overhead of Table I; streams realize that improvement for the ablation.
type Stream struct {
	dev   *Device
	ready float64 // simulated time at which all enqueued work completes
}

// NewStream creates an empty stream on the device.
func (d *Device) NewStream() *Stream { return &Stream{dev: d} }

// Synchronize blocks the host until all work enqueued on the stream is
// complete, advancing the host's virtual clock.
func (s *Stream) Synchronize() {
	d := s.dev
	d.mu.Lock()
	if s.ready > d.hostClock {
		d.hostClock = s.ready
	}
	d.mu.Unlock()
}

// transferCost returns the simulated duration of moving n bytes at bw.
func (d *Device) transferCost(bytes int64, bw float64) float64 {
	return d.cfg.TransferSetupNs + float64(bytes)/bw*1e9
}

// transferVolumeNs returns only the bandwidth-proportional part of a
// transfer: zero for a zero-length copy, which still pays TransferSetupNs
// (the DMA descriptor is programmed whether or not it moves data).
func (d *Device) transferVolumeNs(bytes int64, bw float64) float64 {
	return float64(bytes) / bw * 1e9
}

// CopyH2D copies len(src) words from host memory into buf starting at word
// offset dst. Synchronous: the host clock advances past completion
// (Thrust-style, the paper's mode).
func (d *Device) CopyH2D(buf *Buffer, dst int, src []uint32) error {
	return d.copyH2D(buf, dst, src, nil)
}

// CopyH2DAsync is CopyH2D enqueued on a stream; the host does not wait.
func (d *Device) CopyH2DAsync(s *Stream, buf *Buffer, dst int, src []uint32) error {
	return d.copyH2D(buf, dst, src, s)
}

func (d *Device) copyH2D(buf *Buffer, dst int, src []uint32, s *Stream) error {
	if buf.freed {
		return fmt.Errorf("gpusim: CopyH2D to freed buffer")
	}
	if dst < 0 || dst+len(src) > len(buf.words) {
		return fmt.Errorf("gpusim: CopyH2D range [%d,%d) outside buffer of %d words",
			dst, dst+len(src), len(buf.words))
	}
	if d.faultCheck(FaultH2D).Fail {
		// The DMA setup cost is burned even though no data moved.
		d.chargeFault("H2D-fault", d.cfg.TransferSetupNs)
		return fmt.Errorf("gpusim: CopyH2D of %d words: %w", len(src), ErrTransferFault)
	}
	copy(buf.words[dst:], src)
	bytes := int64(len(src)) * WordBytes
	volume := d.transferVolumeNs(bytes, d.cfg.H2DBandwidthBps)
	d.scheduleCopy(d.cfg.TransferSetupNs, volume, bytes, true, s)
	return nil
}

// CopyD2H copies len(dst) words from buf starting at word offset src into
// host memory. Synchronous.
func (d *Device) CopyD2H(dst []uint32, buf *Buffer, src int) error {
	return d.copyD2H(dst, buf, src, nil)
}

// CopyD2HAsync is CopyD2H enqueued on a stream. The destination slice is
// logically owned by the device until the stream is synchronized.
func (d *Device) CopyD2HAsync(s *Stream, dst []uint32, buf *Buffer, src int) error {
	return d.copyD2H(dst, buf, src, s)
}

func (d *Device) copyD2H(dst []uint32, buf *Buffer, src int, s *Stream) error {
	if buf.freed {
		return fmt.Errorf("gpusim: CopyD2H from freed buffer")
	}
	if src < 0 || src+len(dst) > len(buf.words) {
		return fmt.Errorf("gpusim: CopyD2H range [%d,%d) outside buffer of %d words",
			src, src+len(dst), len(buf.words))
	}
	if d.faultCheck(FaultD2H).Fail {
		d.chargeFault("D2H-fault", d.cfg.TransferSetupNs)
		return fmt.Errorf("gpusim: CopyD2H of %d words: %w", len(dst), ErrTransferFault)
	}
	copy(dst, buf.words[src:])
	bytes := int64(len(dst)) * WordBytes
	volume := d.transferVolumeNs(bytes, d.cfg.D2HBandwidthBps)
	d.scheduleCopy(d.cfg.TransferSetupNs, volume, bytes, false, s)
	return nil
}

// scheduleCopy places a transfer on the copy-engine timeline. A stream copy
// additionally waits for prior stream work and does not stall the host.
// A synchronous copy implicitly waits for outstanding kernels that produced
// its source (matching CUDA's default-stream semantics) and stalls the host.
// The duration is setupNs + volumeNs; the two parts are accounted
// separately in Metrics so the fixed per-call cost and the byte-volume cost
// stay distinguishable (a zero-length copy has volumeNs == 0, bytes == 0).
func (d *Device) scheduleCopy(setupNs, volumeNs float64, bytes int64, h2d bool, s *Stream) {
	cost := setupNs + volumeNs
	d.mu.Lock()
	defer d.mu.Unlock()
	start := d.hostClock
	if s != nil {
		if s.ready > start {
			start = s.ready
		}
	} else if d.computeFree > start {
		// Default-stream ordering: the copy begins after in-flight kernels.
		start = d.computeFree
	}
	if d.copyFree > start {
		start = d.copyFree
	}
	end := start + cost
	d.copyFree = end
	dir := "D2H"
	if h2d {
		dir = "H2D"
	}
	d.traceAdd(dir, "copy", start, end)
	if s == nil {
		d.hostClock = end
	} else {
		s.ready = end
	}
	if h2d {
		d.metrics.H2DTimeNs += cost
		d.metrics.H2DSetupNs += setupNs
		d.metrics.H2DVolumeNs += volumeNs
		d.metrics.H2DBytes += bytes
	} else {
		d.metrics.D2HTimeNs += cost
		d.metrics.D2HSetupNs += setupNs
		d.metrics.D2HVolumeNs += volumeNs
		d.metrics.D2HBytes += bytes
	}
}
