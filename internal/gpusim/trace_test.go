package gpusim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceRecordsIntervals(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableTracing()
	buf := d.MustMalloc(1024)
	defer buf.Free()
	_ = d.CopyH2D(buf, 0, make([]uint32, 1024))
	d.NextKernelName("work")
	_ = d.Launch(16, 256, func(ctx *ThreadCtx) { ctx.Ops(100) })
	d.AdvanceHost(5000)
	host := make([]uint32, 1024)
	_ = d.CopyD2H(host, buf, 0)

	tr := d.Trace()
	if len(tr) != 4 {
		t.Fatalf("%d trace events, want 4", len(tr))
	}
	wantTracks := []string{"copy", "compute", "host", "copy"}
	wantNames := []string{"H2D", "work", "host-work", "D2H"}
	for i, e := range tr {
		if e.Track != wantTracks[i] || e.Name != wantNames[i] {
			t.Fatalf("event %d = %+v, want %s/%s", i, e, wantTracks[i], wantNames[i])
		}
		if e.EndNs <= e.StartNs {
			t.Fatalf("event %d has non-positive duration", i)
		}
		if i > 0 && e.StartNs < tr[i-1].StartNs {
			t.Fatalf("events out of schedule order")
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := MustNew(K20Config())
	_ = d.Launch(1, 32, func(ctx *ThreadCtx) {})
	if len(d.Trace()) != 0 {
		t.Fatal("trace recorded while disabled")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableTracing()
	d.NextKernelName("alpha")
	_ = d.Launch(4, 64, func(ctx *ThreadCtx) { ctx.Ops(10) })
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) != 1 {
		t.Fatalf("traceEvents = %v", doc["traceEvents"])
	}
	ev := events[0].(map[string]any)
	if ev["name"] != "alpha" || ev["ph"] != "X" {
		t.Fatalf("event = %v", ev)
	}
}
