package gpusim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceRecordsIntervals(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableTracing()
	buf := d.MustMalloc(1024)
	defer buf.Free()
	_ = d.CopyH2D(buf, 0, make([]uint32, 1024))
	d.NextKernelName("work")
	_ = d.Launch(16, 256, func(ctx *ThreadCtx) { ctx.Ops(100) })
	d.AdvanceHost(5000)
	host := make([]uint32, 1024)
	_ = d.CopyD2H(host, buf, 0)

	tr := d.Trace()
	if len(tr) != 4 {
		t.Fatalf("%d trace events, want 4", len(tr))
	}
	wantTracks := []string{"copy", "compute", "host", "copy"}
	wantNames := []string{"H2D", "work", "host-work", "D2H"}
	for i, e := range tr {
		if e.Track != wantTracks[i] || e.Name != wantNames[i] {
			t.Fatalf("event %d = %+v, want %s/%s", i, e, wantTracks[i], wantNames[i])
		}
		if e.EndNs <= e.StartNs {
			t.Fatalf("event %d has non-positive duration", i)
		}
		if i > 0 && e.StartNs < tr[i-1].StartNs {
			t.Fatalf("events out of schedule order")
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := MustNew(K20Config())
	_ = d.Launch(1, 32, func(ctx *ThreadCtx) {})
	if len(d.Trace()) != 0 {
		t.Fatal("trace recorded while disabled")
	}
}

// TestWriteChromeTraceEmpty is the regression test for the null-traceEvents
// bug: an empty trace must serialize "traceEvents" as [], never null —
// Perfetto and chrome://tracing both reject null.
func TestWriteChromeTraceEmpty(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableTracing() // enabled but nothing recorded
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"traceEvents":null`)) {
		t.Fatalf("empty trace serialized null traceEvents: %s", buf.Bytes())
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace output is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents decoded as nil; want empty array")
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace exported %d events", len(doc.TraceEvents))
	}
}

// TestWriteChromeTraceSorted pins the export order contract: events leave
// WriteChromeTrace sorted by (StartNs, Track, Name) no matter what order the
// schedule recorded them in, so concurrent-lane runs export deterministically.
func TestWriteChromeTraceSorted(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableTracing()
	// Adversarial record order: same start times, shuffled tracks and names.
	d.mu.Lock()
	d.traceAdd("zeta", "compute", 100, 200)
	d.traceAdd("alpha", "compute", 100, 150)
	d.traceAdd("D2H", "copy", 100, 130)
	d.traceAdd("beta", "compute", 50, 90)
	d.traceAdd("host-work", "host", 100, 110)
	d.mu.Unlock()
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range doc.TraceEvents {
		got = append(got, ev.Cat+"/"+ev.Name)
	}
	want := []string{"compute/beta", "compute/alpha", "compute/zeta", "copy/D2H", "host/host-work"}
	if len(got) != len(want) {
		t.Fatalf("exported %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("export order %v, want %v", got, want)
		}
	}
	// The in-memory trace still reflects schedule (record) order.
	if tr := d.Trace(); tr[0].Name != "zeta" {
		t.Fatalf("Trace() reordered: first event %q, want zeta", tr[0].Name)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableTracing()
	d.NextKernelName("alpha")
	_ = d.Launch(4, 64, func(ctx *ThreadCtx) { ctx.Ops(10) })
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) != 1 {
		t.Fatalf("traceEvents = %v", doc["traceEvents"])
	}
	ev := events[0].(map[string]any)
	if ev["name"] != "alpha" || ev["ph"] != "X" {
		t.Fatalf("event = %v", ev)
	}
}
