package gpusim

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfilingRecordsKernels(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableProfiling()
	d.NextKernelName("alpha")
	if err := d.Launch(4, 64, func(ctx *ThreadCtx) { ctx.Ops(10) }); err != nil {
		t.Fatal(err)
	}
	d.NextKernelName("beta")
	if err := d.Launch(8, 64, func(ctx *ThreadCtx) { ctx.Ops(10) }); err != nil {
		t.Fatal(err)
	}
	// unnamed launch
	if err := d.Launch(1, 32, func(ctx *ThreadCtx) { ctx.Ops(1) }); err != nil {
		t.Fatal(err)
	}
	p := d.Profile()
	if len(p) != 3 {
		t.Fatalf("%d profile records, want 3", len(p))
	}
	if p[0].Name != "alpha" || p[1].Name != "beta" || p[2].Name != "" {
		t.Fatalf("names = %q %q %q", p[0].Name, p[1].Name, p[2].Name)
	}
	if p[0].Grid != 4 || p[0].Block != 64 || p[0].Threads != 256 {
		t.Fatalf("record 0 geometry = %+v", p[0])
	}
	if p[0].DurationNs <= 0 {
		t.Fatal("non-positive kernel duration")
	}
	if p[0].Occupancy <= 0 || p[0].Occupancy > 1 {
		t.Fatalf("occupancy = %v", p[0].Occupancy)
	}
}

func TestProfilingOffByDefault(t *testing.T) {
	d := MustNew(K20Config())
	d.NextKernelName("x")
	if err := d.Launch(1, 32, func(ctx *ThreadCtx) {}); err != nil {
		t.Fatal(err)
	}
	if len(d.Profile()) != 0 {
		t.Fatal("profiling recorded while disabled")
	}
}

func TestSummarizeProfile(t *testing.T) {
	d := MustNew(K20Config())
	d.EnableProfiling()
	for i := 0; i < 3; i++ {
		d.NextKernelName("hot")
		_ = d.Launch(32, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) })
	}
	d.NextKernelName("cold")
	_ = d.Launch(1, 32, func(ctx *ThreadCtx) { ctx.Ops(1) })

	sum := d.SummarizeProfile()
	if len(sum) != 2 {
		t.Fatalf("%d summary rows, want 2", len(sum))
	}
	if sum[0].Name != "hot" || sum[0].Launches != 3 {
		t.Fatalf("heaviest = %+v", sum[0])
	}
	if sum[0].TotalNs <= sum[1].TotalNs {
		t.Fatal("summary not sorted by total time")
	}
	var buf bytes.Buffer
	d.WriteProfile(&buf)
	if !strings.Contains(buf.String(), "hot") || !strings.Contains(buf.String(), "kernel") {
		t.Fatalf("WriteProfile output incomplete:\n%s", buf.String())
	}
}

func TestEvents(t *testing.T) {
	d := MustNew(K20Config())
	e0 := d.RecordEvent()
	if err := d.Launch(64, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	e1 := d.RecordEvent()
	if ElapsedNs(e0, e1) <= 0 {
		t.Fatal("host events did not advance")
	}

	s := d.NewStream()
	s0 := s.RecordEvent()
	if err := d.LaunchOnStream(s, 64, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	s1 := s.RecordEvent()
	if ElapsedNs(s0, s1) <= 0 {
		t.Fatal("stream events did not advance")
	}
	// The host clock has not moved past the stream work.
	e2 := d.RecordEvent()
	if ElapsedNs(e1, e2) != 0 {
		t.Fatal("stream launch advanced host clock")
	}
}
