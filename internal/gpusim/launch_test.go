package gpusim

import (
	"math"
	"testing"
)

// kernels in tests read/write real buffer contents and record their traffic.

func TestLaunchExecutesEveryThread(t *testing.T) {
	d := MustNew(K20Config())
	const n = 10_000
	out := d.MustMalloc(n)
	defer out.Free()
	err := d.Launch((n+255)/256, 256, func(ctx *ThreadCtx) {
		i := ctx.GlobalID()
		if i >= n {
			return
		}
		out.Words()[i] = uint32(i * 7)
		ctx.Ops(1)
		ctx.GlobalWrite(out, i, 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	host := make([]uint32, n)
	if err := d.CopyD2H(host, out, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range host {
		if v != uint32(i*7) {
			t.Fatalf("element %d = %d, want %d", i, v, i*7)
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	d := MustNew(K20Config())
	if err := d.Launch(0, 32, func(*ThreadCtx) {}); err == nil {
		t.Error("grid 0 accepted")
	}
	if err := d.Launch(1, 0, func(*ThreadCtx) {}); err == nil {
		t.Error("block 0 accepted")
	}
	if err := d.Launch(1, 2048, func(*ThreadCtx) {}); err == nil {
		t.Error("block 2048 accepted")
	}
}

func TestLaunchAdvancesClockAndMetrics(t *testing.T) {
	d := MustNew(K20Config())
	before := d.HostTime()
	err := d.Launch(64, 256, func(ctx *ThreadCtx) { ctx.Ops(100) })
	if err != nil {
		t.Fatal(err)
	}
	if d.HostTime() <= before {
		t.Fatal("synchronous launch did not advance host clock")
	}
	m := d.Metrics()
	if m.KernelLaunches != 1 {
		t.Fatalf("KernelLaunches = %d, want 1", m.KernelLaunches)
	}
	if m.ThreadOps != 64*256*100 {
		t.Fatalf("ThreadOps = %d, want %d", m.ThreadOps, 64*256*100)
	}
	// Converged warps: serialized ops equal raw ops.
	if m.WarpSerialOps != m.ThreadOps {
		t.Fatalf("converged kernel has WarpSerialOps %d != ThreadOps %d",
			m.WarpSerialOps, m.ThreadOps)
	}
	if m.DivergenceOverhead() != 0 {
		t.Fatalf("DivergenceOverhead = %v, want 0", m.DivergenceOverhead())
	}
}

func TestDivergenceModel(t *testing.T) {
	d := MustNew(K20Config())
	// One lane per warp does 320 ops, the rest do 10: warp issues 320,
	// occupying 32 lane-slots each -> serialized = 320*32 per warp.
	err := d.Launch(4, 64, func(ctx *ThreadCtx) {
		if ctx.Thread%32 == 0 {
			ctx.Ops(320)
		} else {
			ctx.Ops(10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	warps := int64(4 * 64 / 32)
	wantSerial := warps * 320 * 32
	if m.WarpSerialOps != wantSerial {
		t.Fatalf("WarpSerialOps = %d, want %d", m.WarpSerialOps, wantSerial)
	}
	if m.DivergenceOverhead() < 0.9 {
		t.Fatalf("DivergenceOverhead = %v, want > 0.9 for highly divergent kernel",
			m.DivergenceOverhead())
	}
}

func TestCoalescedAccessPattern(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(32 * 100)
	defer buf.Free()
	// Lane l reads elements l, l+32, l+64, ... — perfectly coalesced:
	// each step the warp touches one 128-byte segment.
	err := d.Launch(1, 32, func(ctx *ThreadCtx) {
		ctx.GlobalRead(buf, ctx.Thread, 100, 32)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.GlobalAccesses != 3200 {
		t.Fatalf("GlobalAccesses = %d, want 3200", m.GlobalAccesses)
	}
	if m.GlobalTransactions != 100 {
		t.Fatalf("GlobalTransactions = %d, want 100 (coalesced)", m.GlobalTransactions)
	}
	if eff := m.CoalescingEfficiency(); eff != 1 {
		t.Fatalf("CoalescingEfficiency = %v, want 1", eff)
	}
}

func TestUncoalescedAccessPattern(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(32 * 1000)
	defer buf.Free()
	// Lane l reads its own contiguous 1000-word region — the adjacency-list
	// pattern: every step the 32 lanes touch 32 distinct segments.
	err := d.Launch(1, 32, func(ctx *ThreadCtx) {
		ctx.GlobalRead(buf, ctx.Thread*1000, 1000, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.GlobalAccesses != 32000 {
		t.Fatalf("GlobalAccesses = %d, want 32000", m.GlobalAccesses)
	}
	// 32 segments per step × 1000 steps
	if m.GlobalTransactions != 32000 {
		t.Fatalf("GlobalTransactions = %d, want 32000 (uncoalesced)", m.GlobalTransactions)
	}
	if eff := m.CoalescingEfficiency(); eff > 0.05 {
		t.Fatalf("CoalescingEfficiency = %v, want ≈ 1/32", eff)
	}
}

func TestRaggedAccessActiveSetShrinks(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(64 * 64)
	defer buf.Free()
	// Lane l reads l+1 words from its own segment-aligned region: at step t
	// only lanes with count > t are active.
	err := d.Launch(1, 32, func(ctx *ThreadCtx) {
		ctx.GlobalRead(buf, ctx.Thread*64, ctx.Thread+1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	// accesses = 1+2+...+32 = 528
	if m.GlobalAccesses != 528 {
		t.Fatalf("GlobalAccesses = %d, want 528", m.GlobalAccesses)
	}
	// Regions are 64-word (2-segment) apart so every active lane is its own
	// segment: transactions = Σ_t active(t) = Σ counts = 528.
	if m.GlobalTransactions != 528 {
		t.Fatalf("GlobalTransactions = %d, want 528", m.GlobalTransactions)
	}
}

func TestSameSegmentBroadcast(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(64)
	defer buf.Free()
	// All lanes read the same word 10 times: one segment per step.
	err := d.Launch(1, 32, func(ctx *ThreadCtx) {
		ctx.GlobalRead(buf, 0, 10, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.GlobalTransactions != 10 {
		t.Fatalf("GlobalTransactions = %d, want 10 (broadcast)", m.GlobalTransactions)
	}
}

func TestMixedStrideFallsBackToUncoalesced(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(4096)
	defer buf.Free()
	err := d.Launch(1, 32, func(ctx *ThreadCtx) {
		stride := 1
		if ctx.Thread%2 == 0 {
			stride = 2
		}
		ctx.GlobalRead(buf, ctx.Thread, 5, stride)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Metrics(); m.GlobalTransactions != 32*5 {
		t.Fatalf("GlobalTransactions = %d, want 160 (mixed-stride fallback)", m.GlobalTransactions)
	}
}

func TestRunOverflowChargedUncoalesced(t *testing.T) {
	d := MustNew(K20Config())
	buf := d.MustMalloc(64)
	defer buf.Free()
	err := d.Launch(1, 1, func(ctx *ThreadCtx) {
		for i := 0; i < maxRunsPerThread+10; i++ {
			ctx.GlobalRead(buf, 0, 1, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.GlobalAccesses != maxRunsPerThread+10 {
		t.Fatalf("GlobalAccesses = %d, want %d", m.GlobalAccesses, maxRunsPerThread+10)
	}
}

func TestRooflineComputeVsMemoryBound(t *testing.T) {
	// A compute-heavy kernel's time should scale with ops; a memory-heavy
	// kernel's with transactions.
	d := MustNew(K20Config())
	err := d.Launch(256, 256, func(ctx *ThreadCtx) { ctx.Ops(10_000) })
	if err != nil {
		t.Fatal(err)
	}
	computeTime := d.HostTime()
	occupancy := float64(256*256) / float64(d.Config().SaturationThreads) // < 1 here
	wantCompute := float64(256*256*10_000) / (2496 * 706e6 * 0.85) * 1e9 / occupancy
	if math.Abs(computeTime-wantCompute-d.Config().KernelLaunchNs) > wantCompute*0.01 {
		t.Fatalf("compute-bound kernel time = %v ns, want ≈ %v ns", computeTime, wantCompute)
	}

	d2 := MustNew(K20Config())
	buf := d2.MustMalloc(1 << 20)
	defer buf.Free()
	err = d2.Launch(128, 256, func(ctx *ThreadCtx) {
		// coalesced read of 32 words per thread
		ctx.GlobalRead(buf, (ctx.GlobalID()%1024)*32, 32, 1)
		ctx.Ops(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := d2.Metrics()
	if m.MemoryTimeNs <= m.ComputeTimeNs {
		t.Fatalf("memory-heavy kernel not memory bound: mem %v vs compute %v",
			m.MemoryTimeNs, m.ComputeTimeNs)
	}
}

func TestLaunchOnStreamOverlapsHost(t *testing.T) {
	d := MustNew(K20Config())
	s := d.NewStream()
	before := d.HostTime()
	err := d.LaunchOnStream(s, 64, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) })
	if err != nil {
		t.Fatal(err)
	}
	if d.HostTime() != before {
		t.Fatal("stream launch advanced the host clock")
	}
	s.Synchronize()
	if d.HostTime() <= before {
		t.Fatal("synchronize after stream launch did not advance host clock")
	}
}

func TestStreamOrdering(t *testing.T) {
	// Two kernels on one stream serialize; their combined completion time is
	// the sum of their durations.
	d := MustNew(K20Config())
	s := d.NewStream()
	if err := d.LaunchOnStream(s, 64, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	s.Synchronize()
	t1 := d.HostTime()
	if err := d.LaunchOnStream(s, 64, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	s.Synchronize()
	t2 := d.HostTime()
	if math.Abs((t2-t1)-t1) > t1*0.01 {
		t.Fatalf("second kernel took %v, first took %v; want equal", t2-t1, t1)
	}
}

func TestCopyOverlapsKernelOnStreams(t *testing.T) {
	// With separate copy and compute engines, an async D2H on one stream
	// overlaps a kernel on another: total elapsed < sum of individual times.
	d := MustNew(K20Config())
	buf := d.MustMalloc(1 << 22)
	defer buf.Free()
	host := make([]uint32, 1<<22)

	// Measure each in isolation.
	dIso := MustNew(K20Config())
	bufIso := dIso.MustMalloc(1 << 22)
	defer bufIso.Free()
	if err := dIso.CopyD2H(host, bufIso, 0); err != nil {
		t.Fatal(err)
	}
	copyTime := dIso.HostTime()
	dIso2 := MustNew(K20Config())
	if err := dIso2.Launch(4096, 256, func(ctx *ThreadCtx) { ctx.Ops(4000) }); err != nil {
		t.Fatal(err)
	}
	kernelTime := dIso2.HostTime()

	sCopy, sKern := d.NewStream(), d.NewStream()
	if err := d.CopyD2HAsync(sCopy, host, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.LaunchOnStream(sKern, 4096, 256, func(ctx *ThreadCtx) { ctx.Ops(4000) }); err != nil {
		t.Fatal(err)
	}
	sCopy.Synchronize()
	sKern.Synchronize()
	elapsed := d.HostTime()
	if elapsed >= copyTime+kernelTime*0.999 {
		t.Fatalf("no overlap: elapsed %v vs copy %v + kernel %v", elapsed, copyTime, kernelTime)
	}
}

func TestDefaultStreamCopyWaitsForKernel(t *testing.T) {
	// A synchronous copy must not begin before an in-flight kernel that may
	// produce its data has finished (default-stream semantics).
	d := MustNew(K20Config())
	s := d.NewStream()
	buf := d.MustMalloc(1024)
	defer buf.Free()
	if err := d.LaunchOnStream(s, 1024, 256, func(ctx *ThreadCtx) { ctx.Ops(100000) }); err != nil {
		t.Fatal(err)
	}
	host := make([]uint32, 1024)
	if err := d.CopyD2H(host, buf, 0); err != nil {
		t.Fatal(err)
	}
	// host clock must now be past the kernel completion + copy.
	m := d.Metrics()
	if d.HostTime() < m.KernelTimeNs {
		t.Fatalf("copy completed at %v before kernel finished at %v", d.HostTime(), m.KernelTimeNs)
	}
}

func BenchmarkLaunchSmall(b *testing.B) {
	d := MustNew(K20Config())
	for i := 0; i < b.N; i++ {
		_ = d.Launch(16, 256, func(ctx *ThreadCtx) { ctx.Ops(10) })
	}
}

func TestOccupancyScaling(t *testing.T) {
	// A small launch runs at proportionally lower throughput than a
	// saturating one: doubling the threads of an under-saturated launch
	// (same per-thread work) should leave the kernel time unchanged,
	// because throughput doubles with occupancy.
	cfg := K20Config()
	d1 := MustNew(cfg)
	if err := d1.Launch(16, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	small := d1.HostTime() - cfg.KernelLaunchNs

	d2 := MustNew(cfg)
	if err := d2.Launch(32, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	double := d2.HostTime() - cfg.KernelLaunchNs
	if math.Abs(small-double) > small*0.01 {
		t.Fatalf("under-saturated launches: 16-block %v ns vs 32-block %v ns, want equal", small, double)
	}

	// Past saturation, time scales with work again.
	sat := cfg.SaturationThreads / 256 // blocks at saturation
	d3 := MustNew(cfg)
	if err := d3.Launch(sat*2, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	d4 := MustNew(cfg)
	if err := d4.Launch(sat*4, 256, func(ctx *ThreadCtx) { ctx.Ops(1000) }); err != nil {
		t.Fatal(err)
	}
	t3 := d3.HostTime() - cfg.KernelLaunchNs
	t4 := d4.HostTime() - cfg.KernelLaunchNs
	if math.Abs(t4-2*t3) > t3*0.02 {
		t.Fatalf("saturated launches: 2x work took %v vs %v, want 2x", t4, t3)
	}
}

func TestOccupancyDisabled(t *testing.T) {
	cfg := K20Config()
	cfg.SaturationThreads = 0
	d := MustNew(cfg)
	if err := d.Launch(1, 32, func(ctx *ThreadCtx) { ctx.Ops(2496 * 100) }); err != nil {
		t.Fatal(err)
	}
	want := float64(32*2496*100)/(2496*706e6*0.85)*1e9 + cfg.KernelLaunchNs
	if math.Abs(d.HostTime()-want) > want*0.01 {
		t.Fatalf("occupancy-disabled time = %v, want %v", d.HostTime(), want)
	}
}
