package gpusim

import (
	"strings"
	"testing"
)

func TestLeakCheck(t *testing.T) {
	d := MustNew(K20Config())
	if err := d.LeakCheck(); err != nil {
		t.Fatalf("clean device reported a leak: %v", err)
	}
	a := d.MustMalloc(10)
	b := d.MustMalloc(6)
	err := d.LeakCheck()
	if err == nil {
		t.Fatal("two live buffers not reported")
	}
	if !strings.Contains(err.Error(), "2 device buffers") ||
		!strings.Contains(err.Error(), "64 bytes") {
		t.Fatalf("leak message missing counts: %v", err)
	}
	a.Free()
	b.Free()
	if err := d.LeakCheck(); err != nil {
		t.Fatalf("after freeing everything: %v", err)
	}
}
