package gpusim

import "fmt"

// Buffer is a device global-memory allocation holding 32-bit words (all
// gpClust device data — vertex ids, hashed permutations, segment offsets —
// is uint32). Host code must not touch the contents directly; it moves data
// with CopyH2D/CopyD2H (or their async variants). Kernel code reads and
// writes via the slice returned by Words and records its access pattern on
// the ThreadCtx for the coalescing model.
type Buffer struct {
	dev   *Device
	words []uint32
	base  int64 // virtual word address of the allocation (coalescing model)
	freed bool
}

// WordBytes is the size of one buffer element.
const WordBytes = 4

// Malloc allocates a device buffer of n 32-bit words. It fails with
// ErrOutOfDeviceMemory when the device's global memory would be exceeded.
func (d *Device) Malloc(n int) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpusim: Malloc(%d): negative size", n)
	}
	bytes := int64(n) * WordBytes
	if d.faultCheck(FaultMalloc).Fail {
		return nil, fmt.Errorf("gpusim: Malloc(%d words): injected allocation failure: %w",
			n, ErrOutOfDeviceMemory)
	}
	d.mu.Lock()
	if d.allocated+bytes > d.cfg.GlobalMemBytes {
		d.mu.Unlock()
		return nil, fmt.Errorf("gpusim: Malloc(%d words = %d bytes) with %d free: %w",
			n, bytes, d.cfg.GlobalMemBytes-d.allocated, ErrOutOfDeviceMemory)
	}
	d.allocated += bytes
	if d.allocated > d.peakAlloc {
		d.peakAlloc = d.allocated
	}
	d.liveBufs++
	base := d.nextBase
	// Align allocations to transaction boundaries, like cudaMalloc.
	d.nextBase += (int64(n) + 31) &^ 31
	d.mu.Unlock()
	return &Buffer{dev: d, words: make([]uint32, n), base: base}, nil
}

// MustMalloc is Malloc that panics on failure (for tests and fixed-size
// scratch that the caller has already sized against FreeMemory).
func (d *Device) MustMalloc(n int) *Buffer {
	b, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer's device memory. Double frees panic, as they
// indicate a driver bug.
func (b *Buffer) Free() {
	if b.freed {
		panic("gpusim: double free of device buffer")
	}
	b.freed = true
	b.dev.mu.Lock()
	b.dev.allocated -= int64(len(b.words)) * WordBytes
	b.dev.liveBufs--
	b.dev.mu.Unlock()
	b.words = nil
}

// LeakCheck reports an error when device buffers are still allocated — the
// teardown check the invariants build (-tags invariants) asserts after every
// clustering run. It is always compiled so tests and tools can call it
// unconditionally.
func (d *Device) LeakCheck() error {
	d.mu.Lock()
	live, bytes := d.liveBufs, d.allocated
	d.mu.Unlock()
	if live == 0 && bytes == 0 {
		return nil
	}
	return fmt.Errorf("gpusim: leak check: %d device buffers (%d bytes) still allocated at teardown", live, bytes)
}

// Len returns the buffer size in words.
func (b *Buffer) Len() int { return len(b.words) }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(len(b.words)) * WordBytes }

// Words exposes the underlying storage to kernel code. Host-side use outside
// Launch bodies defeats the simulation's transfer accounting; the transfer
// API (CopyH2D/CopyD2H) is the host's interface.
func (b *Buffer) Words() []uint32 {
	if b.freed {
		panic("gpusim: use of freed device buffer")
	}
	return b.words
}
