package gpusim

import (
	"errors"
	"testing"
)

// scriptInjector fails the Nth consultation (1-based) of one kind, or
// stretches the Nth slow-SM consultation.
type scriptInjector struct {
	kind FaultKind
	op   int64
	slow float64
	seen map[FaultKind]int64
}

func newScriptInjector(kind FaultKind, op int64, slow float64) *scriptInjector {
	return &scriptInjector{kind: kind, op: op, slow: slow, seen: map[FaultKind]int64{}}
}

func (si *scriptInjector) Decide(kind FaultKind, nowNs float64) FaultDecision {
	si.seen[kind]++
	if kind != si.kind || si.seen[kind] != si.op {
		return FaultDecision{}
	}
	if kind == FaultSlowSM {
		return FaultDecision{Slow: si.slow}
	}
	return FaultDecision{Fail: true}
}

func TestFaultInjectTransfers(t *testing.T) {
	d := MustNew(SmallConfig())
	buf := d.MustMalloc(64)
	defer buf.Free()
	src := make([]uint32, 64)
	for i := range src {
		src[i] = uint32(i + 1)
	}

	d.SetFaultInjector(newScriptInjector(FaultH2D, 1, 0))
	err := d.CopyH2D(buf, 0, src)
	if !errors.Is(err, ErrTransferFault) || !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("injected H2D: got %v, want ErrTransferFault", err)
	}
	// The failed copy must not have moved any data.
	got := make([]uint32, 64)
	d.SetFaultInjector(nil)
	if err := d.CopyD2H(got, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("word %d = %d after failed H2D, want 0", i, v)
		}
	}
	// A clean retry succeeds and the device is fully usable.
	if err := d.CopyH2D(buf, 0, src); err != nil {
		t.Fatal(err)
	}
	d.SetFaultInjector(newScriptInjector(FaultD2H, 1, 0))
	if err := d.CopyD2H(got, buf, 0); !errors.Is(err, ErrTransferFault) {
		t.Fatalf("injected D2H: got %v, want ErrTransferFault", err)
	}
	d.SetFaultInjector(nil)
	if err := d.CopyD2H(got, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != src[i] {
			t.Fatalf("word %d = %d after retry, want %d", i, v, src[i])
		}
	}
}

func TestFaultInjectMallocAndKernel(t *testing.T) {
	d := MustNew(SmallConfig())
	d.SetFaultInjector(newScriptInjector(FaultMalloc, 1, 0))
	if _, err := d.Malloc(8); !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("injected Malloc: got %v, want ErrOutOfDeviceMemory", err)
	}
	if d.AllocatedBuffers() != 0 {
		t.Fatalf("failed Malloc left %d live buffers", d.AllocatedBuffers())
	}
	d.SetFaultInjector(newScriptInjector(FaultKernel, 1, 0))
	err := d.Launch(1, 32, func(ctx *ThreadCtx) { ctx.Ops(1) })
	if !errors.Is(err, ErrLaunchFault) || !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("injected launch: got %v, want ErrLaunchFault", err)
	}
	if d.Metrics().KernelLaunches != 0 {
		t.Fatalf("failed launch counted in metrics: %+v", d.Metrics())
	}
	d.SetFaultInjector(nil)
	if err := d.Launch(1, 32, func(ctx *ThreadCtx) { ctx.Ops(1) }); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().KernelLaunches != 1 {
		t.Fatalf("retry after injected launch fault: %d launches", d.Metrics().KernelLaunches)
	}
}

func TestFaultSlowSMStretchesKernelOnly(t *testing.T) {
	work := func(ctx *ThreadCtx) { ctx.Ops(1000) }

	clean := MustNew(SmallConfig())
	if err := clean.Launch(4, 64, work); err != nil {
		t.Fatal(err)
	}
	cleanNs := clean.Metrics().KernelTimeNs

	slow := MustNew(SmallConfig())
	slow.SetFaultInjector(newScriptInjector(FaultSlowSM, 1, 8))
	if err := slow.Launch(4, 64, work); err != nil {
		t.Fatalf("slow-SM spike must not fail the launch: %v", err)
	}
	slowNs := slow.Metrics().KernelTimeNs
	launchNs := slow.Config().KernelLaunchNs
	wantBody := (cleanNs - launchNs) * 8
	if gotBody := slowNs - launchNs; gotBody < wantBody*0.999 || gotBody > wantBody*1.001 {
		t.Fatalf("slow-SM body %.1fns, want %.1fns (clean body %.1fns × 8)",
			gotBody, wantBody, cleanNs-launchNs)
	}
}

func TestFaultChargesFixedCostOnFailure(t *testing.T) {
	d := MustNew(SmallConfig())
	buf := d.MustMalloc(16)
	defer buf.Free()
	d.Synchronize()
	before := d.HostTime()
	d.SetFaultInjector(newScriptInjector(FaultH2D, 1, 0))
	if err := d.CopyH2D(buf, 0, make([]uint32, 16)); err == nil {
		t.Fatal("expected injected H2D fault")
	}
	d.SetFaultInjector(nil)
	if got := d.HostTime() - before; got != d.Config().TransferSetupNs {
		t.Fatalf("failed H2D advanced host clock by %.1fns, want TransferSetupNs=%.1fns",
			got, d.Config().TransferSetupNs)
	}
}
