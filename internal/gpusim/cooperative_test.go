package gpusim

import "testing"

func TestCooperativeBlockReduce(t *testing.T) {
	d := MustNew(K20Config())
	const blocks, threads = 8, 128
	in := d.MustMalloc(blocks * threads)
	out := d.MustMalloc(blocks)
	defer in.Free()
	defer out.Free()

	host := make([]uint32, blocks*threads)
	var wantTotals [blocks]uint32
	for i := range host {
		host[i] = uint32(i % 97)
		wantTotals[i/threads] += host[i]
	}
	if err := d.CopyH2D(in, 0, host); err != nil {
		t.Fatal(err)
	}

	// Classic shared-memory tree reduction with __syncthreads barriers.
	err := d.LaunchCooperative(blocks, threads, threads, func(c *CoopCtx) {
		sh := c.Shared()
		i := c.Block*c.BlockDim + c.Thread
		sh[c.Thread] = in.Words()[i]
		c.GlobalRead(in, i, 1, 1)
		c.SharedAccess(1)
		c.SyncThreads()
		for s := c.BlockDim / 2; s > 0; s /= 2 {
			if c.Thread < s {
				sh[c.Thread] += sh[c.Thread+s]
				c.SharedAccess(2)
				c.Ops(1)
			}
			c.SyncThreads()
		}
		if c.Thread == 0 {
			out.Words()[c.Block] = sh[0]
			c.GlobalWrite(out, c.Block, 1, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	got := make([]uint32, blocks)
	if err := d.CopyD2H(got, out, 0); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		if got[b] != wantTotals[b] {
			t.Fatalf("block %d reduce = %d, want %d", b, got[b], wantTotals[b])
		}
	}
	if m := d.Metrics(); m.KernelLaunches != 1 {
		t.Fatalf("KernelLaunches = %d, want 1", m.KernelLaunches)
	}
}

func TestCooperativeSharedMemLimit(t *testing.T) {
	d := MustNew(K20Config())
	tooMuch := d.Config().SharedMemPerBlock/WordBytes + 1
	err := d.LaunchCooperative(1, 32, tooMuch, func(c *CoopCtx) {})
	if err == nil {
		t.Fatal("over-limit shared memory accepted")
	}
}

func TestCooperativeValidation(t *testing.T) {
	d := MustNew(K20Config())
	if err := d.LaunchCooperative(0, 32, 0, func(c *CoopCtx) {}); err == nil {
		t.Error("grid 0 accepted")
	}
	if err := d.LaunchCooperative(1, 1025, 0, func(c *CoopCtx) {}); err == nil {
		t.Error("block 1025 accepted")
	}
}

func TestBarrierReusable(t *testing.T) {
	// Many barrier phases in one kernel must not deadlock or skew.
	d := MustNew(K20Config())
	const threads = 64
	buf := d.MustMalloc(1)
	defer buf.Free()
	err := d.LaunchCooperative(1, threads, threads, func(c *CoopCtx) {
		sh := c.Shared()
		for round := 0; round < 50; round++ {
			sh[c.Thread] = uint32(round)
			c.SyncThreads()
			// every lane checks a neighbor wrote this round's value
			if sh[(c.Thread+1)%threads] != uint32(round) {
				panic("barrier phase skew")
			}
			c.SyncThreads()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
