package gpusim

import "fmt"

// Packed device images. Residue codes and adjacency values are small
// integers — protein residues fit 5 bits (21-letter alphabet), DNA 2 bits,
// vertex ids whatever the graph needs — yet the buffers shipped over PCIe
// carry them one per 32-bit word (or one per byte for residues). Packing
// them bit-continuously before the H2D copy cuts the bandwidth-proportional
// part of the transfer by the same ratio while leaving results untouched:
// the device unpacks to full-width words (or reads the packed image
// directly in a fused kernel) before any arithmetic, so every downstream
// bit is identical. These helpers define the host-side image format; the
// matching device-side unpack kernel lives in internal/thrust.
//
// Layout: value i occupies bits [i·bits, (i+1)·bits) of a little-endian
// bit stream stored in uint32 words — bit b lives in word b/32 at position
// b%32. A value may straddle a word boundary. The tail of the last word is
// zero-padded, which keeps packing deterministic and images comparable.

// PackedLen returns the number of 32-bit words a packed image of n values
// at the given bit width occupies.
func PackedLen(n, bits int) int {
	if n <= 0 {
		return 0
	}
	return (n*bits + 31) / 32
}

// MinBits returns the smallest bit width able to represent every value in
// vals, at least 1 (an all-zero stream still needs one bit per value).
func MinBits(vals []uint32) int {
	var maxV uint32
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	bits := 1
	for bits < 32 && uint64(maxV) >= 1<<uint(bits) {
		bits++
	}
	return bits
}

// PackBits packs vals into a bit-continuous little-endian word stream at
// the given width. It panics if bits is outside [1,32] or a value does not
// fit — packing is always driven by MinBits or a fixed alphabet width, so
// an overflow is a programming error, not an input condition.
func PackBits(vals []uint32, bits int) []uint32 {
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("gpusim: PackBits width %d outside [1,32]", bits))
	}
	out := make([]uint32, PackedLen(len(vals), bits))
	for i, v := range vals {
		if bits < 32 && v >= 1<<uint(bits) {
			panic(fmt.Sprintf("gpusim: PackBits value %d does not fit %d bits", v, bits))
		}
		bit := i * bits
		word, off := bit/32, uint(bit%32)
		out[word] |= v << off
		if off+uint(bits) > 32 {
			out[word+1] |= v >> (32 - off)
		}
	}
	return out
}

// UnpackBits expands a packed image back to one value per word. It is the
// host-side oracle the device unpack kernel and the fused kernels are
// fuzz-tested against, and the fallback used when a packed upload must be
// expanded without a device.
func UnpackBits(packed []uint32, n, bits int) []uint32 {
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("gpusim: UnpackBits width %d outside [1,32]", bits))
	}
	out := make([]uint32, n)
	mask := uint32(0xFFFFFFFF)
	if bits < 32 {
		mask = 1<<uint(bits) - 1
	}
	for i := range out {
		bit := i * bits
		word, off := bit/32, uint(bit%32)
		v := packed[word] >> off
		if off+uint(bits) > 32 {
			v |= packed[word+1] << (32 - off)
		}
		out[i] = v & mask
	}
	return out
}
