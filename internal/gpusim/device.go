// Package gpusim is a SIMT GPU device simulator written in pure Go. It
// substitutes for the NVIDIA Tesla K20 + CUDA/Thrust platform the paper runs
// on (see DESIGN.md): kernels execute for real (data-parallel Go code over
// goroutine-backed streaming multiprocessors, so all results are bit-exact),
// while a deterministic cost model — roofline compute/memory throughput,
// warp-level divergence, per-warp memory-coalescing analysis, PCIe transfer
// latency/bandwidth, kernel-launch overhead — advances a virtual clock.
// Timing experiments therefore reproduce the paper's *shapes* on any host.
//
// The model implements the architecture of Section II of the paper: threads
// grouped into warps sharing one instruction unit (divergence handled by
// serializing divergent lanes), warps into thread blocks with barrier
// synchronization and per-block shared memory (~100X lower latency than
// global memory), blocks scheduled onto independent SMs, a device global
// memory of limited size (forcing the batch-wise processing of Algorithm 2),
// and explicit host↔device copies over a PCIe-like link with synchronous
// (Thrust-style) and asynchronous (CUDA-stream-style) modes.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
)

// Config describes the simulated device. The zero value is unusable; start
// from K20Config (the paper's card) and adjust.
type Config struct {
	Name string

	NumSMs     int // streaming multiprocessors (K20: 13)
	CoresPerSM int // CUDA cores per SM (K20: 192; 13×192 = 2,496)
	WarpSize   int // threads per warp (32)

	ClockHz float64 // SM core clock (K20: 706 MHz)

	GlobalMemBytes     int64   // device global memory (K20: 5 GB)
	SharedMemPerBlock  int     // per-block shared memory (48 KB)
	GlobalBandwidthBps float64 // global-memory bandwidth (K20: 208 GB/s)
	GlobalLatencyNs    float64 // global-memory access latency
	SharedLatencyNs    float64 // shared-memory access latency (~100X lower)

	// PCIe transfer engine.
	H2DBandwidthBps float64 // host→device bandwidth
	D2HBandwidthBps float64 // device→host bandwidth
	TransferSetupNs float64 // per-transfer fixed cost (driver + DMA setup)

	KernelLaunchNs float64 // fixed kernel launch overhead

	// IPC is average instructions per core per cycle (≤1 for simple integer
	// pipelines); folds issue efficiency into the compute roofline.
	IPC float64

	// SaturationThreads is the launch size (total threads) needed to fully
	// hide memory latency and fill the SMs; smaller launches run at
	// proportionally lower throughput. This models why the paper's GPU-part
	// speedup grows from ~45X on the 20K graph to ~374X on the 2M graph:
	// "The more workload can be executed in parallel on GPU, the better
	// speedup it will contribute" (Section IV-C). 0 disables the model.
	SaturationThreads int
}

// K20Config returns a configuration modeled on the paper's NVIDIA Tesla K20:
// 2,496 CUDA cores, 5 GB device memory (Section IV-B). The compute-side
// parameters are the card's; the transfer-side parameters are calibrated to
// the *observed* Thrust synchronous-copy behavior of Table I rather than
// PCIe peak — the paper's per-trial device→host shingle transfers move data
// at tens of MB/s with multi-millisecond per-call overhead (pageable host
// memory, per-call synchronization and allocation in Thrust 1.5), which is
// exactly the overhead the paper proposes to hide with asynchronous
// transfers. See EXPERIMENTS.md, "calibration".
func K20Config() Config {
	return Config{
		Name:               "Tesla K20 (simulated)",
		NumSMs:             13,
		CoresPerSM:         192,
		WarpSize:           32,
		ClockHz:            706e6,
		GlobalMemBytes:     5 << 30,
		SharedMemPerBlock:  48 << 10,
		GlobalBandwidthBps: 208e9,
		GlobalLatencyNs:    400,
		SharedLatencyNs:    4, // "roughly 100X lower ... latency" (Section II)
		H2DBandwidthBps:    2e9,
		D2HBandwidthBps:    110e6,
		TransferSetupNs:    4e6,
		KernelLaunchNs:     5_000,
		IPC:                0.85,
		SaturationThreads:  131_072,
	}
}

// SmallConfig returns a deliberately tiny device (little memory, few SMs)
// used by tests to exercise batching and out-of-memory paths.
func SmallConfig() Config {
	c := K20Config()
	c.Name = "tiny test GPU"
	c.NumSMs = 2
	c.CoresPerSM = 32
	c.GlobalMemBytes = 1 << 20 // 1 MB
	return c
}

// TotalCores returns the number of CUDA cores on the device.
func (c Config) TotalCores() int { return c.NumSMs * c.CoresPerSM }

// ErrOutOfDeviceMemory is returned by Malloc when the allocation would
// exceed the device's global memory. The clustering driver reacts by
// shrinking its batch size, exactly as the paper's batch-wise Algorithm 2
// processes "the large-scale input graph on the relative[ly] small device
// memory".
var ErrOutOfDeviceMemory = errors.New("gpusim: out of device memory")

// Metrics aggregates the device's virtual-clock accounting.
type Metrics struct {
	KernelTimeNs   float64 // total simulated kernel execution time
	H2DTimeNs      float64 // host→device copy time (setup + volume)
	D2HTimeNs      float64 // device→host copy time (setup + volume)
	H2DBytes       int64
	D2HBytes       int64
	KernelLaunches int64

	// Transfer time split into the fixed per-call DMA/driver setup and the
	// bandwidth-proportional volume component. H2DTimeNs = H2DSetupNs +
	// H2DVolumeNs (likewise D2H); a zero-length copy charges setup only.
	// Packed device images shrink the volume term while leaving setup
	// untouched, which is why the split is reported separately.
	H2DSetupNs  float64
	H2DVolumeNs float64
	D2HSetupNs  float64
	D2HVolumeNs float64

	ComputeTimeNs float64 // compute-bound portion across kernels
	MemoryTimeNs  float64 // memory-bound portion across kernels

	GlobalTransactions int64 // 128-byte global memory transactions
	GlobalAccesses     int64 // individual thread accesses
	WarpSerialOps      int64 // per-warp serialized op count (with divergence)
	ThreadOps          int64 // raw per-thread op count (no divergence)
}

// Sub returns the difference m - prev of two snapshots: the accounting
// accumulated between them. Stages that share a device with other work (the
// pGraph verification stage, for instance) use it to report their own share
// of the device's kernels and transfers.
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		KernelTimeNs:       m.KernelTimeNs - prev.KernelTimeNs,
		H2DTimeNs:          m.H2DTimeNs - prev.H2DTimeNs,
		D2HTimeNs:          m.D2HTimeNs - prev.D2HTimeNs,
		H2DBytes:           m.H2DBytes - prev.H2DBytes,
		D2HBytes:           m.D2HBytes - prev.D2HBytes,
		KernelLaunches:     m.KernelLaunches - prev.KernelLaunches,
		H2DSetupNs:         m.H2DSetupNs - prev.H2DSetupNs,
		H2DVolumeNs:        m.H2DVolumeNs - prev.H2DVolumeNs,
		D2HSetupNs:         m.D2HSetupNs - prev.D2HSetupNs,
		D2HVolumeNs:        m.D2HVolumeNs - prev.D2HVolumeNs,
		ComputeTimeNs:      m.ComputeTimeNs - prev.ComputeTimeNs,
		MemoryTimeNs:       m.MemoryTimeNs - prev.MemoryTimeNs,
		GlobalTransactions: m.GlobalTransactions - prev.GlobalTransactions,
		GlobalAccesses:     m.GlobalAccesses - prev.GlobalAccesses,
		WarpSerialOps:      m.WarpSerialOps - prev.WarpSerialOps,
		ThreadOps:          m.ThreadOps - prev.ThreadOps,
	}
}

// DivergenceOverhead returns the fraction of warp-issued work wasted to
// divergence: 0 means perfectly converged warps, values near 1 mean almost
// all lanes idle.
func (m Metrics) DivergenceOverhead() float64 {
	if m.WarpSerialOps == 0 {
		return 0
	}
	return 1 - float64(m.ThreadOps)/float64(m.WarpSerialOps)
}

// CoalescingEfficiency returns the ratio of ideal transactions (each moving
// 32 words for 32 lanes) to actual transactions; 1.0 is perfectly coalesced.
func (m Metrics) CoalescingEfficiency() float64 {
	if m.GlobalTransactions == 0 {
		return 1
	}
	ideal := float64(m.GlobalAccesses) / 32
	eff := ideal / float64(m.GlobalTransactions)
	if eff > 1 {
		eff = 1
	}
	return eff
}

// Device is one simulated GPU. All methods are called from the host side;
// kernel code runs inside Launch. A Device is safe for use by one host
// goroutine at a time (matching a single CUDA context).
type Device struct {
	cfg Config

	mu        sync.Mutex
	allocated int64
	peakAlloc int64
	liveBufs  int
	nextBase  int64 // virtual address allocator for the coalescing model

	// Virtual timelines, all in simulated nanoseconds since Reset.
	hostClock   float64 // the host thread's position in simulated time
	computeFree float64 // when the SM array is next free
	copyFree    float64 // when the copy engine is next free

	metrics Metrics

	injector FaultInjector // optional fault injection (see fault.go)

	profiling   bool
	pendingName string
	profile     []KernelRecord
	tracing     bool
	trace       []TraceEvent

	workers int // host goroutines used to execute kernels
}

// New creates a device with the given configuration.
func New(cfg Config) (*Device, error) {
	if cfg.NumSMs <= 0 || cfg.CoresPerSM <= 0 || cfg.WarpSize <= 0 {
		return nil, fmt.Errorf("gpusim: invalid config: SMs=%d cores/SM=%d warp=%d",
			cfg.NumSMs, cfg.CoresPerSM, cfg.WarpSize)
	}
	if cfg.ClockHz <= 0 || cfg.GlobalBandwidthBps <= 0 {
		return nil, fmt.Errorf("gpusim: invalid config: clock=%v bw=%v", cfg.ClockHz, cfg.GlobalBandwidthBps)
	}
	if cfg.IPC <= 0 {
		cfg.IPC = 1
	}
	w := cfg.NumSMs
	if w > 16 {
		w = 16
	}
	return &Device{cfg: cfg, workers: w}, nil
}

// MustNew is New for known-good configs; it panics on error.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// FreeMemory returns the unallocated device global memory in bytes.
func (d *Device) FreeMemory() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.GlobalMemBytes - d.allocated
}

// PeakAllocated returns the high-water mark of device memory in bytes since
// device creation (it is not cleared by Reset, which only clears timing).
// The clustering driver reports it against the paper's peak-memory claim.
func (d *Device) PeakAllocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakAlloc
}

// AllocatedBuffers returns the number of live device buffers (leak checks).
func (d *Device) AllocatedBuffers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.liveBufs
}

// Metrics returns a snapshot of the accumulated accounting.
func (d *Device) Metrics() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.metrics
}

// HostTime returns the host's current position on the virtual clock, in
// simulated nanoseconds.
func (d *Device) HostTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostClock
}

// AdvanceHost adds simulated nanoseconds of host-side (CPU) work to the
// virtual clock. The clustering driver uses this to account for the serial
// CPU stages (graph aggregation, dense-subgraph reporting, disk I/O).
func (d *Device) AdvanceHost(ns float64) {
	if ns < 0 {
		panic("gpusim: negative host time")
	}
	d.mu.Lock()
	d.traceAdd("host-work", "host", d.hostClock, d.hostClock+ns)
	d.hostClock += ns
	d.mu.Unlock()
}

// Synchronize blocks the host until all outstanding device work (kernels and
// async copies) completes, advancing the host clock to that point — the
// moral equivalent of cudaDeviceSynchronize.
func (d *Device) Synchronize() {
	d.mu.Lock()
	if d.computeFree > d.hostClock {
		d.hostClock = d.computeFree
	}
	if d.copyFree > d.hostClock {
		d.hostClock = d.copyFree
	}
	d.mu.Unlock()
}

// Reset frees accounting and timelines (buffers stay allocated).
func (d *Device) Reset() {
	d.mu.Lock()
	d.hostClock = 0
	d.computeFree = 0
	d.copyFree = 0
	d.metrics = Metrics{}
	d.mu.Unlock()
}
