package gpusim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Timeline tracing: the device can record every kernel and transfer as an
// interval on its virtual timelines and export them in the Chrome trace
// format (chrome://tracing / Perfetto), giving the same at-a-glance view of
// compute/copy overlap that nvvp gave the paper's authors. Tracing is
// independent of profiling: EnableTracing captures placements (start/end on
// which engine), EnableProfiling captures per-kernel cost-model inputs.

// TraceEvent is one interval on a virtual timeline.
type TraceEvent struct {
	Name    string  // kernel name or transfer direction
	Track   string  // "compute", "copy", or "host"
	StartNs float64 // virtual start time
	EndNs   float64 // virtual end time
}

// EnableTracing starts recording trace events (unbounded while enabled).
func (d *Device) EnableTracing() {
	d.mu.Lock()
	d.tracing = true
	d.mu.Unlock()
}

// Trace returns the recorded events in schedule order.
func (d *Device) Trace() []TraceEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TraceEvent, len(d.trace))
	copy(out, d.trace)
	return out
}

// traceAdd appends an event; the caller holds d.mu.
func (d *Device) traceAdd(name, track string, start, end float64) {
	if !d.tracing {
		return
	}
	d.trace = append(d.trace, TraceEvent{Name: name, Track: track, StartNs: start, EndNs: end})
}

// chromeEvent is the Chrome trace format's "complete event" record.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace exports the trace as a Chrome/Perfetto trace JSON file:
// one thread row per engine (compute, copy, host). Events are exported
// sorted by (StartNs, Track, Name) — the recorded order interleaves
// nondeterministically when concurrent pipeline lanes enqueue — and an
// empty trace still serializes as an empty array (a nil slice would marshal
// to null, which Perfetto rejects).
func (d *Device) WriteChromeTrace(w io.Writer) error {
	tracks := map[string]int{"host": 0, "compute": 1, "copy": 2}
	trace := d.Trace()
	sort.SliceStable(trace, func(i, j int) bool {
		a, b := trace[i], trace[j]
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	events := make([]chromeEvent, 0, len(trace))
	for _, e := range trace {
		tid, ok := tracks[e.Track]
		if !ok {
			return fmt.Errorf("gpusim: unknown trace track %q", e.Track)
		}
		events = append(events, chromeEvent{
			Name: e.Name,
			Cat:  e.Track,
			Ph:   "X",
			Ts:   e.StartNs / 1000,
			Dur:  (e.EndNs - e.StartNs) / 1000,
			Pid:  1,
			Tid:  tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"device": d.cfg.Name,
			"note":   "virtual-clock timeline from the gpusim cost model",
		},
	})
}
