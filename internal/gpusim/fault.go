package gpusim

import (
	"errors"
	"fmt"
)

// Fault injection. A FaultInjector attached to a Device decides, at each
// injection point, whether the operation about to run fails (or, for
// FaultSlowSM, how much slower the kernel body runs). The decision is keyed
// only to the virtual clock and the injector's own op counters — never the
// wall clock — so an injected run is exactly as deterministic as a clean
// one. The injection points model the failure classes a real CUDA driver
// surfaces: cudaMemcpy errors (H2D/D2H), cudaMalloc out-of-memory, kernel
// launch failures, and thermally throttled SMs.

// FaultKind identifies one class of injectable device fault.
type FaultKind int

const (
	// FaultH2D fails a host→device copy (sync or async) before any data
	// moves.
	FaultH2D FaultKind = iota
	// FaultD2H fails a device→host copy before any data moves.
	FaultD2H
	// FaultMalloc fails a device allocation with ErrOutOfDeviceMemory.
	FaultMalloc
	// FaultKernel fails a kernel launch before the grid executes.
	FaultKernel
	// FaultSlowSM stretches a kernel's body time by Decision.Slow — a
	// latency spike, not an error; the launch still succeeds.
	FaultSlowSM

	// NumFaultKinds is the number of distinct fault kinds.
	NumFaultKinds
)

var faultKindNames = [NumFaultKinds]string{"h2d", "d2h", "malloc", "kernel", "slowsm"}

// String returns the schedule-syntax name of the kind.
func (k FaultKind) String() string {
	if k < 0 || k >= NumFaultKinds {
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
	return faultKindNames[k]
}

// FaultDecision is an injector's verdict for one operation.
type FaultDecision struct {
	// Fail aborts the operation with a typed error (ignored for
	// FaultSlowSM).
	Fail bool
	// Slow multiplies the kernel body duration when > 1 (FaultSlowSM
	// consultations only).
	Slow float64
}

// FaultInjector decides the fate of device operations. Decide is consulted
// once per injection point with the kind and the host's current virtual
// time; implementations must be deterministic functions of their own state
// and these arguments. The internal/faults package provides the
// schedule-driven implementation.
type FaultInjector interface {
	Decide(kind FaultKind, nowNs float64) FaultDecision
}

// ErrDeviceFault is the root sentinel wrapped by every injected transfer
// and launch failure. Drivers match it with errors.Is to distinguish
// retryable device faults from programming errors (which stay fatal).
var ErrDeviceFault = errors.New("gpusim: injected device fault")

// ErrTransferFault wraps ErrDeviceFault for failed H2D/D2H copies.
var ErrTransferFault = fmt.Errorf("transfer failed: %w", ErrDeviceFault)

// ErrLaunchFault wraps ErrDeviceFault for failed kernel launches.
var ErrLaunchFault = fmt.Errorf("kernel launch failed: %w", ErrDeviceFault)

// SetFaultInjector attaches (or, with nil, removes) the device's fault
// injector. Call between operations, not concurrently with device work.
func (d *Device) SetFaultInjector(fi FaultInjector) {
	d.mu.Lock()
	d.injector = fi
	d.mu.Unlock()
}

// faultCheck consults the injector (if any) for one operation.
func (d *Device) faultCheck(kind FaultKind) FaultDecision {
	d.mu.Lock()
	fi := d.injector
	now := d.hostClock
	d.mu.Unlock()
	if fi == nil {
		return FaultDecision{}
	}
	return fi.Decide(kind, now)
}

// chargeFault advances the host clock by the fixed cost the failed
// operation still burned (DMA setup, launch overhead) and records a trace
// event so timelines show the fault.
func (d *Device) chargeFault(name string, ns float64) {
	d.mu.Lock()
	d.traceAdd(name, "host", d.hostClock, d.hostClock+ns)
	d.hostClock += ns
	d.mu.Unlock()
}
