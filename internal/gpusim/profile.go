package gpusim

import (
	"fmt"
	"io"
	"sort"
)

// KernelRecord is one launch's profile entry (the analogue of an nvprof
// row): what ran, for how long on the virtual clock, and the cost-model
// inputs that explain the duration.
type KernelRecord struct {
	Name         string
	Grid, Block  int
	DurationNs   float64
	Threads      int64
	WarpOps      int64 // warp-serialized instruction count (divergence included)
	Transactions int64 // 128-byte global-memory transactions
	Occupancy    float64
}

// EnableProfiling starts recording a KernelRecord per launch. Profiling is
// off by default (records accumulate without bound while on).
func (d *Device) EnableProfiling() {
	d.mu.Lock()
	d.profiling = true
	d.mu.Unlock()
}

// Profile returns the records captured since EnableProfiling, in launch
// order.
func (d *Device) Profile() []KernelRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]KernelRecord, len(d.profile))
	copy(out, d.profile)
	return out
}

// NextKernelName labels the next launch in the profile (consumed once).
// The thrust primitives and the gpClust kernels label themselves.
func (d *Device) NextKernelName(name string) {
	d.mu.Lock()
	d.pendingName = name
	d.mu.Unlock()
}

// ProfileSummary aggregates the profile by kernel name, heaviest first.
type ProfileSummary struct {
	Name       string
	Launches   int
	TotalNs    float64
	AvgOccup   float64
	TotalTrans int64
}

// SummarizeProfile groups the device's profile by kernel name.
func (d *Device) SummarizeProfile() []ProfileSummary {
	byName := map[string]*ProfileSummary{}
	for _, r := range d.Profile() {
		name := r.Name
		if name == "" {
			name = "(unnamed)"
		}
		s := byName[name]
		if s == nil {
			s = &ProfileSummary{Name: name}
			byName[name] = s
		}
		s.Launches++
		s.TotalNs += r.DurationNs
		s.AvgOccup += r.Occupancy
		s.TotalTrans += r.Transactions
	}
	out := make([]ProfileSummary, 0, len(byName))
	for _, s := range byName {
		s.AvgOccup /= float64(s.Launches)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// WriteProfile renders the summary as an nvprof-style table.
func (d *Device) WriteProfile(w io.Writer) {
	fmt.Fprintf(w, "%-24s %9s %12s %10s %14s\n", "kernel", "launches", "time (ms)", "occupancy", "transactions")
	for _, s := range d.SummarizeProfile() {
		fmt.Fprintf(w, "%-24s %9d %12.3f %9.0f%% %14d\n",
			s.Name, s.Launches, s.TotalNs/1e6, 100*s.AvgOccup, s.TotalTrans)
	}
}

// Event is a CUDA-event-style timestamp on a timeline (host or stream).
type Event struct {
	atNs float64
}

// RecordEvent timestamps the host timeline (all synchronous work so far).
func (d *Device) RecordEvent() Event {
	return Event{atNs: d.HostTime()}
}

// RecordEvent timestamps the stream: the completion time of all work
// enqueued on it so far.
func (s *Stream) RecordEvent() Event {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()
	return Event{atNs: s.ready}
}

// ElapsedNs returns the virtual nanoseconds between two events
// (cudaEventElapsedTime).
func ElapsedNs(start, end Event) float64 { return end.atNs - start.atNs }
