package gpusim

import (
	"fmt"
	"sync"
)

// CoopCtx extends ThreadCtx with the intra-block cooperation facilities of
// the CUDA model: per-block shared memory and barrier synchronization
// ("Threads inside each thread block ... can cooperate with each other
// though barrier synchronizations or per-block shared memory", Section II).
type CoopCtx struct {
	ThreadCtx
	shared  []uint32
	barrier *barrier
}

// Shared returns the block's shared-memory array (one copy per block,
// visible to all its threads). Accesses should be recorded with
// SharedAccess for the cost model.
func (c *CoopCtx) Shared() []uint32 { return c.shared }

// SyncThreads blocks until every thread in the block has reached the
// barrier, like CUDA's __syncthreads().
func (c *CoopCtx) SyncThreads() { c.barrier.await() }

// barrier is a reusable cyclic barrier for n goroutines.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	phase   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// LaunchCooperative executes gridDim blocks of blockDim threads where the
// threads of a block may use shared memory (sharedWords 32-bit words per
// block) and SyncThreads barriers. Each thread runs on its own goroutine so
// barriers really rendezvous; this is slower to simulate than Launch and is
// meant for block-cooperative primitives (reductions, scans). Synchronous.
func (d *Device) LaunchCooperative(gridDim, blockDim, sharedWords int, kernel func(*CoopCtx)) error {
	if gridDim <= 0 || blockDim <= 0 {
		return fmt.Errorf("gpusim: cooperative launch with grid %d × block %d", gridDim, blockDim)
	}
	if blockDim > 1024 {
		return fmt.Errorf("gpusim: block dimension %d exceeds 1024", blockDim)
	}
	if sharedWords*WordBytes > d.cfg.SharedMemPerBlock {
		return fmt.Errorf("gpusim: %d words of shared memory exceed the per-block limit of %d bytes",
			sharedWords, d.cfg.SharedMemPerBlock)
	}

	var total launchStats
	var totalMu sync.Mutex
	warp := d.cfg.WarpSize

	workers := d.workers
	if workers > gridDim {
		workers = gridDim
	}
	blockCh := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local launchStats
			for b := range blockCh {
				shared := make([]uint32, sharedWords)
				bar := newBarrier(blockDim)
				ctxs := make([]CoopCtx, blockDim)
				var tg sync.WaitGroup
				for t := 0; t < blockDim; t++ {
					ctxs[t] = CoopCtx{
						ThreadCtx: ThreadCtx{
							Block: b, Thread: t,
							BlockDim: blockDim, GridDim: gridDim,
						},
						shared:  shared,
						barrier: bar,
					}
					tg.Add(1)
					go func(c *CoopCtx) {
						defer tg.Done()
						kernel(c)
					}(&ctxs[t])
				}
				tg.Wait()
				plain := make([]ThreadCtx, blockDim)
				for i := range ctxs {
					plain[i] = ctxs[i].ThreadCtx
				}
				accumulateBlock(&local, plain, warp)
			}
			totalMu.Lock()
			total.warpSerialOps += local.warpSerialOps
			total.threadOps += local.threadOps
			total.transactions += local.transactions
			total.accesses += local.accesses
			total.sharedAcc += local.sharedAcc
			totalMu.Unlock()
		}()
	}
	for b := 0; b < gridDim; b++ {
		blockCh <- b
	}
	close(blockCh)
	wg.Wait()

	total.threads = int64(gridDim) * int64(blockDim)
	kernelNs := d.kernelTime(total)
	d.scheduleKernel(kernelNs, total, nil)
	d.recordProfile(gridDim, blockDim, kernelNs, total)
	return nil
}
