package gpusim

import (
	"errors"
	"testing"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{NumSMs: 1, CoresPerSM: 0, WarpSize: 32, ClockHz: 1e9, GlobalBandwidthBps: 1e9},
		{NumSMs: 1, CoresPerSM: 1, WarpSize: 32, ClockHz: 0, GlobalBandwidthBps: 1e9},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := New(K20Config()); err != nil {
		t.Fatalf("K20Config rejected: %v", err)
	}
}

func TestK20Shape(t *testing.T) {
	cfg := K20Config()
	if cfg.TotalCores() != 2496 {
		t.Fatalf("TotalCores = %d, want 2496 (paper, Section IV-B)", cfg.TotalCores())
	}
	if cfg.GlobalMemBytes != 5<<30 {
		t.Fatalf("GlobalMemBytes = %d, want 5 GiB", cfg.GlobalMemBytes)
	}
	ratio := cfg.GlobalLatencyNs / cfg.SharedLatencyNs
	if ratio < 50 || ratio > 200 {
		t.Fatalf("global/shared latency ratio = %v, want ≈100X (Section II)", ratio)
	}
}

func TestMallocFree(t *testing.T) {
	d := MustNew(SmallConfig()) // 1 MB = 262,144 words
	b1, err := d.Malloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Len() != 100_000 || b1.Bytes() != 400_000 {
		t.Fatalf("buffer len=%d bytes=%d", b1.Len(), b1.Bytes())
	}
	if d.AllocatedBuffers() != 1 {
		t.Fatalf("live buffers = %d, want 1", d.AllocatedBuffers())
	}
	if free := d.FreeMemory(); free != 1<<20-400_000 {
		t.Fatalf("FreeMemory = %d", free)
	}
	// This exceeds the remaining memory.
	if _, err := d.Malloc(200_000); !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Fatalf("over-allocation error = %v, want ErrOutOfDeviceMemory", err)
	}
	b1.Free()
	if d.FreeMemory() != 1<<20 {
		t.Fatalf("FreeMemory after free = %d", d.FreeMemory())
	}
	if d.AllocatedBuffers() != 0 {
		t.Fatalf("live buffers after free = %d", d.AllocatedBuffers())
	}
	// Now it fits.
	b2, err := d.Malloc(200_000)
	if err != nil {
		t.Fatal(err)
	}
	b2.Free()
}

func TestDoubleFreePanics(t *testing.T) {
	d := MustNew(SmallConfig())
	b := d.MustMalloc(10)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestUseAfterFreePanics(t *testing.T) {
	d := MustNew(SmallConfig())
	b := d.MustMalloc(10)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("Words() on freed buffer did not panic")
		}
	}()
	_ = b.Words()
}

func TestMallocNegative(t *testing.T) {
	d := MustNew(SmallConfig())
	if _, err := d.Malloc(-1); err == nil {
		t.Fatal("Malloc(-1) accepted")
	}
}

func TestCopyRoundTrip(t *testing.T) {
	d := MustNew(K20Config())
	b := d.MustMalloc(1000)
	defer b.Free()
	src := make([]uint32, 1000)
	for i := range src {
		src[i] = uint32(i * 3)
	}
	if err := d.CopyH2D(b, 0, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 1000)
	if err := d.CopyD2H(dst, b, 0); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d: got %d, want %d", i, dst[i], src[i])
		}
	}
	m := d.Metrics()
	if m.H2DBytes != 4000 || m.D2HBytes != 4000 {
		t.Fatalf("transfer bytes = %d/%d, want 4000/4000", m.H2DBytes, m.D2HBytes)
	}
	if m.H2DTimeNs <= 0 || m.D2HTimeNs <= 0 {
		t.Fatal("transfer times not accounted")
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	d := MustNew(K20Config())
	b := d.MustMalloc(10)
	defer b.Free()
	if err := d.CopyH2D(b, 5, make([]uint32, 6)); err == nil {
		t.Fatal("out-of-range H2D accepted")
	}
	if err := d.CopyH2D(b, -1, make([]uint32, 1)); err == nil {
		t.Fatal("negative-offset H2D accepted")
	}
	if err := d.CopyD2H(make([]uint32, 11), b, 0); err == nil {
		t.Fatal("out-of-range D2H accepted")
	}
}

func TestCopyToFreedBuffer(t *testing.T) {
	d := MustNew(K20Config())
	b := d.MustMalloc(10)
	b.Free()
	if err := d.CopyH2D(b, 0, make([]uint32, 5)); err == nil {
		t.Fatal("H2D to freed buffer accepted")
	}
	if err := d.CopyD2H(make([]uint32, 5), b, 0); err == nil {
		t.Fatal("D2H from freed buffer accepted")
	}
}

func TestSyncCopyAdvancesHostClock(t *testing.T) {
	d := MustNew(K20Config())
	b := d.MustMalloc(1 << 20)
	defer b.Free()
	before := d.HostTime()
	if err := d.CopyH2D(b, 0, make([]uint32, 1<<20)); err != nil {
		t.Fatal(err)
	}
	after := d.HostTime()
	wantMin := float64(4<<20) / d.Config().H2DBandwidthBps * 1e9
	if after-before < wantMin {
		t.Fatalf("sync copy advanced clock by %v ns, want ≥ %v ns", after-before, wantMin)
	}
}

func TestAsyncCopyDoesNotAdvanceHostClock(t *testing.T) {
	d := MustNew(K20Config())
	b := d.MustMalloc(1 << 20)
	defer b.Free()
	s := d.NewStream()
	before := d.HostTime()
	if err := d.CopyH2DAsync(s, b, 0, make([]uint32, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if d.HostTime() != before {
		t.Fatal("async copy advanced host clock before synchronization")
	}
	s.Synchronize()
	if d.HostTime() <= before {
		t.Fatal("stream synchronize did not advance host clock")
	}
}

func TestAdvanceHost(t *testing.T) {
	d := MustNew(K20Config())
	d.AdvanceHost(1e9)
	if d.HostTime() != 1e9 {
		t.Fatalf("HostTime = %v, want 1e9", d.HostTime())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AdvanceHost did not panic")
		}
	}()
	d.AdvanceHost(-1)
}

func TestReset(t *testing.T) {
	d := MustNew(K20Config())
	b := d.MustMalloc(100)
	defer b.Free()
	_ = d.CopyH2D(b, 0, make([]uint32, 100))
	d.AdvanceHost(5)
	d.Reset()
	if d.HostTime() != 0 {
		t.Fatal("Reset did not clear host clock")
	}
	if m := d.Metrics(); m.H2DBytes != 0 || m.H2DTimeNs != 0 {
		t.Fatal("Reset did not clear metrics")
	}
	// Buffers survive reset.
	if d.AllocatedBuffers() != 1 {
		t.Fatal("Reset freed buffers")
	}
}
