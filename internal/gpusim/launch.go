package gpusim

import (
	"fmt"
	"sort"
	"sync"
)

// Kernel is the per-thread device function executed by Launch. Each logical
// GPU thread receives its own ThreadCtx identifying it within the launch
// grid and collecting its cost accounting.
type Kernel func(ctx *ThreadCtx)

// ThreadCtx is one logical GPU thread's view of a launch: its coordinates
// (blockIdx, threadIdx, blockDim, gridDim as in CUDA) and the accounting
// sink for the cost model. Kernels must record the work they do — arithmetic
// via Ops, global-memory traffic via GlobalRead/GlobalWrite — because the
// simulator executes native Go and cannot observe instructions directly.
// The thrust package's primitives do this recording, so code composed from
// them (like the shingling pipeline) is fully accounted automatically.
type ThreadCtx struct {
	Block    int // blockIdx.x
	Thread   int // threadIdx.x
	BlockDim int // blockDim.x
	GridDim  int // gridDim.x

	ops    int64
	shared int64
	runs   []accessRun
	extra  int64 // accesses beyond the run cap, charged uncoalesced
}

// GlobalID returns the linear global thread id (blockIdx*blockDim+threadIdx).
func (c *ThreadCtx) GlobalID() int { return c.Block*c.BlockDim + c.Thread }

// Ops records n arithmetic/logic instructions executed by this thread.
func (c *ThreadCtx) Ops(n int) { c.ops += int64(n) }

// SharedAccess records n shared-memory accesses (used by cooperative
// kernels; shared memory is ~100X lower latency than global).
func (c *ThreadCtx) SharedAccess(n int) { c.shared += int64(n) }

// maxRunsPerThread bounds per-thread trace memory; further accesses are
// charged as individually uncoalesced transactions, a conservative model.
const maxRunsPerThread = 64

// accessRun is a strided run of global-memory accesses by one thread:
// word addresses start, start+stride, … (count of them). Runs at the same
// position in different lanes of a warp are aligned for coalescing analysis.
type accessRun struct {
	start  int64 // virtual word address (buffer base + offset)
	count  int32
	stride int32
	write  bool
}

// GlobalRead records a strided run of count global-memory reads starting at
// word index start within buf, with the given word stride between
// consecutive accesses by this thread.
func (c *ThreadCtx) GlobalRead(buf *Buffer, start, count, stride int) {
	c.record(buf, start, count, stride, false)
}

// GlobalWrite records a strided run of global-memory writes.
func (c *ThreadCtx) GlobalWrite(buf *Buffer, start, count, stride int) {
	c.record(buf, start, count, stride, true)
}

func (c *ThreadCtx) record(buf *Buffer, start, count, stride int, write bool) {
	if count <= 0 {
		return
	}
	if len(c.runs) >= maxRunsPerThread {
		c.extra += int64(count)
		return
	}
	c.runs = append(c.runs, accessRun{
		start:  buf.base + int64(start),
		count:  int32(count),
		stride: int32(stride),
		write:  write,
	})
}

// launchStats aggregates a launch's cost inputs across all warps.
type launchStats struct {
	threads       int64
	warpSerialOps int64
	threadOps     int64
	transactions  int64
	accesses      int64
	sharedAcc     int64
}

// Launch executes gridDim blocks of blockDim independent threads (no
// intra-block barrier; use LaunchCooperative for kernels that need
// __syncthreads). It is synchronous like the Thrust primitives the paper
// uses: the host's virtual clock advances past the kernel's completion.
func (d *Device) Launch(gridDim, blockDim int, kernel Kernel) error {
	return d.launch(gridDim, blockDim, kernel, nil)
}

// LaunchOnStream is Launch but enqueued on a stream: the kernel is ordered
// after prior work on the stream and the host clock does not wait for it.
func (d *Device) LaunchOnStream(s *Stream, gridDim, blockDim int, kernel Kernel) error {
	return d.launch(gridDim, blockDim, kernel, s)
}

func (d *Device) launch(gridDim, blockDim int, kernel Kernel, s *Stream) error {
	if gridDim <= 0 || blockDim <= 0 {
		return fmt.Errorf("gpusim: launch with grid %d × block %d", gridDim, blockDim)
	}
	if blockDim > 1024 {
		return fmt.Errorf("gpusim: block dimension %d exceeds 1024", blockDim)
	}
	if d.faultCheck(FaultKernel).Fail {
		// The launch overhead is burned even though the grid never ran.
		d.chargeFault("launch-fault", d.cfg.KernelLaunchNs)
		return fmt.Errorf("gpusim: launch %d×%d: %w", gridDim, blockDim, ErrLaunchFault)
	}

	stats := d.executeGrid(gridDim, blockDim, kernel)
	stats.threads = int64(gridDim) * int64(blockDim)
	kernelNs := d.kernelTime(stats)
	if slow := d.faultCheck(FaultSlowSM).Slow; slow > 1 {
		// A latency spike stretches the kernel body; the fixed launch
		// overhead is unaffected.
		kernelNs = d.cfg.KernelLaunchNs + (kernelNs-d.cfg.KernelLaunchNs)*slow
	}
	d.scheduleKernel(kernelNs, stats, s)
	d.recordProfile(gridDim, blockDim, kernelNs, stats)
	return nil
}

// recordProfile appends a KernelRecord when profiling is enabled, consuming
// any pending kernel name.
func (d *Device) recordProfile(gridDim, blockDim int, kernelNs float64, st launchStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	name := d.pendingName
	d.pendingName = ""
	if !d.profiling {
		return
	}
	occ := 1.0
	if d.cfg.SaturationThreads > 0 && st.threads < int64(d.cfg.SaturationThreads) {
		occ = float64(st.threads) / float64(d.cfg.SaturationThreads)
	}
	d.profile = append(d.profile, KernelRecord{
		Name: name, Grid: gridDim, Block: blockDim,
		DurationNs: kernelNs, Threads: st.threads,
		WarpOps: st.warpSerialOps, Transactions: st.transactions,
		Occupancy: occ,
	})
}

// executeGrid really runs every thread's kernel body, distributing blocks
// over worker goroutines (the SMs), and returns the aggregated cost inputs.
func (d *Device) executeGrid(gridDim, blockDim int, kernel Kernel) launchStats {
	var total launchStats
	var totalMu sync.Mutex

	warp := d.cfg.WarpSize
	workers := d.workers
	if workers > gridDim {
		workers = gridDim
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Reuse thread contexts per worker to avoid per-thread allocs.
			ctxs := make([]ThreadCtx, blockDim)
			var local launchStats
			for b := range next {
				for t := 0; t < blockDim; t++ {
					ctxs[t] = ThreadCtx{
						Block: b, Thread: t,
						BlockDim: blockDim, GridDim: gridDim,
						runs: ctxs[t].runs[:0],
					}
					kernel(&ctxs[t])
				}
				accumulateBlock(&local, ctxs, warp)
			}
			totalMu.Lock()
			total.warpSerialOps += local.warpSerialOps
			total.threadOps += local.threadOps
			total.transactions += local.transactions
			total.accesses += local.accesses
			total.sharedAcc += local.sharedAcc
			totalMu.Unlock()
		}()
	}
	for b := 0; b < gridDim; b++ {
		next <- b
	}
	close(next)
	wg.Wait()
	return total
}

// accumulateBlock folds one executed block's thread contexts into the stats,
// applying the SIMT divergence and coalescing models warp by warp.
func accumulateBlock(st *launchStats, ctxs []ThreadCtx, warp int) {
	for w := 0; w < len(ctxs); w += warp {
		end := w + warp
		if end > len(ctxs) {
			end = len(ctxs)
		}
		lanes := ctxs[w:end]

		// Divergence model: a warp's lanes share one instruction unit, so
		// the warp issues max(lane ops) instructions and every one of the
		// warp's lane-slots is occupied for all of them.
		var maxOps int64
		for i := range lanes {
			if lanes[i].ops > maxOps {
				maxOps = lanes[i].ops
			}
			st.threadOps += lanes[i].ops
			st.sharedAcc += lanes[i].shared
		}
		st.warpSerialOps += maxOps * int64(warp)

		st.transactions += warpTransactions(lanes)
		for i := range lanes {
			for _, r := range lanes[i].runs {
				st.accesses += int64(r.count)
			}
			st.accesses += lanes[i].extra
			st.transactions += lanes[i].extra // overflow: one transaction each
		}
	}
}

// segWords is the size of one global-memory transaction in 32-bit words
// (128 bytes, the Kepler L2 transaction granularity).
const segWords = 32

// warpTransactions computes the 128-byte transaction count for one warp's
// recorded access runs. Runs are aligned across lanes by position (the k-th
// run of each lane belongs to the same static access site). For each site,
// if all lanes share one stride, the lanes' step-t addresses are a uniform
// shift of their starts, so the distinct-segment count among the starts of
// the active lanes approximates the per-step transaction count; summing over
// steps with the active set shrinking as shorter lanes finish gives the
// total. Mixed strides fall back to fully uncoalesced (one transaction per
// access).
func warpTransactions(lanes []ThreadCtx) int64 {
	maxRuns := 0
	for i := range lanes {
		if len(lanes[i].runs) > maxRuns {
			maxRuns = len(lanes[i].runs)
		}
	}
	var total int64
	type laneRun struct {
		start int64
		count int64
	}
	active := make([]laneRun, 0, len(lanes))
	for k := 0; k < maxRuns; k++ {
		active = active[:0]
		var stride int32
		mixed := false
		first := true
		for i := range lanes {
			if k >= len(lanes[i].runs) {
				continue
			}
			r := lanes[i].runs[k]
			if first {
				stride = r.stride
				first = false
			} else if r.stride != stride {
				mixed = true
			}
			active = append(active, laneRun{r.start, int64(r.count)})
		}
		if len(active) == 0 {
			continue
		}
		if mixed {
			for _, a := range active {
				total += a.count
			}
			continue
		}
		// Sort lanes by count descending: the active set at step t is a
		// prefix.
		sort.Slice(active, func(i, j int) bool { return active[i].count > active[j].count })
		// D[j] = distinct segments among the first j+1 lanes' starts.
		segs := make(map[int64]bool, len(active))
		d := make([]int64, len(active))
		for j, a := range active {
			segs[a.start/segWords] = true
			d[j] = int64(len(segs))
		}
		// Interval [c_{j+1}, c_j) has exactly j+1 active lanes.
		for j := 0; j < len(active); j++ {
			var lower int64
			if j+1 < len(active) {
				lower = active[j+1].count
			}
			steps := active[j].count - lower
			if steps > 0 {
				total += d[j] * steps
			}
		}
	}
	return total
}

// kernelTime converts aggregated stats into a simulated duration via a
// roofline model: the kernel is bound by the slower of compute throughput
// (cores × clock × IPC, consuming warp-serialized ops) and global-memory
// throughput (transactions × 128B over the device bandwidth), plus fixed
// launch overhead and a small shared-memory term. Launches smaller than
// Config.SaturationThreads cannot keep the device busy and run at
// proportionally reduced throughput (occupancy model).
func (d *Device) kernelTime(st launchStats) float64 {
	cfg := d.cfg
	computeNs := float64(st.warpSerialOps) / (float64(cfg.TotalCores()) * cfg.ClockHz * cfg.IPC) * 1e9
	memNs := float64(st.transactions) * float64(segWords*WordBytes) / cfg.GlobalBandwidthBps * 1e9
	sharedNs := float64(st.sharedAcc) * cfg.SharedLatencyNs / float64(cfg.TotalCores())
	body := computeNs
	if memNs > body {
		body = memNs
	}
	body += sharedNs
	if cfg.SaturationThreads > 0 && st.threads < int64(cfg.SaturationThreads) && st.threads > 0 {
		body *= float64(cfg.SaturationThreads) / float64(st.threads)
	}

	d.mu.Lock()
	d.metrics.ComputeTimeNs += computeNs
	d.metrics.MemoryTimeNs += memNs
	d.mu.Unlock()

	return cfg.KernelLaunchNs + body
}

// scheduleKernel places the kernel on the virtual timeline and merges the
// stats into the device metrics. Synchronous launches advance the host
// clock; stream launches only advance the stream and compute timelines.
func (d *Device) scheduleKernel(kernelNs float64, st launchStats, s *Stream) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := d.hostClock
	if s != nil && s.ready > start {
		start = s.ready
	}
	if d.computeFree > start {
		start = d.computeFree
	}
	end := start + kernelNs
	d.computeFree = end
	name := d.pendingName
	if name == "" {
		name = "kernel"
	}
	d.traceAdd(name, "compute", start, end)
	if s == nil {
		d.hostClock = end
	} else {
		s.ready = end
	}
	m := &d.metrics
	m.KernelTimeNs += kernelNs
	m.KernelLaunches++
	m.WarpSerialOps += st.warpSerialOps
	m.ThreadOps += st.threadOps
	m.GlobalTransactions += st.transactions
	m.GlobalAccesses += st.accesses
}
