package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeOrder flags `for range` loops over maps, in determinism-critical
// packages, whose bodies emit in iteration order: appending to a slice that
// is never sorted afterwards, sending on a channel, or writing to a
// stream/writer. Go randomizes map iteration order, so any of these makes
// the clustering output (or a serialized artifact feeding it) depend on the
// scheduler — exactly the bug class that would silently break the
// "parallel == serial == GPU, bit-identical" contract.
//
// A loop is not flagged when every slice it appends to is passed to a
// sorting call (sort.*, slices.Sort*, or a local helper whose name mentions
// sort) after the loop and before the function returns: ordering discipline
// restored downstream is the sanctioned pattern (see core.reportOverlapping).
var MapRangeOrder = &Analyzer{
	Name: ruleMapRange,
	Doc:  "ordered output produced by ranging over a map in a determinism-critical package",
	Run:  runMapRangeOrder,
}

func runMapRangeOrder(cfg *Config, pkg *Package) []Diagnostic {
	if !matchAny(pkg.Path, cfg.DeterminismCritical) {
		return nil
	}
	var diags []Diagnostic
	forEachFunc(pkg, func(fd *ast.FuncDecl, _ string) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := pkg.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			diags = append(diags, checkMapRangeBody(cfg, pkg, fd, rs)...)
			return true
		})
	})
	return diags
}

// checkMapRangeBody inspects one map-range loop for order-dependent
// emissions.
func checkMapRangeBody(cfg *Config, pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	// Slice variables (declared outside the loop body) that the body
	// appends to, keyed by object; the value is a representative node for
	// the report position.
	appended := make(map[types.Object]ast.Node)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			diags = append(diags, diag(pkg, ruleMapRange, s,
				"channel send inside range over map: receive order depends on map iteration order"))
		case *ast.CallExpr:
			if d, ok := orderedWriteCall(pkg, s); ok {
				diags = append(diags, d)
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pkg, call) || i >= len(s.Lhs) {
					continue
				}
				obj := rootObj(pkg, s.Lhs[i])
				if obj == nil {
					continue
				}
				// Appends to loop-local slices order only data consumed
				// inside the iteration; the outer map supplies no order.
				if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
					continue
				}
				appended[obj] = s
			}
		}
		return true
	})

	for obj, node := range appended {
		if !sortedAfter(pkg, fd, rs, obj) {
			diags = append(diags, diag(pkg, ruleMapRange, node,
				"append to %q inside range over map with no subsequent sort: element order depends on map iteration order", obj.Name()))
		}
	}
	return diags
}

// orderedWriteCall reports stream/writer emissions inside the loop body:
// fmt.Fprint* and Write/WriteString/Print-style method calls.
func orderedWriteCall(pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	if f := pkgFuncObj(pkg, call.Fun, "fmt"); f != nil {
		switch f.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return diag(pkg, ruleMapRange, call,
				"fmt.%s inside range over map: output order depends on map iteration order", f.Name()), true
		}
	}
	if m := methodObj(pkg, call.Fun); m != nil {
		switch m.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return diag(pkg, ruleMapRange, call,
				"%s call inside range over map: output order depends on map iteration order", m.Name()), true
		}
	}
	return Diagnostic{}, false
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a sorting call somewhere in
// fd after the range loop ends — the "dominating sort before the values are
// consumed" escape hatch.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
					p := pn.Imported().Path()
					if p == "sort" || p == "slices" {
						name = "sort" // any call into sort/slices counts
					}
				}
			}
		}
		if !sortishName(name) {
			return true
		}
		for _, arg := range call.Args {
			if rootObj(pkg, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
