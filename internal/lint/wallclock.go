package lint

import (
	"go/ast"
)

// Wallclock flags reads of the host's real clock — time.Now, time.Since,
// time.Until — outside the allowlisted timing wrappers. gpClust's reported
// costs (the Table I component breakdown, the ablation numbers) come from
// the simulated device's virtual clock and the cpuAccount op pricing;
// sampling the wall clock anywhere else invites mixing host-dependent
// timings into results that must reproduce on any machine. The allowlist
// names the stopwatch helpers that measure the separate, explicitly
// host-dependent Result.Wall fields.
var Wallclock = &Analyzer{
	Name: ruleWallclock,
	Doc:  "time.Now/Since/Until outside an allowlisted timing wrapper",
	Run:  runWallclock,
}

var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallclock(cfg *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	forEachFunc(pkg, func(fd *ast.FuncDecl, name string) {
		if cfg.wallclockAllowed(pkg.Path, name) {
			return
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkgFuncObj(pkg, sel, "time")
			if obj == nil || !wallclockFuncs[obj.Name()] {
				return true
			}
			diags = append(diags, diag(pkg, ruleWallclock, sel,
				"time.%s outside an allowlisted timing wrapper: report costs through the virtual clock, or extend the stopwatch helper",
				obj.Name()))
			return true
		})
	})
	return diags
}
