package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreKey identifies one suppressed (file, line, rule) cell. Rule "all"
// suppresses every rule on the line.
type ignoreKey struct {
	file string
	line int
	rule string
}

type suppressions map[ignoreKey]bool

// match returns the directive key covering the diagnostic — on its own
// line or the line directly above, under its rule name or "all" — so the
// runner can both suppress the finding and record the directive as used
// for the stale-directive audit.
func (s suppressions) match(d Diagnostic) (ignoreKey, bool) {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range [2]string{d.Rule, "all"} {
			k := ignoreKey{d.Pos.Filename, line, rule}
			if s[k] {
				return k, true
			}
		}
	}
	return ignoreKey{}, false
}

const ignorePrefix = "//gpclint:ignore"

// directive is one well-formed ignore directive, kept for the stale audit.
type directive struct {
	key  ignoreKey
	pos  token.Position
	rule string
}

// collectIgnores scans a package's comments for //gpclint:ignore
// directives. Well-formed directives — a known rule name (or "all") plus a
// non-empty reason — populate the suppression set and the directive list;
// malformed ones are returned as findings so a bare ignore can't silently
// disable a rule.
func collectIgnores(pkg *Package, knownRules map[string]bool) (suppressions, []directive, []Diagnostic) {
	sup := make(suppressions)
	var dirs []directive
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, badIgnore(pos, "missing rule name and reason"))
				case fields[0] != "all" && !knownRules[fields[0]]:
					bad = append(bad, badIgnore(pos, "unknown rule %q", fields[0]))
				case len(fields) < 2:
					bad = append(bad, badIgnore(pos, "missing reason after rule %q", fields[0]))
				default:
					key := ignoreKey{pos.Filename, pos.Line, fields[0]}
					sup[key] = true
					dirs = append(dirs, directive{key: key, pos: pos, rule: fields[0]})
				}
			}
		}
	}
	return sup, dirs, bad
}

func badIgnore(pos token.Position, format string, args ...any) Diagnostic {
	return Diagnostic{
		Rule: "gpclint",
		Pos:  pos,
		Message: "malformed ignore directive: " + fmt.Sprintf(format, args...) +
			" (want //gpclint:ignore <rule> <reason>)",
	}
}
