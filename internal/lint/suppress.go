package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreKey identifies one suppressed (file, line, rule) cell. Rule "all"
// suppresses every rule on the line.
type ignoreKey struct {
	file string
	line int
	rule string
}

type suppressions map[ignoreKey]bool

// suppresses reports whether the diagnostic is covered by an ignore
// directive on its own line or the line directly above.
func (s suppressions) suppresses(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if s[ignoreKey{d.Pos.Filename, line, d.Rule}] || s[ignoreKey{d.Pos.Filename, line, "all"}] {
			return true
		}
	}
	return false
}

const ignorePrefix = "//gpclint:ignore"

// collectIgnores scans a package's comments for //gpclint:ignore
// directives. Well-formed directives — a known rule name (or "all") plus a
// non-empty reason — populate the suppression set; malformed ones are
// returned as findings so a bare ignore can't silently disable a rule.
func collectIgnores(pkg *Package, knownRules map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, badIgnore(pos, "missing rule name and reason"))
				case fields[0] != "all" && !knownRules[fields[0]]:
					bad = append(bad, badIgnore(pos, "unknown rule %q", fields[0]))
				case len(fields) < 2:
					bad = append(bad, badIgnore(pos, "missing reason after rule %q", fields[0]))
				default:
					sup[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return sup, bad
}

func badIgnore(pos token.Position, format string, args ...any) Diagnostic {
	return Diagnostic{
		Rule: "gpclint",
		Pos:  pos,
		Message: "malformed ignore directive: " + fmt.Sprintf(format, args...) +
			" (want //gpclint:ignore <rule> <reason>)",
	}
}
