package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The fixture annotation language:
//
//	// want <rule> "substr"        — a diagnostic of <rule> on this line whose
//	                                 message contains substr
//	// want:+N <rule> "substr"     — same, N lines below (for findings that
//	                                 land on comment-only or directive lines,
//	                                 which cannot host a trailing comment)
//
// Every annotated diagnostic must be produced and every produced diagnostic
// must be annotated: fixtures are exact, both positive and negative.
var wantRe = regexp.MustCompile(`// want(?::([+-]?\d+))? ([a-zA-Z-]+) "([^"]*)"`)

type expectation struct {
	file   string
	line   int
	rule   string
	substr string
	hit    bool
}

func (e *expectation) String() string {
	return fmt.Sprintf("%s:%d: %s: ...%s...", filepath.Base(e.file), e.line, e.rule, e.substr)
}

// fixtureDirs lists every fixture package relative to this directory. The
// generator subpackage is all-negative: it asserts the Generator exemption.
var fixtureDirs = []string{
	"testdata/src/maprange",
	"testdata/src/globalrand",
	"testdata/src/globalrand/generator",
	"testdata/src/wallclock",
	"testdata/src/atomicmix",
	"testdata/src/devmem",
	"testdata/src/devmemloop",
	"testdata/src/errcheck",
	"testdata/src/suppress",
	"testdata/src/vclocktaint",
	"testdata/src/goroutine",
	"testdata/src/configdrift",
}

// loadFixture type-checks one fixture package through the same loader and
// configuration the CLI uses.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	l, err := NewLoader(abs, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(abs)
	if err != nil {
		t.Fatalf("LoadDir %s: %v", dir, err)
	}
	return pkg
}

// collectWants parses the // want annotations out of a loaded package.
func collectWants(pkg *Package) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1])
					}
					wants = append(wants, &expectation{
						file:   pos.Filename,
						line:   pos.Line + offset,
						rule:   m[2],
						substr: m[3],
					})
				}
			}
		}
	}
	return wants
}

// TestFixtures runs the full analyzer suite over every fixture package and
// checks the produced diagnostics against the // want annotations, exactly:
// no missing findings, no extra findings, (rule, file, line) all asserted.
func TestFixtures(t *testing.T) {
	for _, dir := range fixtureDirs {
		t.Run(filepath.Base(filepath.Dir(dir))+"/"+filepath.Base(dir), func(t *testing.T) {
			pkg := loadFixture(t, dir)
			wants := collectWants(pkg)
			diags := Run(FixtureConfig(), []*Package{pkg}, Analyzers())

			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
						w.rule == d.Rule && strings.Contains(d.Message, w.substr) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic: want %s", w)
				}
			}
		})
	}
}

// TestFixtureCoverage asserts every analyzer (plus the "gpclint" pseudo-rule
// for malformed directives) has at least one positive fixture expectation —
// the guarantee that each rule's detection is actually exercised.
func TestFixtureCoverage(t *testing.T) {
	covered := make(map[string]int)
	for _, dir := range fixtureDirs {
		pkg := loadFixture(t, dir)
		for _, w := range collectWants(pkg) {
			covered[w.rule]++
		}
	}
	var rules []string
	for _, a := range Analyzers() {
		rules = append(rules, a.Name)
	}
	rules = append(rules, "gpclint")
	sort.Strings(rules)
	for _, r := range rules {
		if covered[r] == 0 {
			t.Errorf("rule %s has no positive fixture expectation", r)
		}
	}
}

// TestFixturePositivesFailCLI mirrors the CLI acceptance criterion: running
// the suite over each positive fixture package yields a non-empty finding
// list (so cmd/gpclint exits non-zero on it), while the generator package —
// the designed-clean one — yields nothing.
func TestFixturePositivesFailCLI(t *testing.T) {
	for _, dir := range fixtureDirs {
		pkg := loadFixture(t, dir)
		diags := Run(FixtureConfig(), []*Package{pkg}, Analyzers())
		clean := strings.HasSuffix(dir, "/generator")
		if clean && len(diags) != 0 {
			t.Errorf("%s: want 0 findings, got %d (first: %s)", dir, len(diags), diags[0])
		}
		if !clean && len(diags) == 0 {
			t.Errorf("%s: want at least one finding, got none", dir)
		}
	}
}

// TestPkgMatch pins the suffix-matching semantics the configuration relies
// on: exact path, suffix at a path boundary, and interior segments all
// match; substring matches inside a segment must not.
func TestPkgMatch(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"gpclust/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"gpclust/internal/core/sub", "internal/core", true},
		{"gpclust/internal/coreutils", "internal/core", false},
		{"gpclust/internal/minwise", "internal/core", false},
		{"gpclust/internal/lint/testdata/src/maprange", "lint/testdata/src/maprange", true},
	}
	for _, c := range cases {
		if got := pkgMatch(c.path, c.suffix); got != c.want {
			t.Errorf("pkgMatch(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

// TestRunOrdering checks Run sorts diagnostics by (file, line, column, rule)
// so gate output is stable across map-ordered analyzer internals.
func TestRunOrdering(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/suppress")
	diags := Run(FixtureConfig(), []*Package{pkg}, Analyzers())
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	}) {
		t.Errorf("diagnostics not sorted: %v", diags)
	}
}
