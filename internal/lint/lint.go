// Package lint is gpClust's project-specific static-analysis engine. It
// exists because the repository's headline claims rest on invariants that
// ordinary Go tooling cannot see: the clustering must be a deterministic
// function of the seed (serial == parallel == GPU, bit-identical for any
// worker count), reported costs must come from the virtual clock rather
// than the host's wall clock, and the simulated device's manual
// Malloc/Free discipline must hold on every path, including error paths.
//
// The engine is deliberately stdlib-only: packages are parsed with
// go/parser, build-constraint-filtered with go/build, and type-checked
// with go/types backed by the source importer — no golang.org/x/tools
// dependency, so it runs in the offline build environment. cmd/gpclint is
// the command-line driver; scripts/ci.sh runs it as a tier-1 gate.
//
// Findings can be suppressed, one line at a time, with
//
//	//gpclint:ignore <rule> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory; an ignore directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Rule names, shared by the analyzer values and their run functions.
const (
	ruleMapRange       = "maprange-order"
	ruleGlobalRand     = "global-rand"
	ruleWallclock      = "wallclock"
	ruleAtomicMix      = "atomic-mix"
	ruleDevMem         = "devmem"
	ruleUncheckedError = "unchecked-error"
	ruleVClockTaint    = "vclock-taint"
	ruleGoroutine      = "goroutine-discipline"
	ruleConfigDrift    = "config-drift"
)

// Diagnostic is one finding: a rule name, a position, and a message.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package as the analyzers see it.
type Package struct {
	Path  string // import path, e.g. gpclust/internal/core
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, build-constraint filtered
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one lint rule. Run sees one package at a time; RunModule,
// when set, additionally runs once over the whole loaded package set —
// the hook the config-drift meta-audit uses to compare the configuration
// against everything it is supposed to govern.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(cfg *Config, pkg *Package) []Diagnostic
	RunModule func(cfg *Config, pkgs []*Package) []Diagnostic
}

// Analyzers returns the full rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeOrder,
		GlobalRand,
		Wallclock,
		AtomicMix,
		DevMem,
		UncheckedError,
		VClockTaint,
		GoroutineDiscipline,
		ConfigDrift,
	}
}

// Run applies every analyzer to every package, filters suppressed findings
// through the //gpclint:ignore directives, and returns the remainder in
// (file, line, column, rule) order. Malformed directives and directives
// naming unknown rules are reported under the pseudo-rule "gpclint".
//
// After the per-package pass, analyzers with a RunModule hook run once
// over the whole package set. Finally, when the full rule suite ran and
// config-drift is among it, every well-formed ignore directive that
// suppressed nothing is itself reported: a directive with no finding
// under it is drift — either the excused code was fixed (delete the
// directive) or the rule no longer sees the pattern (investigate).
func Run(cfg *Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	fullSuite := true
	for _, a := range Analyzers() {
		if !known[a.Name] {
			fullSuite = false
		}
	}

	var out []Diagnostic
	allSup := make(suppressions)
	used := make(map[ignoreKey]bool)
	var directives []directive
	for _, pkg := range pkgs {
		sup, dirs, bad := collectIgnores(pkg, known)
		out = append(out, bad...)
		directives = append(directives, dirs...)
		for k := range sup {
			allSup[k] = true
		}
		for _, a := range analyzers {
			for _, d := range a.Run(cfg, pkg) {
				if key, ok := sup.match(d); ok {
					used[key] = true
					continue
				}
				out = append(out, d)
			}
		}
	}

	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		for _, d := range a.RunModule(cfg, pkgs) {
			if key, ok := allSup.match(d); ok {
				used[key] = true
				continue
			}
			out = append(out, d)
		}
	}

	if known[ruleConfigDrift] && fullSuite {
		for _, dir := range directives {
			if dir.rule == ruleConfigDrift || used[dir.key] {
				continue
			}
			d := Diagnostic{
				Rule: ruleConfigDrift,
				Pos:  dir.pos,
				Message: fmt.Sprintf("stale ignore directive for %q: it suppresses nothing — the excused finding is gone, delete the directive",
					dir.rule),
			}
			if key, ok := allSup.match(d); ok {
				used[key] = true
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// diag builds a Diagnostic at a node's position.
func diag(pkg *Package, rule string, node ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Rule:    rule,
		Pos:     pkg.Fset.Position(node.Pos()),
		Message: fmt.Sprintf(format, args...),
	}
}
