package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedError flags statement-position calls whose error result is
// silently dropped. In this codebase an ignored error is usually a dropped
// device failure (out-of-memory, bad launch geometry) or a dropped I/O
// failure, both of which corrupt results far from the call site. Explicitly
// assigning to the blank identifier (`_ = f()`) remains legal: it states
// the intent where a bare call hides it.
var UncheckedError = &Analyzer{
	Name: ruleUncheckedError,
	Doc:  "discarded error result in non-test code",
	Run:  runUncheckedError,
}

func runUncheckedError(cfg *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	check := func(call *ast.CallExpr, kind string) {
		if !callReturnsError(pkg, call) || calleeAllowed(cfg, pkg, call) {
			return
		}
		diags = append(diags, diag(pkg, ruleUncheckedError, call,
			"%serror result of %s is discarded; handle it or assign it to _ explicitly",
			kind, calleeName(pkg, call)))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(s.Call, "deferred ")
			case *ast.GoStmt:
				check(s.Call, "goroutine ")
			}
			return true
		})
	}
	return diags
}

// callReturnsError reports whether the call's last result is an error.
func callReturnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(tv.Type)
	}
}

// calleeAllowed consults the config's discard allowlist using the callee
// object's canonical string form.
func calleeAllowed(cfg *Config, pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObj(pkg, call)
	return obj != nil && cfg.errAllowed(obj.String())
}

func calleeObj(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

func calleeName(pkg *Package, call *ast.CallExpr) string {
	if obj := calleeObj(pkg, call); obj != nil {
		if obj.Pkg() != nil && obj.Pkg() != pkg.Types {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return "call"
}
