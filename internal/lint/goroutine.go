package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineDiscipline enforces the two concurrency rules the bit-identical
// contract rests on, in determinism-critical packages only.
//
// First: a goroutine body (a `go func(){...}` literal, or a literal handed
// to a parallel runner — any callee whose name mentions parallel,
// concurrent, lanes, spawn or worker) must not write shared captured
// state. The sanctioned patterns survive: indexing into a slice is the
// disjoint-partition idiom (each worker owns its stripe), taking a
// pointer to your own element and writing through the local is fine, and
// a body that takes a lock is assumed to know what it is doing. What gets
// flagged is the state that actually races or reorders: plain captured
// scalars, appends to a shared slice, and writes into a shared map —
// concurrent map writes are a runtime fault, and even "safe" ones insert
// in scheduler order.
//
// Second: a `select` over two or more ready channels picks a case
// pseudo-randomly by design. When the winning case emits ordered output —
// appends to a result slice, forwards on a channel, writes a stream — the
// output order is a scheduler artifact. Draining channels in a fixed
// sequence (or tagging and sorting afterwards) is the deterministic shape.
var GoroutineDiscipline = &Analyzer{
	Name: ruleGoroutine,
	Doc:  "goroutine writes shared captured state, or select feeds ordered output, in a determinism-critical package",
	Run:  runGoroutineDiscipline,
}

// parallelishCallee reports whether a call plausibly runs its function
// literal arguments concurrently, by callee name.
func parallelishCallee(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, hint := range []string{"parallel", "concurrent", "lanes", "spawn", "worker"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

func runGoroutineDiscipline(cfg *Config, pkg *Package) []Diagnostic {
	if !matchAny(pkg.Path, cfg.DeterminismCritical) {
		return nil
	}
	var diags []Diagnostic
	forEachFunc(pkg, func(fd *ast.FuncDecl, _ string) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					diags = append(diags, checkSharedWrites(pkg, lit)...)
				}
			case *ast.CallExpr:
				if parallelishCallee(s) {
					for _, arg := range s.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							diags = append(diags, checkSharedWrites(pkg, lit)...)
						}
					}
				}
			case *ast.SelectStmt:
				diags = append(diags, checkSelectOrder(pkg, s)...)
			}
			return true
		})
	})
	return diags
}

// declaredWithin reports whether the object's declaration lies inside the
// node's source range — the "captured from outside" test.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// takesLock reports whether the body calls a Lock/RLock method; such
// bodies are presumed to serialize their shared writes.
func takesLock(body *ast.BlockStmt) bool {
	locked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					locked = true
				}
			}
		}
		return !locked
	})
	return locked
}

// checkSharedWrites flags assignments inside a concurrently-run literal
// whose target is state captured from the enclosing function.
func checkSharedWrites(pkg *Package, lit *ast.FuncLit) []Diagnostic {
	if takesLock(lit.Body) {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A nested literal is a separate function; if it is itself
			// launched concurrently the outer walk visits it directly.
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if d, ok := sharedWrite(pkg, lit, lhs); ok {
					diags = append(diags, d)
				}
			}
		case *ast.IncDecStmt:
			if d, ok := sharedWrite(pkg, lit, s.X); ok {
				diags = append(diags, d)
			}
		}
		return true
	})
	return diags
}

// sharedWrite classifies one assignment target inside the literal.
// Slice/array element writes are the disjoint-partition idiom and pass;
// a captured plain variable or a captured map element is a finding.
func sharedWrite(pkg *Package, lit *ast.FuncLit, lhs ast.Expr) (Diagnostic, bool) {
	e := lhs
	sawMapIndex := false
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			// Field path: keep walking to the base object. pkg-qualified
			// idents resolve below via the Ident case.
			e = v.X
		case *ast.IndexExpr:
			switch pkg.Info.TypeOf(v.X).Underlying().(type) {
			case *types.Map:
				sawMapIndex = true
				e = v.X
			default:
				// Slice/array element: each worker writes its own index.
				return Diagnostic{}, false
			}
		case *ast.StarExpr:
			// Writing through a pointer the body derived locally is the
			// own-element idiom; the pointer variable itself is checked.
			e = v.X
		case *ast.Ident:
			obj := pkg.Info.Uses[v]
			if obj == nil {
				obj = pkg.Info.Defs[v]
			}
			vr, ok := obj.(*types.Var)
			if !ok || declaredWithin(vr, lit) {
				return Diagnostic{}, false
			}
			what := "captured variable"
			if sawMapIndex {
				what = "captured map"
			}
			return diag(pkg, ruleGoroutine, lhs,
				"goroutine writes %s %q without synchronization: give each worker its own slot and merge deterministically", what, vr.Name()), true
		default:
			return Diagnostic{}, false
		}
	}
}

// checkSelectOrder flags selects over multiple channels whose winning
// case emits ordered output.
func checkSelectOrder(pkg *Package, sel *ast.SelectStmt) []Diagnostic {
	comm := 0
	for _, cl := range sel.Body.List {
		if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm < 2 {
		return nil
	}
	var diags []Diagnostic
	for _, cl := range sel.Body.List {
		c, ok := cl.(*ast.CommClause)
		if !ok || c.Comm == nil {
			continue
		}
		for _, st := range c.Body {
			if emitsOrderedOutput(pkg, sel, st) {
				diags = append(diags, diag(pkg, ruleGoroutine,
					sel, "select over %d channels feeds ordered output: winner order is scheduler-dependent, drain channels in a fixed sequence", comm))
				return diags
			}
		}
	}
	return diags
}

// emitsOrderedOutput reports whether the statement appends to state from
// outside the select, sends on a channel, or writes a stream.
func emitsOrderedOutput(pkg *Package, sel *ast.SelectStmt, st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if _, ok := orderedWriteCall(pkg, s); ok {
				found = true
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pkg, call) || i >= len(s.Lhs) {
					continue
				}
				if obj := rootObj(pkg, s.Lhs[i]); obj != nil && !declaredWithin(obj, sel) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
