package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ConfigDrift audits the gate's own configuration against the tree it is
// gating. A lint config rots in a specific direction: packages get
// renamed and their DeterminismCritical entries silently match nothing,
// allowlisted helper functions are refactored away while their exemptions
// linger as an open door, new device-touching packages appear without
// being classified, and ignore directives outlive the findings they
// excused. Every one of those failure modes widens the gate without
// anyone deciding to widen it, so the drift itself is a finding.
//
// Per package (any run): an internal package that imports the simulated
// device (internal/gpusim) or the kernel library (internal/thrust) must
// be classified DeterminismCritical or Generator — device work feeds the
// clustering result by construction.
//
// Per module (only when the loaded set includes the module root package,
// i.e. a whole-tree run): DeterminismCritical and Generator entries must
// match a loaded package; WallclockAllow entries must name a function
// that still exists in a matching package; ErrAllow entries must be
// "func "-prefixed object strings. Stale ignore directives — well-formed,
// full suite running, yet suppressing nothing — are reported by the
// runner under this rule as well.
var ConfigDrift = &Analyzer{
	Name:      ruleConfigDrift,
	Doc:       "lint configuration out of sync with the tree: dead entries, unclassified device packages, stale ignores",
	Run:       runConfigDriftPkg,
	RunModule: runConfigDriftModule,
}

// devicePkgs are the packages whose importers must be classified.
var devicePkgs = []string{"internal/gpusim", "internal/thrust"}

func runConfigDriftPkg(cfg *Config, pkg *Package) []Diagnostic {
	if !strings.Contains("/"+pkg.Path+"/", "/internal/") {
		return nil
	}
	if matchAny(pkg.Path, devicePkgs) {
		return nil
	}
	if matchAny(pkg.Path, cfg.DeterminismCritical) || matchAny(pkg.Path, cfg.Generator) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if matchAny(path, devicePkgs) {
				diags = append(diags, diag(pkg, ruleConfigDrift, imp,
					"package %s imports %s but is classified neither DeterminismCritical nor Generator: device work feeds the clustering result", pkg.Path, path))
			}
		}
	}
	return diags
}

// configPos is the synthetic position configuration-entry findings carry:
// they have no source line, the config itself is the subject.
func configPos() token.Position {
	return token.Position{Filename: "(gpclint config)"}
}

func runConfigDriftModule(cfg *Config, pkgs []*Package) []Diagnostic {
	// Whole-tree gate: configuration entries are only checkable against
	// the full package set, which every tree run includes via the module
	// root package (the one import path without a slash).
	root := false
	for _, p := range pkgs {
		if !strings.Contains(p.Path, "/") {
			root = true
		}
	}
	if !root {
		return nil
	}
	var diags []Diagnostic
	drift := func(format string, args ...any) {
		diags = append(diags, Diagnostic{Rule: ruleConfigDrift, Pos: configPos(),
			Message: fmt.Sprintf(format, args...)})
	}

	anyPkg := func(suffix string) bool {
		for _, p := range pkgs {
			if pkgMatch(p.Path, suffix) {
				return true
			}
		}
		return false
	}
	for _, entry := range cfg.DeterminismCritical {
		if !anyPkg(entry) {
			drift("DeterminismCritical entry %q matches no loaded package", entry)
		}
	}
	for _, entry := range cfg.Generator {
		if !anyPkg(entry) {
			drift("Generator entry %q matches no loaded package", entry)
		}
	}

	// Function-level allowlist entries must still resolve to a declared
	// function (or method, in "recvtype.name" form) of a matching package.
	for _, allow := range cfg.WallclockAllow {
		matched, found := false, false
		for _, p := range pkgs {
			if !pkgMatch(p.Path, allow.PkgSuffix) {
				continue
			}
			matched = true
			forEachFunc(p, func(_ *ast.FuncDecl, name string) {
				if name == allow.Func {
					found = true
				}
			})
		}
		switch {
		case !matched:
			drift("WallclockAllow entry %s.%s matches no loaded package", allow.PkgSuffix, allow.Func)
		case !found:
			drift("WallclockAllow entry %s.%s names no declared function", allow.PkgSuffix, allow.Func)
		}
	}

	for _, entry := range cfg.ErrAllow {
		if !strings.HasPrefix(entry, "func ") {
			drift("ErrAllow entry %q is not a types.Object string prefix (want \"func ...\")", entry)
		}
	}
	return diags
}
