// Package cfg builds per-function control-flow graphs from go/ast and runs
// forward dataflow analyses over them to a worklist fixpoint. It is the
// engine under gpclint's path-sensitive analyzers (devmem, vclock-taint):
// where the v1 walkers saw statements in source order and were blind to
// loop back edges, the CFG makes every path explicit — a `continue` that
// skips a cleanup, a `goto` into a retry label, a `select` arm that
// returns early — so a dataflow fact ("this buffer is still live", "this
// value is wall-clock tainted") is propagated exactly along the paths the
// program can take.
//
// The builder covers the full Go statement repertoire that affects control
// flow: if/else chains, for (all three clauses), range, switch and type
// switch (including fallthrough), select, labeled break and continue,
// goto, and return. Defer does not alter the graph — a DeferStmt is an
// ordinary node in its block, and analyzers that care about deferred
// effects (devmem's `defer buf.Free()`) interpret it in their transfer
// functions, which is sound because a defer registered on a path protects
// exactly the exits reachable from that registration point. Panic calls
// and calls to functions that provably never return end their block with
// no successors.
//
// Like the rest of internal/lint, the package is stdlib-only.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: a maximal run of straight-line nodes followed
// by a control transfer. Nodes holds simple statements (assignments,
// expression statements, declarations, defers, go statements, sends,
// returns) in execution order; control conditions live in Cond, not in
// Nodes.
type Block struct {
	Index int    // position in Graph.Blocks, stable across builds
	Kind  string // "entry", "exit", "if.then", "for.head", ... for debugging and goldens

	// Nodes are the block's straight-line statements in order. A
	// ReturnStmt, when present, is always last.
	Nodes []ast.Node

	// Cond is the branch condition when the block ends in a two-way
	// conditional: Succs[0] is the true edge, Succs[1] the false edge.
	// Nil for unconditional transfers and multi-way branches (switch
	// heads, select heads, range heads).
	Cond ast.Expr

	Succs []*Block
	Preds []*Block
}

// Graph is one function body's control-flow graph. Entry is Blocks[0];
// Exit is the single synthetic exit block every return and the fall-off
// end of the body lead to. Blocks unreachable from Entry (dead code after
// returns, unused labels) are retained but excluded from RPO.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	rpo []*Block // reverse postorder over reachable blocks, memoized
}

// New builds the CFG for a function body. It never fails: unresolvable
// gotos (malformed code that would not type-check) simply produce a block
// with no successors.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		labels: make(map[string]*labelBlocks),
		gotos:  make(map[string][]*Block),
	}
	b.g = &Graph{}
	entry := b.newBlock("entry")
	b.g.Entry = entry
	b.g.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmtList(body.List)
	// Fall-off end of the body: an implicit return.
	b.jump(b.cur, b.g.Exit)
	// Resolve any forward gotos left dangling (labels later in the body
	// were handled as encountered; anything left names a label that does
	// not exist, which go/types would reject anyway).
	for _, bl := range b.g.Blocks {
		dedupSuccs(bl)
	}
	for _, bl := range b.g.Blocks {
		for _, s := range bl.Succs {
			s.Preds = append(s.Preds, bl)
		}
	}
	return b.g
}

// RPO returns the blocks reachable from Entry in reverse postorder — the
// iteration order that makes forward dataflow converge fastest.
func (g *Graph) RPO() []*Block {
	if g.rpo != nil {
		return g.rpo
	}
	seen := make(map[*Block]bool)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	rpo := make([]*Block, len(post))
	for i, b := range post {
		rpo[len(post)-1-i] = b
	}
	g.rpo = rpo
	return rpo
}

// String renders the graph in a stable, compact text form used by the
// golden shape tests: one line per reachable block, "idx kind -> succs".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.RPO() {
		fmt.Fprintf(&sb, "%d %s [%d]", b.Index, b.Kind, len(b.Nodes))
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// labelBlocks tracks the targets a label exposes: the labeled statement's
// own block (for goto and labeled continue resolution) plus the break
// target once known.
type labelBlocks struct {
	head     *Block // block of the labeled statement itself (goto target)
	brk      *Block // break-to block (join after the labeled loop/switch)
	cont     *Block // continue-to block (loop post/head), loops only
	resolved bool
}

type builder struct {
	g      *Graph
	cur    *Block // current block; nil after a terminating transfer
	labels map[string]*labelBlocks
	gotos  map[string][]*Block // unresolved forward gotos by label

	// innermost break/continue targets (unlabeled)
	breakStack []*Block
	contStack  []*Block

	// pendingLabel is set while building the statement a label names, so
	// its loop can register labeled break/continue targets.
	pendingLabel string
}

func (b *builder) newBlock(kind string) *Block {
	bl := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

// jump adds an unconditional edge from from (if live) to to (if known —
// a nil target, e.g. break outside any loop in code go/types would
// reject, drops the edge).
func (b *builder) jump(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// startBlock makes a fresh block the current one. Callers add the edge(s)
// leading to it first.
func (b *builder) startBlock(kind string) *Block {
	bl := b.newBlock(kind)
	b.cur = bl
	return bl
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		// Dead code after a terminator: park it in an unreachable block
		// so analyzers that scan all nodes still see it.
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil // panic: no fallthrough edge, defers still run
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		var tag ast.Stmt
		if s.Tag != nil {
			tag = &ast.ExprStmt{X: s.Tag}
		}
		b.switchStmt(s.Init, tag, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		// The assign/guard statement (x := y.(type)) binds the per-case
		// variable; record it on the head like a switch tag.
		b.switchStmt(s.Init, s.Assign, s.Body, "typeswitch")

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	default:
		// Future statement kinds: treat as straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.cur
	if head == nil {
		head = b.startBlock("dead")
	}
	head.Cond = s.Cond

	then := b.newBlock("if.then")
	b.jump(head, then) // Succs[0]: condition true
	var els *Block
	if s.Else != nil {
		els = b.newBlock("if.else")
		b.jump(head, els) // Succs[1]: condition false
	}

	join := b.newBlock("if.join")
	if s.Else == nil {
		b.jump(head, join) // Succs[1]: condition false
	}

	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(b.cur, join)

	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		b.jump(b.cur, join)
	}

	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(b.cur, head)
	b.cur = head

	body := b.newBlock("for.body")
	exit := b.newBlock("for.exit")
	if s.Cond != nil {
		head.Cond = s.Cond
		head.Succs = append(head.Succs, body, exit) // true, false
	} else {
		head.Succs = append(head.Succs, body) // for {}: no exit edge
	}

	// continue target: the post block when present, else the head.
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.pushLoop(exit, cont, label)

	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(b.cur, cont)

	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.jump(b.cur, head)
	}

	b.popLoop(label)
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.jump(b.cur, head)
	// The range head both evaluates the operand and binds the iteration
	// variables; analyzers see the whole RangeStmt as the head's node.
	head.Nodes = append(head.Nodes, s)

	body := b.newBlock("range.body")
	exit := b.newBlock("range.exit")
	head.Succs = append(head.Succs, body, exit) // iterate, done

	b.pushLoop(exit, head, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(b.cur, head)
	b.popLoop(label)
	b.cur = exit
}

// switchStmt builds both expression and type switches: a head evaluating
// init and the tag (or type-switch guard), one block per case, fallthrough
// edges between consecutive case bodies, and a join that is also the break
// target.
func (b *builder) switchStmt(init, tag ast.Stmt, body *ast.BlockStmt, kind string) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	head := b.cur
	if head == nil {
		head = b.startBlock("dead")
	}
	if tag != nil {
		// The tag/guard is evaluated once at the head; keep it visible
		// to analyzers as a node.
		head.Nodes = append(head.Nodes, tag)
	}
	head.Kind = kind + ".head"

	join := b.newBlock(kind + ".join")

	var caseBlocks []*Block
	var caseBodies [][]ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock(kind + ".case")
		// Case guard expressions are evaluated against the tag; record
		// them on the case block so analyzers can inspect.
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, &ast.ExprStmt{X: e})
		}
		b.jump(head, cb)
		caseBlocks = append(caseBlocks, cb)
		caseBodies = append(caseBodies, cc.Body)
	}
	if !hasDefault {
		b.jump(head, join) // no case matches
	}

	// break inside a switch exits to join.
	b.pushBreak(join, label)
	for i, cb := range caseBlocks {
		b.cur = cb
		b.stmtListWithFallthrough(caseBodies[i], i, caseBlocks)
		b.jump(b.cur, join)
	}
	b.popBreak(label)
	b.cur = join
}

// stmtListWithFallthrough builds a case body, turning a trailing
// fallthrough into an edge to the next case's block.
func (b *builder) stmtListWithFallthrough(list []ast.Stmt, i int, cases []*Block) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			if i+1 < len(cases) {
				b.jump(b.cur, cases[i+1])
			}
			b.cur = nil
			return
		}
		b.stmt(s)
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.startBlock("dead")
	}
	head.Kind = "select.head"
	join := b.newBlock("select.join")

	var clauses []*ast.CommClause
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			clauses = append(clauses, cc)
		}
	}
	if len(clauses) == 0 {
		// select{} blocks forever: no successors.
		b.cur = join
		join.Kind = "select.join.dead"
		return
	}
	b.pushBreak(join, label)
	for _, cc := range clauses {
		cb := b.newBlock("select.case")
		b.jump(head, cb)
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
		}
		b.cur = cb
		b.stmtList(cc.Body)
		b.jump(b.cur, join)
	}
	b.popBreak(label)
	b.cur = join
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	// The label's head block: where gotos land.
	head := b.newBlock("label." + name)
	b.jump(b.cur, head)
	// Earlier forward gotos now resolve.
	for _, from := range b.gotos[name] {
		from.Succs = append(from.Succs, head)
	}
	delete(b.gotos, name)
	lb.head = head
	lb.resolved = true
	b.cur = head
	b.pendingLabel = name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		var target *Block
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil {
				target = lb.brk
			}
		} else if n := len(b.breakStack); n > 0 {
			target = b.breakStack[n-1]
		}
		b.jump(b.cur, target)
		b.cur = nil
	case "continue":
		var target *Block
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil {
				target = lb.cont
			}
		} else if n := len(b.contStack); n > 0 {
			target = b.contStack[n-1]
		}
		b.jump(b.cur, target)
		b.cur = nil
	case "goto":
		if s.Label == nil {
			b.cur = nil
			return
		}
		if lb := b.labels[s.Label.Name]; lb != nil && lb.resolved {
			b.jump(b.cur, lb.head) // backward goto
		} else if b.cur != nil {
			// Forward goto: record for resolution at the label.
			b.gotos[s.Label.Name] = append(b.gotos[s.Label.Name], b.cur)
		}
		b.cur = nil
	case "fallthrough":
		// Handled inside stmtListWithFallthrough; a stray one (invalid
		// Go) terminates the block.
		b.cur = nil
	}
}

func (b *builder) pushLoop(brk, cont *Block, label string) {
	b.breakStack = append(b.breakStack, brk)
	b.contStack = append(b.contStack, cont)
	if label != "" {
		lb := b.labels[label]
		lb.brk = brk
		lb.cont = cont
	}
}

func (b *builder) popLoop(label string) {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
	_ = label
}

func (b *builder) pushBreak(brk *Block, label string) {
	b.breakStack = append(b.breakStack, brk)
	if label != "" {
		b.labels[label].brk = brk
	}
}

func (b *builder) popBreak(label string) {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	_ = label
}

// takeLabel consumes the pending label set by labeledStmt so the loop or
// switch being built can register its labeled break/continue targets.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isPanicCall matches a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// dedupSuccs removes duplicate successor edges while preserving order —
// a block can acquire the same successor twice through merged paths, and
// one edge carries the same dataflow information. Conditional blocks
// (Cond != nil) always have two distinct successors, so the true/false
// index contract survives deduplication.
func dedupSuccs(b *Block) {
	if len(b.Succs) < 2 {
		return
	}
	seen := make(map[*Block]bool, len(b.Succs))
	out := b.Succs[:0]
	for _, s := range b.Succs {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	b.Succs = out
}
