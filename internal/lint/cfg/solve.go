package cfg

import (
	"fmt"
	"go/ast"
)

// Flow is one forward dataflow analysis over states of type S. The solver
// owns iteration order and convergence; the Flow owns the lattice (Join,
// Equal), the per-node transfer function, and optional branch-edge
// refinement.
//
// Convergence contract: Join must be associative, commutative and
// idempotent, and Transfer/Refine must be monotone over the join order.
// The solver additionally enforces a hard iteration bound proportional to
// the graph size, so a non-monotone Flow degrades to a conservative
// over-approximation instead of hanging the linter.
type Flow[S any] interface {
	// Entry returns the state at function entry.
	Entry() S

	// Transfer applies one straight-line node to the state, returning
	// the state after it. It may mutate and return s.
	Transfer(n ast.Node, s S) S

	// Refine narrows the state along a conditional edge: cond is the
	// block's branch condition, branch is true for the Succs[0] edge.
	// Called only for blocks with Cond != nil; return s unchanged when
	// the condition carries no information.
	Refine(cond ast.Expr, branch bool, s S) S

	// Join merges the states of two incoming edges. It must not mutate
	// its arguments.
	Join(a, b S) S

	// Equal reports whether two states carry the same facts; the solver
	// stops propagating an edge when the joined state is Equal to the
	// stored one.
	Equal(a, b S) bool

	// Clone returns an independent copy Transfer may mutate.
	Clone(s S) S
}

// Solve runs the flow to fixpoint and returns each reachable block's
// IN state (the join over incoming edges, before the block's own nodes).
// Replay a block's transfer over its IN state to observe intermediate
// facts — that is how analyzers position their diagnostics.
func Solve[S any](g *Graph, f Flow[S]) map[*Block]S {
	rpo := g.RPO()
	in := make(map[*Block]S, len(rpo))
	have := make(map[*Block]bool, len(rpo))
	in[g.Entry] = f.Entry()
	have[g.Entry] = true

	// Worklist seeded in RPO; a simple FIFO with membership dedup is
	// plenty at lint-function scale.
	queue := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}

	// Hard bound: |blocks|^2 * 4 + 64 pops. Any finite-height lattice
	// converges far below it; the bound only exists to make a buggy
	// Flow fail safe (see TestSolveTermination).
	limit := len(rpo)*len(rpo)*4 + 64

	for steps := 0; len(queue) > 0 && steps < limit; steps++ {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		out := f.Clone(in[b])
		for _, n := range b.Nodes {
			out = f.Transfer(n, out)
		}
		for i, s := range b.Succs {
			edge := out
			if b.Cond != nil && len(b.Succs) == 2 {
				edge = f.Refine(b.Cond, i == 0, f.Clone(out))
			}
			var next S
			if have[s] {
				next = f.Join(in[s], edge)
				if f.Equal(next, in[s]) {
					continue
				}
			} else {
				next = f.Clone(edge)
				have[s] = true
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}

// Replay is a convenience for analyzers: it walks every reachable
// block, replays the transfer function over the block's IN state, and
// invokes visit before each node with the state at that program point.
func Replay[S any](g *Graph, f Flow[S], in map[*Block]S, visit func(b *Block, n ast.Node, s S)) {
	for _, b := range g.RPO() {
		s, ok := in[b]
		if !ok {
			continue
		}
		cur := f.Clone(s)
		for _, n := range b.Nodes {
			visit(b, n, cur)
			cur = f.Transfer(n, cur)
		}
	}
}

// AtExit invokes visit with the state at each edge into the synthetic
// exit block that is NOT produced by a return statement — i.e. the
// fall-off end of the function body. Analyzers use it to check facts at
// the implicit return.
func AtExit[S any](g *Graph, f Flow[S], in map[*Block]S, visit func(b *Block, s S)) {
	for _, b := range g.RPO() {
		s, ok := in[b]
		if !ok {
			continue
		}
		toExit := false
		for _, sc := range b.Succs {
			if sc == g.Exit {
				toExit = true
			}
		}
		if !toExit {
			continue
		}
		if n := len(b.Nodes); n > 0 {
			if _, isRet := b.Nodes[n-1].(*ast.ReturnStmt); isRet {
				continue
			}
		}
		cur := f.Clone(s)
		for _, n := range b.Nodes {
			cur = f.Transfer(n, cur)
		}
		visit(b, cur)
	}
}

// DebugDump renders block IN states with a caller-supplied formatter;
// used by the cfg tests and occasionally handy under a debugger.
func DebugDump[S any](g *Graph, in map[*Block]S, format func(S) string) string {
	out := ""
	for _, b := range g.RPO() {
		s, ok := in[b]
		if !ok {
			continue
		}
		out += fmt.Sprintf("%d %s: %s\n", b.Index, b.Kind, format(s))
	}
	return out
}
