package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// parseBody parses `src` as the body of a function and returns its CFG.
func parseBody(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f(n int, ch chan int, m map[int]int, xs []int, v any) {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// TestShapes pins the CFG shape for each statement kind: block kinds,
// node counts, and successor edges in the stable String() rendering.
func TestShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "straightline",
			src:  "x := 1\n_ = x",
			want: "0 entry [2] -> 1\n1 exit [0]\n",
		},
		{
			name: "if",
			src:  "x := 1\nif x > 0 {\nx = 2\n}\n_ = x",
			want: "0 entry [1] -> 2 3\n2 if.then [1] -> 3\n3 if.join [1] -> 1\n1 exit [0]\n",
		},
		{
			name: "ifelse",
			src:  "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x",
			want: "0 entry [1] -> 2 3\n3 if.else [1] -> 4\n2 if.then [1] -> 4\n4 if.join [1] -> 1\n1 exit [0]\n",
		},
		{
			name: "for",
			src:  "s := 0\nfor i := 0; i < n; i++ {\ns += i\n}\n_ = s",
			want: "0 entry [2] -> 2\n2 for.head [0] -> 3 4\n4 for.exit [1] -> 1\n1 exit [0]\n3 for.body [1] -> 5\n5 for.post [1] -> 2\n",
		},
		{
			name: "forever",
			src:  "for {\nn++\n}",
			want: "0 entry [0] -> 2\n2 for.head [0] -> 3\n3 for.body [1] -> 2\n",
		},
		{
			name: "range",
			src:  "s := 0\nfor _, x := range xs {\ns += x\n}\n_ = s",
			want: "0 entry [1] -> 2\n2 range.head [1] -> 3 4\n4 range.exit [1] -> 1\n1 exit [0]\n3 range.body [1] -> 2\n",
		},
		{
			name: "continue",
			src:  "for i := 0; i < n; i++ {\nif i == 3 {\ncontinue\n}\nn--\n}",
			want: "0 entry [1] -> 2\n2 for.head [0] -> 3 4\n4 for.exit [0] -> 1\n1 exit [0]\n3 for.body [0] -> 6 7\n7 if.join [1] -> 5\n6 if.then [0] -> 5\n5 for.post [1] -> 2\n",
		},
		{
			name: "break",
			src:  "for i := 0; i < n; i++ {\nif i == 3 {\nbreak\n}\n}",
			want: "0 entry [1] -> 2\n2 for.head [0] -> 3 4\n3 for.body [0] -> 6 7\n7 if.join [0] -> 5\n5 for.post [1] -> 2\n6 if.then [0] -> 4\n4 for.exit [0] -> 1\n1 exit [0]\n",
		},
		{
			name: "labeled",
			src:  "outer:\nfor i := 0; i < n; i++ {\nfor j := 0; j < n; j++ {\nif j == 1 {\ncontinue outer\n}\nif j == 2 {\nbreak outer\n}\n}\n}",
			want: "", // asserted structurally in TestLabeledTargets
		},
		{
			name: "switch",
			src:  "switch n {\ncase 1:\nn = 10\ncase 2:\nn = 20\ndefault:\nn = 30\n}",
			want: "0 switch.head [1] -> 3 4 5\n5 switch.case [1] -> 2\n4 switch.case [2] -> 2\n3 switch.case [2] -> 2\n2 switch.join [0] -> 1\n1 exit [0]\n",
		},
		{
			name: "switch_nodefault",
			src:  "switch n {\ncase 1:\nn = 10\n}",
			want: "0 switch.head [1] -> 3 2\n3 switch.case [2] -> 2\n2 switch.join [0] -> 1\n1 exit [0]\n",
		},
		{
			name: "fallthrough",
			src:  "switch n {\ncase 1:\nn = 10\nfallthrough\ncase 2:\nn = 20\n}",
			want: "0 switch.head [1] -> 3 4 2\n3 switch.case [2] -> 4\n4 switch.case [2] -> 2\n2 switch.join [0] -> 1\n1 exit [0]\n",
		},
		{
			name: "typeswitch",
			src:  "switch v.(type) {\ncase int:\nn = 1\ncase string:\nn = 2\n}",
			want: "0 typeswitch.head [1] -> 3 4 2\n4 typeswitch.case [2] -> 2\n3 typeswitch.case [2] -> 2\n2 typeswitch.join [0] -> 1\n1 exit [0]\n",
		},
		{
			name: "select",
			src:  "select {\ncase x := <-ch:\nn = x\ncase ch <- n:\nn = 0\n}",
			want: "0 select.head [0] -> 3 4\n4 select.case [2] -> 2\n3 select.case [2] -> 2\n2 select.join [0] -> 1\n1 exit [0]\n",
		},
		{
			name: "goto_backward",
			src:  "retry:\nn--\nif n > 0 {\ngoto retry\n}",
			want: "0 entry [0] -> 2\n2 label.retry [1] -> 3 4\n4 if.join [0] -> 1\n1 exit [0]\n3 if.then [0] -> 2\n",
		},
		{
			name: "goto_forward",
			src:  "if n > 0 {\ngoto done\n}\nn = 1\ndone:\nn = 2",
			want: "0 entry [0] -> 2 3\n3 if.join [1] -> 4\n2 if.then [0] -> 4\n4 label.done [1] -> 1\n1 exit [0]\n",
		},
		{
			name: "return",
			src:  "if n > 0 {\nreturn\n}\nn = 1",
			want: "0 entry [0] -> 2 3\n3 if.join [1] -> 1\n2 if.then [1] -> 1\n1 exit [0]\n",
		},
		{
			name: "panic",
			src:  "if n > 0 {\npanic(\"boom\")\n}\nn = 1",
			want: "0 entry [0] -> 2 3\n3 if.join [1] -> 1\n1 exit [0]\n2 if.then [1]\n",
		},
		{
			name: "defer",
			src:  "defer func() {}()\nn = 1",
			want: "0 entry [2] -> 1\n1 exit [0]\n",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := parseBody(t, c.src)
			if c.want == "" {
				return
			}
			if got := g.String(); got != c.want {
				t.Errorf("shape mismatch:\n got:\n%s want:\n%s", got, c.want)
			}
		})
	}
}

// TestLabeledTargets asserts labeled continue/break resolve to the outer
// loop: continue outer must edge to the outer post block, break outer to
// the outer exit block.
func TestLabeledTargets(t *testing.T) {
	g := parseBody(t, "outer:\nfor i := 0; i < n; i++ {\nfor j := 0; j < n; j++ {\nif j == 1 {\ncontinue outer\n}\nif j == 2 {\nbreak outer\n}\n}\n}")
	var outerPost, outerExit *Block
	for _, b := range g.Blocks {
		// The outer loop is built right after the label head; its post
		// and exit are the first for.post/for.exit created.
		if b.Kind == "for.post" && outerPost == nil {
			outerPost = b
		}
		if b.Kind == "for.exit" && outerExit == nil {
			outerExit = b
		}
	}
	if outerPost == nil || outerExit == nil {
		t.Fatalf("outer loop blocks not found:\n%s", g.String())
	}
	var contOK, breakOK bool
	for _, b := range g.Blocks {
		if b.Kind != "if.then" {
			continue
		}
		for _, s := range b.Succs {
			if s == outerPost {
				contOK = true
			}
			if s == outerExit {
				breakOK = true
			}
		}
	}
	if !contOK {
		t.Errorf("continue outer does not edge to the outer post block:\n%s", g.String())
	}
	if !breakOK {
		t.Errorf("break outer does not edge to the outer exit block:\n%s", g.String())
	}
}

// TestLoopBackEdge asserts every loop head is reachable from its own body
// — the back edge the v1 statement walker never had.
func TestLoopBackEdge(t *testing.T) {
	g := parseBody(t, "for i := 0; i < n; i++ {\nn--\n}")
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	found := false
	for _, p := range head.Preds {
		if p.Kind == "for.post" {
			found = true
		}
	}
	if !found {
		t.Errorf("no back edge into for.head; preds: %v", kinds(head.Preds))
	}
}

func kinds(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Kind)
	}
	return out
}

// countFlow is a trivial monotone flow — state is "how many nodes have
// executed on the longest path here", capped — used by the solver tests.
type countFlow struct{ cap int }

func (c countFlow) Entry() int                           { return 0 }
func (c countFlow) Transfer(n ast.Node, s int) int       { return min(s+1, c.cap) }
func (c countFlow) Refine(_ ast.Expr, _ bool, s int) int { return s }
func (c countFlow) Join(a, b int) int                    { return max(a, b) }
func (c countFlow) Equal(a, b int) bool                  { return a == b }
func (c countFlow) Clone(s int) int                      { return s }

// TestSolveReachesAllBlocks asserts the fixpoint assigns a state to every
// reachable block, including loop heads fed by back edges.
func TestSolveReachesAllBlocks(t *testing.T) {
	g := parseBody(t, "s := 0\nfor i := 0; i < n; i++ {\nif i == 2 {\ncontinue\n}\ns += i\n}\n_ = s")
	in := Solve[int](g, countFlow{cap: 1000})
	for _, b := range g.RPO() {
		if _, ok := in[b]; !ok {
			t.Errorf("block %d %s has no IN state", b.Index, b.Kind)
		}
	}
}

// buildNest emits a random nest of if/for/switch statements around simple
// assignments — the adversarial input for the termination property test.
func buildNest(r *rand.Rand, depth int, sb *strings.Builder) {
	if depth <= 0 {
		sb.WriteString("n++\n")
		return
	}
	switch r.Intn(5) {
	case 0:
		sb.WriteString("if n > 0 {\n")
		buildNest(r, depth-1, sb)
		if r.Intn(2) == 0 {
			sb.WriteString("} else {\n")
			buildNest(r, depth-1, sb)
		}
		sb.WriteString("}\n")
	case 1:
		sb.WriteString("for i := 0; i < n; i++ {\n")
		if r.Intn(3) == 0 {
			sb.WriteString("if i == 1 {\ncontinue\n}\n")
		}
		if r.Intn(3) == 0 {
			sb.WriteString("if i == 2 {\nbreak\n}\n")
		}
		buildNest(r, depth-1, sb)
		sb.WriteString("}\n")
	case 2:
		sb.WriteString("switch n {\ncase 1:\n")
		buildNest(r, depth-1, sb)
		if r.Intn(2) == 0 {
			sb.WriteString("fallthrough\n")
		}
		sb.WriteString("case 2:\n")
		buildNest(r, depth-1, sb)
		if r.Intn(2) == 0 {
			sb.WriteString("default:\n")
			buildNest(r, depth-1, sb)
		}
		sb.WriteString("}\n")
	case 3:
		sb.WriteString("for _, x := range xs {\n_ = x\n")
		buildNest(r, depth-1, sb)
		sb.WriteString("}\n")
	case 4:
		buildNest(r, depth-1, sb)
		if r.Intn(3) == 0 {
			sb.WriteString("return\n")
		}
	}
}

// TestSolveTerminationProperty fuzzes the solver with 200 random branch
// nests: every run must converge (Solve returns) and cover every
// reachable block. A deliberately hostile flow whose state grows without
// bound is cut off by the solver's iteration limit rather than hanging.
func TestSolveTerminationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var sb strings.Builder
		buildNest(r, 2+r.Intn(4), &sb)
		src := sb.String()
		g := parseBody(t, src)
		in := Solve[int](g, countFlow{cap: 64})
		for _, b := range g.RPO() {
			if _, ok := in[b]; !ok {
				t.Fatalf("trial %d: block %d %s unreached\nsrc:\n%s\ncfg:\n%s",
					trial, b.Index, b.Kind, src, g.String())
			}
		}
	}
}

// unboundedFlow violates the finite-height contract: its state strictly
// grows on every transfer, so only the solver's iteration bound stops it.
type unboundedFlow struct{}

func (unboundedFlow) Entry() int                           { return 0 }
func (unboundedFlow) Transfer(n ast.Node, s int) int       { return s + 1 }
func (unboundedFlow) Refine(_ ast.Expr, _ bool, s int) int { return s }
func (unboundedFlow) Join(a, b int) int                    { return max(a, b) }
func (unboundedFlow) Equal(a, b int) bool                  { return a == b }
func (unboundedFlow) Clone(s int) int                      { return s }

func TestSolveIterationBound(t *testing.T) {
	g := parseBody(t, "for {\nn++\n}")
	done := make(chan struct{})
	go func() {
		Solve[int](g, unboundedFlow{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Solve did not terminate on a non-monotone flow")
	}
}
