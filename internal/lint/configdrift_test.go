package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fakePkg builds an untype-checked Package from source — the module-level
// config audit only needs import paths and function declarations, so the
// drift checks are testable against synthetic trees.
func fakePkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+"/fake.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}}
}

func TestConfigDriftModule(t *testing.T) {
	root := fakePkg(t, "gpclust", "package gpclust\n")
	core := fakePkg(t, "gpclust/internal/core", "package core\nfunc Cluster() {}\n")
	obs := fakePkg(t, "gpclust/internal/obs", "package obs\nfunc nowWall() int64 { return 0 }\n")
	pkgs := []*Package{root, core, obs}

	cfg := &Config{
		DeterminismCritical: []string{"internal/core", "internal/vanished"},
		Generator:           []string{"internal/alsogone"},
		WallclockAllow: []FuncAllow{
			{PkgSuffix: "internal/obs", Func: "nowWall"},      // exists: clean
			{PkgSuffix: "internal/obs", Func: "renamedAway"},  // pkg ok, func gone
			{PkgSuffix: "internal/nowhere", Func: "anything"}, // pkg gone
		},
		ErrAllow: []string{"func fmt.Println", "fmt.Println"}, // second is malformed
	}

	diags := runConfigDriftModule(cfg, pkgs)
	wants := []string{
		`DeterminismCritical entry "internal/vanished" matches no loaded package`,
		`Generator entry "internal/alsogone" matches no loaded package`,
		`WallclockAllow entry internal/obs.renamedAway names no declared function`,
		`WallclockAllow entry internal/nowhere.anything matches no loaded package`,
		`ErrAllow entry "fmt.Println" is not a types.Object string prefix`,
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d: %v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}

	// Without the module root package in the loaded set — any partial run —
	// the config entries are uncheckable and the audit must stay silent.
	if got := runConfigDriftModule(cfg, []*Package{core, obs}); len(got) != 0 {
		t.Fatalf("partial-run audit produced findings: %v", got)
	}
}

// TestLoaderIncludeTests pins the -tests loader contract: a requested
// package gains its in-package _test.go files, and a package first loaded
// as a bare dependency is upgraded when later requested with tests.
func TestLoaderIncludeTests(t *testing.T) {
	l, err := NewLoader(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := l.LoadDir("internal/unionfind")
	if err != nil {
		t.Fatal(err)
	}
	n := len(bare.Files)

	l.IncludeTests = true
	withTests, err := l.LoadDir("internal/unionfind")
	if err != nil {
		t.Fatal(err)
	}
	if len(withTests.Files) <= n {
		t.Fatalf("IncludeTests loaded %d files, bare load had %d: no _test.go files added", len(withTests.Files), n)
	}
	for _, f := range withTests.Files {
		if f.Name.Name != withTests.Types.Name() {
			t.Fatalf("external test package file leaked into %s: package %s", withTests.Path, f.Name.Name)
		}
	}
}
