package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags struct fields that one part of a package accesses through
// the sync/atomic package-level functions and another part reads or writes
// plainly. Mixed access is a data race even when each side looks innocent
// in isolation — the exact trap a future edit to the lock-free concurrent
// union-find could fall into. (Typed atomics — atomic.Int32 fields — make
// the mix inexpressible and are the preferred fix.)
var AtomicMix = &Analyzer{
	Name: ruleAtomicMix,
	Doc:  "struct field accessed both via sync/atomic and by plain read/write",
	Run:  runAtomicMix,
}

func runAtomicMix(cfg *Config, pkg *Package) []Diagnostic {
	// Pass 1: fields passed by address to sync/atomic functions, and the
	// selector nodes making up those accesses (exempt from pass 2).
	atomicFields := make(map[*types.Var]string) // field -> atomic func name
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgFuncObj(pkg, call.Fun, "sync/atomic")
			if fn == nil || !isAtomicOpName(fn.Name()) || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fld := fieldOf(pkg, sel); fld != nil {
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = fn.Name()
				}
				exempt[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: plain selector accesses to the same fields.
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			fld := fieldOf(pkg, sel)
			if fld == nil {
				return true
			}
			if op, mixed := atomicFields[fld]; mixed {
				diags = append(diags, diag(pkg, ruleAtomicMix, sel,
					"plain access to field %q, which is also accessed via atomic.%s: every access must go through sync/atomic (or use a typed atomic field)",
					fld.Name(), op))
			}
			return true
		})
	}
	return diags
}

// isAtomicOpName matches the sync/atomic package-level operation families.
func isAtomicOpName(name string) bool {
	for _, p := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
