package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcDisplayName renders a FuncDecl as "name" or "recvtype.name", the form
// Config allowlists use.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// pkgFuncObj resolves a call/selector to a package-level function object of
// the given package path ("" = any), returning nil when it is anything else
// (method, builtin, local closure, conversion).
func pkgFuncObj(pkg *Package, fun ast.Expr, pkgPath string) *types.Func {
	switch e := fun.(type) {
	case *ast.SelectorExpr:
		obj, ok := pkg.Info.Uses[e.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return nil
		}
		if obj.Type().(*types.Signature).Recv() != nil {
			return nil
		}
		if pkgPath != "" && obj.Pkg().Path() != pkgPath {
			return nil
		}
		return obj
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[e].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return nil
		}
		if obj.Type().(*types.Signature).Recv() != nil {
			return nil
		}
		if pkgPath != "" && obj.Pkg().Path() != pkgPath {
			return nil
		}
		return obj
	}
	return nil
}

// methodObj resolves a call's callee to a method object, returning nil for
// non-method callees.
func methodObj(pkg *Package, fun ast.Expr) *types.Func {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	f, _ := s.Obj().(*types.Func)
	return f
}

// rootObj returns the object of the base identifier of an lvalue-ish
// expression (x, x.f, x[i], *x ...), or nil.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[v]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// typePath returns the import path of the package a named type (possibly
// behind a pointer) is declared in, and the type's name.
func typePath(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// sortishName reports whether a callee name plausibly denotes a sorting
// routine: anything in sort/slices, or a helper whose name mentions sort.
func sortishName(name string) bool {
	return strings.Contains(strings.ToLower(name), "sort")
}

// forEachFunc invokes fn for every function declaration with a body in the
// package, including the display name used by allowlists.
func forEachFunc(pkg *Package, fn func(fd *ast.FuncDecl, name string)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, funcDisplayName(fd))
		}
	}
}
